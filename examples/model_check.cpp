// Deterministic model-checking CLI: sweep seeds of the fiber simulator
// over any lock in the zoo, with any crash schedule, and report every
// invariant violation with a replayable seed — plus the tail of the
// scheduling trace for the first failure.
//
//   ./examples/model_check --lock=ba --n=4 --seeds=500 --passages=10
//   ./examples/model_check --lock=wr --crash-site=tail.fas --period=5
//   ./examples/model_check --lock=sa --crash-p=0.002 --trace=40
//
// Exit code: number of seeds with violations (0 = clean sweep).
#include <cstdio>
#include <memory>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "sim/sim_harness.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  rme::Cli cli(argc, argv);
  const std::string lock_name = cli.GetString("lock", "ba");
  const int n = static_cast<int>(cli.GetInt("n", 4));
  const uint64_t seeds = static_cast<uint64_t>(cli.GetInt("seeds", 200));
  const uint64_t passages = static_cast<uint64_t>(cli.GetInt("passages", 10));
  const double crash_p = cli.GetDouble("crash-p", 0.0);
  const std::string crash_site = cli.GetString("crash-site", "");
  const uint64_t period = static_cast<uint64_t>(cli.GetInt("period", 7));
  const int64_t budget = cli.GetInt("budget", 1000);
  const size_t trace = static_cast<size_t>(cli.GetInt("trace", 0));

  std::printf("model-check: lock=%s n=%d seeds=%llu passages=%llu",
              lock_name.c_str(), n, static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(passages));
  if (crash_p > 0) std::printf(" crash-p=%g", crash_p);
  if (!crash_site.empty()) {
    std::printf(" crash-site=%s period=%llu", crash_site.c_str(),
                static_cast<unsigned long long>(period));
  }
  std::printf("\n");

  uint64_t bad_seeds = 0, overlap_runs = 0, total_failures = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    auto lock = rme::MakeLock(lock_name, n);
    rme::SimWorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = passages;
    cfg.seed = seed;

    std::vector<std::unique_ptr<rme::CrashController>> parts;
    std::vector<rme::CrashController*> ptrs;
    if (crash_p > 0) {
      parts.push_back(std::make_unique<rme::RandomCrash>(seed * 7, crash_p, -1));
      ptrs.push_back(parts.back().get());
    }
    if (!crash_site.empty()) {
      parts.push_back(
          std::make_unique<rme::SpacedSiteCrash>(crash_site, period, budget));
      ptrs.push_back(parts.back().get());
    }
    rme::CompositeCrash crash(ptrs);

    // Tracing slows the run; only arm it when requested.
    const rme::SimResult r = [&] {
      if (trace > 0) {
        // RunSimWorkload hides the sim options; run a traced repeat only
        // on failure below. First pass untraced for speed.
      }
      return rme::RunSimWorkload(*lock, cfg, ptrs.empty() ? nullptr : &crash);
    }();

    total_failures += r.failures;
    if (r.max_concurrent_cs > 1) ++overlap_runs;

    const bool strong = lock->IsStronglyRecoverable();
    const bool bad = !r.ran_to_completion || r.me_violations > 0 ||
                     (strong && (r.bcsr_violations > 0 ||
                                 r.max_concurrent_cs > 1)) ||
                     r.responsiveness_deficits > 0 ||
                     r.completed_passages !=
                         static_cast<uint64_t>(n) * passages;
    if (bad) {
      ++bad_seeds;
      std::printf(
          "SEED %llu VIOLATION: completion=%d passages=%llu/%llu me=%llu "
          "bcsr=%llu resp=%llu maxcc=%d\n",
          static_cast<unsigned long long>(seed), r.ran_to_completion ? 1 : 0,
          static_cast<unsigned long long>(r.completed_passages),
          static_cast<unsigned long long>(static_cast<uint64_t>(n) * passages),
          static_cast<unsigned long long>(r.me_violations),
          static_cast<unsigned long long>(r.bcsr_violations),
          static_cast<unsigned long long>(r.responsiveness_deficits),
          r.max_concurrent_cs);
      if (trace > 0 && bad_seeds == 1) {
        std::printf("replaying seed %llu with tracing...\n",
                    static_cast<unsigned long long>(seed));
        // Replay deterministically with the trace ring armed.
        auto lock2 = rme::MakeLock(lock_name, n);
        rme::DeterministicSim::Options options;
        options.num_procs = n;
        options.seed = seed;
        options.trace_capacity = trace;
        rme::DeterministicSim::Run(options, [&](int pid) {
          rme::ProcessBinding bind(pid, ptrs.empty() ? nullptr : &crash);
          for (uint64_t i = 0; i < passages; ++i) {
            for (;;) {
              try {
                lock2->Recover(pid);
                lock2->Enter(pid);
                lock2->Exit(pid);
                break;
              } catch (const rme::ProcessCrash&) {
              }
            }
          }
          rme::CurrentProcess().SetCrashController(nullptr);
          lock2->OnProcessDone(pid);
        });
        std::printf("%s", rme::DeterministicSim::FormatTrace(
                              rme::DeterministicSim::LastRunTrace())
                              .c_str());
      }
    }
  }

  std::printf("swept %llu seeds: %llu violations, %llu runs with CS overlap "
              "(admissible for weak locks), %llu injected failures total\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(bad_seeds),
              static_cast<unsigned long long>(overlap_runs),
              static_cast<unsigned long long>(total_failures));
  return static_cast<int>(bad_seeds);
}
