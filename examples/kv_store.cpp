// A crash-tolerant key-value store on simulated NVRAM, serialized by the
// adaptive recoverable lock: the workload the paper's introduction
// motivates (lock-protected shared structures that must survive process
// failures with near-instant recovery).
//
// Design: fixed-capacity table of (key, value, version) cells plus a
// per-process redo record. A put writes the redo record in the NCS, then
// applies it inside the CS; a crash anywhere re-applies idempotently via
// the version check. After a crash storm the store is audited: every
// acknowledged put must be visible with the exact value acknowledged.
//
//   ./examples/kv_store
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/ba_lock.hpp"
#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"
#include "util/prng.hpp"

namespace {

constexpr int kProcs = 8;
constexpr int kKeys = 64;
constexpr int kOpsEach = 600;

struct Cell {
  rme::rmr::Atomic<uint64_t> value{0};
  rme::rmr::Atomic<uint64_t> version{0};
};
Cell g_table[kKeys];  // key k lives in slot k (simulated NVRAM)

struct Redo {
  rme::rmr::Atomic<uint64_t> txn{0};
  rme::rmr::Atomic<uint64_t> key{0};
  rme::rmr::Atomic<uint64_t> value{0};
  rme::rmr::Atomic<uint64_t> applied{0};
};
Redo g_redo[rme::kMaxProcs];

void ApplyPut(int pid) {
  Redo& r = g_redo[pid];
  const uint64_t txn = r.txn.Load();
  if (r.applied.Load() == txn) return;  // idempotent re-entry
  const auto key = static_cast<size_t>(r.key.Load());
  Cell& cell = g_table[key];
  cell.value.Store(r.value.Load());
  // The version is a pure function of the writing transaction, never a
  // read-modify-write of the cell: a crash between this store and the
  // applied marker below replays the whole apply, and a counter bump
  // would count the same put twice. (tests/kv_crash_window_test pins
  // this exact window.)
  cell.version.Store((txn << 8) | static_cast<uint64_t>(pid));
  r.applied.Store(txn);
}

}  // namespace

int main() {
  auto lock = rme::BaLock::WithDefaultBase(kProcs);
  rme::RandomCrash crash(/*seed=*/5, /*per_op_probability=*/0.0008);
  // Zipf-popular keys from the shared generator (bench/bench_common.hpp)
  // — the same draws bench_kv_service makes, so hot-key contention here
  // mirrors the service's skew. Immutable, so one instance serves every
  // thread; each thread's Prng supplies the randomness.
  const rme::bench::ZipfianKeys keys(kKeys, /*theta=*/0.99);

  // Acknowledged writes, for the post-run audit (plain host memory —
  // this is the "client side", not simulated state).
  std::mutex acked_mu;
  std::map<uint64_t, std::pair<int, uint64_t>> last_acked;  // key -> (pid, value)

  std::vector<std::thread> threads;
  for (int pid = 0; pid < kProcs; ++pid) {
    threads.emplace_back([&, pid] {
      rme::ProcessBinding binding(pid, &crash);
      rme::Prng rng(4242, static_cast<uint64_t>(pid));
      int done = 0;
      bool prepared = false;
      uint64_t key = 0, value = 0;
      while (done < kOpsEach) {
        try {
          if (!prepared) {
            key = keys.Next(rng);
            value = rng.Next() | 1;  // non-zero
            Redo& r = g_redo[pid];
            r.key.Store(key);
            r.value.Store(value);
            r.txn.Store(r.txn.Load() + 1);
            prepared = true;
          }
          lock->Recover(pid);
          lock->Enter(pid);
          ApplyPut(pid);
          lock->Exit(pid);
          // The put is durable and the lock released: acknowledge it.
          {
            std::lock_guard<std::mutex> lk(acked_mu);
            last_acked[key] = {pid, value};
          }
          prepared = false;
          ++done;
        } catch (const rme::ProcessCrash&) {
          // Restart the passage (Algorithm 1); the redo record carries
          // the put across the crash.
        }
      }
      // Disarm injection before the graceful-shutdown hook: a crash there
      // would escape the passage loop's try block.
      rme::CurrentProcess().SetCrashController(nullptr);
      lock->OnProcessDone(pid);
    });
  }
  for (auto& t : threads) t.join();

  // Audit: a key's stored value must be the last acknowledged value for
  // that key... except that an unacknowledged (crashed-after-apply) put
  // may have legitimately superseded it. So the check is: the stored
  // value is either the last acked value or some pid's in-flight redo
  // value for that key.
  int mismatches = 0;
  for (const auto& [key, acked] : last_acked) {
    const uint64_t stored = g_table[key].value.RawLoad();
    if (stored == acked.second) continue;
    bool explained = false;
    for (int pid = 0; pid < kProcs && !explained; ++pid) {
      if (g_redo[pid].key.RawLoad() == key &&
          g_redo[pid].value.RawLoad() == stored) {
        explained = true;  // in-flight put that beat the acked one
      }
    }
    if (!explained) {
      ++mismatches;
      std::printf("MISMATCH key %llu: stored %llu, last acked %llu\n",
                  static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(stored),
                  static_cast<unsigned long long>(acked.second));
    }
  }
  std::printf("crashes injected : %llu\n",
              static_cast<unsigned long long>(crash.crashes()));
  std::printf("keys audited     : %zu, mismatches: %d\n", last_acked.size(),
              mismatches);
  std::printf("%s\n", mismatches == 0 ? "CONSISTENT" : "CORRUPTED");
  return mismatches == 0 ? 0 : 1;
}
