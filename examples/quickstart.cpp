// Quickstart: protect a shared counter with the paper's adaptive
// recoverable lock (BA-Lock), crash a process mid-acquisition, and watch
// it recover — in ~60 lines.
//
//   ./examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "core/ba_lock.hpp"
#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"

int main() {
  constexpr int kProcs = 4;
  constexpr int kPassagesEach = 1000;

  // The lock. WithDefaultBase picks the k-port arbitration tree as the
  // bounded base lock and stacks T(n) adaptive levels on top.
  auto lock = rme::BaLock::WithDefaultBase(kProcs);

  // Shared state lives in instrumented atomics ("simulated NVRAM"): it
  // survives simulated crashes, and every access is RMR-counted.
  rme::rmr::Atomic<uint64_t> counter{0};

  // Crash each process with small probability at any shared-memory op.
  rme::RandomCrash crash(/*seed=*/7, /*per_op_probability=*/0.0005);

  std::vector<std::thread> threads;
  for (int pid = 0; pid < kProcs; ++pid) {
    threads.emplace_back([&, pid] {
      // Bind this thread to a simulated process id; the binding routes
      // RMR accounting and crash injection.
      rme::ProcessBinding binding(pid, &crash);
      for (int i = 0; i < kPassagesEach;) {
        try {
          lock->Recover(pid);  // repair after any earlier crash
          lock->Enter(pid);    // acquire
          counter.Store(counter.Load() + 1);  // critical section
          lock->Exit(pid);     // release
          ++i;                 // this request is satisfied
        } catch (const rme::ProcessCrash& c) {
          // The process "crashed": private state is gone (stack unwound)
          // but the lock's shared state survives. Per the paper's model
          // we simply restart the passage; Recover cleans up.
          std::printf("p%d crashed at %s — recovering\n", c.pid, c.site);
        }
      }
      // Disarm injection before the graceful-shutdown hook: a crash there
      // would escape the passage loop's try block.
      rme::CurrentProcess().SetCrashController(nullptr);
      lock->OnProcessDone(pid);
      const rme::OpCounters& ops = rme::CurrentProcess().counters;
      std::printf("p%d done: %llu shared ops, %llu CC-RMRs, %llu DSM-RMRs\n",
                  pid, static_cast<unsigned long long>(ops.ops),
                  static_cast<unsigned long long>(ops.cc_rmrs),
                  static_cast<unsigned long long>(ops.dsm_rmrs));
    });
  }
  for (auto& t : threads) t.join();

  std::printf("crashes injected: %llu\n",
              static_cast<unsigned long long>(crash.crashes()));
  std::printf("counter = %llu (>= %d: CS may legitimately re-run after a "
              "crash inside it)\n",
              static_cast<unsigned long long>(counter.RawLoad()),
              kProcs * kPassagesEach);
  return counter.RawLoad() >= kProcs * kPassagesEach ? 0 : 1;
}
