// Adaptivity, live: the same BA-Lock instance driven through three
// phases — quiet, unsafe-failure storm, quiet again — printing RMR per
// passage for each phase. The point of the paper's "recent failures"
// framing is visible directly: cost rises while failures are recent and
// falls back to O(1) once their consequence intervals drain.
//
//   ./examples/adaptivity_demo
#include <cstdio>
#include <memory>

#include "core/ba_lock.hpp"
#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "runtime/harness.hpp"

int main() {
  constexpr int kProcs = 8;
  auto ba = std::make_unique<rme::BaLock>(
      kProcs, 6, std::make_unique<rme::KPortTreeLock>(kProcs, "ba.base"));

  auto run_phase = [&](const char* name, rme::CrashController* crash) {
    rme::WorkloadConfig cfg;
    cfg.num_procs = kProcs;
    cfg.passages_per_proc = 300;
    cfg.cs_shared_ops = 8;
    cfg.cs_yields = 2;
    const rme::RunResult r = rme::RunWorkload(*ba, cfg, crash);
    std::printf("%-22s rmr/passage: mean %6.1f  max %5.0f   failures %5llu"
                "   deepest level %1.0f\n",
                name, r.passage.cc.mean(), r.passage.cc.max(),
                static_cast<unsigned long long>(r.failures),
                r.level_reached.max());
    return r;
  };

  std::printf("BA-Lock (n=%d, m=6, base=kport-tree)\n", kProcs);
  std::printf("----------------------------------------------------------\n");

  run_phase("phase 1: quiet", nullptr);

  {
    // Storm: one unsafe failure (crash-after-filter-FAS) roughly every
    // 40 filter appends, across the whole phase.
    rme::SpacedSiteCrash storm("filter.tail.fas", 40, 200);
    run_phase("phase 2: failure storm", &storm);
  }

  run_phase("phase 3: quiet again", nullptr);

  std::printf("----------------------------------------------------------\n");
  std::printf("Expected: phase 2's mean/max rise with escalation; phase 3\n"
              "returns to phase 1's O(1) cost — adaptivity to RECENT\n"
              "failures, not failure history (compare: a lock that is\n"
              "merely bounded would stay expensive forever).\n");
  return 0;
}
