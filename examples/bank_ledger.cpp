// Bank ledger: why the bounded-critical-section-reentry (BCSR) property
// matters. Transfers between accounts run inside the recoverable lock's
// CS; a process may crash mid-transfer, leaving the ledger inconsistent.
// BCSR guarantees the crashed process re-enters its CS before anyone
// else, so it can finish applying its own intent record — the paper's
// "CS is idempotent" discipline made concrete.
//
// The ledger and the per-process intent records live in simulated NVRAM
// (instrumented atomics), so crash injection can hit the CS body itself.
//
//   ./examples/bank_ledger
#include <cstdio>
#include <thread>
#include <vector>

#include "core/ba_lock.hpp"
#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"
#include "util/prng.hpp"

namespace {

constexpr int kProcs = 6;
constexpr int kAccounts = 16;
constexpr uint64_t kInitialBalance = 1000;
constexpr int kTransfersEach = 800;

// The "NVRAM" ledger.
rme::rmr::Atomic<uint64_t> g_balance[kAccounts];

// Per-process transfer intent (write-ahead record): a transfer is
// replayable because the CS applies it through this record, in two
// phases — STAGE (compute the post-transfer balances from the untouched
// ledger and persist them) then PUBLISH (blind idempotent stores).
struct Intent {
  rme::rmr::Atomic<uint64_t> txn{0};      // monotonically increasing id
  rme::rmr::Atomic<uint64_t> from{0};
  rme::rmr::Atomic<uint64_t> to{0};
  rme::rmr::Atomic<uint64_t> amount{0};
  rme::rmr::Atomic<uint64_t> staged_txn{0};  // txn whose outputs are staged
  rme::rmr::Atomic<uint64_t> new_from{0};
  rme::rmr::Atomic<uint64_t> new_to{0};
  rme::rmr::Atomic<uint64_t> applied{0};  // txn id of last applied intent
};
Intent g_intent[rme::kMaxProcs];

// The critical section: apply this process's pending intent exactly once.
// Safe to re-run after a crash anywhere inside (BCSR re-entry):
//  - before staged_txn is persisted, the ledger is untouched, so staging
//    recomputes identical values;
//  - after it, publishing just re-stores the same staged values.
void ApplyIntentInCs(int pid) {
  Intent& in = g_intent[pid];
  const uint64_t txn = in.txn.Load();
  if (in.applied.Load() == txn) return;  // already applied, pure re-entry
  const auto from = static_cast<size_t>(in.from.Load());
  const auto to = static_cast<size_t>(in.to.Load());
  const uint64_t amount = in.amount.Load();

  if (in.staged_txn.Load() != txn) {
    // STAGE: ledger not yet modified for this txn.
    const uint64_t from_bal = g_balance[from].Load();
    const uint64_t to_bal = g_balance[to].Load();
    const bool ok = amount <= from_bal && from != to;
    in.new_from.Store(ok ? from_bal - amount : from_bal);
    in.new_to.Store(ok ? to_bal + amount : to_bal);
    in.staged_txn.Store(txn);  // stage commit point
  }
  // PUBLISH: idempotent blind stores of the staged values.
  g_balance[from].Store(in.new_from.Load());
  g_balance[to].Store(in.new_to.Load());
  in.applied.Store(txn);  // apply commit point
}

}  // namespace

int main() {
  for (auto& b : g_balance) b.RawStore(kInitialBalance);

  auto lock = rme::BaLock::WithDefaultBase(kProcs);
  rme::RandomCrash crash(/*seed=*/21, /*per_op_probability=*/0.001);
  std::vector<std::thread> threads;

  for (int pid = 0; pid < kProcs; ++pid) {
    threads.emplace_back([&, pid] {
      rme::ProcessBinding binding(pid, &crash);
      rme::Prng rng(99, static_cast<uint64_t>(pid));
      int done = 0;
      bool prepared = false;
      while (done < kTransfersEach) {
        try {
          if (!prepared) {
            // NCS: prepare the next intent (its own crash-safety comes
            // from the txn/applied pair).
            Intent& in = g_intent[pid];
            const uint64_t from = rng.NextBounded(kAccounts);
            in.from.Store(from);
            // Self-transfers are rejected in the CS; draw a distinct
            // destination so every transfer is meaningful.
            in.to.Store((from + 1 + rng.NextBounded(kAccounts - 1)) % kAccounts);
            in.amount.Store(1 + rng.NextBounded(50));
            in.txn.Store(in.txn.Load() + 1);
            prepared = true;
          }
          lock->Recover(pid);
          lock->Enter(pid);
          ApplyIntentInCs(pid);
          lock->Exit(pid);
          prepared = false;
          ++done;
        } catch (const rme::ProcessCrash&) {
          // Restart the passage; if we crashed inside the CS, BCSR gets
          // us back in before anyone else and ApplyIntentInCs resumes.
        }
      }
      // Disarm injection before the graceful-shutdown hook: a crash there
      // would escape the passage loop's try block.
      rme::CurrentProcess().SetCrashController(nullptr);
      lock->OnProcessDone(pid);
    });
  }
  for (auto& t : threads) t.join();

  uint64_t total = 0;
  for (auto& b : g_balance) total += b.RawLoad();
  const uint64_t expected = kInitialBalance * kAccounts;
  std::printf("crashes injected : %llu\n",
              static_cast<unsigned long long>(crash.crashes()));
  std::printf("ledger total     : %llu (expected %llu)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(expected));
  std::printf("%s\n", total == expected
                          ? "CONSISTENT: no money created or destroyed "
                            "despite crashes mid-transfer"
                          : "INCONSISTENT: ledger corrupted!");
  return total == expected ? 0 : 1;
}
