// Simulated shared-memory substrate with remote-memory-reference (RMR)
// accounting under the two models the paper analyzes:
//
//  - Cache-coherent (CC): every variable tracks, in a bitmask, which
//    processes hold a valid cached copy. A read by a process with a valid
//    copy is free; a read without one costs 1 RMR and installs a copy.
//    Every write or RMW costs 1 RMR and invalidates all other copies
//    (the writer keeps a valid copy; `--cc-strict` ablation drops it).
//
//  - Distributed shared memory (DSM): every variable has a home node.
//    Any operation issued by a process other than the home costs 1 RMR.
//
// Both counts are maintained simultaneously on every operation, so one
// experiment run reports both columns. Operations execute on real
// std::atomic's, so the locks are genuinely concurrent — the accounting
// rides along, it does not serialize anything.
//
// NATIVE MODE: compiling with -DRME_NATIVE_ATOMICS strips every probe —
// Atomic<T> becomes a thin std::atomic wrapper with the same API (sites
// ignored, no RMR counting, no crash injection). The identical lock
// sources then run at hardware speed; the `rme_native` library target
// and `bench_native_throughput` are built this way, and the delta
// against `bench_throughput` measures the instrumentation overhead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace rme {

/// Maximum number of simulated processes (bitmask-bound).
inline constexpr int kMaxProcs = 64;

/// Alignment used to keep independently-written shared state on separate
/// cache lines (rmr::Atomic, the bound-context registry, ProcessContext).
/// A fixed 64 rather than std::hardware_destructive_interference_size:
/// the latter is not ABI-stable across TUs/compilers and 64 is correct on
/// every target we run on (x86-64, aarch64).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Home node denoting "main memory": remote to every process under DSM.
inline constexpr int kMemoryNode = -1;

/// Counts of simulated-memory activity for one process.
struct OpCounters {
  uint64_t ops = 0;       ///< shared-memory operations issued
  uint64_t cc_rmrs = 0;   ///< RMRs under the CC model
  uint64_t dsm_rmrs = 0;  ///< RMRs under the DSM model

  OpCounters operator-(const OpCounters& o) const {
    return {ops - o.ops, cc_rmrs - o.cc_rmrs, dsm_rmrs - o.dsm_rmrs};
  }
  OpCounters& operator+=(const OpCounters& o) {
    ops += o.ops;
    cc_rmrs += o.cc_rmrs;
    dsm_rmrs += o.dsm_rmrs;
    return *this;
  }
};

/// Kill-survivable mirror of one process's OpCounters. Lives in shared
/// memory (the fork harness embeds one per pid in ShmControl) so the
/// counts outlive a SIGKILLed owner. Cache-line aligned and written only
/// by the owning process (relaxed stores on its own line); readers — the
/// fork-harness parent, post-mortem scans — see a value at most one
/// in-flight operation behind the owner's private counters.
struct alignas(kCacheLineBytes) SharedOpCounters {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> cc_rmrs{0};
  std::atomic<uint64_t> dsm_rmrs{0};

  OpCounters Snapshot() const {
    return {ops.load(std::memory_order_relaxed),
            cc_rmrs.load(std::memory_order_relaxed),
            dsm_rmrs.load(std::memory_order_relaxed)};
  }
};

/// Global knobs for the memory model (set once before an experiment).
struct MemoryModelConfig {
  /// If true, a writer does NOT retain a valid cached copy after writing
  /// (strict-invalidation ablation; see DESIGN.md §5).
  bool cc_strict = false;
  /// Logical-clock shard granularity: each thread reserves a block of
  /// this many ticks from the global counter and hands them out locally.
  /// Timestamps stay globally unique and per-thread monotone; cross-thread
  /// order is exact only at block granularity, which is all failure
  /// records and consequence-interval conditioning need (DESIGN.md).
  /// 1 restores the seed's exact per-op global ordering (and its per-op
  /// contended fetch_add). Values < 1 are treated as 1.
  uint64_t clock_block = 1024;
};

MemoryModelConfig& memory_model_config();

/// Monotonic logical clock, advanced on every shared-memory operation.
/// Failure timestamps and consequence intervals are expressed in it.
///
/// Sharded: threads draw timestamps from privately reserved blocks (see
/// MemoryModelConfig::clock_block). LogicalNow() reads the global
/// reservation frontier — an upper bound on every tick issued so far and
/// a lower bound on every tick issued later, i.e. exact to within one
/// block per thread. AdvanceLogicalClock() returns the caller's next
/// tick: globally unique, strictly increasing per thread.
uint64_t LogicalNow();
uint64_t AdvanceLogicalClock();

/// The last tick issued to the *calling thread* (0 before its first op).
/// Unlike LogicalNow() — which reads the global reservation frontier and
/// therefore runs ahead of every thread by up to clock_block ticks per
/// thread — this is the exact logical time of the caller's most recent
/// shared-memory operation. Failure timestamps and time-triggered crash
/// controllers (BatchCrash) use it: per-thread it is exact, and across
/// threads it is comparable at block granularity, which clock sharding
/// already makes the best obtainable order (DESIGN.md §9). With
/// clock_block == 1 it coincides with the seed's per-op global clock.
uint64_t LogicalTick();

namespace rmr_detail {

// Forward-declared crash hook, implemented in crash/crash.cpp. Called
// around every shared-memory operation; may throw ProcessCrash.
void MaybeCrash(const char* site, bool after_op);

// Accounting helpers; implemented inline below against the thread-local
// process context (declared in counters.hpp, defined in counters.cpp).
void CountRead(int home, std::atomic<uint64_t>& cc_mask);
void CountWrite(int home, std::atomic<uint64_t>& cc_mask);

}  // namespace rmr_detail

namespace rmr {

/// An instrumented shared (simulated-NVRAM) atomic variable.
///
/// All lock state that the paper stores in "shared memory" lives in these.
/// Contents survive simulated crashes (the object is never destroyed by a
/// crash); per-process private state must live in function locals, which
/// the crash exception unwinds away — exactly the paper's failure model.
/// Cache-line aligned: lock structures hold arrays of these (qnodes,
/// per-process flag vectors), and without the alignment one process's
/// CC-mask bookkeeping lands on the same line as its neighbour's spin
/// variable — the coherence traffic the RMR model says should not exist
/// then shows up as real (unmodelled) slowdown. One variable per line
/// makes the hardware behaviour match the accounting.
template <typename T>
class alignas(kCacheLineBytes) Atomic {
 public:
  explicit Atomic(T init = T{}, int home = kMemoryNode)
      : value_(init), cc_mask_(0), home_(home) {}

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  /// Sets the DSM home node. Must be called before concurrent use.
  void set_home(int home) { home_ = home; }
  int home() const { return home_; }

  /// Plain (uninstrumented, crash-free) access for checkers/initialization.
  T RawLoad() const { return value_.load(std::memory_order_seq_cst); }
  void RawStore(T v) {
    value_.store(v, std::memory_order_seq_cst);
    cc_mask_.store(0, std::memory_order_relaxed);
  }

#ifdef RME_NATIVE_ATOMICS
  // Native mode: bare atomics, no probes. Sites are ignored.
  //
  // Deliberately seq_cst: the arbitrator's Peterson-style handshake
  // (store my flag, then read the other side's flag) is the classic
  // StoreLoad hazard — release/acquire is NOT enough, on x86 included.
  // The paper's algorithms are all specified against a sequentially
  // consistent shared memory.
  T Load(const char* = "") const {
    return value_.load(std::memory_order_seq_cst);
  }
  void Store(T v, const char* = "") {
    value_.store(v, std::memory_order_seq_cst);
  }
  T Exchange(T v, const char* = "") {
    return value_.exchange(v, std::memory_order_seq_cst);
  }
  bool CompareExchange(T expected, T desired, const char* = "") {
    return value_.compare_exchange_strong(expected, desired,
                                          std::memory_order_seq_cst);
  }
  T FetchOr(T bits, const char* = "")
    requires std::is_integral_v<T>
  {
    return value_.fetch_or(bits, std::memory_order_seq_cst);
  }
  T FetchAnd(T bits, const char* = "")
    requires std::is_integral_v<T>
  {
    return value_.fetch_and(bits, std::memory_order_seq_cst);
  }
  T FetchAdd(T delta, const char* = "")
    requires std::is_integral_v<T>
  {
    return value_.fetch_add(delta, std::memory_order_seq_cst);
  }
#else
  /// Instrumented read.
  T Load(const char* site = "load") const {
    rmr_detail::MaybeCrash(site, /*after_op=*/false);
    rmr_detail::CountRead(home_, cc_mask_);
    T v = value_.load(std::memory_order_seq_cst);
    rmr_detail::MaybeCrash(site, /*after_op=*/true);
    return v;
  }

  /// Instrumented write.
  void Store(T v, const char* site = "store") {
    rmr_detail::MaybeCrash(site, /*after_op=*/false);
    rmr_detail::CountWrite(home_, cc_mask_);
    value_.store(v, std::memory_order_seq_cst);
    rmr_detail::MaybeCrash(site, /*after_op=*/true);
  }

  /// Instrumented fetch-and-store (the paper's FAS).
  ///
  /// A crash injected "after" this op models the paper's one sensitive
  /// instruction: the exchange took effect in shared memory but the
  /// return value is lost with the crashing process's private state.
  T Exchange(T v, const char* site = "fas") {
    rmr_detail::MaybeCrash(site, /*after_op=*/false);
    rmr_detail::CountWrite(home_, cc_mask_);
    T old = value_.exchange(v, std::memory_order_seq_cst);
    rmr_detail::MaybeCrash(site, /*after_op=*/true);
    return old;
  }

  /// Instrumented compare-and-swap (the paper's CAS). Returns true iff the
  /// value was changed from `expected` to `desired`.
  bool CompareExchange(T expected, T desired, const char* site = "cas") {
    rmr_detail::MaybeCrash(site, /*after_op=*/false);
    rmr_detail::CountWrite(home_, cc_mask_);
    bool ok = value_.compare_exchange_strong(expected, desired,
                                             std::memory_order_seq_cst);
    rmr_detail::MaybeCrash(site, /*after_op=*/true);
    return ok;
  }

  /// Instrumented fetch-and-or, for integral T.
  T FetchOr(T bits, const char* site = "faor")
    requires std::is_integral_v<T>
  {
    rmr_detail::MaybeCrash(site, /*after_op=*/false);
    rmr_detail::CountWrite(home_, cc_mask_);
    T old = value_.fetch_or(bits, std::memory_order_seq_cst);
    rmr_detail::MaybeCrash(site, /*after_op=*/true);
    return old;
  }

  /// Instrumented fetch-and-and, for integral T.
  T FetchAnd(T bits, const char* site = "faand")
    requires std::is_integral_v<T>
  {
    rmr_detail::MaybeCrash(site, /*after_op=*/false);
    rmr_detail::CountWrite(home_, cc_mask_);
    T old = value_.fetch_and(bits, std::memory_order_seq_cst);
    rmr_detail::MaybeCrash(site, /*after_op=*/true);
    return old;
  }

  /// Instrumented fetch-and-add, for integral T.
  T FetchAdd(T delta, const char* site = "faa")
    requires std::is_integral_v<T>
  {
    rmr_detail::MaybeCrash(site, /*after_op=*/false);
    rmr_detail::CountWrite(home_, cc_mask_);
    T old = value_.fetch_add(delta, std::memory_order_seq_cst);
    rmr_detail::MaybeCrash(site, /*after_op=*/true);
    return old;
  }
#endif  // RME_NATIVE_ATOMICS

 private:
  mutable std::atomic<T> value_;
  /// Bit i set <=> process i holds a valid cached copy (CC model).
  mutable std::atomic<uint64_t> cc_mask_;
  int home_;
};

}  // namespace rmr
}  // namespace rme
