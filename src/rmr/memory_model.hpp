// Simulated shared-memory substrate with remote-memory-reference (RMR)
// accounting under the two models the paper analyzes:
//
//  - Cache-coherent (CC): every variable tracks, in a bitmask, which
//    processes hold a valid cached copy. A read by a process with a valid
//    copy is free; a read without one costs 1 RMR and installs a copy.
//    Every write or RMW costs 1 RMR and invalidates all other copies
//    (the writer keeps a valid copy; `--cc-strict` ablation drops it).
//
//  - Distributed shared memory (DSM): every variable has a home node.
//    Any operation issued by a process other than the home costs 1 RMR.
//
// Both counts are maintained simultaneously on every operation, so one
// experiment run reports both columns. Operations execute on real
// std::atomic's, so the locks are genuinely concurrent — the accounting
// rides along, it does not serialize anything.
//
// PROBE ANATOMY (DESIGN.md §9): one instrumented op is one fused
// OpProbe — a single thread-local ProcessContext resolution threaded
// through the pre-op probe, the CC/DSM accounting, and the post-op
// probe. The all-default path (bound, no crash controller, no sim hook,
// no mirror, non-strict CC) is decided by testing one packed
// `fast_flags` word; everything rare (crash-policy consultation, fiber
// yield, clock-block refill, config reads) lives out of line in
// crash.cpp / counters.cpp.
//
// NATIVE MODE: compiling with -DRME_NATIVE_ATOMICS strips every probe —
// Atomic<T> becomes a thin std::atomic wrapper with the same API (sites
// ignored, no RMR counting, no crash injection). The identical lock
// sources then run at hardware speed; the `rme_native` library target
// and `bench_native_throughput` are built this way, and the delta
// against `bench_throughput` measures the instrumentation overhead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

#if defined(__SANITIZE_THREAD__)
#define RME_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RME_TSAN 1
#endif
#endif

#if defined(__x86_64__) && defined(__SSE2__) && !defined(RME_TSAN)
#define RME_MIRROR_SSE_FLUSH 1
#include <emmintrin.h>
#endif

namespace rme {

class CrashController;  // crash/crash.hpp

/// Maximum number of simulated processes (bitmask-bound).
inline constexpr int kMaxProcs = 64;

/// Alignment used to keep independently-written shared state on separate
/// cache lines (rmr::Atomic, the bound-context registry, ProcessContext).
/// A fixed 64 rather than std::hardware_destructive_interference_size:
/// the latter is not ABI-stable across TUs/compilers and 64 is correct on
/// every target we run on (x86-64, aarch64).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Home node denoting "main memory": remote to every process under DSM.
inline constexpr int kMemoryNode = -1;

/// Counts of simulated-memory activity for one process.
struct OpCounters {
  uint64_t ops = 0;       ///< shared-memory operations issued
  uint64_t cc_rmrs = 0;   ///< RMRs under the CC model
  uint64_t dsm_rmrs = 0;  ///< RMRs under the DSM model

  OpCounters operator-(const OpCounters& o) const {
    return {ops - o.ops, cc_rmrs - o.cc_rmrs, dsm_rmrs - o.dsm_rmrs};
  }
  OpCounters& operator+=(const OpCounters& o) {
    ops += o.ops;
    cc_rmrs += o.cc_rmrs;
    dsm_rmrs += o.dsm_rmrs;
    return *this;
  }
};

/// Kill-survivable mirror of one process's OpCounters. Lives in shared
/// memory (the fork harness embeds one per pid in ShmControl) so the
/// counts outlive a SIGKILLed owner. Cache-line aligned and written only
/// by the owning process on its own line.
///
/// Packed-commit layout: cc_rmrs/dsm_rmrs sit in one 16-byte-aligned
/// pair the flush writes first (a single vector store on x86-64), and
/// `ops` is the last-written commit word. A SIGKILL between the two
/// stores leaves `ops` one op behind cc/dsm — readers that treat `ops`
/// as the commit point (Snapshot loads it first) still see each field at
/// most one in-flight operation behind the owner's private counters, and
/// every field stays monotone.
struct alignas(kCacheLineBytes) SharedOpCounters {
  alignas(16) std::atomic<uint64_t> cc_rmrs{0};
  std::atomic<uint64_t> dsm_rmrs{0};
  std::atomic<uint64_t> ops{0};  ///< commit word; flushed last (release)

  OpCounters Snapshot() const {
    OpCounters c;
    // ops first (acquire pairs with the flush's release), so the pair is
    // read at least as new as the ops value. A flush torn by SIGKILL can
    // leave the pair one op AHEAD of the commit word; each op adds at
    // most 1 per model, so clamping to `ops` discards exactly the
    // uncommitted op's contribution and restores the reader invariants
    // (cc_rmrs <= ops, dsm_rmrs <= ops). All three words are monotone,
    // so the clamped view is monotone too.
    c.ops = ops.load(std::memory_order_acquire);
    c.cc_rmrs = cc_rmrs.load(std::memory_order_relaxed);
    c.dsm_rmrs = dsm_rmrs.load(std::memory_order_relaxed);
    if (c.cc_rmrs > c.ops) c.cc_rmrs = c.ops;
    if (c.dsm_rmrs > c.ops) c.dsm_rmrs = c.ops;
    return c;
  }
};

/// Global knobs for the memory model (set once before an experiment;
/// `cc_strict` is cached into each binding's fast_flags, so mutating it
/// while any ProcessBinding is live is a bug — debug builds assert).
struct MemoryModelConfig {
  /// If true, a writer does NOT retain a valid cached copy after writing
  /// (strict-invalidation ablation; see DESIGN.md §5).
  bool cc_strict = false;
  /// Logical-clock shard granularity: each thread reserves a block of
  /// this many ticks from the global counter and hands them out locally.
  /// Timestamps stay globally unique and per-thread monotone; cross-thread
  /// order is exact only at block granularity, which is all failure
  /// records and consequence-interval conditioning need (DESIGN.md).
  /// 1 restores the seed's exact per-op global ordering (and its per-op
  /// contended fetch_add). Values < 1 are treated as 1.
  uint64_t clock_block = 1024;
};

MemoryModelConfig& memory_model_config();

/// Per-process (thread-local) execution context: process id, RMR
/// counters, and the crash controller consulted on every shared-memory
/// operation. The harness installs one per worker thread (ProcessBinding
/// in counters.hpp); lock code never touches this directly — it flows
/// through rmr::Atomic instrumentation.
///
/// Layout: the first cache line holds exactly the fields the
/// instrumentation touches on every shared-memory operation (hot); the
/// diagnostic fields the stall watchdog polls from its own thread live on
/// a separate line (cold), so watchdog reads never steal the owner's hot
/// line. The struct stays copyable (hand-written, since last_site is an
/// atomic): the fiber simulator swaps whole images in and out of the
/// thread-local slot, always from the owning thread, so relaxed copies of
/// last_site are race-free.
struct alignas(kCacheLineBytes) ProcessContext {
  /// fast_flags bits: everything the per-op probe needs to know to take
  /// its fast path, packed so the all-default case is one test.
  enum : uint32_t {
    kBound = 1u << 0,     ///< pid != kMemoryNode (accounting active)
    kHasCrash = 1u << 1,  ///< crash != nullptr AND bound (consult policy)
    kSimHook = 1u << 2,   ///< thread has a fiber-sim yield hook installed
    kHasMirror = 1u << 3, ///< mirror != nullptr (flush every op)
    kCcStrict = 1u << 4,  ///< memory_model_config().cc_strict at bind time
  };
  /// Union of kPreSlowMask bits ⇒ the pre-op probe must go out of line.
  static constexpr uint32_t kPreSlowMask = kSimHook | kHasCrash;

  // --- hot: written by the owner on every instrumented op ---
  uint32_t fast_flags = 0;
  int pid = kMemoryNode;          ///< process id in [0, n); kMemoryNode = unbound
  /// Consulted on every shared-memory op when kHasCrash is set. Always
  /// mutate through SetCrashController (or ProcessBinding) so fast_flags
  /// stays in sync — a direct store leaves the probe's cached bit stale.
  CrashController* crash = nullptr;
  /// Sharded logical clock: next unissued tick / exclusive end of the
  /// block this context reserved from the global counter. next == end
  /// means "no block"; the next tick reserves a fresh block.
  uint64_t clock_next = 0;
  uint64_t clock_end = 0;
  OpCounters counters;            ///< cumulative counts for this thread
  /// Optional segment-resident mirror slot (fork harness): when non-null,
  /// every instrumented op ends with a packed flush of `counters` into
  /// it, so the counts survive a SIGKILL of this process losing at most
  /// the one in-flight op. The slot is this process's own cache line —
  /// the stores never contend with other processes' accounting.
  SharedOpCounters* mirror = nullptr;

  // --- cold: polled cross-thread by the stall watchdog ---
  /// Site label of the most recent shared-memory operation. Diagnostic:
  /// the harness watchdog prints it on a stall, which pinpoints the spin
  /// loop a stuck process is in. Atomic (relaxed) because the watchdog
  /// thread reads it concurrently with the owner's writes; the payload is
  /// always a string literal, so a relaxed pointer exchange is safe.
  alignas(kCacheLineBytes) std::atomic<const char*> last_site{""};
  /// counters.ops as of the most recent operation's pre-op probe; kept
  /// beside last_site (same cold line, same relaxed discipline) so the
  /// watchdog can report per-process op counts without racing on the
  /// hot-path OpCounters fields.
  std::atomic<uint64_t> ops_snapshot{0};

  /// Installs/clears the crash controller, keeping the probe's cached
  /// kHasCrash bit in sync (it mirrors the old `crash == nullptr ||
  /// pid == kMemoryNode` skip, resolved once instead of per op).
  void SetCrashController(CrashController* c) {
    crash = c;
    if (c != nullptr && pid != kMemoryNode) {
      fast_flags |= kHasCrash;
    } else {
      fast_flags &= ~kHasCrash;
    }
  }

  constexpr ProcessContext() = default;
  ProcessContext(const ProcessContext& o) { *this = o; }
  ProcessContext& operator=(const ProcessContext& o) {
    if (this == &o) return *this;
    fast_flags = o.fast_flags;
    pid = o.pid;
    crash = o.crash;
    clock_next = o.clock_next;
    clock_end = o.clock_end;
    counters = o.counters;
    mirror = o.mirror;
    last_site.store(o.last_site.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    ops_snapshot.store(o.ops_snapshot.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
};

namespace rmr_detail {
/// The calling thread's context. Defined in counters.cpp; constinit, so
/// cross-TU access is a plain TLS address computation with no init-guard
/// call — this is the single TLS resolution one instrumented op pays.
extern constinit thread_local ProcessContext g_tls_context;
}  // namespace rmr_detail

/// The context bound to the calling thread (a default, unbound context is
/// provided so library code also works on non-harness threads).
inline ProcessContext& CurrentProcess() noexcept {
  return rmr_detail::g_tls_context;
}

/// Monotonic logical clock, advanced on every shared-memory operation.
/// Failure timestamps and consequence intervals are expressed in it.
///
/// Sharded: threads draw timestamps from privately reserved blocks (see
/// MemoryModelConfig::clock_block). LogicalNow() reads the global
/// reservation frontier — an upper bound on every tick issued so far and
/// a lower bound on every tick issued later, i.e. exact to within one
/// block per thread.
uint64_t LogicalNow();

namespace rmr_detail {
/// Reserves the next clock_block ticks from the global frontier into
/// `ctx` (out of line: touches the one globally contended word, once per
/// clock_block ops per thread).
void RefillClockBlock(ProcessContext& ctx);

/// Issues the caller's next tick: globally unique, strictly increasing
/// per thread. Inline fast path; block refill stays out of line.
inline uint64_t NextTick(ProcessContext& ctx) {
  if (ctx.clock_next == ctx.clock_end) [[unlikely]] {
    RefillClockBlock(ctx);
  }
  return ++ctx.clock_next;
}
}  // namespace rmr_detail

/// The caller's next tick (see NextTick). Public wrapper for tests and
/// non-probe clock consumers.
inline uint64_t AdvanceLogicalClock() {
  return rmr_detail::NextTick(CurrentProcess());
}

/// The last tick issued to the *calling thread* (0 before its first op).
/// Unlike LogicalNow() — which reads the global reservation frontier and
/// therefore runs ahead of every thread by up to clock_block ticks per
/// thread — this is the exact logical time of the caller's most recent
/// shared-memory operation. Failure timestamps and time-triggered crash
/// controllers (BatchCrash) use it: per-thread it is exact, and across
/// threads it is comparable at block granularity, which clock sharding
/// already makes the best obtainable order (DESIGN.md §9). With
/// clock_block == 1 it coincides with the seed's per-op global clock.
inline uint64_t LogicalTick() { return CurrentProcess().clock_next; }

namespace rmr_detail {

// Slow halves of the per-op probe, implemented in crash/crash.cpp. Both
// may throw ProcessCrash; PreSlow additionally runs the fiber-sim yield
// point. Only reached when the corresponding fast_flags bits are set.
void ProbePreSlow(ProcessContext& ctx, const char* site);
void ProbePostSlow(ProcessContext& ctx, const char* site);

/// One park-lot bucket: a waiter count plus the address most recently
/// parked on (a recovery hint for WakeAllParked, not a correctness
/// input). Cache-line aligned so parking traffic on one bucket never
/// invalidates a neighbour consulted by an unrelated waker.
struct alignas(kCacheLineBytes) ParkBucket {
  std::atomic<uint32_t> waiters{0};
  std::atomic<uint64_t> last_addr{0};
};

/// Hashed registry of futex-parked waiters (DESIGN.md §11). The write
/// probes consult `total` after every instrumented write — two relaxed-ish
/// loads when nobody is parked — and fall into FutexWakeSlow only when a
/// wake might matter, so lock code needs no explicit wake calls. Lives in
/// ordinary memory by default; the fork harness installs a segment-
/// resident instance (InstallParkLot) so the counts — and therefore the
/// wake obligations — are shared across processes.
struct ParkLot {
  static constexpr int kBucketCount = 64;
  /// Sum of all bucket waiter counts; the write probes' single gate.
  /// Alone on its line: every parker writes it, every writer reads it.
  alignas(kCacheLineBytes) std::atomic<uint64_t> total{0};
  ParkBucket buckets[kBucketCount];

  static int BucketIndex(const void* addr) {
    // Fibonacci hash of the cache-line number; rmr::Atomic is line-
    // aligned so the low 6 bits carry nothing.
    const uint64_t line = reinterpret_cast<uintptr_t>(addr) >> 6;
    return static_cast<int>((line * 0x9E3779B97F4A7C15ull) >> 58);
  }
};

/// The active lot (swapped by InstallParkLot; never null). constinit so
/// the inline wake gate compiles to a bare load.
extern constinit std::atomic<ParkLot*> g_park_lot;

/// Out-of-line wake: re-checks the bucket, consults the crash controller
/// at "h.unpark.brk" (instrumented builds), then FUTEX_WAKEs every waiter
/// on `addr`. In counters.cpp.
void FutexWakeSlow(ParkLot* lot, const void* addr);

/// Post-write wake gate, called by every instrumented (and native) write
/// probe after the store takes effect. seq_cst load of the waiter total:
/// it must not be read ahead of the just-issued store, or a waiter
/// publishing itself between the two would be missed (its FUTEX_WAIT
/// value check and this load are ordered by the same SC total order that
/// covers the store). Free in practice on x86 — the preceding seq_cst
/// store already fenced.
inline void MaybeWakeParked(const void* addr) {
  ParkLot* lot = g_park_lot.load(std::memory_order_relaxed);
  if (lot->total.load(std::memory_order_seq_cst) == 0) [[likely]] return;
  FutexWakeSlow(lot, addr);
}

/// First half of the mirror flush: the cc/dsm pair, one 16-byte store on
/// x86-64 (the pair is 16-aligned inside the owner's own cache line, so
/// each 8-byte half lands whole; cross-process readers only need the
/// halves, not the pair, to be untorn). Elsewhere — and under TSan,
/// which cannot see through a vector store to the atomics it covers —
/// two relaxed stores.
///
/// Takes the values, not the OpCounters: the callers just incremented
/// these in registers, and passing the struct makes the compiler emit a
/// 16-byte reload of the pair straight after the 8-byte counter stores —
/// a store-forwarding-failure stall on every mirrored op (~15 cycles,
/// measured: it alone pushed the mirrored ratio from ~1.8x to ~2.3x).
/// From register values this is two reg→xmm moves and the store.
inline void FlushMirrorRmrs(SharedOpCounters* m, uint64_t cc, uint64_t dsm) {
#ifdef RME_MIRROR_SSE_FLUSH
  static_assert(offsetof(SharedOpCounters, dsm_rmrs) ==
                    offsetof(SharedOpCounters, cc_rmrs) + 8,
                "packed flush needs the cc/dsm pair contiguous");
  _mm_store_si128(reinterpret_cast<__m128i*>(&m->cc_rmrs),
                  _mm_set_epi64x(static_cast<long long>(dsm),
                                 static_cast<long long>(cc)));
#else
  m->cc_rmrs.store(cc, std::memory_order_relaxed);
  m->dsm_rmrs.store(dsm, std::memory_order_relaxed);
#endif
}

/// Second half: `ops` is the commit word (release pairs with
/// Snapshot's acquire). A SIGKILL between the halves loses at most the
/// one in-flight op — shm_crash_test pins exactly this window.
inline void FlushMirrorCommit(SharedOpCounters* m, uint64_t ops) {
  m->ops.store(ops, std::memory_order_release);
}

/// Flushes the private counters into the segment-resident slot: pair
/// first, commit word last, everything on the owner's own cache line.
inline void FlushMirror(ProcessContext& ctx) {
  FlushMirrorRmrs(ctx.mirror, ctx.counters.cc_rmrs, ctx.counters.dsm_rmrs);
  FlushMirrorCommit(ctx.mirror, ctx.counters.ops);
}

/// One fused per-op probe: resolves the thread-local ProcessContext
/// once and threads it through the pre-op probe, the accounting, and the
/// post-op probe. Replaces the seed's five dispersed pieces (two
/// MaybeCrash calls, CountRead/CountWrite, AdvanceLogicalClock), each of
/// which re-resolved the TLS context across TU boundaries.
class OpProbe {
 public:
  explicit OpProbe(const char* site)
      : ctx_(CurrentProcess()), site_(site) {
    // Stall diagnostics: relaxed stores on the context's cold line; the
    // harness watchdog reads them from its own thread. ops_snapshot is
    // the count as of *before* this op, matching the seed's pre-op probe.
    ctx_.last_site.store(site, std::memory_order_relaxed);
    ctx_.ops_snapshot.store(ctx_.counters.ops, std::memory_order_relaxed);
    if (ctx_.fast_flags & ProcessContext::kPreSlowMask) [[unlikely]] {
      ProbePreSlow(ctx_, site);  // fiber yield + crash consult; may throw
    }
  }

  // CountRead/CountWrite keep the updated counter values in locals and
  // hand those (registers) to the mirror flush — see FlushMirrorRmrs for
  // why re-reading ctx_.counters there stalls.

  /// CC/DSM accounting for an instrumented read (issued before the op).
  void CountRead(int home, std::atomic<uint64_t>& cc_mask) {
    NextTick(ctx_);
    OpCounters& c = ctx_.counters;
    const uint64_t ops = c.ops + 1;
    c.ops = ops;
    const uint32_t flags = ctx_.fast_flags;
    if (!(flags & ProcessContext::kBound)) return;  // no accounting
    const uint64_t bit = uint64_t{1} << ctx_.pid;
    // CC: hit iff we hold a valid copy; miss installs one.
    uint64_t cc = c.cc_rmrs;
    if ((cc_mask.load(std::memory_order_relaxed) & bit) == 0) {
      c.cc_rmrs = ++cc;
      cc_mask.fetch_or(bit, std::memory_order_relaxed);
    }
    // DSM: remote iff the variable is homed elsewhere.
    uint64_t dsm = c.dsm_rmrs;
    if (home != ctx_.pid) c.dsm_rmrs = ++dsm;
    // No [[unlikely]]: mirror-bound processes (every fork-harness child)
    // take this branch on every op; pushing the flush into a cold
    // section costs them a taken jump + icache miss per op.
    if (flags & ProcessContext::kHasMirror) {
      SharedOpCounters* m = ctx_.mirror;
      FlushMirrorRmrs(m, cc, dsm);
      FlushMirrorCommit(m, ops);
    }
  }

  /// CC/DSM accounting for an instrumented write/RMW.
  void CountWrite(int home, std::atomic<uint64_t>& cc_mask) {
    NextTick(ctx_);
    OpCounters& c = ctx_.counters;
    const uint64_t ops = c.ops + 1;
    c.ops = ops;
    const uint32_t flags = ctx_.fast_flags;
    if (!(flags & ProcessContext::kBound)) return;
    const uint64_t bit = uint64_t{1} << ctx_.pid;
    // CC: every write/RMW goes to memory and invalidates other copies.
    // cc_strict (writer retains no copy) is cached in fast_flags at bind
    // time — the config's function-local-static guard is off the hot path.
    const uint64_t cc = c.cc_rmrs + 1;
    c.cc_rmrs = cc;
    cc_mask.store((flags & ProcessContext::kCcStrict) ? 0 : bit,
                  std::memory_order_relaxed);
    uint64_t dsm = c.dsm_rmrs;
    if (home != ctx_.pid) c.dsm_rmrs = ++dsm;
    if (flags & ProcessContext::kHasMirror) {
      SharedOpCounters* m = ctx_.mirror;
      FlushMirrorRmrs(m, cc, dsm);
      FlushMirrorCommit(m, ops);
    }
  }

  /// Post-op probe ("crash immediately after the instruction"); call
  /// after the atomic op's effect is applied. May throw.
  void Done() {
    if (ctx_.fast_flags & ProcessContext::kHasCrash) [[unlikely]] {
      ProbePostSlow(ctx_, site_);
    }
  }

 private:
  ProcessContext& ctx_;
  const char* site_;
};

}  // namespace rmr_detail

namespace rmr {

/// An instrumented shared (simulated-NVRAM) atomic variable.
///
/// All lock state that the paper stores in "shared memory" lives in these.
/// Contents survive simulated crashes (the object is never destroyed by a
/// crash); per-process private state must live in function locals, which
/// the crash exception unwinds away — exactly the paper's failure model.
/// Cache-line aligned: lock structures hold arrays of these (qnodes,
/// per-process flag vectors), and without the alignment one process's
/// CC-mask bookkeeping lands on the same line as its neighbour's spin
/// variable — the coherence traffic the RMR model says should not exist
/// then shows up as real (unmodelled) slowdown. One variable per line
/// makes the hardware behaviour match the accounting.
template <typename T>
class alignas(kCacheLineBytes) Atomic {
 public:
  explicit Atomic(T init = T{}, int home = kMemoryNode)
      : value_(init), cc_mask_(0), home_(home) {}

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  /// Sets the DSM home node. Must be called before concurrent use.
  void set_home(int home) { home_ = home; }
  int home() const { return home_; }

  /// Plain (uninstrumented, crash-free) access for checkers/initialization.
  T RawLoad() const { return value_.load(std::memory_order_seq_cst); }
  void RawStore(T v) {
    value_.store(v, std::memory_order_seq_cst);
    cc_mask_.store(0, std::memory_order_relaxed);
  }

#ifdef RME_NATIVE_ATOMICS
  // Native mode: bare atomics, no probes. Sites are ignored. Writes still
  // run the two-load parked-waiter gate — native waits park through the
  // same SpinPause, so native wakers carry the same wake obligation.
  //
  // Deliberately seq_cst: the arbitrator's Peterson-style handshake
  // (store my flag, then read the other side's flag) is the classic
  // StoreLoad hazard — release/acquire is NOT enough, on x86 included.
  // The paper's algorithms are all specified against a sequentially
  // consistent shared memory.
  T Load(const char* = "") const {
    return value_.load(std::memory_order_seq_cst);
  }
  void Store(T v, const char* = "") {
    value_.store(v, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
  }
  T Exchange(T v, const char* = "") {
    T old = value_.exchange(v, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    return old;
  }
  bool CompareExchange(T expected, T desired, const char* = "") {
    bool ok = value_.compare_exchange_strong(expected, desired,
                                             std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    return ok;
  }
  T FetchOr(T bits, const char* = "")
    requires std::is_integral_v<T>
  {
    T old = value_.fetch_or(bits, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    return old;
  }
  T FetchAnd(T bits, const char* = "")
    requires std::is_integral_v<T>
  {
    T old = value_.fetch_and(bits, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    return old;
  }
  T FetchAdd(T delta, const char* = "")
    requires std::is_integral_v<T>
  {
    T old = value_.fetch_add(delta, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    return old;
  }
#else
  /// Instrumented read.
  T Load(const char* site = "load") const {
    rmr_detail::OpProbe probe(site);
    probe.CountRead(home_, cc_mask_);
    T v = value_.load(std::memory_order_seq_cst);
    probe.Done();
    return v;
  }

  /// Instrumented write. The parked-waiter gate (MaybeWakeParked) runs
  /// after the store takes effect and before the post-op crash consult:
  /// an injected "crash after this instruction" then models a process
  /// that died after waking its successors — the torn other order (store
  /// landed, wake lost) is exactly what the "h.unpark.brk" crash site and
  /// the park-timeout backstop exist to cover. Wake gating issues no
  /// instrumented ops, so RMR counts are unchanged (rmr_invariance_test).
  void Store(T v, const char* site = "store") {
    rmr_detail::OpProbe probe(site);
    probe.CountWrite(home_, cc_mask_);
    value_.store(v, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    probe.Done();
  }

  /// Instrumented fetch-and-store (the paper's FAS).
  ///
  /// A crash injected "after" this op models the paper's one sensitive
  /// instruction: the exchange took effect in shared memory but the
  /// return value is lost with the crashing process's private state.
  T Exchange(T v, const char* site = "fas") {
    rmr_detail::OpProbe probe(site);
    probe.CountWrite(home_, cc_mask_);
    T old = value_.exchange(v, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    probe.Done();
    return old;
  }

  /// Instrumented compare-and-swap (the paper's CAS). Returns true iff the
  /// value was changed from `expected` to `desired`.
  bool CompareExchange(T expected, T desired, const char* site = "cas") {
    rmr_detail::OpProbe probe(site);
    probe.CountWrite(home_, cc_mask_);
    bool ok = value_.compare_exchange_strong(expected, desired,
                                             std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    probe.Done();
    return ok;
  }

  /// Instrumented fetch-and-or, for integral T.
  T FetchOr(T bits, const char* site = "faor")
    requires std::is_integral_v<T>
  {
    rmr_detail::OpProbe probe(site);
    probe.CountWrite(home_, cc_mask_);
    T old = value_.fetch_or(bits, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    probe.Done();
    return old;
  }

  /// Instrumented fetch-and-and, for integral T.
  T FetchAnd(T bits, const char* site = "faand")
    requires std::is_integral_v<T>
  {
    rmr_detail::OpProbe probe(site);
    probe.CountWrite(home_, cc_mask_);
    T old = value_.fetch_and(bits, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    probe.Done();
    return old;
  }

  /// Instrumented fetch-and-add, for integral T.
  T FetchAdd(T delta, const char* site = "faa")
    requires std::is_integral_v<T>
  {
    rmr_detail::OpProbe probe(site);
    probe.CountWrite(home_, cc_mask_);
    T old = value_.fetch_add(delta, std::memory_order_seq_cst);
    rmr_detail::MaybeWakeParked(&value_);
    probe.Done();
    return old;
  }
#endif  // RME_NATIVE_ATOMICS

  /// The address SpinPause parks on for this variable: the value word
  /// itself, so every writer's MaybeWakeParked(&value_) targets the same
  /// futex. FUTEX_WAIT examines the 32 bits at the address; on the
  /// little-endian targets we run on that is the low half of the value,
  /// which is what futex_expected() extracts.
  const void* futex_word() const {
    static_assert(sizeof(std::atomic<T>) >= 4,
                  "futex needs a 32-bit word to examine");
    return static_cast<const void*>(&value_);
  }

  /// The 32-bit futex comparand for an observed value `v`: pass the value
  /// the wait loop just read, so the kernel re-checks it under its own
  /// lock and refuses to sleep if a writer got in between.
  static uint32_t futex_expected(T v)
    requires std::is_integral_v<T>
  {
    return static_cast<uint32_t>(static_cast<uint64_t>(v));
  }

 private:
  mutable std::atomic<T> value_;
  /// Bit i set <=> process i holds a valid cached copy (CC model).
  mutable std::atomic<uint64_t> cc_mask_;
  int home_;
};

}  // namespace rmr
}  // namespace rme
