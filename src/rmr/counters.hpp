// Process binding, spin-wait, and simulator-hook plumbing around the
// thread-local ProcessContext (rmr/memory_model.hpp).
//
// The harness installs a ProcessContext on each worker thread before
// running the Algorithm-1 loop; lock code never touches this directly —
// it flows through rmr::Atomic instrumentation.
#pragma once

#include <atomic>
#include <cstdint>

#include "rmr/memory_model.hpp"

namespace rme {

class CrashController;  // crash/crash.hpp

/// Registry of currently bound contexts (diagnostics; read by the stall
/// watchdog). Entries are owned by the bound threads.
ProcessContext* BoundContext(int pid);

/// Binds/unbinds the calling thread to a process id. The harness uses
/// RAII (ProcessBinding) around each worker's lifetime. A non-null
/// `mirror` makes every instrumented op flush the counters into that
/// (segment-resident) slot, and seeds the local counters from the slot's
/// current value so counts stay cumulative and monotone across the
/// respawns of a killed process.
///
/// Binding is also where the probe's `fast_flags` word is computed:
/// bound/crash/mirror from the arguments, sim-hook from the thread's
/// installed yield hook, and a snapshot of memory_model_config().cc_strict
/// (mutating the config while a binding is live is a bug; the destructor
/// asserts the snapshot still matches in debug builds).
class ProcessBinding {
 public:
  ProcessBinding(int pid, CrashController* crash,
                 SharedOpCounters* mirror = nullptr);
  ~ProcessBinding();

  ProcessBinding(const ProcessBinding&) = delete;
  ProcessBinding& operator=(const ProcessBinding&) = delete;
};

/// Thrown out of SpinPause when a global abort is requested (watchdog
/// detected a stall). Workers catch it at the top of their loop; it is a
/// run-level failure signal, not part of the simulated execution.
struct RunAborted {};

/// Requests/clears/queries the global abort flag honoured by SpinPause.
void RequestGlobalAbort();
void ResetGlobalAbort();
bool GlobalAbortRequested();

/// One hardware spin-wait hint (x86 `pause`, aarch64 `yield`): tells the
/// core a spin loop is in progress, freeing pipeline resources for the
/// sibling hyperthread and cutting the memory-order-violation flush when
/// the awaited line finally arrives. No-op where unsupported.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Tunables for the staged spin-wait (SpinPause). Mutable global, read on
/// the slow (post-burst) path only; set before starting workers. The fork
/// harness overrides spin_budget_us per run (ForkCrashConfig) and restores
/// it afterwards.
struct SpinConfig {
  /// Stage-3 waits use futex parking when the caller supplies a futex
  /// word; false falls back to bounded sleeps (measurement ablation).
  bool park_enabled = true;
  /// Stage-2 wall-clock budget: total time spent yielding before a wait
  /// escalates to stage 3 (parking/sleeping). 0 escalates immediately.
  /// Iteration counts alone under-escalate when the holder is descheduled
  /// (threads >> cores): each yield can burn a scheduling quantum.
  uint32_t spin_budget_us = 100;
  /// First park timeout; doubles per consecutive park within one wait.
  /// The timeout is a liveness backstop, not the wake path: it rescues
  /// waiters whose waker was SIGKILLed between its store and its wake.
  uint32_t park_min_us = 1000;
  /// Park timeout ceiling (bounds lost-wake rescue latency and the
  /// watchdog-visible progress gap of a parked process).
  uint32_t park_max_us = 50000;
};
SpinConfig& spin_config();

/// Cooperative back-off used inside spin loops, in escalating stages by
/// iteration count: a short pure-spin window with exponentially growing
/// `CpuRelax` bursts (cheap when the wait is tens of cycles), then OS
/// yields so oversubscribed runs make progress, and — once the yields
/// have burned spin_config().spin_budget_us of wall clock — bounded
/// sleeps, so a descheduled holder doesn't make every waiter spin whole
/// scheduling quanta. Throws RunAborted if a global abort has been
/// requested (checked every few yields, not every one). Under the
/// deterministic simulator, yields to the fiber scheduler instead.
/// Callers pass a per-wait iteration counter that grows without bound
/// (`SpinPause(iter++)`), which the staging and the abort-check period
/// rely on.
void SpinPause(uint64_t iteration);

/// Parking variant: same staging, but stage 3 parks the caller on
/// `futex_word` (FUTEX_WAIT, shared) while it still holds `expected` —
/// the kernel's value check closes the lost-wakeup race against a
/// concurrent writer. Wait loops pass the awaited rmr::Atomic's
/// futex_word()/futex_expected(v) for the value they just observed; any
/// instrumented write to that variable wakes the parked waiters (the
/// write probes call rmr_detail::MaybeWakeParked). Timeouts per
/// SpinConfig back-stop wakers that died between store and wake. Parking
/// consults the crash controller at site "h.park.brk" (before the waiter
/// count is published), so the fork harness can SIGKILL a process on the
/// edge of parking; the wake path consults "h.unpark.brk".
void SpinPause(uint64_t iteration, const void* futex_word, uint32_t expected);

/// Installs the park lot used by SpinPause parking and the write-probe
/// wake hook; returns the previous lot. The fork harness points this at a
/// segment-resident lot before forking (children inherit the pointer), so
/// waiter counts are shared across processes; nullptr restores the
/// built-in process-local lot.
rmr_detail::ParkLot* InstallParkLot(rmr_detail::ParkLot* lot);

/// Wakes every parked waiter in the current lot (FUTEX_WAKE on each
/// bucket's last-parked address). Recovery aid: a respawned fork-harness
/// child calls this so waiters parked across a SIGKILL-torn wake resume
/// immediately instead of riding out their timeout.
void WakeAllParked();

/// Fiber-scheduler integration (sim/fiber_sim): when a hook is installed
/// on the calling thread, every instrumented shared-memory operation and
/// every SpinPause yields through it. The hook may throw (RunAborted) to
/// unwind a stuck fiber. Installing/clearing the hook maintains the
/// calling context's kSimHook fast-flag.
using SimYieldHook = void (*)(void* arg);
void SetSimYieldHook(SimYieldHook hook, void* arg);
/// Invokes the hook if one is installed (called by the instrumentation).
void SimYieldPoint();

}  // namespace rme
