// Per-process (thread-local) execution context: process id, RMR counters,
// and the crash controller consulted on every shared-memory operation.
//
// The harness installs a ProcessContext on each worker thread before
// running the Algorithm-1 loop; lock code never touches this directly —
// it flows through rmr::Atomic instrumentation.
#pragma once

#include <cstdint>

#include "rmr/memory_model.hpp"

namespace rme {

class CrashController;  // crash/crash.hpp

struct ProcessContext {
  int pid = kMemoryNode;          ///< process id in [0, n); kMemoryNode = unbound
  OpCounters counters;            ///< cumulative counts for this thread
  CrashController* crash = nullptr;  ///< may be null (no injection)
  /// True while the process executes its critical section; consulted by
  /// crash bookkeeping (a crash in CS leaves a reentry obligation).
  bool in_cs = false;
  /// Site label of the most recent shared-memory operation. Diagnostic:
  /// the harness watchdog prints it on a stall, which pinpoints the spin
  /// loop a stuck process is in.
  const char* last_site = "";
};

/// Registry of currently bound contexts (diagnostics; read by the stall
/// watchdog). Entries are owned by the bound threads.
ProcessContext* BoundContext(int pid);

/// The context bound to the calling thread (a default, unbound context is
/// provided so library code also works on non-harness threads).
ProcessContext& CurrentProcess();

/// Binds/unbinds the calling thread to a process id. The harness uses
/// RAII (ProcessBinding) around each worker's lifetime.
class ProcessBinding {
 public:
  ProcessBinding(int pid, CrashController* crash);
  ~ProcessBinding();

  ProcessBinding(const ProcessBinding&) = delete;
  ProcessBinding& operator=(const ProcessBinding&) = delete;
};

/// Thrown out of SpinPause when a global abort is requested (watchdog
/// detected a stall). Workers catch it at the top of their loop; it is a
/// run-level failure signal, not part of the simulated execution.
struct RunAborted {};

/// Requests/clears/queries the global abort flag honoured by SpinPause.
void RequestGlobalAbort();
void ResetGlobalAbort();
bool GlobalAbortRequested();

/// Cooperative back-off used inside spin loops: yields to the OS
/// scheduler periodically so oversubscribed runs make progress. Throws
/// RunAborted if a global abort has been requested. Under the
/// deterministic simulator, yields to the fiber scheduler instead.
void SpinPause(uint64_t iteration);

/// Fiber-scheduler integration (sim/fiber_sim): when a hook is installed
/// on the calling thread, every instrumented shared-memory operation and
/// every SpinPause yields through it. The hook may throw (RunAborted) to
/// unwind a stuck fiber.
using SimYieldHook = void (*)(void* arg);
void SetSimYieldHook(SimYieldHook hook, void* arg);
/// Invokes the hook if one is installed (called by the instrumentation).
void SimYieldPoint();

}  // namespace rme
