// Process binding, spin-wait, and simulator-hook plumbing around the
// thread-local ProcessContext (rmr/memory_model.hpp).
//
// The harness installs a ProcessContext on each worker thread before
// running the Algorithm-1 loop; lock code never touches this directly —
// it flows through rmr::Atomic instrumentation.
#pragma once

#include <atomic>
#include <cstdint>

#include "rmr/memory_model.hpp"

namespace rme {

class CrashController;  // crash/crash.hpp

/// Registry of currently bound contexts (diagnostics; read by the stall
/// watchdog). Entries are owned by the bound threads.
ProcessContext* BoundContext(int pid);

/// Binds/unbinds the calling thread to a process id. The harness uses
/// RAII (ProcessBinding) around each worker's lifetime. A non-null
/// `mirror` makes every instrumented op flush the counters into that
/// (segment-resident) slot, and seeds the local counters from the slot's
/// current value so counts stay cumulative and monotone across the
/// respawns of a killed process.
///
/// Binding is also where the probe's `fast_flags` word is computed:
/// bound/crash/mirror from the arguments, sim-hook from the thread's
/// installed yield hook, and a snapshot of memory_model_config().cc_strict
/// (mutating the config while a binding is live is a bug; the destructor
/// asserts the snapshot still matches in debug builds).
class ProcessBinding {
 public:
  ProcessBinding(int pid, CrashController* crash,
                 SharedOpCounters* mirror = nullptr);
  ~ProcessBinding();

  ProcessBinding(const ProcessBinding&) = delete;
  ProcessBinding& operator=(const ProcessBinding&) = delete;
};

/// Thrown out of SpinPause when a global abort is requested (watchdog
/// detected a stall). Workers catch it at the top of their loop; it is a
/// run-level failure signal, not part of the simulated execution.
struct RunAborted {};

/// Requests/clears/queries the global abort flag honoured by SpinPause.
void RequestGlobalAbort();
void ResetGlobalAbort();
bool GlobalAbortRequested();

/// One hardware spin-wait hint (x86 `pause`, aarch64 `yield`): tells the
/// core a spin loop is in progress, freeing pipeline resources for the
/// sibling hyperthread and cutting the memory-order-violation flush when
/// the awaited line finally arrives. No-op where unsupported.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Cooperative back-off used inside spin loops, in escalating stages by
/// iteration count: a short pure-spin window with exponentially growing
/// `CpuRelax` bursts (cheap when the wait is tens of cycles), then OS
/// yields so oversubscribed runs make progress. Throws RunAborted if a
/// global abort has been requested (checked every few yields, not every
/// one). Under the deterministic simulator, yields to the fiber scheduler
/// instead. Callers pass a per-wait iteration counter that grows without
/// bound (`SpinPause(iter++)`), which the staging and the abort-check
/// period rely on.
void SpinPause(uint64_t iteration);

/// Fiber-scheduler integration (sim/fiber_sim): when a hook is installed
/// on the calling thread, every instrumented shared-memory operation and
/// every SpinPause yields through it. The hook may throw (RunAborted) to
/// unwind a stuck fiber. Installing/clearing the hook maintains the
/// calling context's kSimHook fast-flag.
using SimYieldHook = void (*)(void* arg);
void SetSimYieldHook(SimYieldHook hook, void* arg);
/// Invokes the hook if one is installed (called by the instrumentation).
void SimYieldPoint();

}  // namespace rme
