// Per-process (thread-local) execution context: process id, RMR counters,
// and the crash controller consulted on every shared-memory operation.
//
// The harness installs a ProcessContext on each worker thread before
// running the Algorithm-1 loop; lock code never touches this directly —
// it flows through rmr::Atomic instrumentation.
#pragma once

#include <atomic>
#include <cstdint>

#include "rmr/memory_model.hpp"

namespace rme {

class CrashController;  // crash/crash.hpp

/// Layout: the first cache line holds exactly the fields the
/// instrumentation touches on every shared-memory operation (hot); the
/// diagnostic fields the stall watchdog polls from its own thread live on
/// a separate line (cold), so watchdog reads never steal the owner's hot
/// line. The struct stays copyable (hand-written, since last_site is an
/// atomic): the fiber simulator swaps whole images in and out of the
/// thread-local slot, always from the owning thread, so relaxed copies of
/// last_site are race-free.
struct alignas(kCacheLineBytes) ProcessContext {
  // --- hot: written by the owner on every instrumented op ---
  int pid = kMemoryNode;          ///< process id in [0, n); kMemoryNode = unbound
  CrashController* crash = nullptr;  ///< may be null (no injection)
  /// Sharded logical clock: next unissued tick / exclusive end of the
  /// block this context reserved from the global counter. next == end
  /// means "no block"; the next tick reserves a fresh block.
  uint64_t clock_next = 0;
  uint64_t clock_end = 0;
  OpCounters counters;            ///< cumulative counts for this thread
  /// Optional segment-resident mirror slot (fork harness): when non-null,
  /// every instrumented op ends with relaxed stores of `counters` into it,
  /// so the counts survive a SIGKILL of this process losing at most the
  /// one in-flight op. The slot is this process's own cache line — the
  /// stores never contend with other processes' accounting.
  SharedOpCounters* mirror = nullptr;
  /// True while the process executes its critical section; consulted by
  /// crash bookkeeping (a crash in CS leaves a reentry obligation).
  bool in_cs = false;

  // --- cold: polled cross-thread by the stall watchdog ---
  /// Site label of the most recent shared-memory operation. Diagnostic:
  /// the harness watchdog prints it on a stall, which pinpoints the spin
  /// loop a stuck process is in. Atomic (relaxed) because the watchdog
  /// thread reads it concurrently with the owner's writes; the payload is
  /// always a string literal, so a relaxed pointer exchange is safe.
  alignas(kCacheLineBytes) std::atomic<const char*> last_site{""};
  /// counters.ops as of the most recent operation's pre-op probe; kept
  /// beside last_site (same cold line, same relaxed discipline) so the
  /// watchdog can report per-process op counts without racing on the
  /// hot-path OpCounters fields.
  std::atomic<uint64_t> ops_snapshot{0};

  ProcessContext() = default;
  ProcessContext(const ProcessContext& o) { *this = o; }
  ProcessContext& operator=(const ProcessContext& o) {
    if (this == &o) return *this;
    pid = o.pid;
    crash = o.crash;
    clock_next = o.clock_next;
    clock_end = o.clock_end;
    counters = o.counters;
    mirror = o.mirror;
    in_cs = o.in_cs;
    last_site.store(o.last_site.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    ops_snapshot.store(o.ops_snapshot.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
};

/// Registry of currently bound contexts (diagnostics; read by the stall
/// watchdog). Entries are owned by the bound threads.
ProcessContext* BoundContext(int pid);

/// The context bound to the calling thread (a default, unbound context is
/// provided so library code also works on non-harness threads).
ProcessContext& CurrentProcess();

/// Binds/unbinds the calling thread to a process id. The harness uses
/// RAII (ProcessBinding) around each worker's lifetime. A non-null
/// `mirror` makes every instrumented op flush the counters into that
/// (segment-resident) slot, and seeds the local counters from the slot's
/// current value so counts stay cumulative and monotone across the
/// respawns of a killed process.
class ProcessBinding {
 public:
  ProcessBinding(int pid, CrashController* crash,
                 SharedOpCounters* mirror = nullptr);
  ~ProcessBinding();

  ProcessBinding(const ProcessBinding&) = delete;
  ProcessBinding& operator=(const ProcessBinding&) = delete;
};

/// Thrown out of SpinPause when a global abort is requested (watchdog
/// detected a stall). Workers catch it at the top of their loop; it is a
/// run-level failure signal, not part of the simulated execution.
struct RunAborted {};

/// Requests/clears/queries the global abort flag honoured by SpinPause.
void RequestGlobalAbort();
void ResetGlobalAbort();
bool GlobalAbortRequested();

/// One hardware spin-wait hint (x86 `pause`, aarch64 `yield`): tells the
/// core a spin loop is in progress, freeing pipeline resources for the
/// sibling hyperthread and cutting the memory-order-violation flush when
/// the awaited line finally arrives. No-op where unsupported.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Cooperative back-off used inside spin loops, in escalating stages by
/// iteration count: a short pure-spin window with exponentially growing
/// `CpuRelax` bursts (cheap when the wait is tens of cycles), then OS
/// yields so oversubscribed runs make progress. Throws RunAborted if a
/// global abort has been requested. Under the deterministic simulator,
/// yields to the fiber scheduler instead.
void SpinPause(uint64_t iteration);

/// Fiber-scheduler integration (sim/fiber_sim): when a hook is installed
/// on the calling thread, every instrumented shared-memory operation and
/// every SpinPause yields through it. The hook may throw (RunAborted) to
/// unwind a stuck fiber.
using SimYieldHook = void (*)(void* arg);
void SetSimYieldHook(SimYieldHook hook, void* arg);
/// Invokes the hook if one is installed (called by the instrumentation).
void SimYieldPoint();

}  // namespace rme
