#include "rmr/counters.hpp"

#include <thread>

namespace rme {

namespace rmr_detail {
// The per-thread context behind CurrentProcess(). constinit: no dynamic
// initializer, so the cross-TU inline accessors compile to a bare TLS
// address computation (no init-guard), which is what makes the fused
// probe's single resolution cheap.
constinit thread_local ProcessContext g_tls_context;
}  // namespace rmr_detail

using rmr_detail::g_tls_context;

namespace {
/// Global logical-clock reservation frontier: every tick in [0,
/// g_clock_next) has been handed to some thread's block; ticks issued so
/// far are exactly the non-gap portion of those blocks. Alone on its
/// cache line — it is the only globally contended word left on the
/// instrumentation hot path, touched once per clock_block ops per thread.
alignas(kCacheLineBytes) std::atomic<uint64_t> g_clock_next{0};

/// Bound-context registry, one slot per cache line: neighbouring pids'
/// bind/unbind and the watchdog's polling must not invalidate each other.
struct alignas(kCacheLineBytes) BoundSlot {
  std::atomic<ProcessContext*> ptr{nullptr};
};
BoundSlot g_bound[kMaxProcs];

std::atomic<bool> g_abort{false};
thread_local SimYieldHook tls_yield_hook = nullptr;
thread_local void* tls_yield_arg = nullptr;
}  // namespace

ProcessContext* BoundContext(int pid) {
  return g_bound[pid].ptr.load(std::memory_order_acquire);
}

MemoryModelConfig& memory_model_config() {
  static MemoryModelConfig config;
  return config;
}

uint64_t LogicalNow() { return g_clock_next.load(std::memory_order_relaxed); }

namespace rmr_detail {

void RefillClockBlock(ProcessContext& ctx) {
  // Block exhausted (or never reserved): grab the next clock_block
  // ticks. With clock_block == 1 this is the seed's per-op fetch_add,
  // tick for tick.
  uint64_t block = memory_model_config().clock_block;
  if (block == 0) block = 1;
  ctx.clock_next = g_clock_next.fetch_add(block, std::memory_order_relaxed);
  ctx.clock_end = ctx.clock_next + block;
}

}  // namespace rmr_detail

ProcessBinding::ProcessBinding(int pid, CrashController* crash,
                               SharedOpCounters* mirror) {
  ProcessContext& ctx = g_tls_context;
  RME_CHECK_MSG(ctx.pid == kMemoryNode,
                "thread is already bound to a process");
  RME_CHECK(pid >= 0 && pid < kMaxProcs);
  ctx.pid = pid;
  ctx.crash = crash;
  // With a mirror slot, resume from the slot's surviving value (a fresh
  // slot reads as zero) so the counts stay cumulative across the respawns
  // of a SIGKILLed process; without one, start from zero as always.
  ctx.counters = mirror != nullptr ? mirror->Snapshot() : OpCounters{};
  ctx.mirror = mirror;
  // Everything the per-op probe branches on, resolved once here. The
  // cc_strict snapshot hoists the memory_model_config() static-guard read
  // out of every CountWrite; the destructor checks it stayed valid.
  uint32_t flags = ProcessContext::kBound;
  if (crash != nullptr) flags |= ProcessContext::kHasCrash;
  if (mirror != nullptr) flags |= ProcessContext::kHasMirror;
  if (tls_yield_hook != nullptr) flags |= ProcessContext::kSimHook;
  if (memory_model_config().cc_strict) flags |= ProcessContext::kCcStrict;
  ctx.fast_flags = flags;
  g_bound[pid].ptr.store(&ctx, std::memory_order_release);
}

ProcessBinding::~ProcessBinding() {
  ProcessContext& ctx = g_tls_context;
  RME_DCHECK_MSG(
      memory_model_config().cc_strict ==
          ((ctx.fast_flags & ProcessContext::kCcStrict) != 0),
      "memory_model_config().cc_strict mutated while a binding was live");
  g_bound[ctx.pid].ptr.store(nullptr, std::memory_order_release);
  ctx = ProcessContext{};
  // The yield hook outlives bindings (the fiber scheduler installs it for
  // the whole sim run); keep the fresh context's probe flag in sync.
  if (tls_yield_hook != nullptr) ctx.fast_flags |= ProcessContext::kSimHook;
}

void RequestGlobalAbort() { g_abort.store(true, std::memory_order_relaxed); }
void ResetGlobalAbort() { g_abort.store(false, std::memory_order_relaxed); }
bool GlobalAbortRequested() { return g_abort.load(std::memory_order_relaxed); }

void SetSimYieldHook(SimYieldHook hook, void* arg) {
  tls_yield_hook = hook;
  tls_yield_arg = arg;
  if (hook != nullptr) {
    g_tls_context.fast_flags |= ProcessContext::kSimHook;
  } else {
    g_tls_context.fast_flags &= ~ProcessContext::kSimHook;
  }
}

void SimYieldPoint() {
  if (tls_yield_hook != nullptr) tls_yield_hook(tls_yield_arg);
}

void SpinPause(uint64_t iteration) {
  if (tls_yield_hook != nullptr) {
    // Deterministic simulator: hand control back to the fiber scheduler
    // on every spin iteration (real time plays no role there).
    tls_yield_hook(tls_yield_arg);
    return;
  }
  // Stage 1 — very short waits: exponentially growing pause bursts (1,
  // 2, 4 `pause`s). When the writer is mid-CS on another core this wins
  // the handover without a syscall; it is short enough not to starve a
  // descheduled writer when cores are oversubscribed (burning long pause
  // bursts before the first yield measurably collapses throughput there).
  constexpr uint64_t kSpinIters = 3;
  // Stage 2 — the writer is likely descheduled (more simulated processes
  // than cores is the common case here), so give it CPU time every
  // iteration. The watchdog-abort check rides along only every
  // kAbortCheckPeriod yields: the flag is a plain relaxed load, but on a
  // contended run every waiter re-reading one shared word each iteration
  // is avoidable coherence traffic, and abort latency of ~32 yields is
  // noise against the watchdog's second-scale stall threshold. Callers
  // pass a monotonically growing iteration, so the check always recurs.
  constexpr uint64_t kAbortCheckPeriod = 32;  // power of two (mask below)
  if (iteration < kSpinIters) {
    uint64_t spins = uint64_t{1} << iteration;
    while (spins-- > 0) CpuRelax();
    return;
  }
  if ((iteration & (kAbortCheckPeriod - 1)) == 0 &&
      g_abort.load(std::memory_order_relaxed)) {
    throw RunAborted{};
  }
  std::this_thread::yield();
}

}  // namespace rme
