#include "rmr/counters.hpp"

#include <thread>

namespace rme {

namespace {
thread_local ProcessContext tls_context;

/// Global logical-clock reservation frontier: every tick in [0,
/// g_clock_next) has been handed to some thread's block; ticks issued so
/// far are exactly the non-gap portion of those blocks. Alone on its
/// cache line — it is the only globally contended word left on the
/// instrumentation hot path, touched once per clock_block ops per thread.
alignas(kCacheLineBytes) std::atomic<uint64_t> g_clock_next{0};

/// Bound-context registry, one slot per cache line: neighbouring pids'
/// bind/unbind and the watchdog's polling must not invalidate each other.
struct alignas(kCacheLineBytes) BoundSlot {
  std::atomic<ProcessContext*> ptr{nullptr};
};
BoundSlot g_bound[kMaxProcs];
}  // namespace

ProcessContext* BoundContext(int pid) {
  return g_bound[pid].ptr.load(std::memory_order_acquire);
}

MemoryModelConfig& memory_model_config() {
  static MemoryModelConfig config;
  return config;
}

uint64_t LogicalNow() { return g_clock_next.load(std::memory_order_relaxed); }

uint64_t LogicalTick() {
  // clock_next always equals the last tick handed out to this thread
  // (AdvanceLogicalClock pre-increments), or 0 before the first op.
  return tls_context.clock_next;
}

uint64_t AdvanceLogicalClock() {
  ProcessContext& ctx = tls_context;
  if (ctx.clock_next == ctx.clock_end) {
    // Block exhausted (or never reserved): grab the next clock_block
    // ticks. With clock_block == 1 this is the seed's per-op fetch_add,
    // tick for tick.
    uint64_t block = memory_model_config().clock_block;
    if (block == 0) block = 1;
    ctx.clock_next = g_clock_next.fetch_add(block, std::memory_order_relaxed);
    ctx.clock_end = ctx.clock_next + block;
  }
  return ++ctx.clock_next;
}

ProcessContext& CurrentProcess() { return tls_context; }

ProcessBinding::ProcessBinding(int pid, CrashController* crash,
                               SharedOpCounters* mirror) {
  RME_CHECK_MSG(tls_context.pid == kMemoryNode,
                "thread is already bound to a process");
  RME_CHECK(pid >= 0 && pid < kMaxProcs);
  tls_context.pid = pid;
  tls_context.crash = crash;
  // With a mirror slot, resume from the slot's surviving value (a fresh
  // slot reads as zero) so the counts stay cumulative across the respawns
  // of a SIGKILLed process; without one, start from zero as always.
  tls_context.counters = mirror != nullptr ? mirror->Snapshot() : OpCounters{};
  tls_context.mirror = mirror;
  tls_context.in_cs = false;
  g_bound[pid].ptr.store(&tls_context, std::memory_order_release);
}

ProcessBinding::~ProcessBinding() {
  g_bound[tls_context.pid].ptr.store(nullptr, std::memory_order_release);
  tls_context = ProcessContext{};
}

namespace {
std::atomic<bool> g_abort{false};
thread_local SimYieldHook tls_yield_hook = nullptr;
thread_local void* tls_yield_arg = nullptr;
}

void RequestGlobalAbort() { g_abort.store(true, std::memory_order_relaxed); }
void ResetGlobalAbort() { g_abort.store(false, std::memory_order_relaxed); }
bool GlobalAbortRequested() { return g_abort.load(std::memory_order_relaxed); }

void SetSimYieldHook(SimYieldHook hook, void* arg) {
  tls_yield_hook = hook;
  tls_yield_arg = arg;
}

void SimYieldPoint() {
  if (tls_yield_hook != nullptr) tls_yield_hook(tls_yield_arg);
}

void SpinPause(uint64_t iteration) {
  if (tls_yield_hook != nullptr) {
    // Deterministic simulator: hand control back to the fiber scheduler
    // on every spin iteration (real time plays no role there).
    tls_yield_hook(tls_yield_arg);
    return;
  }
  // Stage 1 — very short waits: exponentially growing pause bursts (1,
  // 2, 4 `pause`s). When the writer is mid-CS on another core this wins
  // the handover without a syscall; it is short enough not to starve a
  // descheduled writer when cores are oversubscribed (burning long pause
  // bursts before the first yield measurably collapses throughput there).
  constexpr uint64_t kSpinIters = 3;
  if (iteration < kSpinIters) {
    uint64_t spins = uint64_t{1} << iteration;
    while (spins-- > 0) CpuRelax();
    return;
  }
  // Stage 2 — the writer is likely descheduled (more simulated processes
  // than cores is the common case here), so give it CPU time every
  // iteration, and check for a watchdog abort.
  if (g_abort.load(std::memory_order_relaxed)) throw RunAborted{};
  std::this_thread::yield();
}

namespace rmr_detail {

namespace {

/// Flushes the private counters into the segment-resident slot. Relaxed
/// stores on the owner's own cache line: a SIGKILL between the counter
/// bump and this flush loses exactly the one in-flight op, never more.
inline void FlushMirror(ProcessContext& ctx) {
  SharedOpCounters* m = ctx.mirror;
  m->ops.store(ctx.counters.ops, std::memory_order_relaxed);
  m->cc_rmrs.store(ctx.counters.cc_rmrs, std::memory_order_relaxed);
  m->dsm_rmrs.store(ctx.counters.dsm_rmrs, std::memory_order_relaxed);
}

}  // namespace

void CountRead(int home, std::atomic<uint64_t>& cc_mask) {
  ProcessContext& ctx = tls_context;
  AdvanceLogicalClock();
  ++ctx.counters.ops;
  if (ctx.pid == kMemoryNode) return;  // unbound thread: no accounting
  const uint64_t bit = 1ULL << ctx.pid;
  // CC: hit iff we hold a valid copy; miss installs one.
  if ((cc_mask.load(std::memory_order_relaxed) & bit) == 0) {
    ++ctx.counters.cc_rmrs;
    cc_mask.fetch_or(bit, std::memory_order_relaxed);
  }
  // DSM: remote iff the variable is homed elsewhere.
  if (home != ctx.pid) ++ctx.counters.dsm_rmrs;
  if (ctx.mirror != nullptr) FlushMirror(ctx);
}

void CountWrite(int home, std::atomic<uint64_t>& cc_mask) {
  ProcessContext& ctx = tls_context;
  AdvanceLogicalClock();
  ++ctx.counters.ops;
  if (ctx.pid == kMemoryNode) return;
  const uint64_t bit = 1ULL << ctx.pid;
  // CC: every write/RMW goes to memory and invalidates other copies.
  ++ctx.counters.cc_rmrs;
  const uint64_t keep = memory_model_config().cc_strict ? 0 : bit;
  cc_mask.store(keep, std::memory_order_relaxed);
  if (home != ctx.pid) ++ctx.counters.dsm_rmrs;
  if (ctx.mirror != nullptr) FlushMirror(ctx);
}

}  // namespace rmr_detail

}  // namespace rme
