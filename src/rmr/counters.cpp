#include "rmr/counters.hpp"

#include <thread>

namespace rme {

namespace {
thread_local ProcessContext tls_context;
std::atomic<uint64_t> g_logical_clock{0};
std::atomic<ProcessContext*> g_bound[kMaxProcs];
}  // namespace

ProcessContext* BoundContext(int pid) {
  return g_bound[pid].load(std::memory_order_acquire);
}

MemoryModelConfig& memory_model_config() {
  static MemoryModelConfig config;
  return config;
}

uint64_t LogicalNow() { return g_logical_clock.load(std::memory_order_relaxed); }

uint64_t AdvanceLogicalClock() {
  return g_logical_clock.fetch_add(1, std::memory_order_relaxed) + 1;
}

ProcessContext& CurrentProcess() { return tls_context; }

ProcessBinding::ProcessBinding(int pid, CrashController* crash) {
  RME_CHECK_MSG(tls_context.pid == kMemoryNode,
                "thread is already bound to a process");
  RME_CHECK(pid >= 0 && pid < kMaxProcs);
  tls_context.pid = pid;
  tls_context.crash = crash;
  tls_context.counters = OpCounters{};
  tls_context.in_cs = false;
  g_bound[pid].store(&tls_context, std::memory_order_release);
}

ProcessBinding::~ProcessBinding() {
  g_bound[tls_context.pid].store(nullptr, std::memory_order_release);
  tls_context = ProcessContext{};
}

namespace {
std::atomic<bool> g_abort{false};
thread_local SimYieldHook tls_yield_hook = nullptr;
thread_local void* tls_yield_arg = nullptr;
}

void RequestGlobalAbort() { g_abort.store(true, std::memory_order_relaxed); }
void ResetGlobalAbort() { g_abort.store(false, std::memory_order_relaxed); }
bool GlobalAbortRequested() { return g_abort.load(std::memory_order_relaxed); }

void SetSimYieldHook(SimYieldHook hook, void* arg) {
  tls_yield_hook = hook;
  tls_yield_arg = arg;
}

void SimYieldPoint() {
  if (tls_yield_hook != nullptr) tls_yield_hook(tls_yield_arg);
}

void SpinPause(uint64_t iteration) {
  if (tls_yield_hook != nullptr) {
    // Deterministic simulator: hand control back to the fiber scheduler
    // on every spin iteration (real time plays no role there).
    tls_yield_hook(tls_yield_arg);
    return;
  }
  // Yield increasingly often the longer we spin; with more simulated
  // processes than cores, the writer we are waiting on needs CPU time.
  if ((iteration & 0x3f) == 0x3f) {
    if (g_abort.load(std::memory_order_relaxed)) throw RunAborted{};
    std::this_thread::yield();
  }
}

namespace rmr_detail {

void CountRead(int home, std::atomic<uint64_t>& cc_mask) {
  ProcessContext& ctx = tls_context;
  AdvanceLogicalClock();
  ++ctx.counters.ops;
  if (ctx.pid == kMemoryNode) return;  // unbound thread: no accounting
  const uint64_t bit = 1ULL << ctx.pid;
  // CC: hit iff we hold a valid copy; miss installs one.
  if ((cc_mask.load(std::memory_order_relaxed) & bit) == 0) {
    ++ctx.counters.cc_rmrs;
    cc_mask.fetch_or(bit, std::memory_order_relaxed);
  }
  // DSM: remote iff the variable is homed elsewhere.
  if (home != ctx.pid) ++ctx.counters.dsm_rmrs;
}

void CountWrite(int home, std::atomic<uint64_t>& cc_mask) {
  ProcessContext& ctx = tls_context;
  AdvanceLogicalClock();
  ++ctx.counters.ops;
  if (ctx.pid == kMemoryNode) return;
  const uint64_t bit = 1ULL << ctx.pid;
  // CC: every write/RMW goes to memory and invalidates other copies.
  ++ctx.counters.cc_rmrs;
  const uint64_t keep = memory_model_config().cc_strict ? 0 : bit;
  cc_mask.store(keep, std::memory_order_relaxed);
  if (home != ctx.pid) ++ctx.counters.dsm_rmrs;
}

}  // namespace rmr_detail

}  // namespace rme
