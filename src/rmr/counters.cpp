#include "rmr/counters.hpp"

#include <chrono>
#include <climits>
#include <ctime>
#include <string>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "crash/crash.hpp"

namespace rme {

namespace rmr_detail {
// The per-thread context behind CurrentProcess(). constinit: no dynamic
// initializer, so the cross-TU inline accessors compile to a bare TLS
// address computation (no init-guard), which is what makes the fused
// probe's single resolution cheap.
constinit thread_local ProcessContext g_tls_context;
}  // namespace rmr_detail

using rmr_detail::g_tls_context;

namespace {
/// Global logical-clock reservation frontier: every tick in [0,
/// g_clock_next) has been handed to some thread's block; ticks issued so
/// far are exactly the non-gap portion of those blocks. Alone on its
/// cache line — it is the only globally contended word left on the
/// instrumentation hot path, touched once per clock_block ops per thread.
alignas(kCacheLineBytes) std::atomic<uint64_t> g_clock_next{0};

/// Bound-context registry, one slot per cache line: neighbouring pids'
/// bind/unbind and the watchdog's polling must not invalidate each other.
struct alignas(kCacheLineBytes) BoundSlot {
  std::atomic<ProcessContext*> ptr{nullptr};
};
BoundSlot g_bound[kMaxProcs];

std::atomic<bool> g_abort{false};
thread_local SimYieldHook tls_yield_hook = nullptr;
thread_local void* tls_yield_arg = nullptr;

/// The built-in process-local park lot (thread-mode default). The fork
/// harness swaps in a segment-resident lot via InstallParkLot.
constinit rmr_detail::ParkLot g_default_park_lot;

/// Wall-clock start of the current wait's stage 2, and the number of
/// consecutive stage-3 parks within it (drives the timeout doubling).
/// Both are (re)stamped when a wait first leaves the burst stage, so a
/// counter reused across waits cannot carry a stale budget forward.
thread_local uint64_t tls_wait_start_ns = 0;
thread_local uint32_t tls_park_streak = 0;

uint64_t MonoNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

/// Crash-controller consult for the parking protocol's own crash sites
/// ("h.park.brk" before a waiter publishes itself, "h.unpark.brk" before
/// a waker's FUTEX_WAKE). Not an instrumented op: no tick, no RMR — the
/// parking machinery must be invisible to the accounting.
void ParkSiteConsult(const char* site) {
#ifndef RME_NATIVE_ATOMICS
  ProcessContext& ctx = g_tls_context;
  if ((ctx.fast_flags & ProcessContext::kHasCrash) == 0) return;
  if (ctx.crash->ShouldCrash(ctx.pid, site, /*after_op=*/true)) {
    throw ProcessCrash{ctx.pid, site, true, ctx.clock_next};
  }
#else
  (void)site;
#endif
}

#if defined(__linux__)
/// FUTEX_WAIT (shared, so it pairs across fork'd processes on MAP_SHARED
/// segments) with a bounded timeout; every return reason — wake, value
/// mismatch, timeout, EINTR — sends the caller back to its recheck loop.
void FutexWait(const void* addr, uint32_t expected, uint64_t timeout_us) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_us / 1'000'000);
  ts.tv_nsec = static_cast<long>((timeout_us % 1'000'000) * 1000);
  syscall(SYS_futex, const_cast<void*>(addr), FUTEX_WAIT, expected, &ts,
          nullptr, 0);
}
#endif

/// Stage 3 with a futex word: publish into the lot (bucket first, then
/// the total the write probes gate on — both seq_cst, so a writer that
/// misses the counts is ordered before the kernel's value check and the
/// wait refuses to sleep), sleep, withdraw. A SIGKILL while parked leaks
/// the counts in a segment lot; that only costs spurious bucket checks,
/// and the respawned child's WakeAllParked plus the timeout keep every
/// surviving waiter live.
void ParkOn(const void* addr, uint32_t expected, uint64_t timeout_us) {
  ParkSiteConsult("h.park.brk");  // may throw/SIGKILL: before publishing
#if defined(__linux__)
  rmr_detail::ParkLot* lot =
      rmr_detail::g_park_lot.load(std::memory_order_relaxed);
  rmr_detail::ParkBucket& b =
      lot->buckets[rmr_detail::ParkLot::BucketIndex(addr)];
  b.last_addr.store(reinterpret_cast<uintptr_t>(addr),
                    std::memory_order_relaxed);
  b.waiters.fetch_add(1, std::memory_order_seq_cst);
  lot->total.fetch_add(1, std::memory_order_seq_cst);
  FutexWait(addr, expected, timeout_us);
  lot->total.fetch_sub(1, std::memory_order_seq_cst);
  b.waiters.fetch_sub(1, std::memory_order_seq_cst);
#else
  (void)addr;
  (void)expected;
  std::this_thread::sleep_for(std::chrono::microseconds(timeout_us));
#endif
}
}  // namespace

ProcessContext* BoundContext(int pid) {
  RME_CHECK_MSG(pid >= 0 && pid < kMaxProcs,
                ("BoundContext queried with out-of-range pid " +
                 std::to_string(pid) +
                 " (attach paths must bind pids in [0, kMaxProcs))")
                    .c_str());
  return g_bound[pid].ptr.load(std::memory_order_acquire);
}

MemoryModelConfig& memory_model_config() {
  static MemoryModelConfig config;
  return config;
}

uint64_t LogicalNow() { return g_clock_next.load(std::memory_order_relaxed); }

namespace rmr_detail {

void RefillClockBlock(ProcessContext& ctx) {
  // Block exhausted (or never reserved): grab the next clock_block
  // ticks. With clock_block == 1 this is the seed's per-op fetch_add,
  // tick for tick.
  uint64_t block = memory_model_config().clock_block;
  if (block == 0) block = 1;
  ctx.clock_next = g_clock_next.fetch_add(block, std::memory_order_relaxed);
  ctx.clock_end = ctx.clock_next + block;
}

}  // namespace rmr_detail

ProcessBinding::ProcessBinding(int pid, CrashController* crash,
                               SharedOpCounters* mirror) {
  ProcessContext& ctx = g_tls_context;
  RME_CHECK_MSG(ctx.pid == kMemoryNode,
                "thread is already bound to a process");
  RME_CHECK_MSG(pid >= 0 && pid < kMaxProcs,
                ("ProcessBinding constructed with out-of-range pid " +
                 std::to_string(pid) +
                 " (g_bound registry and crash streams are sized kMaxProcs)")
                    .c_str());
  ctx.pid = pid;
  ctx.crash = crash;
  // With a mirror slot, resume from the slot's surviving value (a fresh
  // slot reads as zero) so the counts stay cumulative across the respawns
  // of a SIGKILLed process; without one, start from zero as always.
  ctx.counters = mirror != nullptr ? mirror->Snapshot() : OpCounters{};
  ctx.mirror = mirror;
  // Everything the per-op probe branches on, resolved once here. The
  // cc_strict snapshot hoists the memory_model_config() static-guard read
  // out of every CountWrite; the destructor checks it stayed valid.
  uint32_t flags = ProcessContext::kBound;
  if (crash != nullptr) flags |= ProcessContext::kHasCrash;
  if (mirror != nullptr) flags |= ProcessContext::kHasMirror;
  if (tls_yield_hook != nullptr) flags |= ProcessContext::kSimHook;
  if (memory_model_config().cc_strict) flags |= ProcessContext::kCcStrict;
  ctx.fast_flags = flags;
  g_bound[pid].ptr.store(&ctx, std::memory_order_release);
}

ProcessBinding::~ProcessBinding() {
  ProcessContext& ctx = g_tls_context;
  RME_DCHECK_MSG(
      memory_model_config().cc_strict ==
          ((ctx.fast_flags & ProcessContext::kCcStrict) != 0),
      "memory_model_config().cc_strict mutated while a binding was live");
  g_bound[ctx.pid].ptr.store(nullptr, std::memory_order_release);
  ctx = ProcessContext{};
  // The yield hook outlives bindings (the fiber scheduler installs it for
  // the whole sim run); keep the fresh context's probe flag in sync.
  if (tls_yield_hook != nullptr) ctx.fast_flags |= ProcessContext::kSimHook;
}

void RequestGlobalAbort() { g_abort.store(true, std::memory_order_relaxed); }
void ResetGlobalAbort() { g_abort.store(false, std::memory_order_relaxed); }
bool GlobalAbortRequested() { return g_abort.load(std::memory_order_relaxed); }

void SetSimYieldHook(SimYieldHook hook, void* arg) {
  tls_yield_hook = hook;
  tls_yield_arg = arg;
  if (hook != nullptr) {
    g_tls_context.fast_flags |= ProcessContext::kSimHook;
  } else {
    g_tls_context.fast_flags &= ~ProcessContext::kSimHook;
  }
}

void SimYieldPoint() {
  if (tls_yield_hook != nullptr) tls_yield_hook(tls_yield_arg);
}

SpinConfig& spin_config() {
  static SpinConfig config;
  return config;
}

void SpinPause(uint64_t iteration, const void* futex_word, uint32_t expected) {
  if (tls_yield_hook != nullptr) {
    // Deterministic simulator: hand control back to the fiber scheduler
    // on every spin iteration (real time plays no role there — parking
    // and wall-clock budgets are disabled under the hook).
    tls_yield_hook(tls_yield_arg);
    return;
  }
  // Stage 1 — very short waits: exponentially growing pause bursts (1,
  // 2, 4 `pause`s). When the writer is mid-CS on another core this wins
  // the handover without a syscall; it is short enough not to starve a
  // descheduled writer when cores are oversubscribed (burning long pause
  // bursts before the first yield measurably collapses throughput there).
  constexpr uint64_t kSpinIters = 3;
  // Stage 2 — the writer is likely descheduled (more simulated processes
  // than cores is the common case here), so give it CPU time every
  // iteration. The watchdog-abort check rides along only every
  // kAbortCheckPeriod yields: the flag is a plain relaxed load, but on a
  // contended run every waiter re-reading one shared word each iteration
  // is avoidable coherence traffic, and abort latency of ~32 yields is
  // noise against the watchdog's second-scale stall threshold. Callers
  // pass a monotonically growing iteration, so the check always recurs.
  constexpr uint64_t kAbortCheckPeriod = 32;  // power of two (mask below)
  if (iteration < kSpinIters) {
    uint64_t spins = uint64_t{1} << iteration;
    while (spins-- > 0) CpuRelax();
    return;
  }
  if ((iteration & (kAbortCheckPeriod - 1)) == 0 &&
      g_abort.load(std::memory_order_relaxed)) {
    throw RunAborted{};
  }
  const SpinConfig& sc = spin_config();
  if (iteration == kSpinIters) {
    // First post-burst iteration of this wait: open the stage-2 wall-
    // clock budget and reset the park-timeout doubling.
    tls_wait_start_ns = MonoNanos();
    tls_park_streak = 0;
  }
  // Stage 2 is bounded by wall clock, not iterations: with threads >>
  // cores each yield can burn a whole scheduling quantum, so an
  // iteration cap either escalates instantly (cap too low for the
  // contended-but-running case) or spins for quanta (cap too high for
  // the descheduled-holder case). ROADMAP item 4.
  const uint64_t budget_ns = uint64_t{sc.spin_budget_us} * 1000;
  if (budget_ns > 0 && MonoNanos() - tls_wait_start_ns < budget_ns) {
    std::this_thread::yield();
    return;
  }
  // Stage 3 — the wait is long: stop consuming CPU. Timeouts double per
  // consecutive park in this wait (short first naps keep a lost-wake
  // hiccup cheap; later naps amortize the syscall) up to park_max_us.
  // Every stage-3 entry re-checks the abort flag: iterations now cost
  // milliseconds, so the masked check above would be too sparse.
  if (g_abort.load(std::memory_order_relaxed)) throw RunAborted{};
  const uint32_t streak = tls_park_streak;
  tls_park_streak = streak + 1;
  if (sc.park_enabled && futex_word != nullptr) {
    uint64_t timeout_us = uint64_t{sc.park_min_us == 0 ? 1 : sc.park_min_us}
                          << (streak < 6 ? streak : 6);
    if (timeout_us > sc.park_max_us) timeout_us = sc.park_max_us;
    ParkOn(futex_word, expected, timeout_us);
  } else {
    // No futex word (pointer-valued waits, park disabled): bounded naps,
    // growing 50us -> 800us. Short relative to park timeouts because
    // nothing wakes a sleeper early — the nap itself is the latency.
    uint64_t nap_us = uint64_t{50} << (streak < 4 ? streak : 4);
    std::this_thread::sleep_for(std::chrono::microseconds(nap_us));
  }
}

void SpinPause(uint64_t iteration) { SpinPause(iteration, nullptr, 0); }

namespace rmr_detail {

constinit std::atomic<ParkLot*> g_park_lot{&g_default_park_lot};

void FutexWakeSlow(ParkLot* lot, const void* addr) {
#if defined(__linux__)
  ParkBucket& b = lot->buckets[ParkLot::BucketIndex(addr)];
  if (b.waiters.load(std::memory_order_seq_cst) == 0) return;
  // A waiter may be parked on this address: this store is a wake
  // obligation. The consult sits between the store (already visible) and
  // the FUTEX_WAKE, so an injected kill here produces exactly the torn
  // wake the timeout backstop must rescue.
  ParkSiteConsult("h.unpark.brk");
  syscall(SYS_futex, const_cast<void*>(addr), FUTEX_WAKE, INT_MAX, nullptr,
          nullptr, 0);
#else
  (void)lot;
  (void)addr;
#endif
}

}  // namespace rmr_detail

rmr_detail::ParkLot* InstallParkLot(rmr_detail::ParkLot* lot) {
  return rmr_detail::g_park_lot.exchange(
      lot != nullptr ? lot : &g_default_park_lot,
      std::memory_order_seq_cst);
}

void WakeAllParked() {
#if defined(__linux__)
  rmr_detail::ParkLot* lot =
      rmr_detail::g_park_lot.load(std::memory_order_relaxed);
  if (lot->total.load(std::memory_order_seq_cst) == 0) return;
  for (rmr_detail::ParkBucket& b : lot->buckets) {
    if (b.waiters.load(std::memory_order_seq_cst) == 0) continue;
    const uint64_t addr = b.last_addr.load(std::memory_order_relaxed);
    if (addr == 0) continue;
    syscall(SYS_futex, reinterpret_cast<void*>(addr), FUTEX_WAKE, INT_MAX,
            nullptr, nullptr, 0);
  }
#endif
}

}  // namespace rme
