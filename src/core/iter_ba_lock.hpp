// IterBaLock: BA-Lock re-composed iteratively, implementing the paper's
// §7.3 improvement. The nested BaLock re-walks all m levels from level 1
// after every crash (each held level falls through in O(1) steps, so a
// super-passage with F0 own crashes pays O(F0 · x) recovery steps). This
// variant drives the levels with loops instead of nested calls and keeps
// a persisted per-process cursor = the number of level filters currently
// held; recovery resumes the descent at the cursor, reducing the
// super-passage cost to O(F0 + min{sqrt F, T(n)}) as §7.3 claims.
//
// Execution per passage (levels indexed 0..m-1, level 0 outermost):
//   descend:  for L = cursor.. : acquire filter L; try splitter L;
//             if fast -> stop at x = L; else mark type[L] = SLOW, go on;
//             if every level diverts, acquire the base lock (x = none).
//   ascend:   arbitrator x from Left (if fast somewhere), then
//             arbitrators x-1..0 from Right.
//   exit:     arbitrators 0..top, splitter x / base, then levels top..0:
//             reset type, drop cursor, release filter.
//
// Cursor discipline (what makes staleness safe): the cursor is raised
// only AFTER a filter is acquired and lowered BEFORE it is released, so
// it can never claim an unheld filter. A lagging cursor merely makes
// recovery re-enter a held filter, which its state machine absorbs in a
// few loads.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "locks/arbitrator_lock.hpp"
#include "locks/lock.hpp"
#include "locks/splitter.hpp"
#include "locks/wr_lock.hpp"

namespace rme {

class IterBaLock final : public RecoverableLock {
 public:
  /// `remember_level` = the §7.3 cursor optimization; with false the
  /// descent always starts at level 0 (behaviourally the nested BaLock).
  IterBaLock(int num_procs, int levels, std::unique_ptr<RecoverableLock> base,
             bool remember_level = true, std::string label = "iba");

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override;

  bool IsStronglyRecoverable() const override { return true; }
  int LastPathDepth(int pid) const override {
    return static_cast<int>(level_of_[pid].load(std::memory_order_relaxed));
  }
  bool IsSensitiveSite(const std::string& site, bool after_op) const override;
  void OnProcessDone(int pid) override;
  std::string StatsString() const override;

  int levels() const { return m_; }
  /// Test hook: levels currently held by `pid` per the persisted cursor.
  uint64_t CursorOf(int pid) const { return cursor_[pid].RawLoad(); }

 private:
  enum PathType : uint64_t { kFast = 0, kSlow = 1 };
  static constexpr int kBaseLevel = -1;  ///< "went all the way down"

  /// The level among 0..held_levels-1 whose splitter `pid` owns (the
  /// fast-path commitment point), or kBaseLevel if none — splitter
  /// ownership is the persisted ground truth for the passage's path.
  int FastLevelOf(int pid, int held_levels);

  int n_;
  int m_;
  bool remember_;
  std::string label_;
  std::string site_;

  std::vector<std::unique_ptr<WrLock>> filters_;
  std::vector<std::unique_ptr<Splitter>> splitters_;
  std::vector<std::unique_ptr<ArbitratorLock>> arbs_;
  std::unique_ptr<RecoverableLock> base_;

  /// types_[L * kMaxProcs + pid]: committed path at level L.
  std::unique_ptr<rmr::Atomic<uint64_t>[]> types_;
  rmr::Atomic<uint64_t> cursor_[kMaxProcs];

  std::atomic<uint64_t> level_of_[kMaxProcs];  // diagnostics
  std::atomic<uint64_t> resumed_descents_{0};  // diagnostics (§7.3 wins)
};

}  // namespace rme
