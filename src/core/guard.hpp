// RAII helpers for the Recover/Enter/Exit protocol.
//
// ScopedPassage runs Recover+Enter on construction and Exit on
// destruction — BUT, unlike std::lock_guard, it must coexist with
// simulated crashes: if a ProcessCrash unwinds the scope, the process
// has conceptually lost the lock's private context and must NOT execute
// Exit (the crash IS the end of the passage; the next passage's Recover
// cleans up). The guard therefore skips Exit when unwound by an
// exception.
#pragma once

#include <exception>

#include "locks/lock.hpp"

namespace rme {

class ScopedPassage {
 public:
  /// Runs lock.Recover(pid) then lock.Enter(pid). May throw ProcessCrash
  /// (the caller's passage loop handles it).
  ScopedPassage(RecoverableLock& lock, int pid)
      : lock_(lock), pid_(pid),
        exceptions_on_entry_(std::uncaught_exceptions()) {
    lock_.Recover(pid_);
    lock_.Enter(pid_);
  }

  ScopedPassage(const ScopedPassage&) = delete;
  ScopedPassage& operator=(const ScopedPassage&) = delete;

  /// Runs lock.Exit(pid) unless the scope is being unwound by an
  /// exception (a simulated crash): a crashed process takes no further
  /// steps in this passage.
  ~ScopedPassage() noexcept(false) {
    if (std::uncaught_exceptions() == exceptions_on_entry_) {
      lock_.Exit(pid_);
    }
  }

 private:
  RecoverableLock& lock_;
  int pid_;
  int exceptions_on_entry_;
};

/// ScopedPassage for an EnterMany batch: Recover + EnterMany(k) on
/// construction, ExitMany on destruction, with the same crash-unwind
/// rule (a ProcessCrash ends the passage; no Exit). Only construct when
/// lock.SupportsEnterMany() is true.
class ScopedBatchPassage {
 public:
  ScopedBatchPassage(RecoverableLock& lock, int pid, int k)
      : lock_(lock), pid_(pid),
        exceptions_on_entry_(std::uncaught_exceptions()) {
    lock_.Recover(pid_);
    lock_.EnterMany(pid_, k);
  }

  ScopedBatchPassage(const ScopedBatchPassage&) = delete;
  ScopedBatchPassage& operator=(const ScopedBatchPassage&) = delete;

  ~ScopedBatchPassage() noexcept(false) {
    if (std::uncaught_exceptions() == exceptions_on_entry_) {
      lock_.ExitMany(pid_);
    }
  }

 private:
  RecoverableLock& lock_;
  int pid_;
  int exceptions_on_entry_;
};

/// Runs k critical-section bodies (body(0) .. body(k-1)) under `lock`.
/// Locks that opt into EnterMany run the whole batch as one passage; the
/// rest fall back to k independent full passages. Returns the number of
/// passages used (1 batched, else k), so callers can account the
/// amortization. The bodies must be idempotent under crash-replay, the
/// same discipline every CS in this codebase already follows.
template <typename Body>
int RunBatched(RecoverableLock& lock, int pid, int k, Body&& body) {
  if (k > 1 && lock.SupportsEnterMany()) {
    ScopedBatchPassage batch(lock, pid, k);
    for (int i = 0; i < k; ++i) body(i);
    return 1;
  }
  for (int i = 0; i < k; ++i) {
    ScopedPassage passage(lock, pid);
    body(i);
  }
  return k;
}

}  // namespace rme
