// RAII helpers for the Recover/Enter/Exit protocol.
//
// ScopedPassage runs Recover+Enter on construction and Exit on
// destruction — BUT, unlike std::lock_guard, it must coexist with
// simulated crashes: if a ProcessCrash unwinds the scope, the process
// has conceptually lost the lock's private context and must NOT execute
// Exit (the crash IS the end of the passage; the next passage's Recover
// cleans up). The guard therefore skips Exit when unwound by an
// exception.
#pragma once

#include <exception>

#include "locks/lock.hpp"

namespace rme {

class ScopedPassage {
 public:
  /// Runs lock.Recover(pid) then lock.Enter(pid). May throw ProcessCrash
  /// (the caller's passage loop handles it).
  ScopedPassage(RecoverableLock& lock, int pid)
      : lock_(lock), pid_(pid),
        exceptions_on_entry_(std::uncaught_exceptions()) {
    lock_.Recover(pid_);
    lock_.Enter(pid_);
  }

  ScopedPassage(const ScopedPassage&) = delete;
  ScopedPassage& operator=(const ScopedPassage&) = delete;

  /// Runs lock.Exit(pid) unless the scope is being unwound by an
  /// exception (a simulated crash): a crashed process takes no further
  /// steps in this passage.
  ~ScopedPassage() noexcept(false) {
    if (std::uncaught_exceptions() == exceptions_on_entry_) {
      lock_.Exit(pid_);
    }
  }

 private:
  RecoverableLock& lock_;
  int pid_;
  int exceptions_on_entry_;
};

}  // namespace rme
