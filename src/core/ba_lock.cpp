#include "core/ba_lock.hpp"

#include "locks/tree_lock.hpp"
#include "util/assert.hpp"

namespace rme {

BaLock::BaLock(int num_procs, int levels,
               std::unique_ptr<RecoverableLock> base, std::string label)
    : n_(num_procs), m_(levels), label_(std::move(label)) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  RME_CHECK(levels >= 1);
  RME_CHECK(base != nullptr);
  base_name_ = base->name();
  for (auto& l : level_of_) l.store(0, std::memory_order_relaxed);

  // Build the chain bottom-up: level m wraps the base, level 1 is `top_`.
  std::unique_ptr<RecoverableLock> core = std::move(base);
  for (int level = m_; level >= 1; --level) {
    // A process "reaches level x" when it is diverted to the slow path at
    // level x-1's splitter, i.e. when it starts competing for level x's
    // filter; committing to the slow path at level x means it reached
    // level x+1 (the base counts as level m+1).
    auto on_slow = [this, level](int pid) {
      uint64_t cur = level_of_[pid].load(std::memory_order_relaxed);
      const auto reached = static_cast<uint64_t>(level + 1);
      while (cur < reached &&
             !level_of_[pid].compare_exchange_weak(cur, reached,
                                                   std::memory_order_relaxed)) {
      }
    };
    core = std::make_unique<SaLock>(
        n_, std::move(core), label_ + ".L" + std::to_string(level),
        std::move(on_slow));
  }
  top_.reset(static_cast<SaLock*>(core.release()));
}

std::unique_ptr<BaLock> BaLock::WithDefaultBase(int num_procs) {
  auto base = std::make_unique<KPortTreeLock>(num_procs, "ba.base");
  const int m = base->depth();
  return std::make_unique<BaLock>(num_procs, m, std::move(base));
}

std::string BaLock::name() const {
  return "ba-lock[m=" + std::to_string(m_) + "," + base_name_ + "]";
}

void BaLock::Recover(int pid) {
  level_of_[pid].store(1, std::memory_order_relaxed);  // diagnostics
  top_->Recover(pid);
}

void BaLock::Enter(int pid) { top_->Enter(pid); }

void BaLock::Exit(int pid) { top_->Exit(pid); }

bool BaLock::IsSensitiveSite(const std::string& site, bool after_op) const {
  return top_->IsSensitiveSite(site, after_op);
}

void BaLock::OnProcessDone(int pid) { top_->OnProcessDone(pid); }

std::string BaLock::StatsString() const { return top_->StatsString(); }

}  // namespace rme
