#include "core/lock_registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/ba_lock.hpp"
#include "core/iter_ba_lock.hpp"
#include "core/sa_lock.hpp"
#include "locks/cohort_lock.hpp"
#include "locks/gr_adaptive_lock.hpp"
#include "locks/hang_lock.hpp"
#include "locks/gr_semi_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/ticket_rlock.hpp"
#include "locks/tree_lock.hpp"
#include "locks/wr_lock.hpp"
#include "locks/ya_tournament_lock.hpp"

namespace rme {

std::unique_ptr<RecoverableLock> MakeLock(const std::string& name,
                                          int num_procs) {
  if (name == "mcs") return std::make_unique<McsLock>(num_procs);
  if (name == "wr") return std::make_unique<WrLock>(num_procs);
  if (name == "gr-adaptive") return std::make_unique<GrAdaptiveLock>(num_procs);
  if (name == "gr-semi") return std::make_unique<GrSemiLock>(num_procs);
  if (name == "tournament") return std::make_unique<TournamentLock>(num_procs);
  if (name == "ya-tournament") return std::make_unique<YaTournamentLock>(num_procs);
  if (name == "kport-tree") return std::make_unique<KPortTreeLock>(num_procs);
  if (name == "cw-ticket") return std::make_unique<TicketRLock>(num_procs);
  if (name == "sa") {
    // One SA level over the default base: the §5.1 semi-adaptive lock.
    return std::make_unique<SaLock>(
        num_procs, std::make_unique<KPortTreeLock>(num_procs, "sa.core"));
  }
  if (name == "sa-tournament") {
    return std::make_unique<SaLock>(
        num_procs, std::make_unique<TournamentLock>(num_procs, "sa.core"));
  }
  if (name == "ba") return BaLock::WithDefaultBase(num_procs);
  if (name == "ba-iter" || name == "ba-iter-nocursor") {
    auto base = std::make_unique<KPortTreeLock>(num_procs, "iba.base");
    const int m = base->depth();
    return std::make_unique<IterBaLock>(num_procs, m, std::move(base),
                                        /*remember_level=*/name == "ba-iter");
  }
  if (name == "hang-sim") {
    // Test-only: livelocks forever after a crash (fork-harness watchdog
    // tests). Deliberately absent from the name lists below so registry
    // sweeps never run it.
    return std::make_unique<HangSimLock>(num_procs);
  }
  if (name == "ba-tournament") {
    auto base = std::make_unique<TournamentLock>(num_procs, "ba.base");
    const int m = base->depth();
    return std::make_unique<BaLock>(num_procs, m, std::move(base));
  }
  if (name == "cohort") {
    // NUMA-cohorted fast path over a cw-ticket top lock (pseudo-pid per
    // cohort). Tunables come from cohort_lock_defaults() so tests and
    // benches can pin cohort count / caps before construction.
    return std::make_unique<CohortLock>(
        num_procs, cohort_lock_defaults(),
        +[](int cohorts) -> std::unique_ptr<RecoverableLock> {
          return std::make_unique<TicketRLock>(cohorts, "cohort.top");
        },
        "cohort");
  }
  if (name == "cohort-tournament") {
    return std::make_unique<CohortLock>(
        num_procs, cohort_lock_defaults(),
        +[](int cohorts) -> std::unique_ptr<RecoverableLock> {
          return std::make_unique<TournamentLock>(cohorts, "cohort.top");
        },
        "cohort-tournament");
  }

  std::fprintf(stderr, "unknown lock '%s'; known locks:", name.c_str());
  for (const auto& known : AllLockNames()) {
    std::fprintf(stderr, " %s", known.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

std::vector<std::string> AllLockNames() {
  return {"mcs",        "wr",         "gr-adaptive", "gr-semi",
          "tournament", "ya-tournament", "kport-tree", "cw-ticket",
          "sa",         "sa-tournament", "ba",         "ba-tournament",
          "ba-iter",    "ba-iter-nocursor", "cohort",  "cohort-tournament"};
}

std::vector<std::string> RecoverableLockNames() {
  return {"wr",        "gr-adaptive",   "gr-semi", "tournament",
          "ya-tournament", "kport-tree", "cw-ticket", "sa",
          "sa-tournament", "ba",        "ba-tournament", "ba-iter",
          "ba-iter-nocursor", "cohort", "cohort-tournament"};
}

}  // namespace rme
