#include "core/iter_ba_lock.hpp"

#include "util/assert.hpp"

namespace rme {

IterBaLock::IterBaLock(int num_procs, int levels,
                       std::unique_ptr<RecoverableLock> base,
                       bool remember_level, std::string label)
    : n_(num_procs), m_(levels), remember_(remember_level),
      label_(std::move(label)), base_(std::move(base)) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  RME_CHECK(levels >= 1);
  RME_CHECK(base_ != nullptr);
  site_ = label_ + ".op";
  filters_.reserve(static_cast<size_t>(m_));
  splitters_.reserve(static_cast<size_t>(m_));
  arbs_.reserve(static_cast<size_t>(m_));
  for (int L = 0; L < m_; ++L) {
    const std::string lvl = label_ + ".L" + std::to_string(L + 1);
    filters_.push_back(std::make_unique<WrLock>(n_, lvl + ".filter"));
    splitters_.push_back(std::make_unique<Splitter>(lvl + ".split"));
    arbs_.push_back(std::make_unique<ArbitratorLock>(n_, lvl + ".arb"));
  }
  types_ = std::make_unique<rmr::Atomic<uint64_t>[]>(
      static_cast<size_t>(m_) * kMaxProcs);
  for (int L = 0; L < m_; ++L) {
    for (int pid = 0; pid < kMaxProcs; ++pid) {
      types_[static_cast<size_t>(L) * kMaxProcs + pid].set_home(pid);
    }
  }
  for (int pid = 0; pid < kMaxProcs; ++pid) {
    cursor_[pid].set_home(pid);
    level_of_[pid].store(0, std::memory_order_relaxed);
  }
}

std::string IterBaLock::name() const {
  return "iter-ba[m=" + std::to_string(m_) + "," + base_->name() +
         (remember_ ? ",cursor]" : "]");
}

bool IterBaLock::IsSensitiveSite(const std::string& site,
                                 bool after_op) const {
  for (const auto& filter : filters_) {
    if (filter->IsSensitiveSite(site, after_op)) return true;
  }
  return base_->IsSensitiveSite(site, after_op);
}

int IterBaLock::FastLevelOf(int pid, int held_levels) {
  // Ground truth for "where did this passage go fast": splitter
  // ownership, which is persisted in the splitter itself. Types are NOT
  // reliable here — a crash mid-exit can leave a level's type reset to
  // FAST while the passage actually went deeper.
  for (int L = 0; L < held_levels; ++L) {
    if (splitters_[static_cast<size_t>(L)]->Occupies(pid)) return L;
  }
  return kBaseLevel;
}

void IterBaLock::Recover(int pid) {
  level_of_[pid].store(1, std::memory_order_relaxed);  // diagnostics
  // Component recovery runs inline with each component's Enter.
}

void IterBaLock::Enter(int pid) {
  const char* site = site_.c_str();

  // ---- Descend: filters and splitters, from the cursor. ----
  const int start =
      remember_ ? static_cast<int>(cursor_[pid].Load(site)) : 0;
  RME_DCHECK(start <= m_);
  int fast_level = kBaseLevel;
  bool path_known = false;
  if (start > 0) {
    resumed_descents_.fetch_add(1, std::memory_order_relaxed);
    // Resuming after a crash with levels 0..start-1 held. If one of them
    // holds its splitter, the passage already committed to the fast path
    // there: do NOT descend further.
    fast_level = FastLevelOf(pid, start);
    if (fast_level != kBaseLevel || start == m_) path_known = true;
  }
  if (!path_known) {
    for (int L = start; L < m_; ++L) {
      filters_[static_cast<size_t>(L)]->Recover(pid);
      filters_[static_cast<size_t>(L)]->Enter(pid);
      cursor_[pid].Store(static_cast<uint64_t>(L) + 1, site);
      rmr::Atomic<uint64_t>& type =
          types_[static_cast<size_t>(L) * kMaxProcs + pid];
      if (type.Load(site) != kSlow) {
        splitters_[static_cast<size_t>(L)]->TryFastPath(pid);
      }
      if (splitters_[static_cast<size_t>(L)]->Occupies(pid)) {
        fast_level = L;
        break;
      }
      type.Store(kSlow, site);
    }
  }
  if (fast_level == kBaseLevel) {
    // Either diverted at every level or resuming a base-path passage:
    // the base lock's own state machine absorbs re-entry.
    base_->Recover(pid);
    base_->Enter(pid);
  }

  // ---- Ascend: arbitrators, deepest involved level back to the top. ---
  const int top = fast_level == kBaseLevel ? m_ - 1 : fast_level;
  for (int L = top; L >= 0; --L) {
    const Side side = (L == fast_level) ? Side::kLeft : Side::kRight;
    arbs_[static_cast<size_t>(L)]->Recover(side, pid);
    arbs_[static_cast<size_t>(L)]->Enter(side, pid);
  }

  level_of_[pid].store(static_cast<uint64_t>(top) + 1,
                       std::memory_order_relaxed);
}

void IterBaLock::Exit(int pid) {
  const char* site = site_.c_str();
  const int held = static_cast<int>(cursor_[pid].Load(site));
  RME_DCHECK(held >= 1 && held <= m_);
  const int fast_level = FastLevelOf(pid, held);
  const int top = fast_level == kBaseLevel ? held - 1 : fast_level;

  // Arbitrators, outermost first (mirrors the nested exit order).
  for (int L = 0; L <= top; ++L) {
    const Side side = (L == fast_level) ? Side::kLeft : Side::kRight;
    arbs_[static_cast<size_t>(L)]->Exit(side, pid);
  }
  if (fast_level == kBaseLevel) {
    base_->Exit(pid);
  } else {
    splitters_[static_cast<size_t>(fast_level)]->Release(pid);
  }
  // Filters, deepest first; the cursor drops BEFORE each release so it
  // never claims an unheld filter.
  for (int L = top; L >= 0; --L) {
    types_[static_cast<size_t>(L) * kMaxProcs + pid].Store(kFast, site);
    cursor_[pid].Store(static_cast<uint64_t>(L), site);
    filters_[static_cast<size_t>(L)]->Exit(pid);
  }
}

void IterBaLock::OnProcessDone(int pid) {
  for (auto& filter : filters_) filter->OnProcessDone(pid);
  base_->OnProcessDone(pid);
}

std::string IterBaLock::StatsString() const {
  return label_ + ": resumed-descents=" +
         std::to_string(resumed_descents_.load(std::memory_order_relaxed));
}

}  // namespace rme
