// Name -> factory registry so benches, tests and examples can build any
// lock in the zoo from a string (and sweep over all of them).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "locks/lock.hpp"

namespace rme {

/// Builds the lock registered under `name` for `num_procs` processes.
/// Aborts with the list of known names if `name` is unknown.
std::unique_ptr<RecoverableLock> MakeLock(const std::string& name,
                                          int num_procs);

/// All registered lock names, in Table-1 order.
std::vector<std::string> AllLockNames();

/// The subset safe to run under crash injection (excludes "mcs").
std::vector<std::string> RecoverableLockNames();

}  // namespace rme
