// SA-Lock: the paper's semi-adaptive framework (§5.1, Algorithm 3,
// Figure 2). Composition per passage:
//
//   filter (WrLock, weakly recoverable, O(1))
//     -> splitter (one CAS; admits exactly one process to the fast path)
//          fast path ------------------------------.
//          slow path -> core lock (strongly rec.) --+-> arbitrator (dual
//                                                       port, O(1))
//
// In the absence of failures the filter admits one process at a time, so
// everyone takes the fast path: O(1) RMR end to end. Only an unsafe
// failure of the filter can push processes onto the slow path and into
// the core lock — that is Lemma 5.8, and it is what the recursive
// BA-Lock stacks into sqrt-F adaptivity.
//
// SA-Lock is strongly recoverable (Thm 5.5): the arbitrator decides CS
// entry, the splitter serializes its Left side and the core lock its
// Right side. Its own Recover segment is empty — each component's
// Recover runs immediately before that component's Enter, as in the
// paper's pseudocode.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "locks/arbitrator_lock.hpp"
#include "locks/lock.hpp"
#include "locks/splitter.hpp"
#include "locks/wr_lock.hpp"

namespace rme {

class SaLock final : public RecoverableLock {
 public:
  /// `core`: the strongly recoverable slow-path lock (owned).
  /// `on_slow`: optional diagnostic callback invoked (uninstrumented)
  /// whenever a process commits to the slow path — BaLock uses it to
  /// record escalation levels.
  SaLock(int num_procs, std::unique_ptr<RecoverableLock> core,
         std::string label = "sa",
         std::function<void(int pid)> on_slow = nullptr);

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override { return "sa-lock(" + core_->name() + ")"; }

  bool IsStronglyRecoverable() const override { return true; }
  bool SupportsEnterMany() const override { return true; }
  bool IsSensitiveSite(const std::string& site, bool after_op) const override;
  void OnProcessDone(int pid) override;
  std::string StatsString() const override;

  RecoverableLock& core() { return *core_; }

  uint64_t fast_passages() const { return fast_count_.load(std::memory_order_relaxed); }
  uint64_t slow_passages() const { return slow_count_.load(std::memory_order_relaxed); }

 private:
  enum PathType : uint64_t { kFast = 0, kSlow = 1 };

  Side SideOf(uint64_t type) const {
    return type == kFast ? Side::kLeft : Side::kRight;
  }

  int n_;
  std::string label_;
  std::string site_;

  WrLock filter_;
  Splitter splitter_;
  std::unique_ptr<RecoverableLock> core_;
  ArbitratorLock arb_;

  /// Committed path of the in-flight passage; reset to FAST only after a
  /// complete Exit (Algorithm 3 line: type[i] <- FAST).
  rmr::Atomic<uint64_t> type_[kMaxProcs];

  std::function<void(int pid)> on_slow_;
  // Diagnostics (not part of the algorithm; uninstrumented).
  std::atomic<uint64_t> fast_count_{0};
  std::atomic<uint64_t> slow_count_{0};
};

}  // namespace rme
