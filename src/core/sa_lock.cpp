#include "core/sa_lock.hpp"

#include "util/assert.hpp"

namespace rme {

SaLock::SaLock(int num_procs, std::unique_ptr<RecoverableLock> core,
               std::string label, std::function<void(int pid)> on_slow)
    : n_(num_procs), label_(std::move(label)),
      filter_(num_procs, label_ + ".filter"),
      splitter_(label_ + ".split"),
      core_(std::move(core)),
      arb_(num_procs, label_ + ".arb"),
      on_slow_(std::move(on_slow)) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  RME_CHECK(core_ != nullptr);
  site_ = label_ + ".op";
  for (int i = 0; i < kMaxProcs; ++i) {
    type_[i].set_home(i);
    type_[i].RawStore(kFast);
  }
}

bool SaLock::IsSensitiveSite(const std::string& site, bool after_op) const {
  // Locality property (Def 3.6): the only weakly recoverable component
  // here is the filter; the core may itself be an SaLock one level down.
  return filter_.IsSensitiveSite(site, after_op) ||
         core_->IsSensitiveSite(site, after_op);
}

void SaLock::Recover(int /*pid*/) {
  // Empty by design: each component's Recover segment executes right
  // before its Enter segment (Algorithm 3's convention).
}

void SaLock::Enter(int pid) {
  const char* site = site_.c_str();

  filter_.Recover(pid);
  filter_.Enter(pid);

  if (type_[pid].Load(site) != kSlow) {
    // Not yet committed to the slow path: one attempt at the fast path.
    splitter_.TryFastPath(pid);
  }
  if (!splitter_.Occupies(pid)) {
    type_[pid].Store(kSlow, site);
    if (on_slow_) on_slow_(pid);
    core_->Recover(pid);
    core_->Enter(pid);
  }

  const Side side = SideOf(type_[pid].Load(site));
  arb_.Recover(side, pid);
  arb_.Enter(side, pid);

  if (side == Side::kLeft) {
    fast_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    slow_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SaLock::Exit(int pid) {
  const char* site = site_.c_str();
  const uint64_t type = type_[pid].Load(site);

  arb_.Exit(SideOf(type), pid);
  if (type == kSlow) {
    core_->Exit(pid);
  } else {
    splitter_.Release(pid);
  }
  type_[pid].Store(kFast, site);
  filter_.Exit(pid);
}

void SaLock::OnProcessDone(int pid) {
  filter_.OnProcessDone(pid);
  core_->OnProcessDone(pid);
}

std::string SaLock::StatsString() const {
  std::string s = label_ + ": fast=" + std::to_string(fast_passages()) +
                  " slow=" + std::to_string(slow_passages());
  const std::string inner = core_->StatsString();
  if (!inner.empty()) s += "\n" + inner;
  return s;
}

}  // namespace rme
