// BA-Lock: the paper's well-bounded super-adaptive lock (§5.2,
// Figure 3): m stacked SA-Lock levels whose level-i core is the level
// i+1 SA-Lock, bottoming out in a bounded non-adaptive strongly
// recoverable base lock.
//
//   BA-Lock            = SA-Lock[1]
//   SA-Lock[i].core    = SA-Lock[i+1]    (i < m)
//   SA-Lock[m].core    = base lock (KPortTreeLock by default)
//
// Escalating k processes past any level requires k unsafe failures of
// that level's filter (Lemma 5.8), so reaching level x costs at least
// x(x-1)/2 recent failures (Thm 5.17) — per-passage RMR is
// O(min{sqrt(F), T(n)}) where T(n) is the base lock's cost (Thm 5.18).
//
// The paper sets m = T(n); we default to the base lock's tree depth and
// expose it (`levels`) for the ablation benches.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "core/sa_lock.hpp"
#include "locks/lock.hpp"

namespace rme {

class BaLock final : public RecoverableLock {
 public:
  /// `levels` = m >= 1; `base` is the bounded strongly recoverable lock
  /// at the bottom of the recursion (owned).
  BaLock(int num_procs, int levels, std::unique_ptr<RecoverableLock> base,
         std::string label = "ba");

  /// Convenience: KPortTreeLock base with its depth as the level count.
  static std::unique_ptr<BaLock> WithDefaultBase(int num_procs);

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override;

  bool IsStronglyRecoverable() const override { return true; }
  /// Batch-hold keeps the adaptive path resolution (the part whose cost
  /// scales with recent failures) to once per batch.
  bool SupportsEnterMany() const override { return true; }
  int LastPathDepth(int pid) const override { return LastLevelOf(pid); }
  bool IsSensitiveSite(const std::string& site, bool after_op) const override;
  void OnProcessDone(int pid) override;
  std::string StatsString() const override;

  /// Deepest level (1-based; 0 = pure fast path at level 1) reached by
  /// `pid`'s passage since its last Recover. Diagnostic, uninstrumented.
  int LastLevelOf(int pid) const {
    return static_cast<int>(level_of_[pid].load(std::memory_order_relaxed));
  }

  int levels() const { return m_; }

 private:
  int n_;
  int m_;
  std::string label_;
  std::string base_name_;
  std::unique_ptr<SaLock> top_;  ///< owns the whole SA chain + base
  std::atomic<uint64_t> level_of_[kMaxProcs];
};

}  // namespace rme
