#include "sim/sim_harness.hpp"

#include <atomic>

#include "crash/failure_log.hpp"
#include "rmr/memory_model.hpp"
#include "runtime/checkers.hpp"
#include "util/assert.hpp"

namespace rme {

SimResult RunSimWorkload(RecoverableLock& lock, const SimWorkloadConfig& cfg,
                         CrashController* crash) {
  FailureLog failure_log(cfg.num_procs);
  MeChecker checker(lock.IsStronglyRecoverable(), &failure_log);
  rmr::Atomic<uint64_t> cs_scratch{0};

  std::atomic<uint64_t> completed{0}, failures{0}, unsafe{0};
  Summary cc[kMaxProcs], dsm[kMaxProcs];

  auto body = [&](int pid) {
    ProcessBinding bind(pid, crash);
    ProcessContext& ctx = CurrentProcess();
    for (uint64_t done = 0; done < cfg.passages_per_proc;) {
      failure_log.OnRequestStart(pid);
      bool satisfied = false;
      while (!satisfied) {
        bool in_cs = false;
        const OpCounters s0 = ctx.counters;
        try {
          lock.Recover(pid);
          lock.Enter(pid);
          checker.EnterCS(pid);
          in_cs = true;
          for (int j = 0; j < cfg.cs_shared_ops; ++j) {
            cs_scratch.FetchAdd(1, "cs.op");
          }
          in_cs = false;
          checker.ExitCS(pid);
          lock.Exit(pid);
          const OpCounters d = ctx.counters - s0;
          cc[pid].Add(static_cast<double>(d.cc_rmrs));
          dsm[pid].Add(static_cast<double>(d.dsm_rmrs));
          satisfied = true;
        } catch (const ProcessCrash& cr) {
          if (in_cs) checker.OnCrashInCS(pid);
          failure_log.RecordFailure(
              pid, cr.time, cr.site, cr.after_op,
              lock.IsSensitiveSite(cr.site, cr.after_op));
          failures.fetch_add(1, std::memory_order_relaxed);
          if (lock.IsSensitiveSite(cr.site, cr.after_op)) {
            unsafe.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // RunAborted (stuck run) intentionally propagates: the fiber
        // trampoline absorbs it and marks the fiber done.
      }
      failure_log.OnRequestComplete(pid);
      ++done;
      completed.fetch_add(1, std::memory_order_relaxed);
    }
    ctx.SetCrashController(nullptr);
    lock.OnProcessDone(pid);
  };

  DeterministicSim::Options options;
  options.num_procs = cfg.num_procs;
  options.seed = cfg.seed;
  options.max_steps = cfg.max_steps;

  SimResult result;
  result.ran_to_completion = DeterministicSim::Run(options, body);
  result.scheduler_steps = DeterministicSim::LastRunSteps();
  result.completed_passages = completed.load();
  result.failures = failures.load();
  result.unsafe_failures = unsafe.load();
  result.me_violations = checker.me_violations();
  result.bcsr_violations = checker.bcsr_violations();
  result.responsiveness_deficits = checker.responsiveness_deficits();
  result.max_concurrent_cs = checker.max_concurrent();
  for (int i = 0; i < cfg.num_procs; ++i) {
    result.passage_cc.Merge(cc[i]);
    result.passage_dsm.Merge(dsm[i]);
  }
  return result;
}

}  // namespace rme
