#include "sim/fiber_sim.hpp"

#include <ucontext.h>

#include <memory>
#include <sstream>
#include <vector>

#include "util/assert.hpp"
#include "util/prng.hpp"

namespace rme {
namespace {

struct Fiber {
  ucontext_t ctx;
  std::vector<char> stack;
  ProcessContext saved;  ///< the fiber's ProcessContext image while parked
  bool started = false;
  bool done = false;
  int pid = -1;
};

struct Scheduler {
  ucontext_t main_ctx;
  std::vector<Fiber> fibers;
  int current = -1;
  Prng rng;
  uint64_t steps = 0;
  uint64_t max_steps = 0;
  bool overflow = false;
  const std::function<void(int)>* body = nullptr;
  // Ring buffer of the last trace_capacity scheduling events.
  std::vector<DeterministicSim::TraceEvent> trace;
  size_t trace_capacity = 0;
  size_t trace_next = 0;
  bool trace_wrapped = false;
};

thread_local Scheduler* g_sched = nullptr;
thread_local uint64_t g_last_steps = 0;
thread_local std::vector<DeterministicSim::TraceEvent> g_last_trace;

// Yield from the running fiber back to the scheduler. Installed as the
// thread's SimYieldHook: runs before every instrumented shared-memory op
// and on every SpinPause.
void FiberYield(void* arg) {
  auto* sched = static_cast<Scheduler*>(arg);
  RME_DCHECK(sched->current >= 0);
  Fiber& me = sched->fibers[static_cast<size_t>(sched->current)];
  if (sched->overflow) {
    // The run is stuck (deadlock/livelock): unwind this fiber. RunAborted
    // is the same signal SpinPause uses for thread-harness aborts.
    throw RunAborted{};
  }
  // Park: stash our ProcessContext image and return to the scheduler.
  me.saved = CurrentProcess();
  swapcontext(&me.ctx, &sched->main_ctx);
  // Resumed: restore our image (another fiber ran meanwhile).
  CurrentProcess() = me.saved;
}

void Trampoline() {
  Scheduler* sched = g_sched;
  const int index = sched->current;
  Fiber& me = sched->fibers[static_cast<size_t>(index)];
  CurrentProcess() = ProcessContext{};  // fresh image for this fiber
  // The fresh image must still route every instrumented op through
  // FiberYield (the hook is installed thread-wide for the whole run, and
  // the yield must fire even on ops issued before the fiber binds).
  CurrentProcess().fast_flags |= ProcessContext::kSimHook;
  try {
    (*sched->body)(me.pid);
  } catch (const RunAborted&) {
    // Forced unwind of a stuck run.
  } catch (...) {
    RME_CHECK_MSG(false, "uncaught exception escaped a simulated process");
  }
  me.done = true;
  me.saved = ProcessContext{};
  swapcontext(&me.ctx, &sched->main_ctx);  // never resumed
  RME_CHECK_MSG(false, "resumed a completed fiber");
}

}  // namespace

bool DeterministicSim::Run(const Options& options,
                           const std::function<void(int pid)>& body) {
  RME_CHECK(options.num_procs > 0 && options.num_procs <= kMaxProcs);
  RME_CHECK_MSG(g_sched == nullptr, "nested DeterministicSim::Run");

  Scheduler sched;
  sched.rng = Prng(options.seed, 0xf1be5);
  sched.max_steps = options.max_steps;
  sched.body = &body;
  sched.trace_capacity = options.trace_capacity;
  if (sched.trace_capacity > 0) sched.trace.reserve(sched.trace_capacity);
  sched.fibers.resize(static_cast<size_t>(options.num_procs));

  // The scheduler thread's own ProcessContext must be preserved around
  // the run (fibers overwrite the thread-local slot).
  const ProcessContext host_ctx = CurrentProcess();

  g_sched = &sched;
  SetSimYieldHook(&FiberYield, &sched);

  for (int i = 0; i < options.num_procs; ++i) {
    Fiber& f = sched.fibers[static_cast<size_t>(i)];
    f.pid = i;
    f.stack.resize(options.stack_bytes);
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.data();
    f.ctx.uc_stack.ss_size = f.stack.size();
    f.ctx.uc_link = nullptr;
    makecontext(&f.ctx, &Trampoline, 0);
  }

  std::vector<int> runnable;
  runnable.reserve(sched.fibers.size());
  for (;;) {
    runnable.clear();
    for (size_t i = 0; i < sched.fibers.size(); ++i) {
      if (!sched.fibers[i].done) runnable.push_back(static_cast<int>(i));
    }
    if (runnable.empty()) break;
    if (sched.steps++ > sched.max_steps) sched.overflow = true;

    const int pick = runnable[sched.rng.NextBounded(runnable.size())];
    sched.current = pick;
    Fiber& f = sched.fibers[static_cast<size_t>(pick)];
    if (sched.trace_capacity > 0) {
      DeterministicSim::TraceEvent ev{
          sched.steps, f.pid,
          f.saved.last_site.load(std::memory_order_relaxed)};
      if (sched.trace.size() < sched.trace_capacity) {
        sched.trace.push_back(ev);
      } else {
        sched.trace[sched.trace_next] = ev;
        sched.trace_next = (sched.trace_next + 1) % sched.trace_capacity;
        sched.trace_wrapped = true;
      }
    }
    if (!f.started) {
      f.started = true;
      swapcontext(&sched.main_ctx, &f.ctx);  // enters Trampoline
    } else {
      swapcontext(&sched.main_ctx, &f.ctx);  // resumes inside FiberYield
    }
    sched.current = -1;
  }

  SetSimYieldHook(nullptr, nullptr);
  g_sched = nullptr;
  CurrentProcess() = host_ctx;
  g_last_steps = sched.steps;
  // Linearize the ring (oldest first) into the thread-local result slot.
  g_last_trace.clear();
  if (sched.trace_capacity > 0) {
    if (sched.trace_wrapped) {
      for (size_t i = 0; i < sched.trace.size(); ++i) {
        g_last_trace.push_back(
            sched.trace[(sched.trace_next + i) % sched.trace.size()]);
      }
    } else {
      g_last_trace = sched.trace;
    }
  }
  return !sched.overflow;
}

uint64_t DeterministicSim::LastRunSteps() { return g_last_steps; }

std::vector<DeterministicSim::TraceEvent> DeterministicSim::LastRunTrace() {
  return g_last_trace;
}

std::string DeterministicSim::FormatTrace(
    const std::vector<TraceEvent>& trace) {
  std::ostringstream os;
  for (const TraceEvent& ev : trace) {
    os << ev.step << " p" << ev.pid << " @ "
       << (ev.site != nullptr && ev.site[0] != 0 ? ev.site : "<start>")
       << "\n";
  }
  return os.str();
}

}  // namespace rme
