// Deterministic interleaving simulator.
//
// The thread-based harness (runtime/harness.hpp) exercises locks under
// real OS scheduling, but on a small machine true interleavings are rare
// and never reproducible. This module runs every simulated process as a
// ucontext fiber on ONE thread and switches between them at every
// instrumented shared-memory operation, with a seeded PRNG choosing the
// next fiber. The result:
//
//  - every shared-memory interleaving the scheduler produces is
//    deterministic in (seed, workload): failures reproduce exactly;
//  - sweeping seeds explores radically different interleavings, far more
//    than wall-clock scheduling ever hits — effectively a lightweight
//    randomized model checker for the lock algorithms;
//  - crash injection composes: a SiteCrash under the simulator yields a
//    fully deterministic failure scenario.
//
// Mechanics: a scheduler hook (installed into the rmr instrumentation)
// yields from the running fiber before every shared op; SpinPause yields
// too, so spin-waiting fibers never monopolize the thread. Each fiber
// owns a ProcessContext image that is swapped into the thread-local slot
// around every switch.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rmr/counters.hpp"

namespace rme {

class DeterministicSim {
 public:
  struct Options {
    int num_procs = 2;
    uint64_t seed = 1;
    /// Abort knob: total scheduler steps (ops across all fibers) before
    /// the run is declared stuck (deadlock/livelock).
    uint64_t max_steps = 50'000'000;
    /// Stack bytes per fiber.
    size_t stack_bytes = 256 * 1024;
    /// Keep the last N scheduling events for post-mortem inspection
    /// (0 disables tracing; tracing costs one ring-buffer write per step).
    size_t trace_capacity = 0;
  };

  /// One scheduling decision: which process ran, at which shared-memory
  /// site, at which step. A failing seed's tail of these is a minimal
  /// reproduction script of the interleaving.
  struct TraceEvent {
    uint64_t step;
    int pid;
    const char* site;
  };

  /// `body(pid)` is the whole life of process pid (e.g. an Algorithm-1
  /// loop); it runs on a fiber and must not block on OS primitives.
  /// Returns true if every fiber ran to completion within max_steps.
  static bool Run(const Options& options,
                  const std::function<void(int pid)>& body);

  /// Total scheduler steps consumed by the last Run on this thread.
  static uint64_t LastRunSteps();

  /// The last `Options::trace_capacity` scheduling events of the last
  /// run on this thread (oldest first). Empty if tracing was off.
  static std::vector<TraceEvent> LastRunTrace();

  /// Renders a trace as "step pNN @ site" lines.
  static std::string FormatTrace(const std::vector<TraceEvent>& trace);
};

}  // namespace rme
