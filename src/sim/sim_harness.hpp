// Algorithm-1 workload driver for the deterministic fiber simulator:
// the reproducible counterpart of runtime/harness.hpp. Same invariant
// checking (ME with consequence-interval awareness, BCSR), fully
// deterministic in (seed, config, crash controller).
#pragma once

#include <cstdint>

#include "crash/crash.hpp"
#include "locks/lock.hpp"
#include "sim/fiber_sim.hpp"
#include "util/stats.hpp"

namespace rme {

struct SimWorkloadConfig {
  int num_procs = 3;
  uint64_t passages_per_proc = 25;
  uint64_t seed = 1;
  int cs_shared_ops = 2;
  uint64_t max_steps = 20'000'000;
};

struct SimResult {
  bool ran_to_completion = false;  ///< false: stuck (deadlock/livelock)
  uint64_t completed_passages = 0;
  uint64_t failures = 0;
  uint64_t unsafe_failures = 0;
  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  /// Weak locks only: CS overlaps of k+1 processes seen with fewer than
  /// k active unsafe failure intervals (Thm 4.2 would be violated).
  /// Deterministic in the simulator, so an exact check.
  uint64_t responsiveness_deficits = 0;
  int max_concurrent_cs = 0;
  uint64_t scheduler_steps = 0;
  Summary passage_cc;
  Summary passage_dsm;
};

/// Runs the Algorithm-1 loop for every process on the fiber simulator.
SimResult RunSimWorkload(RecoverableLock& lock, const SimWorkloadConfig& cfg,
                         CrashController* crash);

}  // namespace rme
