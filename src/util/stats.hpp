// Summary statistics, histograms, and growth-curve fitting used by the
// benchmark harness to turn raw per-passage RMR counts into the rows the
// paper's tables report and into empirical complexity-class verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/prng.hpp"

namespace rme {

/// Streaming summary of a sequence of numeric samples.
class Summary {
 public:
  void Add(double x);
  void Merge(const Summary& other);

  uint64_t count() const { return count_; }
  double mean() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample standard deviation (0 for fewer than 2 samples).
  double stddev() const;

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity reservoir of quantile samples. Within capacity the
/// samples (and so the quantiles) are exact; past it, Algorithm-R
/// reservoir sampling keeps a uniform sample of *everything* seen, driven
/// by the deterministic Prng so runs stay reproducible. (The previous
/// behaviour silently kept only the first `capacity` samples, biasing
/// every reported quantile toward warm-up passages.)
///
/// Single-writer: Add() from one thread (asserted in debug builds), then
/// Finalize() once before any Quantile() call — the sort happens at that
/// single explicit point, so concurrent reporter threads can query
/// Quantile() without racing on a lazy sort.
class Percentiles {
 public:
  explicit Percentiles(size_t capacity = 1 << 20,
                       uint64_t seed = 0x9e3779b97f4a7c15ull)
      : capacity_(capacity), rng_(seed) {}

  void Add(double x);
  /// Folds another reservoir into this one, reservoir-correctly: the
  /// result is a (near-)uniform sample of the concatenated streams,
  /// drawn by weighting each side by how much stream it represents.
  /// When both sides are exact (nothing was ever subsampled) and the
  /// union fits, the merge degenerates to exact concatenation.
  /// Deterministic: all randomness comes from this object's member Prng.
  /// Single-threaded like Add(); typical use is a parent folding
  /// per-process reservoirs into a fresh instance after the children
  /// are done.
  void Merge(const Percentiles& other);
  /// Merge() for a foreign reservoir given as raw storage: `n` samples
  /// representing `seen` stream elements (n <= seen). This is how the
  /// fork-mode parent folds in fixed-capacity reservoirs that children
  /// maintained in the shared segment.
  void MergeRaw(const double* samples, size_t n, uint64_t seen);
  /// Sorts the reservoir; call once after the last Add().
  void Finalize();
  /// q in [0, 1]; returns 0 if empty. Requires Finalize() first.
  double Quantile(double q) const;
  size_t size() const { return samples_.size(); }
  /// Raw reservoir slot i (i < size()); order is unspecified before
  /// Finalize(), ascending after. With observed(), this is everything a
  /// foreign MergeRaw needs to fold this reservoir.
  double sample(size_t i) const { return samples_[i]; }
  /// Total samples offered to Add(): size()/observed() is the retention
  /// rate reports should state when the reservoir subsampled.
  uint64_t observed() const { return seen_; }

 private:
  size_t capacity_;
  bool sorted_ = true;
  std::vector<double> samples_;
  uint64_t seen_ = 0;
  Prng rng_;
#ifndef NDEBUG
  std::thread::id writer_{};
#endif
};

/// Power-of-two bucketed histogram for per-passage RMR counts.
class Histogram {
 public:
  void Add(uint64_t value);
  void Merge(const Histogram& other);
  std::string ToString() const;
  uint64_t count() const { return total_; }
  /// Upper edge of the highest non-empty bucket (0 if empty).
  uint64_t MaxBucketEdge() const;

 private:
  static constexpr int kBuckets = 40;
  uint64_t buckets_[kBuckets] = {};
  uint64_t total_ = 0;
};

/// Bucket for conditioning per-passage statistics on F = the number of
/// failures overlapping the passage: exact for F <= 8, then rounded up to
/// the next power of two. Shared by the in-process harness and the fork
/// harness so their adaptivity curves bin identically.
int OverlapBucket(uint64_t f);

/// Least-squares slope of log(y) against log(x) over paired samples with
/// x, y > 0. A slope near 0 indicates O(1) growth, near 0.5 indicates
/// sqrt growth, near 1 linear growth. Used by the Table-2 classifier.
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

/// Least-squares slope of y against x (plain linear fit).
double LinearSlope(const std::vector<double>& x, const std::vector<double>& y);

/// Classify a growth curve (y as a function of x) into a coarse class
/// string: "O(1)", "sublinear", "~sqrt", "~linear", "superlinear".
std::string ClassifyGrowth(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace rme
