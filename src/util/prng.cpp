#include "util/prng.hpp"

#include "util/assert.hpp"

namespace rme {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Prng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
  // All-zero state is the one invalid state for xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Prng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Prng::NextBounded(uint64_t bound) {
  RME_DCHECK(bound > 0);
  // Debiased via rejection sampling on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Prng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Prng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace rme
