// Deterministic, seedable pseudo-random number generation.
//
// Experiments must be exactly reproducible from a seed, including across
// platforms, so we avoid std::mt19937's distribution quirks and implement
// xoshiro256** with our own bounded-draw helpers.
#pragma once

#include <cstdint>

namespace rme {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Each simulated process owns an independent stream (seeded by SplitMix64
/// from a master seed + stream id), so adding a process never perturbs the
/// random choices seen by the others.
class Prng {
 public:
  Prng() : Prng(0xdeadbeefULL) {}
  explicit Prng(uint64_t seed) { Seed(seed); }
  Prng(uint64_t seed, uint64_t stream) { Seed(seed + 0x9e3779b97f4a7c15ULL * (stream + 1)); }

  void Seed(uint64_t seed);

  /// Uniform on [0, 2^64).
  uint64_t Next();

  /// Uniform on [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform on [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace rme
