// Tiny --flag=value command-line parser shared by bench and example
// binaries. Unknown flags abort with a usage message so sweep scripts
// fail loudly instead of silently running the wrong configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace rme {

class Cli {
 public:
  /// Parses argv of the form --name=value or --name (boolean true).
  Cli(int argc, char** argv);

  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name, const std::string& def) const;

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace rme
