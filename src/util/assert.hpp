// Lightweight invariant-checking macros used across the library.
//
// RME_CHECK is always on (it guards simulation invariants whose violation
// would silently corrupt measured results); RME_DCHECK compiles away in
// release builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rme::detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "RME_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace rme::detail

#define RME_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::rme::detail::CheckFailed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define RME_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::rme::detail::CheckFailed(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

#ifdef NDEBUG
#define RME_DCHECK(expr) ((void)0)
#define RME_DCHECK_MSG(expr, msg) ((void)0)
#else
#define RME_DCHECK(expr) RME_CHECK(expr)
#define RME_DCHECK_MSG(expr, msg) RME_CHECK_MSG(expr, msg)
#endif
