#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace rme {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double Summary::mean() const { return count_ ? sum_ / count_ : 0.0; }

double Summary::stddev() const {
  if (count_ < 2) return 0.0;
  const double m = mean();
  const double var = (sum_sq_ - count_ * m * m) / (count_ - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

void Percentiles::Add(double x) {
#ifndef NDEBUG
  if (seen_ == 0) {
    writer_ = std::this_thread::get_id();
  } else {
    RME_DCHECK(writer_ == std::this_thread::get_id());
  }
#endif
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Algorithm R: element seen_ replaces a uniformly chosen reservoir slot
  // with probability capacity/seen, keeping the reservoir a uniform
  // sample of the full stream instead of its warm-up prefix.
  const uint64_t j = rng_.NextBounded(seen_);
  if (j < capacity_) {
    samples_[j] = x;
    sorted_ = false;
  }
}

void Percentiles::Merge(const Percentiles& other) {
  MergeRaw(other.samples_.data(), other.samples_.size(), other.seen_);
}

void Percentiles::MergeRaw(const double* samples, size_t n, uint64_t seen) {
  RME_CHECK_MSG(seen >= n, "reservoir claims more samples than stream");
  if (n == 0) return;  // nothing to fold in (an empty side is a no-op)
  // Weighted sampling without replacement across the two reservoirs:
  // each draw conceptually consumes ONE element of the pooled stream, so
  // a side is picked with probability (its remaining stream)/(total
  // remaining) and its weight then drops by exactly 1 — hypergeometric
  // over the concatenated streams. (Decrementing by seen/size — the
  // whole block a reservoir slot represents — drains the heavy side's
  // weight quadratically faster and skews late draws toward the light
  // side; with a 9:1 stream split that inflated the light side's share
  // of the merged reservoir from 10% to ~18%.)
  // When both sides are exact and the union fits in `capacity_`, the
  // loop drains both vectors — exact concatenation.
  std::vector<double> a = std::move(samples_);
  std::vector<double> b(samples, samples + n);
  const uint64_t seen_a = seen_;
  double wa = static_cast<double>(seen_a);
  double wb = static_cast<double>(seen);
  samples_ = std::vector<double>();
  const size_t target = std::min(capacity_, a.size() + b.size());
  samples_.reserve(target);
  while (samples_.size() < target) {
    bool from_a;
    if (a.empty()) {
      from_a = false;
    } else if (b.empty()) {
      from_a = true;
    } else {
      from_a = rng_.NextDouble() * (wa + wb) < wa;
    }
    std::vector<double>& v = from_a ? a : b;
    const size_t j = static_cast<size_t>(rng_.NextBounded(v.size()));
    samples_.push_back(v[j]);
    v[j] = v.back();
    v.pop_back();
    (from_a ? wa : wb) -= 1.0;
  }
  seen_ = seen_a + seen;
  sorted_ = false;
}

void Percentiles::Finalize() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentiles::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  RME_CHECK_MSG(sorted_, "Percentiles::Finalize() must run before Quantile()");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

int OverlapBucket(uint64_t f) {
  if (f <= 8) return static_cast<int>(f);
  int b = 16;
  while (static_cast<uint64_t>(b) < f) b *= 2;
  return b;
}

namespace {
int BucketFor(uint64_t v) {
  int b = 0;
  while (v > 0 && b < 39) {
    v >>= 1;
    ++b;
  }
  return b;
}
}  // namespace

void Histogram::Add(uint64_t value) {
  ++buckets_[BucketFor(value)];
  ++total_;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

uint64_t Histogram::MaxBucketEdge() const {
  for (int i = kBuckets - 1; i >= 0; --i) {
    if (buckets_[i] > 0) return i == 0 ? 0 : (1ULL << i);
  }
  return 0;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1)) + (i == 1 ? 0 : 1);
    const uint64_t hi = i == 0 ? 0 : (1ULL << i);
    os << "[" << lo << "," << hi << "]: " << buckets_[i] << "  ";
  }
  return os.str();
}

double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y) {
  RME_CHECK(x.size() == y.size());
  std::vector<double> lx, ly;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0 && y[i] > 0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  return LinearSlope(lx, ly);
}

double LinearSlope(const std::vector<double>& x, const std::vector<double>& y) {
  RME_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

std::string ClassifyGrowth(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const double s = LogLogSlope(x, y);
  if (s < 0.15) return "O(1)";
  if (s < 0.35) return "sublinear";
  if (s < 0.70) return "~sqrt";
  if (s < 1.30) return "~linear";
  return "superlinear";
}

}  // namespace rme
