#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace rme {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument '%s' (flags are --name=value)\n",
                   argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      flags_[std::string(arg)] = "true";
    } else {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

int64_t Cli::GetInt(const std::string& name, int64_t def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Cli::GetString(const std::string& name,
                           const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

}  // namespace rme
