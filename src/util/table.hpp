// Minimal aligned-ASCII / CSV table writer. Every bench binary prints the
// same rows the paper's tables report; this keeps that output uniform.
#pragma once

#include <string>
#include <vector>

namespace rme {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; missing trailing cells render empty, extra cells abort.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(uint64_t v);

  /// Renders an aligned, pipe-separated text table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (no embedded quoting needed for our data).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rme
