#include "util/table.hpp"

#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace rme {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  RME_CHECK_MSG(row.size() <= header_.size(), "row wider than header");
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::Int(uint64_t v) { return std::to_string(v); }

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c ? " | " : "| ") << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  emit(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) os << (c ? "," : "") << cells[c];
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace rme
