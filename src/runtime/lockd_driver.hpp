// Multi-process kill-matrix driver for rme-lockd (runtime/lockd.hpp):
// the fork-harness counterpart for the named-lock service.
//
// One single-threaded parent creates (or reattaches) the named service
// segment, forks the daemon and `num_clients` client processes, and
// injects failures on both sides:
//
//  - client SIGKILLs: parent-side asynchronous kills of random clients,
//    plus child-side site-precise kills (RandomCrash / SiteCrash under
//    SigkillCrash) that land inside lease handshakes, directory inserts,
//    CS brackets and the CS itself;
//  - daemon SIGKILLs: timed kills, plus *targeted* kills fired exactly
//    while the segment provably holds a mid-flight state — a Handshaking
//    slot or an Inserting directory entry whose owner is already dead —
//    so every fresh daemon's takeover sweep is exercised against the
//    mid-handshake and mid-insert crash windows the service must absorb.
//
// Clients are identified by a *client index* (their progress lives in
// the segment keyed by index, so a respawn resumes its quota), while
// lock-level identity is whatever ClientSlot lease each incarnation
// wins — with num_clients > num_slots and lease cycling this is the
// oversubscribed slot-churn regime.
//
// Verdicts come from the per-entry lockd event log: mutual exclusion and
// bounded CS reentry per directory lock, phantom crash notes, plus
// liveness gates (no hung children, no watchdog aborts, full quota
// completion) and a /dev/shm leak audit after teardown.
#pragma once

#include <cstdint>
#include <string>

namespace rme::lockd {

struct LockdDriverConfig {
  std::string shm_name = "rme-lockd-drv";
  std::string lock_kind = "ba";
  int num_slots = 8;
  int num_clients = 8;  ///< <= kMaxProcs (segment bookkeeping arrays)
  int num_names = 16;   ///< distinct lock names clients draw from
  uint64_t acquires_per_client = 200;
  int cs_shared_ops = 2;
  int ncs_local_work = 32;
  /// Release + re-acquire the slot lease every N completed passages
  /// (0 = hold one lease for life). Required (>0) when
  /// num_clients > num_slots, or the surplus clients would starve.
  uint64_t lease_passages = 0;
  uint64_t seed = 1;

  // Parent-side kills.
  uint64_t client_kills = 0;  ///< async SIGKILLs of random clients
  uint64_t daemon_kills = 0;  ///< timed SIGKILLs of the daemon
  /// Targeted daemon kills: fired when a slot is observably stuck
  /// mid-handshake (Handshaking, claimant dead) / an entry is stuck
  /// mid-insert (Inserting, inserter dead). Pair with site kills at
  /// "ld.lease.brk" / "ld.insert.brk" to manufacture those husks.
  uint64_t daemon_kills_in_handshake = 0;
  uint64_t daemon_kills_in_insert = 0;
  double kill_interval_ms = 2.0;

  // Child-side site-precise kills (see runtime/lockd.cpp probe sites and
  // the instrumented op sites inside lock code).
  double self_kill_per_op = 0.0;
  int64_t self_kill_budget = 0;
  std::string site_kill_site;
  int site_kill_slot = 0;
  uint64_t site_kill_nth = 1;
  uint64_t site_kill_count = 1;

  /// Clients fence + recover dead slots between their own passages (the
  /// "next waiter runs Recover()" path); off = only the daemon recovers.
  bool assist_recovery = true;

  double hang_seconds = 10.0;  ///< per-client flat-progress watchdog
  int max_hang_respawns = 3;
  double watchdog_seconds = 30.0;  ///< global no-progress abort
  int32_t spin_budget_us = -1;     ///< spin->park override (-1 = default)
  /// Daemon sweep cadence. The targeted daemon kills race the sweep for
  /// the husk observation window, so the handshake/insert matrices widen
  /// this (a husk lives ~one sweep period) instead of tightening polls.
  uint32_t daemon_sweep_us = 300;
  uint64_t log_cap = 0;            ///< 0 = sized from the workload
  uint32_t dir_capacity = 0;       ///< 0 = sized from num_names
  size_t segment_bytes = 64u << 20;

  /// Reattach to a surviving segment from a previous run (AttachOrCreate)
  /// instead of creating a fresh one.
  bool attach_existing = false;
  /// Keep the /dev/shm entry after the run (for a later attach_existing
  /// run); the final run of a chain leaves it false so the leak audit
  /// sees the name disappear.
  bool persist_segment = false;
};

struct LockdDriverResult {
  uint64_t completed = 0;  ///< passages finished across all clients
  uint64_t attempts = 0;   ///< passage attempts + lease-wait iterations

  uint64_t client_kill_deaths = 0;  ///< SIGKILLed client reaps observed
  uint64_t child_site_kills = 0;    ///< of which child-side (crash chain)
  uint64_t daemon_kill_deaths = 0;  ///< SIGKILLed daemon reaps observed
  uint64_t daemon_kills_handshake = 0;  ///< targeted: fired on a handshake husk
  uint64_t daemon_kills_insert = 0;     ///< targeted: fired on an insert husk
  uint64_t daemon_respawns = 0;
  uint64_t daemon_takeovers = 0;  ///< successful takeover sweeps (segment)

  uint64_t recovered_slots = 0;
  uint64_t rolled_back_inserts = 0;
  uint64_t assisted_inserts = 0;
  uint64_t lease_grants = 0;
  uint64_t entries_ready = 0;
  uint64_t entries_tombstoned = 0;

  // Event-log verdicts (per directory entry).
  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  uint64_t phantom_crash_notes = 0;
  uint64_t cs_overlap_events = 0;
  uint64_t log_events = 0;
  bool log_overflow = false;

  // Liveness.
  uint64_t hangs = 0;
  uint64_t hung_abandoned = 0;
  bool watchdog_fired = false;
  uint64_t child_errors = 0;
  bool all_clients_finished = false;
  bool daemon_stopped_cleanly = false;

  bool segment_leaked = false;  ///< /dev/shm entry survived a non-persist run
  double wall_seconds = 0.0;
  size_t segment_bytes_used = 0;

  /// Every correctness + liveness gate at once (the CI smoke verdict).
  bool Clean() const {
    return me_violations == 0 && bcsr_violations == 0 &&
           phantom_crash_notes == 0 && !log_overflow && hangs == 0 &&
           hung_abandoned == 0 && !watchdog_fired && child_errors == 0 &&
           all_clients_finished && !segment_leaked;
  }
};

/// Runs the workload. Must be called from a single-threaded parent (it
/// forks; see runtime/fork_harness.hpp for why).
LockdDriverResult RunLockdWorkload(const LockdDriverConfig& cfg);

}  // namespace rme::lockd
