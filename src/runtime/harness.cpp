#include "runtime/harness.hpp"

#include <chrono>
#include <mutex>
#include <thread>

#include "rmr/counters.hpp"
#include "runtime/checkers.hpp"
#include "util/assert.hpp"
#include "util/prng.hpp"

namespace rme {

namespace {

/// Per-worker accumulator, merged into RunResult at the end.
struct WorkerStats {
  SegmentStats passage, recover, enter, exit_seg, crashed, victim;
  Histogram cc_hist;
  Summary level;
  std::map<int, SegmentStats> by_overlap;
  std::map<int, Summary> level_by_overlap;
  uint64_t attempts = 0, failures = 0, unsafe = 0;
  uint64_t max_recover_ops = 0, max_exit_ops = 0;
  bool aborted = false;
};

}  // namespace

RunResult RunWorkload(RecoverableLock& lock, const WorkloadConfig& cfg,
                      CrashController* crash) {
  RME_CHECK(cfg.num_procs > 0 && cfg.num_procs <= kMaxProcs);
  ResetGlobalAbort();

  FailureLog failure_log(cfg.num_procs);
  MeChecker checker(lock.IsStronglyRecoverable(), &failure_log);

  // Scratch variable the CS body mutates (instrumented: CS crashes land
  // here, exercising BCSR); its own counts are excluded from passage RMR.
  rmr::Atomic<uint64_t> cs_scratch{0};

  std::vector<WorkerStats> stats(static_cast<size_t>(cfg.num_procs));
  std::atomic<uint64_t> progress{0};
  std::atomic<bool> stop_watchdog{false};

  auto worker = [&](int pid) {
    ProcessBinding bind(pid, crash);
    ProcessContext& ctx = CurrentProcess();
    WorkerStats& my = stats[static_cast<size_t>(pid)];
    Prng rng(cfg.seed, static_cast<uint64_t>(pid) + 7777);

    for (uint64_t done = 0; done < cfg.passages_per_proc;) {
      failure_log.OnRequestStart(pid);
      // F for this super-passage (Thm 5.18's "recent failures"): intervals
      // already active at the start plus failures occurring during it.
      const uint64_t overlap_base = failure_log.ActiveFailures();
      const uint64_t total_base = failure_log.TotalFailures();
      uint64_t own_crashes = 0;
      bool satisfied = false;
      while (!satisfied && !GlobalAbortRequested()) {
        ++my.attempts;
        bool in_cs = false;
        const OpCounters s0 = ctx.counters;
        try {
          lock.Recover(pid);
          const OpCounters s1 = ctx.counters;
          lock.Enter(pid);
          const OpCounters s2 = ctx.counters;

          checker.EnterCS(pid);
          in_cs = true;
          for (int j = 0; j < cfg.cs_shared_ops; ++j) {
            cs_scratch.FetchAdd(1, "cs.op");
            // Yielding here is what makes single-core runs contended:
            // waiters get CPU time while we hold the lock.
            for (int y = 0; y < cfg.cs_yields; ++y) std::this_thread::yield();
          }
          in_cs = false;
          checker.ExitCS(pid);

          const OpCounters s3 = ctx.counters;
          lock.Exit(pid);
          const OpCounters s4 = ctx.counters;

          const OpCounters rec = s1 - s0;
          const OpCounters ent = s2 - s1;
          const OpCounters ext = s4 - s3;
          my.recover.cc.Add(static_cast<double>(rec.cc_rmrs));
          my.recover.dsm.Add(static_cast<double>(rec.dsm_rmrs));
          my.recover.ops.Add(static_cast<double>(rec.ops));
          my.enter.cc.Add(static_cast<double>(ent.cc_rmrs));
          my.enter.dsm.Add(static_cast<double>(ent.dsm_rmrs));
          my.enter.ops.Add(static_cast<double>(ent.ops));
          my.exit_seg.cc.Add(static_cast<double>(ext.cc_rmrs));
          my.exit_seg.dsm.Add(static_cast<double>(ext.dsm_rmrs));
          my.exit_seg.ops.Add(static_cast<double>(ext.ops));
          const uint64_t pcc = rec.cc_rmrs + ent.cc_rmrs + ext.cc_rmrs;
          const uint64_t pdsm = rec.dsm_rmrs + ent.dsm_rmrs + ext.dsm_rmrs;
          const uint64_t pops = rec.ops + ent.ops + ext.ops;
          my.passage.cc.Add(static_cast<double>(pcc));
          my.passage.dsm.Add(static_cast<double>(pdsm));
          my.passage.ops.Add(static_cast<double>(pops));
          my.cc_hist.Add(pcc);
          my.max_recover_ops = std::max(my.max_recover_ops, rec.ops);
          my.max_exit_ops = std::max(my.max_exit_ops, ext.ops);
          const int depth = lock.LastPathDepth(pid);
          if (depth > 0) my.level.Add(depth);

          const uint64_t overlap =
              overlap_base + (failure_log.TotalFailures() - total_base);
          const int bucket = OverlapBucket(overlap);
          SegmentStats& bin = my.by_overlap[bucket];
          bin.cc.Add(static_cast<double>(pcc));
          bin.dsm.Add(static_cast<double>(pdsm));
          bin.ops.Add(static_cast<double>(pops));
          if (depth > 0) my.level_by_overlap[bucket].Add(depth);
          if (own_crashes > 0) {
            my.victim.cc.Add(static_cast<double>(pcc));
            my.victim.dsm.Add(static_cast<double>(pdsm));
            my.victim.ops.Add(static_cast<double>(pops));
          }
          satisfied = true;
        } catch (const ProcessCrash& cr) {
          if (in_cs) checker.OnCrashInCS(pid);
          const bool unsafe = lock.IsSensitiveSite(cr.site, cr.after_op);
          failure_log.RecordFailure(pid, cr.time, cr.site, cr.after_op,
                                    unsafe);
          ++my.failures;
          ++own_crashes;
          if (unsafe) ++my.unsafe;
          const OpCounters burned = ctx.counters - s0;
          my.crashed.cc.Add(static_cast<double>(burned.cc_rmrs));
          my.crashed.dsm.Add(static_cast<double>(burned.dsm_rmrs));
          my.crashed.ops.Add(static_cast<double>(burned.ops));
          // Restart from NCS (Algorithm 1): loop continues.
        } catch (const RunAborted&) {
          my.aborted = true;
          break;
        }
      }
      if (!satisfied) break;  // aborted
      failure_log.OnRequestComplete(pid);
      ++done;
      progress.fetch_add(1, std::memory_order_relaxed);
      // NCS: local (uninstrumented) work.
      for (int j = 0; j < cfg.ncs_local_work; ++j) (void)rng.Next();
    }

    // Graceful shutdown: no injection while releasing leftover resources.
    ctx.SetCrashController(nullptr);
    try {
      lock.OnProcessDone(pid);
    } catch (const RunAborted&) {
      my.aborted = true;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();

  std::thread watchdog([&] {
    uint64_t last = 0;
    auto last_change = std::chrono::steady_clock::now();
    while (!stop_watchdog.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const uint64_t now = progress.load(std::memory_order_relaxed);
      const auto t = std::chrono::steady_clock::now();
      if (now != last) {
        last = now;
        last_change = t;
      } else if (std::chrono::duration<double>(t - last_change).count() >
                 cfg.watchdog_seconds) {
        // Stall: report where every process last touched shared memory
        // (pinpoints the spin loop a deadlocked process sits in).
        std::fprintf(stderr, "WATCHDOG: no progress for %.1fs; last sites:\n",
                     cfg.watchdog_seconds);
        for (int pid = 0; pid < cfg.num_procs; ++pid) {
          ProcessContext* ctx = BoundContext(pid);
          if (ctx != nullptr) {
            std::fprintf(stderr, "  p%-3d @ %s (ops=%llu)\n", pid,
                         ctx->last_site.load(std::memory_order_relaxed),
                         static_cast<unsigned long long>(
                             ctx->ops_snapshot.load(
                                 std::memory_order_relaxed)));
          }
        }
        RequestGlobalAbort();
        return;
      }
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.num_procs));
  for (int pid = 0; pid < cfg.num_procs; ++pid) {
    threads.emplace_back(worker, pid);
  }
  for (auto& t : threads) t.join();
  stop_watchdog.store(true, std::memory_order_relaxed);
  watchdog.join();

  const auto t1 = std::chrono::steady_clock::now();

  RunResult result;
  for (const auto& w : stats) {
    result.passage.Merge(w.passage);
    result.recover.Merge(w.recover);
    result.enter.Merge(w.enter);
    result.exit_seg.Merge(w.exit_seg);
    result.crashed_passage.Merge(w.crashed);
    result.victim_passage.Merge(w.victim);
    result.passage_cc_hist.Merge(w.cc_hist);
    result.level_reached.Merge(w.level);
    for (const auto& [bucket, seg] : w.by_overlap) {
      result.by_overlap[bucket].Merge(seg);
    }
    for (const auto& [bucket, s] : w.level_by_overlap) {
      result.level_by_overlap[bucket].Merge(s);
    }
    result.completed_passages += w.passage.cc.count();
    result.total_attempts += w.attempts;
    result.failures += w.failures;
    result.unsafe_failures += w.unsafe;
    result.max_recover_ops = std::max(result.max_recover_ops, w.max_recover_ops);
    result.max_exit_ops = std::max(result.max_exit_ops, w.max_exit_ops);
    result.aborted = result.aborted || w.aborted;
  }
  result.aborted = result.aborted || GlobalAbortRequested();
  result.me_violations = checker.me_violations();
  result.bcsr_violations = checker.bcsr_violations();
  result.responsiveness_deficits = checker.responsiveness_deficits();
  result.max_concurrent_cs = checker.max_concurrent();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.passages_per_second =
      result.wall_seconds > 0
          ? static_cast<double>(result.completed_passages) / result.wall_seconds
          : 0.0;
  result.lock_stats = lock.StatsString();
  result.failure_records = failure_log.Records();
  return result;
}

}  // namespace rme
