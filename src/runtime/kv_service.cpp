#include "runtime/kv_service.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "locks/cohort_lock.hpp"
#include "locks/lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/striped_table.hpp"
#include "shm/shm_layout.hpp"
#include "shm/shm_segment.hpp"
#include "util/assert.hpp"

namespace rme {

namespace {

using shm::EventKind;
using shm::PidPhase;

/// Cap on ops drawn per NCS visit (the EnterMany batch source).
constexpr int kMaxBatchOps = 16;

/// One KV cell. Uninstrumented atomics on purpose: at millions of keys
/// the rmr::Atomic cache-line padding would dominate the segment, and
/// the crash windows inside the CS body are pinned by explicit probe
/// sites instead (kv.put.tear, kv.txn.stage, kv.txn.pub).
struct KvCell {
  std::atomic<uint64_t> value{0};    ///< put plane: KvValueForTag(version)
  std::atomic<uint64_t> version{0};  ///< put plane: (txn << 8) | pid
  std::atomic<uint64_t> balance{0};  ///< txn plane: conserved by transfers
};

/// Per-pid write-ahead record covering both write kinds: puts replay as
/// blind tag-derived stores (kv_store idiom), transactions stage their
/// post-balances first (bank_ledger idiom). `txn` is published last on
/// prepare, so a record is either fully described or absent.
struct alignas(kCacheLineBytes) KvRedo {
  std::atomic<uint64_t> txn{0};
  std::atomic<uint32_t> kind{0};  ///< KvOp::Kind (kPut or kTxn)
  std::atomic<uint32_t> nkeys{0};
  std::atomic<uint64_t> key[kKvMaxTxnKeys];
  std::atomic<uint64_t> staged_txn{0};
  std::atomic<uint64_t> staged_val[kKvMaxTxnKeys];
  std::atomic<uint64_t> applied{0};
};

/// Per-stripe event: the fork harness's ShmEvent with a stripe operand
/// (kEnter/kExit/kCrashNoted are per-stripe; the rest ignore it). The
/// kind word is written last (release), exactly like shm::ShmEvent.
struct KvEvent {
  uint32_t pid = 0;
  std::atomic<uint32_t> kind{0};
  uint32_t stripe = 0;
  uint32_t unsafe = 0;
  uint64_t passage = 0;
};

struct alignas(kCacheLineBytes) KvPidControl {
  std::atomic<uint64_t> ops_done{0};
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> passages{0};
  std::atomic<uint64_t> batched_passages{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> txns{0};
  std::atomic<uint32_t> req_open{0};
  std::atomic<uint32_t> finished{0};
  std::atomic<uint32_t> phase{0};
  std::atomic<uint32_t> pad{0};
  std::atomic<uint64_t> incarnation{0};
  std::atomic<const char*> last_probe_site{nullptr};
  /// Held-stripe forensics, slot i = i-th stripe acquired this passage:
  /// stripe+1 (0 = none) plus the logged-CS bracket ticket in the
  /// shm::EncodeCsTicket encoding — the fork harness's single cs_ticket
  /// generalized to ordered multi-stripe holds.
  std::atomic<uint64_t> held_stripe[kKvMaxTxnKeys];
  std::atomic<uint64_t> held_ticket[kKvMaxTxnKeys];
};

/// Per-pid latency reservoir in the segment: single-writer Algorithm R
/// over fixed storage, readable by the parent after the child is gone.
/// A SIGKILL can tear at most the one in-flight sample slot.
struct KvReservoir {
  std::atomic<uint64_t> seen{0};
  double* samples = nullptr;  ///< segment array, `capacity` doubles
  uint64_t capacity = 0;
};

struct KvControl {
  std::atomic<uint64_t> log_next{0};
  std::atomic<uint32_t> log_overflow{0};
  uint32_t pad = 0;
  uint64_t log_cap = 0;  ///< 0 when event logging is off
  KvEvent* log = nullptr;
  std::atomic<uint64_t> cs_overlap_events{0};
  SigkillCrash::PidSlot kill_slots[kMaxProcs];
  KvPidControl per_pid[kMaxProcs];
  SharedOpCounters pid_counters[kMaxProcs];
  KvReservoir reservoirs[kMaxProcs];
  KvRedo redo[kMaxProcs];
  rmr_detail::ParkLot park_lot;
};

uint64_t KvReserve(KvControl* ctl) {
  const uint64_t slot = ctl->log_next.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= ctl->log_cap) {
    ctl->log_overflow.store(1, std::memory_order_relaxed);
  }
  return slot;
}

void KvCommit(KvControl* ctl, uint64_t slot, EventKind kind, int pid,
              uint32_t stripe, uint64_t passage, bool unsafe = false) {
  if (slot >= ctl->log_cap) return;
  KvEvent& e = ctl->log[slot];
  e.pid = static_cast<uint32_t>(pid);
  e.stripe = stripe;
  e.passage = passage;
  e.unsafe = unsafe ? 1 : 0;
  e.kind.store(static_cast<uint32_t>(kind), std::memory_order_release);
}

void KvAppend(KvControl* ctl, EventKind kind, int pid, uint32_t stripe,
              uint64_t passage, bool unsafe = false) {
  if (ctl->log_cap == 0) return;
  KvCommit(ctl, KvReserve(ctl), kind, pid, stripe, passage, unsafe);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepBriefly() {
  struct timespec ts{0, 200'000};  // 200us
  ::nanosleep(&ts, nullptr);
}

/// Insertion sort for the <= kKvMaxTxnKeys stripe sets (std::sort's
/// 16-element insertion threshold trips -Warray-bounds on these).
void SortStripes(uint32_t* s, int m) {
  for (int i = 1; i < m; ++i) {
    const uint32_t x = s[i];
    int j = i;
    for (; j > 0 && s[j - 1] > x; --j) s[j] = s[j - 1];
    s[j] = x;
  }
}

const char* HoldSite(int held) {
  static const char* kSites[kKvMaxTxnKeys] = {"kv.hold1", "kv.hold2",
                                              "kv.hold3", "kv.hold4"};
  return kSites[std::min(held - 1, kKvMaxTxnKeys - 1)];
}

/// Everything a child op loop needs; lives on the child's stack, all
/// pointers into the (fork-shared) segment.
struct ChildCtx {
  const KvServiceConfig* cfg;
  KvControl* ctl;
  StripedTable* table;
  KvCell* cells;
  CrashController* crash;
  int pid;
  Prng rng;        ///< NCS draws + reservoir, per incarnation
  KvPidControl* me;
  KvRedo* redo;

  void Publish(PidPhase ph) {
    me->phase.store(static_cast<uint32_t>(ph), std::memory_order_relaxed);
  }
  void Probe(const char* site) {
    me->last_probe_site.store(site, std::memory_order_relaxed);
    if (crash != nullptr) (void)crash->ShouldCrash(pid, site, true);
  }
  void AddLatency(double us) {
    KvReservoir& r = ctl->reservoirs[pid];
    const uint64_t seen =
        r.seen.fetch_add(1, std::memory_order_relaxed) + 1;
    if (seen <= r.capacity) {
      r.samples[seen - 1] = us;
    } else {
      const uint64_t j = rng.NextBounded(seen);
      if (j < r.capacity) r.samples[j] = us;
    }
  }

  /// Acquires stripe `s` as held slot `idx` with the full bracket
  /// discipline (pre-record, reserve, ticket, probe, commit, tripwire).
  void AcquireStripe(uint32_t s, int idx, uint64_t passage, bool batched,
                     int k) {
    RecoverableLock* lk = table->LockAt(s);
    // Record the *attempt* before touching the lock: a SIGKILL anywhere
    // from here to the slot clear in ReleaseStripe leaves our queue node
    // (or the CS itself) wedged inside this stripe's lock, and Algorithm 1
    // requires the same pid to re-enter THIS lock to heal it. With one
    // global lock the fork harness gets that for free; with striping the
    // respawn preamble must know which stripe to revisit. Ticket 0 =
    // "attempting, not in a logged CS".
    me->held_ticket[idx].store(0, std::memory_order_relaxed);
    me->held_stripe[idx].store(s + 1, std::memory_order_release);
    Publish(PidPhase::kRecovering);
    Probe("h.recover.brk");
    lk->Recover(pid);
    Probe("h.recover.done");
    Publish(PidPhase::kEntering);
    if (batched) {
      lk->EnterMany(pid, k);
    } else {
      lk->Enter(pid);
    }
    StripeEntry& entry = table->EntryAt(s);
    if (ctl->log_cap != 0) {
      const uint64_t slot = KvReserve(ctl);
      me->held_ticket[idx].store(
          shm::EncodeCsTicket(slot, shm::kCsEnterPhase),
          std::memory_order_release);
      Probe(HoldSite(idx + 1));
      KvCommit(ctl, slot, EventKind::kEnter, pid, s, passage);
    } else {
      Probe(HoldSite(idx + 1));
    }
    const uint32_t prev = entry.owner.exchange(
        static_cast<uint32_t>(pid) + 1, std::memory_order_acq_rel);
    if (prev != 0 && prev != static_cast<uint32_t>(pid) + 1) {
      entry.cs_overlaps.fetch_add(1, std::memory_order_relaxed);
      ctl->cs_overlap_events.fetch_add(1, std::memory_order_relaxed);
    }
    entry.acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (batched) entry.batched_passages.fetch_add(1, std::memory_order_relaxed);
  }

  /// Releases held slot `idx` (stripe `s`), mirroring the harness's
  /// exit-bracket ordering: reserve, flip ticket, release tripwire,
  /// commit, clear, lock Exit.
  void ReleaseStripe(uint32_t s, int idx, uint64_t passage, bool batched) {
    StripeEntry& entry = table->EntryAt(s);
    if (ctl->log_cap != 0) {
      const uint64_t slot = KvReserve(ctl);
      me->held_ticket[idx].store(
          shm::EncodeCsTicket(slot, shm::kCsExitPhase),
          std::memory_order_release);
      Probe("kv.exit.brk");
      entry.owner.store(0, std::memory_order_release);
      KvCommit(ctl, slot, EventKind::kExit, pid, s, passage);
    } else {
      entry.owner.store(0, std::memory_order_release);
    }
    RecoverableLock* lk = table->LockAt(s);
    if (batched) {
      lk->ExitMany(pid);
    } else {
      lk->Exit(pid);
    }
    // Clear the attempt record only once the lock is fully released: a
    // kill inside Exit() must still send the respawn back to this stripe.
    me->held_ticket[idx].store(0, std::memory_order_release);
    me->held_stripe[idx].store(0, std::memory_order_release);
  }

  /// Applies the pending redo record. Requires every stripe of its keys
  /// to be held. Idempotent under crash-replay:
  ///  - puts: every stored word is a pure function of the (txn, pid)
  ///    tag, so replay is blind re-stores;
  ///  - txns: STAGE persists the post-balances before PUBLISH touches
  ///    the cells, so replay either re-stages identical values (cells
  ///    untouched) or re-publishes the staged ones.
  void ApplyRedo() {
    const uint64_t txn = redo->txn.load(std::memory_order_acquire);
    if (redo->applied.load(std::memory_order_relaxed) == txn) return;
    const auto kind =
        static_cast<KvOp::Kind>(redo->kind.load(std::memory_order_relaxed));
    const int nk = static_cast<int>(redo->nkeys.load(std::memory_order_relaxed));
    if (kind == KvOp::kPut) {
      const uint64_t tag =
          (txn << 8) | static_cast<uint64_t>(pid);
      for (int i = 0; i < nk; ++i) {
        KvCell& cell = cells[redo->key[i].load(std::memory_order_relaxed)];
        cell.value.store(KvValueForTag(tag), std::memory_order_relaxed);
        // The torn-put window the integrity audit watches: a kill here
        // leaves value new but version old, and only the CSR replay of
        // this same record may heal it.
        Probe("kv.put.tear");
        cell.version.store(tag, std::memory_order_release);
      }
    } else {
      if (redo->staged_txn.load(std::memory_order_acquire) != txn) {
        // STAGE: cells untouched for this txn; compute the post-transfer
        // balances and persist them before the stage commit point.
        const uint64_t amount = 1 + txn % 50;
        uint64_t bal[kKvMaxTxnKeys];
        for (int i = 0; i < nk; ++i) {
          bal[i] = cells[redo->key[i].load(std::memory_order_relaxed)]
                       .balance.load(std::memory_order_relaxed);
        }
        const uint64_t moved = std::min(bal[0], amount);
        uint64_t out[kKvMaxTxnKeys];
        out[0] = bal[0] - moved;
        if (nk > 1) {
          const uint64_t share = moved / static_cast<uint64_t>(nk - 1);
          uint64_t given = 0;
          for (int i = 1; i < nk; ++i) {
            const uint64_t add =
                i == nk - 1 ? moved - given : share;
            out[i] = bal[i] + add;
            given += add;
          }
        } else {
          out[0] = bal[0];  // degenerate single-key txn: conserve
        }
        for (int i = 0; i < nk; ++i) {
          redo->staged_val[i].store(out[i], std::memory_order_relaxed);
        }
        Probe("kv.txn.stage");
        redo->staged_txn.store(txn, std::memory_order_release);
      }
      // PUBLISH: blind idempotent stores of the staged balances.
      for (int i = 0; i < nk; ++i) {
        cells[redo->key[i].load(std::memory_order_relaxed)].balance.store(
            redo->staged_val[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        Probe("kv.txn.pub");
      }
    }
    redo->applied.store(txn, std::memory_order_release);
  }

  /// Runs one passage over `m` sorted distinct stripes with `k_ops` CS
  /// bodies provided by `body()`. Handles batching, brackets, latency.
  template <typename Body>
  void RunPassage(const uint32_t* stripes, int m, int k_ops, Body&& body) {
    const uint64_t passage = me->passages.load(std::memory_order_relaxed);
    if (me->req_open.load(std::memory_order_relaxed) == 0) {
      me->req_open.store(1, std::memory_order_relaxed);
      KvAppend(ctl, EventKind::kReqStart, pid, 0, passage);
    }
    me->attempts.fetch_add(1, std::memory_order_relaxed);
    const double t0 = NowSeconds();
    // EnterMany batches only single-stripe groups: a multi-stripe hold
    // is already one passage over its ordered stripes.
    const bool batched = m == 1 && k_ops > 1 &&
                         table->LockAt(stripes[0])->SupportsEnterMany();
    for (int j = 0; j < m; ++j) {
      AcquireStripe(stripes[j], j, passage, batched, k_ops);
    }
    Publish(PidPhase::kCs);
    body();
    Publish(PidPhase::kExiting);
    for (int j = m - 1; j >= 0; --j) {
      ReleaseStripe(stripes[j], j, passage, batched);
    }
    AddLatency((NowSeconds() - t0) * 1e6);
    KvAppend(ctl, EventKind::kReqDone, pid, 0, passage);
    me->req_open.store(0, std::memory_order_relaxed);
    me->passages.fetch_add(1, std::memory_order_relaxed);
    if (batched) me->batched_passages.fetch_add(1, std::memory_order_relaxed);
    Publish(PidPhase::kIdle);
  }

  /// Computes the sorted distinct stripe set of the pending redo and
  /// completes it as one passage — the resume half of the
  /// release-or-complete contract.
  void ResumeRedo() {
    const int nk =
        static_cast<int>(redo->nkeys.load(std::memory_order_relaxed));
    uint32_t stripes[kKvMaxTxnKeys];
    int m = 0;
    for (int i = 0; i < nk; ++i) {
      const uint32_t s =
          table->StripeOf(redo->key[i].load(std::memory_order_relaxed));
      bool dup = false;
      for (int j = 0; j < m; ++j) dup = dup || stripes[j] == s;
      if (!dup) stripes[m++] = s;
    }
    SortStripes(stripes, m);
    const auto kind =
        static_cast<KvOp::Kind>(redo->kind.load(std::memory_order_relaxed));
    RunPassage(stripes, m, /*k_ops=*/1, [&] { ApplyRedo(); });
    me->ops_done.fetch_add(static_cast<uint64_t>(nk),
                           std::memory_order_relaxed);
    if (kind == KvOp::kPut) {
      me->puts.fetch_add(static_cast<uint64_t>(nk),
                         std::memory_order_relaxed);
    } else {
      me->txns.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Prepares the redo record for a write set (all slots first, txn id
  /// last with release — prepared-or-absent).
  uint64_t PrepareRedo(KvOp::Kind kind, const uint64_t* keys, int nk) {
    const uint64_t txn = redo->applied.load(std::memory_order_relaxed) + 1;
    redo->kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
    redo->nkeys.store(static_cast<uint32_t>(nk), std::memory_order_relaxed);
    for (int i = 0; i < nk; ++i) {
      redo->key[i].store(keys[i], std::memory_order_relaxed);
    }
    redo->txn.store(txn, std::memory_order_release);
    return txn;
  }
};

[[noreturn]] void KvChildMain(KvControl* ctl, StripedTable* table,
                              KvCell* cells, CrashController* crash, int pid,
                              uint64_t incarnation,
                              const KvServiceConfig& cfg) {
  KvPidControl& me = ctl->per_pid[pid];
  if (me.incarnation.load(std::memory_order_acquire) != incarnation) {
    std::_Exit(0);  // stale respawn: the parent moved past us
  }
  CurrentProcess() = ProcessContext{};
  ProcessBinding bind(pid, crash, &ctl->pid_counters[pid]);
  WakeAllParked();

  ChildCtx cx{&cfg,
              ctl,
              table,
              cells,
              crash,
              pid,
              Prng(cfg.seed, (incarnation << 16) + static_cast<uint64_t>(pid)),
              &me,
              &ctl->redo[pid]};

  // ---- Crash-recovery preamble --------------------------------------
  // 1. Held-stripe forensics: for every stripe our corpse held, decide
  //    died-in-logged-CS from the bracket ticket (the fork harness's
  //    cs_ticket rule per slot), emit kCrashNoted(stripe), and free the
  //    live tripwire the corpse still owns.
  uint32_t corpse_stripes[kKvMaxTxnKeys];
  int n_corpse = 0;
  for (int i = 0; i < kKvMaxTxnKeys; ++i) {
    const uint64_t sp1 = me.held_stripe[i].load(std::memory_order_acquire);
    if (sp1 == 0) continue;
    const uint32_t s = static_cast<uint32_t>(sp1 - 1);
    corpse_stripes[n_corpse++] = s;
    const uint64_t ticket = me.held_ticket[i].load(std::memory_order_acquire);
    if (ctl->log_cap != 0 && ticket != 0) {
      const uint64_t slot = shm::CsTicketSlot(ticket);
      const bool committed =
          slot < ctl->log_cap &&
          ctl->log[slot].kind.load(std::memory_order_acquire) !=
              static_cast<uint32_t>(EventKind::kInvalid);
      const bool died_in_logged_cs =
          shm::CsTicketPhase(ticket) == shm::kCsEnterPhase ? committed
                                                           : !committed;
      if (died_in_logged_cs) {
        KvAppend(ctl, EventKind::kCrashNoted, pid, s,
                 me.passages.load(std::memory_order_relaxed));
      }
    }
    uint32_t mine = static_cast<uint32_t>(pid) + 1;
    table->EntryAt(s).owner.compare_exchange_strong(
        mine, 0, std::memory_order_acq_rel);
    me.held_ticket[i].store(0, std::memory_order_release);
    me.held_stripe[i].store(0, std::memory_order_release);
  }

  const uint64_t quota = cfg.ops_per_proc;

  // 2. Release-or-complete: a prepared-but-unapplied redo is completed
  //    first (re-acquiring its stripes re-enters every CS the corpse
  //    died holding — strong families owe that reentry to everyone else
  //    per CSR). A corpse that held stripes with NO pending redo died in
  //    a read passage: revisit each held stripe with an empty passage so
  //    the lock sees its owed reentry promptly.
  if (cx.redo->txn.load(std::memory_order_acquire) !=
      cx.redo->applied.load(std::memory_order_relaxed)) {
    cx.ResumeRedo();
  } else {
    for (int i = 0; i < n_corpse; ++i) {
      const uint32_t s = corpse_stripes[i];
      cx.RunPassage(&s, 1, 1, [] {});
    }
  }

  // ---- Main op loop --------------------------------------------------
  const int batch = std::clamp(cfg.batch_ops, 1, kMaxBatchOps);
  while (me.ops_done.load(std::memory_order_relaxed) < quota) {
    // NCS: draw up to `batch` ops.
    KvOp ops[kMaxBatchOps];
    const uint64_t left = quota - me.ops_done.load(std::memory_order_relaxed);
    const int n_ops = static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(batch), left));
    for (int i = 0; i < n_ops; ++i) ops[i] = cfg.draw(pid, cx.rng);

    // Partition: single-key ops group by stripe (sorted, so groups are
    // consecutive runs); transactions run standalone with ordered
    // multi-stripe acquisition.
    int idx[kMaxBatchOps];
    int n_single = 0;
    for (int i = 0; i < n_ops; ++i) {
      if (ops[i].kind != KvOp::kTxn) idx[n_single++] = i;
    }
    std::sort(idx, idx + n_single, [&](int a, int b) {
      return table->StripeOf(ops[a].keys[0]) < table->StripeOf(ops[b].keys[0]);
    });

    int g = 0;
    while (g < n_single) {
      const uint32_t stripe = table->StripeOf(ops[idx[g]].keys[0]);
      // One group = a consecutive same-stripe run, split so its write
      // set fits the redo record.
      int end = g;
      int n_put = 0;
      while (end < n_single &&
             table->StripeOf(ops[idx[end]].keys[0]) == stripe) {
        const bool is_put = ops[idx[end]].kind == KvOp::kPut;
        if (is_put && n_put == kKvMaxTxnKeys) break;
        if (is_put) ++n_put;
        ++end;
      }
      const int k_ops = end - g;
      uint64_t put_keys[kKvMaxTxnKeys];
      int np = 0;
      for (int i = g; i < end; ++i) {
        if (ops[idx[i]].kind == KvOp::kPut) {
          put_keys[np++] = ops[idx[i]].keys[0];
        }
      }
      if (np > 0) cx.PrepareRedo(KvOp::kPut, put_keys, np);
      uint64_t read_sink = 0;
      cx.RunPassage(&stripe, 1, k_ops, [&] {
        for (int i = g; i < end; ++i) {
          if (ops[idx[i]].kind == KvOp::kRead) {
            const KvCell& cell = cells[ops[idx[i]].keys[0]];
            read_sink ^= cell.value.load(std::memory_order_relaxed) ^
                         cell.version.load(std::memory_order_relaxed);
          }
        }
        if (np > 0) cx.ApplyRedo();
      });
      me.ops_done.fetch_add(static_cast<uint64_t>(k_ops),
                            std::memory_order_relaxed);
      me.reads.fetch_add(static_cast<uint64_t>(k_ops - np),
                         std::memory_order_relaxed);
      me.puts.fetch_add(static_cast<uint64_t>(np), std::memory_order_relaxed);
      g = end;
    }

    for (int i = 0; i < n_ops; ++i) {
      if (ops[i].kind != KvOp::kTxn) continue;
      // Dedupe keys defensively (a duplicate would double-stage a cell),
      // then acquire the distinct stripes in ascending order.
      uint64_t keys[kKvMaxTxnKeys];
      int nk = 0;
      for (int j = 0; j < ops[i].nkeys && j < kKvMaxTxnKeys; ++j) {
        bool dup = false;
        for (int q = 0; q < nk; ++q) dup = dup || keys[q] == ops[i].keys[j];
        if (!dup) keys[nk++] = ops[i].keys[j];
      }
      cx.PrepareRedo(KvOp::kTxn, keys, nk);
      uint32_t stripes[kKvMaxTxnKeys];
      int m = 0;
      for (int j = 0; j < nk; ++j) {
        const uint32_t s = table->StripeOf(keys[j]);
        bool dup = false;
        for (int q = 0; q < m; ++q) dup = dup || stripes[q] == s;
        if (!dup) stripes[m++] = s;
      }
      SortStripes(stripes, m);
      cx.RunPassage(stripes, m, 1, [&] { cx.ApplyRedo(); });
      me.ops_done.fetch_add(static_cast<uint64_t>(nk),
                            std::memory_order_relaxed);
      me.txns.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Graceful shutdown: no injection while releasing leftover resources
  // across every stripe lock.
  CurrentProcess().SetCrashController(nullptr);
  for (uint32_t s = 0; s < table->stripe_count(); ++s) {
    table->LockAt(s)->OnProcessDone(pid);
  }
  KvAppend(ctl, EventKind::kDone, pid, 0,
           me.passages.load(std::memory_order_relaxed));
  cx.Publish(PidPhase::kIdle);
  me.finished.store(1, std::memory_order_release);
  std::_Exit(0);
}

/// Post-hoc per-stripe verdicts: the fork harness's ScanLog with the
/// holder/obliged state split per stripe and kill consequence intervals
/// kept global (a kill's interval covers every request it overlapped,
/// whichever stripes they touch — conservative for weak-lock
/// admissibility in exactly the direction that never hides a violation
/// by a strong lock).
struct KvVerdicts {
  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  uint64_t admissible_overlaps = 0;
  uint64_t crash_notes = 0;
  uint64_t phantom_crash_notes = 0;
  uint64_t max_attempts_per_passage = 0;
};

KvVerdicts KvScanLog(const KvControl* ctl, uint32_t stripes, bool strong) {
  KvVerdicts v;
  std::vector<uint64_t> holders(stripes, 0);
  std::vector<uint64_t> obliged(stripes, 0);
  bool req_open[kMaxProcs] = {};
  uint64_t passage_attempts[kMaxProcs] = {};
  struct Interval {
    uint64_t mask;
  };
  std::vector<Interval> intervals;

  const uint64_t count = std::min<uint64_t>(
      ctl->log_next.load(std::memory_order_relaxed), ctl->log_cap);
  for (uint64_t i = 0; i < count; ++i) {
    const KvEvent& e = ctl->log[i];
    const auto kind =
        static_cast<EventKind>(e.kind.load(std::memory_order_acquire));
    if (kind == EventKind::kInvalid) continue;
    const int pid = static_cast<int>(e.pid);
    const uint64_t bit = 1ULL << pid;
    const uint32_t s = e.stripe < stripes ? e.stripe : 0;

    switch (kind) {
      case EventKind::kReqStart:
        req_open[pid] = true;
        passage_attempts[pid] = 1;
        break;
      case EventKind::kEnter: {
        if (strong && (obliged[s] & ~bit) != 0) ++v.bcsr_violations;
        obliged[s] &= ~bit;
        if ((holders[s] & ~bit) != 0) {
          if (strong) {
            ++v.me_violations;
          } else {
            bool active = false;
            for (const Interval& iv : intervals) active = active || iv.mask;
            if (active) {
              ++v.admissible_overlaps;
            } else {
              ++v.me_violations;
            }
          }
        }
        holders[s] |= bit;
        break;
      }
      case EventKind::kExit:
        holders[s] &= ~bit;
        break;
      case EventKind::kReqDone:
        req_open[pid] = false;
        v.max_attempts_per_passage =
            std::max(v.max_attempts_per_passage, passage_attempts[pid]);
        for (Interval& iv : intervals) iv.mask &= ~bit;
        break;
      case EventKind::kKill: {
        if (req_open[pid]) ++passage_attempts[pid];
        uint64_t mask = 0;
        for (int j = 0; j < kMaxProcs; ++j) {
          if (req_open[j]) mask |= 1ULL << j;
        }
        intervals.push_back({mask});
        break;
      }
      case EventKind::kCrashNoted:
        if ((holders[s] & bit) != 0) {
          holders[s] &= ~bit;
          if (strong) obliged[s] |= bit;
          ++v.crash_notes;
        } else {
          ++v.phantom_crash_notes;
        }
        break;
      case EventKind::kDone:
      case EventKind::kInvalid:
        break;
    }
  }
  return v;
}

/// Measures one stripe lock's segment footprint (allocation tree + bump
/// overhead) by building a throwaway instance in a scratch segment. The
/// instance is deliberately released into the scratch segment, which
/// unmaps wholesale on return. +1/4 margin absorbs per-stripe allocator
/// slop in the real build.
size_t ProbeLockBytes(const KvServiceConfig& cfg, int n) {
  shm::Segment probe(64u << 20);
  const size_t before = probe.bytes_used();
  {
    shm::PlacementScope scope(&probe);
    MakeLock(cfg.lock_name, n).release();
  }
  const size_t one = probe.bytes_used() - before;
  return one + one / 4 + 4096;
}

}  // namespace

uint64_t KvValueForTag(uint64_t tag) {
  uint64_t x = tag + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

KvServiceResult RunKvService(const KvServiceConfig& cfg) {
  RME_CHECK(cfg.num_procs > 0 && cfg.num_procs <= kMaxProcs);
  RME_CHECK(cfg.ops_per_proc > 0);
  RME_CHECK(cfg.keys > 0);
  RME_CHECK_MSG(static_cast<bool>(cfg.draw), "KvServiceConfig.draw required");
  RME_CHECK(cfg.batch_ops >= 1 && cfg.batch_ops <= kMaxBatchOps);
  RME_CHECK(cfg.storm_kills == 0 || cfg.storm_victim < cfg.num_procs);
  const int n = cfg.num_procs;
  constexpr uint64_t kInitialBalance = 100;

  // The cohort families' per-process retention ("keep the whole stack
  // when Exit observes no demand") is only live in a workload where the
  // retainer keeps re-entering the SAME lock: demand arriving later is
  // noticed at the retainer's next Exit, and in a one-lock bench that
  // next Exit is microseconds away. In a striped service a process may
  // not revisit a stripe for thousands of ops — or ever — so a waiter
  // arriving after retention parks on a lock whose holder is gone for
  // good (observed as a full-fleet wedge at 4096 stripes). Build the
  // stripe locks with unconditional caps and no cross-passage retention;
  // in-cohort handoff to a QUEUED waiter stays on (the waiter inherits
  // the release obligation, so it cannot strand anyone).
  CohortConfig& cohort_defaults = cohort_lock_defaults();
  const CohortConfig saved_cohort_defaults = cohort_defaults;
  cohort_defaults.retain_cap = 1;
  cohort_defaults.adaptive = false;

  // Sizing. Every op is at most one passage; a passage logs at most
  // 2 + 2*kKvMaxTxnKeys events; kills add kKill + up to kKvMaxTxnKeys
  // crash notes + a retried passage.
  const uint64_t kill_budget =
      static_cast<uint64_t>(std::max<int64_t>(cfg.self_kill_budget, 0)) +
      cfg.independent_kills +
      cfg.batch_kill_events *
          static_cast<uint64_t>(cfg.batch_size <= 0 ? n : cfg.batch_size) +
      cfg.storm_kills * static_cast<uint64_t>(cfg.storm_victim < 0 ? n : 1) +
      cfg.site_kill_count;
  const uint64_t total_ops = static_cast<uint64_t>(n) * cfg.ops_per_proc;
  const uint64_t log_cap =
      cfg.log_events
          ? (2 + 2 * kKvMaxTxnKeys) * total_ops + 16 * kill_budget +
                64 * static_cast<uint64_t>(n) + 4096
          : 0;
  size_t bytes = cfg.segment_bytes;
  if (bytes == 0) {
    // Per-lock footprints vary by orders of magnitude across families
    // (gr-adaptive's recycling ring alone is ~1.5 MiB of padded QNodes),
    // so measure one instance in a scratch segment instead of guessing.
    bytes = sizeof(KvControl) + log_cap * sizeof(KvEvent) +
            cfg.keys * sizeof(KvCell) +
            cfg.stripes * (sizeof(StripeEntry) + ProbeLockBytes(cfg, n)) +
            static_cast<size_t>(n) * cfg.reservoir_capacity * sizeof(double) +
            (8u << 20);
  }

  shm::Segment seg(bytes);
  KvControl* ctl = seg.New<KvControl>();
  ctl->log_cap = log_cap;
  if (log_cap != 0) ctl->log = seg.NewArray<KvEvent>(log_cap);
  for (int pid = 0; pid < n; ++pid) {
    ctl->reservoirs[pid].capacity = cfg.reservoir_capacity;
    ctl->reservoirs[pid].samples =
        seg.NewArray<double>(cfg.reservoir_capacity);
  }
  KvCell* cells = seg.NewArray<KvCell>(cfg.keys);
  for (uint64_t k = 0; k < cfg.keys; ++k) {
    cells[k].balance.store(kInitialBalance, std::memory_order_relaxed);
  }

  rmr_detail::ParkLot* prev_lot = InstallParkLot(&ctl->park_lot);
  const SpinConfig saved_spin = spin_config();
  if (cfg.spin_budget_us >= 0) {
    spin_config().spin_budget_us = static_cast<uint32_t>(cfg.spin_budget_us);
  }

  CrashController* crash = nullptr;
  RecoveryStormCrash* storm = nullptr;
  {
    std::vector<CrashController*> parts;
    if (cfg.storm_kills > 0) {
      const uint64_t mask =
          cfg.storm_victim < 0
              ? (n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1)
              : uint64_t{1} << cfg.storm_victim;
      storm = seg.New<RecoveryStormCrash>(mask, cfg.storm_kills,
                                          cfg.storm_nth_op);
      parts.push_back(storm);
    }
    if (cfg.self_kill_budget > 0 && cfg.self_kill_per_op > 0) {
      parts.push_back(seg.New<RandomCrash>(cfg.seed ^ 0x6b76737663ull,
                                           cfg.self_kill_per_op,
                                           cfg.self_kill_budget));
    }
    if (!cfg.site_kill_site.empty()) {
      RME_CHECK(cfg.site_kill_pid >= 0 && cfg.site_kill_pid < n);
      parts.push_back(seg.New<SiteCrash>(cfg.site_kill_pid,
                                         cfg.site_kill_site,
                                         /*after_op=*/true, cfg.site_kill_nth,
                                         cfg.site_kill_count));
    }
    if (parts.size() == 1) {
      crash = seg.New<SigkillCrash>(parts[0], ctl->kill_slots);
    } else if (!parts.empty()) {
      crash = seg.New<SigkillCrash>(seg.New<CompositeCrash>(parts),
                                    ctl->kill_slots);
    }
  }

  StripedTable* table =
      StripedTable::Create(seg, cfg.lock_name, cfg.stripes, n);
  const bool strong = table->LockAt(0)->IsStronglyRecoverable();

  ResetGlobalAbort();
  KvServiceResult result;
  result.ready_stripes = table->ReadyEntries();

  struct ChildState {
    pid_t os_pid = -1;
    bool alive = false;
    bool finished = false;
    bool parent_kill_pending = false;
    bool watchdog_kill_pending = false;
    uint64_t self_kills_seen = 0;
    uint64_t last_progress = 0;
    double last_progress_at = 0.0;
    int hang_respawns = 0;
    bool respawn_scheduled = false;
    double respawn_at = 0.0;
  };
  std::vector<ChildState> children(static_cast<size_t>(n));

  // Progress = completed work only (ops, passages, attempts) — NOT the
  // mirrored op counters: a pid parked on a dead holder's futex still
  // issues instrumented re-loads on every timeout recheck, so counting
  // raw ops would let a wedged child look alive forever and blind both
  // watchdogs to a genuine cross-stripe deadlock.
  auto child_progress = [&](int pid) {
    const KvPidControl& pc = ctl->per_pid[pid];
    return pc.ops_done.load(std::memory_order_relaxed) +
           pc.passages.load(std::memory_order_relaxed) +
           pc.attempts.load(std::memory_order_relaxed);
  };

  auto spawn = [&](int pid) {
    const uint64_t inc =
        ctl->per_pid[pid].incarnation.fetch_add(1, std::memory_order_acq_rel) +
        1;
    const pid_t c = ::fork();
    RME_CHECK_MSG(c >= 0, "fork failed");
    if (c == 0) {
      KvChildMain(ctl, table, cells, crash, pid, inc, cfg);
    }
    ChildState& cs = children[static_cast<size_t>(pid)];
    cs.os_pid = c;
    cs.alive = true;
    cs.last_progress = child_progress(pid);
    cs.last_progress_at = NowSeconds();
  };

  const double t0 = NowSeconds();
  for (int pid = 0; pid < n; ++pid) spawn(pid);

  Prng kill_rng(cfg.seed, 0x6b76ull);
  uint64_t independent_left = cfg.independent_kills;
  uint64_t batches_left = cfg.batch_kill_events;
  double next_kill_at = t0 + cfg.kill_interval_ms / 1000.0;

  uint64_t last_progress = 0;
  double last_progress_at = t0;
  bool shutting_down = false;

  auto progress_now = [&] {
    uint64_t p = result.kills;
    for (int pid = 0; pid < n; ++pid) p += child_progress(pid);
    return p;
  };

  auto kill_victim = [&](int pid) {
    ChildState& cs = children[static_cast<size_t>(pid)];
    cs.parent_kill_pending = true;
    KvAppend(ctl, EventKind::kKill, pid, 0,
             ctl->per_pid[pid].passages.load(std::memory_order_relaxed),
             /*unsafe=*/true);
    ::kill(cs.os_pid, SIGKILL);
  };

  for (;;) {
    for (;;) {
      int status = 0;
      const pid_t dead = ::waitpid(-1, &status, WNOHANG);
      if (dead <= 0) break;
      int pid = -1;
      for (int j = 0; j < n; ++j) {
        if (children[static_cast<size_t>(j)].os_pid == dead) {
          pid = j;
          break;
        }
      }
      if (pid < 0) continue;
      ChildState& cs = children[static_cast<size_t>(pid)];
      cs.alive = false;

      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        RME_CHECK_MSG(
            ctl->per_pid[pid].finished.load(std::memory_order_acquire) != 0,
            "kv child exited cleanly without finishing its workload");
        cs.finished = true;
        continue;
      }

      if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
        ++result.kills;
        const uint64_t fired =
            ctl->kill_slots[pid].fired.load(std::memory_order_acquire);
        if (fired > cs.self_kills_seen) {
          cs.self_kills_seen = fired;
          if (!cs.parent_kill_pending && !cs.watchdog_kill_pending) {
            KvAppend(ctl, EventKind::kKill, pid, 0,
                     ctl->per_pid[pid].passages.load(std::memory_order_relaxed),
                     /*unsafe=*/true);
          }
        }
        cs.parent_kill_pending = false;
        if (!shutting_down) {
          if (cs.watchdog_kill_pending) {
            cs.watchdog_kill_pending = false;
            if (cs.hang_respawns >= cfg.max_hang_respawns) {
              ++result.hung_abandoned;
              cs.finished = true;
              std::fprintf(stderr,
                           "KV-HANG: pid %d abandoned after %d hang "
                           "respawns\n",
                           pid, cs.hang_respawns);
            } else {
              const double backoff = std::min(
                  1.0,
                  0.05 * static_cast<double>(
                             uint64_t{1} << std::min(cs.hang_respawns, 20)));
              ++cs.hang_respawns;
              cs.respawn_scheduled = true;
              cs.respawn_at = NowSeconds() + backoff;
            }
          } else {
            spawn(pid);
          }
        } else {
          cs.watchdog_kill_pending = false;
        }
        continue;
      }

      ++result.child_errors;
      cs.finished = true;
    }

    const bool all_done = std::all_of(
        children.begin(), children.end(),
        [](const ChildState& c) { return c.finished || !c.alive; });
    if (std::all_of(children.begin(), children.end(),
                    [](const ChildState& c) { return c.finished; })) {
      break;
    }
    if (shutting_down && all_done) break;

    const double now = NowSeconds();

    if (!shutting_down) {
      for (int j = 0; j < n; ++j) {
        ChildState& c = children[static_cast<size_t>(j)];
        if (c.respawn_scheduled && now >= c.respawn_at) {
          c.respawn_scheduled = false;
          spawn(j);
        }
      }
    }

    if (!shutting_down && now >= next_kill_at &&
        (independent_left > 0 || batches_left > 0)) {
      next_kill_at = now + cfg.kill_interval_ms / 1000.0;
      std::vector<int> targets;
      for (int j = 0; j < n; ++j) {
        const ChildState& c = children[static_cast<size_t>(j)];
        if (c.alive && !c.finished && !c.parent_kill_pending) {
          targets.push_back(j);
        }
      }
      if (!targets.empty()) {
        const bool do_batch =
            batches_left > 0 &&
            (independent_left == 0 ||
             kill_rng.NextBounded(independent_left + batches_left) <
                 batches_left);
        if (do_batch) {
          --batches_left;
          size_t want =
              cfg.batch_size <= 0
                  ? targets.size()
                  : std::min<size_t>(targets.size(),
                                     static_cast<size_t>(cfg.batch_size));
          for (size_t i = 0; i < want; ++i) {
            const size_t j = i + kill_rng.NextBounded(targets.size() - i);
            std::swap(targets[i], targets[j]);
            kill_victim(targets[i]);
          }
        } else if (independent_left > 0) {
          --independent_left;
          kill_victim(targets[kill_rng.NextBounded(targets.size())]);
        }
      }
    }

    if (!shutting_down && cfg.hang_seconds > 0) {
      for (int j = 0; j < n; ++j) {
        ChildState& c = children[static_cast<size_t>(j)];
        if (!c.alive || c.finished || c.parent_kill_pending ||
            c.watchdog_kill_pending) {
          continue;
        }
        const uint64_t p = child_progress(j);
        if (p != c.last_progress) {
          c.last_progress = p;
          c.last_progress_at = now;
          continue;
        }
        if (now - c.last_progress_at <= cfg.hang_seconds) continue;
        ++result.hangs;
        const KvPidControl& pc = ctl->per_pid[j];
        const char* site = pc.last_probe_site.load(std::memory_order_relaxed);
        std::fprintf(
            stderr,
            "KV-HANG: pid %d of '%s' flat for %.2fs: phase=%s ops=%llu "
            "attempts=%llu last_probe=%s\n",
            j, cfg.lock_name.c_str(), now - c.last_progress_at,
            shm::PidPhaseName(pc.phase.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                pc.ops_done.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                pc.attempts.load(std::memory_order_relaxed)),
            site != nullptr ? site : "(none)");
        c.watchdog_kill_pending = true;
        KvAppend(ctl, EventKind::kKill, j, 0,
                 pc.passages.load(std::memory_order_relaxed),
                 /*unsafe=*/true);
        ::kill(c.os_pid, SIGKILL);
      }
    }

    const uint64_t progress = progress_now();
    if (progress != last_progress) {
      last_progress = progress;
      last_progress_at = now;
    } else if (!shutting_down &&
               now - last_progress_at > cfg.watchdog_seconds) {
      std::fprintf(stderr,
                   "KV-WATCHDOG: no progress for %.1fs running '%s'; "
                   "killing the run\n",
                   cfg.watchdog_seconds, cfg.lock_name.c_str());
      result.watchdog_fired = true;
      shutting_down = true;
      for (int j = 0; j < n; ++j) {
        ChildState& c = children[static_cast<size_t>(j)];
        if (c.alive && !c.finished) ::kill(c.os_pid, SIGKILL);
      }
    }

    SleepBriefly();
  }

  result.wall_seconds = NowSeconds() - t0;

  for (int pid = 0; pid < n; ++pid) {
    const KvPidControl& pc = ctl->per_pid[pid];
    result.ops_done += pc.ops_done.load(std::memory_order_relaxed);
    result.reads += pc.reads.load(std::memory_order_relaxed);
    result.puts += pc.puts.load(std::memory_order_relaxed);
    result.txns += pc.txns.load(std::memory_order_relaxed);
    result.passages += pc.passages.load(std::memory_order_relaxed);
    result.batched_passages +=
        pc.batched_passages.load(std::memory_order_relaxed);
    result.max_incarnations =
        std::max(result.max_incarnations,
                 pc.incarnation.load(std::memory_order_relaxed));
    if (pc.finished.load(std::memory_order_relaxed) == 0) {
      ++result.starved_pids;
    }
  }
  result.starved_pids -=
      std::min<uint64_t>(result.starved_pids, result.hung_abandoned);
  result.ops_per_second =
      result.wall_seconds > 0 ? result.ops_done / result.wall_seconds : 0.0;
  result.cs_overlap_events =
      ctl->cs_overlap_events.load(std::memory_order_relaxed);
  if (storm != nullptr) {
    for (int pid = 0; pid < n; ++pid) {
      result.storm_kills += storm->storm_kills(pid);
    }
  }

  // Latency: fold the per-pid segment reservoirs into one Percentiles.
  Percentiles merged(/*capacity=*/cfg.reservoir_capacity * n,
                     /*seed=*/cfg.seed ^ 0x70637469ull);
  for (int pid = 0; pid < n; ++pid) {
    const KvReservoir& r = ctl->reservoirs[pid];
    const uint64_t seen = r.seen.load(std::memory_order_relaxed);
    merged.MergeRaw(r.samples,
                    static_cast<size_t>(std::min<uint64_t>(seen, r.capacity)),
                    seen);
  }
  merged.Finalize();
  result.p50_us = merged.Quantile(0.50);
  result.p99_us = merged.Quantile(0.99);
  result.p999_us = merged.Quantile(0.999);
  result.max_us = merged.Quantile(1.0);
  result.latency_observed = merged.observed();
  result.latency_samples = merged.size();

  if (cfg.log_events) {
    result.log_events = std::min<uint64_t>(
        ctl->log_next.load(std::memory_order_relaxed), ctl->log_cap);
    result.log_overflow =
        ctl->log_overflow.load(std::memory_order_relaxed) != 0;
    const KvVerdicts v = KvScanLog(ctl, cfg.stripes, strong);
    result.me_violations = v.me_violations;
    result.bcsr_violations = v.bcsr_violations;
    result.admissible_overlaps = v.admissible_overlaps;
    result.crash_notes = v.crash_notes;
    result.phantom_crash_notes = v.phantom_crash_notes;
    result.max_attempts_per_passage = v.max_attempts_per_passage;
  }

  // Audits over the quiescent table.
  uint64_t total_balance = 0;
  for (uint64_t k = 0; k < cfg.keys; ++k) {
    total_balance += cells[k].balance.load(std::memory_order_relaxed);
    const uint64_t ver = cells[k].version.load(std::memory_order_relaxed);
    if (ver != 0 &&
        cells[k].value.load(std::memory_order_relaxed) != KvValueForTag(ver)) {
      ++result.put_integrity_mismatches;
    }
  }
  const uint64_t expected = kInitialBalance * cfg.keys;
  result.conservation_delta = total_balance > expected
                                  ? total_balance - expected
                                  : expected - total_balance;
  // The audits bind when every in-flight write was eventually completed
  // by its owner (nobody abandoned or cut off mid-redo) and, for weak
  // families, no admissible overlap could have interleaved two CSes.
  result.audits_binding = result.hung_abandoned == 0 &&
                          !result.watchdog_fired && result.starved_pids == 0 &&
                          (strong || result.admissible_overlaps == 0);

  result.segment_bytes_used = seg.bytes_used();
  spin_config() = saved_spin;
  cohort_lock_defaults() = saved_cohort_defaults;
  InstallParkLot(prev_lot);
  return result;
}

}  // namespace rme
