// Shm-resident stripe -> lock directory: the sharding layer of the KV
// service (runtime/kv_service.hpp). A power-of-two number of stripes,
// each owning one registry lock (any family pluggable per run) plus the
// per-stripe crash-forensics surface (live owner tripwire, acquisition
// counters). Keys hash onto stripes; a passage serializes one stripe,
// multi-key transactions acquire their stripes in ascending order.
//
// Entry lifecycle reuses the rme-lockd directory discipline (PR 8,
// runtime/lockd.hpp): a packed [epoch | os_pid | state] word moves each
// entry Empty -> Inserting -> Ready, and the lock pointer is published
// *last* (release) so no reader can ever dereference a half-built lock —
// here insertion happens pre-fork in the parent, but the same discipline
// keeps the table reattach-safe and lets the kv harness's verdict scan
// trust any Ready entry unconditionally.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "rmr/memory_model.hpp"
#include "runtime/lockd.hpp"

namespace rme {

class RecoverableLock;
namespace shm {
class Segment;
}

/// One stripe: its lock plus the per-stripe online tripwire and
/// accounting words. Cache-line aligned so contended stripes never steal
/// each other's directory lines.
struct alignas(kCacheLineBytes) StripeEntry {
  /// lockd-style packed word: [epoch | builder os_pid | EntryState].
  std::atomic<uint64_t> word{0};
  /// Published last with release once the lock is fully built; readers
  /// acquire-load it and may then use the lock without rechecking word.
  std::atomic<RecoverableLock*> lock{nullptr};
  /// Live CS-ownership tripwire, 0 free / pid+1 held: the cheap online
  /// cross-check of the per-stripe event-log verdicts (shm_layout.hpp
  /// keeps the single-lock version of this in ShmControl::owner).
  std::atomic<uint32_t> owner{0};
  std::atomic<uint32_t> pad{0};
  std::atomic<uint64_t> cs_overlaps{0};
  std::atomic<uint64_t> acquisitions{0};
  /// Passages that entered through EnterMany (the batched path).
  std::atomic<uint64_t> batched_passages{0};
};

/// The stripe directory header. POD-ish and segment-resident: every
/// pointer inside points back into the same segment, so the table is
/// valid at the same address in every process of the fork tree.
class StripedTable {
 public:
  /// Builds the directory and all `stripes` locks (family `lock_name`,
  /// sized for num_procs) inside `seg` under a PlacementScope, and
  /// returns the segment-resident table. stripes must be a power of two.
  /// Aborts (RME_CHECK) on registry misuse or a family that cannot run
  /// under shared placement.
  static StripedTable* Create(shm::Segment& seg, const std::string& lock_name,
                              uint32_t stripes, int num_procs);

  uint32_t stripe_count() const { return stripes_; }

  /// The raw stripe hash (SplitMix64 finalizer), maskable by any
  /// power-of-two stripe count. Static so workload generators and tests
  /// can pre-compute stripe-distinct key sets without a table instance.
  static uint32_t StripeHash(uint64_t key) {
    uint64_t x = key + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<uint32_t>(x);
  }

  /// StripeHash masked onto this table's stripe space: adjacent (and
  /// Zipf-popular low-rank) keys scatter uniformly.
  uint32_t StripeOf(uint64_t key) const { return StripeHash(key) & mask_; }

  StripeEntry& EntryAt(uint32_t stripe) const { return entries_[stripe]; }

  /// The stripe's lock; acquire-load of the publish-last pointer.
  RecoverableLock* LockAt(uint32_t stripe) const {
    return entries_[stripe].lock.load(std::memory_order_acquire);
  }

  /// Ready-entry count (lockd word discipline) — sanity surface for
  /// tests and the service's startup check.
  uint32_t ReadyEntries() const;

 private:
  uint32_t stripes_ = 0;
  uint32_t mask_ = 0;
  StripeEntry* entries_ = nullptr;
};

}  // namespace rme
