#include "runtime/checkers.hpp"

#include <bit>

#include "util/assert.hpp"

namespace rme {

void MeChecker::EnterCS(int pid) {
  const uint64_t bit = 1ULL << pid;

  if (strong_) {
    // BCSR/CSR: nobody may enter while another process that crashed in
    // its CS has not re-entered.
    const uint64_t pending = reentry_pending_mask_.load(std::memory_order_acquire);
    if ((pending & ~bit) != 0) {
      bcsr_violations_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  reentry_pending_mask_.fetch_and(~bit, std::memory_order_acq_rel);

  const uint64_t mask = in_cs_mask_.fetch_or(bit, std::memory_order_acq_rel) | bit;
  const int k = std::popcount(mask);

  uint64_t prev_max = max_concurrent_.load(std::memory_order_relaxed);
  while (static_cast<uint64_t>(k) > prev_max &&
         !max_concurrent_.compare_exchange_weak(prev_max, static_cast<uint64_t>(k),
                                                std::memory_order_relaxed)) {
  }

  if (k > 1) {
    if (strong_) {
      me_violations_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Weak recoverability admits the overlap only inside some failure's
      // consequence interval (Def 3.2)...
      if (log_ == nullptr || log_->ActiveFailures() == 0) {
        me_violations_.fetch_add(1, std::memory_order_relaxed);
      } else if (log_->ActiveFailures(/*unsafe_only=*/true) <
                 static_cast<uint64_t>(k - 1)) {
        // ...and responsiveness (Thm 4.2) wants k-1 of them unsafe. The
        // interval scan races with interval expiry, so this is reported
        // as a statistic, not a hard violation.
        responsiveness_deficits_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void MeChecker::ExitCS(int pid) {
  in_cs_mask_.fetch_and(~(1ULL << pid), std::memory_order_acq_rel);
}

void MeChecker::OnCrashInCS(int pid) {
  const uint64_t bit = 1ULL << pid;
  in_cs_mask_.fetch_and(~bit, std::memory_order_acq_rel);
  reentry_pending_mask_.fetch_or(bit, std::memory_order_acq_rel);
}

}  // namespace rme
