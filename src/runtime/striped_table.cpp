#include "runtime/striped_table.hpp"

#include <unistd.h>

#include <bit>
#include <memory>

#include "core/lock_registry.hpp"
#include "locks/lock.hpp"
#include "shm/shm_segment.hpp"
#include "util/assert.hpp"

namespace rme {

StripedTable* StripedTable::Create(shm::Segment& seg,
                                   const std::string& lock_name,
                                   uint32_t stripes, int num_procs) {
  RME_CHECK_MSG(stripes > 0 && std::has_single_bit(stripes),
                "stripe count must be a power of two");
  StripedTable* table = seg.New<StripedTable>();
  table->stripes_ = stripes;
  table->mask_ = stripes - 1;
  table->entries_ = seg.NewArray<StripeEntry>(stripes);

  const auto builder = static_cast<uint32_t>(::getpid());
  for (uint32_t s = 0; s < stripes; ++s) {
    StripeEntry& e = table->entries_[s];
    // lockd insert discipline: claim the entry, build the lock with the
    // whole allocation tree diverted into the segment, publish the
    // pointer last (release), then flip the word to Ready.
    e.word.store(lockd::NextWord(e.word.load(std::memory_order_relaxed),
                                 builder, lockd::kEntryInserting),
                 std::memory_order_release);
    std::unique_ptr<RecoverableLock> lock;
    {
      shm::PlacementScope scope(&seg);
      lock = MakeLock(lock_name, num_procs);
    }
    RME_CHECK_MSG(lock->SupportsSharedPlacement(),
                  "lock family cannot run under real-process crashes");
    RME_CHECK_MSG(seg.Contains(lock.get()),
                  "stripe lock escaped the shared segment");
    e.lock.store(lock.release(), std::memory_order_release);
    e.word.store(lockd::NextWord(e.word.load(std::memory_order_relaxed),
                                 builder, lockd::kEntryReady),
                 std::memory_order_release);
  }
  return table;
  // Stripe locks are intentionally released into the segment: like the
  // fork harness's single lock, they live until the Segment unmaps, and
  // their memory is reclaimed wholesale with it.
}

uint32_t StripedTable::ReadyEntries() const {
  uint32_t ready = 0;
  for (uint32_t s = 0; s < stripes_; ++s) {
    const uint64_t w = entries_[s].word.load(std::memory_order_acquire);
    if (lockd::WordState(w) == lockd::kEntryReady &&
        entries_[s].lock.load(std::memory_order_acquire) != nullptr) {
      ++ready;
    }
  }
  return ready;
}

}  // namespace rme
