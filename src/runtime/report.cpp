#include "runtime/report.hpp"

#include <iomanip>
#include <sstream>

namespace rme {

std::string SummaryLine(const std::string& label, const RunResult& r) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << label << ": passages=" << r.completed_passages
     << " cc=" << r.passage.cc.mean() << "/" << r.passage.cc.max()
     << " dsm=" << r.passage.dsm.mean() << "/" << r.passage.dsm.max()
     << " failures=" << r.failures << " (unsafe " << r.unsafe_failures << ")"
     << " me=" << r.me_violations << " bcsr=" << r.bcsr_violations;
  if (r.level_reached.count() > 0) {
    os << " maxlvl=" << static_cast<int>(r.level_reached.max());
  }
  if (r.aborted) os << " ABORTED";
  return os.str();
}

std::string CsvHeader() {
  return "label,passages,attempts,failures,unsafe_failures,"
         "cc_mean,cc_max,dsm_mean,dsm_max,"
         "recover_cc_mean,enter_cc_mean,exit_cc_mean,"
         "victim_cc_mean,me_violations,bcsr_violations,"
         "max_concurrent_cs,max_level,wall_seconds,passages_per_second,"
         "aborted";
}

std::string CsvRow(const std::string& label, const RunResult& r) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << label << ',' << r.completed_passages << ',' << r.total_attempts << ','
     << r.failures << ',' << r.unsafe_failures << ',' << r.passage.cc.mean()
     << ',' << r.passage.cc.max() << ',' << r.passage.dsm.mean() << ','
     << r.passage.dsm.max() << ',' << r.recover.cc.mean() << ','
     << r.enter.cc.mean() << ',' << r.exit_seg.cc.mean() << ','
     << r.victim_passage.cc.mean() << ',' << r.me_violations << ','
     << r.bcsr_violations << ',' << r.max_concurrent_cs << ','
     << r.level_reached.max() << ',' << r.wall_seconds << ','
     << r.passages_per_second << ',' << (r.aborted ? 1 : 0);
  return os.str();
}

std::string BlockReport(const std::string& label, const RunResult& r) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "== " << label << " ==\n";
  os << "passages " << r.completed_passages << " (attempts "
     << r.total_attempts << "), failures " << r.failures << " (unsafe "
     << r.unsafe_failures << ")\n";
  os << "rmr/passage  cc mean " << r.passage.cc.mean() << " max "
     << r.passage.cc.max() << " | dsm mean " << r.passage.dsm.mean()
     << " max " << r.passage.dsm.max() << "\n";
  os << "segments cc  recover " << r.recover.cc.mean() << " enter "
     << r.enter.cc.mean() << " exit " << r.exit_seg.cc.mean() << "\n";
  if (r.victim_passage.cc.count() > 0) {
    os << "victims      " << r.victim_passage.cc.count() << " passages, cc mean "
       << r.victim_passage.cc.mean() << "\n";
  }
  if (!r.by_overlap.empty() &&
      (r.by_overlap.size() > 1 || r.by_overlap.begin()->first != 0)) {
    os << "by overlap F:";
    for (const auto& [bucket, seg] : r.by_overlap) {
      os << "  [" << bucket << "]=" << seg.cc.mean() << " (x"
         << seg.cc.count() << ")";
    }
    os << "\n";
  }
  os << "checks       me=" << r.me_violations << " bcsr=" << r.bcsr_violations
     << " max-concurrent=" << r.max_concurrent_cs
     << (r.aborted ? "  **ABORTED**" : "") << "\n";
  if (!r.lock_stats.empty()) os << r.lock_stats << "\n";
  return os.str();
}

}  // namespace rme
