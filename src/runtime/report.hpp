// Turning RunResult into shareable artifacts: one-line summaries,
// CSV rows (for plotting sweeps), and a human-readable block report.
#pragma once

#include <string>

#include "runtime/harness.hpp"

namespace rme {

/// "lock=<n> cc=12.3/45 dsm=... failures=..": one line, log-friendly.
std::string SummaryLine(const std::string& label, const RunResult& r);

/// CSV header matching CsvRow's columns.
std::string CsvHeader();

/// One CSV data row for a run (label is the first column).
std::string CsvRow(const std::string& label, const RunResult& r);

/// Multi-line human-readable report (segments, buckets, checkers).
std::string BlockReport(const std::string& label, const RunResult& r);

}  // namespace rme
