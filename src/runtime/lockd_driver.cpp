#include "runtime/lockd_driver.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "runtime/lockd.hpp"
#include "util/assert.hpp"
#include "util/prng.hpp"

namespace rme::lockd {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepBriefly() {
  struct timespec ts{0, 200'000};  // 200us
  ::nanosleep(&ts, nullptr);
}

/// The whole life of client index `d`, in a forked child. Never returns.
/// Unlike the fork harness's ChildMain, lock-level identity is not fixed:
/// each lap of the outer loop acts as whatever ClientSlot lease it wins,
/// so a SIGKILL here leaves a *slot* husk for the daemon (or another
/// client's assist) to fence and recover, and the respawn may come back
/// as a different slot entirely. Progress lives in the segment keyed by
/// client index and survives both the kill and the slot change.
[[noreturn]] void ClientMain(Service& svc, const LockdDriverConfig& cfg,
                             int d, uint64_t incarnation) {
  ServiceControl* ctl = svc.ctl();
  if (ctl->client_incarnation[d].load(std::memory_order_acquire) !=
      incarnation) {
    std::_Exit(0);  // stale: the parent respawned past us
  }
  // Inherited context image from the parent thread: start clean before
  // any instrumented op, then wake everyone our corpse may have parked.
  CurrentProcess() = ProcessContext{};
  WakeAllParked();
  CrashController* crash = ctl->crash.load(std::memory_order_acquire);
  // Stream from (client, incarnation): a respawn must not replay its
  // corpse's name schedule.
  Prng rng(cfg.seed, (incarnation << 16) + static_cast<uint64_t>(d) + 4242);

  int slot = -1;
  std::optional<ProcessBinding> binding;  // bound iff slot >= 0
  uint64_t lease_wait = 0;
  char name[kMaxLockName + 1];

  try {
    uint64_t done = ctl->client_done[d].load(std::memory_order_acquire);
    while (done < cfg.acquires_per_client) {
      if (slot < 0) {
        slot = AcquireLease(ctl);
        if (slot < 0) {
          // Slot table exhausted: either oversubscribed (someone else's
          // lease will end) or every slot is a corpse (then *we* are the
          // recovery path — "the next waiter runs Recover()").
          if (cfg.assist_recovery) (void)AssistRecoverOne(ctl);
          // Counts as liveness for the parent's per-client watchdog: a
          // client starved of slots is waiting, not wedged.
          ctl->client_attempts[d].fetch_add(1, std::memory_order_relaxed);
          SpinPause(lease_wait++);
          continue;
        }
        lease_wait = 0;
        // Bind only while leased: instrumented ops attribute to the slot
        // and the crash chain draws from the slot's streams.
        binding.emplace(slot, crash);
      }

      ctl->client_attempts[d].fetch_add(1, std::memory_order_relaxed);
      std::snprintf(name, sizeof name, "lock-%llu",
                    static_cast<unsigned long long>(
                        rng.NextBounded(static_cast<uint64_t>(cfg.num_names))));
      const int entry = GetOrInsertEntry(ctl, &svc.segment(), name, slot);
      RunPassage(ctl, slot, entry, cfg.cs_shared_ops);
      done = ctl->client_done[d].fetch_add(1, std::memory_order_acq_rel) + 1;

      for (int j = 0; j < cfg.ncs_local_work; ++j) (void)rng.Next();
      if (cfg.assist_recovery && (done & 7) == 0) (void)AssistRecoverOne(ctl);

      if (cfg.lease_passages != 0 && done % cfg.lease_passages == 0) {
        binding.reset();
        ReleaseLease(ctl, slot);
        slot = -1;
      }
    }
  } catch (const RunAborted&) {
    std::_Exit(ctl->stop.load(std::memory_order_acquire) != 0 ? 0 : 4);
  }

  // Graceful shutdown: no injection while handing the slot back.
  CurrentProcess().SetCrashController(nullptr);
  if (slot >= 0) {
    binding.reset();
    ReleaseLease(ctl, slot);
  }
  ctl->client_finished[d].store(1, std::memory_order_release);
  std::_Exit(0);
}

[[noreturn]] void DaemonMain(Service& svc, uint32_t sweep_us) {
  CurrentProcess() = ProcessContext{};
  WakeAllParked();
  DaemonConfig dc;
  dc.sweep_interval_us = sweep_us;
  const int rc = RunDaemon(svc, dc);
  std::_Exit(rc == 0 ? 0 : 5);
}

/// A slot stuck mid-handshake: claimed by a client that died inside the
/// "ld.lease.brk" window. Only a daemon sweep clears it (AcquireLease
/// skips non-Free slots), which is exactly why the driver kills the
/// daemon the moment it sees one — the *next* daemon must absorb it.
bool AnyHandshakeHusk(const ServiceControl* ctl) {
  const ClientSlot* slots = Slots(ctl);
  for (uint32_t s = 0; s < ctl->num_slots; ++s) {
    const uint64_t w = slots[s].word.load(std::memory_order_acquire);
    if (WordState(w) == kSlotHandshaking && !ProcessAlive(WordPid(w))) {
      return true;
    }
  }
  return false;
}

/// A directory entry stuck mid-insert ("ld.insert.brk"/"ld.publish.brk"
/// corpse). Clients that look the same name up resolve it themselves, so
/// unlike the handshake husk this one races the finder — the targeted
/// kill counts the daemon death *while the husk existed*, which is the
/// contract under test.
bool AnyInsertHusk(const ServiceControl* ctl) {
  const DirEntry* dir = Dir(ctl);
  for (uint32_t i = 0; i < ctl->dir_capacity; ++i) {
    const uint64_t w = dir[i].word.load(std::memory_order_acquire);
    if (WordState(w) == kEntryInserting && !ProcessAlive(WordPid(w))) {
      return true;
    }
  }
  return false;
}

/// Hang diagnostic, printed before the watchdog SIGKILL.
void DumpHungClient(const ServiceControl* ctl, int d, pid_t os_pid,
                    double flat_seconds) {
  std::fprintf(stderr,
               "LOCKD-HANG: client %d (os pid %d) flat for %.2fs: "
               "done=%llu attempts=%llu inc=%llu\n",
               d, static_cast<int>(os_pid), flat_seconds,
               static_cast<unsigned long long>(
                   ctl->client_done[d].load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   ctl->client_attempts[d].load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   ctl->client_incarnation[d].load(std::memory_order_relaxed)));
  const ClientSlot* slots = Slots(ctl);
  for (uint32_t s = 0; s < ctl->num_slots; ++s) {
    const uint64_t w = slots[s].word.load(std::memory_order_relaxed);
    if (WordState(w) == kSlotFree) continue;
    const char* site = slots[s].last_probe_site.load(std::memory_order_relaxed);
    std::fprintf(
        stderr,
        "  slot %u: %s pid=%u epoch=%llu phase=%s active_entry=%u "
        "last_probe=%s\n",
        s, SlotStateName(WordState(w)), WordPid(w),
        static_cast<unsigned long long>(WordEpoch(w)),
        shm::PidPhaseName(slots[s].phase.load(std::memory_order_relaxed)),
        slots[s].active_entry.load(std::memory_order_relaxed),
        site != nullptr ? site : "(none)");
  }
  const uint64_t dw = ctl->daemon_word.load(std::memory_order_relaxed);
  std::fprintf(stderr, "  daemon: state=%u pid=%u heartbeat=%llu probe=%s\n",
               WordState(dw), WordPid(dw),
               static_cast<unsigned long long>(
                   ctl->daemon_heartbeat.load(std::memory_order_relaxed)),
               ctl->daemon_probe_site.load(std::memory_order_relaxed));
}

/// Post-hoc ME/BCSR verdicts from the lockd event log, per directory
/// entry — the same reconstruction ScanLog does for the fork harness,
/// with (slot, entry) in place of (pid). Runs in the parent once every
/// child is dead or finished, so the log is quiescent.
void ScanLdLog(const ServiceControl* ctl, LockdDriverResult* r) {
  const uint64_t count = std::min<uint64_t>(
      ctl->log_next.load(std::memory_order_acquire), ctl->log_cap);
  // holder[e]: slot + 1 currently inside e's logged CS; obliged[e]: slots
  // that crashed inside it and are owed the reentry (strong locks only
  // are admitted by Service::Create, so BCSR is unconditional here).
  std::vector<uint32_t> holder(ctl->dir_capacity, 0);
  std::vector<uint64_t> obliged(ctl->dir_capacity, 0);
  for (uint64_t i = 0; i < count; ++i) {
    const LockdEvent& e = Log(ctl)[i];
    const auto kind = static_cast<shm::EventKind>(
        e.kind.load(std::memory_order_acquire));
    if (kind == shm::EventKind::kInvalid) continue;  // killed mid-append
    if (e.entry >= ctl->dir_capacity) continue;      // daemon kDone marker
    const uint64_t bit = uint64_t{1} << (e.slot & 63);
    switch (kind) {
      case shm::EventKind::kEnter:
        if (obliged[e.entry] != 0 && (obliged[e.entry] & bit) == 0) {
          ++r->bcsr_violations;
        }
        obliged[e.entry] &= ~bit;
        if (holder[e.entry] != 0 && holder[e.entry] != e.slot + 1) {
          ++r->me_violations;
        }
        holder[e.entry] = e.slot + 1;
        break;
      case shm::EventKind::kExit:
        holder[e.entry] = 0;
        break;
      case shm::EventKind::kCrashNoted:
        // Emitted by a recoverer iff the log holds the corpse's
        // unmatched kEnter; anything else is forensic over-reporting.
        if (holder[e.entry] == e.slot + 1) {
          holder[e.entry] = 0;
          obliged[e.entry] |= bit;
        } else {
          ++r->phantom_crash_notes;
        }
        break;
      default:
        break;
    }
  }
  r->log_events = count;
}

}  // namespace

LockdDriverResult RunLockdWorkload(const LockdDriverConfig& cfg) {
  RME_CHECK(cfg.num_clients > 0 && cfg.num_clients <= kMaxProcs);
  RME_CHECK(cfg.num_slots > 0 && cfg.num_slots < kMaxProcs);
  RME_CHECK(cfg.acquires_per_client > 0 && cfg.num_names > 0);
  RME_CHECK_MSG(cfg.num_clients <= cfg.num_slots || cfg.lease_passages > 0,
                "oversubscribed clients need lease cycling "
                "(lease_passages > 0) or the surplus starves");

  ServiceConfig scfg;
  scfg.shm_name = cfg.shm_name;
  scfg.lock_kind = cfg.lock_kind;
  scfg.num_slots = cfg.num_slots;
  scfg.segment_bytes = cfg.segment_bytes;
  scfg.dir_capacity = cfg.dir_capacity != 0
                          ? cfg.dir_capacity
                          : static_cast<uint32_t>(cfg.num_names) * 2 + 16;
  // Every passage logs 2 events; every kill at most 1 kCrashNoted plus a
  // 2-event recovery passage; generous headroom for retries after kills.
  const uint64_t kill_budget =
      cfg.client_kills + cfg.daemon_kills + cfg.daemon_kills_in_handshake +
      cfg.daemon_kills_in_insert +
      static_cast<uint64_t>(std::max<int64_t>(cfg.self_kill_budget, 0)) +
      (cfg.site_kill_site.empty() ? 0 : cfg.site_kill_count);
  scfg.log_cap =
      cfg.log_cap != 0
          ? cfg.log_cap
          : 4 * static_cast<uint64_t>(cfg.num_clients) *
                    cfg.acquires_per_client +
                16 * kill_budget + 4096;

  std::unique_ptr<Service> svc = cfg.attach_existing
                                     ? Service::AttachOrCreate(scfg)
                                     : Service::Create(scfg);
  svc->set_persist(cfg.persist_segment);
  ServiceControl* ctl = svc->ctl();

  LockdDriverResult result;
  const bool reattached = svc->attached();

  // Per-run driver bookkeeping. On a reattach the directory, slots, log
  // and cumulative service counters all carry over (that continuity is
  // the point); only the quota/stop words belong to a single run.
  ctl->stop.store(0, std::memory_order_relaxed);
  for (int d = 0; d < cfg.num_clients; ++d) {
    ctl->client_done[d].store(0, std::memory_order_relaxed);
    ctl->client_attempts[d].store(0, std::memory_order_relaxed);
    ctl->client_finished[d].store(0, std::memory_order_relaxed);
  }
  const uint64_t lease_grants0 =
      ctl->lease_grants.load(std::memory_order_relaxed);
  const uint64_t recovered0 =
      ctl->recovered_slots.load(std::memory_order_relaxed);
  const uint64_t takeovers0 =
      ctl->daemon_takeovers.load(std::memory_order_relaxed);
  const uint64_t rolled_back0 =
      ctl->rolled_back_inserts.load(std::memory_order_relaxed);
  const uint64_t assisted0 =
      ctl->assisted_inserts.load(std::memory_order_relaxed);

  // Fresh crash chain in the segment every run (a reattached chain would
  // carry spent budgets and the previous process's heap site strings).
  CrashController* crash = nullptr;
  {
    shm::Segment& seg = svc->segment();
    std::vector<CrashController*> parts;
    if (cfg.self_kill_budget > 0 && cfg.self_kill_per_op > 0) {
      parts.push_back(seg.New<RandomCrash>(cfg.seed ^ 0x10c4dull,
                                           cfg.self_kill_per_op,
                                           cfg.self_kill_budget));
    }
    if (!cfg.site_kill_site.empty()) {
      // Slot-level pid: num_slots targets the daemon's probe identity.
      RME_CHECK(cfg.site_kill_slot >= 0 && cfg.site_kill_slot <= cfg.num_slots);
      parts.push_back(seg.New<SiteCrash>(cfg.site_kill_slot,
                                         cfg.site_kill_site,
                                         /*after_op=*/true, cfg.site_kill_nth,
                                         cfg.site_kill_count));
    }
    if (parts.size() == 1) {
      crash = seg.New<SigkillCrash>(parts[0], ctl->kill_slots);
    } else if (!parts.empty()) {
      crash = seg.New<SigkillCrash>(seg.New<CompositeCrash>(parts),
                                    ctl->kill_slots);
    }
  }
  ctl->crash.store(crash, std::memory_order_release);

  // Cross-process parking + spin override, installed before the first
  // fork so every child inherits both (see fork_harness for the why).
  rmr_detail::ParkLot* prev_lot = InstallParkLot(&ctl->park_lot);
  const SpinConfig saved_spin = spin_config();
  if (cfg.spin_budget_us >= 0) {
    spin_config().spin_budget_us = static_cast<uint32_t>(cfg.spin_budget_us);
  }
  ResetGlobalAbort();

  struct ClientState {
    pid_t os_pid = -1;
    bool alive = false;
    bool finished = false;
    bool parent_kill_pending = false;
    bool watchdog_kill_pending = false;
    uint64_t last_progress = 0;
    double last_progress_at = 0.0;
    int hang_respawns = 0;
    bool respawn_scheduled = false;
    double respawn_at = 0.0;
  };
  std::vector<ClientState> clients(static_cast<size_t>(cfg.num_clients));

  auto client_progress = [&](int d) {
    return ctl->client_done[d].load(std::memory_order_relaxed) +
           ctl->client_attempts[d].load(std::memory_order_relaxed);
  };

  auto spawn_client = [&](int d) {
    const uint64_t inc =
        ctl->client_incarnation[d].fetch_add(1, std::memory_order_acq_rel) + 1;
    const pid_t c = ::fork();
    RME_CHECK_MSG(c >= 0, "fork failed");
    if (c == 0) ClientMain(*svc, cfg, d, inc);
    ClientState& cs = clients[static_cast<size_t>(d)];
    cs.os_pid = c;
    cs.alive = true;
    cs.last_progress = client_progress(d);
    cs.last_progress_at = NowSeconds();
  };

  pid_t daemon_pid = -1;
  bool daemon_respawn_scheduled = false;
  double daemon_respawn_at = 0.0;
  auto spawn_daemon = [&] {
    const pid_t c = ::fork();
    RME_CHECK_MSG(c >= 0, "fork failed");
    if (c == 0) DaemonMain(*svc, cfg.daemon_sweep_us);
    daemon_pid = c;
    daemon_respawn_scheduled = false;
  };

  const double t0 = NowSeconds();
  spawn_daemon();
  // Hold the clients until the daemon's first takeover is recorded: the
  // targeted-kill gate refuses to spend budget against a daemon that
  // never took over, and a fast client storm can otherwise burn every
  // site-kill window (the husk windows open at the *first* claims of a
  // slot) during daemon startup. Bounded: a daemon that cannot take
  // over within 2 s is a bug the workload will surface anyway.
  {
    const double takeover_deadline = NowSeconds() + 2.0;
    while (ctl->daemon_takeovers.load(std::memory_order_acquire) <=
               takeovers0 &&
           NowSeconds() < takeover_deadline) {
      SleepBriefly();
    }
  }
  for (int d = 0; d < cfg.num_clients; ++d) spawn_client(d);

  Prng kill_rng(cfg.seed, 0x6b111ull);
  uint64_t client_kills_left = cfg.client_kills;
  uint64_t daemon_kills_left = cfg.daemon_kills;
  uint64_t hs_kills_left = cfg.daemon_kills_in_handshake;
  uint64_t ins_kills_left = cfg.daemon_kills_in_insert;
  double next_kill_at = t0 + cfg.kill_interval_ms / 1000.0;
  // Targeted-kill gate: require a fresh takeover between firings, or one
  // unswept husk could drain the whole budget against dead daemons.
  uint64_t takeover_gate = 0;

  uint64_t last_progress = 0;
  double last_progress_at = t0;
  bool shutting_down = false;
  bool stop_requested = false;

  auto progress_now = [&] {
    uint64_t p = result.client_kill_deaths + result.daemon_kill_deaths +
                 ctl->daemon_heartbeat.load(std::memory_order_relaxed) +
                 ctl->recovered_slots.load(std::memory_order_relaxed);
    for (int d = 0; d < cfg.num_clients; ++d) p += client_progress(d);
    return p;
  };

  for (;;) {
    // Reap everything that died since the last poll. Prompt reaping is
    // load-bearing: ESRCH liveness (husk detection, dead-slot sweeps)
    // sees zombies as alive.
    for (;;) {
      int status = 0;
      const pid_t dead = ::waitpid(-1, &status, WNOHANG);
      if (dead <= 0) break;

      if (dead == daemon_pid) {
        daemon_pid = -1;
        if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
          ++result.daemon_kill_deaths;
        } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          ++result.child_errors;
        } else if (stop_requested) {
          result.daemon_stopped_cleanly = true;
        }
        if (!shutting_down && !stop_requested) {
          daemon_respawn_scheduled = true;
          daemon_respawn_at = NowSeconds() + 0.001;
        }
        continue;
      }

      int d = -1;
      for (int j = 0; j < cfg.num_clients; ++j) {
        if (clients[static_cast<size_t>(j)].os_pid == dead) {
          d = j;
          break;
        }
      }
      if (d < 0) continue;  // a daemon's orphaned helper, reparented here
      ClientState& cs = clients[static_cast<size_t>(d)];
      cs.alive = false;
      // Targeted daemon kills, reap-time variant: this is the ONLY
      // moment the parent can observe a mid-handshake husk — before the
      // reap the corpse is a zombie (ESRCH-based scans call it alive),
      // and the MarkDeadByOsPid below fences Handshaking -> Dead itself.
      // So match the corpse's pid against the slot/dir words directly,
      // and when a handshake husk is claimed by the kill budget, leave
      // the slot Handshaking: the fresh daemon's ESRCH sweep absorbing
      // it is exactly the contract under test.
      bool leave_handshake_husk = false;
      if (!shutting_down && daemon_pid > 0 &&
          (hs_kills_left > 0 || ins_kills_left > 0) &&
          ctl->daemon_takeovers.load(std::memory_order_acquire) >
              takeover_gate) {
        const uint32_t dp = static_cast<uint32_t>(dead);
        bool hs_husk = false;
        const ClientSlot* slots_arr = Slots(ctl);
        for (uint32_t s = 0; s < ctl->num_slots && !hs_husk; ++s) {
          const uint64_t w = slots_arr[s].word.load(std::memory_order_acquire);
          hs_husk = WordState(w) == kSlotHandshaking && WordPid(w) == dp;
        }
        bool ins_husk = false;
        if (!hs_husk && ins_kills_left > 0) {
          const DirEntry* dir = Dir(ctl);
          for (uint32_t i = 0; i < ctl->dir_capacity && !ins_husk; ++i) {
            const uint64_t w = dir[i].word.load(std::memory_order_acquire);
            ins_husk = WordState(w) == kEntryInserting && WordPid(w) == dp;
          }
        }
        if ((hs_husk && hs_kills_left > 0) || ins_husk) {
          takeover_gate =
              ctl->daemon_takeovers.load(std::memory_order_acquire);
          ::kill(daemon_pid, SIGKILL);
          if (hs_husk) {
            --hs_kills_left;
            ++result.daemon_kills_handshake;
            leave_handshake_husk = true;
          } else {
            --ins_kills_left;
            ++result.daemon_kills_insert;
          }
        }
      }
      // Whatever slot (lease or assist fence) the corpse was acting as
      // is now Dead; the parent marks it immediately rather than waiting
      // for the daemon's ESRCH sweep, mirroring a real lockd where the
      // OS-level death notice beats the poll.
      if (!leave_handshake_husk) {
        (void)MarkDeadByOsPid(ctl, static_cast<uint32_t>(dead));
      }

      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        if (ctl->client_finished[d].load(std::memory_order_acquire) != 0) {
          cs.finished = true;
        } else if (!shutting_down) {
          // Clean exit without the finished flag: only the stale-respawn
          // guard does that, and the parent never double-spawns a slot.
          ++result.child_errors;
          cs.finished = true;
        }
        continue;
      }

      if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
        ++result.client_kill_deaths;
        if (cs.watchdog_kill_pending) {
          cs.watchdog_kill_pending = false;
          if (shutting_down) continue;
          if (cs.hang_respawns >= cfg.max_hang_respawns) {
            ++result.hung_abandoned;
            cs.finished = true;
            std::fprintf(stderr,
                         "LOCKD-HANG: client %d abandoned after %d hang "
                         "respawns\n",
                         d, cs.hang_respawns);
          } else {
            const double backoff = std::min(
                1.0, 0.05 * static_cast<double>(
                                uint64_t{1} << std::min(cs.hang_respawns, 20)));
            ++cs.hang_respawns;
            cs.respawn_scheduled = true;
            cs.respawn_at = NowSeconds() + backoff;
          }
        } else {
          cs.parent_kill_pending = false;
          if (!shutting_down) spawn_client(d);
        }
        continue;
      }

      // Abort in a child RME_CHECK, sanitizer, ...: a bug, not a kill.
      ++result.child_errors;
      cs.finished = true;
    }

    if (std::all_of(clients.begin(), clients.end(),
                    [](const ClientState& c) { return c.finished; })) {
      break;
    }
    if (shutting_down &&
        std::none_of(clients.begin(), clients.end(),
                     [](const ClientState& c) { return c.alive; })) {
      break;
    }

    const double now = NowSeconds();

    if (!shutting_down) {
      if (daemon_respawn_scheduled && now >= daemon_respawn_at) {
        spawn_daemon();
        ++result.daemon_respawns;
      }
      for (int j = 0; j < cfg.num_clients; ++j) {
        ClientState& c = clients[static_cast<size_t>(j)];
        if (c.respawn_scheduled && now >= c.respawn_at) {
          c.respawn_scheduled = false;
          spawn_client(j);
        }
      }
    }

    // Targeted daemon kills: checked every poll (the husks are transient
    // — the daemon's own sweep or a client lookup can clear them), fired
    // only at a live daemon that completed a takeover since the last one.
    if (!shutting_down && daemon_pid > 0 &&
        (hs_kills_left > 0 || ins_kills_left > 0) &&
        ctl->daemon_takeovers.load(std::memory_order_acquire) >
            takeover_gate) {
      const bool hs = hs_kills_left > 0 && AnyHandshakeHusk(ctl);
      const bool ins = !hs && ins_kills_left > 0 && AnyInsertHusk(ctl);
      if (hs || ins) {
        takeover_gate = ctl->daemon_takeovers.load(std::memory_order_acquire);
        ::kill(daemon_pid, SIGKILL);
        if (hs) {
          --hs_kills_left;
          ++result.daemon_kills_handshake;
        } else {
          --ins_kills_left;
          ++result.daemon_kills_insert;
        }
      }
    }

    // Timed kill scheduling: one victim per interval, daemon or client,
    // drawn proportionally to the remaining budgets. The poll loop runs
    // coarser than a small interval, so this catches up on the schedule
    // backlog — per poll it can kill every eligible client once plus the
    // daemon once (the batch regime when the interval is tiny), which
    // keeps fast workloads from outrunning the kill budget.
    if (!shutting_down && now >= next_kill_at &&
        (client_kills_left > 0 || daemon_kills_left > 0)) {
      bool daemon_killed_this_poll = false;
      while (now >= next_kill_at &&
             (client_kills_left > 0 || daemon_kills_left > 0)) {
        const bool hit_daemon =
            daemon_kills_left > 0 && daemon_pid > 0 &&
            !daemon_killed_this_poll &&
            kill_rng.NextBounded(client_kills_left + daemon_kills_left) <
                daemon_kills_left;
        if (hit_daemon) {
          --daemon_kills_left;
          daemon_killed_this_poll = true;
          ::kill(daemon_pid, SIGKILL);
        } else {
          std::vector<int> targets;
          for (int j = 0; j < cfg.num_clients; ++j) {
            const ClientState& c = clients[static_cast<size_t>(j)];
            if (c.alive && !c.finished && !c.parent_kill_pending &&
                !c.watchdog_kill_pending) {
              targets.push_back(j);
            }
          }
          if (client_kills_left == 0 || targets.empty()) break;
          --client_kills_left;
          const int victim = targets[kill_rng.NextBounded(targets.size())];
          ClientState& c = clients[static_cast<size_t>(victim)];
          c.parent_kill_pending = true;
          ::kill(c.os_pid, SIGKILL);
        }
        next_kill_at += cfg.kill_interval_ms / 1000.0;
      }
      // Nobody eligible: let the schedule resume from now rather than
      // accumulating an unbounded backlog against an empty target list.
      if (now >= next_kill_at) {
        next_kill_at = now + cfg.kill_interval_ms / 1000.0;
      }
    }

    // Per-client liveness watchdog (fork_harness policy: dump, SIGKILL,
    // respawn under capped backoff, abandon past the cap).
    if (!shutting_down && cfg.hang_seconds > 0) {
      for (int j = 0; j < cfg.num_clients; ++j) {
        ClientState& c = clients[static_cast<size_t>(j)];
        if (!c.alive || c.finished || c.parent_kill_pending ||
            c.watchdog_kill_pending) {
          continue;
        }
        const uint64_t p = client_progress(j);
        if (p != c.last_progress) {
          c.last_progress = p;
          c.last_progress_at = now;
          continue;
        }
        if (now - c.last_progress_at <= cfg.hang_seconds) continue;
        ++result.hangs;
        DumpHungClient(ctl, j, c.os_pid, now - c.last_progress_at);
        c.watchdog_kill_pending = true;
        ::kill(c.os_pid, SIGKILL);
      }
    }

    // Global watchdog.
    const uint64_t progress = progress_now();
    if (progress != last_progress) {
      last_progress = progress;
      last_progress_at = now;
    } else if (!shutting_down &&
               now - last_progress_at > cfg.watchdog_seconds) {
      std::fprintf(stderr,
                   "LOCKD-WATCHDOG: no progress for %.1fs; killing the run\n",
                   cfg.watchdog_seconds);
      result.watchdog_fired = true;
      shutting_down = true;
      if (daemon_pid > 0) ::kill(daemon_pid, SIGKILL);
      for (ClientState& c : clients) {
        if (c.alive) ::kill(c.os_pid, SIGKILL);
      }
    }

    SleepBriefly();
  }

  // Shutdown. Recover whatever the last kills left behind before asking
  // the daemon to stop: the parent assists directly (it is part of the
  // fork tree, so lock pointers are valid here), covering the case where
  // the daemon happens to be dead at this moment.
  if (!shutting_down) {
    const double drain_deadline = NowSeconds() + 10.0;
    auto any_pending = [&] {
      const ClientSlot* slots = Slots(ctl);
      for (uint32_t s = 0; s < ctl->num_slots; ++s) {
        const uint32_t st =
            WordState(slots[s].word.load(std::memory_order_acquire));
        if (st == kSlotDead || st == kSlotRecovering ||
            st == kSlotHandshaking) {
          return true;
        }
      }
      return false;
    };
    while (any_pending() && NowSeconds() < drain_deadline) {
      (void)MarkDeadByOsPid(ctl, 0);  // no-op scan; daemon sweep does ESRCH
      if (!AssistRecoverOne(ctl)) SleepBriefly();
    }
    if (daemon_pid <= 0) {
      spawn_daemon();  // a final daemon drains handshake husks + stops clean
      ++result.daemon_respawns;
    }
  }
  stop_requested = true;
  ctl->stop.store(1, std::memory_order_release);
  if (daemon_pid > 0) {
    const double stop_deadline = NowSeconds() + 15.0;
    for (;;) {
      int status = 0;
      const pid_t dead = ::waitpid(daemon_pid, &status, WNOHANG);
      if (dead == daemon_pid) {
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          result.daemon_stopped_cleanly = true;
        } else if (!shutting_down) {
          ++result.child_errors;
        }
        break;
      }
      if (dead < 0) break;
      if (NowSeconds() > stop_deadline) {
        std::fprintf(stderr, "LOCKD-DRIVER: daemon ignored stop; killing\n");
        ::kill(daemon_pid, SIGKILL);
        ::waitpid(daemon_pid, &status, 0);
        ++result.child_errors;
        break;
      }
      SleepBriefly();
    }
    daemon_pid = -1;
  }
  // Reap any orphaned recovery helpers reparented to us.
  while (::waitpid(-1, nullptr, WNOHANG) > 0) {
  }

  result.wall_seconds = NowSeconds() - t0;
  (void)reattached;

  for (int d = 0; d < cfg.num_clients; ++d) {
    result.completed += ctl->client_done[d].load(std::memory_order_relaxed);
    result.attempts += ctl->client_attempts[d].load(std::memory_order_relaxed);
  }
  result.all_clients_finished =
      std::all_of(clients.begin(), clients.end(), [&](const ClientState& c) {
        return c.finished;
      }) &&
      result.hung_abandoned == 0 && !result.watchdog_fired;
  result.child_site_kills = crash != nullptr ? crash->crashes() : 0;
  result.daemon_takeovers =
      ctl->daemon_takeovers.load(std::memory_order_relaxed) - takeovers0;
  result.recovered_slots =
      ctl->recovered_slots.load(std::memory_order_relaxed) - recovered0;
  result.rolled_back_inserts =
      ctl->rolled_back_inserts.load(std::memory_order_relaxed) - rolled_back0;
  result.assisted_inserts =
      ctl->assisted_inserts.load(std::memory_order_relaxed) - assisted0;
  result.lease_grants =
      ctl->lease_grants.load(std::memory_order_relaxed) - lease_grants0;
  result.cs_overlap_events =
      ctl->cs_overlap_events.load(std::memory_order_relaxed);
  result.log_overflow =
      ctl->log_overflow.load(std::memory_order_relaxed) != 0;
  result.segment_bytes_used = svc->segment().bytes_used();
  {
    const DirEntry* dir = Dir(ctl);
    for (uint32_t i = 0; i < ctl->dir_capacity; ++i) {
      const uint32_t st = WordState(dir[i].word.load(std::memory_order_relaxed));
      if (st == kEntryReady) ++result.entries_ready;
      if (st == kEntryTombstone) ++result.entries_tombstoned;
    }
  }
  ScanLdLog(ctl, &result);

  spin_config() = saved_spin;
  InstallParkLot(prev_lot);
  ResetGlobalAbort();

  const std::string shm_name = svc->shm_name();
  svc.reset();  // unmaps; unlinks the /dev/shm entry unless persisting
  if (!cfg.persist_segment) {
    result.segment_leaked =
        shm::Segment::ProbeNamed(shm_name) != shm::ProbeResult::kAbsent;
  }
  return result;
}

}  // namespace rme::lockd
