// The process-execution harness: runs n worker threads through the
// paper's Algorithm-1 loop (NCS -> Recover -> Enter -> CS -> Exit),
// injecting crashes, restarting crashed processes, verifying invariants
// and collecting per-passage RMR statistics under both memory models.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crash/crash.hpp"
#include "crash/failure_log.hpp"
#include "locks/lock.hpp"
#include "util/stats.hpp"

namespace rme {

struct WorkloadConfig {
  int num_procs = 4;
  uint64_t passages_per_proc = 200;  ///< satisfied requests per process
  uint64_t seed = 1;
  int cs_shared_ops = 2;   ///< instrumented ops inside the CS (enables
                           ///< crash-in-CS and exercises BCSR)
  int cs_yields = 1;       ///< scheduler yields inside the CS: on machines
                           ///< with fewer cores than processes this is what
                           ///< creates real lock contention (waiters pile up
                           ///< while the holder is descheduled)
  int ncs_local_work = 32; ///< uninstrumented local work between requests
  double watchdog_seconds = 30.0;  ///< stall detector; aborts the run
};

struct SegmentStats {
  Summary cc;   ///< RMRs under CC, per failure-free passage
  Summary dsm;  ///< RMRs under DSM
  Summary ops;  ///< total shared ops
  void Merge(const SegmentStats& o) {
    cc.Merge(o.cc);
    dsm.Merge(o.dsm);
    ops.Merge(o.ops);
  }
};

struct RunResult {
  // Whole-passage (Recover + Enter + Exit; CS excluded) for passages that
  // completed failure-free.
  SegmentStats passage;
  SegmentStats recover;
  SegmentStats enter;
  SegmentStats exit_seg;
  /// RMRs burned by passages that ended in a crash (partial work).
  SegmentStats crashed_passage;
  /// Satisfied passages of super-passages that experienced at least one
  /// own crash ("victims"): where per-failure repair bills land.
  SegmentStats victim_passage;
  Histogram passage_cc_hist;

  uint64_t completed_passages = 0;
  uint64_t total_attempts = 0;
  uint64_t failures = 0;
  uint64_t unsafe_failures = 0;

  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  uint64_t responsiveness_deficits = 0;
  int max_concurrent_cs = 0;

  /// Step-bound observations (BE/BR: these must stay O(1)-ish).
  uint64_t max_recover_ops = 0;
  uint64_t max_exit_ops = 0;

  Summary level_reached;  ///< BaLock escalation level per passage

  /// Per-passage RMR statistics conditioned on F = the number of failures
  /// whose consequence interval overlapped the passage's super-passage —
  /// the exact quantity Theorem 5.18 bounds by O(min{sqrt F, T(n)}).
  std::map<int, SegmentStats> by_overlap;
  std::map<int, Summary> level_by_overlap;

  bool aborted = false;   ///< watchdog fired (deadlock/starvation)
  double wall_seconds = 0.0;
  double passages_per_second = 0.0;
  std::string lock_stats;
  std::vector<FailureRecord> failure_records;
};

/// Runs the workload. `crash` may be null (failure-free).
RunResult RunWorkload(RecoverableLock& lock, const WorkloadConfig& cfg,
                      CrashController* crash);

}  // namespace rme
