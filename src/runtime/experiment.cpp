#include "runtime/experiment.hpp"

#include "core/lock_registry.hpp"

namespace rme {

std::string Scenario::Label() const {
  switch (kind) {
    case Kind::kNoFailures:
      return "no-failures";
    case Kind::kBudgeted:
      return "F=" + std::to_string(budget);
    case Kind::kSustained:
      return "sustained(p=" + std::to_string(per_op_probability) + ")";
  }
  return "?";
}

RunResult RunScenario(RecoverableLock& lock, const WorkloadConfig& cfg,
                      const Scenario& scenario) {
  std::unique_ptr<CrashController> crash;
  switch (scenario.kind) {
    case Scenario::Kind::kNoFailures:
      break;
    case Scenario::Kind::kBudgeted:
      crash = std::make_unique<RandomCrash>(cfg.seed + 101,
                                            scenario.per_op_probability,
                                            scenario.budget);
      break;
    case Scenario::Kind::kSustained:
      crash = std::make_unique<RandomCrash>(cfg.seed + 101,
                                            scenario.per_op_probability, -1);
      break;
  }
  return RunWorkload(lock, cfg, crash.get());
}

RunResult RunScenario(const std::string& lock_name, const WorkloadConfig& cfg,
                      const Scenario& scenario) {
  auto lock = MakeLock(lock_name, cfg.num_procs);
  return RunScenario(*lock, cfg, scenario);
}

}  // namespace rme
