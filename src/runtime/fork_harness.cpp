#include "runtime/fork_harness.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "shm/shm_layout.hpp"
#include "shm/shm_segment.hpp"
#include "util/assert.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

namespace rme {

namespace {

using shm::AppendEvent;
using shm::EventKind;
using shm::PerPidControl;
using shm::PidPhase;
using shm::ShmControl;
using shm::ShmEvent;

/// The whole life of simulated process `pid`, executed in a forked child.
/// Never returns: _Exit(0) on graceful completion; SIGKILL (self-raised
/// or parent-sent) is the only other way out. All state that must
/// survive a kill lives in the shared segment: the lock's own variables,
/// the control block, and the per-pid progress words this loop resumes
/// from after a respawn.
///
/// `incarnation` is the value the parent wrote into the pid's slot
/// immediately before this fork. If the slot has moved on, this child is
/// a stale respawn the parent has already replaced; it must exit without
/// binding, so a stale incarnation can never mirror into a live slot.
[[noreturn]] void ChildMain(RecoverableLock* lock, ShmControl* ctl,
                            rmr::Atomic<uint64_t>* cs_scratch,
                            CrashController* crash, int pid,
                            uint64_t incarnation,
                            const ForkCrashConfig& cfg) {
  PerPidControl& me = ctl->per_pid[pid];
  if (me.incarnation.load(std::memory_order_acquire) != incarnation) {
    std::_Exit(0);  // stale: the parent respawned past us
  }

  // The child inherits the parent thread's context image; start clean
  // (fresh clock block, no counters) before binding. Binding against the
  // pid's segment slot seeds the counters from whatever the previous
  // incarnation last flushed, so counts stay cumulative across respawns
  // and the per-pid snapshots in the log stay monotone.
  CurrentProcess() = ProcessContext{};
  ProcessBinding bind(pid, crash,
                      cfg.mirror_counters ? &ctl->pid_counters[pid] : nullptr);
  // Wake every parked waiter in the segment lot: our corpse may have
  // been the writer a parked process was waiting on. The growing park
  // timeouts would recover them anyway; this makes recovery prompt and
  // exercises the cross-process wake path on every respawn.
  WakeAllParked();
  ProcessContext& ctx = CurrentProcess();
  const OpCounters* cnt = cfg.mirror_counters ? &ctx.counters : nullptr;
  // Stream derived from (pid, incarnation): a respawn must not replay its
  // corpse's NCS schedule, and no two incarnations of any pids may share
  // a stream (SplitMix64 separates any distinct stream ids).
  Prng rng(cfg.seed,
           (incarnation << 16) + static_cast<uint64_t>(pid) + 7777);

  // Phase word: owner-published at every Algorithm-1 transition; frozen
  // by a SIGKILL, so the parent classifies each kill by where it landed
  // and hang dumps say what the stuck child was doing.
  auto publish = [&me](PidPhase ph) {
    me.phase.store(static_cast<uint32_t>(ph), std::memory_order_relaxed);
  };
  // Harness-level probe: records the site for hang dumps, then offers
  // the crash chain a deterministic firing point (the recovery-storm
  // controller arms on "h.recover.brk" and disarms on "h.recover.done").
  auto probe = [&](const char* site) {
    me.last_probe_site.store(site, std::memory_order_relaxed);
    if (crash != nullptr) (void)crash->ShouldCrash(pid, site, true);
  };

  // A nonzero cs_ticket means our previous incarnation died somewhere in
  // the bracket protocol. The reserved slot's kind word decides exactly
  // where: in the enter phase, a committed slot means it died after the
  // kEnter reached the log; in the exit phase, an *uncommitted* slot
  // means the kExit never made it, so the log still shows a holder.
  // Either way we emit kCrashNoted iff the log holds an unmatched kEnter
  // — the old in_cs flag's two-instruction lie windows are gone.
  const uint64_t ticket = me.cs_ticket.load(std::memory_order_acquire);
  if (ticket != 0) {
    const uint64_t slot = shm::CsTicketSlot(ticket);
    const bool committed =
        slot < ctl->log_cap &&
        ctl->log[slot].kind.load(std::memory_order_acquire) !=
            static_cast<uint32_t>(EventKind::kInvalid);
    const bool died_in_logged_cs =
        shm::CsTicketPhase(ticket) == shm::kCsEnterPhase ? committed
                                                         : !committed;
    if (died_in_logged_cs) {
      AppendEvent(ctl, EventKind::kCrashNoted, pid,
                  me.done.load(std::memory_order_relaxed), cnt);
      // Release the live ownership word if the corpse still holds it, so
      // the online tripwire doesn't charge the next entrant for our death.
      uint32_t corpse = static_cast<uint32_t>(pid) + 1;
      ctl->owner.compare_exchange_strong(corpse, 0,
                                         std::memory_order_acq_rel);
    }
    me.cs_ticket.store(0, std::memory_order_release);
  }

  while (me.done.load(std::memory_order_relaxed) < cfg.passages_per_proc) {
    const uint64_t passage = me.done.load(std::memory_order_relaxed);
    // One kReqStart per super-passage, even across kills mid-passage
    // (req_open survives the respawn).
    if (me.req_open.load(std::memory_order_relaxed) == 0) {
      me.req_open.store(1, std::memory_order_relaxed);
      AppendEvent(ctl, EventKind::kReqStart, pid, passage, cnt);
    }
    me.attempts.fetch_add(1, std::memory_order_relaxed);

    publish(PidPhase::kRecovering);
    probe("h.recover.brk");
    lock->Recover(pid);
    probe("h.recover.done");

    publish(PidPhase::kEntering);
    lock->Enter(pid);

    // Logged-CS bracket, enter phase: reserve the slot, publish the
    // ticket, then commit. A kill anywhere in between leaves the slot
    // kInvalid, which the respawn reads as "never entered the logged CS"
    // — exactly what ScanLog reconstructs from the same slot. The probe
    // lets regression tests land a SIGKILL inside this window.
    const uint64_t enter_slot = shm::ReserveEvent(ctl);
    me.cs_ticket.store(shm::EncodeCsTicket(enter_slot, shm::kCsEnterPhase),
                       std::memory_order_release);
    probe("h.enter.brk");
    shm::CommitEvent(ctl, enter_slot, EventKind::kEnter, pid, passage, cnt);

    const uint32_t prev = ctl->owner.exchange(static_cast<uint32_t>(pid) + 1,
                                              std::memory_order_acq_rel);
    if (prev != 0 && prev != static_cast<uint32_t>(pid) + 1) {
      ctl->cs_overlap_events.fetch_add(1, std::memory_order_relaxed);
    }
    publish(PidPhase::kCs);
    for (int j = 0; j < cfg.cs_shared_ops; ++j) {
      cs_scratch->FetchAdd(1, "cs.op");
    }

    // Exit phase: reserving the exit slot before releasing the live
    // owner word orders our kExit ahead of any later entrant's kEnter in
    // ticket order; flipping the ticket first means a kill before the
    // commit is still classified as dying inside the logged CS.
    publish(PidPhase::kExiting);
    const uint64_t exit_slot = shm::ReserveEvent(ctl);
    me.cs_ticket.store(shm::EncodeCsTicket(exit_slot, shm::kCsExitPhase),
                       std::memory_order_release);
    probe("h.exit.brk");
    ctl->owner.store(0, std::memory_order_release);
    shm::CommitEvent(ctl, exit_slot, EventKind::kExit, pid, passage, cnt);
    me.cs_ticket.store(0, std::memory_order_release);

    lock->Exit(pid);
    const int depth = lock->LastPathDepth(pid);
    if (static_cast<uint64_t>(depth) >
        me.max_level.load(std::memory_order_relaxed)) {
      me.max_level.store(static_cast<uint64_t>(depth),
                         std::memory_order_relaxed);
    }
    AppendEvent(ctl, EventKind::kReqDone, pid, passage, cnt);
    me.req_open.store(0, std::memory_order_relaxed);
    me.done.fetch_add(1, std::memory_order_relaxed);

    publish(PidPhase::kIdle);
    for (int j = 0; j < cfg.ncs_local_work; ++j) (void)rng.Next();
  }

  // Graceful shutdown: no injection while releasing leftover resources.
  CurrentProcess().SetCrashController(nullptr);
  lock->OnProcessDone(pid);
  AppendEvent(ctl, EventKind::kDone, pid,
              me.done.load(std::memory_order_relaxed), cnt);
  publish(PidPhase::kIdle);
  me.finished.store(1, std::memory_order_release);
  std::_Exit(0);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepBriefly() {
  struct timespec ts{0, 200'000};  // 200us
  ::nanosleep(&ts, nullptr);
}

/// Hang diagnostic: everything the parent can see about a flatlined
/// child, printed before the watchdog SIGKILL so the evidence is not
/// disturbed by the respawn.
void DumpHungChild(const ShmControl* ctl, const std::string& lock_name,
                   int pid, double flat_seconds) {
  const PerPidControl& pc = ctl->per_pid[pid];
  const char* site = pc.last_probe_site.load(std::memory_order_relaxed);
  std::fprintf(
      stderr,
      "FORK-HANG: pid %d of '%s' flat for %.2fs: phase=%s inc=%llu "
      "done=%llu attempts=%llu owner=%u last_probe=%s\n",
      pid, lock_name.c_str(), flat_seconds,
      shm::PidPhaseName(pc.phase.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          pc.incarnation.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          pc.done.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          pc.attempts.load(std::memory_order_relaxed)),
      ctl->owner.load(std::memory_order_relaxed),
      site != nullptr ? site : "(none)");
  const uint64_t count = std::min<uint64_t>(
      ctl->log_next.load(std::memory_order_acquire), ctl->log_cap);
  const uint64_t from = count > 8 ? count - 8 : 0;
  for (uint64_t i = from; i < count; ++i) {
    const ShmEvent& e = ctl->log[i];
    std::fprintf(
        stderr, "  log[%llu] %s pid=%u passage=%llu\n",
        static_cast<unsigned long long>(i),
        shm::EventKindName(static_cast<EventKind>(
            e.kind.load(std::memory_order_acquire))),
        e.pid, static_cast<unsigned long long>(e.passage));
  }
}

/// Post-hoc verdicts from the event log. Runs in the parent after every
/// child is dead or finished, so the log is quiescent.
struct LogVerdicts {
  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  uint64_t admissible_overlaps = 0;
  uint64_t responsiveness_deficits = 0;
  int max_concurrent = 0;
  // Counter accounting (populated when with_counters).
  std::map<int, ForkRmrBin> rmr_by_overlap;
  uint64_t phantom_crash_notes = 0;
  uint64_t counter_regressions = 0;
  // Starvation verdicts: worst super-passage per pid, in attempts (1 +
  // kills that landed inside it) and in event-log ticket time (log slots
  // between its kReqStart and kReqDone — global progress the pid had to
  // watch go by). Super-passages still open at scan end (e.g. a pid the
  // watchdog abandoned) are folded in with the scan end as their close.
  uint64_t max_attempts_per_passage[kMaxProcs] = {};
  uint64_t max_passage_span[kMaxProcs] = {};
};

LogVerdicts ScanLog(const ShmControl* ctl, bool strong, bool with_counters) {
  LogVerdicts v;
  uint64_t holders = 0;   // pids currently inside the logged CS region
  uint64_t obliged = 0;   // crashed in CS, owed reentry (strong locks)
  bool req_open[kMaxProcs] = {};
  uint64_t passage_start_slot[kMaxProcs] = {};
  uint64_t passage_attempts[kMaxProcs] = {};

  // Per-pid counter state for pricing super-passages. `started` guards
  // against the (tiny) window where a kReqStart reservation was killed
  // before committing: the super-passage then has no priced baseline and
  // is left out of the bins rather than priced against a stale one.
  struct PidPricing {
    OpCounters last;      // monotonicity check, across all of pid's events
    OpCounters at_start;  // snapshot at the super-passage's kReqStart
    uint64_t kills_at_start = 0;
    uint64_t active_at_start = 0;
    bool started = false;
  };
  PidPricing pricing[kMaxProcs] = {};
  uint64_t kills_so_far = 0;

  // Consequence intervals (paper Def 3.1, reconstructed): a kill's
  // interval stays active until every process that had a request open at
  // kill time completes one. mask == 0 means closed.
  struct Interval {
    uint64_t mask;
    bool unsafe;
  };
  std::vector<Interval> intervals;

  const uint64_t count =
      std::min<uint64_t>(ctl->log_next.load(std::memory_order_relaxed),
                         ctl->log_cap);
  for (uint64_t i = 0; i < count; ++i) {
    const ShmEvent& e = ctl->log[i];
    const auto kind = static_cast<EventKind>(
        e.kind.load(std::memory_order_acquire));
    if (kind == EventKind::kInvalid) continue;  // writer killed mid-append
    const int pid = static_cast<int>(e.pid);
    const uint64_t bit = 1ULL << pid;

    // Child-written events snapshot the writer's cumulative counters;
    // they must be monotone per pid in ticket order (the mirror seed at
    // respawn makes them cumulative across incarnations). kKill is
    // parent-written with zero counters, so it is exempt.
    PidPricing& pp = pricing[pid];
    const OpCounters now{e.ops, e.cc_rmrs, e.dsm_rmrs};
    if (with_counters && kind != EventKind::kKill) {
      if (now.ops < pp.last.ops || now.cc_rmrs < pp.last.cc_rmrs ||
          now.dsm_rmrs < pp.last.dsm_rmrs) {
        ++v.counter_regressions;
      }
      pp.last = now;
    }

    switch (kind) {
      case EventKind::kReqStart:
        req_open[pid] = true;
        passage_start_slot[pid] = i;
        passage_attempts[pid] = 1;
        if (with_counters) {
          pp.at_start = now;
          pp.kills_at_start = kills_so_far;
          pp.active_at_start = 0;
          for (const Interval& iv : intervals) {
            if (iv.mask != 0) ++pp.active_at_start;
          }
          pp.started = true;
        }
        break;

      case EventKind::kEnter: {
        if (strong && (obliged & ~bit) != 0) ++v.bcsr_violations;
        obliged &= ~bit;
        if ((holders & ~bit) != 0) {
          const int k = std::popcount(holders | bit);
          if (strong) {
            ++v.me_violations;
          } else {
            uint64_t active = 0, active_unsafe = 0;
            for (const Interval& iv : intervals) {
              if (iv.mask == 0) continue;
              ++active;
              if (iv.unsafe) ++active_unsafe;
            }
            if (active == 0) {
              ++v.me_violations;
            } else {
              ++v.admissible_overlaps;
              if (active_unsafe < static_cast<uint64_t>(k - 1)) {
                ++v.responsiveness_deficits;
              }
            }
          }
        }
        holders |= bit;
        v.max_concurrent = std::max(v.max_concurrent, std::popcount(holders));
        break;
      }

      case EventKind::kExit:
        holders &= ~bit;
        break;

      case EventKind::kReqDone:
        req_open[pid] = false;
        v.max_attempts_per_passage[pid] = std::max(
            v.max_attempts_per_passage[pid], passage_attempts[pid]);
        v.max_passage_span[pid] = std::max(
            v.max_passage_span[pid], i - passage_start_slot[pid]);
        for (Interval& iv : intervals) iv.mask &= ~bit;
        if (with_counters && pp.started && now.ops >= pp.at_start.ops) {
          // Super-passage cost = kReqDone − kReqStart snapshot delta
          // (includes retries burned by kills mid-passage and the CS
          // body's cfg.cs_shared_ops instrumented ops), conditioned on
          // F = consequence intervals active at the start plus kills
          // during — the same notion the in-process harness bins by.
          const uint64_t f =
              pp.active_at_start + (kills_so_far - pp.kills_at_start);
          ForkRmrBin& bin = v.rmr_by_overlap[OverlapBucket(f)];
          ++bin.passages;
          bin.ops_sum += now.ops - pp.at_start.ops;
          bin.cc_sum += now.cc_rmrs - pp.at_start.cc_rmrs;
          bin.dsm_sum += now.dsm_rmrs - pp.at_start.dsm_rmrs;
          bin.cc_max = std::max(bin.cc_max, now.cc_rmrs - pp.at_start.cc_rmrs);
          bin.dsm_max =
              std::max(bin.dsm_max, now.dsm_rmrs - pp.at_start.dsm_rmrs);
        }
        pp.started = false;
        break;

      case EventKind::kKill: {
        if (req_open[pid]) ++passage_attempts[pid];
        uint64_t mask = 0;
        for (int j = 0; j < kMaxProcs; ++j) {
          if (req_open[j]) mask |= 1ULL << j;
        }
        intervals.push_back({mask, e.unsafe != 0});
        ++kills_so_far;
        break;
      }

      case EventKind::kCrashNoted:
        // Only meaningful if the corpse's ENTER made it into the log.
        // Under the cs_ticket discipline a respawn emits kCrashNoted iff
        // the log holds its corpse's unmatched kEnter, so the phantom
        // branch (which used to fire from the old in_cs flag's
        // two-instruction lie windows) must stay empty.
        if ((holders & bit) != 0) {
          holders &= ~bit;
          if (strong) obliged |= bit;
        } else {
          ++v.phantom_crash_notes;
        }
        break;

      case EventKind::kDone:
      case EventKind::kInvalid:
        break;
    }
  }
  // Super-passages never closed (a pid the watchdog abandoned, or one
  // cut off by global shutdown): fold them in with the scan end as the
  // close, so a starved pid's suffering shows in the verdicts.
  for (int j = 0; j < kMaxProcs; ++j) {
    if (!req_open[j]) continue;
    v.max_attempts_per_passage[j] = std::max(
        v.max_attempts_per_passage[j], passage_attempts[j]);
    v.max_passage_span[j] = std::max(
        v.max_passage_span[j], count - passage_start_slot[j]);
  }
  return v;
}

}  // namespace

ForkCrashResult RunForkCrashWorkload(const std::string& lock_name,
                                     const ForkCrashConfig& cfg) {
  RME_CHECK(cfg.num_procs > 0 && cfg.num_procs <= kMaxProcs);
  RME_CHECK(cfg.passages_per_proc > 0);
  const int n = cfg.num_procs;
  RME_CHECK(cfg.storm_kills == 0 || cfg.storm_victim < n);

  shm::Segment seg(cfg.segment_bytes, cfg.shm_name);
  ShmControl* ctl = seg.New<ShmControl>();
  {
    // Every passage logs 4 events; every kill logs up to 2 (kKill +
    // kCrashNoted) and forces one passage retry (4 more); kDone per pid.
    const uint64_t kill_budget =
        static_cast<uint64_t>(std::max<int64_t>(cfg.self_kill_budget, 0)) +
        cfg.independent_kills +
        cfg.batch_kill_events *
            static_cast<uint64_t>(cfg.batch_size <= 0 ? n : cfg.batch_size) +
        cfg.storm_kills *
            static_cast<uint64_t>(cfg.storm_victim < 0 ? n : 1);
    ctl->log_cap = 4 * static_cast<uint64_t>(n) * cfg.passages_per_proc +
                   8 * kill_budget + 64 * static_cast<uint64_t>(n) + 1024;
    ctl->log = seg.NewArray<ShmEvent>(ctl->log_cap);
  }
  auto* cs_scratch = seg.New<rmr::Atomic<uint64_t>>(0);

  // Stage-3 futex parking must cross process boundaries: install the
  // segment-resident lot (and any spin-budget override) process-wide
  // *before* the first fork so every child inherits both. Restored on
  // the way out — later same-process runs park in their own segments.
  rmr_detail::ParkLot* prev_lot = InstallParkLot(&ctl->park_lot);
  const SpinConfig saved_spin = spin_config();
  if (cfg.spin_budget_us >= 0) {
    spin_config().spin_budget_us = static_cast<uint32_t>(cfg.spin_budget_us);
  }

  // Crash controller chain in the segment: the PRNG streams, hit counts,
  // and kill budgets must be shared across respawns and processes, or
  // "exactly K failures" (and one-shot site kills) would drift with every
  // respawned child's private copy.
  CrashController* crash = nullptr;
  RecoveryStormCrash* storm = nullptr;
  {
    std::vector<CrashController*> parts;
    if (cfg.storm_kills > 0) {
      const uint64_t mask =
          cfg.storm_victim < 0
              ? (n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1)
              : uint64_t{1} << cfg.storm_victim;
      storm = seg.New<RecoveryStormCrash>(mask, cfg.storm_kills,
                                          cfg.storm_nth_op);
      // First in the chain: CompositeCrash short-circuits on a firing
      // part, and the storm's armed-op counting must see every op.
      parts.push_back(storm);
    }
    if (cfg.self_kill_budget > 0 && cfg.self_kill_per_op > 0) {
      parts.push_back(seg.New<RandomCrash>(cfg.seed ^ 0x51684c1ull,
                                           cfg.self_kill_per_op,
                                           cfg.self_kill_budget));
    }
    if (!cfg.site_kill_site.empty()) {
      RME_CHECK(cfg.site_kill_pid >= 0 && cfg.site_kill_pid < n);
      // The SiteCrash object (with its atomic hit/budget words) lives in
      // the segment; the short site label sits in the SSO buffer or on
      // the pre-fork parent heap, read-only after the forks either way.
      parts.push_back(seg.New<SiteCrash>(cfg.site_kill_pid,
                                         cfg.site_kill_site,
                                         /*after_op=*/true,
                                         cfg.site_kill_nth));
    }
    if (parts.size() == 1) {
      crash = seg.New<SigkillCrash>(parts[0], ctl->kill_slots);
    } else if (!parts.empty()) {
      crash = seg.New<SigkillCrash>(seg.New<CompositeCrash>(parts),
                                    ctl->kill_slots);
    }
  }

  // Construct the lock with operator new diverted into the segment: the
  // object and its entire ownership tree (qnode pools, sub-lock vectors,
  // label strings) land in shared memory at addresses valid in every
  // forked child.
  std::unique_ptr<RecoverableLock> lock;
  {
    shm::PlacementScope scope(&seg);
    lock = MakeLock(lock_name, n);
  }
  RME_CHECK_MSG(lock->SupportsSharedPlacement(),
                "lock cannot run under real-process crash injection");
  RME_CHECK_MSG(seg.Contains(lock.get()),
                "lock object escaped the shared segment");

  ResetGlobalAbort();
  ForkCrashResult result;

  struct ChildState {
    pid_t os_pid = -1;
    bool alive = false;
    bool finished = false;
    bool parent_kill_pending = false;
    bool watchdog_kill_pending = false;
    uint64_t self_kills_seen = 0;
    // Per-child liveness watchdog state.
    uint64_t last_progress = 0;
    double last_progress_at = 0.0;
    int hang_respawns = 0;
    bool respawn_scheduled = false;  ///< backoff respawn pending
    double respawn_at = 0.0;
  };
  std::vector<ChildState> children(static_cast<size_t>(n));

  // Progress signal for one child: passage completions + attempts +
  // (when mirroring) its kill-survivable op count, which advances on
  // every instrumented shared-memory op — so a child spinning in a
  // *healthy* Enter wait still reads as live, while one stuck in an
  // uninstrumented loop (or wedged on a corpse-held resource) flatlines.
  auto child_progress = [&](int pid) {
    const PerPidControl& pc = ctl->per_pid[pid];
    uint64_t p = pc.done.load(std::memory_order_relaxed) +
                 pc.attempts.load(std::memory_order_relaxed);
    if (cfg.mirror_counters) p += ctl->pid_counters[pid].Snapshot().ops;
    return p;
  };

  auto spawn = [&](int pid) {
    // Bump the slot's incarnation *before* the fork; the child carries
    // the bumped value and exits untouched if the slot ever moves past
    // it (stale-respawn guard).
    const uint64_t inc =
        ctl->per_pid[pid].incarnation.fetch_add(1, std::memory_order_acq_rel) +
        1;
    const pid_t c = ::fork();
    RME_CHECK_MSG(c >= 0, "fork failed");
    if (c == 0) {
      ChildMain(lock.get(), ctl, cs_scratch, crash, pid, inc, cfg);
    }
    ChildState& cs = children[static_cast<size_t>(pid)];
    cs.os_pid = c;
    cs.alive = true;
    cs.last_progress = child_progress(pid);
    cs.last_progress_at = NowSeconds();
  };

  const double t0 = NowSeconds();
  for (int pid = 0; pid < n; ++pid) spawn(pid);

  Prng kill_rng(cfg.seed, 0xdeadull);
  uint64_t independent_left = cfg.independent_kills;
  uint64_t batches_left = cfg.batch_kill_events;
  double next_kill_at = t0 + cfg.kill_interval_ms / 1000.0;

  uint64_t last_progress = 0;
  double last_progress_at = t0;
  bool shutting_down = false;

  auto progress_now = [&] {
    uint64_t p = result.kills;
    for (int pid = 0; pid < n; ++pid) {
      const PerPidControl& pc = ctl->per_pid[pid];
      p += pc.done.load(std::memory_order_relaxed) +
           pc.attempts.load(std::memory_order_relaxed);
    }
    return p;
  };

  auto kill_victim = [&](int pid) {
    ChildState& cs = children[static_cast<size_t>(pid)];
    cs.parent_kill_pending = true;
    // Append before the signal so the consequence interval is open by
    // the time any other process could observe the death. Parent-side
    // kills land at an arbitrary instruction, so classify them as
    // unsafe, conservatively.
    AppendEvent(ctl, EventKind::kKill, pid,
                ctl->per_pid[pid].done.load(std::memory_order_relaxed),
                /*counters=*/nullptr, /*unsafe=*/true);
    ::kill(cs.os_pid, SIGKILL);
  };

  for (;;) {
    // Reap every child that died since the last poll.
    for (;;) {
      int status = 0;
      const pid_t dead = ::waitpid(-1, &status, WNOHANG);
      if (dead <= 0) break;
      int pid = -1;
      for (int j = 0; j < n; ++j) {
        if (children[static_cast<size_t>(j)].os_pid == dead) {
          pid = j;
          break;
        }
      }
      if (pid < 0) continue;  // not ours
      ChildState& cs = children[static_cast<size_t>(pid)];
      cs.alive = false;

      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        RME_CHECK_MSG(
            ctl->per_pid[pid].finished.load(std::memory_order_acquire) != 0,
            "child exited cleanly without finishing its workload");
        cs.finished = true;
        continue;
      }

      if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
        ++result.kills;
        // The victim's phase word is frozen at its last publish; a storm
        // kill must land in kRecovering, a "cs.op" site kill in kCs.
        const uint32_t ph = std::min<uint32_t>(
            ctl->per_pid[pid].phase.load(std::memory_order_relaxed),
            static_cast<uint32_t>(shm::kNumPidPhases - 1));
        ++result.kills_by_phase[ph];
        if (cfg.mirror_counters) {
          // Counter-survival check: the victim's segment slot (flushed on
          // every instrumented op) must be at or ahead of its newest
          // committed event snapshot (flushed only at passage
          // milestones). The gap is the work since that event that the
          // kill did NOT lose — what a kill loses is only the op past
          // the last mirror flush.
          const OpCounters slot_cnt = ctl->pid_counters[pid].Snapshot();
          const uint64_t newest = std::min<uint64_t>(
              ctl->log_next.load(std::memory_order_acquire), ctl->log_cap);
          for (uint64_t i = newest; i-- > 0;) {
            const ShmEvent& e = ctl->log[i];
            const auto k =
                static_cast<EventKind>(e.kind.load(std::memory_order_acquire));
            if (k == EventKind::kInvalid || k == EventKind::kKill) continue;
            if (static_cast<int>(e.pid) != pid) continue;
            if (slot_cnt.ops < e.ops) {
              ++result.counter_regressions;
            } else {
              result.max_kill_ops_gap =
                  std::max(result.max_kill_ops_gap, slot_cnt.ops - e.ops);
            }
            break;
          }
        }
        const uint64_t fired =
            ctl->kill_slots[pid].fired.load(std::memory_order_acquire);
        if (fired > cs.self_kills_seen) {
          // Child-side site-precise kill: classify the site, and append
          // the kKill the victim could not write itself (unless a
          // simultaneous parent kill already did).
          cs.self_kills_seen = fired;
          ++result.child_kills;
          const char* site =
              ctl->kill_slots[pid].site.load(std::memory_order_relaxed);
          const bool unsafe =
              site != nullptr && lock->IsSensitiveSite(site, true);
          if (unsafe) ++result.unsafe_kills;
          if (!cs.parent_kill_pending && !cs.watchdog_kill_pending) {
            AppendEvent(ctl, EventKind::kKill, pid,
                        ctl->per_pid[pid].done.load(std::memory_order_relaxed),
                        /*counters=*/nullptr, unsafe);
          }
        } else if (cs.watchdog_kill_pending) {
          ++result.watchdog_kills;
          ++result.unsafe_kills;  // arbitrary-point kill: assume unsafe
        } else {
          ++result.parent_kills;
          ++result.unsafe_kills;  // arbitrary-point kill: assume unsafe
        }
        cs.parent_kill_pending = false;
        if (!shutting_down) {
          if (cs.watchdog_kill_pending) {
            // Hang respawn policy: capped exponential backoff, then give
            // the pid up so the harness still terminates with a verdict.
            cs.watchdog_kill_pending = false;
            if (cs.hang_respawns >= cfg.max_hang_respawns) {
              ++result.hung_abandoned;
              cs.finished = true;
              std::fprintf(stderr,
                           "FORK-HANG: pid %d abandoned after %d hang "
                           "respawns\n",
                           pid, cs.hang_respawns);
            } else {
              const double backoff = std::min(
                  1.0, 0.05 * static_cast<double>(uint64_t{1}
                                                  << std::min(cs.hang_respawns,
                                                              20)));
              ++cs.hang_respawns;
              cs.respawn_scheduled = true;
              cs.respawn_at = NowSeconds() + backoff;
            }
          } else {
            spawn(pid);  // recover: fresh fork, Recover()
          }
        } else {
          cs.watchdog_kill_pending = false;
        }
        continue;
      }

      // Died some other way (abort in a child RME_CHECK, sanitizer, ...):
      // a harness bug, not an injected failure. Do not respawn.
      ++result.child_errors;
      cs.finished = true;
    }

    const bool all_done = std::all_of(
        children.begin(), children.end(),
        [](const ChildState& c) { return c.finished || !c.alive; });
    if (std::all_of(children.begin(), children.end(),
                    [](const ChildState& c) { return c.finished; })) {
      break;
    }
    if (shutting_down && all_done) break;

    const double now = NowSeconds();

    // Backoff respawns that have come due.
    if (!shutting_down) {
      for (int j = 0; j < n; ++j) {
        ChildState& c = children[static_cast<size_t>(j)];
        if (c.respawn_scheduled && now >= c.respawn_at) {
          c.respawn_scheduled = false;
          spawn(j);
        }
      }
    }

    // Parent-side kill scheduling.
    if (!shutting_down && now >= next_kill_at &&
        (independent_left > 0 || batches_left > 0)) {
      next_kill_at = now + cfg.kill_interval_ms / 1000.0;
      std::vector<int> targets;
      for (int j = 0; j < n; ++j) {
        const ChildState& c = children[static_cast<size_t>(j)];
        if (c.alive && !c.finished && !c.parent_kill_pending) {
          targets.push_back(j);
        }
      }
      if (!targets.empty()) {
        const bool do_batch =
            batches_left > 0 &&
            (independent_left == 0 ||
             kill_rng.NextBounded(independent_left + batches_left) <
                 batches_left);
        if (do_batch) {
          --batches_left;
          ++result.batch_events;
          size_t want = cfg.batch_size <= 0
                            ? targets.size()
                            : std::min<size_t>(targets.size(),
                                               static_cast<size_t>(cfg.batch_size));
          // Partial Fisher-Yates: the first `want` entries become a
          // uniform sample; kill them back-to-back (the batch regime).
          for (size_t i = 0; i < want; ++i) {
            const size_t j =
                i + kill_rng.NextBounded(targets.size() - i);
            std::swap(targets[i], targets[j]);
            kill_victim(targets[i]);
          }
        } else if (independent_left > 0) {
          --independent_left;
          kill_victim(
              targets[kill_rng.NextBounded(targets.size())]);
        }
      }
    }

    // Per-child liveness watchdog: a child whose progress signal is flat
    // for hang_seconds gets dumped, killed, and (at reap) respawned
    // under backoff. A kill already in flight suppresses the check — the
    // victim is *supposed* to be making no progress.
    if (!shutting_down && cfg.hang_seconds > 0) {
      for (int j = 0; j < n; ++j) {
        ChildState& c = children[static_cast<size_t>(j)];
        if (!c.alive || c.finished || c.parent_kill_pending ||
            c.watchdog_kill_pending) {
          continue;
        }
        const uint64_t p = child_progress(j);
        if (p != c.last_progress) {
          c.last_progress = p;
          c.last_progress_at = now;
          continue;
        }
        if (now - c.last_progress_at <= cfg.hang_seconds) continue;
        ++result.hangs;
        DumpHungChild(ctl, lock_name, j, now - c.last_progress_at);
        c.watchdog_kill_pending = true;
        AppendEvent(ctl, EventKind::kKill, j,
                    ctl->per_pid[j].done.load(std::memory_order_relaxed),
                    /*counters=*/nullptr, /*unsafe=*/true);
        ::kill(c.os_pid, SIGKILL);
      }
    }

    // Watchdog: no progress (passage completions, attempts, or kills).
    const uint64_t progress = progress_now();
    if (progress != last_progress) {
      last_progress = progress;
      last_progress_at = now;
    } else if (!shutting_down &&
               now - last_progress_at > cfg.watchdog_seconds) {
      std::fprintf(stderr,
                   "FORK-WATCHDOG: no progress for %.1fs running '%s'; "
                   "killing the run\n",
                   cfg.watchdog_seconds, lock_name.c_str());
      result.watchdog_fired = true;
      shutting_down = true;
      for (int j = 0; j < n; ++j) {
        ChildState& c = children[static_cast<size_t>(j)];
        if (c.alive && !c.finished) ::kill(c.os_pid, SIGKILL);
      }
    }

    SleepBriefly();
  }

  result.wall_seconds = NowSeconds() - t0;

  for (int pid = 0; pid < n; ++pid) {
    const PerPidControl& pc = ctl->per_pid[pid];
    result.completed_passages += pc.done.load(std::memory_order_relaxed);
    result.total_attempts += pc.attempts.load(std::memory_order_relaxed);
  }
  result.cs_overlap_events =
      ctl->cs_overlap_events.load(std::memory_order_relaxed);
  result.log_events = std::min<uint64_t>(
      ctl->log_next.load(std::memory_order_relaxed), ctl->log_cap);
  result.log_overflow =
      ctl->log_overflow.load(std::memory_order_relaxed) != 0;
  result.segment_bytes_used = seg.bytes_used();
  if (storm != nullptr) {
    for (int pid = 0; pid < n; ++pid) {
      result.storm_kills += storm->storm_kills(pid);
    }
  }

  LogVerdicts v = ScanLog(ctl, lock->IsStronglyRecoverable(),
                          cfg.mirror_counters);
  result.me_violations = v.me_violations;
  result.bcsr_violations = v.bcsr_violations;
  result.admissible_overlaps = v.admissible_overlaps;
  result.responsiveness_deficits = v.responsiveness_deficits;
  result.max_concurrent_cs = v.max_concurrent;
  result.rmr_by_overlap = std::move(v.rmr_by_overlap);
  result.phantom_crash_notes = v.phantom_crash_notes;
  result.counter_regressions += v.counter_regressions;
  result.per_pid.resize(static_cast<size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    const PerPidControl& pc = ctl->per_pid[pid];
    ForkCrashResult::PidProgress& pp = result.per_pid[static_cast<size_t>(pid)];
    pp.done = pc.done.load(std::memory_order_relaxed);
    pp.attempts = pc.attempts.load(std::memory_order_relaxed);
    pp.incarnations = pc.incarnation.load(std::memory_order_relaxed);
    pp.max_attempts_per_passage = v.max_attempts_per_passage[pid];
    pp.max_passage_ticket_span = v.max_passage_span[pid];
    pp.max_level = pc.max_level.load(std::memory_order_relaxed);
    result.max_ba_level =
        std::max(result.max_ba_level, static_cast<int>(pp.max_level));
  }
  if (cfg.mirror_counters) {
    result.pid_counters.reserve(static_cast<size_t>(n));
    for (int pid = 0; pid < n; ++pid) {
      result.pid_counters.push_back(ctl->pid_counters[pid].Snapshot());
    }
  }
  result.lock_stats = lock->StatsString();
  spin_config() = saved_spin;
  InstallParkLot(prev_lot);
  return result;
  // `lock` (destroyed first) runs its destructors against the segment;
  // operator delete recognizes segment pointers and leaves them to the
  // Segment destructor, which unmaps everything at once.
}

}  // namespace rme
