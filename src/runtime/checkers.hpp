// Online invariant checkers driven by the harness around every critical
// section:
//  - mutual exclusion (strong locks: any concurrency is a violation;
//    weak locks: concurrency is admissible only while some failure's
//    consequence interval is active — Def 3.2),
//  - bounded critical-section reentry (a process that crashed in its CS
//    must re-enter before anyone else does — strong locks only),
//  - concurrency statistics used by the responsiveness analysis
//    (Thm 4.2: k+1 in CS implies >= k overlapping unsafe failures).
#pragma once

#include <atomic>
#include <cstdint>

#include "crash/failure_log.hpp"

namespace rme {

class MeChecker {
 public:
  MeChecker(bool strong, FailureLog* log) : strong_(strong), log_(log) {}

  void EnterCS(int pid);
  void ExitCS(int pid);
  void OnCrashInCS(int pid);

  uint64_t me_violations() const {
    return me_violations_.load(std::memory_order_relaxed);
  }
  uint64_t bcsr_violations() const {
    return bcsr_violations_.load(std::memory_order_relaxed);
  }
  /// Times a weak lock had k+1 in CS with fewer than k active *unsafe*
  /// failure intervals (responsiveness deficit, Thm 4.2).
  uint64_t responsiveness_deficits() const {
    return responsiveness_deficits_.load(std::memory_order_relaxed);
  }
  int max_concurrent() const {
    return static_cast<int>(max_concurrent_.load(std::memory_order_relaxed));
  }

 private:
  bool strong_;
  FailureLog* log_;
  std::atomic<uint64_t> in_cs_mask_{0};
  std::atomic<uint64_t> reentry_pending_mask_{0};
  std::atomic<uint64_t> me_violations_{0};
  std::atomic<uint64_t> bcsr_violations_{0};
  std::atomic<uint64_t> responsiveness_deficits_{0};
  std::atomic<uint64_t> max_concurrent_{0};
};

}  // namespace rme
