#include "runtime/lockd.hpp"

#include <errno.h>
#include <signal.h>
#include <cstring>
#include <string.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <vector>

#include "core/lock_registry.hpp"
#include "locks/lock.hpp"
#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme::lockd {

namespace {

// Anchor for ServiceControl::text_anchor: any function in this TU works,
// as long as creator and attacher agree on its address exactly when (and
// only when) they share the executable image and slide.
void TextAnchorFn() {}

uint64_t CurrentTextAnchor() {
  return reinterpret_cast<uint64_t>(reinterpret_cast<void*>(&TextAnchorFn));
}

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void SleepUs(uint32_t us) {
  struct timespec ts;
  ts.tv_sec = us / 1000000u;
  ts.tv_nsec = static_cast<long>(us % 1000000u) * 1000l;
  nanosleep(&ts, nullptr);
}

/// Direct crash-policy consult at a lockd protocol site (the fork
/// harness's probe idiom): records the site for hang dumps, then offers
/// the chain a deterministic firing point. Under SigkillCrash a hit
/// never returns.
void Probe(ServiceControl* ctl, int pid, const char* site) {
  if (pid >= 0 && pid < static_cast<int>(ctl->num_slots)) {
    Slots(ctl)[pid].last_probe_site.store(site, std::memory_order_relaxed);
  } else {
    ctl->daemon_probe_site.store(site, std::memory_order_relaxed);
  }
  CrashController* c = ctl->crash.load(std::memory_order_acquire);
  if (c != nullptr) (void)c->ShouldCrash(pid, site, /*after_op=*/true);
}

void PublishPhase(ServiceControl* ctl, int slot, shm::PidPhase ph) {
  Slots(ctl)[slot].phase.store(static_cast<uint32_t>(ph),
                               std::memory_order_relaxed);
}

uint32_t StripeIndexFor(const ServiceControl* ctl, uint64_t hash) {
  const uint32_t bucket = static_cast<uint32_t>(hash) & (ctl->dir_capacity - 1);
  return bucket & (ctl->num_stripes - 1);
}

/// Holds `stripe` for the caller. Steals from a dead holder (its
/// mid-flight inserts are resolved by the entry-level assist, not here).
void AcquireStripe(ServiceControl* ctl, uint32_t stripe) {
  Stripe& s = Stripes(ctl)[stripe];
  const uint32_t me = static_cast<uint32_t>(getpid());
  uint64_t iter = 0;
  for (;;) {
    uint64_t w = s.word.load(std::memory_order_acquire);
    if (WordState(w) == kStripeFree ||
        (WordState(w) == kStripeHeld && !ProcessAlive(WordPid(w)))) {
      if (s.word.compare_exchange_weak(w, NextWord(w, me, kStripeHeld),
                                       std::memory_order_acq_rel)) {
        return;
      }
      continue;
    }
    SpinPause(iter++);
  }
}

void ReleaseStripe(ServiceControl* ctl, uint32_t stripe) {
  Stripe& s = Stripes(ctl)[stripe];
  const uint32_t me = static_cast<uint32_t>(getpid());
  uint64_t w = s.word.load(std::memory_order_acquire);
  if (WordState(w) == kStripeHeld && WordPid(w) == me) {
    s.word.compare_exchange_strong(w, NextWord(w, 0, kStripeFree),
                                   std::memory_order_acq_rel);
  }
}

}  // namespace

const char* SlotStateName(uint32_t s) {
  switch (s) {
    case kSlotFree: return "free";
    case kSlotHandshaking: return "handshaking";
    case kSlotLive: return "live";
    case kSlotDead: return "dead";
    case kSlotRecovering: return "recovering";
  }
  return "?";
}

const char* EntryStateName(uint32_t s) {
  switch (s) {
    case kEntryEmpty: return "empty";
    case kEntryInserting: return "inserting";
    case kEntryReady: return "ready";
    case kEntryTombstone: return "tombstone";
  }
  return "?";
}

uint64_t HashLockName(const char* name) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ull;
  }
  return h == 0 ? 1 : h;
}

bool ProcessAlive(uint32_t os_pid) {
  if (os_pid == 0) return false;
  if (::kill(static_cast<pid_t>(os_pid), 0) == 0) return true;
  return errno != ESRCH;
}

// ---------------------------------------------------------------------------
// Event log.
// ---------------------------------------------------------------------------

uint64_t ReserveLdEvent(ServiceControl* ctl) {
  const uint64_t idx = ctl->log_next.fetch_add(1, std::memory_order_acq_rel);
  if (idx >= ctl->log_cap) {
    ctl->log_overflow.store(1, std::memory_order_relaxed);
    return ~uint64_t{0};
  }
  return idx;
}

void CommitLdEvent(ServiceControl* ctl, uint64_t idx, shm::EventKind kind,
                   int slot, uint32_t entry, uint64_t passage, bool recovery) {
  if (idx == ~uint64_t{0}) return;
  LockdEvent& e = Log(ctl)[idx];
  e.slot = static_cast<uint32_t>(slot);
  e.entry = entry;
  e.recovery = recovery ? 1u : 0u;
  e.passage = passage;
  e.kind.store(static_cast<uint32_t>(kind), std::memory_order_release);
}

void AppendLdEvent(ServiceControl* ctl, shm::EventKind kind, int slot,
                   uint32_t entry, uint64_t passage, bool recovery) {
  CommitLdEvent(ctl, ReserveLdEvent(ctl), kind, slot, entry, passage,
                recovery);
}

// ---------------------------------------------------------------------------
// Service handle.
// ---------------------------------------------------------------------------

std::unique_ptr<Service> Service::Create(const ServiceConfig& cfg) {
  RME_CHECK_MSG(!cfg.shm_name.empty(), "lockd needs a named segment");
  RME_CHECK_MSG(cfg.num_slots >= 1 && cfg.num_slots < kMaxProcs,
                "lockd num_slots must be in [1, kMaxProcs): the slots are "
                "lock-level pids and the daemon probes as pid num_slots");
  RME_CHECK_MSG(cfg.lock_kind.size() < sizeof(ServiceControl::lock_kind),
                "lock kind name too long");
  {
    // Validate the kind up front, outside the segment: it must survive a
    // holder dying for real and must never admit ME violations (the
    // service's verdicts assume strong recoverability).
    auto probe_lock = MakeLock(cfg.lock_kind, cfg.num_slots);
    RME_CHECK_MSG(probe_lock->SupportsSharedPlacement(),
                  ("lock kind '" + cfg.lock_kind +
                      "' does not support shared placement").c_str());
    RME_CHECK_MSG(probe_lock->IsStronglyRecoverable(),
                  ("lockd requires a strongly recoverable lock kind; '" +
                      cfg.lock_kind + "' is weakly recoverable").c_str());
  }

  auto svc = std::unique_ptr<Service>(new Service());
  svc->shm_name_ = cfg.shm_name;
  svc->seg_ = std::make_unique<shm::Segment>(cfg.segment_bytes, cfg.shm_name,
                                             /*keep_name=*/true,
                                             shm::NamedMode::kCreateFresh);
  shm::Segment& seg = *svc->seg_;

  ServiceControl* ctl = seg.New<ServiceControl>();
  ctl->num_slots = static_cast<uint32_t>(cfg.num_slots);
  ctl->dir_capacity = RoundUpPow2(cfg.dir_capacity < 8 ? 8 : cfg.dir_capacity);
  uint32_t stripes = ctl->dir_capacity / 4;
  if (stripes < 1) stripes = 1;
  if (stripes > 64) stripes = 64;
  ctl->num_stripes = RoundUpPow2(stripes);
  std::snprintf(ctl->lock_kind, sizeof(ctl->lock_kind), "%s",
                cfg.lock_kind.c_str());
  ctl->text_anchor = CurrentTextAnchor();
  ctl->log_cap = cfg.log_cap < 1024 ? 1024 : cfg.log_cap;

  char* base = static_cast<char*>(seg.base());
  ctl->self_off = reinterpret_cast<char*>(ctl) - base;
  ctl->slots_off =
      reinterpret_cast<char*>(seg.NewArray<ClientSlot>(ctl->num_slots)) - base;
  ctl->dir_off =
      reinterpret_cast<char*>(seg.NewArray<DirEntry>(ctl->dir_capacity)) -
      base;
  ctl->stripes_off =
      reinterpret_cast<char*>(seg.NewArray<Stripe>(ctl->num_stripes)) - base;
  ctl->log_off =
      reinterpret_cast<char*>(seg.NewArray<LockdEvent>(ctl->log_cap)) - base;

  seg.SetRoot(ctl);
  svc->ctl_ = ctl;
  return svc;
}

namespace {

ServiceControl* ValidateRoot(shm::Segment& seg, const std::string& name) {
  auto* ctl = static_cast<ServiceControl*>(seg.root());
  RME_CHECK_MSG(ctl != nullptr,
                ("segment '" + name + "' has no published service root").c_str());
  RME_CHECK_MSG(ctl->magic == kServiceMagic,
                ("segment '" + name + "' root is not a lockd control block").c_str());
  RME_CHECK_MSG(ctl->version == kServiceVersion,
                ("segment '" + name + "' has an incompatible lockd version").c_str());
  RME_CHECK_MSG(ctl->num_slots >= 1 && ctl->num_slots < kMaxProcs &&
                    ctl->dir_capacity > 0 && ctl->log_cap > 0,
                ("segment '" + name + "' control block is corrupt").c_str());
  return ctl;
}

}  // namespace

std::unique_ptr<Service> Service::Attach(const std::string& shm_name) {
  auto svc = std::unique_ptr<Service>(new Service());
  svc->shm_name_ = shm_name;
  svc->seg_ = std::make_unique<shm::Segment>(/*bytes=*/0, shm_name,
                                             /*keep_name=*/true,
                                             shm::NamedMode::kAttach);
  svc->ctl_ = ValidateRoot(*svc->seg_, shm_name);
  svc->seg_->set_unlink_on_destroy(false);  // an attacher never owns the name
  return svc;
}

std::unique_ptr<Service> Service::AttachOrCreate(const ServiceConfig& cfg) {
  if (shm::Segment::ProbeNamed(cfg.shm_name) == shm::ProbeResult::kValid) {
    return Attach(cfg.shm_name);
  }
  return Create(cfg);
}

Service::~Service() = default;

bool Service::locks_usable() const {
  return ctl_ != nullptr && ctl_->text_anchor == CurrentTextAnchor();
}

// ---------------------------------------------------------------------------
// Lease handshake.
// ---------------------------------------------------------------------------

int AcquireLease(ServiceControl* ctl) {
  const uint32_t me = static_cast<uint32_t>(getpid());
  ClientSlot* slots = Slots(ctl);
  for (uint32_t s = 0; s < ctl->num_slots; ++s) {
    uint64_t w = slots[s].word.load(std::memory_order_acquire);
    if (WordState(w) != kSlotFree) continue;
    if (!slots[s].word.compare_exchange_strong(
            w, NextWord(w, me, kSlotHandshaking), std::memory_order_acq_rel)) {
      continue;
    }
    const uint64_t claimed = NextWord(w, me, kSlotHandshaking);
    slots[s].incarnation.fetch_add(1, std::memory_order_acq_rel);
    // The mid-handshake kill window: a SIGKILL here leaves a Handshaking
    // husk with a dead claimant that the sweep (or a fresh daemon's
    // takeover) must fence and free.
    Probe(ctl, static_cast<int>(s), "ld.lease.brk");
    uint64_t expect = claimed;
    if (!slots[s].word.compare_exchange_strong(expect,
                                               NextWord(claimed, me, kSlotLive),
                                               std::memory_order_acq_rel)) {
      // Fenced mid-handshake (we looked dead — possible only under pid
      // reuse or a fencing bug); the fencer owns the slot now.
      continue;
    }
    ctl->lease_grants.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int>(s);
  }
  return -1;
}

void ReleaseLease(ServiceControl* ctl, int slot) {
  ClientSlot& cs = Slots(ctl)[slot];
  const uint32_t me = static_cast<uint32_t>(getpid());
  uint64_t w = cs.word.load(std::memory_order_acquire);
  if (WordState(w) == kSlotLive && WordPid(w) == me) {
    PublishPhase(ctl, slot, shm::PidPhase::kIdle);
    cs.word.compare_exchange_strong(w, NextWord(w, 0, kSlotFree),
                                    std::memory_order_acq_rel);
  }
}

bool LeaseValid(const ServiceControl* ctl, int slot, uint64_t incarnation) {
  const ClientSlot& cs = Slots(ctl)[slot];
  const uint64_t w = cs.word.load(std::memory_order_acquire);
  return WordState(w) == kSlotLive &&
         WordPid(w) == static_cast<uint32_t>(getpid()) &&
         cs.incarnation.load(std::memory_order_acquire) == incarnation;
}

// ---------------------------------------------------------------------------
// Directory.
// ---------------------------------------------------------------------------

bool ResolveInsertingEntry(ServiceControl* ctl, uint32_t idx) {
  DirEntry& e = Dir(ctl)[idx];
  uint64_t w = e.word.load(std::memory_order_acquire);
  if (WordState(w) != kEntryInserting) return true;
  if (ProcessAlive(WordPid(w))) return false;
  RecoverableLock* lk = e.lock.load(std::memory_order_acquire);
  if (lk != nullptr) {
    // Name, hash and the lock were all published before the inserter
    // died; only the Ready transition is missing. Finish it.
    if (e.word.compare_exchange_strong(w, NextWord(w, 0, kEntryReady),
                                       std::memory_order_acq_rel)) {
      ctl->assisted_inserts.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Died before the lock existed: tombstone, never Empty — an Empty
    // here would truncate probe chains that already passed this cell and
    // let the same name be inserted twice. The arena bytes a partially
    // constructed lock may have consumed stay allocated (the arena never
    // frees); only the cell is reused.
    if (e.word.compare_exchange_strong(w, NextWord(w, 0, kEntryTombstone),
                                       std::memory_order_acq_rel)) {
      ctl->rolled_back_inserts.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return WordState(e.word.load(std::memory_order_acquire)) != kEntryInserting;
}

namespace {

/// Lookup pass: returns the entry index if `name` is Ready (or resolved
/// to Ready), -1 if provably absent. Blocks (with assist) on Inserting
/// entries that could be `name` mid-publication.
int LookupEntry(ServiceControl* ctl, const char* name, uint64_t hash) {
  DirEntry* dir = Dir(ctl);
  const uint32_t mask = ctl->dir_capacity - 1;
  uint64_t iter = 0;
  for (uint32_t i = 0; i < ctl->dir_capacity;) {
    const uint32_t idx = (static_cast<uint32_t>(hash) + i) & mask;
    DirEntry& e = dir[idx];
    const uint64_t w = e.word.load(std::memory_order_acquire);
    switch (WordState(w)) {
      case kEntryEmpty:
        return -1;
      case kEntryTombstone:
        ++i;
        continue;
      case kEntryReady:
        if (e.name_hash.load(std::memory_order_acquire) == hash &&
            std::strncmp(e.name, name, kMaxLockName + 1) == 0) {
          return static_cast<int>(idx);
        }
        ++i;
        continue;
      case kEntryInserting: {
        const uint64_t h = e.name_hash.load(std::memory_order_acquire);
        if (h != 0 && h != hash) {
          ++i;  // provably a different name mid-insert
          continue;
        }
        // Could be our name before its hash landed: wait for the
        // inserter, finishing/rolling back on its behalf if it died.
        ResolveInsertingEntry(ctl, idx);
        SpinPause(iter++);
        continue;  // re-examine the same cell
      }
    }
    ++i;
  }
  return -1;
}

}  // namespace

int GetOrInsertEntry(ServiceControl* ctl, shm::Segment* seg, const char* name,
                     int slot) {
  RME_CHECK_MSG(std::strlen(name) <= kMaxLockName,
                (std::string("lockd lock name too long: '") + name + "'").c_str());
  const uint64_t hash = HashLockName(name);
  int found = LookupEntry(ctl, name, hash);
  if (found >= 0) return found;

  // Absent: insert under the initial bucket's stripe. Same name => same
  // bucket => same stripe, so duplicate inserts of one name serialize
  // here; claims on individual cells stay CAS-guarded because probe
  // chains from *other* buckets (other stripes) may cross ours.
  const uint32_t stripe = StripeIndexFor(ctl, hash);
  AcquireStripe(ctl, stripe);
  found = LookupEntry(ctl, name, hash);  // re-check under the stripe
  if (found >= 0) {
    ReleaseStripe(ctl, stripe);
    return found;
  }

  DirEntry* dir = Dir(ctl);
  const uint32_t mask = ctl->dir_capacity - 1;
  const uint32_t me = static_cast<uint32_t>(getpid());
  for (;;) {
    int claimed = -1;
    for (uint32_t i = 0; i < ctl->dir_capacity; ++i) {
      const uint32_t idx = (static_cast<uint32_t>(hash) + i) & mask;
      DirEntry& e = dir[idx];
      uint64_t w = e.word.load(std::memory_order_acquire);
      const uint32_t st = WordState(w);
      if (st != kEntryEmpty && st != kEntryTombstone) continue;
      // Tombstones have lock == nullptr by the rollback ordering (clear
      // the pointer, then CAS the word), so a claim never inherits a
      // stale "construction finished" signal.
      if (e.word.compare_exchange_strong(w, NextWord(w, me, kEntryInserting),
                                         std::memory_order_acq_rel)) {
        claimed = static_cast<int>(idx);
        break;
      }
      break;  // lost the cell to a concurrent claim; rescan from scratch
    }
    if (claimed < 0) {
      // Either the table is genuinely full or we lost a race; rescan
      // once for the full case before aborting.
      bool any_free = false;
      for (uint32_t j = 0; j < ctl->dir_capacity; ++j) {
        const uint32_t st =
            WordState(dir[j].word.load(std::memory_order_acquire));
        if (st == kEntryEmpty || st == kEntryTombstone) {
          any_free = true;
          break;
        }
      }
      RME_CHECK_MSG(any_free,
                    (std::string("lockd directory full inserting '") + name +
                        "' — raise ServiceConfig::dir_capacity").c_str());
      continue;
    }

    DirEntry& e = dir[claimed];
    e.name_hash.store(0, std::memory_order_relaxed);
    std::memset(e.name, 0, sizeof(e.name));
    std::snprintf(e.name, sizeof(e.name), "%s", name);
    e.name_hash.store(hash, std::memory_order_release);
    // Mid-insert kill window #1: name published, no lock yet. A death
    // here must roll back to a tombstone.
    Probe(ctl, slot, "ld.insert.brk");

    RecoverableLock* lk = nullptr;
    {
      shm::PlacementScope scope(seg);
      lk = MakeLock(ctl->lock_kind, static_cast<int>(ctl->num_slots))
               .release();
    }
    e.lock.store(lk, std::memory_order_release);
    // Mid-insert kill window #2: lock published, Ready transition
    // pending. A death here must be *completed*, not rolled back.
    Probe(ctl, slot, "ld.publish.brk");

    uint64_t w = e.word.load(std::memory_order_acquire);
    RME_CHECK_MSG(WordState(w) == kEntryInserting && WordPid(w) == me,
                  "lockd insert fenced away from a live inserter");
    e.word.compare_exchange_strong(w, NextWord(w, 0, kEntryReady),
                                   std::memory_order_acq_rel);
    ReleaseStripe(ctl, stripe);
    return claimed;
  }
}

// ---------------------------------------------------------------------------
// Passages.
// ---------------------------------------------------------------------------

namespace {

/// The logged-CS body shared by normal and recovery passages. Caller has
/// already published active_entry. Mirrors the fork harness bracket
/// exactly: reserve -> ticket -> probe -> commit on entry; reserve ->
/// ticket -> probe -> owner release -> commit -> ticket clear on exit.
void PassageBody(ServiceControl* ctl, int slot, int entry, int cs_ops,
                 bool recovery) {
  ClientSlot& me = Slots(ctl)[slot];
  DirEntry& e = Dir(ctl)[entry];
  RecoverableLock* lk = e.lock.load(std::memory_order_acquire);
  RME_CHECK_MSG(lk != nullptr, "passage on an entry with no lock");
  const uint64_t passage = me.acquires.load(std::memory_order_relaxed);

  PublishPhase(ctl, slot, shm::PidPhase::kRecovering);
  Probe(ctl, slot, recovery ? "ld.rrecover.brk" : "ld.recover.brk");
  lk->Recover(slot);

  PublishPhase(ctl, slot, shm::PidPhase::kEntering);
  lk->Enter(slot);

  const uint64_t enter_idx = ReserveLdEvent(ctl);
  if (enter_idx != ~uint64_t{0}) {
    me.cs_ticket.store(shm::EncodeCsTicket(enter_idx, shm::kCsEnterPhase),
                       std::memory_order_release);
  }
  Probe(ctl, slot, recovery ? "ld.renter.brk" : "ld.enter.brk");
  CommitLdEvent(ctl, enter_idx, shm::EventKind::kEnter, slot,
                static_cast<uint32_t>(entry), passage, recovery);

  const uint32_t prev = e.owner.exchange(static_cast<uint32_t>(slot) + 1,
                                         std::memory_order_acq_rel);
  if (prev != 0) {
    e.cs_overlaps.fetch_add(1, std::memory_order_relaxed);
    ctl->cs_overlap_events.fetch_add(1, std::memory_order_relaxed);
  }

  PublishPhase(ctl, slot, shm::PidPhase::kCs);
  for (int i = 0; i < cs_ops; ++i) {
    e.cs_scratch.FetchAdd(1, "ld.cs.op");
  }

  PublishPhase(ctl, slot, shm::PidPhase::kExiting);
  const uint64_t exit_idx = ReserveLdEvent(ctl);
  if (exit_idx != ~uint64_t{0}) {
    me.cs_ticket.store(shm::EncodeCsTicket(exit_idx, shm::kCsExitPhase),
                       std::memory_order_release);
  }
  Probe(ctl, slot, recovery ? "ld.rexit.brk" : "ld.exit.brk");
  e.owner.store(0, std::memory_order_release);
  CommitLdEvent(ctl, exit_idx, shm::EventKind::kExit, slot,
                static_cast<uint32_t>(entry), passage, recovery);
  me.cs_ticket.store(0, std::memory_order_release);

  lk->Exit(slot);
  e.acquisitions.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void RunPassage(ServiceControl* ctl, int slot, int entry, int cs_ops) {
  ClientSlot& me = Slots(ctl)[slot];
  me.active_entry.store(static_cast<uint32_t>(entry) + 1,
                        std::memory_order_release);
  PassageBody(ctl, slot, entry, cs_ops, /*recovery=*/false);
  me.acquires.fetch_add(1, std::memory_order_acq_rel);
  me.active_entry.store(0, std::memory_order_release);
  me.heartbeat.fetch_add(1, std::memory_order_relaxed);
  PublishPhase(ctl, slot, shm::PidPhase::kIdle);
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

int MarkDeadByOsPid(ServiceControl* ctl, uint32_t os_pid) {
  if (os_pid == 0) return 0;
  int marked = 0;
  ClientSlot* slots = Slots(ctl);
  for (uint32_t s = 0; s < ctl->num_slots; ++s) {
    uint64_t w = slots[s].word.load(std::memory_order_acquire);
    const uint32_t st = WordState(w);
    if (WordPid(w) != os_pid) continue;
    if (st != kSlotLive && st != kSlotHandshaking && st != kSlotRecovering) {
      continue;
    }
    if (slots[s].word.compare_exchange_strong(w, NextWord(w, 0, kSlotDead),
                                              std::memory_order_acq_rel)) {
      ++marked;
    }
  }
  return marked;
}

void RecoverSlotBody(ServiceControl* ctl, int slot) {
  ClientSlot& me = Slots(ctl)[slot];

  // cs_ticket forensics, exactly the fork harness's: the ticket names
  // the log slot the corpse reserved and which bracket phase it was in;
  // whether that slot ever committed decides died-inside-logged-CS.
  const uint64_t ticket = me.cs_ticket.load(std::memory_order_acquire);
  const uint32_t active = me.active_entry.load(std::memory_order_acquire);
  if (ticket != 0) {
    const uint64_t idx = shm::CsTicketSlot(ticket);
    const uint64_t phase = shm::CsTicketPhase(ticket);
    bool committed = false;
    if (idx < ctl->log_cap) {
      committed = Log(ctl)[idx].kind.load(std::memory_order_acquire) !=
                  static_cast<uint32_t>(shm::EventKind::kInvalid);
    }
    const bool died_in_logged_cs =
        (phase == shm::kCsEnterPhase && committed) ||
        (phase == shm::kCsExitPhase && !committed);
    if (died_in_logged_cs && active != 0) {
      const uint32_t entry = active - 1;
      AppendLdEvent(ctl, shm::EventKind::kCrashNoted, slot, entry,
                    me.acquires.load(std::memory_order_relaxed),
                    /*recovery=*/false);
      DirEntry& e = Dir(ctl)[entry];
      uint32_t corpse = static_cast<uint32_t>(slot) + 1;
      e.owner.compare_exchange_strong(corpse, 0, std::memory_order_acq_rel);
    }
    me.cs_ticket.store(0, std::memory_order_release);
  }

  if (active != 0) {
    // The corpse was somewhere inside a passage on this entry, so at
    // lock level it may still *hold* the lock — strong recoverability
    // means nobody else can enter until the crashed process comes back.
    // Recovery therefore runs a full passage as the dead slot: Recover
    // cleans its request state, Enter re-acquires (or first acquires),
    // Exit releases. Recover alone would release nothing.
    PassageBody(ctl, slot, static_cast<int>(active) - 1, /*cs_ops=*/0,
                /*recovery=*/true);
    me.active_entry.store(0, std::memory_order_release);
  }
  PublishPhase(ctl, slot, shm::PidPhase::kIdle);
}

bool AssistRecoverOne(ServiceControl* ctl) {
  const uint32_t me = static_cast<uint32_t>(getpid());
  ClientSlot* slots = Slots(ctl);
  for (uint32_t s = 0; s < ctl->num_slots; ++s) {
    uint64_t w = slots[s].word.load(std::memory_order_acquire);
    if (WordState(w) != kSlotDead) continue;
    const uint64_t fenced = NextWord(w, me, kSlotRecovering);
    if (!slots[s].word.compare_exchange_strong(w, fenced,
                                               std::memory_order_acq_rel)) {
      continue;
    }
    RecoverSlotBody(ctl, static_cast<int>(s));
    uint64_t expect = fenced;
    if (slots[s].word.compare_exchange_strong(expect,
                                              NextWord(fenced, 0, kSlotFree),
                                              std::memory_order_acq_rel)) {
      ctl->recovered_slots.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Daemon.
// ---------------------------------------------------------------------------

namespace {

/// ESRCH sweep: any slot whose recorded actor is gone becomes Dead.
/// Live/Handshaking pids are lease holders; a Recovering pid is a
/// recoverer (daemon helper or assisting client) that itself died.
void MarkDeadSlots(ServiceControl* ctl) {
  ClientSlot* slots = Slots(ctl);
  for (uint32_t s = 0; s < ctl->num_slots; ++s) {
    uint64_t w = slots[s].word.load(std::memory_order_acquire);
    const uint32_t st = WordState(w);
    if (st != kSlotLive && st != kSlotHandshaking && st != kSlotRecovering) {
      continue;
    }
    if (ProcessAlive(WordPid(w))) continue;
    slots[s].word.compare_exchange_strong(w, NextWord(w, 0, kSlotDead),
                                          std::memory_order_acq_rel);
  }
}

void SweepDirectory(ServiceControl* ctl) {
  for (uint32_t i = 0; i < ctl->dir_capacity; ++i) {
    const uint64_t w = Dir(ctl)[i].word.load(std::memory_order_acquire);
    if (WordState(w) == kEntryInserting) (void)ResolveInsertingEntry(ctl, i);
  }
  Stripe* stripes = Stripes(ctl);
  for (uint32_t i = 0; i < ctl->num_stripes; ++i) {
    uint64_t w = stripes[i].word.load(std::memory_order_acquire);
    if (WordState(w) == kStripeHeld && !ProcessAlive(WordPid(w))) {
      stripes[i].word.compare_exchange_strong(w, NextWord(w, 0, kStripeFree),
                                              std::memory_order_acq_rel);
    }
  }
}

/// One recovery helper per dead slot: the helper fences the slot itself
/// (so the slot word always names the actual acting process — an
/// orphaned helper surviving its daemon stays visibly alive and is never
/// double-recovered), recovers, frees, exits. Concurrent helpers keep a
/// recovery blocked behind another dead holder from serializing the
/// rest, and a helper SIGKILLed mid-recovery just re-fences on reap.
void HelperMain(ServiceControl* ctl, uint32_t s) {
  // The child shares the parent's TLS image; start from a clean context
  // before binding (fork_harness's ChildMain discipline).
  CurrentProcess() = ProcessContext{};
  WakeAllParked();
  ClientSlot& cs = Slots(ctl)[s];
  uint64_t w = cs.word.load(std::memory_order_acquire);
  if (WordState(w) != kSlotDead) _exit(0);
  const uint64_t fenced =
      NextWord(w, static_cast<uint32_t>(getpid()), kSlotRecovering);
  if (!cs.word.compare_exchange_strong(w, fenced,
                                       std::memory_order_acq_rel)) {
    _exit(0);
  }
  {
    ProcessBinding bind(static_cast<int>(s), nullptr);
    RecoverSlotBody(ctl, static_cast<int>(s));
  }
  uint64_t expect = fenced;
  if (cs.word.compare_exchange_strong(expect, NextWord(fenced, 0, kSlotFree),
                                      std::memory_order_acq_rel)) {
    ctl->recovered_slots.fetch_add(1, std::memory_order_relaxed);
  }
  _exit(0);
}

struct HelperTracker {
  std::map<uint32_t, pid_t> by_slot;

  void Launch(ServiceControl* ctl) {
    ClientSlot* slots = Slots(ctl);
    for (uint32_t s = 0; s < ctl->num_slots; ++s) {
      if (by_slot.count(s) != 0) continue;
      if (WordState(slots[s].word.load(std::memory_order_acquire)) !=
          kSlotDead) {
        continue;
      }
      const pid_t child = fork();
      RME_CHECK_MSG(child >= 0, "lockd daemon failed to fork a helper");
      if (child == 0) HelperMain(ctl, s);  // never returns
      by_slot[s] = child;
    }
  }

  /// Reaps finished helpers; a helper that died mid-recovery leaves its
  /// slot fenced under its (now dead) pid — put it back to Dead so the
  /// next sweep retries.
  void Reap(ServiceControl* ctl, bool block) {
    for (auto it = by_slot.begin(); it != by_slot.end();) {
      int status = 0;
      const pid_t r = waitpid(it->second, &status, block ? 0 : WNOHANG);
      if (r == 0) {
        ++it;
        continue;
      }
      const uint32_t s = it->first;
      const uint32_t hpid = static_cast<uint32_t>(it->second);
      it = by_slot.erase(it);
      ClientSlot& cs = Slots(ctl)[s];
      uint64_t w = cs.word.load(std::memory_order_acquire);
      if (WordState(w) == kSlotRecovering && WordPid(w) == hpid) {
        cs.word.compare_exchange_strong(w, NextWord(w, 0, kSlotDead),
                                        std::memory_order_acq_rel);
      }
    }
  }
};

bool AnySlotPending(ServiceControl* ctl) {
  ClientSlot* slots = Slots(ctl);
  for (uint32_t s = 0; s < ctl->num_slots; ++s) {
    const uint32_t st =
        WordState(slots[s].word.load(std::memory_order_acquire));
    if (st == kSlotDead || st == kSlotRecovering) return true;
  }
  return false;
}

}  // namespace

int RunDaemon(Service& svc, const DaemonConfig& dc) {
  ServiceControl* ctl = svc.ctl();
  RME_CHECK_MSG(ctl->magic == kServiceMagic && ctl->version == kServiceVersion,
                "lockd daemon: control block failed validation");
  RME_CHECK_MSG(svc.locks_usable(),
                "lockd daemon: segment was built by a different executable "
                "image — its lock vtables are not usable here");
  const int daemon_pid_index = static_cast<int>(ctl->num_slots);
  const uint32_t me = static_cast<uint32_t>(getpid());

  // Takeover: CAS-steal the daemon word from nobody or from a corpse. A
  // live incumbent wins; we leave.
  for (;;) {
    uint64_t w = ctl->daemon_word.load(std::memory_order_acquire);
    const uint32_t st = WordState(w);
    const bool claimable =
        st == kDaemonNone || WordPid(w) == me || !ProcessAlive(WordPid(w));
    if (!claimable) return 1;
    if (ctl->daemon_word.compare_exchange_strong(
            w, NextWord(w, me, kDaemonStarting), std::memory_order_acq_rel)) {
      break;
    }
  }
  ctl->daemon_incarnation.fetch_add(1, std::memory_order_acq_rel);
  ctl->daemon_takeovers.fetch_add(1, std::memory_order_relaxed);

  // Mid-takeover kill window: the daemon word says Starting under our
  // pid; a death here must be stealable by the next daemon.
  Probe(ctl, daemon_pid_index, "ld.d.takeover.brk");

  if (dc.validate_named && !svc.shm_name().empty()) {
    // Honest reattach validation: re-probe the named entry's header on
    // disk (magic, version, size vs recorded capacity) even though our
    // own mapping is inherited/established already.
    std::string why;
    const auto pr = shm::Segment::ProbeNamed(svc.shm_name(), &why);
    RME_CHECK_MSG(pr == shm::ProbeResult::kValid,
                  ("lockd daemon: named segment failed validation: " + why).c_str());
  }

  // Takeover sweep: everything a dead predecessor (or its clients) could
  // have left mid-flight.
  HelperTracker helpers;
  MarkDeadSlots(ctl);
  SweepDirectory(ctl);
  helpers.Launch(ctl);

  uint64_t w = ctl->daemon_word.load(std::memory_order_acquire);
  if (WordState(w) == kDaemonStarting && WordPid(w) == me) {
    ctl->daemon_word.compare_exchange_strong(w, NextWord(w, me, kDaemonRunning),
                                             std::memory_order_acq_rel);
  }
  ctl->ready.store(1, std::memory_order_release);

  while (ctl->stop.load(std::memory_order_acquire) == 0) {
    ctl->daemon_heartbeat.fetch_add(1, std::memory_order_relaxed);
    MarkDeadSlots(ctl);
    SweepDirectory(ctl);
    helpers.Launch(ctl);
    helpers.Reap(ctl, /*block=*/false);
    Probe(ctl, daemon_pid_index, "ld.d.sweep.brk");
    SleepUs(dc.sweep_interval_us);
  }

  // Drain: finish outstanding recoveries so a clean stop leaves no Dead
  // or Recovering slots behind (bounded — a stop during a kill storm
  // still terminates).
  for (int round = 0; round < 2000 && AnySlotPending(ctl); ++round) {
    MarkDeadSlots(ctl);
    SweepDirectory(ctl);
    helpers.Launch(ctl);
    helpers.Reap(ctl, /*block=*/false);
    SleepUs(1000);
  }
  helpers.Reap(ctl, /*block=*/true);
  AppendLdEvent(ctl, shm::EventKind::kDone, daemon_pid_index, ~0u,
                ctl->daemon_heartbeat.load(std::memory_order_relaxed), false);
  ctl->ready.store(0, std::memory_order_release);
  return 0;
}

}  // namespace rme::lockd
