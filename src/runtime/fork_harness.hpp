// Real-process crash harness: the out-of-process counterpart of
// runtime/harness.hpp.
//
// The thread harness simulates a crash as an exception; here a crash is
// a SIGKILL. The parent places the lock's entire recoverable state in a
// POSIX shared-memory segment (shm/shm_segment.hpp), forks one child per
// simulated process, and injects failures two ways:
//
//  - child-side: a SigkillCrash controller (shared PRNG/budget state in
//    the segment) raises SIGKILL at an instrumented shared-memory
//    operation — site-precise, like the in-process injector, but the
//    process genuinely dies: no unwinding, no destructors, private state
//    (registers, stack, heap) is simply gone;
//  - parent-side: asynchronous kills at randomized wall-clock points,
//    independently or as whole-batch kills (several pids SIGKILLed
//    back-to-back — the paper's §7.1 batch-failure regime, including
//    system-wide batches of all n).
//
// Each victim is respawned by a fresh fork from the (never-bound,
// single-threaded) parent and re-enters the Algorithm-1 loop, where
// Recover() runs against the surviving segment. Mutual exclusion and
// bounded CS reentry are validated from a ticketed event log plus a live
// CS-ownership word in the segment (shm/shm_layout.hpp), with weak-lock
// overlaps checked for admissibility against failure consequence
// intervals reconstructed from kill events.
//
// This harness measures crash-recovery *correctness* under real process
// death AND — since counter accounting moved into the shared segment —
// RMR statistics under genuine SIGKILLs: each child's counters mirror
// into a per-pid segment slot on every instrumented op (losing at most
// the in-flight op on a kill), every log event snapshots the writer's
// cumulative counters, and the post-hoc scan prices each passage and
// conditions it on F = the kills that overlapped it (the Fig. 3 x-axis).
//
// Must be called from a single-threaded parent (it forks and the
// children continue without exec; a multithreaded parent would leak
// locked allocator/runtime internals into the children).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rmr/memory_model.hpp"
#include "shm/shm_layout.hpp"

namespace rme {

struct ForkCrashConfig {
  int num_procs = 4;
  uint64_t passages_per_proc = 100;  ///< satisfied requests per process
  uint64_t seed = 1;
  int cs_shared_ops = 2;    ///< instrumented ops inside the CS
  int ncs_local_work = 32;  ///< uninstrumented local work between requests

  /// Child-side site-precise kills: each shared op kills the calling
  /// process with probability `self_kill_per_op`, up to `self_kill_budget`
  /// kills across the run (0 disables child-side injection).
  double self_kill_per_op = 0.0;
  int64_t self_kill_budget = 0;

  /// Parent-side asynchronous kills: `independent_kills` single-victim
  /// kills plus `batch_kill_events` whole-batch kills of `batch_size`
  /// random distinct victims each (batch_size <= 0 means all n — the
  /// system-wide crash regime). One kill event is issued roughly every
  /// `kill_interval_ms` until the budgets are spent.
  uint64_t independent_kills = 0;
  uint64_t batch_kill_events = 0;
  int batch_size = 0;
  double kill_interval_ms = 2.0;

  /// Deterministic site-pinned kill (regression tests): when
  /// `site_kill_site` is non-empty, process `site_kill_pid` SIGKILLs
  /// itself at its `site_kill_nth`-th after-op probe of that exact site
  /// label, once per run (the controller's fired state lives in the
  /// segment, so the respawn does not re-fire). The harness's own probe
  /// sites "h.enter.brk" and "h.exit.brk" land a kill inside the
  /// CS-bracket commit windows; "cs.op" lands one inside the CS.
  std::string site_kill_site;
  int site_kill_pid = 0;
  uint64_t site_kill_nth = 1;

  /// Recovery storm (Thm 5.17 / §7.1 regime): when `storm_kills` > 0, a
  /// RecoveryStormCrash controller re-kills `storm_victim` (or, when
  /// negative, *every* pid — the system-wide variant that batch-kills
  /// mid-recovery) at its `storm_nth_op`-th instrumented op inside
  /// Recover(), for its first `storm_kills` consecutive recovery
  /// attempts.
  int storm_victim = 0;
  uint64_t storm_kills = 0;
  uint64_t storm_nth_op = 1;

  /// Mirror per-process RMR counters into the segment (kill-survivable
  /// accounting + per-event snapshots). Off restores the PR 2 behaviour
  /// of not measuring RMRs under real crashes.
  bool mirror_counters = true;

  /// Per-child liveness watchdog: a child whose progress signal (passage
  /// completions + attempts + mirrored op count) is flat for
  /// `hang_seconds` is dumped (phase, last probe site, owner word, log
  /// tail), SIGKILLed, and respawned under capped exponential backoff —
  /// at most `max_hang_respawns` times before the pid is abandoned so
  /// the harness still terminates with a verdict. 0 disables.
  double hang_seconds = 10.0;
  int max_hang_respawns = 3;

  /// Spin→park budget override for this run: microseconds a waiter
  /// spins/yields before parking on a futex in the segment (see
  /// rme::SpinConfig). Negative keeps the process-wide default; 0 parks
  /// at the first slow-path iteration — the park/unpark stress regime.
  int32_t spin_budget_us = -1;

  double watchdog_seconds = 30.0;  ///< global no-progress abort (backstop)
  size_t segment_bytes = 64u << 20;
  std::string shm_name;  ///< non-empty: named POSIX segment, else anonymous
};

/// One bin of per-passage RMR statistics, keyed by OverlapBucket(F)
/// where F = SIGKILLs whose kill event landed inside the passage's
/// super-passage (between its kReqStart and kReqDone tickets).
struct ForkRmrBin {
  uint64_t passages = 0;
  uint64_t ops_sum = 0;
  uint64_t cc_sum = 0;
  uint64_t dsm_sum = 0;
  uint64_t cc_max = 0;
  uint64_t dsm_max = 0;
};

struct ForkCrashResult {
  uint64_t completed_passages = 0;
  uint64_t total_attempts = 0;

  uint64_t kills = 0;         ///< SIGKILL deaths observed (== respawns)
  uint64_t child_kills = 0;   ///< of which child-side (site-precise)
  uint64_t parent_kills = 0;  ///< of which parent-side independent
  uint64_t batch_events = 0;  ///< whole-batch kill events issued
  uint64_t unsafe_kills = 0;  ///< kills at a sensitive site (child-side
                              ///< classified exactly; parent-side counted
                              ///< as unsafe, conservatively)

  /// Every kill classified by the victim's published phase word, frozen
  /// at death (index = shm::PidPhase). Storm kills land in kRecovering.
  std::array<uint64_t, shm::kNumPidPhases> kills_by_phase{};
  /// Kills delivered by the RecoveryStormCrash controller (subset of
  /// child_kills; zero when no storm is configured).
  uint64_t storm_kills = 0;

  // Per-child liveness watchdog.
  uint64_t hangs = 0;            ///< hang detections (dump + SIGKILL each)
  uint64_t watchdog_kills = 0;   ///< watchdog SIGKILLs confirmed at reap
  uint64_t hung_abandoned = 0;   ///< pids given up after max_hang_respawns

  /// Deepest lock level any pid ever published (BaLock::LastPathDepth;
  /// 0 for locks without levels). The storm report asserts
  /// kills >= max_ba_level*(max_ba_level-1)/2 — Thm 5.17.
  int max_ba_level = 0;

  /// Per-pid progress + starvation verdicts (ScanLog; always populated).
  /// `max_passage_ticket_span` is the super-passage latency in event-log
  /// ticket time: log slots between the passage's kReqStart and kReqDone,
  /// i.e. how much global progress the pid had to watch go by. The gate:
  /// a crash storm against one pid must not starve the others unnoticed.
  struct PidProgress {
    uint64_t done = 0;
    uint64_t attempts = 0;
    uint64_t incarnations = 0;  ///< 1 + times this pid was respawned
    uint64_t max_attempts_per_passage = 0;
    uint64_t max_passage_ticket_span = 0;
    uint64_t max_level = 0;
  };
  std::vector<PidProgress> per_pid;

  // Post-hoc log verdicts.
  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  uint64_t admissible_overlaps = 0;  ///< weak locks: overlap inside an
                                     ///< active consequence interval
  uint64_t responsiveness_deficits = 0;
  int max_concurrent_cs = 0;
  /// Live ownership-word anomalies (cross-check; includes admissible
  /// weak-lock overlaps, so nonzero here is not by itself a failure).
  uint64_t cs_overlap_events = 0;

  // Kill-survivable RMR accounting (empty / zero when mirroring is off).
  /// Per-passage RMR conditioned on overlapping kills — the fork-mode
  /// counterpart of RunResult::by_overlap (same OverlapBucket keys).
  std::map<int, ForkRmrBin> rmr_by_overlap;
  /// Final segment-resident per-pid counters (cumulative across every
  /// respawn; they survived each SIGKILL by construction).
  std::vector<OpCounters> pid_counters;
  /// kCrashNoted events whose corpse held no logged-CS holder bit. The
  /// pre-fix bracket windows produced these; the cs_ticket discipline
  /// must keep this at zero.
  uint64_t phantom_crash_notes = 0;
  /// Counter snapshots that went backwards — per-pid across events in
  /// ticket order, or a segment slot behind the victim's last committed
  /// event at reap time. Must be zero.
  uint64_t counter_regressions = 0;
  /// Max ops between a SIGKILLed child's segment-resident counters and
  /// its last committed event snapshot, over all kills: the work done
  /// since the last event that still survived the kill (the loss bound
  /// is the one in-flight op *past* the mirror, not past an event).
  uint64_t max_kill_ops_gap = 0;

  uint64_t log_events = 0;
  bool log_overflow = false;
  bool watchdog_fired = false;
  uint64_t child_errors = 0;  ///< children that exited abnormally (not
                              ///< by our SIGKILL) — harness bug signal
  double wall_seconds = 0.0;
  size_t segment_bytes_used = 0;
  std::string lock_stats;
};

/// Builds `lock_name` for cfg.num_procs processes inside a fresh shared
/// segment, runs the fork workload, validates the log, and returns the
/// verdicts. Aborts (RME_CHECK) on configuration errors, including locks
/// whose SupportsSharedPlacement() is false.
ForkCrashResult RunForkCrashWorkload(const std::string& lock_name,
                                     const ForkCrashConfig& cfg);

}  // namespace rme
