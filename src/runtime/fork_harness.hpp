// Real-process crash harness: the out-of-process counterpart of
// runtime/harness.hpp.
//
// The thread harness simulates a crash as an exception; here a crash is
// a SIGKILL. The parent places the lock's entire recoverable state in a
// POSIX shared-memory segment (shm/shm_segment.hpp), forks one child per
// simulated process, and injects failures two ways:
//
//  - child-side: a SigkillCrash controller (shared PRNG/budget state in
//    the segment) raises SIGKILL at an instrumented shared-memory
//    operation — site-precise, like the in-process injector, but the
//    process genuinely dies: no unwinding, no destructors, private state
//    (registers, stack, heap) is simply gone;
//  - parent-side: asynchronous kills at randomized wall-clock points,
//    independently or as whole-batch kills (several pids SIGKILLed
//    back-to-back — the paper's §7.1 batch-failure regime, including
//    system-wide batches of all n).
//
// Each victim is respawned by a fresh fork from the (never-bound,
// single-threaded) parent and re-enters the Algorithm-1 loop, where
// Recover() runs against the surviving segment. Mutual exclusion and
// bounded CS reentry are validated from a ticketed event log plus a live
// CS-ownership word in the segment (shm/shm_layout.hpp), with weak-lock
// overlaps checked for admissibility against failure consequence
// intervals reconstructed from kill events.
//
// What this harness measures: crash-recovery *correctness* under real
// process death. What it does not: RMR counts — per-passage accounting
// lives in each child's private counters and dies with it, so RMR
// statistics remain the in-process harness's job (EXPERIMENTS.md).
//
// Must be called from a single-threaded parent (it forks and the
// children continue without exec; a multithreaded parent would leak
// locked allocator/runtime internals into the children).
#pragma once

#include <cstdint>
#include <string>

namespace rme {

struct ForkCrashConfig {
  int num_procs = 4;
  uint64_t passages_per_proc = 100;  ///< satisfied requests per process
  uint64_t seed = 1;
  int cs_shared_ops = 2;    ///< instrumented ops inside the CS
  int ncs_local_work = 32;  ///< uninstrumented local work between requests

  /// Child-side site-precise kills: each shared op kills the calling
  /// process with probability `self_kill_per_op`, up to `self_kill_budget`
  /// kills across the run (0 disables child-side injection).
  double self_kill_per_op = 0.0;
  int64_t self_kill_budget = 0;

  /// Parent-side asynchronous kills: `independent_kills` single-victim
  /// kills plus `batch_kill_events` whole-batch kills of `batch_size`
  /// random distinct victims each (batch_size <= 0 means all n — the
  /// system-wide crash regime). One kill event is issued roughly every
  /// `kill_interval_ms` until the budgets are spent.
  uint64_t independent_kills = 0;
  uint64_t batch_kill_events = 0;
  int batch_size = 0;
  double kill_interval_ms = 2.0;

  double watchdog_seconds = 30.0;  ///< no-progress abort
  size_t segment_bytes = 64u << 20;
  std::string shm_name;  ///< non-empty: named POSIX segment, else anonymous
};

struct ForkCrashResult {
  uint64_t completed_passages = 0;
  uint64_t total_attempts = 0;

  uint64_t kills = 0;         ///< SIGKILL deaths observed (== respawns)
  uint64_t child_kills = 0;   ///< of which child-side (site-precise)
  uint64_t parent_kills = 0;  ///< of which parent-side independent
  uint64_t batch_events = 0;  ///< whole-batch kill events issued
  uint64_t unsafe_kills = 0;  ///< kills at a sensitive site (child-side
                              ///< classified exactly; parent-side counted
                              ///< as unsafe, conservatively)

  // Post-hoc log verdicts.
  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  uint64_t admissible_overlaps = 0;  ///< weak locks: overlap inside an
                                     ///< active consequence interval
  uint64_t responsiveness_deficits = 0;
  int max_concurrent_cs = 0;
  /// Live ownership-word anomalies (cross-check; includes admissible
  /// weak-lock overlaps, so nonzero here is not by itself a failure).
  uint64_t cs_overlap_events = 0;

  uint64_t log_events = 0;
  bool log_overflow = false;
  bool watchdog_fired = false;
  uint64_t child_errors = 0;  ///< children that exited abnormally (not
                              ///< by our SIGKILL) — harness bug signal
  double wall_seconds = 0.0;
  size_t segment_bytes_used = 0;
  std::string lock_stats;
};

/// Builds `lock_name` for cfg.num_procs processes inside a fresh shared
/// segment, runs the fork workload, validates the log, and returns the
/// verdicts. Aborts (RME_CHECK) on configuration errors, including locks
/// whose SupportsSharedPlacement() is false.
ForkCrashResult RunForkCrashWorkload(const std::string& lock_name,
                                     const ForkCrashConfig& cfg);

}  // namespace rme
