// Sharded recoverable KV service under real-process crashes: the
// production-shaped workload of ROADMAP item 2, built from the pieces
// the earlier PRs proved out one at a time.
//
//   - millions of (value, version, balance) cells striped over a
//     runtime/striped_table of registry locks (any family per run);
//   - a fork-per-pid harness in the fork_harness mold: SIGKILL is the
//     only failure, respawns re-enter the loop against the surviving
//     segment, per-stripe event-log verdicts (ME/BCSR, admissible
//     overlaps for weak families) plus live owner tripwires;
//   - ops: reads, single-key puts (kv_store's redo idiom — every stored
//     word a pure function of (txn, pid), so replay is blind and
//     idempotent), and bank_ledger-style multi-key transactions with
//     ordered stripe acquisition and STAGE/PUBLISH intent records —
//     crash mid-transaction and recovery must release-or-complete;
//   - EnterMany passage batching: drawn ops are grouped by stripe and
//     each group runs as ONE passage on families that opt in
//     (locks/lock.hpp), amortizing a queue traversal over the group;
//   - per-process passage-latency reservoirs in the segment, folded in
//     the parent via Percentiles::MergeRaw for p99/p999 under kills.
//
// Post-run audits (parent, quiescent segment):
//   - conservation: transactions move balance between cells and must
//     never create or destroy any (bank_ledger's gate, now cross-stripe);
//   - put integrity: every cell with a nonzero version must hold exactly
//     the value derived from that version tag — a torn put that escaped
//     its CSR replay would break it.
//
// Must be called from a single-threaded parent (forks without exec).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/prng.hpp"
#include "util/stats.hpp"

namespace rme {

/// Max keys a multi-key transaction (or the write set of one batched
/// passage group) may touch: the redo/intent record has this many slots.
inline constexpr int kKvMaxTxnKeys = 4;

/// One drawn operation. Transactions carry nkeys distinct keys; reads
/// and puts use keys[0].
struct KvOp {
  enum Kind : uint32_t { kRead = 0, kPut = 1, kTxn = 2 };
  Kind kind = kRead;
  int nkeys = 1;
  uint64_t keys[kKvMaxTxnKeys] = {};
};

/// Workload generator: returns the next op for `pid`. Must draw all
/// randomness from `rng` (the service seeds one stream per incarnation)
/// and must be safe to call in forked children — capture only pre-fork
/// state. The bench supplies the Zipfian/uniform mixes from
/// bench/bench_common.hpp; tests supply deterministic shapes.
using KvDrawFn = std::function<KvOp(int pid, Prng& rng)>;

struct KvServiceConfig {
  std::string lock_name = "wr";
  int num_procs = 8;
  uint32_t stripes = 64;      ///< power of two
  uint64_t keys = 1u << 20;
  uint64_t ops_per_proc = 2000;
  /// Ops drawn per NCS visit and grouped by stripe: groups run as one
  /// EnterMany passage on families that opt in, and as one passage per
  /// op on the rest (the fallback path). 1 = unbatched.
  int batch_ops = 1;
  uint64_t seed = 1;
  KvDrawFn draw;              ///< required

  /// Event log + post-hoc per-stripe verdict scan. Off for pure perf
  /// runs (the owner tripwires and audits stay on either way).
  bool log_events = true;

  // Parent-side kill scheduling (fork_harness regimes).
  uint64_t independent_kills = 0;
  uint64_t batch_kill_events = 0;
  int batch_size = 0;         ///< <=0: all n (system-wide batch)
  double kill_interval_ms = 2.0;

  // Child-side kills.
  double self_kill_per_op = 0.0;
  int64_t self_kill_budget = 0;
  /// Site-pinned kill: sites "kv.hold1".."kv.hold4" land after the
  /// pid's 1st..4th held stripe of a passage — the crash windows the
  /// ordered-acquisition test sweeps.
  std::string site_kill_site;
  int site_kill_pid = 0;
  uint64_t site_kill_nth = 1;
  uint64_t site_kill_count = 1;
  /// Recovery storm (Thm 5.17 regime), as in ForkCrashConfig.
  int storm_victim = 0;
  uint64_t storm_kills = 0;
  uint64_t storm_nth_op = 1;

  int32_t spin_budget_us = -1;
  double hang_seconds = 10.0;
  int max_hang_respawns = 3;
  double watchdog_seconds = 30.0;
  size_t segment_bytes = 0;   ///< 0 = auto-size from stripes/keys/log
  size_t reservoir_capacity = 8192;  ///< per-pid latency samples
};

struct KvServiceResult {
  // Workload accounting.
  uint64_t ops_done = 0;
  uint64_t reads = 0, puts = 0, txns = 0;
  uint64_t passages = 0;
  uint64_t batched_passages = 0;  ///< passages entered via EnterMany
  double wall_seconds = 0.0;
  double ops_per_second = 0.0;

  // Tail latency (microseconds per passage), merged across pids.
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0, max_us = 0.0;
  uint64_t latency_observed = 0;
  size_t latency_samples = 0;

  // Kill bookkeeping.
  uint64_t kills = 0;
  uint64_t storm_kills = 0;
  uint64_t hangs = 0, hung_abandoned = 0;
  uint64_t child_errors = 0;
  bool watchdog_fired = false;

  // Verdicts (log_events runs).
  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  uint64_t admissible_overlaps = 0;
  uint64_t crash_notes = 0;          ///< died-in-CS events recovered
  uint64_t phantom_crash_notes = 0;
  uint64_t cs_overlap_events = 0;    ///< live tripwire (includes admissible)
  uint64_t max_attempts_per_passage = 0;
  uint64_t starved_pids = 0;         ///< quota unmet, not abandoned
  bool log_overflow = false;
  uint64_t log_events = 0;

  // Audits.
  uint64_t conservation_delta = 0;   ///< |final - initial| total balance
  uint64_t put_integrity_mismatches = 0;
  /// True when the audits are binding: no abandoned pid left a redo
  /// permanently in flight and (for weak families) no admissible overlap
  /// could explain a mismatch.
  bool audits_binding = true;

  uint64_t max_incarnations = 0;
  size_t segment_bytes_used = 0;
  uint32_t ready_stripes = 0;
};

/// Runs the service: builds the striped table + cells in a fresh shared
/// segment, forks cfg.num_procs children through the kill schedule,
/// scans the log, audits the table, and merges the latency reservoirs.
KvServiceResult RunKvService(const KvServiceConfig& cfg);

/// The value a put with version tag `tag` must store — shared with the
/// audit and with tests (SplitMix64 finalizer).
uint64_t KvValueForTag(uint64_t tag);

}  // namespace rme
