// rme-lockd: a persistent named-lock service over one named, versioned
// shm segment.
//
// The fork harness (runtime/fork_harness) is born and dies with a single
// driver run: its segment is anonymous, its pid set fixed. This layer
// decouples lock lifetime from every process that uses the locks:
//
//  - One *named* segment (shm/shm_segment, NamedMode) owns a sharded
//    name -> lock directory: open-addressed DirEntry headers in the bump
//    arena, each Ready entry carrying a RecoverableLock built via
//    PlacementScope, so the lock's whole state tree lives in the segment.
//  - Clients do not get compile-time pids. They lease a ClientSlot from
//    a fixed table of `num_slots` slots (slots, not clients, are the
//    lock-level pids; any number of client processes churn through them
//    over time). The lease handshake is a CAS on a packed state word
//    [epoch:24 | os_pid:32 | state:8] plus an incarnation bump — the
//    PR 5 PidPhase/incarnation machinery generalized past a fixed
//    kMaxProcs process set.
//  - A client SIGKILL leaves its slot word Live with a dead os_pid. The
//    daemon (or any other client, between its own passages) fences the
//    slot Dead -> Recovering(actor) and runs a *full passage* on behalf
//    of the dead slot — Recover(s); Enter(s); Exit(s) — because a holder
//    that died inside the CS still owns the lock at lock level; Recover
//    alone releases nothing.
//  - A daemon SIGKILL leaves the segment intact. The next daemon
//    validates the magic/version header, CAS-steals the daemon word from
//    the dead incumbent, and sweeps every husk the crash could have left:
//    dead slots (forked recovery helpers, one per slot, so one wedged
//    recovery never serializes the rest), mid-flight directory inserts
//    (completed if the lock was already published, rolled back to a
//    tombstone otherwise), and stripe locks held by the dead.
//
// Every transition of slot words, entry words, stripe words and the
// daemon word is a single CAS on a packed word whose epoch bumps on each
// ownership change, so a stale actor's delayed CAS can never resurrect a
// state someone else already moved past.
//
// Address discipline: DirEntry::lock holds a raw pointer (with a vtable)
// into the segment, valid only for processes that either forked from the
// creator or remapped the segment at its recorded creator base *in the
// same executable image* (ServiceControl::text_anchor gates this). All
// service bookkeeping pointers are stored as segment offsets, so a
// foreign tool can still read status from any mapping address.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "crash/crash.hpp"
#include "rmr/memory_model.hpp"
#include "shm/shm_layout.hpp"
#include "shm/shm_segment.hpp"

namespace rme {
class RecoverableLock;
}

namespace rme::lockd {

inline constexpr uint64_t kServiceMagic = 0x524d454c4f434b44ull;  // "RMELOCKD"
inline constexpr uint32_t kServiceVersion = 1;

/// Longest lock name the directory stores (entries embed the bytes so a
/// lookup never chases a pointer that could dangle across reattach).
inline constexpr size_t kMaxLockName = 47;

// ---------------------------------------------------------------------------
// Packed state words: [epoch:24 | os_pid:32 | state:8]. One CAS moves
// ownership and bumps the epoch, so a delayed CAS from a stale actor
// (fenced recoverer, orphaned daemon helper) always fails.
// ---------------------------------------------------------------------------

constexpr uint64_t PackWord(uint64_t epoch, uint32_t os_pid, uint32_t state) {
  return ((epoch & 0xFFFFFFull) << 40) | (uint64_t{os_pid} << 8) |
         (state & 0xFFull);
}
constexpr uint32_t WordState(uint64_t w) { return static_cast<uint32_t>(w & 0xFF); }
constexpr uint32_t WordPid(uint64_t w) {
  return static_cast<uint32_t>((w >> 8) & 0xFFFFFFFFull);
}
constexpr uint64_t WordEpoch(uint64_t w) { return w >> 40; }
/// The same word with the epoch bumped and a new owner/state.
constexpr uint64_t NextWord(uint64_t prev, uint32_t os_pid, uint32_t state) {
  return PackWord(WordEpoch(prev) + 1, os_pid, state);
}

enum SlotState : uint32_t {
  kSlotFree = 0,
  kSlotHandshaking,  ///< claimed, incarnation not yet bumped/published
  kSlotLive,         ///< leased by the recorded os_pid
  kSlotDead,         ///< owner confirmed dead; awaiting recovery
  kSlotRecovering,   ///< an actor (recorded os_pid) is recovering it
};

enum EntryState : uint32_t {
  kEntryEmpty = 0,
  kEntryInserting,  ///< claimed by the recorded os_pid; lock being built
  kEntryReady,      ///< name + lock published; permanent
  kEntryTombstone,  ///< rolled-back insert; reusable, keeps probe chains
};

enum StripeState : uint32_t { kStripeFree = 0, kStripeHeld };

enum DaemonState : uint32_t {
  kDaemonNone = 0,
  kDaemonStarting,  ///< takeover sweep in progress
  kDaemonRunning,
};

const char* SlotStateName(uint32_t s);
const char* EntryStateName(uint32_t s);

// ---------------------------------------------------------------------------
// Segment-resident structures. All are built by Service::Create inside
// the segment; a reattaching daemon finds them via Segment::root().
// ---------------------------------------------------------------------------

/// One leaseable lock-level pid. The word is the lease/liveness state;
/// the rest is the per-slot crash-forensics surface the fork harness
/// keeps in PerPidControl, owned by whichever process currently acts as
/// this slot (lease holder or fenced recoverer — never both, by the word).
struct alignas(kCacheLineBytes) ClientSlot {
  std::atomic<uint64_t> word{0};
  /// Bumped on every successful lease. A respawned client that cached
  /// (slot, incarnation) detects a stale lease instead of impersonating
  /// the slot's next tenant.
  std::atomic<uint64_t> incarnation{0};
  std::atomic<uint64_t> heartbeat{0};  ///< diagnostic; bumped per passage
  std::atomic<uint64_t> acquires{0};   ///< completed passages by this slot
  /// Directory entry index + 1 of the passage in flight (0 = none). Set
  /// (release) before Recover, cleared after Exit, so a recoverer knows
  /// which lock a corpse may still hold.
  std::atomic<uint32_t> active_entry{0};
  std::atomic<uint32_t> phase{0};  ///< shm::PidPhase, frozen by SIGKILL
  /// Logged-CS bracket ticket (shm::EncodeCsTicket over the *lockd* log):
  /// nonzero while between reserve and commit of a bracket event; the
  /// recoverer decides died-in-logged-CS from it exactly like the fork
  /// harness does.
  std::atomic<uint64_t> cs_ticket{0};
  std::atomic<const char*> last_probe_site{""};  ///< hang-dump diagnostic
};

/// One directory bucket. Ready entries are permanent (the arena never
/// frees); tombstones keep probe chains intact — rolling an aborted
/// insert back to Empty would truncate chains that probed past it and
/// let the same name be inserted twice (two locks for one name = ME
/// violation by construction).
struct alignas(kCacheLineBytes) DirEntry {
  std::atomic<uint64_t> word{0};       ///< [epoch | inserter os_pid | EntryState]
  std::atomic<uint64_t> name_hash{0};  ///< FNV-1a, never 0 once written
  char name[kMaxLockName + 1] = {};
  /// Published (release) only after the lock is fully constructed:
  /// Inserting + null lock  => roll back to tombstone,
  /// Inserting + lock       => finish the CAS to Ready on the dead
  /// inserter's behalf. Tombstoning clears it first, so a reused cell
  /// can never expose a stale pointer as "construction finished".
  std::atomic<RecoverableLock*> lock{nullptr};
  std::atomic<uint32_t> owner{0};  ///< live CS tripwire: slot + 1, 0 = free
  std::atomic<uint32_t> cs_overlaps{0};
  std::atomic<uint64_t> acquisitions{0};
  rmr::Atomic<uint64_t> cs_scratch;  ///< instrumented CS working set
};

struct alignas(kCacheLineBytes) Stripe {
  std::atomic<uint64_t> word{0};  ///< [epoch | holder os_pid | StripeState]
};

/// Lockd event-log record (per-entry ME/BCSR evidence). Same commit
/// discipline as shm::ShmEvent: payload first, `kind` last with release.
struct LockdEvent {
  std::atomic<uint32_t> kind{0};  ///< shm::EventKind
  uint32_t slot = 0;
  uint32_t entry = 0;
  uint32_t recovery = 0;  ///< 1 = passage run on a dead slot's behalf
  uint64_t passage = 0;
};

/// The service control block, published as the segment root. Arrays are
/// stored as segment offsets (not pointers) so a status tool mapped at a
/// foreign address can still walk them.
struct ServiceControl {
  uint64_t magic = kServiceMagic;
  uint32_t version = kServiceVersion;
  uint32_t num_slots = 0;
  uint32_t dir_capacity = 0;  ///< power of two
  uint32_t num_stripes = 0;   ///< power of two
  char lock_kind[32] = {};
  /// Address of a function in this executable image as the creator saw
  /// it. Lock pointers (vtables!) are only usable by processes whose
  /// image matches — forks of the creator, or the same binary+slide
  /// reattaching. Everyone else gets read-only status access.
  uint64_t text_anchor = 0;
  uint64_t self_off = 0;  ///< offset of this block from the segment base
  uint64_t slots_off = 0, dir_off = 0, stripes_off = 0, log_off = 0;
  uint64_t log_cap = 0;

  std::atomic<uint64_t> daemon_word{0};  ///< [epoch | os_pid | DaemonState]
  std::atomic<uint64_t> daemon_incarnation{0};
  std::atomic<uint64_t> daemon_heartbeat{0};
  std::atomic<uint64_t> daemon_takeovers{0};
  std::atomic<const char*> daemon_probe_site{""};
  std::atomic<uint32_t> stop{0};   ///< asks the daemon to drain and exit
  std::atomic<uint32_t> ready{0};  ///< daemon finished its takeover sweep

  std::atomic<uint64_t> recovered_slots{0};
  std::atomic<uint64_t> rolled_back_inserts{0};
  std::atomic<uint64_t> assisted_inserts{0};  ///< finished for a dead inserter
  std::atomic<uint64_t> cs_overlap_events{0};
  std::atomic<uint64_t> lease_grants{0};

  std::atomic<uint64_t> log_next{0};
  std::atomic<uint32_t> log_overflow{0};

  /// Cross-process futex parking (shared waiter counts); the driver
  /// installs it before the first fork.
  rmr_detail::ParkLot park_lot;
  /// Child-side SIGKILL attribution (crash/crash.hpp); index = the slot
  /// (daemon uses index num_slots). Sized kMaxProcs like every consumer.
  SigkillCrash::PidSlot kill_slots[kMaxProcs];
  /// Segment-resident crash-controller chain consulted by probes and by
  /// every instrumented op of leased clients. Null = no injection.
  std::atomic<CrashController*> crash{nullptr};

  // Driver bookkeeping, indexed by *client index* (not slot): progress
  // survives the client's death and seeds its respawn.
  std::atomic<uint64_t> client_done[kMaxProcs] = {};
  std::atomic<uint64_t> client_attempts[kMaxProcs] = {};
  std::atomic<uint64_t> client_incarnation[kMaxProcs] = {};
  std::atomic<uint32_t> client_finished[kMaxProcs] = {};
};

inline char* SegmentBaseOf(const ServiceControl* c) {
  return const_cast<char*>(reinterpret_cast<const char*>(c)) - c->self_off;
}
inline ClientSlot* Slots(const ServiceControl* c) {
  return reinterpret_cast<ClientSlot*>(SegmentBaseOf(c) + c->slots_off);
}
inline DirEntry* Dir(const ServiceControl* c) {
  return reinterpret_cast<DirEntry*>(SegmentBaseOf(c) + c->dir_off);
}
inline Stripe* Stripes(const ServiceControl* c) {
  return reinterpret_cast<Stripe*>(SegmentBaseOf(c) + c->stripes_off);
}
inline LockdEvent* Log(const ServiceControl* c) {
  return reinterpret_cast<LockdEvent*>(SegmentBaseOf(c) + c->log_off);
}

/// FNV-1a 64 over the name bytes, pinched away from 0 (0 = "not yet
/// written" in DirEntry::name_hash).
uint64_t HashLockName(const char* name);

/// kill(pid, 0) liveness: false only on ESRCH. Callers must ensure
/// corpses are reaped (a zombie is "alive" to kill()); both the driver
/// parent and the daemon reap their children promptly.
bool ProcessAlive(uint32_t os_pid);

// ---------------------------------------------------------------------------
// Service handle: owns this process's mapping of the segment.
// ---------------------------------------------------------------------------

struct ServiceConfig {
  std::string shm_name = "rme-lockd";
  std::string lock_kind = "ba";  ///< must be strongly recoverable
  int num_slots = 8;             ///< lock-level pids; < kMaxProcs
  uint32_t dir_capacity = 64;    ///< rounded up to a power of two
  uint64_t log_cap = 1u << 16;
  size_t segment_bytes = 64u << 20;
};

class Service {
 public:
  /// Creates a fresh named segment + directory (replacing a stale entry,
  /// refusing a foreign one — Segment::NamedMode::kCreateFresh).
  static std::unique_ptr<Service> Create(const ServiceConfig& cfg);
  /// Attaches to an existing valid segment; aborts with a diagnostic if
  /// the name is absent/stale/foreign.
  static std::unique_ptr<Service> Attach(const std::string& shm_name);
  /// Attach when a valid segment exists, else create.
  static std::unique_ptr<Service> AttachOrCreate(const ServiceConfig& cfg);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  ServiceControl* ctl() const { return ctl_; }
  shm::Segment& segment() { return *seg_; }
  bool attached() const { return seg_->attached(); }
  const std::string& shm_name() const { return shm_name_; }
  /// Keep (true) or unlink (false, default) the /dev/shm entry when this
  /// handle dies. Persistence across runs = set_persist(true).
  void set_persist(bool persist) { seg_->set_unlink_on_destroy(!persist); }
  /// True iff DirEntry lock pointers are usable from this process
  /// (text_anchor matches — same image, same slide or a fork).
  bool locks_usable() const;

 private:
  Service() = default;
  std::unique_ptr<shm::Segment> seg_;
  ServiceControl* ctl_ = nullptr;
  std::string shm_name_;
};

// ---------------------------------------------------------------------------
// Client operations. All take the slot explicitly — a process bound as
// slot r can run a recovery passage as dead slot s.
// ---------------------------------------------------------------------------

/// Claims a Free slot: CAS Free -> Handshaking(my os_pid), incarnation
/// bump, probe "ld.lease.brk" (the mid-handshake kill window), CAS ->
/// Live. Returns the slot, or -1 if no slot is currently Free (callers
/// back off, optionally assisting recovery of Dead slots first).
int AcquireLease(ServiceControl* ctl);

/// CAS Live(me) -> Free. No-op if the slot was fenced away (we were
/// presumed dead); the fencer owns it now.
void ReleaseLease(ServiceControl* ctl, int slot);

/// True while `slot`'s word is still Live under this process's os_pid
/// with the given incarnation.
bool LeaseValid(const ServiceControl* ctl, int slot, uint64_t incarnation);

/// Looks up `name`, inserting it (stripe-serialized, PlacementScope-built
/// lock) if absent. Returns the entry index. Aborts with a diagnostic on
/// a full directory or an over-long name. `slot` is the acting pid for
/// probe sites ("ld.insert.brk" before the lock build, "ld.publish.brk"
/// between lock publication and the Ready transition).
int GetOrInsertEntry(ServiceControl* ctl, shm::Segment* seg, const char* name,
                     int slot);

/// One full passage of `slot` on entry `entry`: Recover/Enter, logged-CS
/// bracket (reserve -> cs_ticket -> probe -> commit), `cs_ops` fetch-adds
/// on the entry's instrumented scratch word, bracketed exit, Exit.
void RunPassage(ServiceControl* ctl, int slot, int entry, int cs_ops);

/// Marks every slot whose word carries `os_pid` (Live, Handshaking, or
/// as a Recovering actor) as Dead. The driver calls it after reaping a
/// SIGKILLed client; the daemon's sweep does the same via ESRCH probes.
/// Returns the number of slots marked.
int MarkDeadByOsPid(ServiceControl* ctl, uint32_t os_pid);

/// Recovery body for a slot the caller has already fenced to
/// Recovering(actor): cs_ticket forensics (kCrashNoted + owner-word
/// release if the corpse died inside the logged CS), then — if a passage
/// was in flight — a full logged passage on the dead slot's behalf.
/// Idempotent: a re-fenced retry after a dead recoverer redoes it safely.
void RecoverSlotBody(ServiceControl* ctl, int slot);

/// Fences at most one Dead slot to Recovering(my os_pid), runs
/// RecoverSlotBody, and frees it. Clients call this between passages
/// ("the next waiter runs Recover()"), so recovery does not depend on
/// the daemon being alive. Returns true if a slot was recovered.
bool AssistRecoverOne(ServiceControl* ctl);

/// Resolves an Inserting entry whose inserter is dead: completes the
/// Ready transition if the lock was published, else tombstones. Returns
/// true if the entry is no longer Inserting (by us or anyone).
bool ResolveInsertingEntry(ServiceControl* ctl, uint32_t idx);

// ---------------------------------------------------------------------------
// Daemon.
// ---------------------------------------------------------------------------

struct DaemonConfig {
  /// Sweep cadence. Small enough that a dead client's lock is released
  /// well inside a waiter's park timeout even with no assisting clients.
  uint32_t sweep_interval_us = 300;
  /// Re-validate the named /dev/shm entry's header on takeover (the
  /// daemon-death reattach contract). Disabled for anonymous segments.
  bool validate_named = true;
};

/// Takes over (or becomes) the daemon for the service and runs the sweep
/// loop until ctl->stop. Recovery of dead slots is delegated to forked
/// helper processes (one per slot) so one recovery blocked behind
/// another dead holder never serializes the rest. Returns 0 on a clean
/// stop, 1 if a live daemon already serves the segment.
int RunDaemon(Service& svc, const DaemonConfig& dc = {});

// Lockd event log (same reserve/commit discipline as shm_layout's).

/// Reserves a log slot; ~0 means the log is full (overflow flagged).
uint64_t ReserveLdEvent(ServiceControl* ctl);
void CommitLdEvent(ServiceControl* ctl, uint64_t idx, shm::EventKind kind,
                   int slot, uint32_t entry, uint64_t passage, bool recovery);
void AppendLdEvent(ServiceControl* ctl, shm::EventKind kind, int slot,
                   uint32_t entry, uint64_t passage, bool recovery);

}  // namespace rme::lockd
