// Scenario helpers shared by the benches: build a lock by name, run it
// under one of the paper's three failure regimes (none / F budgeted
// failures / sustained failures) and return the harness result.
#pragma once

#include <memory>
#include <string>

#include "runtime/harness.hpp"

namespace rme {

struct Scenario {
  enum class Kind {
    kNoFailures,   ///< no crash injection
    kBudgeted,     ///< random crashes until `budget` have fired
    kSustained,    ///< random crashes for the whole run (unbounded)
  };
  Kind kind = Kind::kNoFailures;
  double per_op_probability = 0.0;
  int64_t budget = 0;

  static Scenario None() { return {}; }
  static Scenario Budgeted(int64_t f, double p = 0.002) {
    return {Kind::kBudgeted, p, f};
  }
  static Scenario Sustained(double p) { return {Kind::kSustained, p, -1}; }

  std::string Label() const;
};

/// Builds the named lock and runs the workload under the scenario.
RunResult RunScenario(const std::string& lock_name, const WorkloadConfig& cfg,
                      const Scenario& scenario);

/// Same, for an existing lock instance.
RunResult RunScenario(RecoverableLock& lock, const WorkloadConfig& cfg,
                      const Scenario& scenario);

}  // namespace rme
