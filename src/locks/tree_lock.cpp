#include "locks/tree_lock.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rme {

namespace {
// ceil(log_k(n)), at least 1.
int DepthFor(int n, int k) {
  int depth = 1;
  long long span = k;
  while (span < n) {
    span *= k;
    ++depth;
  }
  return depth;
}

// k^e as int (small exponents only).
long long IPow(int k, int e) {
  long long r = 1;
  for (int i = 0; i < e; ++i) r *= k;
  return r;
}
}  // namespace

TreeLock::TreeLock(int num_procs, int arity, std::string label)
    : n_(num_procs), k_(arity), label_(std::move(label)) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  RME_CHECK(arity >= 2 && arity <= kMaxProcs);
  depth_ = DepthFor(n_, k_);
  nodes_.resize(static_cast<size_t>(depth_));
  for (int level = 0; level < depth_; ++level) {
    const long long group = IPow(k_, level + 1);
    const int count = static_cast<int>((n_ + group - 1) / group);
    nodes_[level].reserve(static_cast<size_t>(count));
    for (int idx = 0; idx < count; ++idx) {
      nodes_[level].push_back(std::make_unique<PortLock>(
          k_, n_, label_ + ".L" + std::to_string(level) + "." +
                      std::to_string(idx)));
    }
  }
}

std::string TreeLock::name() const {
  return "tree-k" + std::to_string(k_);
}

PortLock& TreeLock::NodeAt(int level, int pid) {
  const long long group = IPow(k_, level + 1);
  return *nodes_[static_cast<size_t>(level)]
                [static_cast<size_t>(pid / group)];
}

int TreeLock::PortAt(int level, int pid) const {
  return static_cast<int>((pid / IPow(k_, level)) % k_);
}

void TreeLock::Recover(int /*pid*/) {
  // Per-node recovery runs just before each node's Enter (mirroring the
  // framework's convention, Algorithm 3): nothing to do globally.
}

void TreeLock::Enter(int pid) {
  for (int level = 0; level < depth_; ++level) {
    PortLock& node = NodeAt(level, pid);
    const int port = PortAt(level, pid);
    node.Recover(port, pid);
    node.Enter(port, pid);
  }
}

void TreeLock::Exit(int pid) {
  // Root-first: once a node is released, contenders it admits are from
  // other subtrees of that node and never reach the ports we still hold.
  for (int level = depth_ - 1; level >= 0; --level) {
    NodeAt(level, pid).Exit(PortAt(level, pid), pid);
  }
}

int KPortTreeLock::AutoArity(int num_procs) {
  int k = 2;
  while ((1 << k) < num_procs) ++k;  // k = ceil(log2 n), min 2
  return k;
}

}  // namespace rme
