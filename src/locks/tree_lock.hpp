// Arbitration-tree locks: n processes are arranged at the leaves of a
// k-ary tree whose every node is a strongly recoverable k-port PortLock;
// a process acquires the port corresponding to the child subtree it
// arrives from, level by level, until it holds the root. Holding the
// child's lock makes it the unique representative of that port, so each
// port sees at most one process at a time — PortLock's contract.
//
//  - TournamentLock (k = 2) is the classic recoverable tournament in the
//    Golab–Ramaraju / Jayanti–Joshi O(log n) class: bounded,
//    non-adaptive, strongly recoverable.
//  - KPortTreeLock (k ~ log2 n) has depth ~ log n / log log n with O(1)
//    uncontended work per node: the stand-in for the Jayanti–Jayanti–
//    Joshi base lock (DESIGN.md substitution #3).
//
// Recoverability: every per-node acquire/release is idempotent through
// PortLock's per-port state machine, so Enter/Exit simply re-walk the
// whole path after a crash; already-held nodes fall through in O(1) and
// a partially exited node resumes. Exits run root-first so a subtree
// peer can never reach a port we still occupy.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "locks/lock.hpp"
#include "locks/port_lock.hpp"

namespace rme {

class TreeLock : public RecoverableLock {
 public:
  /// `arity` >= 2. The tree has ceil(log_arity(n)) levels (min 1).
  TreeLock(int num_procs, int arity, std::string label = "tree");

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override;
  /// Batch-hold amortizes the full root-to-leaf traversal, the most
  /// expensive Enter in the zoo — tournament and kport-tree inherit.
  bool SupportsEnterMany() const override { return true; }

  int depth() const { return depth_; }
  int arity() const { return k_; }

 private:
  PortLock& NodeAt(int level, int pid);
  int PortAt(int level, int pid) const;

  int n_;
  int k_;
  int depth_;
  std::string label_;
  /// nodes_[level][index]; level 0 = leaves.
  std::vector<std::vector<std::unique_ptr<PortLock>>> nodes_;
};

/// Binary recoverable tournament: O(log n) RMR in all regimes.
class TournamentLock final : public TreeLock {
 public:
  explicit TournamentLock(int num_procs, std::string label = "tournament")
      : TreeLock(num_procs, 2, std::move(label)) {}
  std::string name() const override { return "tournament"; }
};

/// k-ary tree with k ~ log2(n): ~log n / log log n RMR failure-free.
class KPortTreeLock final : public TreeLock {
 public:
  explicit KPortTreeLock(int num_procs, std::string label = "kport-tree")
      : TreeLock(num_procs, AutoArity(num_procs), std::move(label)) {}
  std::string name() const override { return "kport-tree"; }

  static int AutoArity(int num_procs);
};

}  // namespace rme
