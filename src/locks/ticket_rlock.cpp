#include "locks/ticket_rlock.hpp"

// Header-only wrapper around PortLock; this translation unit anchors the
// class for the library target.
