// PortLock: a k-port strongly recoverable lock with O(1) uncontended RMR
// cost, used as the per-node lock of the k-ary arbitration tree
// (KPortTreeLock — our stand-in for the Jayanti–Jayanti–Joshi base lock,
// see DESIGN.md substitution #3) and, with k = n and port = pid, as the
// Chan–Woelfel-style ticket baseline (TicketRLock).
//
// Each of the k ports is used by at most one process at a time (in the
// tree, a process holds the child node's lock, making it the unique
// representative of that port). Requests are serialized by tickets in a
// bounded ring of k slots:
//
//   slot[t % k] transitions  available(t)  --CAS-->  claimed(t, port)
//                            claimed(t, port) --CAS--> available(t + k)
//
// Ticket claiming is crash-recoverable WITHOUT making FAS-loss a
// sensitive window: a ticket is taken by CAS-ing the claimant's port id
// into the slot, so if the process crashes before persisting its ticket,
// recovery scans the k slots for its port id and adopts the orphan
// (an O(k) cost paid only after a crash — the failure-free path is O(1)).
// `tail`/`head` advances use exact-value CAS and are help-advanced by
// everyone, so they are idempotent and never lost.
//
// Waiting is ticket-FIFO: a process spins on its own per-process wake
// flag (local under DSM); each release wakes exactly its successor.
#pragma once

#include <memory>
#include <string>

#include "rmr/memory_model.hpp"

namespace rme {

class PortLock {
 public:
  /// `num_ports` <= 64; `num_procs` bounds the wake-flag array.
  PortLock(int num_ports, int num_procs, std::string label = "port");

  PortLock(const PortLock&) = delete;
  PortLock& operator=(const PortLock&) = delete;

  void Recover(int port, int pid);
  void Enter(int port, int pid);
  void Exit(int port, int pid);

  int num_ports() const { return k_; }

  /// Test hooks.
  uint64_t HeadTicket() const { return head_.RawLoad(); }
  uint64_t TailTicket() const { return tail_.RawLoad(); }

 private:
  enum State : uint64_t {
    kFree = 0,
    kClaiming = 1,
    kWaiting = 2,
    kInCS = 3,
    kLeaving = 4,
  };
  static constexpr uint64_t kNoTicket = ~0ULL;

  // Slot encoding: bit 8 = "available"; low 8 bits = port+1 when claimed;
  // bits 9.. = ticket.
  static uint64_t Available(uint64_t t) { return (t << 9) | 0x100; }
  static uint64_t Claimed(uint64_t t, int port) {
    return (t << 9) | static_cast<uint64_t>(port + 1);
  }
  static bool IsClaimed(uint64_t v) { return (v & 0x100) == 0; }
  static uint64_t TicketOf(uint64_t v) { return v >> 9; }
  static int PortOf(uint64_t v) { return static_cast<int>(v & 0xff) - 1; }

  uint64_t ClaimTicket(int port);
  void DoExit(int port, int pid);
  void WakeSuccessor(uint64_t released_ticket);

  int k_;
  int n_;
  std::string label_;
  std::string site_;

  rmr::Atomic<uint64_t> head_{0};
  rmr::Atomic<uint64_t> tail_{0};
  std::unique_ptr<rmr::Atomic<uint64_t>[]> slot_;

  rmr::Atomic<uint64_t> pstate_[kMaxProcs];
  rmr::Atomic<uint64_t> pticket_[kMaxProcs];
  rmr::Atomic<uint64_t> claimpid_[kMaxProcs];

  rmr::Atomic<uint64_t> spin_[kMaxProcs];  ///< wake flags, homed per pid
};

}  // namespace rme
