// TicketRLock: a recoverable ticket lock in the spirit of Chan &
// Woelfel's infinite-array lock (Table 1 row: O(1) amortized, O(F) per
// passage, unbounded worst case). See DESIGN.md substitution #6.
//
// Realized as a single PortLock with one port per process: a passage
// CAS-claims the next ticket cell (O(1) uncontended, amortized O(1)
// under contention), waits FIFO on a local spin flag, and recovery after
// a crash in the claim window scans the ring — the per-failure cost that
// yields the O(F) middle column.
#pragma once

#include <string>

#include "locks/lock.hpp"
#include "locks/port_lock.hpp"

namespace rme {

class TicketRLock final : public RecoverableLock {
 public:
  explicit TicketRLock(int num_procs, std::string label = "cw-ticket")
      : inner_(num_procs, num_procs, std::move(label)) {}

  void Recover(int pid) override { inner_.Recover(pid, pid); }
  void Enter(int pid) override { inner_.Enter(pid, pid); }
  void Exit(int pid) override { inner_.Exit(pid, pid); }
  std::string name() const override { return "cw-ticket"; }
  bool SupportsEnterMany() const override { return true; }

  int64_t QueuedRequests() const override {
    // head = the holder's (lowest unreleased) ticket, tail = next free:
    // tail - head - 1 processes sit queued behind the holder. Raw reads;
    // tail is advanced helpfully so it can run ahead by at most the one
    // in-flight claim, which only over-reports (see the base contract).
    const uint64_t head = inner_.HeadTicket();
    const uint64_t tail = inner_.TailTicket();
    return tail > head ? static_cast<int64_t>(tail - head - 1) : 0;
  }

 private:
  PortLock inner_;
};

}  // namespace rme
