// WR-Lock: the paper's weakly recoverable MCS lock with wait-free exit
// (Section 4, Algorithm 2). O(1) RMR per passage in every failure regime,
// under both CC and DSM.
//
// The single sensitive instruction is the FAS on `tail` (site
// "<label>.tail.fas"): a crash immediately after it leaves the process's
// node appended but the predecessor reference lost, splitting the queue
// into sub-queues (Figure 1) and permitting a *temporary*, failure-scoped
// violation of mutual exclusion — the defining trait of weak
// recoverability. Every other instruction is idempotent by construction:
//  - the per-process `state` variable gates if-blocks and only advances
//    at the end of each block,
//  - `next` fields are written once via CAS and re-read (the CAS result
//    is never used),
//  - the Exit sequence runs blindly and harmlessly re-runs after crashes.
//
// Queue nodes come from an Algorithm-4 epoch reclaimer, which returns the
// same node until retirement (so a crash around allocation is benign) and
// never recycles a node while any process could still reference it.
#pragma once

#include <string>

#include "locks/lock.hpp"
#include "locks/qnode.hpp"
#include "reclaim/epoch_reclaimer.hpp"
#include "rmr/memory_model.hpp"

namespace rme {

class WrLock final : public RecoverableLock {
 public:
  /// `label` distinguishes instances (the recursive BA-Lock stacks one
  /// filter per level); it prefixes crash-site names.
  explicit WrLock(int num_procs, std::string label = "wr");

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override { return "wr-lock"; }

  bool IsStronglyRecoverable() const override { return false; }
  bool SupportsEnterMany() const override { return true; }
  bool IsSensitiveSite(const std::string& site, bool after_op) const override;
  void OnProcessDone(int pid) override;

  /// Per-process state (exposed for tests and the BCSR checker).
  enum State : uint64_t {
    kFree = 0,
    kInitializing = 1,
    kTrying = 2,
    kInCS = 3,
    kLeaving = 4,
  };
  State StateOf(int pid) const {
    return static_cast<State>(state_[pid].RawLoad());
  }

  /// Diagnostic: number of distinct sub-queues currently reconstructible
  /// from shared memory (1 = intact queue). Takes an uninstrumented,
  /// racy-but-conservative snapshot; meaningful when the system is quiet
  /// or when callers tolerate approximation (tests quiesce first).
  int CountSubQueues() const;

  const std::string& label() const { return label_; }

 private:
  void DoExit(int pid);

  int n_;
  std::string label_;
  std::string site_fas_;    // sensitive: FAS on tail
  std::string site_pred_;   // persist of FAS result (crash "before" it is
                            // the same window as crash "after" the FAS)
  std::string site_other_;

  rmr::Atomic<QNode*> tail_{nullptr};
  rmr::Atomic<uint64_t> state_[kMaxProcs];
  rmr::Atomic<QNode*> mine_[kMaxProcs];
  rmr::Atomic<QNode*> pred_[kMaxProcs];
  EpochReclaimer reclaimer_;
};

}  // namespace rme
