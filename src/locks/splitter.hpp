// The splitter (§5.1): a biased, strongly recoverable try-lock guarding
// the fast path. Implemented, as in the paper, with a single integer and
// one CAS: the fast path is occupied iff `owner` is non-zero, and then
// holds the occupant's pid+1 — which is also what makes it recoverable
// (a crashed fast-path process finds its own id and retakes the path).
#pragma once

#include <string>

#include "rmr/memory_model.hpp"

namespace rme {

class Splitter {
 public:
  explicit Splitter(std::string label = "split") : label_(std::move(label)) {
    site_ = label_ + ".op";
  }

  Splitter(const Splitter&) = delete;
  Splitter& operator=(const Splitter&) = delete;

  /// One attempt to occupy the fast path (idempotent: re-running after a
  /// crash re-CASes and then re-reads). Returns true iff `pid` holds it.
  bool TryFastPath(int pid) {
    const char* site = site_.c_str();
    owner_.CompareExchange(0, static_cast<uint64_t>(pid) + 1, site);
    return owner_.Load(site) == static_cast<uint64_t>(pid) + 1;
  }

  /// True iff `pid` currently occupies the fast path.
  bool Occupies(int pid) {
    return owner_.Load(site_.c_str()) == static_cast<uint64_t>(pid) + 1;
  }

  /// Vacate the fast path (only the occupant calls this; blind store is
  /// idempotent across crashes).
  void Release(int /*pid*/) { owner_.Store(0, site_.c_str()); }

  uint64_t OwnerRaw() const { return owner_.RawLoad(); }

 private:
  std::string label_;
  std::string site_;
  rmr::Atomic<uint64_t> owner_{0};
};

}  // namespace rme
