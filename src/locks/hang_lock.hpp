// HangSimLock: a deliberately livelocking test lock for the fork
// harness's per-child liveness watchdog. NOT part of the lock zoo —
// MakeLock knows the name "hang-sim" but it is excluded from
// AllLockNames()/RecoverableLockNames() so sweeps never pick it up.
//
// Failure-free behaviour is a trivial CAS spinlock. Once an incarnation
// of pid dies mid-passage, the *next* incarnation's Recover(pid) first
// repairs the gate (releases a corpse-held CS so other processes are not
// strangled by the bug under test) and then spins forever in an
// uninstrumented loop: no shared-memory ops, no mirror flushes, no
// attempts progress — exactly the signature the watchdog must detect,
// dump, and kill. The hang flag is persistent, so every respawn hangs
// again until the watchdog gives the pid up; the harness must still
// terminate with a verdict (hangs > 0) instead of stalling.
#pragma once

#include <ctime>
#include <string>

#include "locks/lock.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"
#include "util/assert.hpp"

namespace rme {

class HangSimLock final : public RecoverableLock {
 public:
  explicit HangSimLock(int num_procs) : n_(num_procs) {
    RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  }

  void Recover(int pid) override {
    if (inflight_[pid].Load("hang.inflight.ld") == 0) return;
    // A previous incarnation died mid-passage. Release its hold first so
    // the livelock under test strands only this pid, then spin forever —
    // uninstrumented, so the watchdog sees zero op progress.
    if (gate_.Load("hang.gate.ld") == static_cast<uint64_t>(pid) + 1) {
      gate_.Store(0, "hang.gate.repair");
    }
    for (;;) {
      struct timespec ts{0, 1'000'000};  // 1ms: hang politely, not hotly
      ::nanosleep(&ts, nullptr);
    }
  }

  void Enter(int pid) override {
    inflight_[pid].Store(1, "hang.inflight.set");
    uint64_t iters = 0;
    while (!gate_.CompareExchange(0, static_cast<uint64_t>(pid) + 1,
                                  "hang.gate.cas")) {
      SpinPause(iters++);
    }
  }

  void Exit(int pid) override {
    gate_.Store(0, "hang.gate.release");
    inflight_[pid].Store(0, "hang.inflight.clear");
  }

  std::string name() const override { return "hang-sim"; }

  /// Weak: a pid that died inside the CS never re-enters (its respawn
  /// livelocks by design), so the strong BCSR obligation cannot be met.
  bool IsStronglyRecoverable() const override { return false; }

 private:
  int n_;
  rmr::Atomic<uint64_t> gate_;
  rmr::Atomic<uint64_t> inflight_[kMaxProcs];
};

}  // namespace rme
