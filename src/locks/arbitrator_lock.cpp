#include "locks/arbitrator_lock.hpp"

#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme {

ArbitratorLock::ArbitratorLock(int num_procs, std::string label)
    : label_(std::move(label)) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  site_ = label_ + ".op";
  for (int i = 0; i < kMaxProcs; ++i) spin_[i].set_home(i);
}

bool ArbitratorLock::MayEnter(int s) {
  const char* site = site_.c_str();
  // Peterson condition: proceed if the other side is not interested or it
  // is the other side's turn to yield.
  return flag_[1 - s].Load(site) == 0 ||
         turn_.Load(site) != static_cast<uint64_t>(s);
}

void ArbitratorLock::WakeOther(int s) {
  const char* site = site_.c_str();
  const uint64_t other_claim = claim_[1 - s].Load(site);
  if (other_claim != 0) {
    spin_[other_claim - 1].Store(1, site);
  }
}

void ArbitratorLock::Recover(Side side, int pid) {
  const int s = static_cast<int>(side);
  const char* site = site_.c_str();
  const uint64_t claim = claim_[s].Load(site);
  if (state_[s].Load(site) == kLeaving &&
      (claim == static_cast<uint64_t>(pid) + 1 || claim == 0)) {
    // Finish the interrupted Exit. claim == 0 covers a crash between
    // clearing the claim and freeing the side; only the crashed owner can
    // be back here (the framework routes it to the same side until its
    // passage completes), so adopting the orphaned Leaving state is safe.
    DoExit(s, pid);
  }
  // Everything else is handled by the state guards in Enter.
}

void ArbitratorLock::Enter(Side side, int pid) {
  const int s = static_cast<int>(side);
  const char* site = site_.c_str();

  if (state_[s].Load(site) == kFree) {
    claim_[s].Store(static_cast<uint64_t>(pid) + 1, site);
    state_[s].Store(kTrying, site);
  }

  if (state_[s].Load(site) == kTrying) {
    RME_DCHECK(claim_[s].RawLoad() == static_cast<uint64_t>(pid) + 1);
    flag_[s].Store(1, site);
    // Yield to the other side; this write may release its waiter, so wake
    // it. Re-running this block after a crash only re-yields — safe.
    turn_.Store(static_cast<uint64_t>(s), site);
    WakeOther(s);

    uint64_t iter = 0;
    while (!MayEnter(s)) {
      // Arm the local wake flag, re-check (lost-wakeup window), then spin
      // locally; the other side wakes us after each releasing write.
      spin_[pid].Store(0, site);
      if (MayEnter(s)) break;
      while (spin_[pid].Load(site) == 0) {
        SpinPause(iter++, spin_[pid].futex_word(), spin_[pid].futex_expected(0));
      }
    }
    state_[s].Store(kInCS, site);
  }
  // state == kInCS: bounded re-entry after a crash in CS (BCSR).
}

void ArbitratorLock::Exit(Side side, int pid) {
  DoExit(static_cast<int>(side), pid);
}

void ArbitratorLock::DoExit(int s, int pid) {
  const char* site = site_.c_str();
  state_[s].Store(kLeaving, site);
  flag_[s].Store(0, site);
  WakeOther(s);
  claim_[s].Store(0, site);
  state_[s].Store(kFree, site);
  (void)pid;
}

}  // namespace rme
