#include "locks/gr_semi_lock.hpp"

#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme {

GrSemiLock::GrSemiLock(int num_procs, std::string label)
    : n_(num_procs), label_(std::move(label)),
      slow_(num_procs, label_ + ".slow") {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  site_ = label_ + ".op";
  nodes_ = std::make_unique<QNode[]>(static_cast<size_t>(n_) * kNodesPerProc);
  for (int pid = 0; pid < n_; ++pid) {
    for (int j = 0; j < kNodesPerProc; ++j) {
      nodes_[static_cast<size_t>(pid) * kNodesPerProc + j].SetHome(pid);
    }
    state_[pid].set_home(pid);
    nodeseq_[pid].set_home(pid);
    myepoch_[pid].set_home(pid);
    myseq_[pid].set_home(pid);
    diverted_[pid].set_home(pid);
  }
}

QNode* GrSemiLock::NodeFor(int pid, uint64_t seq) {
  return &nodes_[static_cast<size_t>(pid) * kNodesPerProc +
                 static_cast<size_t>(seq % kNodesPerProc)];
}

void GrSemiLock::BumpEpoch() {
  const char* site = site_.c_str();
  const uint64_t e = epoch_.Load(site);
  tails_[(e + 1) % kInstances].Store(nullptr, site);
  epoch_.CompareExchange(e, e + 1, site);
}

void GrSemiLock::ResetScan(int pid) {
  // The Θ(n) abort-and-reset bill of the transformation: touch every
  // process's slot (in the original this repairs the aborted base lock).
  const char* site = site_.c_str();
  for (int j = 0; j < n_; ++j) {
    (void)reset_slot_[j].Load(site);
  }
  (void)pid;
}

void GrSemiLock::Recover(int pid) {
  const char* site = site_.c_str();
  const uint64_t st = state_[pid].Load(site);
  if (st == kTrying) {
    if (owner_.Load(site) == static_cast<uint64_t>(pid) + 1) {
      state_[pid].Store(kInCS, site);
      return;
    }
    BumpEpoch();
    nodeseq_[pid].FetchAdd(1, site);
    diverted_[pid].Store(1, site);  // this passage witnessed a failure
  } else if (st == kLeaving) {
    DoExit(pid);
  }
}

void GrSemiLock::Enter(int pid) {
  const char* site = site_.c_str();
  if (state_[pid].Load(site) == kFree) {
    diverted_[pid].Store(0, site);
    state_[pid].Store(kTrying, site);
  }
  if (state_[pid].Load(site) == kTrying) {
    if (diverted_[pid].Load(site) == 0) {
      // One fast-path attempt; an epoch bump while queued diverts us.
      const uint64_t e = epoch_.Load(site);
      const uint64_t seq = nodeseq_[pid].FetchAdd(1, site) + 1;
      QNode* mine = NodeFor(pid, seq);
      mine->next.Store(nullptr, site);
      mine->locked.Store(1, site);
      QNode* pred = tails_[e % kInstances].Exchange(mine, site);
      if (pred != nullptr) {
        pred->next.CompareExchange(nullptr, mine, site);
        if (pred->next.Load(site) == mine) {
          uint64_t iter = 0;
          while (mine->locked.Load(site) != 0) {
            SpinPause(iter++, mine->locked.futex_word(),
                      mine->locked.futex_expected(1));
            // Once iterations are stage-3 parks (milliseconds each) the
            // sparse mask would make divert detection take seconds; an
            // every-iteration epoch read is then cheap by comparison.
            if (((iter & 0x3f) == 0 || iter > 16) && epoch_.Load(site) != e) {
              diverted_[pid].Store(1, site);
              break;
            }
          }
        }
      }
      if (diverted_[pid].Load(site) == 0) {
        myepoch_[pid].Store(e, site);
        myseq_[pid].Store(seq, site);
      }
    }
    if (diverted_[pid].Load(site) != 0) {
      // Pay the abort/reset bill, then take the bounded slow path.
      ResetScan(pid);
      slow_.Recover(pid);
      slow_.Enter(pid);
    }
    uint64_t iter = 0;
    while (!owner_.CompareExchange(0, static_cast<uint64_t>(pid) + 1, site)) {
      uint64_t v;
      while ((v = owner_.Load(site)) != 0) {
        SpinPause(iter++, owner_.futex_word(), owner_.futex_expected(v));
      }
    }
    state_[pid].Store(kInCS, site);
  }
}

void GrSemiLock::Exit(int pid) { DoExit(pid); }

void GrSemiLock::DoExit(int pid) {
  const char* site = site_.c_str();
  state_[pid].Store(kLeaving, site);
  owner_.CompareExchange(static_cast<uint64_t>(pid) + 1, 0, site);
  if (diverted_[pid].Load(site) != 0) {
    slow_.Exit(pid);
  } else {
    const uint64_t e = myepoch_[pid].Load(site);
    const uint64_t seq = myseq_[pid].Load(site);
    QNode* mine = NodeFor(pid, seq);
    tails_[e % kInstances].CompareExchange(mine, nullptr, site);
    mine->next.CompareExchange(nullptr, mine, site);
    QNode* next = mine->next.Load(site);
    if (next != mine) {
      next->locked.Store(0, site);
    }
  }
  state_[pid].Store(kFree, site);
}

}  // namespace rme
