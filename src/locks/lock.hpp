// The recoverable-lock interface (the paper's Recover/Enter/Exit model).
//
// A process executes, per Algorithm 1:
//
//   loop { NCS; Recover(); Enter(); CS; Exit(); }
//
// and may crash (ProcessCrash unwinds) at any shared-memory operation in
// Recover/Enter/CS/Exit. On restart it re-enters the loop at NCS. Locks
// keep ALL per-request persistent state in rmr::Atomic shared variables;
// anything in function locals is legitimately lost on a crash.
#pragma once

#include <string>

namespace rme {

class RecoverableLock {
 public:
  virtual ~RecoverableLock() = default;

  /// Cleanup after possible past failures; must satisfy Bounded Recovery.
  virtual void Recover(int pid) = 0;

  /// Acquire. May busy-wait (locally, under the DSM model).
  virtual void Enter(int pid) = 0;

  /// Release; must satisfy Bounded Exit.
  virtual void Exit(int pid) = 0;

  /// API-level passage batching: true iff this lock supports running a
  /// small, caller-bounded batch of k critical sections as ONE passage —
  /// EnterMany(pid, k), then the k CS bodies back-to-back, then
  /// ExitMany(pid) — so one queue traversal (and one Recover resolve) is
  /// amortized over the whole batch. To the lock the batch is just a
  /// longer critical section, so opting in is a statement about bounds,
  /// not safety: the family accepts O(k) extra hold time without
  /// breaking its starvation/RMR guarantees. Recovery contract: a crash
  /// anywhere inside the batch is a crash in one passage; the caller
  /// re-runs the batch's idempotent bodies after Recover(), exactly as
  /// for a single CS. Families that stay at the default false take the
  /// fallback path (k independent full passages) in RunBatched
  /// (core/guard.hpp).
  virtual bool SupportsEnterMany() const { return false; }

  /// Acquire for a batch of k critical sections (k >= 1). The base
  /// implementation ignores the hint; queue locks may use it (e.g. to
  /// widen a handoff batch). Only call when SupportsEnterMany() is true;
  /// pair with ExitMany.
  virtual void EnterMany(int pid, int k) {
    (void)k;
    Enter(pid);
  }

  /// Release after EnterMany.
  virtual void ExitMany(int pid) { Exit(pid); }

  virtual std::string name() const = 0;

  /// True if the lock guarantees the strong ME property (never violated);
  /// weakly recoverable locks return false and the ME checker admits
  /// violations that overlap failure consequence intervals.
  virtual bool IsStronglyRecoverable() const { return true; }

  /// True if a crash at (site, after_op) is an *unsafe* failure for this
  /// lock, i.e. it hit a sensitive instruction (Def 3.3/3.4). Composite
  /// locks delegate to their weakly recoverable components (Def 3.6).
  virtual bool IsSensitiveSite(const std::string& /*site*/,
                               bool /*after_op*/) const {
    return false;
  }

  /// Free-form per-lock statistics for bench output (paths, levels, ...).
  virtual std::string StatsString() const { return {}; }

  /// Best-effort count of requests currently queued behind the holder
  /// (uninstrumented raw peek, racy by design; -1 = not observable for
  /// this lock). Wrappers use it for load-adaptive policies — CohortLock
  /// lets a batch run on only while this stays 0 — so over-reporting
  /// merely tightens a cap; it must never claim 0 while a process is
  /// durably queued.
  virtual int64_t QueuedRequests() const { return -1; }

  /// Depth/level diagnostic for the just-finished passage of `pid`
  /// (BaLock reports the deepest level reached; others report 0).
  virtual int LastPathDepth(int /*pid*/) const { return 0; }

  /// Real-process crash mode (runtime/fork_harness): true iff the lock's
  /// entire mutable state is allocated while its constructor runs (and
  /// thus captured by a shm::PlacementScope into a shared segment), and
  /// the lock tolerates a holder dying for real (SIGKILL, no unwinding)
  /// and recovering via Recover(). Every recoverable lock in the zoo
  /// satisfies this by construction — all per-request state lives in
  /// rmr::Atomic variables allocated up front; non-recoverable baselines
  /// (mcs) must return false: a killed holder would wedge them forever.
  virtual bool SupportsSharedPlacement() const { return true; }

  /// Called by the harness when `pid` stops issuing requests for good
  /// (graceful end of a finite run). The paper's model has processes
  /// request forever; finite experiments need this so that resources the
  /// process would have released on its next request (e.g. its reclaimer
  /// slot) are released now and no other process waits on it.
  virtual void OnProcessDone(int /*pid*/) {}
};

}  // namespace rme
