#include "locks/ya_tournament_lock.hpp"

#include "util/assert.hpp"

namespace rme {

YaTournamentLock::YaTournamentLock(int num_procs, std::string label)
    : n_(num_procs), label_(std::move(label)) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  depth_ = 1;
  int span = 2;
  while (span < n_) {
    span *= 2;
    ++depth_;
  }
  nodes_.resize(static_cast<size_t>(depth_));
  for (int level = 0; level < depth_; ++level) {
    const int group = 2 << level;  // processes sharing a node at level
    const int count = (n_ + group - 1) / group;
    nodes_[static_cast<size_t>(level)].reserve(static_cast<size_t>(count));
    for (int idx = 0; idx < count; ++idx) {
      nodes_[static_cast<size_t>(level)].push_back(
          std::make_unique<ArbitratorLock>(
              n_, label_ + ".L" + std::to_string(level) + "." +
                      std::to_string(idx)));
    }
  }
}

ArbitratorLock& YaTournamentLock::NodeAt(int level, int pid) {
  return *nodes_[static_cast<size_t>(level)]
                [static_cast<size_t>(pid / (2 << level))];
}

Side YaTournamentLock::SideAt(int level, int pid) const {
  return ((pid >> level) & 1) == 0 ? Side::kLeft : Side::kRight;
}

void YaTournamentLock::Recover(int /*pid*/) {
  // Per-node recovery runs inline with each node's Enter (Algorithm 3's
  // convention, shared by every composite lock here).
}

void YaTournamentLock::Enter(int pid) {
  for (int level = 0; level < depth_; ++level) {
    ArbitratorLock& node = NodeAt(level, pid);
    const Side side = SideAt(level, pid);
    node.Recover(side, pid);
    node.Enter(side, pid);
  }
}

void YaTournamentLock::Exit(int pid) {
  // Root-first, like TreeLock: a released ancestor only admits processes
  // from the other subtree, which cannot reach the sides we still hold.
  for (int level = depth_ - 1; level >= 0; --level) {
    NodeAt(level, pid).Exit(SideAt(level, pid), pid);
  }
}

}  // namespace rme
