#include "locks/wr_lock.hpp"

#include <set>

#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme {

WrLock::WrLock(int num_procs, std::string label)
    : n_(num_procs), label_(std::move(label)),
      reclaimer_(num_procs, label_ + ".reclaim") {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  site_fas_ = label_ + ".tail.fas";
  site_pred_ = label_ + ".pred.persist";
  site_other_ = label_ + ".op";
  for (int i = 0; i < kMaxProcs; ++i) {
    state_[i].set_home(i);
    mine_[i].set_home(i);
    pred_[i].set_home(i);
    state_[i].RawStore(kFree);
  }
}

bool WrLock::IsSensitiveSite(const std::string& site, bool after_op) const {
  // The sensitive window is [FAS applied, predecessor persisted): a crash
  // after the FAS or before the persisting store is unsafe (Def 3.4).
  return (site == site_fas_ && after_op) || (site == site_pred_ && !after_op);
}

void WrLock::Recover(int pid) {
  const char* site = site_other_.c_str();
  const uint64_t s = state_[pid].Load(site);
  if (s == kTrying) {
    if (pred_[pid].Load(site) == mine_[pid].Load(site)) {
      // Crashed at the sensitive FAS window: the node may or may not be
      // in the queue and the predecessor is unknowable. Relinquish the
      // node (wait-free signalling frees any successor) and retry fresh.
      DoExit(pid);
    }
  } else if (s == kLeaving) {
    DoExit(pid);  // finish the interrupted Exit segment
  }

  if (state_[pid].Load(site) == kFree) {
    // Backup retire: covers a crash that hit the narrow window between
    // Exit's state->Free store and its trailing RetireNode (idempotent).
    reclaimer_.RetireNode(pid);
    mine_[pid].Store(nullptr, site);
    state_[pid].Store(kInitializing, site);
  }
}

void WrLock::Enter(int pid) {
  const char* site = site_other_.c_str();
  if (state_[pid].Load(site) == kInitializing) {
    if (mine_[pid].Load(site) == nullptr) {
      // Idempotent across crashes: NewNode returns the same node until
      // the next RetireNode.
      QNode* fresh = reclaimer_.NewNode(pid);
      mine_[pid].Store(fresh, site);
    }
    QNode* mine = mine_[pid].Load(site);
    mine->next.Store(nullptr, site);
    mine->locked.Store(1, site);
    // pred == mine is the marker that the FAS has not yet completed.
    pred_[pid].Store(mine, site);
    state_[pid].Store(kTrying, site);
  }

  if (state_[pid].Load(site) == kTrying) {
    QNode* mine = mine_[pid].Load(site);
    if (pred_[pid].Load(site) == mine) {
      // Append my node to the queue — the one SENSITIVE instruction: a
      // crash between these two operations orphans the FAS result.
      QNode* temp = tail_.Exchange(mine, site_fas_.c_str());
      pred_[pid].Store(temp, site_pred_.c_str());
    }
    QNode* pred = pred_[pid].Load(site);
    if (pred != nullptr) {
      // Create the forward link; the CAS outcome is deliberately unused —
      // we re-read the field, which makes re-execution after a crash
      // indistinguishable from first execution.
      pred->next.CompareExchange(nullptr, mine, site);
      if (pred->next.Load(site) == mine) {
        uint64_t iter = 0;
        while (mine->locked.Load(site) != 0) {
          SpinPause(iter++, mine->locked.futex_word(),
                    mine->locked.futex_expected(1));
        }
      }
      // else: the predecessor sealed its next field (wait-free exit) —
      // the lock was handed to us without a signal.
    }
    state_[pid].Store(kInCS, site);
  }
}

void WrLock::Exit(int pid) { DoExit(pid); }

void WrLock::OnProcessDone(int pid) {
  // Release the reclaimer slot this process would have retired at the
  // start of its next request; epoch scans by other processes otherwise
  // wait for it forever.
  if (state_[pid].RawLoad() == kFree) {
    reclaimer_.RetireNode(pid);
  }
}

void WrLock::DoExit(int pid) {
  const char* site = site_other_.c_str();
  state_[pid].Store(kLeaving, site);
  QNode* mine = mine_[pid].Load(site);
  // Remove my node if it is the queue's last; ignore the outcome.
  tail_.CompareExchange(mine, nullptr, site);
  // Seal my next field with the self-sentinel; if a successor linked
  // first this fails harmlessly, and re-running after a crash is a no-op
  // either way.
  mine->next.CompareExchange(nullptr, mine, site);
  QNode* next = mine->next.Load(site);
  if (next != mine) {
    next->locked.Store(0, site);  // successor exists: release it
  }
  state_[pid].Store(kFree, site);
  // Retire strictly AFTER the state turns Free: any crashed-Exit re-run
  // happens from state Leaving, i.e. with the retire not yet performed,
  // so the successor reference it re-signals cannot have been recycled.
  // (A crash between the Free store and this retire is covered by the
  // backup retire at the start of the next request's Recover.)
  reclaimer_.RetireNode(pid);
}

int WrLock::CountSubQueues() const {
  // Uninstrumented snapshot; intended for quiesced/deterministic tests.
  std::set<const QNode*> active;
  for (int i = 0; i < n_; ++i) {
    const uint64_t s = state_[i].RawLoad();
    if (s == kTrying || s == kInCS || s == kLeaving) {
      const QNode* node = mine_[i].RawLoad();
      if (node != nullptr) active.insert(node);
    }
  }
  int roots = 0;
  for (int i = 0; i < n_; ++i) {
    const uint64_t s = state_[i].RawLoad();
    if (s != kTrying && s != kInCS && s != kLeaving) continue;
    const QNode* node = mine_[i].RawLoad();
    const QNode* pred = pred_[i].RawLoad();
    if (node == nullptr || pred == node) continue;  // not appended yet
    if (pred == nullptr || active.find(pred) == active.end()) ++roots;
  }
  return roots;
}

}  // namespace rme
