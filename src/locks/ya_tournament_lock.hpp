// YaTournamentLock: Golab & Ramaraju's n-process strongly recoverable
// lock — a binary tournament whose every node is their recoverable
// 2-process (here: 2-side) Yang–Anderson lock, i.e. our ArbitratorLock.
// This is the construction the paper's related-work section credits with
// the first O(log n) RME bound from read/write/CAS-class primitives.
//
// A process's side at a node is the child subtree it arrives from;
// holding the child node's lock makes it the side's unique user, which
// is exactly the ArbitratorLock contract. Recoverability is inherited
// per node (BCSR fall-through on held sides, Leaving-resume on crashed
// exits); the path is re-walked on recovery like TreeLock's.
//
// Complexity: O(log n) RMR per passage in every failure regime, both
// models (every wait in the arbitrator is a local spin) — one rung above
// the k-port tree, one below nothing: the classic bounded non-adaptive
// baseline with the best portability story (no FAS required).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "locks/arbitrator_lock.hpp"
#include "locks/lock.hpp"

namespace rme {

class YaTournamentLock final : public RecoverableLock {
 public:
  explicit YaTournamentLock(int num_procs, std::string label = "ya");

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override { return "ya-tournament"; }

  int depth() const { return depth_; }

 private:
  ArbitratorLock& NodeAt(int level, int pid);
  Side SideAt(int level, int pid) const;

  int n_;
  int depth_;
  std::string label_;
  /// nodes_[level][index]; level 0 = leaves (pairs of processes).
  std::vector<std::vector<std::unique_ptr<ArbitratorLock>>> nodes_;
};

}  // namespace rme
