#include "locks/mcs_lock.hpp"

#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme {

McsLock::McsLock(int num_procs) : n_(num_procs) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  for (int i = 0; i < n_; ++i) {
    nodes_[i].SetHome(i);
  }
}

void McsLock::Enter(int pid) {
  QNode* mine = &nodes_[pid];
  mine->next.Store(nullptr, "mcs.init.next");
  mine->locked.Store(1, "mcs.init.locked");
  QNode* pred = tail_.Exchange(mine, "mcs.tail.fas");
  if (pred != nullptr) {
    pred->next.Store(mine, "mcs.link");
    uint64_t iter = 0;
    while (mine->locked.Load("mcs.spin") != 0) {
      SpinPause(iter++, mine->locked.futex_word(),
                mine->locked.futex_expected(1));
    }
  }
}

void McsLock::Exit(int pid) {
  QNode* mine = &nodes_[pid];
  if (!tail_.CompareExchange(mine, nullptr, "mcs.tail.cas")) {
    // Queue is non-empty: a successor has performed (or will perform) the
    // FAS; wait for its link, then hand the lock over.
    // Park on the successor link (expected = the null low word we just
    // read): under oversubscription the successor is routinely preempted
    // between its tail FAS and its link store, and a wordless SpinPause
    // here degenerates into blind 50-800us naps — the 8-thread collapse
    // in BENCH_throughput.json. The successor's link Store wakes us
    // through the write probe's MaybeWakeParked, same as "mcs.spin".
    uint64_t iter = 0;
    QNode* next = nullptr;
    while ((next = mine->next.Load("mcs.exit.next")) == nullptr) {
      SpinPause(iter++, mine->next.futex_word(), 0);
    }
    next->locked.Store(0, "mcs.signal");
  }
}

}  // namespace rme
