// The classic MCS queue lock (Mellor-Crummey & Scott 1991): the paper's
// §4.1 starting point and our non-recoverable baseline. O(1) RMR per
// passage under both CC and DSM.
//
// This is the original blocking-exit formulation (the exiting process
// waits for its successor's link), which makes immediate node reuse safe
// and needs no reclaimer. The wait-free-exit extension (§4.2) appears in
// WrLock, where it is required and where Algorithm 4 handles reuse.
//
// Not crash-safe: Recover() is a no-op and crash injection must be off
// when benchmarking it (it exists to calibrate the failure-free columns).
#pragma once

#include "locks/lock.hpp"
#include "locks/qnode.hpp"
#include "rmr/memory_model.hpp"

namespace rme {

class McsLock final : public RecoverableLock {
 public:
  explicit McsLock(int num_procs);

  void Recover(int /*pid*/) override {}
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override { return "mcs"; }

  /// Not crash-tolerant: a holder killed mid-CS never releases, so the
  /// fork harness must not run it under real SIGKILL injection.
  bool SupportsSharedPlacement() const override { return false; }
  /// Batch-hold is where a queue lock shines: one tail FAS and one
  /// successor handoff amortized over the whole batch.
  bool SupportsEnterMany() const override { return true; }

 private:
  int n_;
  rmr::Atomic<QNode*> tail_{nullptr};
  QNode nodes_[kMaxProcs];
};

}  // namespace rme
