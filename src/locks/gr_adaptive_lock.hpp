// GrAdaptiveLock: baseline reproducing the behaviour of Golab &
// Ramaraju's first transformation (§4.1 of their paper; Table 1 row 1):
// O(1) RMR failure-free, O(F) with F failures, unbounded as failures
// grow. See DESIGN.md substitution #4.
//
// Construction: an MCS queue funnels contenders toward a single `owner`
// gate that alone decides CS entry (so mutual exclusion never depends on
// queue integrity). A crash during acquisition "resets" the lock by
// bumping an epoch: queued processes notice the bump in their spin loop,
// abandon the dead queue instance and retry in the next one. Each
// failure therefore costs every concurrently active passage O(1) extra
// RMRs — the O(F) adaptive-unbounded profile.
//
// Caveats (documented in EXPERIMENTS.md): the epoch check inside the
// queue spin is remote under DSM, so like the original the RMR claims
// are for the CC model; abandoned queue nodes are recycled from a large
// per-process ring, which perturbs fairness (never safety — the owner
// gate is authoritative) if a stale signal lands on a recycled node.
#pragma once

#include <memory>
#include <string>

#include "locks/lock.hpp"
#include "locks/qnode.hpp"
#include "rmr/memory_model.hpp"

namespace rme {

class GrAdaptiveLock final : public RecoverableLock {
 public:
  explicit GrAdaptiveLock(int num_procs, std::string label = "gr-adaptive");

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override { return "gr-adaptive"; }
  bool SupportsEnterMany() const override { return true; }

  uint64_t EpochRaw() const { return epoch_.RawLoad(); }

 private:
  enum State : uint64_t { kFree = 0, kTrying = 1, kInCS = 2, kLeaving = 3 };
  static constexpr int kInstances = 8;    ///< epoch ring
  static constexpr int kNodesPerProc = 1024;  ///< node recycling ring

  QNode* NodeFor(int pid, uint64_t seq);
  void BumpEpoch();
  void DoExit(int pid);

  int n_;
  std::string label_;
  std::string site_;

  rmr::Atomic<uint64_t> owner_{0};  ///< pid+1 of the CS holder; the lock
  rmr::Atomic<uint64_t> epoch_{0};
  rmr::Atomic<QNode*> tails_[kInstances];

  rmr::Atomic<uint64_t> state_[kMaxProcs];
  rmr::Atomic<uint64_t> nodeseq_[kMaxProcs];
  rmr::Atomic<uint64_t> myepoch_[kMaxProcs];
  rmr::Atomic<uint64_t> myseq_[kMaxProcs];

  std::unique_ptr<QNode[]> nodes_;  ///< n * kNodesPerProc ring storage
};

}  // namespace rme
