#include "locks/gr_adaptive_lock.hpp"

#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme {

GrAdaptiveLock::GrAdaptiveLock(int num_procs, std::string label)
    : n_(num_procs), label_(std::move(label)) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  site_ = label_ + ".op";
  nodes_ = std::make_unique<QNode[]>(static_cast<size_t>(n_) * kNodesPerProc);
  for (int pid = 0; pid < n_; ++pid) {
    for (int j = 0; j < kNodesPerProc; ++j) {
      nodes_[static_cast<size_t>(pid) * kNodesPerProc + j].SetHome(pid);
    }
    state_[pid].set_home(pid);
    nodeseq_[pid].set_home(pid);
    myepoch_[pid].set_home(pid);
    myseq_[pid].set_home(pid);
  }
}

QNode* GrAdaptiveLock::NodeFor(int pid, uint64_t seq) {
  return &nodes_[static_cast<size_t>(pid) * kNodesPerProc +
                 static_cast<size_t>(seq % kNodesPerProc)];
}

void GrAdaptiveLock::BumpEpoch() {
  const char* site = site_.c_str();
  const uint64_t e = epoch_.Load(site);
  // Reset the NEXT instance before publishing the bump, so nobody can be
  // queued there yet (stragglers from epoch e keep using slot e % kInst).
  tails_[(e + 1) % kInstances].Store(nullptr, site);
  epoch_.CompareExchange(e, e + 1, site);  // lose harmlessly to a racer
}

void GrAdaptiveLock::Recover(int pid) {
  const char* site = site_.c_str();
  const uint64_t st = state_[pid].Load(site);
  if (st == kTrying) {
    if (owner_.Load(site) == static_cast<uint64_t>(pid) + 1) {
      // Crashed between winning the gate and recording it.
      state_[pid].Store(kInCS, site);
      return;
    }
    // Crashed mid-acquisition: reset the lock for everyone (the epoch
    // bump is what makes each failure cost the system O(1) per passage)
    // and abandon our queue node.
    BumpEpoch();
    nodeseq_[pid].FetchAdd(1, site);
  } else if (st == kLeaving) {
    DoExit(pid);
  }
}

void GrAdaptiveLock::Enter(int pid) {
  const char* site = site_.c_str();
  if (state_[pid].Load(site) == kFree) {
    state_[pid].Store(kTrying, site);
  }
  if (state_[pid].Load(site) == kTrying) {
    // Queue up; abandon and retry whenever the epoch moves under us.
    for (;;) {
      const uint64_t e = epoch_.Load(site);
      const uint64_t seq = nodeseq_[pid].FetchAdd(1, site) + 1;
      QNode* mine = NodeFor(pid, seq);
      mine->next.Store(nullptr, site);
      mine->locked.Store(1, site);
      QNode* pred = tails_[e % kInstances].Exchange(mine, site);
      bool abandoned = false;
      if (pred != nullptr) {
        pred->next.CompareExchange(nullptr, mine, site);
        if (pred->next.Load(site) == mine) {
          uint64_t iter = 0;
          while (mine->locked.Load(site) != 0) {
            SpinPause(iter++, mine->locked.futex_word(),
                      mine->locked.futex_expected(1));
            // Remote under DSM; the CC-model caveat in the header. Checked
            // every iteration once parking makes iterations millisecond-
            // scale (the sparse mask was a hot-spin optimization).
            if (((iter & 0x3f) == 0 || iter > 16) && epoch_.Load(site) != e) {
              abandoned = true;
              break;
            }
          }
        }
      }
      if (abandoned) continue;
      myepoch_[pid].Store(e, site);
      myseq_[pid].Store(seq, site);
      break;
    }
    // The owner gate is the actual lock: queue corruption after crashes
    // can at worst send several processes here concurrently.
    uint64_t iter = 0;
    while (!owner_.CompareExchange(0, static_cast<uint64_t>(pid) + 1, site)) {
      uint64_t v;
      while ((v = owner_.Load(site)) != 0) {
        SpinPause(iter++, owner_.futex_word(), owner_.futex_expected(v));
      }
    }
    state_[pid].Store(kInCS, site);
  }
}

void GrAdaptiveLock::Exit(int pid) { DoExit(pid); }

void GrAdaptiveLock::DoExit(int pid) {
  const char* site = site_.c_str();
  state_[pid].Store(kLeaving, site);
  owner_.CompareExchange(static_cast<uint64_t>(pid) + 1, 0, site);
  // Leave the queue wait-free (WrLock-style sealed next).
  const uint64_t e = myepoch_[pid].Load(site);
  const uint64_t seq = myseq_[pid].Load(site);
  QNode* mine = NodeFor(pid, seq);
  tails_[e % kInstances].CompareExchange(mine, nullptr, site);
  mine->next.CompareExchange(nullptr, mine, site);
  QNode* next = mine->next.Load(site);
  if (next != mine) {
    next->locked.Store(0, site);
  }
  state_[pid].Store(kFree, site);
}

}  // namespace rme
