// CohortLock: a two-level cohort-structured wrapper for the threads≫cores
// regime (DESIGN.md §11), after Dice–Marathe–Shavit lock cohorting.
//
// Processes are partitioned into C cohorts (one per NUMA node by default,
// overridable for tests). Each cohort arbitrates locally through its own
// PortLock sub-lock; the winning representative competes for a global
// recoverable top lock driven with the cohort id as a pseudo-pid. Two
// batching layers amortize the top lock's Ω(log n / log log n) RMR cost:
//
//   * in-cohort handoff: on Exit the cohort keeps the top lock and hands
//     the local sub-lock to a queued cohort-mate, up to batch_cap
//     consecutive local passages while another cohort waits;
//   * per-process retention: a process whose Exit observes no local and
//     no top demand keeps the *whole* stack (retained fast path: one
//     cache-hit load per passage), up to retain_cap consecutive passages
//     once demand appears.
//
// Both caps are load-adaptive: with `adaptive` set (default) they bind
// only while contention is actually observable (raw queue peeks +
// QueuedRequests() on the top lock), so a solo process never pays a
// release/reacquire cycle.
//
// Recoverability: Recover() is a no-op — every crash window leaves a
// state from which re-running Enter() converges (the sub-lock's and top
// lock's own Recover calls inside Enter do the per-layer repair; the
// retained/top_held flags are written in an order that makes each window
// idempotent — see the Exit() comments). LastPathDepth reports 0 for a
// retained passage, 1 for a local handoff, 2 for a full top acquisition.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "locks/lock.hpp"
#include "locks/port_lock.hpp"
#include "rmr/memory_model.hpp"

namespace rme {

/// Tunables. cohorts == 0 auto-detects the NUMA node count (sysfs, then
/// a single cohort); tests pass an explicit value for determinism.
struct CohortConfig {
  int cohorts = 0;
  // Max consecutive local passages a cohort keeps the top lock while
  // another cohort waits (the classic cohort bound).
  uint32_t batch_cap = 4096;
  // Max consecutive passages one process keeps the full stack while
  // anyone (local or remote) waits.
  uint32_t retain_cap = 512;
  // Load-adaptive caps: bind only under observed demand. When false the
  // caps bind unconditionally (release every batch_cap/retain_cap
  // passages even with zero waiters) — useful for pinning fairness.
  bool adaptive = true;
};

/// Process-wide defaults used by the registry factories ("cohort",
/// "cohort-tournament"); benches/tests override fields before MakeLock.
CohortConfig& cohort_lock_defaults();

class CohortLock final : public RecoverableLock {
 public:
  using TopFactory = std::unique_ptr<RecoverableLock> (*)(int num_cohorts);

  /// `top_factory` builds the global lock over `cohorts` pseudo-pids; it
  /// is invoked inside this constructor (so a surrounding
  /// shm::PlacementScope captures the top lock's state too).
  CohortLock(int num_procs, const CohortConfig& config, TopFactory top_factory,
             std::string label);

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  void OnProcessDone(int pid) override;

  std::string name() const override { return label_; }
  /// The cohort layer already batches *passages* via in-cohort handoff;
  /// caller-side EnterMany composes with it (a batch is one passage).
  bool SupportsEnterMany() const override { return true; }
  int LastPathDepth(int pid) const override {
    return last_depth_[pid].load(std::memory_order_relaxed);
  }
  int64_t QueuedRequests() const override;
  std::string StatsString() const override;

  int num_cohorts() const { return cohorts_; }
  int CohortOf(int pid) const { return pid / cohort_size_; }

  /// Test hook: raw demand visible in the top queue only (excludes local
  /// sub-lock waiters, which QueuedRequests() folds in).
  int64_t TopQueuedRaw() const { return top_->QueuedRequests(); }

  /// Detected NUMA-node count (≥1), before clamping to num_procs.
  static int DetectNumaNodes();

 private:
  int RankOf(int pid) const { return pid % cohort_size_; }
  uint64_t LocalWaitersRaw(int cohort) const;
  void ReleaseAll(int pid, const char* site);

  const int n_;
  const int cohorts_;
  const int cohort_size_;
  const CohortConfig cfg_;
  const std::string label_;
  std::string site_;

  std::vector<std::unique_ptr<PortLock>> local_;  // one per cohort
  std::unique_ptr<RecoverableLock> top_;          // pseudo-pid = cohort id

  // Protocol state (crash-persistent, instrumented).
  // retained_[pid] == 1  ⟺  pid holds the full stack across passages.
  // top_held_[c]   == 1  ⟺  cohort c's representative holds the top lock.
  // Invariant: top_held_[c] == 1 implies some member of c holds (or has a
  // claimed ticket for) local_[c] — so the top lock is never parked on a
  // cohort with nobody obliged to release it.
  rmr::Atomic<uint64_t> retained_[kMaxProcs];
  rmr::Atomic<uint64_t> top_held_[kMaxProcs];

  // Policy state (heuristic only; plain atomics — not part of the lock
  // protocol, so they carry no RMR cost and may lag after a crash, which
  // at worst shortens or lengthens one batch).
  std::atomic<uint64_t> batch_len_[kMaxProcs];   // per cohort
  std::atomic<uint64_t> retain_run_[kMaxProcs];  // per pid
  std::atomic<int> last_depth_[kMaxProcs];       // per pid

  // Diagnostics for StatsString().
  std::atomic<uint64_t> stat_retained_{0};
  std::atomic<uint64_t> stat_local_handoff_{0};
  std::atomic<uint64_t> stat_top_acquire_{0};
};

}  // namespace rme
