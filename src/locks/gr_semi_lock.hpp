// GrSemiLock: baseline reproducing the behaviour of Golab & Ramaraju's
// second transformation (§4.2 of their paper; Table 1 row 2): O(1) RMR
// failure-free, Θ(n) as soon as any failure is witnessed, bounded O(n)
// under arbitrarily many failures. See DESIGN.md substitution #5.
//
// Fast path: MCS queue + owner gate with an epoch reset, exactly as
// GrAdaptiveLock. The difference is what happens on failure: a passage
// that witnesses one (its own crash, or an epoch bump while queued) pays
// the transformation's abort-and-reset bill — an Θ(n) scan over all
// process slots — and then diverts to a bounded strongly recoverable
// tournament, capping the passage at O(n) no matter how many further
// failures occur.
#pragma once

#include <memory>
#include <string>

#include "locks/lock.hpp"
#include "locks/qnode.hpp"
#include "locks/tree_lock.hpp"
#include "rmr/memory_model.hpp"

namespace rme {

class GrSemiLock final : public RecoverableLock {
 public:
  explicit GrSemiLock(int num_procs, std::string label = "gr-semi");

  void Recover(int pid) override;
  void Enter(int pid) override;
  void Exit(int pid) override;
  std::string name() const override { return "gr-semi"; }

 private:
  enum State : uint64_t { kFree = 0, kTrying = 1, kInCS = 2, kLeaving = 3 };
  static constexpr int kInstances = 8;
  static constexpr int kNodesPerProc = 1024;

  QNode* NodeFor(int pid, uint64_t seq);
  void BumpEpoch();
  void ResetScan(int pid);
  void DoExit(int pid);

  int n_;
  std::string label_;
  std::string site_;

  rmr::Atomic<uint64_t> owner_{0};
  rmr::Atomic<uint64_t> epoch_{0};
  rmr::Atomic<QNode*> tails_[kInstances];

  rmr::Atomic<uint64_t> state_[kMaxProcs];
  rmr::Atomic<uint64_t> nodeseq_[kMaxProcs];
  rmr::Atomic<uint64_t> myepoch_[kMaxProcs];
  rmr::Atomic<uint64_t> myseq_[kMaxProcs];
  rmr::Atomic<uint64_t> diverted_[kMaxProcs];
  /// Per-process reset slots; the Θ(n) abort/reset scan walks all of them.
  rmr::Atomic<uint64_t> reset_slot_[kMaxProcs];

  TournamentLock slow_;
  std::unique_ptr<QNode[]> nodes_;
};

}  // namespace rme
