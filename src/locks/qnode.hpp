// The MCS queue node shared by the queue-based locks (Section 4).
#pragma once

#include "rmr/memory_model.hpp"

namespace rme {

/// One request's node in an MCS-style queue. Lives in simulated NVRAM
/// (fields are instrumented atomics) inside a per-process pool; under the
/// DSM model both fields are homed at the owning process, so the owner's
/// spin on `locked` is local.
struct QNode {
  /// Reference to the successor node. Written at most once per use: either
  /// the successor links itself (CAS null -> successor) or the exiting
  /// owner seals it (CAS null -> this, the wait-free-exit sentinel).
  rmr::Atomic<QNode*> next{nullptr};

  /// Spin location: true while the owner must wait for its predecessor.
  rmr::Atomic<uint64_t> locked{0};

  /// Owning process (diagnostics + DSM homing); fixed at pool creation.
  int owner = -1;

  void SetHome(int pid) {
    owner = pid;
    next.set_home(pid);
    locked.set_home(pid);
  }
};

}  // namespace rme
