#include "locks/port_lock.hpp"

#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme {

PortLock::PortLock(int num_ports, int num_procs, std::string label)
    : k_(num_ports), n_(num_procs), label_(std::move(label)) {
  RME_CHECK(num_ports > 0 && num_ports <= kMaxProcs);
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  site_ = label_ + ".op";
  slot_ = std::make_unique<rmr::Atomic<uint64_t>[]>(static_cast<size_t>(k_));
  for (int j = 0; j < k_; ++j) {
    slot_[j].RawStore(Available(static_cast<uint64_t>(j)));
  }
  for (int i = 0; i < kMaxProcs; ++i) {
    pticket_[i].RawStore(kNoTicket);
    spin_[i].set_home(i);
  }
}

void PortLock::Recover(int port, int pid) {
  const char* site = site_.c_str();
  const uint64_t st = pstate_[port].Load(site);
  if (st == kClaiming && pticket_[port].Load(site) == kNoTicket) {
    // We may have crashed between claiming a slot and persisting the
    // ticket. Scan the ring for a slot claimed by our port and adopt it;
    // at most one can exist (one request per port at a time). This O(k)
    // scan runs only on post-crash recovery.
    for (int j = 0; j < k_; ++j) {
      const uint64_t v = slot_[j].Load(site);
      if (IsClaimed(v) && PortOf(v) == port) {
        pticket_[port].Store(TicketOf(v), site);
        break;
      }
    }
  } else if (st == kLeaving) {
    DoExit(port, pid);  // finish the interrupted Exit
  }
}

uint64_t PortLock::ClaimTicket(int port) {
  const char* site = site_.c_str();
  for (;;) {
    const uint64_t t = tail_.Load(site);
    const int j = static_cast<int>(t % static_cast<uint64_t>(k_));
    if (slot_[j].CompareExchange(Available(t), Claimed(t, port), site)) {
      tail_.CompareExchange(t, t + 1, site);  // help advance (idempotent)
      return t;
    }
    const uint64_t v = slot_[j].Load(site);
    if (IsClaimed(v) && TicketOf(v) == t) {
      // Someone claimed ticket t but hasn't advanced tail: help.
      tail_.CompareExchange(t, t + 1, site);
    } else if (!IsClaimed(v) && TicketOf(v) > t) {
      // Ticket t was already released (slot is available for t+k): the
      // tail we read is stale relative to completed work; help it past.
      tail_.CompareExchange(t, t + 1, site);
    }
    // Otherwise our read of tail was stale; reload and retry.
  }
}

void PortLock::Enter(int port, int pid) {
  const char* site = site_.c_str();
  RME_DCHECK(port >= 0 && port < k_);

  if (pstate_[port].Load(site) == kFree) {
    claimpid_[port].Store(static_cast<uint64_t>(pid) + 1, site);
    pticket_[port].Store(kNoTicket, site);
    pstate_[port].Store(kClaiming, site);
  }

  if (pstate_[port].Load(site) == kClaiming) {
    if (pticket_[port].Load(site) == kNoTicket) {
      const uint64_t t = ClaimTicket(port);
      pticket_[port].Store(t, site);
    }
    pstate_[port].Store(kWaiting, site);
  }

  if (pstate_[port].Load(site) == kWaiting) {
    const uint64_t t = pticket_[port].Load(site);
    uint64_t iter = 0;
    while (head_.Load(site) < t) {
      // Arm the local wake flag, close the lost-wakeup window, then spin
      // locally until our predecessor's release wakes us. Long waits park
      // on the flag's futex word: the releasing Store(1) wakes us.
      spin_[pid].Store(0, site);
      if (head_.Load(site) >= t) break;
      while (spin_[pid].Load(site) == 0) {
        SpinPause(iter++, spin_[pid].futex_word(), spin_[pid].futex_expected(0));
      }
    }
    pstate_[port].Store(kInCS, site);
  }
  // pstate == kInCS: bounded re-entry (BCSR).
}

void PortLock::Exit(int port, int pid) {
  const char* site = site_.c_str();
  const uint64_t st = pstate_[port].Load(site);
  const uint64_t claim = claimpid_[port].Load(site);
  if (st == kLeaving) {
    // Resume an interrupted exit; claim == 0 covers a crash between
    // clearing the claim and freeing the port (only the owner can be
    // here while the port is mid-exit).
    if (claim == static_cast<uint64_t>(pid) + 1 || claim == 0) {
      DoExit(port, pid);
    }
    return;
  }
  if (st == kInCS && claim == static_cast<uint64_t>(pid) + 1) {
    DoExit(port, pid);
  }
  // Otherwise this exit already completed (idempotent re-run): no-op.
}

void PortLock::DoExit(int port, int pid) {
  const char* site = site_.c_str();
  pstate_[port].Store(kLeaving, site);
  const uint64_t t = pticket_[port].Load(site);
  RME_CHECK_MSG(t != kNoTicket, "Exit without a ticket");
  const int j = static_cast<int>(t % static_cast<uint64_t>(k_));
  // Free the slot for ticket t+k; exact-value CAS makes re-runs no-ops.
  slot_[j].CompareExchange(Claimed(t, port), Available(t + k_), site);
  head_.CompareExchange(t, t + 1, site);
  tail_.CompareExchange(t, t + 1, site);  // keep tail >= head even if no
                                          // claimant ever helped
  WakeSuccessor(t);
  claimpid_[port].Store(0, site);
  pstate_[port].Store(kFree, site);
  // pticket is cleared by the next request's Free->Claiming transition;
  // keeping it lets a crashed Exit re-run find its ticket.
  (void)pid;
}

void PortLock::WakeSuccessor(uint64_t released_ticket) {
  const char* site = site_.c_str();
  const uint64_t succ = released_ticket + 1;
  const int j = static_cast<int>(succ % static_cast<uint64_t>(k_));
  const uint64_t v = slot_[j].Load(site);
  if (IsClaimed(v) && TicketOf(v) == succ) {
    const uint64_t claim = claimpid_[PortOf(v)].Load(site);
    if (claim != 0) {
      spin_[claim - 1].Store(1, site);
    }
  }
}

}  // namespace rme
