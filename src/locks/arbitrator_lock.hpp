// The framework's arbitrator: a dual-port strongly recoverable lock
// (§5.1). Each port ("side") is used by at most one process at a time —
// Left by the unique fast-path process, Right by the core-lock holder —
// but the identity of that process changes from passage to passage.
//
// The construction is a recoverable Peterson/Yang–Anderson-style
// 2-agent lock where the agents are the *sides*:
//   - flag[side]  : intent to enter,
//   - turn        : tie-break (a side yields by writing its own id),
//   - claim[side] : pid+1 of the process currently bound to the side,
//   - state[side] : per-side progress machine giving idempotent
//                   re-execution after crashes (BCSR in O(1) steps),
//   - spin[pid]   : per-process wake flags, homed at the process, so all
//                   waiting is local under DSM; writers on the other side
//                   wake the registered claimant after every step that
//                   could release it.
//
// RMR complexity is O(1) per passage under both models in every failure
// regime; there are no sensitive instructions (every write is re-runnable
// behind its state guard), so the lock is strongly recoverable.
#pragma once

#include <string>

#include "rmr/memory_model.hpp"

namespace rme {

enum class Side : int { kLeft = 0, kRight = 1 };

class ArbitratorLock {
 public:
  explicit ArbitratorLock(int num_procs, std::string label = "arb");

  ArbitratorLock(const ArbitratorLock&) = delete;
  ArbitratorLock& operator=(const ArbitratorLock&) = delete;

  void Recover(Side side, int pid);
  void Enter(Side side, int pid);
  void Exit(Side side, int pid);

  /// Test hook: pid+1 currently claiming the side (0 = none).
  uint64_t ClaimOf(Side side) const { return claim_[static_cast<int>(side)].RawLoad(); }

 private:
  enum State : uint64_t { kFree = 0, kTrying = 1, kInCS = 2, kLeaving = 3 };

  void DoExit(int s, int pid);
  void WakeOther(int s);
  bool MayEnter(int s);

  std::string label_;
  std::string site_;

  rmr::Atomic<uint64_t> flag_[2];
  rmr::Atomic<uint64_t> turn_{0};
  rmr::Atomic<uint64_t> claim_[2];
  rmr::Atomic<uint64_t> state_[2];
  rmr::Atomic<uint64_t> spin_[kMaxProcs];
};

}  // namespace rme
