#include "locks/cohort_lock.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme {

CohortConfig& cohort_lock_defaults() {
  static CohortConfig config;
  return config;
}

int CohortLock::DetectNumaNodes() {
#if defined(__linux__)
  // Count online NUMA nodes. sysfs is authoritative; a machine without
  // the directory (or a sandbox hiding it) gets one cohort, which makes
  // CohortLock degrade to "retention wrapper around the top lock".
  int nodes = 0;
  char path[64];
  for (;; ++nodes) {
    std::snprintf(path, sizeof(path), "/sys/devices/system/node/node%d",
                  nodes);
    if (access(path, F_OK) != 0) break;
  }
  if (nodes > 0) return nodes;
#endif
  return 1;
}

CohortLock::CohortLock(int num_procs, const CohortConfig& config,
                       TopFactory top_factory, std::string label)
    : n_(num_procs),
      cohorts_(std::clamp(config.cohorts > 0 ? config.cohorts
                                             : DetectNumaNodes(),
                          1, num_procs)),
      cohort_size_((num_procs + cohorts_ - 1) / cohorts_),
      cfg_(config),
      label_(std::move(label)) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  RME_CHECK(cfg_.batch_cap > 0 && cfg_.retain_cap > 0);
  site_ = label_ + ".op";
  local_.reserve(static_cast<size_t>(cohorts_));
  for (int c = 0; c < cohorts_; ++c) {
    // Every sub-lock admits any pid (rank collisions across cohorts are
    // impossible: only members of cohort c touch local_[c]).
    local_.push_back(
        std::make_unique<PortLock>(cohort_size_, num_procs,
                                   label_ + ".local" + std::to_string(c)));
  }
  top_ = top_factory(cohorts_);
  RME_CHECK(top_ != nullptr);
  for (int p = 0; p < kMaxProcs; ++p) {
    retained_[p].set_home(p);
    batch_len_[p].store(0, std::memory_order_relaxed);
    retain_run_[p].store(0, std::memory_order_relaxed);
    last_depth_[p].store(0, std::memory_order_relaxed);
  }
  for (int c = 0; c < cohorts_; ++c) {
    // Home the cohort-shared word at the cohort's first member.
    top_held_[c].set_home(c * cohort_size_);
  }
}

void CohortLock::Recover(int /*pid*/) {
  // Deliberately empty: every crash window is repaired inside Enter —
  // local_[c]->Recover handles a torn local passage, top_->Recover a torn
  // top passage, and the retained_/top_held_ flags are ordered so that
  // re-running Enter from any interleaving point converges (see Exit).
}

void CohortLock::Enter(int pid) {
  const char* site = site_.c_str();
  if (retained_[pid].Load(site) != 0) {
    // Retained fast path: we never released after the previous Exit. The
    // flag is homed here and written only by us, so steady state costs
    // zero RMRs in both the CC and DSM models.
    last_depth_[pid].store(0, std::memory_order_relaxed);
    stat_retained_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int c = CohortOf(pid);
  const int rank = RankOf(pid);
  // Local level first (a crashed previous passage is repaired here; both
  // calls are idempotent under PortLock's state machine, including the
  // kInCS fall-through when the crash hit after local entry).
  local_[c]->Recover(rank, pid);
  local_[c]->Enter(rank, pid);
  if (top_held_[c].Load(site) == 0) {
    // We are the cohort's representative; acquire the global lock under
    // the cohort's pseudo-pid. Recover first: a predecessor from this
    // cohort may have died mid-top-passage (its kLeaving/kClaiming state
    // is ours to repair — the pseudo-pid serializes on local_[c]).
    top_->Recover(c);
    top_->Enter(c);
    top_held_[c].Store(1, site);
    last_depth_[pid].store(2, std::memory_order_relaxed);
    stat_top_acquire_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Handoff: the previous local holder kept the top lock for us.
    last_depth_[pid].store(1, std::memory_order_relaxed);
    stat_local_handoff_.fetch_add(1, std::memory_order_relaxed);
  }
  // Last step of Enter: marks the full stack held. A crash before this
  // store re-runs Enter, where the local kInCS fall-through and the
  // top_held_ check reconverge without double-acquiring anything.
  retained_[pid].Store(1, site);
}

uint64_t CohortLock::LocalWaitersRaw(int cohort) const {
  const uint64_t head = local_[cohort]->HeadTicket();
  const uint64_t tail = local_[cohort]->TailTicket();
  return tail > head ? tail - head - 1 : 0;
}

void CohortLock::Exit(int pid) {
  const int c = CohortOf(pid);
  const uint64_t run =
      retain_run_[pid].fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t batch =
      batch_len_[c].fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t local_waiters = LocalWaitersRaw(c);
  // -1 (unobservable) conservatively counts as demand.
  const bool top_demand = cohorts_ > 1 && top_->QueuedRequests() != 0;
  const bool local_demand = local_waiters != 0;

  bool keep;
  if (cfg_.adaptive) {
    keep = !(top_demand && batch >= cfg_.batch_cap) &&
           !((local_demand || top_demand) && run >= cfg_.retain_cap);
  } else {
    keep = batch < cfg_.batch_cap && run < cfg_.retain_cap;
  }
  if (keep) {
    // Retain the full stack: Exit performs no shared-memory operation at
    // all. Mutual exclusion is preserved precisely because nothing is
    // released; the caps (plus OnProcessDone) bound how long demand can
    // be deferred.
    return;
  }

  retain_run_[pid].store(0, std::memory_order_relaxed);
  // Keeping the top lock is only sound if a cohort-mate is queued to
  // inherit the release obligation (invariant in the header). Batch
  // exhaustion forces a top release, but (adaptively) only when a remote
  // cohort actually wants it — otherwise local handoffs continue under
  // the same top hold.
  const bool release_top =
      (batch >= cfg_.batch_cap && (top_demand || !cfg_.adaptive)) ||
      local_waiters == 0;
  const char* site = site_.c_str();
  // Release order is root-first and flag-before-unlock throughout, so
  // every crash window re-converges through Enter:
  //   after retained_=0, before top_held_=0 → Enter sees the local
  //     kInCS fall-through and top_held_==1: the release is cancelled;
  //   after top_held_=0, before top_->Exit → Enter re-runs top_->Recover
  //     (no-op: top state still kInCS) + top_->Enter (immediate reentry);
  //   mid top_->Exit → top_->Recover finishes the kLeaving segment, then
  //     top_->Enter re-acquires;
  //   after top_->Exit, before local exit → Enter re-acquires the top
  //     lock normally while still holding the local port.
  retained_[pid].Store(0, site);
  if (release_top) {
    batch_len_[c].store(0, std::memory_order_relaxed);
    top_held_[c].Store(0, site);
    top_->Exit(c);
  }
  local_[c]->Exit(RankOf(pid), pid);
}

void CohortLock::OnProcessDone(int pid) {
  // A retained process that stops requesting must surrender the stack
  // now, or every waiter (local and remote) starves.
  if (retained_[pid].RawLoad() == 0) return;
  const char* site = site_.c_str();
  const int c = CohortOf(pid);
  retain_run_[pid].store(0, std::memory_order_relaxed);
  batch_len_[c].store(0, std::memory_order_relaxed);
  retained_[pid].Store(0, site);
  // retained_ == 1 implies we are the representative, so the top lock is
  // ours to release (checked defensively anyway).
  if (top_held_[c].Load(site) != 0) {
    top_held_[c].Store(0, site);
    top_->Exit(c);
  }
  local_[c]->Exit(RankOf(pid), pid);
}

int64_t CohortLock::QueuedRequests() const {
  int64_t total = 0;
  for (int c = 0; c < cohorts_; ++c) {
    total += static_cast<int64_t>(LocalWaitersRaw(c));
  }
  const int64_t top = top_->QueuedRequests();
  return top > 0 ? total + top : total;
}

std::string CohortLock::StatsString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "cohorts=%d retained=%llu handoff=%llu top=%llu", cohorts_,
                static_cast<unsigned long long>(
                    stat_retained_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    stat_local_handoff_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    stat_top_acquire_.load(std::memory_order_relaxed)));
  return buf;
}

}  // namespace rme
