// Algorithm 4: epoch-based memory reclamation for MCS queue nodes.
//
// A crashed process may leave other processes holding references to its
// queue node indefinitely, so nodes cannot be recycled eagerly. Each
// process owns two pools (active/reserve) of 2n nodes. Allocation walks
// the active pool; one incremental Epoch() step runs per allocation:
// first a Scan phase snapshots every process's `in` counter, then a Wait
// phase waits for each `out` counter to catch up to its snapshot, then
// the pools swap. By the time a node is handed out again, 4n requests
// have completed since its last use, and every request concurrent with
// that use has finished — no stale reference can remain.
//
// Key recoverability property (relied on by WrLock): repeated calls to
// NewNode() return the SAME node until RetireNode() is called, so a
// process that crashes after allocating but before persisting the
// reference simply re-allocates and gets the identical node back.
//
// The paper's pseudocode busy-waits on remote `out` counters (CC model).
// We implement the waiting with the notification scheme the paper
// sketches for DSM (§7.2): the waiter registers itself and spins on a
// wake flag homed at its own node, and retiring processes wake satisfied
// waiters — O(1) RMRs per wait under both CC and DSM.
#pragma once

#include <string>

#include "reclaim/node_pool.hpp"
#include "rmr/memory_model.hpp"

namespace rme {

class EpochReclaimer {
 public:
  /// `label` prefixes crash-site names so multi-lock composites can tell
  /// instances apart in failure logs.
  EpochReclaimer(int num_procs, std::string label = "reclaim");

  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  /// Returns the node for `pid`'s current request, allocating one if the
  /// previous request's node was retired. Idempotent until RetireNode.
  QNode* NewNode(int pid);

  /// Marks `pid`'s current node retired (idempotent).
  void RetireNode(int pid);

  /// True if `pid` currently has an allocated-but-unretired node.
  bool HasActiveNode(int pid) const;

  /// Total nodes owned (space accounting): 4n per process.
  size_t TotalNodes() const { return pool_.TotalNodes(); }

  int num_procs() const { return pool_.num_procs(); }

  /// Number of pool swaps performed by `pid` (test/diagnostic hook).
  uint64_t PoolSwaps(int pid) const;

 private:
  enum SwitchState : uint64_t { kCompleted = 0, kStarted = 1, kInProgress = 2 };
  enum ModeState : uint64_t { kScan = 0, kWait = 1 };

  void Epoch(int pid);
  void WaitForOut(int pid, int target, uint64_t threshold);
  void NotifyWaiters(int pid);

  NodePool pool_;
  std::string label_;
  std::string site_wait_;  // cached crash-site labels (stable c_str storage)
  std::string site_ctr_;

  // Algorithm 4 shared state, one slot per process, homed at the process.
  rmr::Atomic<uint64_t> in_[kMaxProcs];
  rmr::Atomic<uint64_t> out_[kMaxProcs];
  rmr::Atomic<uint64_t> switch_[kMaxProcs];
  rmr::Atomic<uint64_t> mode_[kMaxProcs];
  rmr::Atomic<uint64_t> index_[kMaxProcs];
  /// Monotonic pool-cycle counter: active side = parity, value = number
  /// of pool swaps so far. Flipping via one FetchAdd makes the swap and
  /// its count a single atomic step (exactly-once across crashes).
  rmr::Atomic<uint64_t> pool_epoch_[kMaxProcs];
  rmr::Atomic<uint64_t> confirm_pool_epoch_[kMaxProcs];
  rmr::Atomic<uint64_t> snapshot_[kMaxProcs][kMaxProcs];

  // Notification machinery (paper §7.2 DSM variant).
  rmr::Atomic<uint64_t> waiting_for_proc_[kMaxProcs];
  rmr::Atomic<uint64_t> waiting_threshold_[kMaxProcs];
  rmr::Atomic<uint64_t> wake_flag_[kMaxProcs];
  rmr::Atomic<uint64_t> waiters_mask_[kMaxProcs];
};

}  // namespace rme
