#include "reclaim/epoch_reclaimer.hpp"

#include "rmr/counters.hpp"
#include "util/assert.hpp"

namespace rme {

EpochReclaimer::EpochReclaimer(int num_procs, std::string label)
    : pool_(num_procs), label_(std::move(label)) {
  site_wait_ = label_ + ".wait";
  site_ctr_ = label_ + ".ctr";
  for (int i = 0; i < kMaxProcs; ++i) {
    in_[i].set_home(i);
    out_[i].set_home(i);
    switch_[i].set_home(i);
    mode_[i].set_home(i);
    index_[i].set_home(i);
    pool_epoch_[i].set_home(i);
    confirm_pool_epoch_[i].set_home(i);
    waiting_for_proc_[i].set_home(i);
    waiting_threshold_[i].set_home(i);
    wake_flag_[i].set_home(i);
    waiters_mask_[i].set_home(i);
    for (int j = 0; j < kMaxProcs; ++j) snapshot_[i][j].set_home(i);
    switch_[i].RawStore(kCompleted);
    mode_[i].RawStore(kScan);
  }
}

QNode* EpochReclaimer::NewNode(int pid) {
  const char* site = site_ctr_.c_str();
  if (in_[pid].Load(site) == out_[pid].Load(site)) {
    // Previous node was retired: run one reclamation step, then open a
    // new logical allocation. A crash between the two leaves in == out,
    // so recovery re-runs Epoch (its state machine is idempotent).
    Epoch(pid);
    in_[pid].FetchAdd(1, site);
  }
  const int slot =
      static_cast<int>(out_[pid].Load(site) % static_cast<uint64_t>(pool_.nodes_per_side()));
  const int side = static_cast<int>(pool_epoch_[pid].Load(site) & 1);
  return pool_.At(pid, side, slot);
}

void EpochReclaimer::RetireNode(int pid) {
  const char* site = site_ctr_.c_str();
  if (in_[pid].Load(site) != out_[pid].Load(site)) {
    out_[pid].FetchAdd(1, site);
  }
  NotifyWaiters(pid);
}

bool EpochReclaimer::HasActiveNode(int pid) const {
  return in_[pid].RawLoad() != out_[pid].RawLoad();
}

uint64_t EpochReclaimer::PoolSwaps(int pid) const {
  return pool_epoch_[pid].RawLoad();
}

void EpochReclaimer::Epoch(int pid) {
  const char* site = site_ctr_.c_str();
  const int n = pool_.num_procs();
  if (switch_[pid].Load(site) == kCompleted) {
    int idx = static_cast<int>(index_[pid].Load(site));
    if (mode_[pid].Load(site) == kScan) {
      // Scan phase: snapshot the next process's allocation counter.
      snapshot_[pid][idx].Store(in_[idx].Load(site), site);
      if (idx < n - 1) {
        index_[pid].Store(static_cast<uint64_t>(idx) + 1, site);
      } else {
        mode_[pid].Store(kWait, site);
      }
    } else if (mode_[pid].Load(site) == kWait) {
      // One wait step per call (never in the same call as a scan step):
      // this keeps the full cycle at exactly 2n allocations, aligned with
      // the 2n slots per pool side — reuse distance is then exactly 4n.
      // Wait phase: let the next process's retirements catch up to the
      // snapshot, guaranteeing its pre-snapshot request has finished.
      idx = static_cast<int>(index_[pid].Load(site));
      const uint64_t threshold = snapshot_[pid][idx].Load(site);
      WaitForOut(pid, idx, threshold);
      if (idx > 0) {
        index_[pid].Store(static_cast<uint64_t>(idx) - 1, site);
      } else {
        switch_[pid].Store(kStarted, site);
      }
    }
  }
  if (switch_[pid].Load(site) == kStarted) {
    // Swap active and reserve pools exactly once even across crashes:
    // the flip only happens while pool_epoch == confirm_pool_epoch, and
    // the single FetchAdd both flips the side (parity) and counts it.
    const uint64_t cur = pool_epoch_[pid].Load(site);
    if (cur == confirm_pool_epoch_[pid].Load(site)) {
      pool_epoch_[pid].FetchAdd(1, site);
    }
    switch_[pid].Store(kInProgress, site);
  }
  if (switch_[pid].Load(site) == kInProgress) {
    const uint64_t cur = pool_epoch_[pid].Load(site);
    if (cur != confirm_pool_epoch_[pid].Load(site)) {
      confirm_pool_epoch_[pid].Store(cur, site);
    }
    mode_[pid].Store(kScan, site);
    switch_[pid].Store(kCompleted, site);
  }
}

void EpochReclaimer::WaitForOut(int pid, int target, uint64_t threshold) {
  const char* site = site_wait_.c_str();
  const uint64_t bit = 1ULL << pid;
  while (out_[target].Load(site) < threshold) {
    // Register, then re-check to close the lost-wakeup window, then spin
    // locally on our wake flag until a retirement satisfies us.
    wake_flag_[pid].Store(0, site);
    waiting_for_proc_[pid].Store(static_cast<uint64_t>(target), site);
    waiting_threshold_[pid].Store(threshold, site);
    waiters_mask_[target].FetchOr(bit, site);
    if (out_[target].Load(site) >= threshold) {
      waiters_mask_[target].FetchAnd(~bit, site);
      break;
    }
    uint64_t iter = 0;
    while (wake_flag_[pid].Load(site) == 0) {
      SpinPause(iter++, wake_flag_[pid].futex_word(),
                wake_flag_[pid].futex_expected(0));
    }
  }
}

void EpochReclaimer::NotifyWaiters(int pid) {
  const char* site = site_wait_.c_str();
  uint64_t mask = waiters_mask_[pid].Load(site);
  if (mask == 0) return;
  const uint64_t out_now = out_[pid].Load(site);
  for (int i = 0; mask != 0 && i < pool_.num_procs(); ++i) {
    const uint64_t bit = 1ULL << i;
    if ((mask & bit) == 0) continue;
    mask &= ~bit;
    if (waiting_for_proc_[i].Load(site) != static_cast<uint64_t>(pid)) {
      // Stale registration (waiter crashed or moved on): clear it.
      waiters_mask_[pid].FetchAnd(~bit, site);
      continue;
    }
    if (out_now >= waiting_threshold_[i].Load(site)) {
      // Wake before deregistering: if we crash between the two steps the
      // waiter has already been released (a stale mask bit is cleaned up
      // lazily above; a lost wake would deadlock the waiter).
      wake_flag_[i].Store(1, site);
      waiters_mask_[pid].FetchAnd(~bit, site);
    }
  }
}

}  // namespace rme
