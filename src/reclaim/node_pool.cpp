#include "reclaim/node_pool.hpp"

#include "util/assert.hpp"

namespace rme {

NodePool::NodePool(int num_procs) : n_(num_procs) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  const int per_side = nodes_per_side();
  nodes_.reserve(static_cast<size_t>(n_) * 2 * per_side);
  for (int pid = 0; pid < n_; ++pid) {
    for (int side = 0; side < 2; ++side) {
      for (int slot = 0; slot < per_side; ++slot) {
        auto node = std::make_unique<QNode>();
        node->SetHome(pid);
        nodes_.push_back(std::move(node));
      }
    }
  }
}

QNode* NodePool::At(int pid, int side, int slot) {
  RME_DCHECK(pid >= 0 && pid < n_);
  RME_DCHECK(side == 0 || side == 1);
  RME_DCHECK(slot >= 0 && slot < nodes_per_side());
  const size_t idx = (static_cast<size_t>(pid) * 2 + static_cast<size_t>(side)) *
                         static_cast<size_t>(nodes_per_side()) +
                     static_cast<size_t>(slot);
  return nodes_[idx].get();
}

}  // namespace rme
