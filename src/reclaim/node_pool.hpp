// Raw node storage backing the epoch reclaimer: for each process, two
// pools (active / reserve) of 2n nodes each, exactly as Algorithm 4's
// `pool[1..n][0,1][1..2n]`. Reuse safety is verified externally:
// tests/reclaim_test.cpp tracks per-node allocation history and asserts
// the 4n-request reuse distance (and, under crash storms, the
// two-pool-swaps invariant).
#pragma once

#include <memory>
#include <vector>

#include "locks/qnode.hpp"

namespace rme {

class NodePool {
 public:
  /// Creates pools for `num_procs` processes, 2 sides x `2*num_procs`
  /// nodes per process, with DSM homes set to the owning process.
  explicit NodePool(int num_procs);

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  int num_procs() const { return n_; }
  int nodes_per_side() const { return 2 * n_; }

  /// The node at (process, side, slot). slot in [0, 2n).
  QNode* At(int pid, int side, int slot);

  /// Total node count (space-accounting for EXPERIMENTS.md).
  size_t TotalNodes() const { return nodes_.size(); }

 private:
  int n_;
  std::vector<std::unique_ptr<QNode>> nodes_;
};

}  // namespace rme
