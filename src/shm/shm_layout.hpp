// Control-block layout for the fork-based real-crash harness: everything
// the parent and its forked children share beyond the lock's own state.
// Lives in the shared segment (shm_segment.hpp), so every field that is
// mutated after the first fork is a std::atomic.
//
// Correctness validation is two-layered:
//  - a live CS-ownership word (`owner`) that every child exchanges on
//    entry/exit of the critical section — a cheap online tripwire for
//    overlapping critical sections;
//  - an append-only event log (ticketed by one fetch_add, so totally
//    ordered) that the parent scans post-hoc to check mutual exclusion,
//    bounded CS reentry, and — for weakly recoverable locks — whether
//    each overlap was admissible under an active failure consequence
//    interval (paper Defs 3.1/3.2). The log is the real checker; the
//    ownership word is a cross-check.
#pragma once

#include <atomic>
#include <cstdint>

#include "crash/crash.hpp"
#include "rmr/memory_model.hpp"

namespace rme::shm {

enum class EventKind : uint32_t {
  kInvalid = 0,  ///< slot reserved but never written (writer was killed)
  kReqStart,     ///< super-passage start (mirrors FailureLog::OnRequestStart)
  kEnter,        ///< CS entered (after lock.Enter returned)
  kExit,         ///< CS left (before lock.Exit)
  kReqDone,      ///< passage satisfied (after lock.Exit returned)
  kKill,         ///< parent observed/issued a SIGKILL of `pid`
  kCrashNoted,   ///< respawned `pid` found its in_cs flag set (died in CS)
  kDone,         ///< pid finished its workload gracefully
};

struct ShmEvent {
  uint32_t pid = 0;
  /// EventKind; atomic and written *last* (release) so a writer killed
  /// mid-append leaves the slot reading as kInvalid, never as a valid
  /// kind with garbage operands.
  std::atomic<uint32_t> kind{0};
  uint64_t passage = 0;   ///< pid's passage index at the event
  uint32_t unsafe = 0;    ///< kKill only: crash hit a sensitive site
  uint32_t pad = 0;
};

/// Per-child control words, one cache line each so children never steal
/// each other's lines on the passage hot path.
struct alignas(kCacheLineBytes) PerPidControl {
  std::atomic<uint64_t> done{0};      ///< completed passages (persists kills)
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint32_t> in_cs{0};     ///< set around the logged CS region
  std::atomic<uint32_t> req_open{0};  ///< super-passage in flight
  std::atomic<uint32_t> finished{0};  ///< graceful completion
};

struct ShmControl {
  /// Live CS ownership word: 0 free, pid+1 held. Children exchange on
  /// CS entry; any unexpected previous owner bumps cs_overlap_events.
  std::atomic<uint32_t> owner{0};
  std::atomic<uint64_t> cs_overlap_events{0};

  /// Event log: `log` points into the same segment, so the address is
  /// valid in every process of the fork tree.
  std::atomic<uint64_t> log_next{0};
  std::atomic<uint32_t> log_overflow{0};
  uint64_t log_cap = 0;
  ShmEvent* log = nullptr;

  /// Child-side SIGKILL attribution (written by SigkillCrash pre-kill).
  SigkillCrash::PidSlot kill_slots[kMaxProcs];

  PerPidControl per_pid[kMaxProcs];
};

/// Appends one event (any process). A writer killed between reserving
/// the slot and filling it leaves kind == kInvalid, which scans skip.
inline void AppendEvent(ShmControl* ctl, EventKind kind, int pid,
                        uint64_t passage, bool unsafe = false) {
  const uint64_t slot =
      ctl->log_next.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= ctl->log_cap) {
    ctl->log_overflow.store(1, std::memory_order_relaxed);
    return;
  }
  ShmEvent& e = ctl->log[slot];
  e.pid = static_cast<uint32_t>(pid);
  e.passage = passage;
  e.unsafe = unsafe ? 1 : 0;
  e.kind.store(static_cast<uint32_t>(kind), std::memory_order_release);
}

}  // namespace rme::shm
