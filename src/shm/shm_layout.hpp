// Control-block layout for the fork-based real-crash harness: everything
// the parent and its forked children share beyond the lock's own state.
// Lives in the shared segment (shm_segment.hpp), so every field that is
// mutated after the first fork is a std::atomic.
//
// Correctness validation is two-layered:
//  - a live CS-ownership word (`owner`) that every child exchanges on
//    entry/exit of the critical section — a cheap online tripwire for
//    overlapping critical sections;
//  - an append-only event log (ticketed by one fetch_add, so totally
//    ordered) that the parent scans post-hoc to check mutual exclusion,
//    bounded CS reentry, and — for weakly recoverable locks — whether
//    each overlap was admissible under an active failure consequence
//    interval (paper Defs 3.1/3.2). The log is the real checker; the
//    ownership word is a cross-check.
//
// RMR accounting is homed here too: per-pid, cache-line-padded
// SharedOpCounters slots that the instrumentation hot path mirrors into
// (rmr/counters.cpp), so RMR counts survive a SIGKILL of their owner —
// every event additionally snapshots the writer's cumulative counters,
// which lets the post-hoc scan price each passage and condition it on
// the kills that overlapped it.
#pragma once

#include <atomic>
#include <cstdint>

#include "crash/crash.hpp"
#include "rmr/memory_model.hpp"

namespace rme::shm {

enum class EventKind : uint32_t {
  kInvalid = 0,  ///< slot reserved but never written (writer was killed)
  kReqStart,     ///< super-passage start (mirrors FailureLog::OnRequestStart)
  kEnter,        ///< CS entered (after lock.Enter returned)
  kExit,         ///< CS left (before lock.Exit)
  kReqDone,      ///< passage satisfied (after lock.Exit returned)
  kKill,         ///< parent observed/issued a SIGKILL of `pid`
  kCrashNoted,   ///< respawned `pid` found its previous incarnation died
                 ///< inside the logged CS region (cs_ticket forensics)
  kDone,         ///< pid finished its workload gracefully
};

inline const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kInvalid: return "invalid";
    case EventKind::kReqStart: return "req-start";
    case EventKind::kEnter: return "enter";
    case EventKind::kExit: return "exit";
    case EventKind::kReqDone: return "req-done";
    case EventKind::kKill: return "kill";
    case EventKind::kCrashNoted: return "crash-noted";
    case EventKind::kDone: return "done";
  }
  return "?";
}

struct ShmEvent {
  uint32_t pid = 0;
  /// EventKind; atomic and written *last* (release) so a writer killed
  /// mid-append leaves the slot reading as kInvalid, never as a valid
  /// kind with garbage operands.
  std::atomic<uint32_t> kind{0};
  uint64_t passage = 0;   ///< pid's passage index at the event
  /// Writer's cumulative OpCounters at the event (zero for parent-side
  /// events and when counter mirroring is off). Cumulative across the
  /// writer's respawns, so per-pid values are monotone in ticket order
  /// and a passage's cost is the kReqDone − kReqStart delta.
  uint64_t ops = 0;
  uint64_t cc_rmrs = 0;
  uint64_t dsm_rmrs = 0;
  uint32_t unsafe = 0;    ///< kKill only: crash hit a sensitive site
  uint32_t pad = 0;
};

/// cs_ticket encoding: 0 = outside the logged CS region; otherwise
/// ((slot + 1) << 1) | phase, where `slot` is the log index this pid
/// reserved for its bracket event and `phase` is kCsEnterPhase while the
/// kEnter commit is pending or done, kCsExitPhase once the kExit slot
/// has been reserved. The ticket is stored *before* the event commits,
/// so a respawn can decide exactly where its previous incarnation died:
/// the reserved slot still reading kInvalid means the commit never
/// happened. This closes the old two-instruction windows where a kill
/// produced a "crash noted" with no logged CS (or vice versa).
inline constexpr uint64_t kCsEnterPhase = 0;
inline constexpr uint64_t kCsExitPhase = 1;

inline uint64_t EncodeCsTicket(uint64_t slot, uint64_t phase) {
  return ((slot + 1) << 1) | phase;
}
inline uint64_t CsTicketSlot(uint64_t ticket) { return (ticket >> 1) - 1; }
inline uint64_t CsTicketPhase(uint64_t ticket) { return ticket & 1; }

/// Life-cycle phase a child publishes into its PerPidControl slot at
/// every transition of the Algorithm-1 loop. The word survives a SIGKILL
/// of its owner frozen at the victim's last published phase, so the
/// parent classifies every kill by where it landed (the recovery-storm
/// controller drives kills specifically into kRecovering — the Thm 5.17
/// / §7.1 regime) and the liveness watchdog's hang dumps say what the
/// stuck child was doing.
enum class PidPhase : uint32_t {
  kIdle = 0,        ///< NCS / between requests
  kRecovering,      ///< inside (or about to call) lock->Recover
  kEntering,        ///< inside lock->Enter or the enter bracket
  kCs,              ///< inside the critical section
  kExiting,         ///< inside the exit bracket or lock->Exit
};
inline constexpr int kNumPidPhases = 5;

inline const char* PidPhaseName(uint32_t p) {
  switch (static_cast<PidPhase>(p)) {
    case PidPhase::kIdle: return "idle";
    case PidPhase::kRecovering: return "recovering";
    case PidPhase::kEntering: return "entering";
    case PidPhase::kCs: return "cs";
    case PidPhase::kExiting: return "exiting";
  }
  return "?";
}

/// Per-child control words, one cache line each so children never steal
/// each other's lines on the passage hot path.
struct alignas(kCacheLineBytes) PerPidControl {
  std::atomic<uint64_t> done{0};      ///< completed passages (persists kills)
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> cs_ticket{0}; ///< logged-CS bracket (see above)
  std::atomic<uint32_t> req_open{0};  ///< super-passage in flight
  std::atomic<uint32_t> finished{0};  ///< graceful completion
  /// PidPhase, published (relaxed, owner-only) at each loop transition.
  std::atomic<uint32_t> phase{0};
  /// Monotonic incarnation counter: bumped by the *parent* immediately
  /// before each fork of this pid, read back by the child at bind time.
  /// A child whose recorded incarnation no longer matches the slot is
  /// stale (the parent has already respawned past it) and must exit
  /// without touching the segment — a stale binding can never mirror
  /// into a live slot.
  std::atomic<uint64_t> incarnation{0};
  /// Deepest lock level (RecoverableLock::LastPathDepth) this pid ever
  /// reached, across all incarnations. Owner-written max; the storm
  /// report checks it against the Thm 5.17 x(x-1)/2 failure bound.
  std::atomic<uint64_t> max_level{0};
  /// Most recent *harness-level* probe site ("h.recover.brk", ...); lock
  ///-internal sites stay in the child's private ProcessContext. String
  /// literals share addresses across the fork tree, so the parent can
  /// print the pointer in a hang dump.
  std::atomic<const char*> last_probe_site{nullptr};
};

struct ShmControl {
  /// Live CS ownership word: 0 free, pid+1 held. Children exchange on
  /// CS entry; any unexpected previous owner bumps cs_overlap_events.
  std::atomic<uint32_t> owner{0};
  std::atomic<uint64_t> cs_overlap_events{0};

  /// Event log: `log` points into the same segment, so the address is
  /// valid in every process of the fork tree.
  std::atomic<uint64_t> log_next{0};
  std::atomic<uint32_t> log_overflow{0};
  uint64_t log_cap = 0;
  ShmEvent* log = nullptr;

  /// Child-side SIGKILL attribution (written by SigkillCrash pre-kill).
  SigkillCrash::PidSlot kill_slots[kMaxProcs];

  PerPidControl per_pid[kMaxProcs];

  /// Kill-survivable RMR accounting: one cache-line-padded slot per pid,
  /// bound as the instrumentation mirror at ProcessBinding time. Only
  /// the owner writes its slot (relaxed, its own line), so the PR 1
  /// false-sharing discipline is preserved; a SIGKILL loses at most the
  /// owner's one in-flight op.
  SharedOpCounters pid_counters[kMaxProcs];

  /// Stage-3 futex parking lot (rmr::SpinPause): homed in the segment so
  /// children of the fork tree park and wake each other across process
  /// boundaries — FUTEX_WAIT/WAKE on MAP_SHARED words, no
  /// FUTEX_PRIVATE_FLAG. The harness installs it process-wide before the
  /// first fork. A SIGKILL of a parked waiter leaks its waiter counts;
  /// that only costs wakers spurious bucket checks, never a lost wakeup
  /// (parks carry growing timeouts and respawns call WakeAllParked).
  rmr_detail::ParkLot park_lot;
};

/// Reserves one log slot (any process). The slot stays kInvalid until
/// CommitEvent fills it; a reservation past log_cap records overflow and
/// commits nowhere.
inline uint64_t ReserveEvent(ShmControl* ctl) {
  const uint64_t slot =
      ctl->log_next.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= ctl->log_cap) {
    ctl->log_overflow.store(1, std::memory_order_relaxed);
  }
  return slot;
}

/// Fills a reserved slot. The kind word is written *last* (release): a
/// writer killed mid-commit leaves kInvalid, which scans skip.
inline void CommitEvent(ShmControl* ctl, uint64_t slot, EventKind kind,
                        int pid, uint64_t passage,
                        const OpCounters* counters = nullptr,
                        bool unsafe = false) {
  if (slot >= ctl->log_cap) return;
  ShmEvent& e = ctl->log[slot];
  e.pid = static_cast<uint32_t>(pid);
  e.passage = passage;
  if (counters != nullptr) {
    e.ops = counters->ops;
    e.cc_rmrs = counters->cc_rmrs;
    e.dsm_rmrs = counters->dsm_rmrs;
  }
  e.unsafe = unsafe ? 1 : 0;
  e.kind.store(static_cast<uint32_t>(kind), std::memory_order_release);
}

/// Appends one event (reserve + commit in one step).
inline void AppendEvent(ShmControl* ctl, EventKind kind, int pid,
                        uint64_t passage,
                        const OpCounters* counters = nullptr,
                        bool unsafe = false) {
  CommitEvent(ctl, ReserveEvent(ctl), kind, pid, passage, counters, unsafe);
}

}  // namespace rme::shm
