#include "shm/shm_segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/assert.hpp"

namespace rme::shm {

namespace {

/// Registry of live segments, consulted by the replaced operator delete
/// (which must work on any thread, long after the PlacementScope ended).
/// Fixed capacity: the fork harness uses one segment per run and runs
/// are sequential; a handful of slots is plenty.
constexpr int kMaxSegments = 8;

struct SegmentRange {
  std::atomic<const char*> base{nullptr};
  std::atomic<size_t> size{0};
};
SegmentRange g_segments[kMaxSegments];

void RegisterSegment(const void* base, size_t size) {
  for (auto& slot : g_segments) {
    const char* expected = nullptr;
    if (slot.base.compare_exchange_strong(
            expected, static_cast<const char*>(base),
            std::memory_order_acq_rel)) {
      slot.size.store(size, std::memory_order_release);
      return;
    }
  }
  RME_CHECK_MSG(false, "too many live shm segments");
}

void UnregisterSegment(const void* base) {
  for (auto& slot : g_segments) {
    if (slot.base.load(std::memory_order_acquire) == base) {
      slot.size.store(0, std::memory_order_release);
      slot.base.store(nullptr, std::memory_order_release);
      return;
    }
  }
}

thread_local Segment* tls_placement_segment = nullptr;

size_t RoundUp(size_t v, size_t align) { return (v + align - 1) & ~(align - 1); }

}  // namespace

Segment::Segment(size_t bytes, const std::string& name, bool keep_name) {
  RME_CHECK_MSG(bytes >= sizeof(SegmentHeader) + 4096,
                "shm segment too small to be useful");
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  capacity_ = RoundUp(bytes, page);

  if (name.empty()) {
    base_ = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    RME_CHECK_MSG(base_ != MAP_FAILED, "mmap(MAP_SHARED|MAP_ANONYMOUS) failed");
  } else {
    std::string path = name[0] == '/' ? name : "/" + name;
    ::shm_unlink(path.c_str());  // stale run with the same name
    const int fd = ::shm_open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    RME_CHECK_MSG(fd >= 0, "shm_open failed");
    RME_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(capacity_)) == 0,
                  "ftruncate on shm segment failed");
    base_ = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd, 0);
    ::close(fd);
    RME_CHECK_MSG(base_ != MAP_FAILED, "mmap of shm segment failed");
    if (keep_name) {
      shm_name_ = path;
    } else {
      ::shm_unlink(path.c_str());  // mapping stays; the name never leaks
    }
  }

  auto* hdr = ::new (base_) SegmentHeader();
  hdr->capacity = capacity_;
  hdr->bump.store(RoundUp(sizeof(SegmentHeader), alignof(std::max_align_t)),
                  std::memory_order_relaxed);
  RegisterSegment(base_, capacity_);
}

Segment::~Segment() {
  UnregisterSegment(base_);
  ::munmap(base_, capacity_);
  if (!shm_name_.empty()) ::shm_unlink(shm_name_.c_str());
}

size_t Segment::bytes_used() const {
  return header()->bump.load(std::memory_order_relaxed);
}

void* Segment::Allocate(size_t bytes, size_t align) {
  RME_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  std::atomic<uint64_t>& bump = header()->bump;
  uint64_t offset = bump.load(std::memory_order_relaxed);
  uint64_t start;
  do {
    start = RoundUp(offset, align);
    if (start + bytes > capacity_) {
      std::fprintf(stderr,
                   "shm::Segment exhausted: want %zu bytes (align %zu), "
                   "used %llu of %zu — raise segment_bytes\n",
                   bytes, align, static_cast<unsigned long long>(offset),
                   capacity_);
      std::abort();
    }
  } while (!bump.compare_exchange_weak(offset, start + bytes,
                                       std::memory_order_relaxed));
  return static_cast<char*>(base_) + start;
}

bool PointerInAnySegment(const void* p) {
  const char* c = static_cast<const char*>(p);
  for (const auto& slot : g_segments) {
    const char* base = slot.base.load(std::memory_order_acquire);
    if (base == nullptr) continue;
    const size_t size = slot.size.load(std::memory_order_acquire);
    if (c >= base && c < base + size) return true;
  }
  return false;
}

PlacementScope::PlacementScope(Segment* seg) {
  RME_CHECK_MSG(tls_placement_segment == nullptr,
                "nested shm::PlacementScope");
  RME_CHECK(seg != nullptr);
  tls_placement_segment = seg;
}

PlacementScope::~PlacementScope() { tls_placement_segment = nullptr; }

Segment* ActivePlacementSegment() { return tls_placement_segment; }

}  // namespace rme::shm

// ---------------------------------------------------------------------------
// Global operator new/delete replacement.
//
// Linked into a binary only when it references this translation unit
// (i.e. uses shm::Segment); everything else keeps the default allocator.
// Outside a PlacementScope these forward to malloc/free exactly; inside
// one, allocations divert to the scope's segment arena. delete recognizes
// arena pointers by address range and leaves them alone — the arena is
// reclaimed wholesale when the segment dies.
// ---------------------------------------------------------------------------

namespace {

void* ShmAwareAlloc(size_t size, size_t align) {
  if (rme::shm::Segment* seg = rme::shm::ActivePlacementSegment()) {
    return seg->Allocate(size, align);
  }
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(size != 0 ? size : 1);
  } else if (posix_memalign(&p, align, size != 0 ? size : align) != 0) {
    p = nullptr;
  }
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void ShmAwareFree(void* p) {
  if (p == nullptr || rme::shm::PointerInAnySegment(p)) return;
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  return ShmAwareAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return ShmAwareAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return ShmAwareAlloc(size, static_cast<size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ShmAwareAlloc(size, static_cast<size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ShmAwareAlloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ShmAwareAlloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { ShmAwareFree(p); }
void operator delete[](void* p) noexcept { ShmAwareFree(p); }
void operator delete(void* p, std::size_t) noexcept { ShmAwareFree(p); }
void operator delete[](void* p, std::size_t) noexcept { ShmAwareFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { ShmAwareFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { ShmAwareFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ShmAwareFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ShmAwareFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ShmAwareFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ShmAwareFree(p);
}
