#include "shm/shm_segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/assert.hpp"

namespace rme::shm {

namespace {

/// Registry of live segments, consulted by the replaced operator delete
/// (which must work on any thread, long after the PlacementScope ended).
/// Fixed capacity: the fork harness uses one segment per run and runs
/// are sequential; a handful of slots is plenty.
constexpr int kMaxSegments = 8;

struct SegmentRange {
  std::atomic<const char*> base{nullptr};
  std::atomic<size_t> size{0};
};
SegmentRange g_segments[kMaxSegments];

void RegisterSegment(const void* base, size_t size) {
  for (auto& slot : g_segments) {
    const char* expected = nullptr;
    if (slot.base.compare_exchange_strong(
            expected, static_cast<const char*>(base),
            std::memory_order_acq_rel)) {
      slot.size.store(size, std::memory_order_release);
      return;
    }
  }
  RME_CHECK_MSG(false, "too many live shm segments");
}

void UnregisterSegment(const void* base) {
  for (auto& slot : g_segments) {
    if (slot.base.load(std::memory_order_acquire) == base) {
      slot.size.store(0, std::memory_order_release);
      slot.base.store(nullptr, std::memory_order_release);
      return;
    }
  }
}

thread_local Segment* tls_placement_segment = nullptr;

size_t RoundUp(size_t v, size_t align) { return (v + align - 1) & ~(align - 1); }

std::string ShmPath(const std::string& name) {
  return name[0] == '/' ? name : "/" + name;
}

/// Reads the header of a named entry without mapping it. Returns the
/// probe verdict; on kValid fills `out` with the header bytes.
ProbeResult ProbeHeader(const std::string& path, SegmentHeader* out,
                        std::string* why) {
  const int fd = ::shm_open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    if (why != nullptr) *why = "no such segment";
    return ProbeResult::kAbsent;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    if (why != nullptr) *why = "fstat failed";
    return ProbeResult::kForeign;
  }
  const auto size = static_cast<uint64_t>(st.st_size);
  uint64_t magic = 0;
  if (size < sizeof(magic) ||
      ::pread(fd, &magic, sizeof(magic), 0) != sizeof(magic)) {
    // A zero-length husk is the signature of a creator SIGKILLed between
    // shm_open and ftruncate: ours in all but name, and unreadable either
    // way. Classify as stale so a fresh run replaces it.
    ::close(fd);
    if (why != nullptr) *why = "truncated husk (no readable header)";
    return ProbeResult::kStale;
  }
  if (magic != kSegmentMagic) {
    ::close(fd);
    if (why != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "magic 0x%016llx is not an RME segment",
                    static_cast<unsigned long long>(magic));
      *why = buf;
    }
    return ProbeResult::kForeign;
  }
  SegmentHeader hdr{};
  if (size < sizeof(SegmentHeader) ||
      ::pread(fd, &hdr, sizeof(hdr), 0) !=
          static_cast<ssize_t>(sizeof(hdr))) {
    ::close(fd);
    if (why != nullptr) *why = "RME magic but header truncated";
    return ProbeResult::kStale;
  }
  ::close(fd);
  if (hdr.version != kSegmentVersion) {
    if (why != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "RME segment version %u, want %u",
                    hdr.version, kSegmentVersion);
      *why = buf;
    }
    return ProbeResult::kStale;
  }
  if (hdr.capacity != size || hdr.creator_base == 0) {
    if (why != nullptr) *why = "RME header inconsistent with file size";
    return ProbeResult::kStale;
  }
  if (out != nullptr) {
    // SegmentHeader holds atomics and is not copy-assignable; the probe
    // consumers only need the identity/geometry fields.
    out->magic = hdr.magic;
    out->version = hdr.version;
    out->capacity = hdr.capacity;
    out->creator_base = hdr.creator_base;
  }
  return ProbeResult::kValid;
}

}  // namespace

ProbeResult Segment::ProbeNamed(const std::string& name, std::string* why) {
  RME_CHECK_MSG(!name.empty(), "ProbeNamed needs a name");
  return ProbeHeader(ShmPath(name), nullptr, why);
}

bool Segment::UnlinkNamed(const std::string& name) {
  RME_CHECK_MSG(!name.empty(), "UnlinkNamed needs a name");
  return ::shm_unlink(ShmPath(name).c_str()) == 0;
}

Segment::Segment(size_t bytes, const std::string& name, bool keep_name,
                 NamedMode mode) {
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));

  if (name.empty()) {
    RME_CHECK_MSG(bytes >= sizeof(SegmentHeader) + 4096,
                  "shm segment too small to be useful");
    capacity_ = RoundUp(bytes, page);
    base_ = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    RME_CHECK_MSG(base_ != MAP_FAILED, "mmap(MAP_SHARED|MAP_ANONYMOUS) failed");
  } else {
    const std::string path = ShmPath(name);

    // Attach-first modes: a valid surviving segment is remapped at its
    // recorded creator base, so every raw pointer in the arena (lock
    // objects, log arrays, vtables within one fork tree) stays valid.
    if (mode == NamedMode::kAttach || mode == NamedMode::kAttachOrCreate) {
      SegmentHeader hdr{};
      std::string why;
      const ProbeResult probe = ProbeHeader(path, &hdr, &why);
      if (probe == ProbeResult::kValid) {
        const int fd = ::shm_open(path.c_str(), O_RDWR, 0600);
        RME_CHECK_MSG(fd >= 0, "shm_open for attach failed");
        capacity_ = static_cast<size_t>(hdr.capacity);
        void* want = reinterpret_cast<void*>(hdr.creator_base);
#ifdef MAP_FIXED_NOREPLACE
        base_ = ::mmap(want, capacity_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_FIXED_NOREPLACE, fd, 0);
#else
        base_ = ::mmap(want, capacity_, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd, 0);
        if (base_ != MAP_FAILED && base_ != want) {
          ::munmap(base_, capacity_);
          base_ = MAP_FAILED;
        }
#endif
        ::close(fd);
        RME_CHECK_MSG(base_ != MAP_FAILED && base_ == want,
                      "cannot remap shm segment at its creator base — "
                      "the address range is occupied in this process");
        attached_ = true;
        header()->attaches.fetch_add(1, std::memory_order_relaxed);
        if (keep_name) shm_name_ = path;  // attacher never owns the unlink
        RegisterSegment(base_, capacity_);
        return;
      }
      RME_CHECK_MSG(mode != NamedMode::kAttach,
                    (std::string("cannot attach to shm segment: ") + why)
                        .c_str());
      // kAttachOrCreate falls through to creation; stale leftovers are
      // replaced below, foreign entries still refuse.
    }

    RME_CHECK_MSG(bytes >= sizeof(SegmentHeader) + 4096,
                  "shm segment too small to be useful");
    capacity_ = RoundUp(bytes, page);
    int fd = -1;
    for (int attempt = 0; attempt < 2 && fd < 0; ++attempt) {
      fd = ::shm_open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd >= 0) break;
      RME_CHECK_MSG(errno == EEXIST, "shm_open failed");
      // Leftover entry from a SIGKILLed prior run (or a live service):
      // validate before touching it. Only entries carrying our magic (or
      // unreadable husks of our own making) are replaced; anything
      // foreign is a hard error, never a clobber.
      std::string why;
      const ProbeResult probe = ProbeHeader(path, nullptr, &why);
      RME_CHECK_MSG(probe != ProbeResult::kForeign,
                    (std::string("refusing to replace non-RME shm entry ") +
                     path + ": " + why)
                        .c_str());
      std::fprintf(stderr,
                   "shm::Segment: replacing stale segment %s (%s)\n",
                   path.c_str(),
                   probe == ProbeResult::kValid ? "valid but unclaimed"
                                                : why.c_str());
      ::shm_unlink(path.c_str());
    }
    RME_CHECK_MSG(fd >= 0, "shm_open(O_CREAT|O_EXCL) kept failing");
    RME_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(capacity_)) == 0,
                  "ftruncate on shm segment failed");
    base_ = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd, 0);
    ::close(fd);
    RME_CHECK_MSG(base_ != MAP_FAILED, "mmap of shm segment failed");
    if (keep_name) {
      shm_name_ = path;
      unlink_on_destroy_ = true;  // names never outlive the run by default
    } else {
      ::shm_unlink(path.c_str());  // mapping stays; the name never leaks
    }
  }

  auto* hdr = ::new (base_) SegmentHeader();
  hdr->capacity = capacity_;
  hdr->creator_base = reinterpret_cast<uint64_t>(base_);
  hdr->bump.store(RoundUp(sizeof(SegmentHeader), alignof(std::max_align_t)),
                  std::memory_order_relaxed);
  RegisterSegment(base_, capacity_);
}

Segment::~Segment() {
  UnregisterSegment(base_);
  ::munmap(base_, capacity_);
  if (!shm_name_.empty() && unlink_on_destroy_) {
    ::shm_unlink(shm_name_.c_str());
  }
}

void Segment::SetRoot(const void* p) {
  RME_CHECK_MSG(p == nullptr || Contains(p), "root must live in the segment");
  header()->root.store(
      p == nullptr
          ? 0
          : static_cast<uint64_t>(static_cast<const char*>(p) -
                                  static_cast<const char*>(base_)),
      std::memory_order_release);
}

void* Segment::root() const {
  const uint64_t off = header()->root.load(std::memory_order_acquire);
  return off == 0 ? nullptr : static_cast<char*>(base_) + off;
}

size_t Segment::bytes_used() const {
  return header()->bump.load(std::memory_order_relaxed);
}

void* Segment::Allocate(size_t bytes, size_t align) {
  RME_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  std::atomic<uint64_t>& bump = header()->bump;
  uint64_t offset = bump.load(std::memory_order_relaxed);
  uint64_t start;
  do {
    start = RoundUp(offset, align);
    if (start + bytes > capacity_) {
      std::fprintf(stderr,
                   "shm::Segment exhausted: want %zu bytes (align %zu), "
                   "used %llu of %zu — raise segment_bytes\n",
                   bytes, align, static_cast<unsigned long long>(offset),
                   capacity_);
      std::abort();
    }
  } while (!bump.compare_exchange_weak(offset, start + bytes,
                                       std::memory_order_relaxed));
  return static_cast<char*>(base_) + start;
}

bool PointerInAnySegment(const void* p) {
  const char* c = static_cast<const char*>(p);
  for (const auto& slot : g_segments) {
    const char* base = slot.base.load(std::memory_order_acquire);
    if (base == nullptr) continue;
    const size_t size = slot.size.load(std::memory_order_acquire);
    if (c >= base && c < base + size) return true;
  }
  return false;
}

PlacementScope::PlacementScope(Segment* seg) {
  RME_CHECK_MSG(tls_placement_segment == nullptr,
                "nested shm::PlacementScope");
  RME_CHECK(seg != nullptr);
  tls_placement_segment = seg;
}

PlacementScope::~PlacementScope() { tls_placement_segment = nullptr; }

Segment* ActivePlacementSegment() { return tls_placement_segment; }

}  // namespace rme::shm

// ---------------------------------------------------------------------------
// Global operator new/delete replacement.
//
// Linked into a binary only when it references this translation unit
// (i.e. uses shm::Segment); everything else keeps the default allocator.
// Outside a PlacementScope these forward to malloc/free exactly; inside
// one, allocations divert to the scope's segment arena. delete recognizes
// arena pointers by address range and leaves them alone — the arena is
// reclaimed wholesale when the segment dies.
// ---------------------------------------------------------------------------

namespace {

void* ShmAwareAlloc(size_t size, size_t align) {
  if (rme::shm::Segment* seg = rme::shm::ActivePlacementSegment()) {
    return seg->Allocate(size, align);
  }
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(size != 0 ? size : 1);
  } else if (posix_memalign(&p, align, size != 0 ? size : align) != 0) {
    p = nullptr;
  }
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void ShmAwareFree(void* p) {
  if (p == nullptr || rme::shm::PointerInAnySegment(p)) return;
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  return ShmAwareAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return ShmAwareAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return ShmAwareAlloc(size, static_cast<size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ShmAwareAlloc(size, static_cast<size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ShmAwareAlloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ShmAwareAlloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { ShmAwareFree(p); }
void operator delete[](void* p) noexcept { ShmAwareFree(p); }
void operator delete(void* p, std::size_t) noexcept { ShmAwareFree(p); }
void operator delete[](void* p, std::size_t) noexcept { ShmAwareFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { ShmAwareFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { ShmAwareFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ShmAwareFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ShmAwareFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ShmAwareFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ShmAwareFree(p);
}
