// POSIX shared-memory segment + bump arena for the real-process crash
// mode (runtime/fork_harness).
//
// The in-process simulator models a crash as an exception that unwinds a
// thread while rmr::Atomic state survives. This layer makes "survives"
// literal: a lock's entire recoverable state is placed in one MAP_SHARED
// segment created by the parent *before* it forks the worker processes,
// so a child killed with SIGKILL takes its private memory with it while
// the segment — the real NVRAM stand-in — persists at the same virtual
// address in every process (fork inherits the mapping).
//
// Placement works by construction-time capture: every lock in the zoo
// allocates all of its mutable state while its constructor runs (arrays
// of rmr::Atomic, qnode pools, sub-lock trees — see
// RecoverableLock::SupportsSharedPlacement). A PlacementScope diverts
// global operator new on the constructing thread into the segment's bump
// arena, so `MakeLock(...)` inside a scope lands the lock object and its
// whole ownership tree in shared memory with zero changes to lock code.
// The arena never frees: operator delete recognizes segment pointers and
// lets the destructor run without touching the heap (the memory is
// reclaimed when the segment is destroyed).
//
// Layout: [SegmentHeader | bump-allocated objects ...]. The header has a
// stable magic/version so a segment can be sanity-checked by a process
// that did not create it (tools, post-mortem inspection of a named
// segment kept with keep_name=true).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <utility>

namespace rme::shm {

inline constexpr uint64_t kSegmentMagic = 0x524d4553484d3031ull;  // "RMESHM01"
inline constexpr uint32_t kSegmentVersion = 3;  ///< 3: creator base + root offset (named reattach)

/// First bytes of every segment. All cross-process mutable fields are
/// std::atomic so concurrent children and the parent agree on them.
struct SegmentHeader {
  uint64_t magic = kSegmentMagic;
  uint32_t version = kSegmentVersion;
  uint32_t reserved = 0;
  uint64_t capacity = 0;          ///< total mapped bytes (header included)
  std::atomic<uint64_t> bump{0};  ///< next free offset from segment base
  /// Virtual address the creator mapped the segment at. Raw pointers in
  /// the arena (including vtables) are relative to this base, so a later
  /// attach must land the mapping here or refuse.
  uint64_t creator_base = 0;
  /// Offset of the owner's root object (0 = none published). Lets an
  /// attaching process find the service control block without depending
  /// on allocation order beyond "creator called SetRoot once".
  std::atomic<uint64_t> root{0};
  /// Lifetime attach count (diagnostics: daemon restarts, tools).
  std::atomic<uint32_t> attaches{0};
  uint32_t reserved2 = 0;
};

/// How a *named* segment treats an existing /dev/shm entry of the same
/// name. Anonymous segments ignore this.
enum class NamedMode {
  /// Create a fresh segment. A leftover entry from a SIGKILLed prior run
  /// is probed first: a valid RME segment (or a truncated husk) is
  /// unlinked and replaced with a note on stderr; an entry that does not
  /// carry our magic is refused with a diagnostic rather than clobbered.
  kCreateFresh,
  /// Attach to an existing segment (the lockd reattach path). Validates
  /// magic/version/size and maps at the recorded creator base; any
  /// mismatch is a hard failure with a diagnostic.
  kAttach,
  /// Attach when a valid segment exists, otherwise create (replacing an
  /// invalid or truncated leftover like kCreateFresh would).
  kAttachOrCreate,
};

/// What a named /dev/shm entry looks like without mapping it.
enum class ProbeResult {
  kAbsent,   ///< no entry of that name
  kValid,    ///< carries our magic + current version + consistent size
  kStale,    ///< ours but not attachable: old version, truncated husk
             ///< (creator died between shm_open and ftruncate), or a
             ///< size that no longer matches the recorded capacity
  kForeign,  ///< exists but does not carry our magic — never clobbered
};

/// A MAP_SHARED memory segment with a bump allocator. Created by the
/// fork-harness parent before any fork; children inherit the mapping at
/// the same address, so raw pointers into the segment are valid in every
/// process of the tree.
class Segment {
 public:
  /// Maps `bytes` of shared memory. With an empty `name` the mapping is
  /// anonymous (visible only to forked children — the common case). With
  /// a name, the segment is backed by shm_open("/name") and unlinked
  /// immediately after mapping unless `keep_name` (so crashed runs never
  /// leak /dev/shm entries). `mode` decides what happens when the name
  /// already exists (see NamedMode); under kAttach / a successful
  /// kAttachOrCreate attach, `bytes` is ignored in favour of the
  /// existing segment's recorded capacity.
  explicit Segment(size_t bytes, const std::string& name = "",
                   bool keep_name = false,
                   NamedMode mode = NamedMode::kCreateFresh);
  ~Segment();

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  /// Inspects a named entry without constructing a Segment: the decision
  /// procedure behind kCreateFresh's stale handling, usable directly by
  /// callers (and tests) that must not abort on a foreign entry. Fills
  /// `why` (if non-null) with a one-line reason for kForeign.
  static ProbeResult ProbeNamed(const std::string& name,
                                std::string* why = nullptr);

  /// Removes a named entry (true if one was unlinked). For cleanup of
  /// persisted segments and for tests' leak audits.
  static bool UnlinkNamed(const std::string& name);

  /// True iff this handle attached to a pre-existing segment (kAttach or
  /// kAttachOrCreate finding a valid entry) rather than creating one.
  /// An attaching owner must recover, not initialize.
  bool attached() const { return attached_; }

  /// Whether the destructor unlinks a kept name. Defaults: true for
  /// created segments with keep_name (names never outlive the run unless
  /// asked), false for attached ones (an attacher does not own the
  /// name's lifetime). Persistence across runs = keep_name +
  /// set_unlink_on_destroy(false).
  void set_unlink_on_destroy(bool v) { unlink_on_destroy_ = v; }

  /// Publishes/reads the owner's root object (service control block).
  /// Stored as an offset so it survives reattach at any base.
  void SetRoot(const void* p);
  void* root() const;

  void* base() const { return base_; }
  size_t capacity() const { return capacity_; }
  size_t bytes_used() const;
  SegmentHeader* header() const {
    return static_cast<SegmentHeader*>(base_);
  }

  /// Bump-allocates `bytes` aligned to `align` (power of two). Aborts
  /// with a clear message if the segment is exhausted — the harness
  /// sizes segments generously and exhaustion is a configuration error,
  /// not a runtime condition to recover from.
  void* Allocate(size_t bytes, size_t align);

  /// True iff `p` points into this segment's arena.
  bool Contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    const char* b = static_cast<const char*>(base_);
    return c >= b && c < b + capacity_;
  }

  /// Constructs a T in the arena (without diverting operator new — for
  /// control blocks whose members should live in the segment but whose
  /// construction must not capture unrelated allocations).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Array variant of New (value-initialized elements).
  template <typename T>
  T* NewArray(size_t count) {
    void* p = Allocate(sizeof(T) * count, alignof(T));
    return ::new (p) T[count]();
  }

 private:
  void* base_ = nullptr;
  size_t capacity_ = 0;
  std::string shm_name_;  ///< non-empty iff the name was kept
  bool attached_ = false;
  bool unlink_on_destroy_ = false;
};

/// True iff `p` lies inside any live Segment of this process tree. Used
/// by the replaced operator delete: arena pointers are not heap pointers.
bool PointerInAnySegment(const void* p);

/// RAII: while alive, global operator new on the *calling thread*
/// allocates from `seg`'s bump arena. Non-reentrant (one active scope
/// per thread). The fork harness wraps exactly the lock/controller
/// construction in one of these.
class PlacementScope {
 public:
  explicit PlacementScope(Segment* seg);
  ~PlacementScope();

  PlacementScope(const PlacementScope&) = delete;
  PlacementScope& operator=(const PlacementScope&) = delete;
};

/// The segment the calling thread currently diverts operator new into
/// (null outside any PlacementScope).
Segment* ActivePlacementSegment();

}  // namespace rme::shm
