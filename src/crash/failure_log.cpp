#include "crash/failure_log.hpp"

#include "util/assert.hpp"

namespace rme {

FailureLog::FailureLog(int num_procs) : n_(num_procs) {
  RME_CHECK(num_procs > 0 && num_procs <= kMaxProcs);
  for (int i = 0; i < kMaxProcs; ++i) {
    started_[i].store(0, std::memory_order_relaxed);
    completed_req_[i].store(0, std::memory_order_relaxed);
  }
}

uint64_t FailureLog::OnRequestStart(int pid) {
  return started_[pid].fetch_add(1, std::memory_order_acq_rel) + 1;
}

void FailureLog::OnRequestComplete(int pid) {
  const uint64_t cur = started_[pid].load(std::memory_order_acquire);
  completed_req_[pid].store(cur, std::memory_order_release);
}

void FailureLog::RecordFailure(int pid, uint64_t time, const std::string& site,
                               bool after_op, bool unsafe) {
  FailureRecord rec;
  rec.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  rec.pid = pid;
  rec.time = time;
  rec.site = site;
  rec.after_op = after_op;
  rec.unsafe = unsafe;
  for (int j = 0; j < n_; ++j) {
    const uint64_t s = started_[j].load(std::memory_order_acquire);
    const uint64_t c = completed_req_[j].load(std::memory_order_acquire);
    rec.pending_req[j] = (s > c) ? s : 0;
  }
  std::lock_guard<std::mutex> lk(mu_);
  maybe_active_.push_back(records_.size());
  records_.push_back(std::move(rec));
}

bool FailureLog::IntervalActive(const FailureRecord& r) const {
  for (int j = 0; j < n_; ++j) {
    if (r.pending_req[j] != 0 &&
        completed_req_[j].load(std::memory_order_acquire) < r.pending_req[j]) {
      return true;
    }
  }
  return false;
}

uint64_t FailureLog::TotalFailures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

uint64_t FailureLog::ActiveFailures(bool unsafe_only) const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t active = 0;
  size_t keep = 0;
  for (size_t idx : maybe_active_) {
    const FailureRecord& r = records_[idx];
    if (IntervalActive(r)) {
      maybe_active_[keep++] = idx;
      if (!unsafe_only || r.unsafe) ++active;
    }
    // Ended intervals are dropped: they can never become active again.
  }
  maybe_active_.resize(keep);
  return active;
}

std::vector<FailureRecord> FailureLog::Records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

}  // namespace rme
