#include "crash/crash.hpp"

#include <csignal>
#include <cstring>
#include <string>

#include "util/assert.hpp"

namespace rme {

namespace rmr_detail {

// Slow halves of the fused OpProbe (rmr/memory_model.hpp). Only reached
// when the context's fast_flags say there is something to do; the
// all-default path never leaves the header.

void ProbePreSlow(ProcessContext& ctx, const char* site) {
  // Deterministic simulator: interleaving decision point before the op.
  if (ctx.fast_flags & ProcessContext::kSimHook) SimYieldPoint();
  if (!(ctx.fast_flags & ProcessContext::kHasCrash)) return;
  if (ctx.crash->ShouldCrash(ctx.pid, site, /*after_op=*/false)) {
    // Stamp with the caller's own issued tick (ctx.clock_next), not the
    // global reservation frontier: with clock_block > 1 the frontier runs
    // ahead of every thread by up to a block per thread, which skewed
    // failure timestamps (and everything conditioned on them) by the
    // same amount.
    throw ProcessCrash{ctx.pid, site, /*after_op=*/false, ctx.clock_next};
  }
}

void ProbePostSlow(ProcessContext& ctx, const char* site) {
  // kHasCrash is the only bit that routes here (OpProbe::Done tests it
  // directly), so the policy consult is unconditional.
  if (ctx.crash->ShouldCrash(ctx.pid, site, /*after_op=*/true)) {
    throw ProcessCrash{ctx.pid, site, /*after_op=*/true, ctx.clock_next};
  }
}

}  // namespace rmr_detail

RandomCrash::RandomCrash(uint64_t seed, double per_op_probability,
                         int64_t budget)
    : p_(per_op_probability), budget_(budget), unlimited_(budget < 0) {
  for (int i = 0; i < kMaxProcs; ++i) streams_[i] = Prng(seed, static_cast<uint64_t>(i));
}

bool RandomCrash::ShouldCrash(int pid, const char* /*site*/, bool after_op) {
  // Only fire on the "after" probe so each op is tested exactly once and a
  // crash always happens with the op's effect applied (the harder case:
  // effect persisted, private result lost).
  if (!after_op) return false;
  RME_CHECK_MSG(pid >= 0 && pid < kMaxProcs,
                ("RandomCrash consulted with out-of-range pid " +
                 std::to_string(pid) +
                 " (attach paths must bind pids in [0, kMaxProcs))")
                    .c_str());
  if (!streams_[pid].Bernoulli(p_)) return false;
  if (!unlimited_) {
    if (budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      budget_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  NoteCrash();
  return true;
}

SiteCrash::SiteCrash(int pid, std::string site, bool after_op, uint64_t nth,
                     uint64_t count)
    : pid_(pid), site_(std::move(site)), after_op_(after_op), nth_(nth),
      remaining_(static_cast<int64_t>(count)) {}

bool SiteCrash::ShouldCrash(int pid, const char* site, bool after_op) {
  if (pid != pid_ || after_op != after_op_ || site_ != site) return false;
  const uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit < nth_) return false;
  if (remaining_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    remaining_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  NoteCrash();
  return true;
}

SpacedSiteCrash::SpacedSiteCrash(std::string site_suffix, uint64_t period,
                                 int64_t budget, bool after_op)
    : suffix_(std::move(site_suffix)), period_(period == 0 ? 1 : period),
      budget_(budget), after_op_(after_op) {}

bool SpacedSiteCrash::ShouldCrash(int /*pid*/, const char* site,
                                  bool after_op) {
  if (after_op != after_op_) return false;
  const std::string_view sv(site);
  if (sv.size() < suffix_.size() ||
      sv.substr(sv.size() - suffix_.size()) != suffix_) {
    return false;
  }
  const uint64_t match = matches_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (match % period_ != 0) return false;
  if (budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    budget_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  NoteCrash();
  return true;
}

NthOpCrash::NthOpCrash(int pid, uint64_t nth_op) : pid_(pid), nth_(nth_op) {}

bool NthOpCrash::ShouldCrash(int pid, const char* /*site*/, bool after_op) {
  if (pid != pid_ || !after_op) return false;
  const uint64_t seen = seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen == nth_ && !fired_.exchange(true, std::memory_order_relaxed)) {
    NoteCrash();
    return true;
  }
  return false;
}

BatchCrash::BatchCrash(std::vector<Batch> batches, std::string site_suffix)
    : batches_(std::move(batches)), suffix_(std::move(site_suffix)),
      fired_(batches_.size()) {
  for (auto& f : fired_) f.store(0, std::memory_order_relaxed);
}

bool BatchCrash::ShouldCrash(int pid, const char* site, bool after_op) {
  if (!after_op) return false;
  if (!suffix_.empty()) {
    const std::string_view sv(site);
    if (sv.size() < suffix_.size() ||
        sv.substr(sv.size() - suffix_.size()) != suffix_) {
      return false;
    }
  }
  // The calling process's own issued tick, NOT LogicalNow(): the global
  // reservation frontier runs ahead of the caller by up to clock_block
  // ticks per thread, which made batches fire wildly early under the
  // sharded clock (clock_block > 1). The per-thread tick is exact for
  // the caller and block-granular across threads — a batch fires at each
  // process's first operation whose own logical time passed the trigger.
  const uint64_t now = LogicalTick();
  RME_CHECK_MSG(pid >= 0 && pid < kMaxProcs,
                ("BatchCrash consulted with out-of-range pid " +
                 std::to_string(pid) + " (mask shift would be undefined)")
                    .c_str());
  const uint64_t bit = 1ULL << pid;
  for (size_t i = 0; i < batches_.size(); ++i) {
    if (now < batches_[i].at_logical_time) continue;
    if ((batches_[i].pid_mask & bit) == 0) continue;
    const uint64_t prev = fired_[i].fetch_or(bit, std::memory_order_relaxed);
    if ((prev & bit) == 0) {
      NoteCrash();
      return true;
    }
  }
  return false;
}

/// Harness-level bracket sites around lock->Recover (fork harness).
inline constexpr const char* kRecoverArmSite = "h.recover.brk";
inline constexpr const char* kRecoverDisarmSite = "h.recover.done";

RecoveryStormCrash::RecoveryStormCrash(uint64_t pid_mask,
                                       uint64_t kills_per_pid,
                                       uint64_t nth_op)
    : mask_(pid_mask), kills_per_pid_(kills_per_pid),
      nth_(nth_op == 0 ? 1 : nth_op) {}

bool RecoveryStormCrash::ShouldCrash(int pid, const char* site,
                                     bool after_op) {
  if (!after_op || pid < 0 || pid >= kMaxProcs) return false;
  if ((mask_ & (uint64_t{1} << pid)) == 0) return false;
  PidState& st = state_[pid];
  // Compare by content, not pointer: the harness passes literals, but a
  // literal's address is only stable within one binary image.
  if (std::strcmp(site, kRecoverArmSite) == 0) {
    if (st.fired.load(std::memory_order_relaxed) < kills_per_pid_) {
      st.armed_ops.store(1, std::memory_order_relaxed);
    }
    return false;
  }
  const uint64_t armed = st.armed_ops.load(std::memory_order_relaxed);
  if (std::strcmp(site, kRecoverDisarmSite) == 0) {
    st.armed_ops.store(0, std::memory_order_relaxed);
    if (armed == 0) return false;
    // Recover() issued fewer than nth_ ops; fire at the boundary so the
    // first-k-recoveries-die contract holds for op-free recovery paths.
    st.fired.fetch_add(1, std::memory_order_relaxed);
    NoteCrash();
    return true;
  }
  if (armed == 0) return false;
  st.armed_ops.store(armed + 1, std::memory_order_relaxed);
  if (armed != nth_) return false;  // armed == n means n-1 ops seen
  st.armed_ops.store(0, std::memory_order_relaxed);
  st.fired.fetch_add(1, std::memory_order_relaxed);
  NoteCrash();
  return true;
}

bool CompositeCrash::ShouldCrash(int pid, const char* site, bool after_op) {
  for (CrashController* part : parts_) {
    // The firing leaf already counted itself (NoteCrash); counting here
    // too made crashes() disagree with the harness FailureLog whenever
    // controllers were nested. crashes() sums the parts instead.
    if (part->ShouldCrash(pid, site, after_op)) return true;
  }
  return false;
}

uint64_t CompositeCrash::crashes() const {
  uint64_t total = 0;
  for (const CrashController* part : parts_) total += part->crashes();
  return total;
}

bool SigkillCrash::ShouldCrash(int pid, const char* site, bool after_op) {
  if (!inner_->ShouldCrash(pid, site, after_op)) return false;
  if (slots_ != nullptr && pid >= 0 && pid < kMaxProcs) {
    slots_[pid].site.store(site, std::memory_order_relaxed);
    slots_[pid].fired.fetch_add(1, std::memory_order_release);
  }
  ::raise(SIGKILL);  // real process death; never returns
  return false;      // unreachable
}

}  // namespace rme
