// Failure bookkeeping: records every simulated crash together with a
// snapshot of the requests pending at crash time, which realizes the
// paper's Definition 3.1 (consequence interval): the interval of a
// failure f lasts until every request generated before f is satisfied.
//
// The invariant checkers use this to decide whether a mutual-exclusion
// violation by a *weakly* recoverable lock is admissible (Def 3.2) and
// whether the lock is responsive (Def 3.5: k+1 processes in CS implies
// >= k overlapping unsafe failures).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "rmr/memory_model.hpp"

namespace rme {

struct FailureRecord {
  uint64_t id = 0;
  int pid = -1;
  uint64_t time = 0;          ///< logical clock at the crash
  std::string site;           ///< shared-op label at the crash point
  bool after_op = false;
  bool unsafe = false;        ///< crash at a sensitive instruction
  /// Snapshot: pending_req[j] = id of process j's request that was pending
  /// at crash time (0 = none). The consequence interval is active while
  /// any such request remains unsatisfied.
  uint64_t pending_req[kMaxProcs] = {};
};

class FailureLog {
 public:
  explicit FailureLog(int num_procs);

  /// Marks the start of a new request (super-passage) by `pid`.
  /// Returns the request id.
  uint64_t OnRequestStart(int pid);

  /// Marks `pid`'s current request satisfied (failure-free passage done).
  void OnRequestComplete(int pid);

  /// Records a crash. `unsafe` should be true iff the crash hit a
  /// sensitive instruction of the lock under test.
  void RecordFailure(int pid, uint64_t time, const std::string& site,
                     bool after_op, bool unsafe);

  /// Number of failures recorded so far.
  uint64_t TotalFailures() const;

  /// Number of failures whose consequence interval is active right now.
  /// With `unsafe_only`, counts only unsafe failures (Thm 4.2 checks).
  uint64_t ActiveFailures(bool unsafe_only = false) const;

  /// True if any consequence interval is currently active.
  bool AnyActive() const { return ActiveFailures() > 0; }

  int num_procs() const { return n_; }

  /// All records (copy; for post-run analysis).
  std::vector<FailureRecord> Records() const;

 private:
  bool IntervalActive(const FailureRecord& r) const;

  int n_;
  std::atomic<uint64_t> started_[kMaxProcs];
  std::atomic<uint64_t> completed_req_[kMaxProcs];  ///< id of last satisfied
  mutable std::mutex mu_;
  std::vector<FailureRecord> records_;  ///< full history (append-only)
  /// Indices into records_ whose intervals may still be active; queries
  /// prune lazily (an ended interval never reactivates), so the scan cost
  /// tracks the number of live intervals, not total history.
  mutable std::vector<size_t> maybe_active_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace rme
