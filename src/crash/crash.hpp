// Crash injection.
//
// A simulated crash is a C++ exception (ProcessCrash) thrown from inside
// an instrumented shared-memory operation. Unwinding destroys the
// process's private state (function locals) while the rmr::Atomic shared
// state — the simulated NVRAM — survives, which is exactly the paper's
// crash-recover model. The harness catches the exception and restarts the
// process from the NCS segment per Algorithm 1.
//
// Controllers decide *when* to crash. They are consulted before and after
// every shared-memory operation with the operation's site label, so tests
// can deterministically crash, e.g., process 3 immediately after its FAS
// on the WR-lock tail (the paper's one sensitive instruction, Figure 1).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rmr/counters.hpp"
#include "util/prng.hpp"

namespace rme {

/// Thrown to simulate a process crash. Never catch this inside lock code.
struct ProcessCrash {
  int pid;            ///< crashing process
  const char* site;   ///< label of the shared op at the crash point
  bool after_op;      ///< true: op took effect, result lost (paper's
                      ///< "immediately after executing the instruction")
  uint64_t time;      ///< logical clock at the crash
};

/// Decides whether the current shared-memory operation should crash the
/// calling process. Implementations must be thread-safe: every simulated
/// process consults the same controller concurrently.
class CrashController {
 public:
  virtual ~CrashController() = default;

  /// Returns true to crash process `pid` at this point.
  virtual bool ShouldCrash(int pid, const char* site, bool after_op) = 0;

  /// Total crashes this controller has triggered. Exactly one controller
  /// counts each crash — the firing leaf — so for any (possibly nested)
  /// controller tree, crashes() of the root equals the number of
  /// ProcessCrash exceptions delivered (== the harness failure count).
  /// Virtual so aggregates (CompositeCrash) can sum their parts.
  virtual uint64_t crashes() const {
    return crashes_.load(std::memory_order_relaxed);
  }

 protected:
  /// Registers a triggered crash (called by implementations on `true`).
  void NoteCrash() { crashes_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> crashes_{0};
};

/// Never crashes (failure-free runs).
class NeverCrash final : public CrashController {
 public:
  bool ShouldCrash(int, const char*, bool) override { return false; }
};

/// Crashes each op independently with probability p, optionally stopping
/// after a global budget of crashes (to inject "exactly F failures").
/// Each process draws from its own deterministic stream.
class RandomCrash final : public CrashController {
 public:
  RandomCrash(uint64_t seed, double per_op_probability,
              int64_t budget = -1 /* unlimited */);

  bool ShouldCrash(int pid, const char* site, bool after_op) override;

 private:
  double p_;
  std::atomic<int64_t> budget_;
  bool unlimited_;
  Prng streams_[kMaxProcs];
};

/// Crashes a specific process the nth time it reaches a labelled site.
/// One-shot (fires `count` times, default once).
class SiteCrash final : public CrashController {
 public:
  SiteCrash(int pid, std::string site, bool after_op, uint64_t nth = 1,
            uint64_t count = 1);

  bool ShouldCrash(int pid, const char* site, bool after_op) override;

 private:
  int pid_;
  std::string site_;
  bool after_op_;
  std::atomic<uint64_t> hits_{0};
  uint64_t nth_;
  std::atomic<int64_t> remaining_;
};

/// Crashes whatever process hits a matching site, at every `period`-th
/// matching operation (counted globally), until `budget` crashes have
/// fired. Matching is by suffix, so "filter.tail.fas" hits the filters of
/// every BA-Lock level. This is the escalation driver for the Figure-3
/// experiments: unsafe failures, evenly spread across the run.
class SpacedSiteCrash final : public CrashController {
 public:
  SpacedSiteCrash(std::string site_suffix, uint64_t period, int64_t budget,
                  bool after_op = true);

  bool ShouldCrash(int pid, const char* site, bool after_op) override;

 private:
  std::string suffix_;
  uint64_t period_;
  std::atomic<int64_t> budget_;
  bool after_op_;
  std::atomic<uint64_t> matches_{0};
};

/// Crashes a specific process at its kth shared-memory operation
/// (counted per process). One-shot.
class NthOpCrash final : public CrashController {
 public:
  NthOpCrash(int pid, uint64_t nth_op);

  bool ShouldCrash(int pid, const char* site, bool after_op) override;

 private:
  int pid_;
  uint64_t nth_;
  std::atomic<uint64_t> seen_{0};
  std::atomic<bool> fired_{false};
};

/// Batch failures (paper §7.1): at each scheduled logical time, every
/// process in the batch crashes at its next shared-memory operation —
/// or, with `site_suffix`, at its next operation on a matching site
/// (e.g. "filter.tail.fas" to make the whole batch unsafe).
///
/// "Logical time" is each process's own issued tick (LogicalTick): exact
/// per process, block-granular across processes under the sharded clock.
/// With clock_block == 1 this is the seed's exact global-time semantics.
class BatchCrash final : public CrashController {
 public:
  struct Batch {
    uint64_t at_logical_time;
    uint64_t pid_mask;  ///< bit i set => process i crashes
  };
  explicit BatchCrash(std::vector<Batch> batches, std::string site_suffix = "");

  bool ShouldCrash(int pid, const char* site, bool after_op) override;

 private:
  std::vector<Batch> batches_;
  std::string suffix_;
  /// Per-batch mask of processes that already fired.
  std::vector<std::atomic<uint64_t>> fired_;
};

/// Recovery-storm controller (fork harness): re-kills each targeted
/// process *while it is inside Recover()*, for its first `kills_per_pid`
/// recovery attempts — deterministically driving the regime of Thm 5.17
/// (a process must fail >= x(x-1)/2 times to be pushed to BA level x)
/// and, with every pid in the mask, the §7.1 batch regime where kills
/// land while earlier recoveries are still in flight.
///
/// The harness brackets every lock->Recover(pid) call with two probe
/// sites: "h.recover.brk" (immediately before) arms the pid, and
/// "h.recover.done" (immediately after) disarms it. While armed, the
/// pid's `nth_op`-th instrumented shared-memory operation — i.e. an op
/// issued *inside* Recover() — fires; if Recover() returns before
/// issuing nth_op ops, the disarm probe itself fires so the "first k
/// consecutive recovery attempts all die" contract holds for locks with
/// op-free recovery paths. Per-pid state is cache-line padded and
/// atomic, so a segment-resident instance keeps budgets exact across
/// respawns. Wrap in SigkillCrash for real process death.
class RecoveryStormCrash final : public CrashController {
 public:
  /// `pid_mask` bit i set => process i is a storm victim.
  RecoveryStormCrash(uint64_t pid_mask, uint64_t kills_per_pid,
                     uint64_t nth_op = 1);

  bool ShouldCrash(int pid, const char* site, bool after_op) override;

  /// Storm kills delivered to `pid` so far.
  uint64_t storm_kills(int pid) const {
    return state_[pid].fired.load(std::memory_order_relaxed);
  }

 private:
  uint64_t mask_;
  uint64_t kills_per_pid_;
  uint64_t nth_;
  /// Owner-written (each pid only touches its own slot); padded so the
  /// per-op consult never steals a neighbour's line.
  struct alignas(kCacheLineBytes) PidState {
    std::atomic<uint64_t> armed_ops{0};  ///< 0 = disarmed; n = armed, n-1 ops seen
    std::atomic<uint64_t> fired{0};      ///< storm kills delivered
  };
  PidState state_[kMaxProcs];
};

/// Consults a list of controllers in order. Does not count crashes
/// itself: the firing leaf does, and crashes() sums the parts (so totals
/// agree with the harness FailureLog even when controllers are nested).
class CompositeCrash final : public CrashController {
 public:
  explicit CompositeCrash(std::vector<CrashController*> parts)
      : parts_(std::move(parts)) {}

  bool ShouldCrash(int pid, const char* site, bool after_op) override;
  uint64_t crashes() const override;

 private:
  std::vector<CrashController*> parts_;
};

/// Real-process crash mode (runtime/fork_harness): wraps any controller
/// and, when the inner controller fires, kills the calling process with
/// SIGKILL instead of letting the instrumentation throw ProcessCrash —
/// the process dies for real, no unwinding, no destructors. The fork
/// harness respawns the victim and re-runs Recover() against the
/// surviving shared segment.
///
/// `slots` (if non-null) points at a kMaxProcs array in the shared
/// segment; just before the kill, the firing pid's slot records the site
/// label (a string literal — its address is valid in every forked
/// process) and bumps its fired count, so the parent can attribute the
/// death to child-side injection and classify the crash point as
/// safe/sensitive. raise(SIGKILL) never returns.
class SigkillCrash final : public CrashController {
 public:
  struct PidSlot {
    std::atomic<uint64_t> fired{0};
    std::atomic<const char*> site{nullptr};
  };

  SigkillCrash(CrashController* inner, PidSlot* slots)
      : inner_(inner), slots_(slots) {}

  bool ShouldCrash(int pid, const char* site, bool after_op) override;
  uint64_t crashes() const override { return inner_->crashes(); }

 private:
  CrashController* inner_;
  PidSlot* slots_;  ///< kMaxProcs entries, or null
};

}  // namespace rme
