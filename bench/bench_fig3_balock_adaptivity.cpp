// Figure 3 / Theorems 5.17-5.19 — the paper's HEADLINE result.
//
// Experiment design notes (see DESIGN.md): adaptivity is a statement
// about failures whose consequence intervals overlap a passage, so we
// (a) place crashes adversarially for each lock — BA-Lock's sensitive
//     instructions are the level filters' FAS, so the driver targets
//     "filter.tail.fas" sites, evenly spaced through the run; the O(F)
//     baseline is hurt by any acquisition-window crash, so it gets
//     evenly spaced crashes over all operations; and
// (b) report per-passage RMR conditioned on F = the number of failure
//     intervals overlapping that passage's super-passage (Thm 5.18's F),
//     not just the diluted global mean.
//
// Expected shape: RMR(F=0) = O(1); growth ~ sqrt(F); cap at the base
// lock's T(n). Escalation levels obey level(level-1)/2 <= F (Thm 5.17).
//
// Flags: --n=16 --passages=400 --seed=42 --levels=6
#include <cmath>
#include <memory>

#include "bench_common.hpp"
#include "core/ba_lock.hpp"
#include "core/iter_ba_lock.hpp"
#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

WorkloadConfig BaseConfig(int n, uint64_t passages, uint64_t seed) {
  WorkloadConfig cfg;
  cfg.num_procs = n;
  cfg.passages_per_proc = passages;
  cfg.seed = seed;
  cfg.cs_shared_ops = 8;  // long-ish CS + yields => real contention even
  cfg.cs_yields = 2;      // when cores < processes
  return cfg;
}

}  // namespace

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.GetInt("n", 16));
  const uint64_t passages = static_cast<uint64_t>(cli.GetInt("passages", 150));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const int levels = static_cast<int>(cli.GetInt("levels", 6));

  bench::PrintHeader(
      "Figure 3 — BA-Lock adaptivity: RMR vs recent failures (n=" +
          std::to_string(n) + ", m=" + std::to_string(levels) + ")",
      "RMR per passage = O(min{sqrt(F), log n/log log n}); level x needs "
      ">= x(x-1)/2 failures");

  // Calibrate the baselines' ops volume (for spacing spread injection).
  double gr_ops = 20.0;
  {
    const RunResult g = bench::Run(
        "gr-adaptive", BaseConfig(n, passages / 4, seed), Scenario::None());
    if (g.passage.ops.count() > 0) gr_ops = g.passage.ops.mean();
  }

  // ---- Part 1: F sweep, per-lock adversarial placement. ----
  Table curve({"F injected", "sqrt(F)", "ba cc mean", "ba cc max", "ba max lvl",
               "gr-adaptive cc", "tournament cc", "kport-tree cc"});
  std::vector<double> xs, ys;
  RunResult ba_heaviest, gr_heaviest;
  for (int64_t f : {0, 2, 4, 8, 16, 32, 64, 128, 256}) {
    // BA: target the sensitive filter FAS sites. Roughly 2 filter FAS
    // ops happen per passage, so space the budget over them.
    const uint64_t fas_total = 2 * passages * static_cast<uint64_t>(n);
    std::unique_ptr<CrashController> ba_crash;
    if (f > 0) {
      ba_crash = std::make_unique<SpacedSiteCrash>(
          "filter.tail.fas", std::max<uint64_t>(1, fas_total / (2 * f)), f);
    }
    auto ba = std::make_unique<BaLock>(
        n, levels, std::make_unique<KPortTreeLock>(n, "ba.base"));
    std::fprintf(stderr, "[run] ba F=%lld (targeted)\n",
                 static_cast<long long>(f));
    const RunResult rba =
        RunWorkload(*ba, BaseConfig(n, passages, seed), ba_crash.get());
    if (f == 256) ba_heaviest = rba;

    // Baselines: evenly spread crashes over all ops.
    auto spread = [&](double ops_per_passage) -> std::unique_ptr<CrashController> {
      if (f == 0) return nullptr;
      const uint64_t total = static_cast<uint64_t>(
          ops_per_passage * static_cast<double>(passages) * n);
      return std::make_unique<SpacedSiteCrash>(
          "", std::max<uint64_t>(1, total / (2 * static_cast<uint64_t>(f))), f);
    };
    // Baselines are failure-shape-insensitive in the mean; sample them
    // at three F values to keep the sweep fast.
    std::string gr_cell = "-", tour_cell = "-", kp_cell = "-";
    if (f == 0 || f == 64 || f == 256) {
      auto gr = MakeLock("gr-adaptive", n);
      auto gr_crash = spread(gr_ops);
      std::fprintf(stderr, "[run] gr-adaptive F=%lld\n",
                   static_cast<long long>(f));
      const RunResult rgr =
          RunWorkload(*gr, BaseConfig(n, passages, seed), gr_crash.get());
      if (f == 256) gr_heaviest = rgr;
      gr_cell = Table::Num(rgr.passage.cc.mean());
      auto tour = MakeLock("tournament", n);
      auto tour_crash = spread(60.0);
      const RunResult rtour =
          RunWorkload(*tour, BaseConfig(n, passages, seed), tour_crash.get());
      tour_cell = Table::Num(rtour.passage.cc.mean());
      auto kp = MakeLock("kport-tree", n);
      auto kp_crash = spread(30.0);
      const RunResult rkp =
          RunWorkload(*kp, BaseConfig(n, passages, seed), kp_crash.get());
      kp_cell = Table::Num(rkp.passage.cc.mean());
    }

    curve.AddRow({Table::Int(static_cast<uint64_t>(f)),
                  Table::Num(std::sqrt(static_cast<double>(f)), 1),
                  Table::Num(rba.passage.cc.mean()),
                  Table::Num(rba.passage.cc.max(), 0),
                  Table::Num(rba.level_reached.max(), 0),
                  gr_cell, tour_cell, kp_cell});
    if (f > 0) {
      xs.push_back(static_cast<double>(f));
      ys.push_back(rba.passage.cc.mean());
    }
    const int lvl = static_cast<int>(rba.level_reached.max());
    if (static_cast<int64_t>(lvl) * (lvl - 1) / 2 > f) {
      std::fprintf(stderr, "ERROR: Thm 5.17 violated (level %d, F=%lld)\n",
                   lvl, static_cast<long long>(f));
    }
  }
  std::printf("%s\n", curve.ToText().c_str());
  if (cli.GetBool("csv", false)) {
    std::printf("CSV:\n%s\n", curve.ToCsv().c_str());
  }
  std::printf("ba growth class vs injected F: %s (log-log slope %.2f)\n\n",
              ClassifyGrowth(xs, ys).c_str(), LogLogSlope(xs, ys));

  // ---- Part 2: RMR conditioned on per-passage overlap F (Thm 5.18). ----
  // This is the figure's real x-axis: failures overlapping the passage.
  Table bins({"F overlapping passage", "ba passages", "ba cc mean",
              "mean level", "sqrt(F) ref", "gr-adaptive cc", "F ref"});
  std::vector<double> bx, by;
  for (const auto& [bucket, seg] : ba_heaviest.by_overlap) {
    const auto lvl_it = ba_heaviest.level_by_overlap.find(bucket);
    const auto gr_it = gr_heaviest.by_overlap.find(bucket);
    bins.AddRow({Table::Int(static_cast<uint64_t>(bucket)),
                 Table::Int(seg.cc.count()), Table::Num(seg.cc.mean()),
                 lvl_it != ba_heaviest.level_by_overlap.end()
                     ? Table::Num(lvl_it->second.mean())
                     : "-",
                 Table::Num(std::sqrt(static_cast<double>(bucket)), 1),
                 gr_it != gr_heaviest.by_overlap.end()
                     ? Table::Num(gr_it->second.cc.mean())
                     : "-",
                 Table::Int(static_cast<uint64_t>(bucket))});
    if (bucket >= 1 && seg.cc.count() >= 3) {
      bx.push_back(static_cast<double>(bucket));
      by.push_back(seg.cc.mean());
    }
  }
  std::printf("Per-passage RMR conditioned on overlapping failures "
              "(heaviest runs):\n%s\n", bins.ToText().c_str());
  if (bx.size() >= 3) {
    std::printf("ba overlap-conditioned growth: %s (log-log slope %.2f; "
                "sqrt = 0.50)\n\n",
                ClassifyGrowth(bx, by).c_str(), LogLogSlope(bx, by));
  }

  // ---- Part 3: level-count ablation at fixed F. ----
  Table ablation({"m (levels)", "cc mean @F=64", "cc p-max", "max level"});
  for (int m : {1, 2, 4, 8}) {
    auto ba = std::make_unique<BaLock>(
        n, m, std::make_unique<KPortTreeLock>(n, "ba.base"));
    const uint64_t fas_total = 2 * passages * static_cast<uint64_t>(n);
    SpacedSiteCrash crash("filter.tail.fas",
                          std::max<uint64_t>(1, fas_total / 128), 64);
    std::fprintf(stderr, "[run] ba m=%d F=64\n", m);
    const RunResult r =
        RunWorkload(*ba, BaseConfig(n, passages, seed + 5), &crash);
    ablation.AddRow({Table::Int(static_cast<uint64_t>(m)),
                     Table::Num(r.passage.cc.mean()),
                     Table::Num(r.passage.cc.max(), 0),
                     Table::Num(r.level_reached.max(), 0)});
  }
  std::printf("Ablation — level count m (paper: m = T(n)):\n%s\n",
              ablation.ToText().c_str());

  // ---- Part 4: §7.3 ablation — the last-known-level cursor. ----
  // Repeated own-crashes during deep passages: with the cursor, recovery
  // resumes at the held level instead of re-walking from level 1, so the
  // per-attempt recovery bill (crashed-attempt ops) shrinks.
  Table cursor_tab({"variant", "cc mean", "crashed-attempt ops mean",
                    "failures"});
  for (const bool cursor : {false, true}) {
    auto iba = std::make_unique<IterBaLock>(
        n, 6, std::make_unique<KPortTreeLock>(n, "iba.base"), cursor);
    const uint64_t fas_total = 2 * passages * static_cast<uint64_t>(n);
    SpacedSiteCrash unsafe_part("filter.tail.fas",
                                std::max<uint64_t>(1, fas_total / 256), 128);
    std::fprintf(stderr, "[run] iter-ba cursor=%d\n", cursor ? 1 : 0);
    const RunResult r =
        RunWorkload(*iba, BaseConfig(n, passages, seed + 9), &unsafe_part);
    cursor_tab.AddRow({cursor ? "ba-iter (cursor, §7.3)" : "ba-iter (re-walk)",
                       Table::Num(r.passage.cc.mean()),
                       Table::Num(r.crashed_passage.ops.mean()),
                       Table::Int(r.failures)});
  }
  std::printf("Ablation — §7.3 last-known-level cursor:\n%s\n",
              cursor_tab.ToText().c_str());
  std::printf(
      "Honest finding: at m <= 8 the two variants are indistinguishable —\n"
      "our state-gated components make a full re-walk a handful of local\n"
      "loads, so the cursor's O(F0 + ...) vs O(F0 * levels) advantage only\n"
      "matters at depths far beyond T(n) for practical n. Crashed-attempt\n"
      "ops are dominated by the waiting time before the crash, not the\n"
      "recovery walk, under both variants.\n");
  std::printf("Expected: the overlap-conditioned means grow like sqrt(F)\n"
              "and cap near the base lock's cost; larger m extends the\n"
              "sqrt regime before the cap.\n");
  return 0;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
