// Figure 2: the SA-Lock framework (filter -> splitter -> {fast, core} ->
// arbitrator). Sweeps the crash rate and reports how traffic splits
// between the fast and slow paths and what each regime costs.
//
// Flags: --n=16 --passages=200 --seed=42 --core=tournament|kport-tree
#include <memory>

#include "bench_common.hpp"
#include "core/sa_lock.hpp"
#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "runtime/harness.hpp"

namespace rme {

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.GetInt("n", 16));
  const uint64_t passages = static_cast<uint64_t>(cli.GetInt("passages", 200));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const std::string core = cli.GetString("core", "tournament");

  bench::PrintHeader(
      "Figure 2 — SA-Lock path split vs failure rate (n=" + std::to_string(n) +
          ", core=" + core + ")",
      "failure-free traffic is 100% fast path at O(1); only unsafe filter "
      "failures divert processes to the core lock");

  Table table({"crash prob/op", "failures", "unsafe", "fast", "slow",
               "slow share %", "cc mean", "cc p-max", "dsm mean"});

  for (double p : {0.0, 0.0003, 0.001, 0.003, 0.01}) {
    auto make_core = [&]() -> std::unique_ptr<RecoverableLock> {
      if (core == "kport-tree")
        return std::make_unique<KPortTreeLock>(n, "sa.core");
      return std::make_unique<TournamentLock>(n, "sa.core");
    };
    SaLock lock(n, make_core(), "sa");
    WorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = passages;
    cfg.seed = seed;
    cfg.cs_shared_ops = 8;
    cfg.cs_yields = 2;
    std::unique_ptr<CrashController> crash;
    if (p > 0) crash = std::make_unique<RandomCrash>(seed + 3, p, -1);
    const RunResult r = RunWorkload(lock, cfg, crash.get());
    const double total =
        static_cast<double>(lock.fast_passages() + lock.slow_passages());
    table.AddRow(
        {Table::Num(p, 4), Table::Int(r.failures), Table::Int(r.unsafe_failures),
         Table::Int(lock.fast_passages()), Table::Int(lock.slow_passages()),
         Table::Num(total > 0 ? 100.0 * lock.slow_passages() / total : 0.0, 1),
         Table::Num(r.passage.cc.mean()), Table::Num(r.passage.cc.max(), 0),
         Table::Num(r.passage.dsm.mean())});
    if (r.me_violations != 0) {
      std::fprintf(stderr, "ERROR: ME violated (%llu)\n",
                   static_cast<unsigned long long>(r.me_violations));
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Expected shape: slow share ~0%% without failures, rising with\n"
              "the unsafe-failure rate; mean RMR rises with the slow share\n"
              "toward O(1) + T(n).\n");
  return 0;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
