// Shared helpers for the bench binaries: standard header, scenario
// running, row formatting, and the KV workload generators (key
// popularity + op mix) used by both bench_kv_service and
// examples/kv_store — one implementation, seed-for-seed identical
// draws everywhere (pinned by tests/kv_workload_test).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "core/lock_registry.hpp"
#include "runtime/experiment.hpp"
#include "runtime/kv_service.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rme::bench {

/// Zipf(theta) key popularity over [0, n) by the YCSB rejection-free
/// inversion (Gray et al.'s zeta/eta closed form): rank r is drawn with
/// probability proportional to 1/(r+1)^theta, so rank 0 is the hottest
/// key. theta = 0 degenerates to uniform (exactly — the eta formula
/// collapses, but we special-case it to skip the pows); YCSB's default
/// skew is theta = 0.99. Immutable after construction: Next() draws all
/// randomness from the caller's Prng, so one instance can be shared by
/// value across forked children without any coordination.
class ZipfianKeys {
 public:
  ZipfianKeys(uint64_t n, double theta) : n_(n), theta_(theta) {
    RME_CHECK(n > 0);
    RME_CHECK(theta >= 0.0 && theta < 1.0);
    if (theta_ == 0.0) return;
    for (uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t Next(Prng& rng) const {
    if (theta_ == 0.0) return rng.NextBounded(n_);
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto r = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r < n_ ? r : n_ - 1;
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

/// Operation mix for the KV workloads. Fractions are cumulative-checked
/// at draw time: read_frac + put_frac <= 1, remainder = transactions.
struct KvOpMix {
  double read_frac = 0.80;
  double put_frac = 0.15;
  int txn_keys = 3;  ///< distinct keys per transaction, 2..kKvMaxTxnKeys
};

/// One draw of the shared workload: kind by mix fraction, keys by the
/// Zipfian popularity (transactions redraw until distinct).
inline KvOp DrawKvOp(Prng& rng, const ZipfianKeys& keys, const KvOpMix& mix) {
  KvOp op;
  const double u = rng.NextDouble();
  if (u < mix.read_frac) {
    op.kind = KvOp::kRead;
    op.keys[0] = keys.Next(rng);
    return op;
  }
  if (u < mix.read_frac + mix.put_frac) {
    op.kind = KvOp::kPut;
    op.keys[0] = keys.Next(rng);
    return op;
  }
  op.kind = KvOp::kTxn;
  const int want = std::min(std::max(mix.txn_keys, 2), kKvMaxTxnKeys);
  RME_CHECK(keys.n() >= static_cast<uint64_t>(want));
  op.nkeys = 0;
  while (op.nkeys < want) {
    const uint64_t k = keys.Next(rng);
    bool dup = false;
    for (int i = 0; i < op.nkeys; ++i) dup = dup || op.keys[i] == k;
    if (!dup) op.keys[op.nkeys++] = k;
  }
  return op;
}

/// The KvDrawFn the service wants, closing over copies of the generator
/// state (fork-safe: nothing shared, nothing mutable).
inline KvDrawFn MakeKvDraw(const ZipfianKeys& keys, const KvOpMix& mix) {
  return [keys, mix](int /*pid*/, Prng& rng) {
    return DrawKvOp(rng, keys, mix);
  };
}

inline void PrintHeader(const std::string& title, const std::string& claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==================================================================\n");
}

/// Runs and prints a one-line progress note on stderr (tables go to
/// stdout so they can be piped/captured cleanly).
inline RunResult Run(const std::string& lock, const WorkloadConfig& cfg,
                     const Scenario& s) {
  std::fprintf(stderr, "[run] %-14s n=%-3d %s\n", lock.c_str(), cfg.num_procs,
               s.Label().c_str());
  return RunScenario(lock, cfg, s);
}

}  // namespace rme::bench
