// Shared helpers for the bench binaries: standard header, scenario
// running, and row formatting.
#pragma once

#include <cstdio>
#include <string>

#include "core/lock_registry.hpp"
#include "runtime/experiment.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rme::bench {

inline void PrintHeader(const std::string& title, const std::string& claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==================================================================\n");
}

/// Runs and prints a one-line progress note on stderr (tables go to
/// stdout so they can be piped/captured cleanly).
inline RunResult Run(const std::string& lock, const WorkloadConfig& cfg,
                     const Scenario& s) {
  std::fprintf(stderr, "[run] %-14s n=%-3d %s\n", lock.c_str(), cfg.num_procs,
               s.Label().c_str());
  return RunScenario(lock, cfg, s);
}

}  // namespace rme::bench
