// Table 1: RMR complexity of every lock in the zoo under the paper's
// three failure regimes — no failures, F failures, arbitrarily many
// failures — measured simultaneously under the CC and DSM models.
//
// Flags: --n=16 --passages=200 --f=24 --sustained-p=0.003 --seed=42 --csv
//        --cc-strict (ablation: writer loses its cached copy)
#include <memory>

#include "bench_common.hpp"
#include "crash/crash.hpp"
#include "rmr/memory_model.hpp"

namespace rme {
namespace {

struct PaperRow {
  const char* lock;
  const char* none;
  const char* limited;
  const char* arbitrary;
};

const PaperRow kPaperRows[] = {
    {"mcs", "O(1)", "-", "-"},
    {"wr", "O(1)", "O(1)*", "O(1)*"},
    {"gr-adaptive", "O(1)", "O(F)", "unbounded"},
    {"gr-semi", "O(1)", "O(n)", "O(n)"},
    {"tournament", "O(log n)", "O(log n)", "O(log n)"},
    {"ya-tournament", "O(log n)", "O(log n)", "O(log n)"},
    {"kport-tree", "O(log n/llog n)", "O(log n/llog n)", "O(log n/llog n)"},
    {"cw-ticket", "O(1)", "O(F)", "unbounded"},
    {"sa", "O(1)", "O(T(n))", "O(T(n))"},
    {"ba", "O(1)", "O(sqrt F)", "O(log n/llog n)"},
    {"ba-iter", "O(1)", "O(sqrt F)", "O(log n/llog n)"},
    {"ba-tournament", "O(1)", "O(sqrt F)", "O(log n)"},
};

}  // namespace

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.GetInt("n", 16));
  const uint64_t passages = static_cast<uint64_t>(cli.GetInt("passages", 200));
  const int64_t f = cli.GetInt("f", 24);
  const double sustained_p = cli.GetDouble("sustained-p", 0.003);
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  memory_model_config().cc_strict = cli.GetBool("cc-strict", false);

  bench::PrintHeader(
      "Table 1 — RMR per passage across failure regimes (n=" +
          std::to_string(n) + ")",
      "our lock (ba): O(1) / O(sqrt F) / O(log n / log log n); baselines per their rows");

  Table table({"lock", "regime", "paper", "cc mean", "cc p-max", "victim cc",
               "dsm mean", "failures", "unsafe"});

  for (const PaperRow& row : kPaperRows) {
    const std::string lock = row.lock;
    WorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = passages;
    cfg.seed = seed;
    cfg.cs_shared_ops = 8;
    cfg.cs_yields = 2;

    // Regime 1: no failures (also calibrates the op volume used to space
    // the F-failures regime's injection evenly across the run).
    std::fprintf(stderr, "[run] %-14s none\n", lock.c_str());
    const RunResult r_none = RunScenario(lock, cfg, Scenario::None());
    auto add = [&](const char* regime, const char* paper, const RunResult& r) {
      table.AddRow({lock, regime, paper, Table::Num(r.passage.cc.mean()),
                    Table::Num(r.passage.cc.max(), 0),
                    r.victim_passage.cc.count() > 0
                        ? Table::Num(r.victim_passage.cc.mean())
                        : "-",
                    Table::Num(r.passage.dsm.mean()),
                    Table::Int(r.failures), Table::Int(r.unsafe_failures)});
      if (r.aborted) {
        std::fprintf(stderr, "WARNING: %s/%s aborted (stall)\n", lock.c_str(),
                     regime);
      }
    };
    add("none", row.none, r_none);
    if (lock == "mcs") continue;  // non-recoverable: no crash regimes

    // Regime 2: exactly F failures, evenly spread over the run's ops,
    // plus FAS-targeted hits so filter-based locks see their sensitive
    // window (their adversarial placement).
    const double ops_pp =
        r_none.passage.ops.count() > 0 ? r_none.passage.ops.mean() : 40.0;
    const uint64_t total_ops = static_cast<uint64_t>(
        ops_pp * static_cast<double>(passages) * n);
    {
      auto inst = MakeLock(lock, n);
      SpacedSiteCrash spread(
          "", std::max<uint64_t>(1, total_ops / (2 * f)), f / 2 + 1);
      SpacedSiteCrash fas(
          "fas", std::max<uint64_t>(1, (2 * passages * n) / f), f / 2);
      CompositeCrash crash({&spread, &fas});
      std::fprintf(stderr, "[run] %-14s F=%lld\n", lock.c_str(),
                   static_cast<long long>(f));
      const RunResult r = RunWorkload(*inst, cfg, &crash);
      add("F failures", row.limited, r);
    }

    // Regime 3: sustained random failures for the whole run.
    std::fprintf(stderr, "[run] %-14s sustained\n", lock.c_str());
    const RunResult r_sus =
        RunScenario(lock, cfg, Scenario::Sustained(sustained_p));
    add("sustained", row.arbitrary, r_sus);
  }

  std::printf("%s\n", table.ToText().c_str());
  if (cli.GetBool("csv", false)) {
    std::printf("CSV:\n%s\n", table.ToCsv().c_str());
  }
  std::printf(
      "* wr is weakly recoverable: O(1) holds because failures are\n"
      "  absorbed as temporary ME violations, not extra RMRs.\n"
      "Reading the table: 'victim cc' is the mean RMR of passages whose\n"
      "super-passage crashed at least once — per-failure repair bills land\n"
      "there (the sustained regime's global means are diluted by cheap\n"
      "restarted attempts). 'cc p-max' is the worst failure-free passage:\n"
      "the boundedness signal. As in the paper's Table 1 daggers, the\n"
      "gr-adaptive/gr-semi rows claim CC only — their owner-gate and epoch\n"
      "spins are remote under DSM, which the dsm column makes visible.\n");
  return 0;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
