// Section 7.1 (Theorem 7.1 / Corollary 7.2) — batch failures.
//
// Fixed total crash count T, partitioned into batches of size b: with
// larger batches the RMR bill shifts from the sqrt(F) term toward the
// linear Fb term — RMR = O(min{Fb + sqrt(F), log n/log log n}) where Fb
// is the number of batches. A system-wide failure (b = n) is the
// extreme case.
//
// Flags: --n=16 --passages=250 --total=32 --seed=42
#include <memory>

#include "bench_common.hpp"
#include "core/ba_lock.hpp"
#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "runtime/harness.hpp"

namespace rme {

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.GetInt("n", 16));
  const uint64_t passages = static_cast<uint64_t>(cli.GetInt("passages", 250));
  const int total = static_cast<int>(cli.GetInt("total", 32));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  bench::PrintHeader(
      "Batch failures (Thm 7.1 / Cor 7.2) — fixed total crashes, varying "
      "batch size (n=" + std::to_string(n) + ", total=" + std::to_string(total) + ")",
      "RMR = O(min{Fb + sqrt(F), log n/log log n}); batches escalate at "
      "most one level each");

  // Estimate the run's logical-op span to spread batches evenly: a
  // failure-free calibration run measures ops per passage.
  double ops_per_passage = 40.0;
  {
    auto ba = std::make_unique<BaLock>(
        n, 6, std::make_unique<KPortTreeLock>(n, "ba.base"));
    WorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = 50;
    cfg.seed = seed;
    const RunResult r = RunScenario(*ba, cfg, Scenario::None());
    if (r.passage.ops.count() > 0) ops_per_passage = r.passage.ops.mean();
  }
  const uint64_t total_ops = static_cast<uint64_t>(
      ops_per_passage * static_cast<double>(passages) * n);

  Table table({"batch size b", "batches Fb", "failures seen", "cc mean",
               "cc p-max", "max level"});

  for (int b : {1, 2, 4, 8, 16}) {
    if (b > n) continue;
    const int batches = (total + b - 1) / b;
    // Schedule batches evenly across the run's eventual logical span.
    std::vector<BatchCrash::Batch> schedule;
    const uint64_t start = LogicalNow();
    for (int i = 0; i < batches; ++i) {
      uint64_t mask = 0;
      for (int j = 0; j < b; ++j) {
        mask |= 1ULL << ((i * b + j) % n);  // rotate victims
      }
      schedule.push_back(
          {start + total_ops * static_cast<uint64_t>(i + 1) /
                       static_cast<uint64_t>(batches + 1),
           mask});
    }
    // Batch members crash at their next *filter FAS* after the
    // trigger: a simultaneous unsafe batch (the interesting case).
    BatchCrash crash(std::move(schedule), "filter.tail.fas");

    auto ba = std::make_unique<BaLock>(
        n, 6, std::make_unique<KPortTreeLock>(n, "ba.base"));
    WorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = passages;
    cfg.seed = seed + static_cast<uint64_t>(b);
    std::fprintf(stderr, "[run] batch size %d (%d batches)\n", b, batches);
    const RunResult r = RunWorkload(*ba, cfg, &crash);
    table.AddRow({Table::Int(static_cast<uint64_t>(b)),
                  Table::Int(static_cast<uint64_t>(batches)),
                  Table::Int(r.failures), Table::Num(r.passage.cc.mean()),
                  Table::Num(r.passage.cc.max(), 0),
                  Table::Num(r.level_reached.max(), 0)});
    if (r.me_violations != 0) {
      std::fprintf(stderr, "ERROR: ME violated\n");
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Expected: with the same crash total, fewer/larger batches\n"
              "escalate fewer levels (each batch costs ~1 level), so the\n"
              "cc mean falls (or stays flat) as b grows — the Fb term\n"
              "dominates sqrt(F).\n");
  return 0;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
