// Real-process crash sweep: every recoverable lock in the registry runs
// under the fork harness with genuine SIGKILL injection — child-side
// site-precise kills plus parent-side independent and whole-batch kills
// (§7.1's batch-failure regime) — and the post-hoc log verdicts are
// tabulated. This validates crash-recovery *correctness* under real
// process death, and — with the segment-resident counter mirror — also
// measures RMRs under real kills: --report=rmr prints per-lock passage
// cost conditioned on F, the kills overlapping the passage (the Fig. 3
// x-axis), in both the CC and DSM models.
//
// --storm switches to the recovery-storm regime (Thm 5.17 / §7.1): a
// RecoveryStormCrash controller re-kills the victim pid inside its first
// `--storm_kills` consecutive Recover() attempts (--storm_victim=-1
// storms every pid — batch kills mid-recovery). The report adds
// per-phase kill classification, the max BA level reached vs the
// x(x-1)/2 failure lower bound, and a starvation gate: every non-victim
// pid must still complete its full passage quota, with its worst
// super-passage tabulated in attempts and event-log ticket time.
//
// Flags: --n=8 --passages=2000 --seed=42 --independent=100 --batches=20
//        --batch_size=0 (0 = all n) --self_prob=0.0005 --self_budget=50
//        --interval_ms=0.5 --locks=wr,tree,... (default: all recoverable)
//        --report=rmr (adds the RMR-vs-F table and the zero-RMR gate)
//        --json_out=PATH (writes the RMR report as JSON)
//        --storm --storm_kills=12 --storm_victim=0 (-1 = all)
//        --storm_nth=1 (which in-Recover op dies; storm zeroes the other
//        kill sources unless they are passed explicitly)
//        --spin_budget_us=N (stage-2 spin budget before futex parking;
//        0 = park immediately, the park/unpark stress regime; -1 keeps
//        the built-in default) --cohorts=N (cohort count for the cohort
//        locks; 0 = NUMA auto-detect)
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "locks/cohort_lock.hpp"
#include "runtime/fork_harness.hpp"

namespace rme {

namespace {

std::vector<std::string> SplitNames(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string part = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Growth class of mean CC RMR against F across the overlap buckets
/// (x = F + 1 so the F = 0 bucket anchors the curve).
std::string GrowthClass(const std::map<int, ForkRmrBin>& bins) {
  std::vector<double> x, y;
  for (const auto& [f, bin] : bins) {
    if (bin.passages == 0) continue;
    x.push_back(static_cast<double>(f) + 1.0);
    y.push_back(static_cast<double>(bin.cc_sum) /
                static_cast<double>(bin.passages));
  }
  if (x.size() < 2) return "n/a";
  return ClassifyGrowth(x, y);
}

void WriteRmrJson(const std::string& path, const ForkCrashConfig& cfg,
                  const std::vector<std::pair<std::string, ForkCrashResult>>&
                      results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ERROR: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fork_rmr\",\n");
  std::fprintf(f, "  \"n\": %d,\n  \"passages_per_proc\": %" PRIu64 ",\n",
               cfg.num_procs, cfg.passages_per_proc);
  std::fprintf(f, "  \"independent_kills\": %" PRIu64
                  ",\n  \"batch_kill_events\": %" PRIu64 ",\n",
               cfg.independent_kills, cfg.batch_kill_events);
  std::fprintf(f, "  \"locks\": {\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& [name, r] = results[i];
    std::fprintf(f, "    \"%s\": {\n", name.c_str());
    std::fprintf(f, "      \"kills\": %" PRIu64 ",\n", r.kills);
    std::fprintf(f, "      \"counter_regressions\": %" PRIu64 ",\n",
                 r.counter_regressions);
    std::fprintf(f, "      \"phantom_crash_notes\": %" PRIu64 ",\n",
                 r.phantom_crash_notes);
    std::fprintf(f, "      \"max_kill_ops_gap\": %" PRIu64 ",\n",
                 r.max_kill_ops_gap);
    std::fprintf(f, "      \"growth_cc\": \"%s\",\n",
                 GrowthClass(r.rmr_by_overlap).c_str());
    std::fprintf(f, "      \"by_overlap\": [");
    bool first = true;
    for (const auto& [fb, bin] : r.rmr_by_overlap) {
      if (bin.passages == 0) continue;
      const double p = static_cast<double>(bin.passages);
      std::fprintf(f,
                   "%s\n        {\"f\": %d, \"passages\": %" PRIu64
                   ", \"mean_ops\": %.2f, \"mean_cc\": %.2f, \"max_cc\": "
                   "%" PRIu64 ", \"mean_dsm\": %.2f, \"max_dsm\": %" PRIu64
                   "}",
                   first ? "" : ",", fb, bin.passages,
                   static_cast<double>(bin.ops_sum) / p,
                   static_cast<double>(bin.cc_sum) / p, bin.cc_max,
                   static_cast<double>(bin.dsm_sum) / p, bin.dsm_max);
      first = false;
    }
    std::fprintf(f, "\n      ]\n    }%s\n",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[json] wrote %s\n", path.c_str());
}

}  // namespace

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  ForkCrashConfig cfg;
  cfg.num_procs = static_cast<int>(cli.GetInt("n", 8));
  cfg.passages_per_proc = static_cast<uint64_t>(cli.GetInt("passages", 2000));
  cfg.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  cfg.independent_kills = static_cast<uint64_t>(cli.GetInt("independent", 100));
  cfg.batch_kill_events = static_cast<uint64_t>(cli.GetInt("batches", 20));
  cfg.batch_size = static_cast<int>(cli.GetInt("batch_size", 0));
  cfg.self_kill_per_op = cli.GetDouble("self_prob", 0.0005);
  cfg.self_kill_budget = cli.GetInt("self_budget", 50);
  cfg.kill_interval_ms = cli.GetDouble("interval_ms", 0.5);
  cfg.spin_budget_us = static_cast<int32_t>(cli.GetInt("spin_budget_us", -1));
  if (cli.Has("cohorts")) {
    // Applies at MakeLock time inside the harness (cohort locks only).
    cohort_lock_defaults().cohorts =
        static_cast<int>(cli.GetInt("cohorts", 0));
  }
  const bool report_rmr = cli.GetString("report", "") == "rmr";
  const std::string json_out = cli.GetString("json_out", "");

  const bool storm_mode = cli.GetBool("storm", false);
  if (storm_mode) {
    cfg.storm_kills = static_cast<uint64_t>(cli.GetInt("storm_kills", 12));
    cfg.storm_victim = static_cast<int>(cli.GetInt("storm_victim", 0));
    cfg.storm_nth_op = static_cast<uint64_t>(cli.GetInt("storm_nth", 1));
    // The storm is the experiment: other kill sources default off so the
    // failure count is exactly the storm's (explicit flags still win).
    if (!cli.Has("independent")) cfg.independent_kills = 0;
    if (!cli.Has("batches")) cfg.batch_kill_events = 0;
    if (!cli.Has("self_prob")) cfg.self_kill_per_op = 0.0;
    if (!cli.Has("self_budget")) cfg.self_kill_budget = 0;
    if (!cli.Has("passages")) cfg.passages_per_proc = 500;
  }

  std::vector<std::string> locks = RecoverableLockNames();
  if (cli.Has("locks")) locks = SplitNames(cli.GetString("locks", ""));

  bench::PrintHeader(
      "Real-process crash harness — SIGKILL injection against a shared "
      "segment (n=" + std::to_string(cfg.num_procs) + ")",
      "every recoverable lock preserves ME/BCSR when processes die for "
      "real and Recover() runs against the surviving shared state");

  Table table({"lock", "passages", "kills", "child", "parent", "batches",
               "ME", "BCSR", "adm ovl", "max cc", "wall s", "seg KB"});

  std::vector<std::pair<std::string, ForkCrashResult>> results;
  bool all_clean = true;
  for (const std::string& name : locks) {
    std::fprintf(stderr, "[run] %-14s n=%-3d sigkill sweep\n", name.c_str(),
                 cfg.num_procs);
    ForkCrashResult r = RunForkCrashWorkload(name, cfg);
    table.AddRow({name, Table::Int(r.completed_passages),
                  Table::Int(r.kills), Table::Int(r.child_kills),
                  Table::Int(r.parent_kills), Table::Int(r.batch_events),
                  Table::Int(r.me_violations), Table::Int(r.bcsr_violations),
                  Table::Int(r.admissible_overlaps),
                  Table::Int(static_cast<uint64_t>(r.max_concurrent_cs)),
                  Table::Num(r.wall_seconds),
                  Table::Int(r.segment_bytes_used / 1024)});
    if (r.me_violations != 0 || r.bcsr_violations != 0 ||
        r.child_errors != 0 || r.watchdog_fired || r.log_overflow) {
      all_clean = false;
      std::fprintf(stderr,
                   "ERROR: %s: me=%llu bcsr=%llu child_errors=%llu "
                   "watchdog=%d overflow=%d\n",
                   name.c_str(),
                   static_cast<unsigned long long>(r.me_violations),
                   static_cast<unsigned long long>(r.bcsr_violations),
                   static_cast<unsigned long long>(r.child_errors),
                   r.watchdog_fired ? 1 : 0, r.log_overflow ? 1 : 0);
    }
    if (r.hangs != 0 || r.watchdog_kills != 0 || r.hung_abandoned != 0) {
      // No registry lock may ever trip the per-child liveness watchdog:
      // a hang here is a real livelock, not an injected one.
      all_clean = false;
      std::fprintf(stderr,
                   "ERROR: %s: hangs=%llu watchdog_kills=%llu "
                   "abandoned=%llu — liveness watchdog fired\n",
                   name.c_str(), static_cast<unsigned long long>(r.hangs),
                   static_cast<unsigned long long>(r.watchdog_kills),
                   static_cast<unsigned long long>(r.hung_abandoned));
    }
    if (storm_mode) {
      const uint64_t expected_storm =
          cfg.storm_kills *
          static_cast<uint64_t>(cfg.storm_victim < 0 ? cfg.num_procs : 1);
      if (r.storm_kills != expected_storm) {
        all_clean = false;
        std::fprintf(stderr,
                     "ERROR: %s: storm delivered %llu kills, wanted %llu\n",
                     name.c_str(),
                     static_cast<unsigned long long>(r.storm_kills),
                     static_cast<unsigned long long>(expected_storm));
      }
      if (r.kills_by_phase[static_cast<size_t>(
              shm::PidPhase::kRecovering)] < r.storm_kills) {
        all_clean = false;
        std::fprintf(stderr,
                     "ERROR: %s: only %llu kills classified as "
                     "in-recovery, storm delivered %llu\n",
                     name.c_str(),
                     static_cast<unsigned long long>(r.kills_by_phase[
                         static_cast<size_t>(shm::PidPhase::kRecovering)]),
                     static_cast<unsigned long long>(r.storm_kills));
      }
      // Thm 5.17: reaching BA level x needs >= x(x-1)/2 failures. A lock
      // that got deeper on fewer kills broke the adaptivity bound.
      const uint64_t level = static_cast<uint64_t>(r.max_ba_level);
      if (r.kills < level * (level - 1) / 2) {
        all_clean = false;
        std::fprintf(stderr,
                     "ERROR: %s: reached BA level %llu on %llu kills "
                     "(< level*(level-1)/2 = %llu) — Thm 5.17 violated\n",
                     name.c_str(), static_cast<unsigned long long>(level),
                     static_cast<unsigned long long>(r.kills),
                     static_cast<unsigned long long>(level * (level - 1) / 2));
      }
      // Starvation gate: storming one pid must not stop the others (or,
      // after the storm budget is spent, the victim) from finishing.
      for (size_t pid = 0; pid < r.per_pid.size(); ++pid) {
        if (r.per_pid[pid].done != cfg.passages_per_proc) {
          all_clean = false;
          std::fprintf(stderr,
                       "ERROR: %s: pid %zu finished %llu/%llu passages "
                       "under the storm — starved\n",
                       name.c_str(), pid,
                       static_cast<unsigned long long>(r.per_pid[pid].done),
                       static_cast<unsigned long long>(
                           cfg.passages_per_proc));
        }
      }
    }
    if (r.counter_regressions != 0 || r.phantom_crash_notes != 0) {
      all_clean = false;
      std::fprintf(stderr,
                   "ERROR: %s: counter_regressions=%llu "
                   "phantom_crash_notes=%llu\n",
                   name.c_str(),
                   static_cast<unsigned long long>(r.counter_regressions),
                   static_cast<unsigned long long>(r.phantom_crash_notes));
    }
    results.emplace_back(name, std::move(r));
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Expected: zero ME/BCSR for every lock; weak locks may show\n"
              "admissible overlaps (inside failure consequence intervals)\n"
              "but strong ones must not overlap at all.\n");

  if (storm_mode) {
    Table st({"lock", "storm", "ph:rec", "ph:ent", "ph:cs", "ph:exit",
              "max BA", "x(x-1)/2", "att/pass", "span", "min done"});
    for (const auto& [name, r] : results) {
      uint64_t worst_attempts = 0, worst_span = 0;
      uint64_t min_done = cfg.passages_per_proc;
      for (const auto& pp : r.per_pid) {
        worst_attempts = std::max(worst_attempts, pp.max_attempts_per_passage);
        worst_span = std::max(worst_span, pp.max_passage_ticket_span);
        min_done = std::min(min_done, pp.done);
      }
      const uint64_t level = static_cast<uint64_t>(r.max_ba_level);
      st.AddRow(
          {name, Table::Int(r.storm_kills),
           Table::Int(r.kills_by_phase[static_cast<size_t>(
               shm::PidPhase::kRecovering)]),
           Table::Int(r.kills_by_phase[static_cast<size_t>(
               shm::PidPhase::kEntering)]),
           Table::Int(
               r.kills_by_phase[static_cast<size_t>(shm::PidPhase::kCs)]),
           Table::Int(r.kills_by_phase[static_cast<size_t>(
               shm::PidPhase::kExiting)]),
           Table::Int(level), Table::Int(level * (level - 1) / 2),
           Table::Int(worst_attempts), Table::Int(worst_span),
           Table::Int(min_done)});
    }
    std::printf("\nRecovery storm (victim=%d, %llu kills inside Recover):\n",
                cfg.storm_victim,
                static_cast<unsigned long long>(cfg.storm_kills));
    std::printf("%s\n", st.ToText().c_str());
    std::printf(
        "Expected: every storm kill lands in the recovering phase; BA\n"
        "levels obey kills >= level*(level-1)/2 (Thm 5.17); att/pass for\n"
        "the victim is storm_kills+1; min done == the full quota (nobody\n"
        "starves).\n");
  }

  if (report_rmr) {
    // Per-passage RMR conditioned on F = kills overlapping the passage,
    // computed from event-log counter snapshots that survived every
    // SIGKILL in the segment-resident per-pid slots.
    Table rmr({"lock", "F", "passages", "mean ops", "mean cc", "max cc",
               "mean dsm", "max dsm", "growth(cc)"});
    for (const auto& [name, r] : results) {
      const std::string growth = GrowthClass(r.rmr_by_overlap);
      bool first = true;
      for (const auto& [fb, bin] : r.rmr_by_overlap) {
        if (bin.passages == 0) continue;
        const double p = static_cast<double>(bin.passages);
        rmr.AddRow({first ? name : "", Table::Int(static_cast<uint64_t>(fb)),
                    Table::Int(bin.passages),
                    Table::Num(static_cast<double>(bin.ops_sum) / p),
                    Table::Num(static_cast<double>(bin.cc_sum) / p),
                    Table::Int(bin.cc_max),
                    Table::Num(static_cast<double>(bin.dsm_sum) / p),
                    Table::Int(bin.dsm_max), first ? growth : ""});
        first = false;
      }
      // Zero-RMR gate: with mirroring on, every pid that completed work
      // must have flushed nonzero RMR counts into its segment slot — a
      // zero means the kill-survivable accounting silently broke.
      for (size_t pid = 0; pid < r.pid_counters.size(); ++pid) {
        const OpCounters& c = r.pid_counters[pid];
        if (c.ops == 0 || c.cc_rmrs == 0) {
          all_clean = false;
          std::fprintf(stderr,
                       "ERROR: %s: pid %zu reports zero RMRs "
                       "(ops=%llu cc=%llu) — mirror accounting broken\n",
                       name.c_str(), pid,
                       static_cast<unsigned long long>(c.ops),
                       static_cast<unsigned long long>(c.cc_rmrs));
        }
      }
    }
    std::printf("\nPer-passage RMR vs F (kills overlapping the passage):\n");
    std::printf("%s\n", rmr.ToText().c_str());
    std::printf("Expected: adaptive locks stay O(1) at F=0 and grow with F,\n"
                "capped by their base lock; costs include the CS body's\n"
                "fixed cs_shared_ops instrumented ops per passage.\n");
  }

  if (!json_out.empty()) WriteRmrJson(json_out, cfg, results);

  return all_clean ? 0 : 1;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
