// Real-process crash sweep: every recoverable lock in the registry runs
// under the fork harness with genuine SIGKILL injection — child-side
// site-precise kills plus parent-side independent and whole-batch kills
// (§7.1's batch-failure regime) — and the post-hoc log verdicts are
// tabulated. This validates crash-recovery *correctness* under real
// process death; RMR accounting stays with the in-process benches
// (per-passage counters die with the killed child).
//
// Flags: --n=8 --passages=2000 --seed=42 --independent=100 --batches=20
//        --batch_size=0 (0 = all n) --self_prob=0.0005 --self_budget=50
//        --interval_ms=0.5 --locks=wr,tree,... (default: all recoverable)
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/fork_harness.hpp"

namespace rme {

namespace {

std::vector<std::string> SplitNames(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string part = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  ForkCrashConfig cfg;
  cfg.num_procs = static_cast<int>(cli.GetInt("n", 8));
  cfg.passages_per_proc = static_cast<uint64_t>(cli.GetInt("passages", 2000));
  cfg.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  cfg.independent_kills = static_cast<uint64_t>(cli.GetInt("independent", 100));
  cfg.batch_kill_events = static_cast<uint64_t>(cli.GetInt("batches", 20));
  cfg.batch_size = static_cast<int>(cli.GetInt("batch_size", 0));
  cfg.self_kill_per_op = cli.GetDouble("self_prob", 0.0005);
  cfg.self_kill_budget = cli.GetInt("self_budget", 50);
  cfg.kill_interval_ms = cli.GetDouble("interval_ms", 0.5);

  std::vector<std::string> locks = RecoverableLockNames();
  if (cli.Has("locks")) locks = SplitNames(cli.GetString("locks", ""));

  bench::PrintHeader(
      "Real-process crash harness — SIGKILL injection against a shared "
      "segment (n=" + std::to_string(cfg.num_procs) + ")",
      "every recoverable lock preserves ME/BCSR when processes die for "
      "real and Recover() runs against the surviving shared state");

  Table table({"lock", "passages", "kills", "child", "parent", "batches",
               "ME", "BCSR", "adm ovl", "max cc", "wall s", "seg KB"});

  bool all_clean = true;
  for (const std::string& name : locks) {
    std::fprintf(stderr, "[run] %-14s n=%-3d sigkill sweep\n", name.c_str(),
                 cfg.num_procs);
    const ForkCrashResult r = RunForkCrashWorkload(name, cfg);
    table.AddRow({name, Table::Int(r.completed_passages),
                  Table::Int(r.kills), Table::Int(r.child_kills),
                  Table::Int(r.parent_kills), Table::Int(r.batch_events),
                  Table::Int(r.me_violations), Table::Int(r.bcsr_violations),
                  Table::Int(r.admissible_overlaps),
                  Table::Int(static_cast<uint64_t>(r.max_concurrent_cs)),
                  Table::Num(r.wall_seconds),
                  Table::Int(r.segment_bytes_used / 1024)});
    if (r.me_violations != 0 || r.bcsr_violations != 0 ||
        r.child_errors != 0 || r.watchdog_fired || r.log_overflow) {
      all_clean = false;
      std::fprintf(stderr,
                   "ERROR: %s: me=%llu bcsr=%llu child_errors=%llu "
                   "watchdog=%d overflow=%d\n",
                   name.c_str(),
                   static_cast<unsigned long long>(r.me_violations),
                   static_cast<unsigned long long>(r.bcsr_violations),
                   static_cast<unsigned long long>(r.child_errors),
                   r.watchdog_fired ? 1 : 0, r.log_overflow ? 1 : 0);
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Expected: zero ME/BCSR for every lock; weak locks may show\n"
              "admissible overlaps (inside failure consequence intervals)\n"
              "but strong ones must not overlap at all.\n");
  return all_clean ? 0 : 1;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
