// Per-op cost of the RMR instrumentation itself, at 1/4/8/16 threads:
// rmr::Atomic (counted, crash-probed, clock-stamped) against the bare
// std::atomic it compiles to under RME_NATIVE_ATOMICS. Every thread
// works on its OWN cache-line-aligned variable, so nothing is shared
// except what the instrumentation shares — which is precisely what this
// bench exists to measure. Before the clock was sharded, the per-op
// global fetch_add made these curves collapse with thread count; after,
// instrumented cost should stay near-flat while the `block1` series
// (seed-equivalent clock granularity) keeps showing the old behaviour.
//
// Emit machine-readable results with:
//   bench_instr_overhead --benchmark_out=BENCH_instr_overhead.json
//                        --benchmark_out_format=json   (one command line)
// (see EXPERIMENTS.md for how the overhead ratio is derived per thread
// count: ratio = instr time / native time for the same op).
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <vector>

#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"

namespace rme {
namespace {

/// One variable per thread, each alone on its line.
struct alignas(kCacheLineBytes) PaddedNative {
  std::atomic<uint64_t> v{0};
};
PaddedNative g_native[kMaxProcs];
rmr::Atomic<uint64_t> g_instr[kMaxProcs];
/// Second per-thread variable for the CS-shaped mix (spin target,
/// distinct from the exchanged/stored one, as in a real lock passage).
rmr::Atomic<uint64_t> g_instr_spin[kMaxProcs];
PaddedNative g_native_spin[kMaxProcs];
/// Per-thread mirror slots for the `mirrored` series (each alignas(64),
/// so the flush hits only the owner's own line — the fork-harness
/// layout's discipline, reproduced here to price it).
SharedOpCounters g_mirror[kMaxProcs];

void BM_NativeFetchAdd(benchmark::State& state) {
  std::atomic<uint64_t>& v = g_native[state.thread_index()].v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.fetch_add(1, std::memory_order_seq_cst));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NativeLoad(benchmark::State& state) {
  std::atomic<uint64_t>& v = g_native[state.thread_index()].v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.load(std::memory_order_seq_cst));
  }
  state.SetItemsProcessed(state.iterations());
}

void InstrFetchAddBody(benchmark::State& state) {
  ProcessBinding bind(state.thread_index(), nullptr);
  rmr::Atomic<uint64_t>& v = g_instr[state.thread_index()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.FetchAdd(1, "bench.faa"));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InstrFetchAdd(benchmark::State& state) { InstrFetchAddBody(state); }

/// Kill-survivable accounting: every op additionally flushes the
/// caller's counters to its segment-slot mirror (three relaxed stores,
/// all on the owner's own cache line). This is what the fork harness
/// pays; the plain series is what in-process runs pay.
void BM_InstrFetchAddMirrored(benchmark::State& state) {
  ProcessBinding bind(state.thread_index(), nullptr,
                      &g_mirror[state.thread_index()]);
  rmr::Atomic<uint64_t>& v = g_instr[state.thread_index()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.FetchAdd(1, "bench.faa"));
  }
  state.SetItemsProcessed(state.iterations());
}

/// Seed-equivalent clock granularity: every op pays the global fetch_add.
void BM_InstrFetchAddBlock1(benchmark::State& state) {
  InstrFetchAddBody(state);
}

void BM_InstrLoadHit(benchmark::State& state) {
  ProcessBinding bind(state.thread_index(), nullptr);
  rmr::Atomic<uint64_t>& v = g_instr[state.thread_index()];
  v.Store(1, "bench.warm");  // install our cached copy: steady-state hit
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Load("bench.load"));
  }
  state.SetItemsProcessed(state.iterations());
}

/// Cold read: the CC hit-test misses and reinstalls the copy every time
/// (the mask is cleared by an uninstrumented RawStore each iteration —
/// the miss branch plus its fetch_or is the quantity priced here). The
/// native mirror, native_store_load, pays the same store+load pair
/// without the accounting, so the per-iteration ratio isolates the
/// miss-path instrumentation.
void BM_InstrLoadMiss(benchmark::State& state) {
  ProcessBinding bind(state.thread_index(), nullptr);
  rmr::Atomic<uint64_t>& v = g_instr[state.thread_index()];
  for (auto _ : state) {
    v.RawStore(1);  // clears the CC mask: next Load is a modelled miss
    benchmark::DoNotOptimize(v.Load("bench.load"));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NativeStoreLoad(benchmark::State& state) {
  std::atomic<uint64_t>& v = g_native[state.thread_index()].v;
  for (auto _ : state) {
    v.store(1, std::memory_order_seq_cst);
    benchmark::DoNotOptimize(v.load(std::memory_order_seq_cst));
  }
  state.SetItemsProcessed(state.iterations());
}

/// The shape a real lock passage executes (one FAS on the queue word, a
/// short spin of cached-hit loads on the own flag, one store to hand
/// over), so the fused probe is priced on the pattern the Table 1/2 and
/// Fig. 1–3 runs actually spend their time in — not just fetch_add.
/// Items processed = passages (6 shared-memory ops each).
void BM_InstrCsMix(benchmark::State& state) {
  ProcessBinding bind(state.thread_index(), nullptr);
  rmr::Atomic<uint64_t>& tail = g_instr[state.thread_index()];
  rmr::Atomic<uint64_t>& flag = g_instr_spin[state.thread_index()];
  flag.Store(1, "bench.warm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tail.Exchange(1, "bench.fas"));
    for (int i = 0; i < 4; ++i) {
      benchmark::DoNotOptimize(flag.Load("bench.spin"));  // cached hit
    }
    tail.Store(0, "bench.rel");
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NativeCsMix(benchmark::State& state) {
  std::atomic<uint64_t>& tail = g_native[state.thread_index()].v;
  std::atomic<uint64_t>& flag = g_native_spin[state.thread_index()].v;
  flag.store(1, std::memory_order_seq_cst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tail.exchange(1, std::memory_order_seq_cst));
    for (int i = 0; i < 4; ++i) {
      benchmark::DoNotOptimize(flag.load(std::memory_order_seq_cst));
    }
    tail.store(0, std::memory_order_seq_cst);
  }
  state.SetItemsProcessed(state.iterations());
}

void SetClockBlock(uint64_t b) { memory_model_config().clock_block = b; }

}  // namespace
}  // namespace rme

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char default_min_time[] = "--benchmark_min_time=0.1s";
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min_time = true;
    }
  }
  if (!has_min_time) args.push_back(default_min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());

  struct Entry {
    const char* name;
    void (*fn)(benchmark::State&);
    uint64_t clock_block;  // 0 = leave the default
  };
  const Entry entries[] = {
      {"native_fetch_add", rme::BM_NativeFetchAdd, 0},
      {"native_load", rme::BM_NativeLoad, 0},
      {"instr_fetch_add", rme::BM_InstrFetchAdd, 0},
      {"instr_fetch_add_mirrored", rme::BM_InstrFetchAddMirrored, 0},
      {"instr_fetch_add_block1", rme::BM_InstrFetchAddBlock1, 1},
      {"instr_load_hit", rme::BM_InstrLoadHit, 0},
      {"native_store_load", rme::BM_NativeStoreLoad, 0},
      {"instr_load_miss", rme::BM_InstrLoadMiss, 0},
      {"native_cs_mix", rme::BM_NativeCsMix, 0},
      {"instr_cs_mix", rme::BM_InstrCsMix, 0},
  };
  for (const Entry& e : entries) {
    for (int threads : {1, 4, 8, 16}) {
      auto* bench = benchmark::RegisterBenchmark(e.name, e.fn);
      if (e.clock_block != 0) {
        // Setup/Teardown take plain function pointers here, so the
        // block-1 ablation is hardcoded rather than parameterized.
        bench->Setup([](const benchmark::State&) { rme::SetClockBlock(1); });
        bench->Teardown([](const benchmark::State&) {
          rme::SetClockBlock(rme::MemoryModelConfig{}.clock_block);
        });
      }
      bench->Threads(threads)->UseRealTime();
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
