// Per-op cost of the RMR instrumentation itself, at 1/4/8/16 threads:
// rmr::Atomic (counted, crash-probed, clock-stamped) against the bare
// std::atomic it compiles to under RME_NATIVE_ATOMICS. Every thread
// works on its OWN cache-line-aligned variable, so nothing is shared
// except what the instrumentation shares — which is precisely what this
// bench exists to measure. Before the clock was sharded, the per-op
// global fetch_add made these curves collapse with thread count; after,
// instrumented cost should stay near-flat while the `block1` series
// (seed-equivalent clock granularity) keeps showing the old behaviour.
//
// Emit machine-readable results with:
//   bench_instr_overhead --benchmark_out=BENCH_instr_overhead.json \
//                        --benchmark_out_format=json
// (see EXPERIMENTS.md for how the overhead ratio is derived per thread
// count: ratio = instr time / native time for the same op).
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <vector>

#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"

namespace rme {
namespace {

/// One variable per thread, each alone on its line.
struct alignas(kCacheLineBytes) PaddedNative {
  std::atomic<uint64_t> v{0};
};
PaddedNative g_native[kMaxProcs];
rmr::Atomic<uint64_t> g_instr[kMaxProcs];
/// Per-thread mirror slots for the `mirrored` series (each alignas(64),
/// so the flush hits only the owner's own line — the fork-harness
/// layout's discipline, reproduced here to price it).
SharedOpCounters g_mirror[kMaxProcs];

void BM_NativeFetchAdd(benchmark::State& state) {
  std::atomic<uint64_t>& v = g_native[state.thread_index()].v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.fetch_add(1, std::memory_order_seq_cst));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NativeLoad(benchmark::State& state) {
  std::atomic<uint64_t>& v = g_native[state.thread_index()].v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.load(std::memory_order_seq_cst));
  }
  state.SetItemsProcessed(state.iterations());
}

void InstrFetchAddBody(benchmark::State& state) {
  ProcessBinding bind(state.thread_index(), nullptr);
  rmr::Atomic<uint64_t>& v = g_instr[state.thread_index()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.FetchAdd(1, "bench.faa"));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InstrFetchAdd(benchmark::State& state) { InstrFetchAddBody(state); }

/// Kill-survivable accounting: every op additionally flushes the
/// caller's counters to its segment-slot mirror (three relaxed stores,
/// all on the owner's own cache line). This is what the fork harness
/// pays; the plain series is what in-process runs pay.
void BM_InstrFetchAddMirrored(benchmark::State& state) {
  ProcessBinding bind(state.thread_index(), nullptr,
                      &g_mirror[state.thread_index()]);
  rmr::Atomic<uint64_t>& v = g_instr[state.thread_index()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.FetchAdd(1, "bench.faa"));
  }
  state.SetItemsProcessed(state.iterations());
}

/// Seed-equivalent clock granularity: every op pays the global fetch_add.
void BM_InstrFetchAddBlock1(benchmark::State& state) {
  InstrFetchAddBody(state);
}

void BM_InstrLoadHit(benchmark::State& state) {
  ProcessBinding bind(state.thread_index(), nullptr);
  rmr::Atomic<uint64_t>& v = g_instr[state.thread_index()];
  v.Store(1, "bench.warm");  // install our cached copy: steady-state hit
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Load("bench.load"));
  }
  state.SetItemsProcessed(state.iterations());
}

void SetClockBlock(uint64_t b) { memory_model_config().clock_block = b; }

}  // namespace
}  // namespace rme

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char default_min_time[] = "--benchmark_min_time=0.1s";
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min_time = true;
    }
  }
  if (!has_min_time) args.push_back(default_min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());

  struct Entry {
    const char* name;
    void (*fn)(benchmark::State&);
    uint64_t clock_block;  // 0 = leave the default
  };
  const Entry entries[] = {
      {"native_fetch_add", rme::BM_NativeFetchAdd, 0},
      {"native_load", rme::BM_NativeLoad, 0},
      {"instr_fetch_add", rme::BM_InstrFetchAdd, 0},
      {"instr_fetch_add_mirrored", rme::BM_InstrFetchAddMirrored, 0},
      {"instr_fetch_add_block1", rme::BM_InstrFetchAddBlock1, 1},
      {"instr_load_hit", rme::BM_InstrLoadHit, 0},
  };
  for (const Entry& e : entries) {
    for (int threads : {1, 4, 8, 16}) {
      auto* bench = benchmark::RegisterBenchmark(e.name, e.fn);
      if (e.clock_block != 0) {
        // Setup/Teardown take plain function pointers here, so the
        // block-1 ablation is hardcoded rather than parameterized.
        bench->Setup([](const benchmark::State&) { rme::SetClockBlock(1); });
        bench->Teardown([](const benchmark::State&) {
          rme::SetClockBlock(rme::MemoryModelConfig{}.clock_block);
        });
      }
      bench->Threads(threads)->UseRealTime();
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
