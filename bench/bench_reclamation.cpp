// Section 7.2 (Algorithm 4) — memory reclamation: space accounting
// against the paper's O(n^2 log n/log log n) bound for the full BA-Lock
// stack, reclaimer overhead per passage, and pool-swap cadence.
//
// Flags: --passages=2000 --seed=42
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/ba_lock.hpp"
#include "locks/tree_lock.hpp"
#include "locks/wr_lock.hpp"
#include "reclaim/epoch_reclaimer.hpp"
#include "rmr/counters.hpp"

namespace rme {

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  const uint64_t passages = static_cast<uint64_t>(cli.GetInt("passages", 2000));
  (void)cli.GetInt("seed", 42);

  bench::PrintHeader(
      "Algorithm 4 — epoch-based memory reclamation",
      "nodes reused only after 4n requests; BA-Lock space = "
      "O(n^2 log n/log log n) nodes");

  // (a) Reclaimer overhead and swap cadence vs n.
  Table ovh({"n", "ops/alloc-retire", "pool swaps", "swap cadence (allocs)",
             "nodes owned"});
  for (int n : {2, 4, 8, 16, 32, 64}) {
    EpochReclaimer r(n, "bench");
    std::vector<std::thread> threads;
    std::vector<uint64_t> ops(static_cast<size_t>(n));
    for (int pid = 0; pid < n; ++pid) {
      threads.emplace_back([&, pid] {
        ProcessBinding bind(pid, nullptr);
        const OpCounters before = CurrentProcess().counters;
        for (uint64_t i = 0; i < passages; ++i) {
          r.NewNode(pid);
          r.RetireNode(pid);
        }
        ops[static_cast<size_t>(pid)] =
            (CurrentProcess().counters - before).ops;
      });
    }
    for (auto& t : threads) t.join();
    uint64_t total_ops = 0;
    for (uint64_t o : ops) total_ops += o;
    const double per_cycle =
        static_cast<double>(total_ops) / (static_cast<double>(passages) * n);
    const uint64_t swaps = r.PoolSwaps(0);
    ovh.AddRow({Table::Int(static_cast<uint64_t>(n)), Table::Num(per_cycle, 1),
                Table::Int(swaps),
                Table::Num(swaps > 0 ? static_cast<double>(passages) / swaps : 0, 1),
                Table::Int(r.TotalNodes())});
  }
  std::printf("(a) overhead & cadence (per-process allocate/retire churn)\n%s\n",
              ovh.ToText().c_str());
  std::printf("Expected: ops per cycle is O(1) (one incremental Epoch step\n"
              "per allocation); swap cadence = 2n allocations; nodes = 4n^2.\n\n");

  // (b) Space accounting for the full lock stack.
  Table space({"lock", "n", "levels", "queue nodes owned", "4*n^2*m bound"});
  for (int n : {8, 16, 32, 64}) {
    auto base = std::make_unique<KPortTreeLock>(n, "ba.base");
    const int m = base->depth();
    // Each level's filter owns one reclaimer with 4n nodes per process.
    const uint64_t nodes = static_cast<uint64_t>(m) * 4u *
                           static_cast<uint64_t>(n) * static_cast<uint64_t>(n);
    space.AddRow({"ba", Table::Int(static_cast<uint64_t>(n)),
                  Table::Int(static_cast<uint64_t>(m)), Table::Int(nodes),
                  Table::Int(4ull * static_cast<uint64_t>(n) * n *
                             static_cast<uint64_t>(m))});
  }
  std::printf("(b) space: BA-Lock queue-node footprint\n%s\n",
              space.ToText().c_str());
  std::printf("Each of the m = T(n) levels owns a filter with 2 pools x 2n\n"
              "nodes per process: total 4n^2 m = O(n^2 log n / log log n).\n");
  return 0;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
