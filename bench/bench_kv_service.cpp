// Sharded recoverable KV service leaderboard: every pluggable lock
// family driving the same striped table under the same Zipfian
// read/write/transaction mix, at several stripe counts, batched
// (EnterMany) vs unbatched — throughput plus reservoir-merged p99/p999
// tail latency — and a kill-regime verdict pass (independent kills +
// recovery storm + self kills) with the ME/BCSR/starvation and
// conservation gates from the fork harness.
//
//   ./bench/bench_kv_service --json_out=BENCH_kv_service.json
//
// Flags (defaults in parentheses):
//   --families=wr,gr-adaptive,...   comma list (7-family leaderboard)
//   --stripes=64,4096               comma list of stripe counts
//   --procs=8 --keys=1048576 --ops=4000 --batch=16
//   --theta=0.99 --read_frac=0.70 --put_frac=0.20 --txn_keys=3
//   --kill_ops=2000 --kills=12 --storm_kills=3 --kill_interval_ms=1
//   --self_kill_per_op=0.0005 --self_kill_budget=10
//   --skip_kills --quick            (--quick: 2 families, 1 stripe count)
//   --gate                          exit 1 on any verdict violation or if
//                                   batching fails to beat unbatched in
//                                   aggregate over the opt-in families
#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/lock_registry.hpp"
#include "runtime/kv_service.hpp"
#include "util/cli.hpp"

namespace rme {
namespace {

struct PerfCell {
  double ops_per_second = 0.0;
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  uint64_t passages = 0, batched_passages = 0;
};

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

PerfCell RunPerf(const KvServiceConfig& base, int batch_ops) {
  KvServiceConfig cfg = base;
  cfg.batch_ops = batch_ops;
  cfg.log_events = false;
  const KvServiceResult r = RunKvService(cfg);
  PerfCell c;
  c.ops_per_second = r.ops_per_second;
  c.p50_us = r.p50_us;
  c.p99_us = r.p99_us;
  c.p999_us = r.p999_us;
  c.passages = r.passages;
  c.batched_passages = r.batched_passages;
  std::fprintf(stderr,
               "[perf] %-14s stripes=%-5u batch=%-2d %9.0f ops/s  "
               "p50 %7.1fus p99 %8.1fus p999 %8.1fus  (%llu passages, "
               "%llu batched)\n",
               cfg.lock_name.c_str(), cfg.stripes, batch_ops,
               c.ops_per_second, c.p50_us, c.p99_us, c.p999_us,
               static_cast<unsigned long long>(c.passages),
               static_cast<unsigned long long>(c.batched_passages));
  return c;
}

struct KillCell {
  KvServiceResult r;
  uint64_t violations = 0;
};

KillCell RunKills(const KvServiceConfig& base, const Cli& cli) {
  KvServiceConfig cfg = base;
  cfg.log_events = true;
  cfg.ops_per_proc = static_cast<uint64_t>(cli.GetInt("kill_ops", 2000));
  cfg.independent_kills = static_cast<uint64_t>(cli.GetInt("kills", 12));
  cfg.storm_victim = 1;
  cfg.storm_kills = static_cast<uint64_t>(cli.GetInt("storm_kills", 3));
  cfg.self_kill_per_op = cli.GetDouble("self_kill_per_op", 0.0005);
  cfg.self_kill_budget = cli.GetInt("self_kill_budget", 10);
  cfg.kill_interval_ms = cli.GetDouble("kill_interval_ms", 1.0);
  KillCell k;
  k.r = RunKvService(cfg);
  const KvServiceResult& r = k.r;
  // Conservation/integrity only bind when nobody was abandoned mid-write
  // (see KvServiceResult::audits_binding).
  // hung_abandoned counts as a violation in its own right: an abandoned
  // pid is a liveness failure, and leaving it out would let a family
  // that wedges every worker still report OK (starved_pids deliberately
  // excludes abandoned pids, so without this term a total wedge scores
  // zero on every column).
  k.violations = r.me_violations + r.bcsr_violations + r.starved_pids +
                 r.hung_abandoned + r.phantom_crash_notes + r.child_errors +
                 (r.watchdog_fired ? 1 : 0) + (r.log_overflow ? 1 : 0) +
                 (r.audits_binding
                      ? r.conservation_delta + r.put_integrity_mismatches
                      : 0);
  std::fprintf(
      stderr,
      "[kill] %-14s stripes=%-5u kills=%llu storm=%llu crash_notes=%llu "
      "me=%llu bcsr=%llu admissible=%llu starved=%llu abandoned=%llu "
      "cons=%llu tear=%llu binding=%d -> %s\n",
      cfg.lock_name.c_str(), cfg.stripes,
      static_cast<unsigned long long>(r.kills),
      static_cast<unsigned long long>(r.storm_kills),
      static_cast<unsigned long long>(r.crash_notes),
      static_cast<unsigned long long>(r.me_violations),
      static_cast<unsigned long long>(r.bcsr_violations),
      static_cast<unsigned long long>(r.admissible_overlaps),
      static_cast<unsigned long long>(r.starved_pids),
      static_cast<unsigned long long>(r.hung_abandoned),
      static_cast<unsigned long long>(r.conservation_delta),
      static_cast<unsigned long long>(r.put_integrity_mismatches),
      r.audits_binding ? 1 : 0, k.violations == 0 ? "OK" : "VIOLATION");
  return k;
}

int Main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.GetBool("quick", false);
  const std::string json_path = cli.GetString("json_out", "");
  std::vector<std::string> families = SplitList(cli.GetString(
      "families", quick ? "wr,cw-ticket"
                        : "wr,gr-adaptive,cw-ticket,kport-tree,ba,sa,cohort"));
  std::vector<uint32_t> stripe_counts;
  for (const std::string& s :
       SplitList(cli.GetString("stripes", quick ? "64" : "64,4096"))) {
    stripe_counts.push_back(static_cast<uint32_t>(std::stoul(s)));
  }

  KvServiceConfig base;
  base.num_procs = static_cast<int>(cli.GetInt("procs", 8));
  base.keys = static_cast<uint64_t>(cli.GetInt("keys", 1 << 20));
  base.ops_per_proc = static_cast<uint64_t>(cli.GetInt("ops", 4000));
  base.seed = static_cast<uint64_t>(cli.GetInt("seed", 1));
  const int batch = static_cast<int>(cli.GetInt("batch", 16));

  bench::KvOpMix mix;
  mix.read_frac = cli.GetDouble("read_frac", 0.70);
  mix.put_frac = cli.GetDouble("put_frac", 0.20);
  mix.txn_keys = static_cast<int>(cli.GetInt("txn_keys", 3));
  const double theta = cli.GetDouble("theta", 0.99);
  std::fprintf(stderr, "[init] zipfian(theta=%.2f) over %llu keys...\n",
               theta, static_cast<unsigned long long>(base.keys));
  const bench::ZipfianKeys zipf(base.keys, theta);
  base.draw = bench::MakeKvDraw(zipf, mix);

  bench::PrintHeader(
      "bench_kv_service: sharded recoverable KV leaderboard",
      "recoverable locks compose into a production-shaped service; "
      "EnterMany amortizes one passage over a batch of same-stripe ops");

  // family -> stripes -> {unbatched, batched}
  std::map<std::string, std::map<uint32_t, std::pair<PerfCell, PerfCell>>>
      perf;
  std::map<std::string, KillCell> kills;
  std::map<std::string, bool> enter_many;

  for (const std::string& fam : families) {
    enter_many[fam] = MakeLock(fam, base.num_procs)->SupportsEnterMany();
    for (uint32_t stripes : stripe_counts) {
      KvServiceConfig cfg = base;
      cfg.lock_name = fam;
      cfg.stripes = stripes;
      perf[fam][stripes] = {RunPerf(cfg, 1), RunPerf(cfg, batch)};
    }
    if (!cli.GetBool("skip_kills", false)) {
      KvServiceConfig cfg = base;
      cfg.lock_name = fam;
      cfg.stripes = stripe_counts.front();
      kills[fam] = RunKills(cfg, cli);
    }
  }

  // Leaderboard: batched throughput at the largest stripe count, with
  // the tail percentiles next to it.
  const uint32_t top_stripes =
      *std::max_element(stripe_counts.begin(), stripe_counts.end());
  std::vector<std::string> order = families;
  std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
    return perf[a][top_stripes].second.ops_per_second >
           perf[b][top_stripes].second.ops_per_second;
  });
  std::printf("\nLeaderboard (batch=%d, stripes=%u, %d procs, "
              "zipf theta=%.2f):\n", batch, top_stripes, base.num_procs,
              theta);
  std::printf("  %-4s %-14s %12s %12s %10s %10s %8s\n", "rank", "lock",
              "batched op/s", "unbatch op/s", "p99 us", "p999 us",
              "verdict");
  for (size_t i = 0; i < order.size(); ++i) {
    const PerfCell& b = perf[order[i]][top_stripes].second;
    const PerfCell& u = perf[order[i]][top_stripes].first;
    const char* verdict =
        kills.count(order[i]) == 0
            ? "-"
            : (kills[order[i]].violations == 0 ? "OK" : "FAIL");
    std::printf("  %-4zu %-14s %12.0f %12.0f %10.1f %10.1f %8s\n", i + 1,
                order[i].c_str(), b.ops_per_second, u.ops_per_second,
                b.p99_us, b.p999_us, verdict);
  }

  // Aggregate batched-vs-unbatched over the EnterMany opt-in families at
  // the SMALLEST stripe count: batching amortizes queue traversals, so
  // its win lives where ops actually share stripes. At thousands of
  // stripes same-stripe groups are near-empty and batched ~= unbatched
  // (the per_stripes JSON keeps both so the flat regime stays visible).
  const uint32_t low_stripes =
      *std::min_element(stripe_counts.begin(), stripe_counts.end());
  double agg_batched = 0, agg_unbatched = 0;
  for (const std::string& fam : families) {
    if (!enter_many[fam]) continue;
    agg_unbatched += perf[fam][low_stripes].first.ops_per_second;
    agg_batched += perf[fam][low_stripes].second.ops_per_second;
  }
  const double speedup =
      agg_unbatched > 0 ? agg_batched / agg_unbatched : 0.0;
  uint64_t total_violations = 0;
  for (const auto& [fam, k] : kills) total_violations += k.violations;
  std::printf("\nEnterMany aggregate speedup over opt-in families: %.2fx\n",
              speedup);
  std::printf("kill-regime violations: %llu\n",
              static_cast<unsigned long long>(total_violations));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"kv_service\",\n");
    std::fprintf(f,
                 "  \"procs\": %d, \"keys\": %llu, \"ops_per_proc\": %llu, "
                 "\"batch_ops\": %d,\n",
                 base.num_procs,
                 static_cast<unsigned long long>(base.keys),
                 static_cast<unsigned long long>(base.ops_per_proc), batch);
    std::fprintf(f,
                 "  \"theta\": %.2f, \"read_frac\": %.2f, \"put_frac\": "
                 "%.2f, \"txn_keys\": %d,\n",
                 theta, mix.read_frac, mix.put_frac, mix.txn_keys);
    std::fprintf(f, "  \"families\": {\n");
    for (size_t i = 0; i < families.size(); ++i) {
      const std::string& fam = families[i];
      std::fprintf(f, "    \"%s\": {\n      \"enter_many\": %s,\n",
                   fam.c_str(), enter_many[fam] ? "true" : "false");
      std::fprintf(f, "      \"per_stripes\": {\n");
      size_t j = 0;
      for (const auto& [stripes, cells] : perf[fam]) {
        auto emit = [f](const char* key, const PerfCell& c,
                        const char* tail) {
          std::fprintf(f,
                       "        \"%s\": {\"ops_per_second\": %.0f, "
                       "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": "
                       "%.1f, \"passages\": %llu, \"batched_passages\": "
                       "%llu}%s\n",
                       key, c.ops_per_second, c.p50_us, c.p99_us, c.p999_us,
                       static_cast<unsigned long long>(c.passages),
                       static_cast<unsigned long long>(c.batched_passages),
                       tail);
        };
        std::fprintf(f, "      \"%u\": {\n", stripes);
        emit("unbatched", cells.first, ",");
        emit("batched", cells.second, "");
        std::fprintf(f, "      }%s\n",
                     ++j < perf[fam].size() ? "," : "");
      }
      std::fprintf(f, "      }%s\n", kills.count(fam) ? "," : "");
      if (kills.count(fam)) {
        const KvServiceResult& r = kills[fam].r;
        std::fprintf(
            f,
            "      \"kills\": {\"kills\": %llu, \"storm_kills\": %llu, "
            "\"crash_notes\": %llu, \"me_violations\": %llu, "
            "\"bcsr_violations\": %llu, \"admissible_overlaps\": %llu, "
            "\"starved_pids\": %llu, \"hung_abandoned\": %llu, "
            "\"conservation_delta\": %llu, "
            "\"put_integrity_mismatches\": %llu, \"audits_binding\": %s, "
            "\"max_attempts_per_passage\": %llu, \"violations\": %llu}\n",
            static_cast<unsigned long long>(r.kills),
            static_cast<unsigned long long>(r.storm_kills),
            static_cast<unsigned long long>(r.crash_notes),
            static_cast<unsigned long long>(r.me_violations),
            static_cast<unsigned long long>(r.bcsr_violations),
            static_cast<unsigned long long>(r.admissible_overlaps),
            static_cast<unsigned long long>(r.starved_pids),
            static_cast<unsigned long long>(r.hung_abandoned),
            static_cast<unsigned long long>(r.conservation_delta),
            static_cast<unsigned long long>(r.put_integrity_mismatches),
            r.audits_binding ? "true" : "false",
            static_cast<unsigned long long>(r.max_attempts_per_passage),
            static_cast<unsigned long long>(kills[fam].violations));
      }
      std::fprintf(f, "    }%s\n", i + 1 < families.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"aggregate\": {\"batched_ops_per_second\": %.0f, "
                 "\"unbatched_ops_per_second\": %.0f, \"batched_speedup\": "
                 "%.3f},\n",
                 agg_batched, agg_unbatched, speedup);
    std::fprintf(f, "  \"total_violations\": %llu\n}\n",
                 static_cast<unsigned long long>(total_violations));
    std::fclose(f);
    std::fprintf(stderr, "[json] wrote %s\n", json_path.c_str());
  }

  if (cli.GetBool("gate", false)) {
    if (total_violations != 0) {
      std::fprintf(stderr, "GATE: kill-regime violations\n");
      return 1;
    }
    if (agg_unbatched > 0 && speedup <= 1.0) {
      std::fprintf(stderr,
                   "GATE: EnterMany batching did not beat unbatched "
                   "(%.3fx)\n", speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace rme

int main(int argc, char** argv) { return rme::Main(argc, argv); }
