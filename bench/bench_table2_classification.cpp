// Table 2: empirical classification of every lock against the paper's
// performance measures —
//   PM1 constantness   (failure-free RMR is O(1) in n),
//   PM2 adaptiveness   (RMR growth as a function of recent failures F),
//   PM3 boundedness    (RMR under sustained failures as a function of n).
// Growth classes come from log-log least-squares fits over sweeps.
//
// Flags: --passages=150 --seed=42 --csv
#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "crash/crash.hpp"

namespace rme {
namespace {

struct Verdicts {
  std::string pm1;           // growth of failure-free RMR vs n
  std::string pm2;           // growth of RMR vs overlapping failures F
  std::string pm3;           // growth of sustained-failure RMR vs n
  std::string adaptiveness;  // non/semi/adaptive/super-adaptive
  std::string boundedness;   // unbounded/bounded/well-bounded
};

WorkloadConfig Config(int n, uint64_t passages, uint64_t seed) {
  WorkloadConfig cfg;
  cfg.num_procs = n;
  cfg.passages_per_proc = passages;
  cfg.seed = seed;
  cfg.cs_shared_ops = 8;
  cfg.cs_yields = 2;
  return cfg;
}

}  // namespace

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  const uint64_t passages = static_cast<uint64_t>(cli.GetInt("passages", 150));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  bench::PrintHeader(
      "Table 2 — performance-measure classification (empirical)",
      "our lock (ba) is the only well-bounded super-adaptive algorithm");

  Table table({"lock", "RMR-vs-n (ff)", "RMR-vs-F", "victim cc", "RMR-vs-n (storm)",
               "adaptiveness", "boundedness"});

  const std::vector<int> ns = {2, 8, 32};

  for (const std::string& lock : RecoverableLockNames()) {
    Verdicts v;

    // PM1: failure-free RMR as n grows.
    std::vector<double> xs, ys;
    for (int n : ns) {
      const RunResult r =
          bench::Run(lock, Config(n, passages, seed), Scenario::None());
      xs.push_back(n);
      ys.push_back(r.passage.cc.mean());
    }
    v.pm1 = ClassifyGrowth(xs, ys);

    // PM2: one sustained run at n=16 under uniformly spread crashes
    // (every 40th shared op, whoever is there, plus FAS-targeted crashes
    // so the filter designs also see their sensitive window). The class
    // comes from the growth of the overlap-conditioned per-passage RMR
    // (Thm 5.18's F) — a global mean would dilute the signal.
    xs.clear();
    ys.clear();
    double bin0 = 0.0, first_bin = 0.0, last_bin = 0.0, victim_cc = 0.0;
    {
      // Calibrate the op volume so a bounded crash budget spreads across
      // the whole run (unbounded injection would mostly hit spin loads).
      double ops_pp = 40.0;
      {
        auto cal = MakeLock(lock, 16);
        const RunResult rc =
            RunWorkload(*cal, Config(16, 60, seed + 7), nullptr);
        if (rc.passage.ops.count() > 0) ops_pp = rc.passage.ops.mean();
      }
      const uint64_t pm2_passages = passages * 2;
      const uint64_t total_ops =
          static_cast<uint64_t>(ops_pp * static_cast<double>(pm2_passages) * 16);
      const int64_t budget = 384;
      auto inst = MakeLock(lock, 16);
      SpacedSiteCrash spread_part(
          "", std::max<uint64_t>(1, total_ops / (2 * budget)), budget);
      SpacedSiteCrash fas_part(
          "fas", std::max<uint64_t>(1, (2 * pm2_passages * 16) / 512), 256);
      CompositeCrash crash({&spread_part, &fas_part});
      std::fprintf(stderr, "[run] %-14s PM2 sustained\n", lock.c_str());
      const RunResult r = RunWorkload(*inst, Config(16, pm2_passages, seed + 1),
                                      &crash);
      victim_cc = r.victim_passage.cc.mean();
      for (const auto& [bucket, seg] : r.by_overlap) {
        if (seg.cc.count() < 3) continue;
        if (bucket == 0) {
          bin0 = seg.cc.mean();
          continue;
        }
        if (first_bin == 0.0) first_bin = seg.cc.mean();
        last_bin = seg.cc.mean();
        // Classify the INCREMENT over the failure-free baseline: the
        // additive O(1) base otherwise flattens small-range slopes.
        const double inc = seg.cc.mean() - bin0;
        if (inc > 0.5) {
          xs.push_back(static_cast<double>(bucket));
          ys.push_back(inc);
        }
      }
    }
    double max_inc = 0.0;
    for (double inc : ys) max_inc = std::max(max_inc, inc);
    if (xs.size() < 3 || max_inc < 0.25 * bin0) {
      v.pm2 = "O(1)";
    } else {
      v.pm2 = ClassifyGrowth(xs, ys);
    }

    // PM3: sustained-failure RMR as n grows.
    xs.clear();
    ys.clear();
    for (int n : ns) {
      const RunResult r = bench::Run(lock, Config(n, passages / 2, seed + 2),
                                     Scenario::Sustained(0.001));
      xs.push_back(n);
      ys.push_back(r.passage.cc.mean());
    }
    v.pm3 = ClassifyGrowth(xs, ys);

    // Paper taxonomy (§2.5).
    const bool pm1_ok = v.pm1 == "O(1)";
    (void)first_bin;
    (void)last_bin;
    // A victim (a passage whose super-passage crashed at least once)
    // paying a disproportionate flat bill while bystander costs stay
    // O(1) is the semi-adaptive signature (first failure costs T(n)).
    const double victim_jump = bin0 > 0 && victim_cc > 0 ? victim_cc / bin0 : 1.0;
    if (!pm1_ok) {
      v.adaptiveness = "non-adaptive";
    } else if (v.pm2 == "~linear" || v.pm2 == "superlinear") {
      v.adaptiveness = "adaptive";
    } else if (v.pm2 == "O(1)" && victim_jump > 2.5) {
      v.adaptiveness = "semi-adaptive";
    } else {
      v.adaptiveness = "super-adaptive";  // o(F) growth
    }
    if (v.pm2 == "~linear" || v.pm2 == "superlinear") {
      // No cap observed as F grows: unbounded under unbounded failures.
      v.boundedness = "unbounded";
    } else if (v.pm3 == "O(1)" || v.pm3 == "sublinear") {
      v.boundedness = "well-bounded";  // o(log n)-ish growth in n
    } else {
      v.boundedness = "bounded";
    }

    table.AddRow({lock, v.pm1, v.pm2, Table::Num(victim_cc, 1), v.pm3,
                  v.adaptiveness, v.boundedness});
  }

  std::printf("%s\n", table.ToText().c_str());
  if (cli.GetBool("csv", false)) {
    std::printf("CSV:\n%s\n", table.ToCsv().c_str());
  }
  std::printf(
      "Classes from log-log fits of the overlap-conditioned increments.\n"
      "Expected: ba = super-adaptive + well-bounded (the paper's headline\n"
      "row); gr-adaptive = adaptive + unbounded; gr-semi = semi-adaptive\n"
      "(victims pay the Theta(n)+T(n) bill, bystanders stay O(1));\n"
      "tournament/kport-tree = non-adaptive. Known substitution artifacts\n"
      "(EXPERIMENTS.md): cw-ticket measures better than Chan-Woelfel's\n"
      "O(F) row because our ring recovery is O(1) off the claim window;\n"
      "sa measures super-adaptive at this n although its worst case is a\n"
      "one-failure jump to T(n) (see its victim column), i.e. analytically\n"
      "semi-adaptive.\n");
  return 0;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
