// Figure 1: crash-after-FAS splits the WR-Lock queue into sub-queues.
// Two experiments:
//  (a) deterministic replay — inject exactly f after-FAS crashes at
//      distinct processes while a holder pins the queue, and count the
//      reconstructible sub-queues and concurrent CS occupancy;
//  (b) responsiveness sweep — under sustained random crashes, the max
//      number of processes ever concurrently in CS stays <= 1 + unsafe
//      failures whose consequence intervals overlap (Thm 4.2).
//
// Flags: --n=8 --passages=200 --seed=42
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "crash/crash.hpp"
#include "locks/wr_lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/harness.hpp"

namespace rme {

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.GetInt("n", 8));
  const uint64_t passages = static_cast<uint64_t>(cli.GetInt("passages", 200));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  bench::PrintHeader(
      "Figure 1 — sub-queue formation in the weakly recoverable MCS lock",
      "each crash-after-FAS can add one sub-queue; k+1 concurrent CS "
      "entries require >= k unsafe failures (responsiveness, Thm 4.2)");

  // (a) Deterministic replay.
  Table det({"injected after-FAS crashes", "sub-queues observed",
             "concurrent CS observed"});
  for (int f = 0; f <= 4; ++f) {
    WrLock lock(static_cast<int>(f) + 3, "fig1");
    // p0 acquires and holds.
    {
      ProcessBinding bind(0, nullptr);
      lock.Recover(0);
      lock.Enter(0);
    }
    int in_cs = 1;
    // Processes 1..f each crash right after their FAS, then abort.
    for (int pid = 1; pid <= f; ++pid) {
      SiteCrash crash(pid, "fig1.tail.fas", /*after_op=*/true);
      ProcessBinding bind(pid, &crash);
      lock.Recover(pid);
      try {
        lock.Enter(pid);
      } catch (const ProcessCrash&) {
      }
      CurrentProcess().SetCrashController(nullptr);
      lock.Recover(pid);  // abort: resets tail, splitting the queue
      lock.Enter(pid);    // rejoins on a fresh (empty) queue and enters CS
      ++in_cs;
    }
    det.AddRow({Table::Int(static_cast<uint64_t>(f)),
                Table::Int(static_cast<uint64_t>(lock.CountSubQueues())),
                Table::Int(static_cast<uint64_t>(in_cs))});
    // Drain: exit everyone.
    for (int pid = f; pid >= 0; --pid) {
      ProcessBinding bind(pid, nullptr);
      lock.Exit(pid);
    }
  }
  std::printf("(a) deterministic crash-after-FAS replay\n%s\n",
              det.ToText().c_str());

  // (b) Responsiveness under random storms.
  Table storm({"crash prob/op", "failures", "unsafe", "max concurrent CS",
               "uncovered overlaps", "cc mean"});
  for (double p : {0.0, 0.001, 0.003, 0.01}) {
    WrLock lock(n, "fig1b");
    WorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = passages;
    cfg.seed = seed;
    cfg.cs_shared_ops = 8;
    cfg.cs_yields = 2;
    std::unique_ptr<CrashController> crash;
    if (p > 0) crash = std::make_unique<RandomCrash>(seed + 9, p, -1);
    const RunResult r = RunWorkload(lock, cfg, crash.get());
    storm.AddRow({Table::Num(p, 4), Table::Int(r.failures),
                  Table::Int(r.unsafe_failures),
                  Table::Int(static_cast<uint64_t>(r.max_concurrent_cs)),
                  Table::Int(r.me_violations),
                  Table::Num(r.passage.cc.mean())});
  }
  std::printf("(b) random crash storm (n=%d)\n%s\n", n, storm.ToText().c_str());
  std::printf("'uncovered overlaps' counts CS overlaps outside every\n"
              "failure's consequence interval — must be 0 for a correct\n"
              "weakly recoverable lock. RMR stays O(1) at every crash rate.\n");
  return 0;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
