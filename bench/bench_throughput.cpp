// Wall-clock throughput comparison (google-benchmark): acquire/release
// cycles per second for every lock at several thread counts. This is the
// "does the theory survive contact with a real machine" companion to the
// RMR tables — the instrumentation overhead is identical across locks,
// so relative ordering is meaningful.
#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <vector>

#include "core/lock_registry.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

// One lock instance per (lock name, thread count) benchmark family,
// created lazily and kept alive for all repetitions.
struct SharedLock {
  std::mutex mu;
  std::unique_ptr<RecoverableLock> lock;
  int n = 0;
};

void ThroughputBody(benchmark::State& state, SharedLock* shared,
                    const std::string& name) {
  {
    std::lock_guard<std::mutex> lk(shared->mu);
    if (!shared->lock || shared->n != state.threads()) {
      shared->lock = MakeLock(name, state.threads());
      shared->n = state.threads();
    }
  }
  const int pid = state.thread_index();
  ProcessBinding bind(pid, nullptr);
  RecoverableLock& lock = *shared->lock;
  for (auto _ : state) {
    lock.Recover(pid);
    lock.Enter(pid);
    benchmark::DoNotOptimize(pid);
    lock.Exit(pid);
  }
  lock.OnProcessDone(pid);
  state.SetItemsProcessed(state.iterations());
}

}  // namespace
}  // namespace rme

int main(int argc, char** argv) {
  // Default to short measurements (override with --benchmark_min_time).
  std::vector<char*> args(argv, argv + argc);
  char default_min_time[] = "--benchmark_min_time=0.1s";
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min_time = true;
    }
  }
  if (!has_min_time) args.push_back(default_min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  // Leaked intentionally: benchmarks reference them until exit.
  static std::vector<std::unique_ptr<rme::SharedLock>> shares;
  for (const std::string& name : rme::AllLockNames()) {
    for (int threads : {1, 4, 8}) {
      shares.push_back(std::make_unique<rme::SharedLock>());
      rme::SharedLock* share = shares.back().get();
      benchmark::RegisterBenchmark(
          (name + "/threads:" + std::to_string(threads)).c_str(),
          [share, name](benchmark::State& st) {
            rme::ThroughputBody(st, share, name);
          })
          ->Threads(threads)
          ->UseRealTime()
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
