// Wall-clock throughput comparison: acquire/release cycles per second
// for every lock at several thread counts. This is the "does the theory
// survive contact with a real machine" companion to the RMR tables —
// the instrumentation overhead is identical across locks, so relative
// ordering is meaningful.
//
// Two modes:
//  - default: google-benchmark families `<lock>/threads:{1,4,8}`;
//  - --json_out=PATH: a fixed-duration driver that measures the same
//    series plus an *oversubscribed* series (--oversub_threads, default
//    256, multiplexed over the kMaxProcs pid slots) for the cohort lock
//    with stage-3 futex parking on vs off, recording getrusage CPU time
//    per series — the threads≫cores regime where parked waiters stop
//    burning scheduler quanta. Writes BENCH_throughput.json-style JSON
//    (see tools/check_overhead_regression.py --mode=throughput).
//    Flags: --duration_ms=150 --oversub_threads=256
//           --oversub_duration_ms=600 --cohorts=N (0 = NUMA auto)
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/lock_registry.hpp"
#include "locks/cohort_lock.hpp"
#include "rmr/counters.hpp"
#include "util/cli.hpp"

namespace rme {
namespace {

// One lock instance per (lock name, thread count) benchmark family,
// created lazily and kept alive for all repetitions.
struct SharedLock {
  std::mutex mu;
  std::unique_ptr<RecoverableLock> lock;
  int n = 0;
};

void ThroughputBody(benchmark::State& state, SharedLock* shared,
                    const std::string& name) {
  {
    std::lock_guard<std::mutex> lk(shared->mu);
    if (!shared->lock || shared->n != state.threads()) {
      shared->lock = MakeLock(name, state.threads());
      shared->n = state.threads();
    }
  }
  const int pid = state.thread_index();
  ProcessBinding bind(pid, nullptr);
  RecoverableLock& lock = *shared->lock;
  benchmark::IterationCount done = 0;
  for (auto _ : state) {
    lock.Recover(pid);
    lock.Enter(pid);
    benchmark::DoNotOptimize(pid);
    lock.Exit(pid);
    // A lock may retain the CS across passages (cohort). The ranged-for
    // exit stops at google-benchmark's inter-thread barrier before any
    // code after the loop runs, so a retainer waiting there deadlocks
    // the threads still blocked in Enter — surrender on the final
    // iteration instead, while this thread is still on the near side of
    // the barrier.
    if (++done == state.max_iterations) lock.OnProcessDone(pid);
  }
  lock.OnProcessDone(pid);  // idempotent; covers the zero-iteration case
  state.SetItemsProcessed(state.iterations());
}

// ---------------------------------------------------------------------
// Fixed-duration JSON driver.

double CpuSeconds() {
  struct rusage ru;
  ::getrusage(RUSAGE_SELF, &ru);
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + 1e-6 * static_cast<double>(t.tv_usec);
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

struct SeriesResult {
  uint64_t passages = 0;
  double wall_s = 0;
  double cpu_s = 0;
  double items_per_second() const {
    return wall_s > 0 ? static_cast<double>(passages) / wall_s : 0;
  }
  double cpu_us_per_passage() const {
    return passages > 0 ? 1e6 * cpu_s / static_cast<double>(passages) : 0;
  }
};

/// Runs `threads` workers over one lock for ~duration_s. Threads beyond
/// kMaxProcs multiplex the pid slots: a worker claims slot (t mod slots)
/// under a per-slot mutex, binds, runs a chunk of passages, unbinds and
/// re-claims — at most one live binding per pid at any time, which is
/// the contract kMaxProcs-sized lock state assumes. Teardown: on stop,
/// whichever worker holds a slot's binding calls OnProcessDone before
/// dropping it, so a lock retaining the CS across passages (cohort)
/// releases it and every worker still blocked in Enter drains out.
SeriesResult RunSeries(RecoverableLock* lock, int threads, double duration_s) {
  const int slots = std::min(threads, kMaxProcs);
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<uint64_t> counts(static_cast<size_t>(threads), 0);
  static std::mutex slot_mu[kMaxProcs];

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const int s = t % slots;
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t local = 0;
      if (threads <= slots) {
        // One thread per pid: bind once for the whole series.
        ProcessBinding bind(s, nullptr);
        while (!stop.load(std::memory_order_relaxed)) {
          lock->Recover(s);
          lock->Enter(s);
          benchmark::DoNotOptimize(local);
          lock->Exit(s);
          ++local;
        }
        lock->OnProcessDone(s);
      } else {
        while (!stop.load(std::memory_order_relaxed)) {
          std::lock_guard<std::mutex> lk(slot_mu[s]);
          ProcessBinding bind(s, nullptr);
          for (int k = 0; k < 256; ++k) {
            if (stop.load(std::memory_order_relaxed)) break;
            lock->Recover(s);
            lock->Enter(s);
            benchmark::DoNotOptimize(local);
            lock->Exit(s);
            ++local;
          }
          // Retained state must not outlive the binding unless another
          // thread will rebind this pid; on stop nobody will, so release
          // now (idempotent — later same-slot threads see nothing held).
          if (stop.load(std::memory_order_relaxed)) lock->OnProcessDone(s);
        }
      }
      counts[static_cast<size_t>(t)] = local;
    });
  }
  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  const double cpu0 = CpuSeconds();
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double cpu1 = CpuSeconds();

  SeriesResult r;
  for (uint64_t c : counts) r.passages += c;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.cpu_s = cpu1 - cpu0;
  return r;
}

int JsonDriver(const Cli& cli) {
  const std::string path = cli.GetString("json_out", "");
  const double duration_s = cli.GetDouble("duration_ms", 150) / 1000.0;
  const int oversub_threads =
      static_cast<int>(cli.GetInt("oversub_threads", 256));
  const double oversub_s = cli.GetDouble("oversub_duration_ms", 600) / 1000.0;
  if (cli.Has("cohorts")) {
    cohort_lock_defaults().cohorts = static_cast<int>(cli.GetInt("cohorts", 0));
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ERROR: cannot write %s\n", path.c_str());
    return 1;
  }

  const std::vector<int> thread_counts = {1, 4, 8};
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"duration_ms\": %.0f,\n", duration_s * 1000);
  std::fprintf(f, "  \"items_per_second\": {\n");
  std::map<int, double> aggregate;
  const std::vector<std::string> names = AllLockNames();
  for (size_t i = 0; i < names.size(); ++i) {
    std::fprintf(f, "    \"%s\": {", names[i].c_str());
    for (size_t j = 0; j < thread_counts.size(); ++j) {
      const int t = thread_counts[j];
      auto lock = MakeLock(names[i], std::min(t, kMaxProcs));
      const SeriesResult r = RunSeries(lock.get(), t, duration_s);
      aggregate[t] += r.items_per_second();
      std::fprintf(f, "%s\"%d\": %.0f", j ? ", " : "", t,
                   r.items_per_second());
      std::fprintf(stderr, "[series] %-18s %3d threads: %11.0f items/s "
                   "(cpu %.2fs / wall %.2fs)\n",
                   names[i].c_str(), t, r.items_per_second(), r.cpu_s,
                   r.wall_s);
    }
    std::fprintf(f, "}%s\n", i + 1 < names.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"aggregate_items_per_second_by_threads\": {");
  {
    bool first = true;
    for (const auto& [t, v] : aggregate) {
      std::fprintf(f, "%s\"%d\": %.0f", first ? "" : ", ", t, v);
      first = false;
    }
  }
  std::fprintf(f, "},\n");

  // Oversubscribed series: the cohort lock at threads≫cores≫pid-slots,
  // with the spin→futex third stage on vs off. The interesting number is
  // CPU time per passage: parked waiters cost ~nothing, spinning waiters
  // burn a scheduler quantum each before the holder runs again.
  std::fprintf(f, "  \"oversubscribed\": {\n");
  std::fprintf(f, "    \"lock\": \"cohort\", \"threads\": %d,\n",
               oversub_threads);
  const SpinConfig saved = spin_config();
  SeriesResult park, spin;
  {
    auto lock = MakeLock("cohort", std::min(oversub_threads, kMaxProcs));
    spin_config().park_enabled = true;
    park = RunSeries(lock.get(), oversub_threads, oversub_s);
  }
  {
    auto lock = MakeLock("cohort", std::min(oversub_threads, kMaxProcs));
    spin_config().park_enabled = false;
    spin = RunSeries(lock.get(), oversub_threads, oversub_s);
  }
  spin_config() = saved;
  auto emit = [f](const char* key, const SeriesResult& r) {
    std::fprintf(f,
                 "    \"%s\": {\"items_per_second\": %.0f, "
                 "\"cpu_seconds\": %.3f, \"cpu_us_per_passage\": %.4f},\n",
                 key, r.items_per_second(), r.cpu_s, r.cpu_us_per_passage());
  };
  emit("park", park);
  emit("spin", spin);
  const double ratio = park.cpu_us_per_passage() > 0
                           ? spin.cpu_us_per_passage() / park.cpu_us_per_passage()
                           : 0;
  std::fprintf(f, "    \"cpu_ratio_spin_over_park\": %.2f\n  }\n}\n", ratio);
  std::fclose(f);
  std::fprintf(stderr,
               "[oversub] park: %.0f items/s, %.4f cpu-us/passage | "
               "spin: %.0f items/s, %.4f cpu-us/passage | ratio %.2fx\n",
               park.items_per_second(), park.cpu_us_per_passage(),
               spin.items_per_second(), spin.cpu_us_per_passage(), ratio);
  std::fprintf(stderr, "[json] wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace rme

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--json_out", 0) == 0) {
      return rme::JsonDriver(rme::Cli(argc, argv));
    }
  }
  // Default to short measurements (override with --benchmark_min_time).
  std::vector<char*> args(argv, argv + argc);
  char default_min_time[] = "--benchmark_min_time=0.1s";
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min_time = true;
    }
  }
  if (!has_min_time) args.push_back(default_min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  // Leaked intentionally: benchmarks reference them until exit.
  static std::vector<std::unique_ptr<rme::SharedLock>> shares;
  for (const std::string& name : rme::AllLockNames()) {
    for (int threads : {1, 4, 8}) {
      shares.push_back(std::make_unique<rme::SharedLock>());
      rme::SharedLock* share = shares.back().get();
      benchmark::RegisterBenchmark(
          (name + "/threads:" + std::to_string(threads)).c_str(),
          [share, name](benchmark::State& st) {
            rme::ThroughputBody(st, share, name);
          })
          ->Threads(threads)
          ->UseRealTime()
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
