// rme-lockd kill matrix: the multi-process client driver for the
// persistent named-lock service (runtime/lockd_driver). One named
// /dev/shm segment survives the whole run — across client SIGKILLs,
// daemon SIGKILL/restart cycles, and (with --cycles > 1) across complete
// driver teardowns that reattach the surviving segment and keep going.
//
// Kill sources: parent-side random client kills and timed daemon kills
// (--client_kills / --daemon_kills, paced by --interval_ms), child-side
// per-op random kills (--self_prob / --self_budget) and site-precise
// kills (--site=ld.enter.brk --site_slot=2 --site_nth=1 --site_count=8),
// plus *targeted* daemon kills that fire exactly while the segment holds
// a dead client's mid-handshake slot or mid-insert directory entry
// (--hs_kills / --ins_kills; pair with --site=ld.lease.brk or
// --site=ld.insert.brk to manufacture those windows).
//
// Gates (exit 1): any ME/BCSR violation or phantom crash note in the
// per-entry event log, log overflow, hangs or watchdog fires, child
// errors, unfinished client quotas, a leaked /dev/shm entry after the
// final cycle — and, when a kill source was requested, zero delivery
// from it (a silent no-op injection is a harness bug, not a pass).
//
// Flags: --clients=8 --slots=8 --names=12 --acquires=300 --cs_ops=2
//        --lease_every=0 (passages per lease; >0 required when
//        clients > slots) --lock=ba --seed=42 --cycles=1
//        --client_kills=100 --daemon_kills=10 --hs_kills=0 --ins_kills=0
//        --interval_ms=2 --self_prob=0 --self_budget=0
//        --site= --site_slot=0 --site_nth=1 --site_count=1
//        --spin_budget_us=-1 --shm_name=rme-lockd-bench
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "runtime/lockd_driver.hpp"

namespace rme {

int BenchMain(int argc, char** argv) {
  Cli cli(argc, argv);
  lockd::LockdDriverConfig cfg;
  cfg.shm_name = cli.GetString("shm_name", "rme-lockd-bench");
  cfg.lock_kind = cli.GetString("lock", "ba");
  cfg.num_clients = static_cast<int>(cli.GetInt("clients", 8));
  cfg.num_slots = static_cast<int>(cli.GetInt("slots", 8));
  cfg.num_names = static_cast<int>(cli.GetInt("names", 12));
  cfg.acquires_per_client = static_cast<uint64_t>(cli.GetInt("acquires", 300));
  cfg.cs_shared_ops = static_cast<int>(cli.GetInt("cs_ops", 2));
  cfg.lease_passages = static_cast<uint64_t>(cli.GetInt("lease_every", 0));
  cfg.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  cfg.client_kills = static_cast<uint64_t>(cli.GetInt("client_kills", 100));
  cfg.daemon_kills = static_cast<uint64_t>(cli.GetInt("daemon_kills", 10));
  cfg.daemon_kills_in_handshake =
      static_cast<uint64_t>(cli.GetInt("hs_kills", 0));
  cfg.daemon_kills_in_insert = static_cast<uint64_t>(cli.GetInt("ins_kills", 0));
  cfg.kill_interval_ms = cli.GetDouble("interval_ms", 2.0);
  cfg.self_kill_per_op = cli.GetDouble("self_prob", 0.0);
  cfg.self_kill_budget = cli.GetInt("self_budget", 0);
  cfg.site_kill_site = cli.GetString("site", "");
  cfg.site_kill_slot = static_cast<int>(cli.GetInt("site_slot", 0));
  cfg.site_kill_nth = static_cast<uint64_t>(cli.GetInt("site_nth", 1));
  cfg.site_kill_count = static_cast<uint64_t>(cli.GetInt("site_count", 1));
  cfg.spin_budget_us = static_cast<int32_t>(cli.GetInt("spin_budget_us", -1));
  cfg.daemon_sweep_us = static_cast<uint32_t>(cli.GetInt("sweep_us", 300));
  const int cycles = static_cast<int>(cli.GetInt("cycles", 1));
  // Oversubscription needs lease cycling; default it on rather than abort
  // so --clients=16 --slots=8 "just works".
  if (cfg.num_clients > cfg.num_slots && cfg.lease_passages == 0) {
    cfg.lease_passages = 5;
  }

  bench::PrintHeader(
      "rme-lockd kill matrix — named-segment lock service under client "
      "and daemon SIGKILLs (clients=" + std::to_string(cfg.num_clients) +
          ", slots=" + std::to_string(cfg.num_slots) + ")",
      "one named segment survives every client kill, daemon restart, and "
      "driver cycle with zero ME/BCSR violations and no /dev/shm leak");

  Table table({"cycle", "passages", "c-kills", "site", "d-kills", "hs",
               "ins", "takeovr", "recov", "ME", "BCSR", "phantom",
               "wall s"});

  bool all_clean = true;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    lockd::LockdDriverConfig run = cfg;
    run.attach_existing = cycle > 0;
    run.persist_segment = cycle + 1 < cycles;
    std::fprintf(stderr,
                 "[run] cycle %d/%d %s '%s' (lock=%s)\n", cycle + 1, cycles,
                 run.attach_existing ? "reattaching segment"
                                     : "creating segment",
                 run.shm_name.c_str(), run.lock_kind.c_str());
    const lockd::LockdDriverResult r = lockd::RunLockdWorkload(run);

    table.AddRow({std::to_string(cycle + 1), Table::Int(r.completed),
                  Table::Int(r.client_kill_deaths),
                  Table::Int(r.child_site_kills),
                  Table::Int(r.daemon_kill_deaths),
                  Table::Int(r.daemon_kills_handshake),
                  Table::Int(r.daemon_kills_insert),
                  Table::Int(r.daemon_takeovers), Table::Int(r.recovered_slots),
                  Table::Int(r.me_violations), Table::Int(r.bcsr_violations),
                  Table::Int(r.phantom_crash_notes), Table::Num(r.wall_seconds)});

    if (!r.Clean()) {
      all_clean = false;
      std::fprintf(
          stderr,
          "ERROR: cycle %d: me=%llu bcsr=%llu phantom=%llu overflow=%d "
          "hangs=%llu abandoned=%llu watchdog=%d child_errors=%llu "
          "finished=%d leaked=%d\n",
          cycle + 1, static_cast<unsigned long long>(r.me_violations),
          static_cast<unsigned long long>(r.bcsr_violations),
          static_cast<unsigned long long>(r.phantom_crash_notes),
          r.log_overflow ? 1 : 0, static_cast<unsigned long long>(r.hangs),
          static_cast<unsigned long long>(r.hung_abandoned),
          r.watchdog_fired ? 1 : 0,
          static_cast<unsigned long long>(r.child_errors),
          r.all_clients_finished ? 1 : 0, r.segment_leaked ? 1 : 0);
    }
    // A requested kill source that delivered nothing is a broken harness
    // masquerading as a green run.
    if (run.client_kills > 0 && r.client_kill_deaths == 0) {
      all_clean = false;
      std::fprintf(stderr, "ERROR: cycle %d: client kills requested, none "
                           "delivered\n", cycle + 1);
    }
    if (run.daemon_kills > 0 &&
        (r.daemon_kill_deaths == 0 || r.daemon_respawns == 0)) {
      all_clean = false;
      std::fprintf(stderr, "ERROR: cycle %d: daemon kills requested, "
                           "deaths=%llu respawns=%llu\n", cycle + 1,
                   static_cast<unsigned long long>(r.daemon_kill_deaths),
                   static_cast<unsigned long long>(r.daemon_respawns));
    }
    if (run.daemon_kills_in_handshake > 0 && r.daemon_kills_handshake == 0) {
      all_clean = false;
      std::fprintf(stderr, "ERROR: cycle %d: no daemon kill landed on a "
                           "mid-handshake husk\n", cycle + 1);
    }
    if (run.daemon_kills_in_insert > 0 && r.daemon_kills_insert == 0) {
      all_clean = false;
      std::fprintf(stderr, "ERROR: cycle %d: no daemon kill landed on a "
                           "mid-insert husk\n", cycle + 1);
    }
    if (!run.site_kill_site.empty() && r.child_site_kills == 0) {
      all_clean = false;
      std::fprintf(stderr, "ERROR: cycle %d: site kills at '%s' requested, "
                           "none fired\n", cycle + 1,
                   run.site_kill_site.c_str());
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Expected: zero ME/BCSR/phantom columns everywhere; every requested\n"
      "kill source delivered; reattach cycles (cycle > 1) continue against\n"
      "the surviving segment; no /dev/shm entry outlives the final cycle.\n");
  return all_clean ? 0 : 1;
}

}  // namespace rme

int main(int argc, char** argv) { return rme::BenchMain(argc, argv); }
