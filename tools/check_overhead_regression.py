#!/usr/bin/env python3
"""Perf-regression gates for the CI perf-smoke job.

Three modes, selected with --mode:

overhead (default)
  Compares a fresh bench_instr_overhead run (raw google-benchmark JSON
  from --benchmark_out) against the committed BENCH_instr_overhead.json
  snapshot and fails if the single-thread instr_over_native ratio
  regressed by more than --tolerance (relative). The gate runs on the
  ratio, not absolute nanoseconds, so it is insensitive to the runner's
  clock speed; only the uncontended single-thread ratio is gated because
  the multi-thread points on shared CI runners are too noisy at 15%.

throughput
  Compares a fresh `bench_throughput --json_out` run against the
  committed BENCH_throughput.json snapshot:
    * the all-locks aggregate items/s at 8 threads must not drop more
      than --tolerance below the snapshot;
    * the oversubscribed (256-thread) cohort parking series must not
      drop more than --tolerance below the snapshot;
  plus two absolute acceptance gates that track throughput, not a
  snapshot (so they cannot ratchet downward across PRs):
    * cohort items/s at 8 threads must exceed --cohort-floor;
    * the oversubscribed spin/park CPU-per-passage ratio must be at
      least --cpu-ratio-floor (parking must actually save CPU time in
      the threads >> cores regime).

kv
  Compares a fresh `bench_kv_service --json_out` run against the
  committed BENCH_kv_service.json snapshot. Two kinds of gate:
    * absolute acceptance on the fresh run itself — zero kill-regime
      violations, and the EnterMany batched aggregate must beat the
      unbatched path (the ISSUE-9 acceptance criteria, so they cannot
      ratchet away);
    * snapshot-relative — for every (family, stripe-count) cell present
      in BOTH documents, fresh batched ops/s must not drop more than
      --tolerance below the snapshot. The smoke run covers a subset of
      the committed leaderboard; only common cells are compared, so the
      CI job can run a bounded matrix against the full snapshot.

Usage:
  check_overhead_regression.py fresh.json \
      [--mode overhead|throughput|kv] [--snapshot FILE] [--tolerance 0.15]
"""
import argparse
import json
import sys


def per_iter_time(doc, family, threads):
    for b in doc["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if name.startswith(f"{family}/") and f"/threads:{threads}" in name:
            return b["real_time"]
    return None


def overhead_mode(args):
    fresh = json.load(open(args.fresh))
    snap = json.load(open(args.snapshot or "BENCH_instr_overhead.json"))

    native = per_iter_time(fresh, "native_fetch_add", args.threads)
    instr = per_iter_time(fresh, "instr_fetch_add", args.threads)
    if not native or not instr:
        print("FAIL: fresh run is missing the native/instr fetch_add series")
        return 2

    ratio = instr / native
    committed = snap["overhead_ratio_by_threads"][str(args.threads)][
        "instr_over_native"]
    limit = committed * (1.0 + args.tolerance)
    verdict = "OK" if ratio <= limit else "FAIL"
    print(f"{verdict}: instr_over_native@{args.threads}t = {ratio:.2f} "
          f"(fresh {instr:.1f}ns / {native:.1f}ns), committed {committed:.2f}, "
          f"limit {limit:.2f} (+{args.tolerance:.0%})")
    return 0 if ratio <= limit else 1


def throughput_mode(args):
    fresh = json.load(open(args.fresh))
    snap = json.load(open(args.snapshot or "BENCH_throughput.json"))
    ok = True

    def gate_floor(label, value, floor, detail=""):
        nonlocal ok
        good = value >= floor
        ok = ok and good
        print(f"{'OK' if good else 'FAIL'}: {label} = {value:,.0f} "
              f"(floor {floor:,.0f}){detail}")

    # Snapshot-relative gates: throughput may only drop --tolerance below
    # the committed numbers (improvements always pass and get committed
    # as the next snapshot).
    f_agg = fresh["aggregate_items_per_second_by_threads"]["8"]
    s_agg = snap["aggregate_items_per_second_by_threads"]["8"]
    gate_floor("aggregate items/s @8t", f_agg,
               s_agg * (1.0 - args.tolerance),
               f" [snapshot {s_agg:,.0f}, -{args.tolerance:.0%}]")

    f_park = fresh["oversubscribed"]["park"]["items_per_second"]
    s_park = snap["oversubscribed"]["park"]["items_per_second"]
    threads = fresh["oversubscribed"]["threads"]
    gate_floor(f"oversubscribed({threads}t) park items/s", f_park,
               s_park * (1.0 - args.tolerance),
               f" [snapshot {s_park:,.0f}, -{args.tolerance:.0%}]")

    # Absolute acceptance gates (snapshot-independent).
    cohort8 = fresh["items_per_second"]["cohort"]["8"]
    gate_floor("cohort items/s @8t", cohort8, args.cohort_floor)

    ratio = fresh["oversubscribed"]["cpu_ratio_spin_over_park"]
    good = ratio >= args.cpu_ratio_floor
    ok = ok and good
    park_us = fresh["oversubscribed"]["park"]["cpu_us_per_passage"]
    spin_us = fresh["oversubscribed"]["spin"]["cpu_us_per_passage"]
    print(f"{'OK' if good else 'FAIL'}: cpu_ratio_spin_over_park = "
          f"{ratio:.2f} (floor {args.cpu_ratio_floor:.2f}; "
          f"spin {spin_us:.3f}us vs park {park_us:.3f}us per passage)")

    return 0 if ok else 1


def kv_mode(args):
    fresh = json.load(open(args.fresh))
    snap = json.load(open(args.snapshot or "BENCH_kv_service.json"))
    ok = True

    # Absolute acceptance gates on the fresh run.
    violations = fresh.get("total_violations", -1)
    good = violations == 0
    ok = ok and good
    print(f"{'OK' if good else 'FAIL'}: kill-regime violations = "
          f"{violations} (must be 0)")

    speedup = fresh["aggregate"]["batched_speedup"]
    good = speedup > 1.0
    ok = ok and good
    print(f"{'OK' if good else 'FAIL'}: EnterMany batched speedup = "
          f"{speedup:.3f}x (must beat 1.0x; batched "
          f"{fresh['aggregate']['batched_ops_per_second']:,.0f} vs "
          f"unbatched {fresh['aggregate']['unbatched_ops_per_second']:,.0f} "
          f"ops/s)")

    # Snapshot-relative throughput floors on every common leaderboard
    # cell (the smoke run may cover a subset of the committed matrix).
    compared = 0
    for fam, fdoc in sorted(fresh.get("families", {}).items()):
        sdoc = snap.get("families", {}).get(fam)
        if not sdoc:
            continue
        for stripes, cells in sorted(fdoc["per_stripes"].items(),
                                     key=lambda kv: int(kv[0])):
            scells = sdoc["per_stripes"].get(stripes)
            if not scells:
                continue
            f_ops = cells["batched"]["ops_per_second"]
            s_ops = scells["batched"]["ops_per_second"]
            floor = s_ops * (1.0 - args.tolerance)
            good = f_ops >= floor
            ok = ok and good
            compared += 1
            print(f"{'OK' if good else 'FAIL'}: {fam}@{stripes} stripes "
                  f"batched ops/s = {f_ops:,.0f} (floor {floor:,.0f}; "
                  f"snapshot {s_ops:,.0f}, -{args.tolerance:.0%})")
    if compared == 0:
        print("FAIL: fresh run and snapshot share no (family, stripes) cell")
        ok = False

    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", help="fresh benchmark JSON to gate")
    ap.add_argument("--mode", choices=("overhead", "throughput", "kv"),
                    default="overhead")
    ap.add_argument("--snapshot", default=None,
                    help="committed snapshot (default depends on mode)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max allowed relative regression (default 0.15)")
    ap.add_argument("--threads", type=int, default=1,
                    help="[overhead] thread count to gate")
    ap.add_argument("--cohort-floor", type=float, default=9.9e6,
                    help="[throughput] min cohort items/s at 8 threads")
    ap.add_argument("--cpu-ratio-floor", type=float, default=2.0,
                    help="[throughput] min oversubscribed spin/park "
                         "CPU-per-passage ratio")
    args = ap.parse_args()

    if args.mode == "throughput":
        return throughput_mode(args)
    if args.mode == "kv":
        return kv_mode(args)
    return overhead_mode(args)


if __name__ == "__main__":
    sys.exit(main())
