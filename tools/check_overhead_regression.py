#!/usr/bin/env python3
"""Perf-regression gate for the instrumentation probe (CI perf-smoke job).

Compares a fresh bench_instr_overhead run (raw google-benchmark JSON from
--benchmark_out) against the committed BENCH_instr_overhead.json snapshot
and fails if the single-thread instr_over_native ratio regressed by more
than --tolerance (relative). The gate runs on the ratio, not absolute
nanoseconds, so it is insensitive to the runner's clock speed; only the
uncontended single-thread ratio is gated because the multi-thread points
on shared CI runners are too noisy to gate at 15%.

Usage:
  check_overhead_regression.py fresh.json \
      [--snapshot BENCH_instr_overhead.json] [--tolerance 0.15]
"""
import argparse
import json
import sys


def per_iter_time(doc, family, threads):
    for b in doc["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if name.startswith(f"{family}/") and f"/threads:{threads}" in name:
            return b["real_time"]
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", help="raw JSON from bench_instr_overhead")
    ap.add_argument("--snapshot", default="BENCH_instr_overhead.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max allowed relative regression (default 0.15)")
    ap.add_argument("--threads", type=int, default=1)
    args = ap.parse_args()

    fresh = json.load(open(args.fresh))
    snap = json.load(open(args.snapshot))

    native = per_iter_time(fresh, "native_fetch_add", args.threads)
    instr = per_iter_time(fresh, "instr_fetch_add", args.threads)
    if not native or not instr:
        print("FAIL: fresh run is missing the native/instr fetch_add series")
        return 2

    ratio = instr / native
    committed = snap["overhead_ratio_by_threads"][str(args.threads)][
        "instr_over_native"]
    limit = committed * (1.0 + args.tolerance)
    verdict = "OK" if ratio <= limit else "FAIL"
    print(f"{verdict}: instr_over_native@{args.threads}t = {ratio:.2f} "
          f"(fresh {instr:.1f}ns / {native:.1f}ns), committed {committed:.2f}, "
          f"limit {limit:.2f} (+{args.tolerance:.0%})")
    return 0 if ratio <= limit else 1


if __name__ == "__main__":
    sys.exit(main())
