// rme-lockd — the standalone daemon + operator tool for the persistent
// named-lock service (src/runtime/lockd).
//
//   rme-lockd serve  --shm_name=rme-lockd [--slots=8 --dir=64 --lock=ba]
//   rme-lockd status --shm_name=rme-lockd
//   rme-lockd stop   --shm_name=rme-lockd
//   rme-lockd unlink --shm_name=rme-lockd
//
// `serve` attaches to a surviving segment (or creates a fresh one) and
// runs the sweep/recovery loop in the foreground until `stop` flips the
// control flag. The segment persists across serve restarts: a SIGKILLed
// daemon's successor revalidates the header and sweeps every husk the
// crash left. One caveat is inherent to the address discipline: lock
// objects carry vtable pointers into the creating executable's text, so
// a *reattaching* serve can drive recovery only when its image landed at
// the creator's slide (fork children always qualify; a freshly exec'd
// PIE binary under ASLR usually does not — serve refuses with a
// diagnostic instead of chasing wild vtables).
//
// `status` and `stop` never touch lock pointers at all: they map the
// segment at an arbitrary address and walk the control block purely via
// the stored offsets, so they work from any process regardless of slide.
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "runtime/lockd.hpp"
#include "shm/shm_segment.hpp"
#include "util/cli.hpp"

namespace {

using rme::lockd::ClientSlot;
using rme::lockd::DirEntry;
using rme::lockd::ServiceControl;

int Usage() {
  std::fprintf(
      stderr,
      "usage: rme-lockd <serve|status|stop|unlink> --shm_name=NAME\n"
      "  serve   --shm_name=rme-lockd [--slots=8 --dir=64 --lock=ba\n"
      "          --log_cap=65536 --bytes=67108864 --sweep_us=300]\n"
      "          run the daemon in the foreground (attach or create)\n"
      "  status  print segment header, daemon state, slots, directory\n"
      "  stop    ask the serving daemon to drain and exit\n"
      "  unlink  remove the /dev/shm entry (stopped services only)\n");
  return 2;
}

/// A raw, slide-independent mapping for status/stop: the segment is
/// mapped wherever the kernel likes and only offset-derived pointers are
/// dereferenced (ServiceControl stores every array as an offset for
/// exactly this consumer).
struct RawMap {
  void* base = nullptr;
  size_t len = 0;
  ~RawMap() {
    if (base != nullptr) ::munmap(base, len);
  }
};

bool MapRaw(const std::string& shm_name, bool writable, RawMap* out) {
  const std::string path = "/" + shm_name;
  const int fd = ::shm_open(path.c_str(), writable ? O_RDWR : O_RDONLY, 0);
  if (fd < 0) {
    std::fprintf(stderr, "rme-lockd: no /dev/shm entry '%s'\n", path.c_str());
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    std::fprintf(stderr, "rme-lockd: cannot stat '%s'\n", path.c_str());
    ::close(fd);
    return false;
  }
  out->len = static_cast<size_t>(st.st_size);
  out->base = ::mmap(nullptr, out->len,
                     writable ? PROT_READ | PROT_WRITE : PROT_READ,
                     MAP_SHARED, fd, 0);
  ::close(fd);
  if (out->base == MAP_FAILED) {
    out->base = nullptr;
    std::fprintf(stderr, "rme-lockd: mmap of '%s' failed\n", path.c_str());
    return false;
  }
  return true;
}

/// Validates the segment + service headers of a raw mapping and returns
/// the control block, or null with a diagnostic.
ServiceControl* CtlOfRaw(const RawMap& map) {
  if (map.len < sizeof(rme::shm::SegmentHeader)) return nullptr;
  auto* hdr = static_cast<rme::shm::SegmentHeader*>(map.base);
  if (hdr->magic != rme::shm::kSegmentMagic ||
      hdr->version != rme::shm::kSegmentVersion) {
    std::fprintf(stderr, "rme-lockd: not an RME segment (magic/version)\n");
    return nullptr;
  }
  const uint64_t root = hdr->root.load(std::memory_order_acquire);
  if (root == 0 || root + sizeof(ServiceControl) > map.len) {
    std::fprintf(stderr, "rme-lockd: segment has no published root\n");
    return nullptr;
  }
  auto* ctl = reinterpret_cast<ServiceControl*>(
      static_cast<char*>(map.base) + root);
  if (ctl->magic != rme::lockd::kServiceMagic ||
      ctl->version != rme::lockd::kServiceVersion) {
    std::fprintf(stderr, "rme-lockd: root is not a lockd control block\n");
    return nullptr;
  }
  return ctl;
}

int CmdServe(const rme::Cli& cli) {
  rme::lockd::ServiceConfig scfg;
  scfg.shm_name = cli.GetString("shm_name", "rme-lockd");
  scfg.lock_kind = cli.GetString("lock", "ba");
  scfg.num_slots = static_cast<int>(cli.GetInt("slots", 8));
  scfg.dir_capacity = static_cast<uint32_t>(cli.GetInt("dir", 64));
  scfg.log_cap = static_cast<uint64_t>(cli.GetInt("log_cap", 1 << 16));
  scfg.segment_bytes = static_cast<size_t>(cli.GetInt("bytes", 64 << 20));

  auto svc = rme::lockd::Service::AttachOrCreate(scfg);
  svc->set_persist(true);  // the segment is the service; serve is transient
  std::fprintf(stderr, "rme-lockd: %s '%s' (slots=%u dir=%u lock=%s)\n",
               svc->attached() ? "attached to" : "created",
               svc->shm_name().c_str(), svc->ctl()->num_slots,
               svc->ctl()->dir_capacity, svc->ctl()->lock_kind);
  if (!svc->locks_usable()) {
    std::fprintf(stderr,
                 "rme-lockd: segment was created by a different image/slide; "
                 "this process cannot drive recovery (vtable pointers would "
                 "be wild). Use the creating binary, or unlink and start "
                 "fresh.\n");
    return 3;
  }
  rme::lockd::DaemonConfig dc;
  dc.sweep_interval_us = static_cast<uint32_t>(cli.GetInt("sweep_us", 300));
  const int rc = rme::lockd::RunDaemon(*svc, dc);
  if (rc == 1) {
    std::fprintf(stderr, "rme-lockd: a live daemon already serves '%s'\n",
                 svc->shm_name().c_str());
    return 1;
  }
  std::fprintf(stderr, "rme-lockd: clean stop\n");
  return 0;
}

int CmdStatus(const std::string& shm_name) {
  RawMap map;
  if (!MapRaw(shm_name, /*writable=*/false, &map)) return 1;
  const ServiceControl* ctl = CtlOfRaw(map);
  if (ctl == nullptr) return 1;

  const auto* hdr = static_cast<const rme::shm::SegmentHeader*>(map.base);
  std::printf("segment '/%s': %zu bytes, %llu used, attaches=%u\n",
              shm_name.c_str(), map.len,
              static_cast<unsigned long long>(
                  hdr->bump.load(std::memory_order_relaxed)),
              hdr->attaches.load(std::memory_order_relaxed));
  const uint64_t dw = ctl->daemon_word.load(std::memory_order_relaxed);
  const uint32_t dpid = rme::lockd::WordPid(dw);
  std::printf(
      "daemon: state=%u pid=%u (%s) inc=%llu takeovers=%llu heartbeat=%llu "
      "ready=%u stop=%u\n",
      rme::lockd::WordState(dw), dpid,
      dpid != 0 && rme::lockd::ProcessAlive(dpid) ? "alive" : "dead",
      static_cast<unsigned long long>(
          ctl->daemon_incarnation.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          ctl->daemon_takeovers.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          ctl->daemon_heartbeat.load(std::memory_order_relaxed)),
      ctl->ready.load(std::memory_order_relaxed),
      ctl->stop.load(std::memory_order_relaxed));
  std::printf("service: lock=%s recovered_slots=%llu assists=%llu "
              "rollbacks=%llu leases=%llu overlaps=%llu\n",
              ctl->lock_kind,
              static_cast<unsigned long long>(
                  ctl->recovered_slots.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  ctl->assisted_inserts.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  ctl->rolled_back_inserts.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  ctl->lease_grants.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  ctl->cs_overlap_events.load(std::memory_order_relaxed)));

  const ClientSlot* slots = rme::lockd::Slots(ctl);
  for (uint32_t s = 0; s < ctl->num_slots; ++s) {
    const uint64_t w = slots[s].word.load(std::memory_order_relaxed);
    if (rme::lockd::WordState(w) == rme::lockd::kSlotFree &&
        slots[s].acquires.load(std::memory_order_relaxed) == 0) {
      continue;  // never used; keep the listing short
    }
    const uint32_t pid = rme::lockd::WordPid(w);
    std::printf("  slot %2u: %-11s pid=%-7u %s epoch=%llu inc=%llu "
                "acquires=%llu active_entry=%u\n",
                s, rme::lockd::SlotStateName(rme::lockd::WordState(w)), pid,
                pid != 0 && rme::lockd::ProcessAlive(pid) ? "alive" : "dead ",
                static_cast<unsigned long long>(rme::lockd::WordEpoch(w)),
                static_cast<unsigned long long>(
                    slots[s].incarnation.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    slots[s].acquires.load(std::memory_order_relaxed)),
                slots[s].active_entry.load(std::memory_order_relaxed));
  }

  const DirEntry* dir = rme::lockd::Dir(ctl);
  uint32_t ready = 0, tomb = 0, inserting = 0;
  for (uint32_t i = 0; i < ctl->dir_capacity; ++i) {
    const uint32_t st =
        rme::lockd::WordState(dir[i].word.load(std::memory_order_relaxed));
    if (st == rme::lockd::kEntryReady) {
      ++ready;
      std::printf("  lock '%s': acquisitions=%llu overlaps=%u owner=%u\n",
                  dir[i].name,
                  static_cast<unsigned long long>(
                      dir[i].acquisitions.load(std::memory_order_relaxed)),
                  dir[i].cs_overlaps.load(std::memory_order_relaxed),
                  dir[i].owner.load(std::memory_order_relaxed));
    } else if (st == rme::lockd::kEntryTombstone) {
      ++tomb;
    } else if (st == rme::lockd::kEntryInserting) {
      ++inserting;
    }
  }
  std::printf("directory: %u/%u ready, %u tombstones, %u inserting\n", ready,
              ctl->dir_capacity, tomb, inserting);
  return 0;
}

int CmdStop(const std::string& shm_name) {
  RawMap map;
  if (!MapRaw(shm_name, /*writable=*/true, &map)) return 1;
  ServiceControl* ctl = CtlOfRaw(map);
  if (ctl == nullptr) return 1;
  ctl->stop.store(1, std::memory_order_release);
  std::printf("rme-lockd: stop requested for '/%s'\n", shm_name.c_str());
  return 0;
}

int CmdUnlink(const std::string& shm_name) {
  if (rme::shm::Segment::UnlinkNamed(shm_name)) {
    std::printf("rme-lockd: unlinked '/%s'\n", shm_name.c_str());
    return 0;
  }
  std::fprintf(stderr, "rme-lockd: nothing to unlink at '/%s'\n",
               shm_name.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  rme::Cli cli(argc - 1, argv + 1);
  const std::string shm_name = cli.GetString("shm_name", "rme-lockd");
  if (cmd == "serve") return CmdServe(cli);
  if (cmd == "status") return CmdStatus(shm_name);
  if (cmd == "stop") return CmdStop(shm_name);
  if (cmd == "unlink") return CmdUnlink(shm_name);
  return Usage();
}
