#!/usr/bin/env bash
# Runs the real-process SIGKILL crash sweep (bench_fork_crash) from an
# existing build tree, with a bounded wall clock so a wedged harness can
# never hang CI. The bench's exit status is propagated verbatim
# (nonzero on any ME/BCSR violation, child error, hang, watchdog fire,
# storm-gate failure, or log overflow); a timeout maps to the
# conventional 124/137 with a diagnostic on stderr.
#
# Usage: tools/run_fork_crash.sh [build-dir] [extra bench flags...]
#   RME_FORK_CRASH_TIMEOUT=300  wall-clock cap in seconds (default 300)
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BIN="$BUILD_DIR/bench/bench_fork_crash"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_fork_crash)" >&2
  exit 2
fi

TIMEOUT_S="${RME_FORK_CRASH_TIMEOUT:-300}"

# Not `exec`: capture the status so timeouts and gate failures are
# reported distinctly instead of silently becoming the script's exit.
status=0
timeout --kill-after=10 "$TIMEOUT_S" "$BIN" "$@" || status=$?

case "$status" in
  0)
    ;;
  124|137)
    echo "error: bench_fork_crash exceeded ${TIMEOUT_S}s wall clock" \
         "(status $status) — liveness watchdog failed to terminate the run" >&2
    ;;
  *)
    echo "error: bench_fork_crash failed with status $status" \
         "(ME/BCSR violation, hang, counter regression, or storm gate)" >&2
    ;;
esac
exit "$status"
