#!/usr/bin/env bash
# Runs the real-process SIGKILL crash sweep (bench_fork_crash) from an
# existing build tree, with a bounded wall clock so a wedged harness can
# never hang CI. Exit status is the bench's own (nonzero on any ME/BCSR
# violation, child error, watchdog fire, or log overflow) or 124 on
# timeout.
#
# Usage: tools/run_fork_crash.sh [build-dir] [extra bench flags...]
#   RME_FORK_CRASH_TIMEOUT=300  wall-clock cap in seconds (default 300)
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BIN="$BUILD_DIR/bench/bench_fork_crash"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_fork_crash)" >&2
  exit 2
fi

TIMEOUT_S="${RME_FORK_CRASH_TIMEOUT:-300}"
exec timeout --signal=KILL "$TIMEOUT_S" "$BIN" "$@"
