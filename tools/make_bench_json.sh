#!/usr/bin/env bash
# Regenerates the committed benchmark snapshots:
#  - BENCH_instr_overhead.json: bench_instr_overhead + bench_throughput
#    merged with derived overhead ratios (including the mirrored series
#    that prices the fork harness's kill-survivable counter flush);
#  - BENCH_fork_rmr.json: bench_fork_crash --report=rmr — per-lock RMR
#    conditioned on overlapping SIGKILLs, straight from the bench's
#    --json_out.
# Usage: tools/make_bench_json.sh [build-dir] (default: build)
# Snapshots are taken from a Release(+LTO) build of the given dir:
#   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release && \
#   cmake --build build-rel -j && tools/make_bench_json.sh build-rel
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD_DIR"/bench/bench_instr_overhead \
  --benchmark_out="$TMP/overhead.json" --benchmark_out_format=json \
  --benchmark_min_time=0.2s >/dev/null
"$BUILD_DIR"/bench/bench_throughput \
  --benchmark_out="$TMP/throughput.json" --benchmark_out_format=json \
  >/dev/null 2>&1

python3 - "$TMP/overhead.json" "$TMP/throughput.json" <<'EOF'
import json, sys

overhead = json.load(open(sys.argv[1]))
throughput = json.load(open(sys.argv[2]))

def rows(doc):
    return [b for b in doc["benchmarks"] if b.get("run_type") != "aggregate"]

def time_of(doc, family, threads):
    for b in rows(doc):
        if b["name"].startswith(f"{family}/") and f"/threads:{threads}" in b["name"]:
            return b["real_time"]
    return None

ratios = {}
for t in (1, 4, 8, 16):
    native = time_of(overhead, "native_fetch_add", t)
    instr = time_of(overhead, "instr_fetch_add", t)
    mirrored = time_of(overhead, "instr_fetch_add_mirrored", t)
    block1 = time_of(overhead, "instr_fetch_add_block1", t)
    native_load = time_of(overhead, "native_load", t)
    load_hit = time_of(overhead, "instr_load_hit", t)
    native_sl = time_of(overhead, "native_store_load", t)
    load_miss = time_of(overhead, "instr_load_miss", t)
    native_cs = time_of(overhead, "native_cs_mix", t)
    instr_cs = time_of(overhead, "instr_cs_mix", t)
    if native:
        ratios[str(t)] = {
            "native_ns": round(native, 2),
            "instr_ns": round(instr, 2),
            "instr_mirrored_ns": round(mirrored, 2) if mirrored else None,
            "instr_block1_ns": round(block1, 2),
            "instr_over_native": round(instr / native, 2),
            "mirrored_over_native":
                round(mirrored / native, 2) if mirrored else None,
            "block1_over_native": round(block1 / native, 2),
            "load_hit_over_native":
                round(load_hit / native_load, 2)
                if load_hit and native_load else None,
            "load_miss_over_native":
                round(load_miss / native_sl, 2)
                if load_miss and native_sl else None,
            "cs_mix_over_native":
                round(instr_cs / native_cs, 2)
                if instr_cs and native_cs else None,
        }

agg = {}
for b in rows(throughput):
    for t in (1, 4, 8):
        if f"/threads:{t}" in b["name"]:
            agg[str(t)] = agg.get(str(t), 0.0) + b.get("items_per_second", 0.0)
agg = {k: round(v) for k, v in agg.items()}

out = {
    "context": overhead.get("context", {}),
    "overhead_ratio_by_threads": ratios,
    "throughput_aggregate_items_per_second_by_threads": agg,
    "benchmarks": overhead["benchmarks"],
}
json.dump(out, open("BENCH_instr_overhead.json", "w"), indent=1)
print("wrote BENCH_instr_overhead.json")
print("overhead ratios:", json.dumps(ratios, indent=1))
print("throughput aggregates:", agg)
EOF

# Throughput snapshot for the CI perf gate: per-lock items/s at 1/4/8
# threads plus the oversubscribed 256-thread cohort series (futex parking
# on vs off, with getrusage CPU time). The driver writes the JSON itself.
"$BUILD_DIR"/bench/bench_throughput \
  --json_out=BENCH_throughput.json \
  --duration_ms=150 --oversub_threads=256 --oversub_duration_ms=600 \
  >/dev/null
echo "wrote BENCH_throughput.json"

# Fork-mode RMR under genuine SIGKILLs: the bench writes the JSON itself
# (and exits nonzero on any verdict/accounting failure, aborting here).
"$BUILD_DIR"/bench/bench_fork_crash \
  --n=8 --passages=2000 --independent=100 --batches=20 \
  --interval_ms=0.5 --report=rmr \
  --json_out=BENCH_fork_rmr.json >/dev/null
echo "wrote BENCH_fork_rmr.json"

# Sharded KV service leaderboard: per-family batched/unbatched
# throughput + p99/p999 at both stripe counts plus the kill-regime
# verdicts. --gate makes the snapshot run fail right here if the kill
# matrix reports violations or batching stops paying for itself.
"$BUILD_DIR"/bench/bench_kv_service \
  --json_out=BENCH_kv_service.json --gate >/dev/null
echo "wrote BENCH_kv_service.json"
