#!/usr/bin/env bash
# Runs the rme-lockd kill matrix (bench_lockd) from an existing build
# tree with a bounded wall clock, so a wedged daemon/driver can never
# hang CI. The bench's exit status is propagated verbatim (nonzero on
# any ME/BCSR violation, phantom crash note, hang, watchdog fire,
# undelivered kill source, or leaked /dev/shm entry); a timeout maps to
# the conventional 124/137 with a diagnostic on stderr.
#
# Usage: tools/run_lockd.sh [build-dir] [extra bench flags...]
#   RME_LOCKD_TIMEOUT=300  wall-clock cap in seconds (default 300)
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BIN="$BUILD_DIR/bench/bench_lockd"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_lockd)" >&2
  exit 2
fi

TIMEOUT_S="${RME_LOCKD_TIMEOUT:-300}"

# Not `exec`: capture the status so timeouts and gate failures are
# reported distinctly instead of silently becoming the script's exit.
status=0
timeout --kill-after=10 "$TIMEOUT_S" "$BIN" "$@" || status=$?

case "$status" in
  0)
    ;;
  124|137)
    echo "error: bench_lockd exceeded ${TIMEOUT_S}s wall clock" \
         "(status $status) — liveness watchdog failed to terminate the run" >&2
    ;;
  *)
    echo "error: bench_lockd failed with status $status" \
         "(ME/BCSR violation, hang, undelivered kills, or /dev/shm leak)" >&2
    ;;
esac
exit "$status"
