// Tests for BA-Lock (§5.2): construction, strong ME under crash storms,
// escalation-level accounting, and the Theorem-5.17 bound that reaching
// level x requires at least x(x-1)/2 overlapping failures.
#include <gtest/gtest.h>

#include "core/ba_lock.hpp"
#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

TEST(BaLock, DefaultConstruction) {
  auto ba = BaLock::WithDefaultBase(16);
  EXPECT_GE(ba->levels(), 1);
  EXPECT_NE(ba->name().find("ba-lock"), std::string::npos);
  EXPECT_TRUE(ba->IsStronglyRecoverable());
}

TEST(BaLock, SingleProcessPassages) {
  auto ba = BaLock::WithDefaultBase(4);
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 6; ++i) {
    ba->Recover(0);
    ba->Enter(0);
    EXPECT_EQ(ba->LastLevelOf(0), 1) << "failure-free stays at level 1";
    ba->Exit(0);
  }
}

TEST(BaLock, FailureFreeContentionStaysLevelOne) {
  auto ba = BaLock::WithDefaultBase(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 200;
  const RunResult r = RunWorkload(*ba, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.completed_passages, 8u * 200u);
  EXPECT_EQ(r.level_reached.max(), 1.0) << "no failures => no escalation";
}

TEST(BaLock, FailureFreeRmrIsConstantIndependentOfN) {
  double mean_small = 0, mean_large = 0;
  for (int n : {4, 32}) {
    auto ba = BaLock::WithDefaultBase(n);
    WorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = 120;
    const RunResult r = RunWorkload(*ba, cfg, nullptr);
    EXPECT_FALSE(r.aborted);
    (n == 4 ? mean_small : mean_large) = r.passage.cc.mean();
  }
  // O(1): the big-n mean must not grow with n (allow 50% noise).
  EXPECT_LE(mean_large, mean_small * 1.5 + 10.0);
}

TEST(BaLock, CrashStormKeepsStrongMEAndLiveness) {
  auto ba = BaLock::WithDefaultBase(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 120;
  cfg.seed = 9;
  RandomCrash crash(83, 0.0015, -1);
  const RunResult r = RunWorkload(*ba, cfg, &crash);
  EXPECT_FALSE(r.aborted) << "starvation freedom under crash storm";
  EXPECT_EQ(r.me_violations, 0u) << "BA-Lock is strongly recoverable";
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.completed_passages, 8u * 120u);
}

TEST(BaLock, Theorem517LevelRequiresQuadraticFailures) {
  // Inject exactly F failures; no passage may escalate past the level x
  // with x(x-1)/2 <= F_overlapping. We use total F as the (loose) bound.
  for (int64_t budget : {1, 3, 6}) {
    auto ba = std::make_unique<BaLock>(
        8, 6, std::make_unique<TournamentLock>(8, "ba.base"));
    WorkloadConfig cfg;
    cfg.num_procs = 8;
    cfg.passages_per_proc = 100;
    cfg.seed = static_cast<uint64_t>(budget) * 13;
    RandomCrash crash(97 + static_cast<uint64_t>(budget), 0.003, budget);
    const RunResult r = RunWorkload(*ba, cfg, &crash);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.me_violations, 0u);
    const int max_level = static_cast<int>(r.level_reached.max());
    // Thm 5.17: reaching level x needs >= x(x-1)/2 failures overall.
    EXPECT_LE(static_cast<int64_t>(max_level) * (max_level - 1) / 2, budget)
        << "level " << max_level << " reached with only " << budget
        << " failures";
  }
}

TEST(BaLock, ManualLevelCountIsRespected) {
  auto ba = std::make_unique<BaLock>(
      4, 3, std::make_unique<TournamentLock>(4, "ba.base"), "bam");
  EXPECT_EQ(ba->levels(), 3);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 80;
  RandomCrash crash(101, 0.002, -1);
  const RunResult r = RunWorkload(*ba, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  // Max reported level is the base (m+1) at most.
  EXPECT_LE(r.level_reached.max(), 4.0);
}

TEST(BaLock, SensitiveSitesAreTheLevelFilters) {
  auto ba = std::make_unique<BaLock>(
      4, 2, std::make_unique<TournamentLock>(4, "ba.base"), "bax");
  EXPECT_TRUE(ba->IsSensitiveSite("bax.L1.filter.tail.fas", true));
  EXPECT_TRUE(ba->IsSensitiveSite("bax.L2.filter.tail.fas", true));
  EXPECT_FALSE(ba->IsSensitiveSite("bax.L1.arb.op", true));
  EXPECT_FALSE(ba->IsSensitiveSite("ba.base.L0.0.op", true));
}

TEST(BaLock, StatsCoverAllLevels) {
  auto ba = std::make_unique<BaLock>(
      4, 2, std::make_unique<TournamentLock>(4, "ba.base"), "bas");
  ProcessBinding bind(0, nullptr);
  ba->Recover(0);
  ba->Enter(0);
  ba->Exit(0);
  const std::string s = ba->StatsString();
  EXPECT_NE(s.find("bas.L1"), std::string::npos);
  EXPECT_NE(s.find("bas.L2"), std::string::npos);
}

}  // namespace
}  // namespace rme
