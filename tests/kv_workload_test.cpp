// Pins the shared KV workload generators (bench/bench_common.hpp) and
// the striped-table/EnterMany plumbing they feed:
//
//   - ZipfianKeys is a pure function of (n, theta, caller's Prng): the
//     seed-for-seed identity the bench header promises, the theta = 0
//     uniform fast path, and the YCSB skew shape (low ranks hot);
//   - DrawKvOp honors the op mix and never emits a transaction with
//     duplicate keys (the redo record indexes cells by key, so a dup
//     would double-apply one cell's delta);
//   - MakeKvDraw closures capture by value — two closures fed same-seed
//     Prngs replay identical streams, which is what makes the fork
//     service's per-incarnation redraws reproducible;
//   - EnterMany/ExitMany run a clean passage on EVERY registry family,
//     opted-in or not (the fallback path is Enter/Exit), and the
//     batching families actually advertise SupportsEnterMany;
//   - StripedTable publishes every stripe Ready with a live lock, and
//     StripeOf is exactly StripeHash masked onto the stripe space.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/lock_registry.hpp"
#include "locks/lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/kv_service.hpp"
#include "runtime/striped_table.hpp"
#include "shm/shm_segment.hpp"
#include "util/prng.hpp"

namespace rme {
namespace {

using bench::DrawKvOp;
using bench::KvOpMix;
using bench::MakeKvDraw;
using bench::ZipfianKeys;

TEST(ZipfianKeys, SeedForSeedIdentity) {
  const ZipfianKeys keys(10000, 0.99);
  Prng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t ka = keys.Next(a);
    EXPECT_EQ(ka, keys.Next(b));
    EXPECT_LT(ka, 10000u);
    diverged = diverged || (ka != keys.Next(c));
  }
  EXPECT_TRUE(diverged);
}

TEST(ZipfianKeys, ThetaZeroIsTheUniformFastPath) {
  // theta = 0 must bypass the Zipf inversion entirely and consume
  // exactly one NextBounded per draw — byte-for-byte the stream a
  // caller would get from the Prng directly.
  const ZipfianKeys keys(4096, 0.0);
  Prng a(7), b(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(keys.Next(a), b.NextBounded(4096));
  }
}

TEST(ZipfianKeys, SkewConcentratesOnLowRanks) {
  const uint64_t n = 10000;
  const ZipfianKeys hot(n, 0.99), flat(n, 0.0);
  Prng rng(123);
  const int draws = 40000;
  std::vector<uint32_t> counts(n, 0);
  uint64_t hot_top = 0, flat_top = 0;
  for (int i = 0; i < draws; ++i) {
    const uint64_t k = hot.Next(rng);
    ++counts[k];
    if (k < n / 100) ++hot_top;
    if (flat.Next(rng) < n / 100) ++flat_top;
  }
  // Rank 0 is the hottest key, and the top 1% of ranks soak up the
  // majority of Zipf(0.99) draws while staying ~1% under uniform.
  for (uint64_t k = 1; k < n; ++k) EXPECT_LE(counts[k], counts[0]);
  EXPECT_GT(hot_top, static_cast<uint64_t>(draws) / 2);
  EXPECT_LT(flat_top, static_cast<uint64_t>(draws) / 20);
}

TEST(DrawKvOp, HonorsMixAndNeverDuplicatesTxnKeys) {
  const ZipfianKeys keys(8192, 0.99);
  KvOpMix mix;
  mix.read_frac = 0.70;
  mix.put_frac = 0.20;
  mix.txn_keys = 3;
  Prng rng(9);
  const int draws = 20000;
  int reads = 0, puts = 0, txns = 0;
  for (int i = 0; i < draws; ++i) {
    const KvOp op = DrawKvOp(rng, keys, mix);
    switch (op.kind) {
      case KvOp::kRead: ++reads; break;
      case KvOp::kPut: ++puts; break;
      case KvOp::kTxn: ++txns; break;
    }
    const int nkeys = op.kind == KvOp::kTxn ? op.nkeys : 1;
    ASSERT_GE(nkeys, 1);
    ASSERT_LE(nkeys, kKvMaxTxnKeys);
    for (int a = 0; a < nkeys; ++a) {
      EXPECT_LT(op.keys[a], 8192u);
      for (int b = a + 1; b < nkeys; ++b) EXPECT_NE(op.keys[a], op.keys[b]);
    }
    if (op.kind == KvOp::kTxn) {
      EXPECT_EQ(op.nkeys, 3);
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / draws, 0.70, 0.02);
  EXPECT_NEAR(static_cast<double>(puts) / draws, 0.20, 0.02);
  EXPECT_NEAR(static_cast<double>(txns) / draws, 0.10, 0.02);
}

TEST(MakeKvDraw, ClosureIsAPureFunctionOfTheSeed) {
  const ZipfianKeys keys(4096, 0.5);
  const KvOpMix mix;
  const KvDrawFn f = MakeKvDraw(keys, mix);
  const KvDrawFn g = MakeKvDraw(keys, mix);
  Prng a(1000), b(1000);
  for (int i = 0; i < 500; ++i) {
    const KvOp x = f(0, a);
    const KvOp y = g(3, b);  // pid must not perturb the stream
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.nkeys, y.nkeys);
    for (int j = 0; j < x.nkeys; ++j) EXPECT_EQ(x.keys[j], y.keys[j]);
  }
}

TEST(EnterMany, CleanPassageOnEveryFamilyOptedInOrNot) {
  int opted_in = 0;
  for (const std::string& name : RecoverableLockNames()) {
    SCOPED_TRACE(name);
    auto lock = MakeLock(name, 4);
    ProcessBinding bind(0, nullptr);
    if (lock->SupportsEnterMany()) ++opted_in;
    for (int i = 0; i < 3; ++i) {
      lock->Recover(0);
      lock->EnterMany(0, 4);  // fallback = Enter on default families
      lock->ExitMany(0);
      lock->Recover(0);
      lock->Enter(0);
      lock->Exit(0);
    }
    lock->OnProcessDone(0);
  }
  // The batching families of the KV leaderboard all advertise it.
  EXPECT_GE(opted_in, 6);
}

TEST(StripedTable, PublishesEveryStripeReadyWithALiveLock) {
  shm::Segment seg(64u << 20);
  StripedTable* table = StripedTable::Create(seg, "wr", 64, 4);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->stripe_count(), 64u);
  EXPECT_EQ(table->ReadyEntries(), 64u);
  for (uint32_t s = 0; s < 64; ++s) {
    EXPECT_NE(table->LockAt(s), nullptr);
    EXPECT_EQ(table->EntryAt(s).owner.load(), 0u);
    EXPECT_EQ(table->EntryAt(s).acquisitions.load(), 0u);
  }
}

TEST(StripedTable, StripeOfIsTheMaskedStaticHash) {
  shm::Segment seg(256u << 20);
  StripedTable* table = StripedTable::Create(seg, "wr", 256, 2);
  Prng rng(5);
  std::vector<uint32_t> hits(256, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t key = rng.Next();
    const uint32_t s = table->StripeOf(key);
    EXPECT_LT(s, 256u);
    EXPECT_EQ(s, StripedTable::StripeHash(key) & 255u);
    ++hits[s];
  }
  // SplitMix64 finalizer: no stripe should be starved or wildly hot
  // (expected ~390 hits each; 4x bounds are many sigma out).
  for (uint32_t s = 0; s < 256; ++s) {
    EXPECT_GT(hits[s], 100u);
    EXPECT_LT(hits[s], 1600u);
  }
}

}  // namespace
}  // namespace rme
