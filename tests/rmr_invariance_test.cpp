// RMR-invariance regression: the padding / clock-sharding / backoff work
// in the instrumentation layer must not move a single simulated RMR.
// These constants were captured from the seed build (PR 1, commit
// de98463 lineage) on deterministic single-threaded passages; any drift
// means the memory-model accounting changed semantically, not just got
// faster, and needs a DESIGN.md entry.
#include <gtest/gtest.h>

#include <memory>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

struct Expected {
  const char* lock;
  // pass 0 is the cold pass (empty CC caches); passes 1..2 are identical
  // warm passes — steady state reached after one passage for every lock.
  uint64_t ops[3], cc[3], dsm[3];
};

// Captured from the seed build; see file comment.
constexpr Expected kSeed[] = {
    {"mcs", {4, 4, 4}, {4, 4, 4}, {2, 2, 2}},
    {"wr", {45, 45, 45}, {26, 19, 19}, {2, 3, 3}},
    {"sa", {69, 69, 69}, {43, 31, 31}, {22, 23, 23}},
    {"ba", {69, 69, 69}, {43, 31, 31}, {22, 23, 23}},
    {"ba-iter", {72, 72, 72}, {46, 33, 33}, {23, 24, 24}},
    {"tournament", {52, 52, 52}, {36, 28, 28}, {52, 52, 52}},
    {"cw-ticket", {26, 26, 26}, {18, 15, 15}, {26, 26, 26}},
};

TEST(RmrInvariance, SingleThreadedPassagesMatchSeedBitForBit) {
  for (const Expected& e : kSeed) {
    SCOPED_TRACE(e.lock);
    auto lock = MakeLock(e.lock, 4);
    ProcessBinding bind(0, nullptr);
    ProcessContext& ctx = CurrentProcess();
    for (int pass = 0; pass < 3; ++pass) {
      SCOPED_TRACE(pass);
      const OpCounters s0 = ctx.counters;
      lock->Recover(0);
      lock->Enter(0);
      lock->Exit(0);
      const OpCounters d = ctx.counters - s0;
      EXPECT_EQ(d.ops, e.ops[pass]);
      EXPECT_EQ(d.cc_rmrs, e.cc[pass]);
      EXPECT_EQ(d.dsm_rmrs, e.dsm[pass]);
    }
    lock->OnProcessDone(0);
  }
}

// The fused probe takes different branches depending on fast_flags
// (mirror flush, sim-yield hook, crash-controller consult). None of those
// branches may move a single counted RMR: run the identical seed-pinned
// schedule through each non-default mode and demand the kSeed constants.
TEST(RmrInvariance, CountsIdenticalAcrossProbeModes) {
  enum Mode { kMirrorOn, kSimHookOn, kCrashControllerOn };
  for (Mode mode : {kMirrorOn, kSimHookOn, kCrashControllerOn}) {
    SCOPED_TRACE(static_cast<int>(mode));
    if (mode == kSimHookOn) {
      // A no-op hook still routes every op through the pre-probe slow
      // path, which must yield-then-count exactly like the fast path.
      SetSimYieldHook([](void*) {}, nullptr);
    }
    NeverCrash never;
    for (const Expected& e : kSeed) {
      SCOPED_TRACE(e.lock);
      SharedOpCounters slot;  // fresh (zero) mirror per lock
      auto lock = MakeLock(e.lock, 4);
      ProcessBinding bind(0, mode == kCrashControllerOn ? &never : nullptr,
                          mode == kMirrorOn ? &slot : nullptr);
      ProcessContext& ctx = CurrentProcess();
      for (int pass = 0; pass < 3; ++pass) {
        SCOPED_TRACE(pass);
        const OpCounters s0 = ctx.counters;
        lock->Recover(0);
        lock->Enter(0);
        lock->Exit(0);
        const OpCounters d = ctx.counters - s0;
        EXPECT_EQ(d.ops, e.ops[pass]);
        EXPECT_EQ(d.cc_rmrs, e.cc[pass]);
        EXPECT_EQ(d.dsm_rmrs, e.dsm[pass]);
        if (mode == kMirrorOn) {
          // The packed flush runs on every op: the slot must already
          // equal the private counters with no op still in flight.
          const OpCounters m = slot.Snapshot();
          EXPECT_EQ(m.ops, ctx.counters.ops);
          EXPECT_EQ(m.cc_rmrs, ctx.counters.cc_rmrs);
          EXPECT_EQ(m.dsm_rmrs, ctx.counters.dsm_rmrs);
        }
      }
      lock->OnProcessDone(0);
    }
    if (mode == kSimHookOn) SetSimYieldHook(nullptr, nullptr);
  }
}

TEST(RmrInvariance, CountsIndependentOfClockBlock) {
  // RMR accounting must be identical whichever clock granularity is set:
  // the clock orders events, it never participates in CC/DSM counting.
  auto& config = memory_model_config();
  const uint64_t prev = config.clock_block;
  OpCounters per_block[2];
  const uint64_t blocks[2] = {1, 4096};
  for (int i = 0; i < 2; ++i) {
    config.clock_block = blocks[i];
    auto lock = MakeLock("wr", 4);
    ProcessBinding bind(0, nullptr);
    ProcessContext& ctx = CurrentProcess();
    const OpCounters s0 = ctx.counters;
    for (int pass = 0; pass < 3; ++pass) {
      lock->Recover(0);
      lock->Enter(0);
      lock->Exit(0);
    }
    per_block[i] = ctx.counters - s0;
    lock->OnProcessDone(0);
  }
  config.clock_block = prev;
  EXPECT_EQ(per_block[0].ops, per_block[1].ops);
  EXPECT_EQ(per_block[0].cc_rmrs, per_block[1].cc_rmrs);
  EXPECT_EQ(per_block[0].dsm_rmrs, per_block[1].dsm_rmrs);
}

}  // namespace
}  // namespace rme
