// Tests for the thread-based harness itself: segment accounting, victim
// and overlap-conditioned statistics, level reporting, and the stall
// watchdog.
#include <gtest/gtest.h>

#include <memory>

#include "core/ba_lock.hpp"
#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

TEST(Harness, CountsAndSegmentsFailureFree) {
  auto lock = MakeLock("wr", 4);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 50;
  const RunResult r = RunWorkload(*lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.completed_passages, 200u);
  EXPECT_EQ(r.total_attempts, 200u);  // no retries without crashes
  EXPECT_EQ(r.failures, 0u);
  // Segment decomposition must account for the whole passage.
  EXPECT_EQ(r.passage.cc.count(), 200u);
  EXPECT_NEAR(r.passage.cc.mean(),
              r.recover.cc.mean() + r.enter.cc.mean() + r.exit_seg.cc.mean(),
              1e-9);
  // All failure-free passages land in overlap bucket 0.
  ASSERT_EQ(r.by_overlap.size(), 1u);
  EXPECT_EQ(r.by_overlap.begin()->first, 0);
  EXPECT_EQ(r.by_overlap.begin()->second.cc.count(), 200u);
  EXPECT_EQ(r.victim_passage.cc.count(), 0u);
}

TEST(Harness, CrashesProduceAttemptsVictimsAndBuckets) {
  auto lock = MakeLock("wr", 4);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 100;
  cfg.seed = 5;
  RandomCrash crash(3, 0.004, -1);
  const RunResult r = RunWorkload(*lock, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.completed_passages, 400u);
  EXPECT_GT(r.failures, 0u);
  EXPECT_EQ(r.total_attempts, 400u + r.failures);
  EXPECT_GT(r.victim_passage.cc.count(), 0u);
  // Some passages must have overlapped at least one failure interval.
  uint64_t nonzero_bucket_passages = 0;
  for (const auto& [bucket, seg] : r.by_overlap) {
    if (bucket > 0) nonzero_bucket_passages += seg.cc.count();
  }
  EXPECT_GT(nonzero_bucket_passages, 0u);
  EXPECT_EQ(r.failure_records.size(), r.failures);
  // Exactly one controller counts each crash (the firing leaf), so the
  // controller's tally and the harness's must agree.
  EXPECT_EQ(crash.crashes(), r.failures);
}

TEST(Harness, CompositeControllerCountsEachCrashOnce) {
  auto lock = MakeLock("wr", 4);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 100;
  cfg.seed = 11;
  // Two leaves under a composite; historically the composite *also*
  // counted every leaf firing, doubling crashes() vs the harness failure
  // count. The composite must report exactly the sum of its parts and
  // match the harness.
  RandomCrash random_leaf(9, 0.003, -1);
  SiteCrash site_leaf(2, "wr.tail.fas", /*after_op=*/true);
  CompositeCrash crash({&random_leaf, &site_leaf});
  const RunResult r = RunWorkload(*lock, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_GT(r.failures, 0u);
  EXPECT_EQ(crash.crashes(), r.failures);
  EXPECT_EQ(crash.crashes(), random_leaf.crashes() + site_leaf.crashes());
}

TEST(Harness, LevelReportingComesFromBaLock) {
  auto ba = BaLock::WithDefaultBase(4);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 40;
  const RunResult r = RunWorkload(*ba, cfg, nullptr);
  EXPECT_EQ(r.level_reached.count(), r.completed_passages);
  EXPECT_EQ(r.level_reached.max(), 1.0);
  // Non-BA locks report no level data.
  auto wr = MakeLock("wr", 4);
  const RunResult r2 = RunWorkload(*wr, cfg, nullptr);
  EXPECT_EQ(r2.level_reached.count(), 0u);
}

// A lock that deadlocks its second claimant: the watchdog must abort the
// run rather than hang the suite.
class DeadlockLock final : public RecoverableLock {
 public:
  void Recover(int) override {}
  void Enter(int pid) override {
    uint64_t iter = 0;
    if (!gate_.CompareExchange(0, static_cast<uint64_t>(pid) + 1)) {
      while (true) SpinPause(iter++);  // never released
    }
  }
  void Exit(int) override {}  // never releases the gate
  std::string name() const override { return "deadlock"; }

 private:
  rmr::Atomic<uint64_t> gate_{0};
};

TEST(Harness, WatchdogAbortsDeadlockedRun) {
  DeadlockLock lock;
  WorkloadConfig cfg;
  cfg.num_procs = 2;
  cfg.passages_per_proc = 10;
  cfg.watchdog_seconds = 0.3;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_TRUE(r.aborted);
  EXPECT_LT(r.completed_passages, 20u);
}

TEST(Harness, BoundedStepObservationsArePopulated) {
  auto lock = MakeLock("tournament", 4);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 50;
  const RunResult r = RunWorkload(*lock, cfg, nullptr);
  EXPECT_GT(r.max_exit_ops, 0u);
  EXPECT_GT(r.passages_per_second, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(Harness, LockStatsArePropagated) {
  auto sa = MakeLock("sa", 2);
  WorkloadConfig cfg;
  cfg.num_procs = 2;
  cfg.passages_per_proc = 10;
  const RunResult r = RunWorkload(*sa, cfg, nullptr);
  EXPECT_NE(r.lock_stats.find("fast="), std::string::npos);
}

}  // namespace
}  // namespace rme
