// Tests for the arbitration-tree locks (TournamentLock, KPortTreeLock):
// structure, n-process mutual exclusion, crash storms, RMR ~ depth.
#include <gtest/gtest.h>

#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

TEST(TreeLock, DepthMatchesArity) {
  EXPECT_EQ(TournamentLock(2).depth(), 1);
  EXPECT_EQ(TournamentLock(8).depth(), 3);
  EXPECT_EQ(TournamentLock(9).depth(), 4);
  EXPECT_EQ(TournamentLock(64).depth(), 6);
  EXPECT_EQ(KPortTreeLock::AutoArity(64), 6);
  EXPECT_EQ(KPortTreeLock(64).depth(), 3);  // 6^3 = 216 >= 64
  EXPECT_EQ(KPortTreeLock(16).depth(), 2);  // 4^2 = 16
}

TEST(TreeLock, SingleProcess) {
  TournamentLock lock(8);
  ProcessBinding bind(5, nullptr);
  for (int i = 0; i < 5; ++i) {
    lock.Recover(5);
    lock.Enter(5);
    lock.Exit(5);
  }
}

class TreeLockParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeLockParam, MutualExclusionUnderContention) {
  const int n = std::get<0>(GetParam());
  const int arity = std::get<1>(GetParam());
  TreeLock lock(n, arity);
  WorkloadConfig cfg;
  cfg.num_procs = n;
  cfg.passages_per_proc = 200;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.max_concurrent_cs, 1);
  EXPECT_EQ(r.completed_passages, static_cast<uint64_t>(n) * 200u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TreeLockParam,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(8, 2),
                                           std::make_tuple(16, 2),
                                           std::make_tuple(8, 4),
                                           std::make_tuple(16, 4),
                                           std::make_tuple(13, 3),
                                           std::make_tuple(32, 6)));

TEST(TreeLock, CrashStormStaysExclusive) {
  TournamentLock lock(8, "tstorm");
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 150;
  RandomCrash crash(41, 0.002, -1);
  const RunResult r = RunWorkload(lock, cfg, &crash);
  EXPECT_FALSE(r.aborted) << "starvation freedom under crashes";
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_GT(r.failures, 0u);
  EXPECT_EQ(r.completed_passages, 8u * 150u);
}

TEST(TreeLock, KPortCrashStormStaysExclusive) {
  KPortTreeLock lock(16, "kstorm");
  WorkloadConfig cfg;
  cfg.num_procs = 16;
  cfg.passages_per_proc = 100;
  RandomCrash crash(43, 0.001, -1);
  const RunResult r = RunWorkload(lock, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.completed_passages, 16u * 100u);
}

TEST(TreeLock, RmrScalesWithDepthNotN) {
  // Uncontended cost per passage ~ c * depth.
  for (int n : {4, 16, 64}) {
    TournamentLock lock(n);
    ProcessBinding bind(0, nullptr);
    ProcessContext& ctx = CurrentProcess();
    lock.Recover(0);
    lock.Enter(0);
    lock.Exit(0);
    const OpCounters before = ctx.counters;
    lock.Recover(0);
    lock.Enter(0);
    lock.Exit(0);
    const OpCounters d = ctx.counters - before;
    EXPECT_LE(d.cc_rmrs, 20u * static_cast<uint64_t>(lock.depth()));
  }
}

TEST(TreeLock, KPortTreeShallowerThanTournament) {
  // The substitution's point: k-ary depth ~ log n / log log n beats
  // binary depth ~ log n, and uncontended RMR follows depth.
  const int n = 64;
  TournamentLock binary(n);
  KPortTreeLock kary(n);
  EXPECT_LT(kary.depth(), binary.depth());

  auto measure = [](RecoverableLock& lock) {
    ProcessBinding bind(0, nullptr);
    ProcessContext& ctx = CurrentProcess();
    lock.Recover(0);
    lock.Enter(0);
    lock.Exit(0);
    const OpCounters before = ctx.counters;
    for (int i = 0; i < 10; ++i) {
      lock.Recover(0);
      lock.Enter(0);
      lock.Exit(0);
    }
    return (ctx.counters - before).cc_rmrs;
  };
  EXPECT_LT(measure(kary), measure(binary));
}

}  // namespace
}  // namespace rme
