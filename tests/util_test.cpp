// Unit tests for the util module: PRNG determinism, statistics,
// growth-curve classification, tables, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rme {
namespace {

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Prng, StreamsAreIndependent) {
  Prng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Prng, BoundedStaysInRange) {
  Prng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBounded(17), 17u);
  }
}

TEST(Prng, BoundedIsRoughlyUniform) {
  Prng r(11);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(Prng, BernoulliMatchesProbability) {
  Prng r(3);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.Bernoulli(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Prng, BernoulliEdgeCases) {
  Prng r(5);
  EXPECT_FALSE(r.Bernoulli(0.0));
  EXPECT_FALSE(r.Bernoulli(-1.0));
  EXPECT_TRUE(r.Bernoulli(1.0));
  EXPECT_TRUE(r.Bernoulli(2.0));
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, MergeMatchesConcatenation) {
  Summary a, b, all;
  Prng r(9);
  for (int i = 0; i < 100; ++i) {
    const double v = r.NextDouble();
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Percentiles, ExactQuantilesOnSmallSets) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  p.Finalize();
  EXPECT_EQ(p.observed(), 100u);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_NEAR(p.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.Quantile(0.5), 50.5, 1e-9);
}

TEST(Percentiles, ReservoirSamplesTheFullStreamNotItsPrefix) {
  // Stream 0..n-1 through a small reservoir. The old policy kept only the
  // first `capacity` samples, so every quantile collapsed into the warm-up
  // prefix (q50 ~ capacity/2); a uniform reservoir tracks the stream.
  const uint64_t n = 100000;
  Percentiles p(1000);
  for (uint64_t i = 0; i < n; ++i) p.Add(static_cast<double>(i));
  p.Finalize();
  EXPECT_EQ(p.observed(), n);
  EXPECT_EQ(p.size(), 1000u);
  EXPECT_NEAR(p.Quantile(0.5), 0.5 * static_cast<double>(n), 0.05 * n);
  EXPECT_NEAR(p.Quantile(0.9), 0.9 * static_cast<double>(n), 0.05 * n);
  EXPECT_GT(p.Quantile(1.0), 0.9 * static_cast<double>(n));
}

TEST(Percentiles, ReservoirIsDeterministicForAGivenSeed) {
  Percentiles a(64, 123), b(64, 123);
  for (int i = 0; i < 10000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  a.Finalize();
  b.Finalize();
  ASSERT_EQ(a.size(), b.size());
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_EQ(a.Quantile(q), b.Quantile(q));
  }
}

TEST(Histogram, CountsAndMerge) {
  Histogram h1, h2;
  h1.Add(0);
  h1.Add(1);
  h2.Add(1000);
  h1.Merge(h2);
  EXPECT_EQ(h1.count(), 3u);
  EXPECT_GE(h1.MaxBucketEdge(), 1000u);
}

TEST(GrowthFit, ConstantCurveIsO1) {
  std::vector<double> x{1, 2, 4, 8, 16, 32}, y{7, 7.2, 6.9, 7.1, 7, 7.05};
  EXPECT_EQ(ClassifyGrowth(x, y), "O(1)");
}

TEST(GrowthFit, SqrtCurve) {
  std::vector<double> x, y;
  for (double v : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::sqrt(v));
  }
  EXPECT_EQ(ClassifyGrowth(x, y), "~sqrt");
  EXPECT_NEAR(LogLogSlope(x, y), 0.5, 0.02);
}

TEST(GrowthFit, LinearCurve) {
  std::vector<double> x{1, 2, 4, 8, 16}, y{2, 4, 8, 16, 32};
  EXPECT_EQ(ClassifyGrowth(x, y), "~linear");
}

TEST(GrowthFit, IgnoresNonPositivePoints) {
  std::vector<double> x{0, 1, 2, 4}, y{5, 7, 7, 7};
  EXPECT_EQ(ClassifyGrowth(x, y), "O(1)");
}

TEST(Table, AlignedTextOutput) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string out = t.ToText();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b"});
  t.AddRow({"only"});
  EXPECT_EQ(t.ToCsv(), "a,b\nonly,\n");
}

TEST(Cli, ParsesTypes) {
  const char* argv[] = {"prog", "--n=8", "--p=0.5", "--flag", "--name=x"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.GetInt("n", 0), 8);
  EXPECT_DOUBLE_EQ(cli.GetDouble("p", 0), 0.5);
  EXPECT_TRUE(cli.GetBool("flag", false));
  EXPECT_EQ(cli.GetString("name", ""), "x");
  EXPECT_EQ(cli.GetInt("missing", 42), 42);
  EXPECT_FALSE(cli.Has("missing"));
}

}  // namespace
}  // namespace rme
