// Unit tests for the util module: PRNG determinism, statistics,
// growth-curve classification, tables, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rme {
namespace {

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Prng, StreamsAreIndependent) {
  Prng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Prng, BoundedStaysInRange) {
  Prng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBounded(17), 17u);
  }
}

TEST(Prng, BoundedIsRoughlyUniform) {
  Prng r(11);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(Prng, BernoulliMatchesProbability) {
  Prng r(3);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.Bernoulli(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Prng, BernoulliEdgeCases) {
  Prng r(5);
  EXPECT_FALSE(r.Bernoulli(0.0));
  EXPECT_FALSE(r.Bernoulli(-1.0));
  EXPECT_TRUE(r.Bernoulli(1.0));
  EXPECT_TRUE(r.Bernoulli(2.0));
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, MergeMatchesConcatenation) {
  Summary a, b, all;
  Prng r(9);
  for (int i = 0; i < 100; ++i) {
    const double v = r.NextDouble();
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Percentiles, ExactQuantilesOnSmallSets) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  p.Finalize();
  EXPECT_EQ(p.observed(), 100u);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_NEAR(p.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.Quantile(0.5), 50.5, 1e-9);
}

TEST(Percentiles, ReservoirSamplesTheFullStreamNotItsPrefix) {
  // Stream 0..n-1 through a small reservoir. The old policy kept only the
  // first `capacity` samples, so every quantile collapsed into the warm-up
  // prefix (q50 ~ capacity/2); a uniform reservoir tracks the stream.
  const uint64_t n = 100000;
  Percentiles p(1000);
  for (uint64_t i = 0; i < n; ++i) p.Add(static_cast<double>(i));
  p.Finalize();
  EXPECT_EQ(p.observed(), n);
  EXPECT_EQ(p.size(), 1000u);
  EXPECT_NEAR(p.Quantile(0.5), 0.5 * static_cast<double>(n), 0.05 * n);
  EXPECT_NEAR(p.Quantile(0.9), 0.9 * static_cast<double>(n), 0.05 * n);
  EXPECT_GT(p.Quantile(1.0), 0.9 * static_cast<double>(n));
}

TEST(Percentiles, ReservoirIsDeterministicForAGivenSeed) {
  Percentiles a(64, 123), b(64, 123);
  for (int i = 0; i < 10000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  a.Finalize();
  b.Finalize();
  ASSERT_EQ(a.size(), b.size());
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_EQ(a.Quantile(q), b.Quantile(q));
  }
}

TEST(Histogram, CountsAndMerge) {
  Histogram h1, h2;
  h1.Add(0);
  h1.Add(1);
  h2.Add(1000);
  h1.Merge(h2);
  EXPECT_EQ(h1.count(), 3u);
  EXPECT_GE(h1.MaxBucketEdge(), 1000u);
}

TEST(GrowthFit, ConstantCurveIsO1) {
  std::vector<double> x{1, 2, 4, 8, 16, 32}, y{7, 7.2, 6.9, 7.1, 7, 7.05};
  EXPECT_EQ(ClassifyGrowth(x, y), "O(1)");
}

TEST(GrowthFit, SqrtCurve) {
  std::vector<double> x, y;
  for (double v : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::sqrt(v));
  }
  EXPECT_EQ(ClassifyGrowth(x, y), "~sqrt");
  EXPECT_NEAR(LogLogSlope(x, y), 0.5, 0.02);
}

TEST(GrowthFit, LinearCurve) {
  std::vector<double> x{1, 2, 4, 8, 16}, y{2, 4, 8, 16, 32};
  EXPECT_EQ(ClassifyGrowth(x, y), "~linear");
}

TEST(GrowthFit, IgnoresNonPositivePoints) {
  std::vector<double> x{0, 1, 2, 4}, y{5, 7, 7, 7};
  EXPECT_EQ(ClassifyGrowth(x, y), "O(1)");
}

TEST(Table, AlignedTextOutput) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string out = t.ToText();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b"});
  t.AddRow({"only"});
  EXPECT_EQ(t.ToCsv(), "a,b\nonly,\n");
}

TEST(PercentilesMerge, ExactConcatWhenEverythingFits) {
  // Neither side ever subsampled and the union fits: Merge must be a
  // lossless concatenation — every quantile exact.
  Percentiles a(1000, 1), b(1000, 2);
  for (int i = 1; i <= 100; ++i) a.Add(i);
  for (int i = 101; i <= 200; ++i) b.Add(i);
  a.Merge(b);
  a.Finalize();
  EXPECT_EQ(a.observed(), 200u);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_NEAR(a.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(a.Quantile(0.5), 100.5, 1.0);
  EXPECT_NEAR(a.Quantile(1.0), 200.0, 1e-9);
}

TEST(PercentilesMerge, WeightsSidesByStreamSizeNotReservoirSize) {
  // Side A saw 90k samples of value ~0, side B saw 10k of value ~1000,
  // both through equal-capacity reservoirs. A correct weighted merge
  // yields ~10% high values — q50 low, q95 high; a naive 50/50 draw
  // would put q50 near the midpoint.
  Percentiles a(512, 3), b(512, 4);
  Prng rng(99);
  for (int i = 0; i < 90000; ++i) a.Add(rng.NextDouble());
  for (int i = 0; i < 10000; ++i) b.Add(1000.0 + rng.NextDouble());
  a.Merge(b);
  a.Finalize();
  EXPECT_EQ(a.observed(), 100000u);
  EXPECT_EQ(a.size(), 512u);
  EXPECT_LT(a.Quantile(0.5), 2.0);
  EXPECT_LT(a.Quantile(0.85), 2.0);
  EXPECT_GT(a.Quantile(0.95), 999.0);
}

TEST(PercentilesMerge, TracksPooledQuantilesAcrossManySources) {
  // The kv-service shape: N per-process reservoirs over the same latency
  // distribution folded into one. Pooled quantiles must match the
  // underlying stream within reservoir error.
  Percentiles merged(8 * 512, 5);
  Prng rng(7);
  for (int src = 0; src < 8; ++src) {
    Percentiles part(512, 100 + static_cast<uint64_t>(src));
    for (int i = 0; i < 20000; ++i) {
      part.Add(static_cast<double>(rng.NextBounded(100000)));
    }
    merged.Merge(part);
  }
  merged.Finalize();
  EXPECT_EQ(merged.observed(), 160000u);
  EXPECT_NEAR(merged.Quantile(0.5), 50000.0, 5000.0);
  EXPECT_NEAR(merged.Quantile(0.9), 90000.0, 5000.0);
}

TEST(PercentilesMerge, DeterministicForAGivenSeed) {
  auto build = [] {
    Percentiles out(256, 42);
    for (uint64_t src = 0; src < 4; ++src) {
      Percentiles part(256, src);
      Prng rng(1234 + src);
      for (int i = 0; i < 5000; ++i) part.Add(rng.NextDouble() * 1e6);
      out.Merge(part);
    }
    out.Finalize();
    return out;
  };
  Percentiles a = build(), b = build();
  ASSERT_EQ(a.size(), b.size());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.Quantile(q), b.Quantile(q));
  }
}

TEST(PercentilesMerge, MergeRawMatchesMergeAndHandlesSubsampledSides) {
  // MergeRaw is the shared-memory entry point (parent folding per-pid
  // segment reservoirs): same semantics as Merge on the same data.
  Percentiles via_merge(128, 9), via_raw(128, 9);
  Percentiles side(64, 11);
  for (int i = 0; i < 10000; ++i) side.Add(static_cast<double>(i % 97));
  std::vector<double> raw;
  for (size_t i = 0; i < side.size(); ++i) raw.push_back(side.sample(i));
  via_merge.Merge(side);
  via_raw.MergeRaw(raw.data(), raw.size(), side.observed());
  via_merge.Finalize();
  via_raw.Finalize();
  ASSERT_EQ(via_merge.size(), via_raw.size());
  EXPECT_EQ(via_merge.observed(), via_raw.observed());
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(via_merge.Quantile(q), via_raw.Quantile(q));
  }
}

TEST(Cli, ParsesTypes) {
  const char* argv[] = {"prog", "--n=8", "--p=0.5", "--flag", "--name=x"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.GetInt("n", 0), 8);
  EXPECT_DOUBLE_EQ(cli.GetDouble("p", 0), 0.5);
  EXPECT_TRUE(cli.GetBool("flag", false));
  EXPECT_EQ(cli.GetString("name", ""), "x");
  EXPECT_EQ(cli.GetInt("missing", 42), 42);
  EXPECT_FALSE(cli.Has("missing"));
}

}  // namespace
}  // namespace rme
