// FCFS (first-come-first-served) in the absence of failures: queue-based
// locks must grant the CS in arrival order. Arrival is serialized with
// generous real-time gaps so the doorway order is unambiguous.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/lock_registry.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

// Launches: p0 takes the lock and holds it while p1..p4 arrive one by
// one (200 ms apart); after p0 releases, CS grants must follow arrival
// order for FCFS locks.
std::vector<int> RunArrivalOrderProbe(RecoverableLock& lock) {
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<bool> holder_in{false};
  std::atomic<int> arrived{0};

  std::thread holder([&] {
    ProcessBinding bind(0, nullptr);
    lock.Recover(0);
    lock.Enter(0);
    holder_in = true;
    while (arrived.load() < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // All four waiters have been queued (with large gaps); release.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    lock.Exit(0);
    lock.OnProcessDone(0);
  });

  std::vector<std::thread> waiters;
  for (int i = 1; i <= 4; ++i) {
    waiters.emplace_back([&, i] {
      ProcessBinding bind(i, nullptr);
      while (!holder_in) std::this_thread::yield();
      // Stagger arrivals: waiter i arrives distinctly after waiter i-1.
      std::this_thread::sleep_for(std::chrono::milliseconds(120 * i));
      lock.Recover(i);
      arrived.fetch_add(1);
      lock.Enter(i);
      {
        std::lock_guard<std::mutex> lk(order_mu);
        order.push_back(i);
      }
      lock.Exit(i);
      lock.OnProcessDone(i);
    });
  }
  holder.join();
  for (auto& t : waiters) t.join();
  return order;
}

TEST(Fcfs, WrLockGrantsInArrivalOrder) {
  auto lock = MakeLock("wr", 8);
  const auto order = RunArrivalOrderProbe(*lock);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}))
      << "WR-Lock is FCFS in the absence of failures";
}

TEST(Fcfs, McsGrantsInArrivalOrder) {
  auto lock = MakeLock("mcs", 8);
  const auto order = RunArrivalOrderProbe(*lock);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Fcfs, TicketLockGrantsInArrivalOrder) {
  auto lock = MakeLock("cw-ticket", 8);
  const auto order = RunArrivalOrderProbe(*lock);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace rme
