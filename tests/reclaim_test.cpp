// Tests for Algorithm 4 (epoch-based node reclamation): allocation
// idempotency, pool cycling, reuse-safety distance, concurrent stress,
// and crash-interrupted epoch steps.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "crash/crash.hpp"
#include "reclaim/epoch_reclaimer.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

TEST(NodePool, LayoutAndHomes) {
  NodePool pool(4);
  EXPECT_EQ(pool.nodes_per_side(), 8);
  EXPECT_EQ(pool.TotalNodes(), 4u * 2u * 8u);
  EXPECT_EQ(pool.At(2, 0, 0)->owner, 2);
  EXPECT_EQ(pool.At(3, 1, 7)->owner, 3);
  EXPECT_NE(pool.At(0, 0, 0), pool.At(0, 1, 0));
}

TEST(EpochReclaimer, SameNodeUntilRetire) {
  EpochReclaimer r(2);
  ProcessBinding bind(0, nullptr);
  QNode* a = r.NewNode(0);
  EXPECT_EQ(r.NewNode(0), a);  // idempotent before retire
  EXPECT_EQ(r.NewNode(0), a);
  EXPECT_TRUE(r.HasActiveNode(0));
  r.RetireNode(0);
  EXPECT_FALSE(r.HasActiveNode(0));
  QNode* b = r.NewNode(0);
  EXPECT_NE(a, b);
}

TEST(EpochReclaimer, RetireIsIdempotent) {
  EpochReclaimer r(2);
  ProcessBinding bind(0, nullptr);
  QNode* a = r.NewNode(0);
  r.RetireNode(0);
  r.RetireNode(0);  // double retire must not skip a slot
  QNode* b = r.NewNode(0);
  EXPECT_NE(a, b);
  r.RetireNode(0);
  (void)a;
}

TEST(EpochReclaimer, ReuseDistanceIsAtLeastTwoPools) {
  // A node must not come back before 4n allocate/retire cycles.
  const int n = 3;
  EpochReclaimer r(n);
  ProcessBinding bind(0, nullptr);
  std::map<QNode*, int> last_seen;
  for (int i = 0; i < 100; ++i) {
    QNode* node = r.NewNode(0);
    auto it = last_seen.find(node);
    if (it != last_seen.end()) {
      EXPECT_GE(i - it->second, 4 * n) << "premature reuse at allocation " << i;
    }
    last_seen[node] = i;
    r.RetireNode(0);
  }
}

TEST(EpochReclaimer, PoolsSwapOverTime) {
  const int n = 2;
  EpochReclaimer r(n);
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 60; ++i) {
    r.NewNode(0);
    r.RetireNode(0);
  }
  EXPECT_GE(r.PoolSwaps(0), 2u);
}

TEST(EpochReclaimer, WaitReleasedByOtherProcessRetirements) {
  // Process 1 holds a node (in > out); process 0 churns until its epoch
  // scan must wait on process 1. Releasing p1's node lets p0 continue.
  const int n = 2;
  EpochReclaimer r(n);

  std::atomic<bool> p1_holding{false};
  std::atomic<bool> p0_done{false};

  std::thread t1([&] {
    ProcessBinding bind(1, nullptr);
    r.NewNode(1);
    p1_holding = true;
    // Hold until p0 has made good progress, then retire.
    while (!p0_done) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      // Retire after p0 has had a chance to block on us.
      static int ticks = 0;
      if (++ticks > 20) break;
    }
    r.RetireNode(1);
    // Keep serving retirements so p0's later waits pass immediately.
  });

  std::thread t0([&] {
    ProcessBinding bind(0, nullptr);
    while (!p1_holding) std::this_thread::yield();
    for (int i = 0; i < 200; ++i) {
      r.NewNode(0);
      r.RetireNode(0);
    }
    p0_done = true;
  });

  t0.join();
  t1.join();
  EXPECT_TRUE(p0_done.load());
}

TEST(EpochReclaimer, CrashDuringEpochStepResumes) {
  // Crash the allocator mid-Epoch repeatedly; the state machine must
  // resume without skipping safety steps. Crashes make Epoch steps run
  // MORE often (each retry takes one), so pools may swap faster than
  // every 2n allocations — the safety invariant that survives is that a
  // node never returns before at least two intervening pool swaps (one
  // full scan+wait cycle ran strictly after its retirement).
  const int n = 2;
  EpochReclaimer r(n, "rc");
  RandomCrash crash(7, 0.05, -1);
  ProcessBinding bind(0, &crash);
  std::map<QNode*, uint64_t> swap_at_use;
  for (int i = 0; i < 200; ++i) {
    QNode* node = nullptr;
    for (;;) {
      try {
        node = r.NewNode(0);
        break;
      } catch (const ProcessCrash&) {
        // retry, as the WR lock's Enter would
      }
    }
    const uint64_t swaps = r.PoolSwaps(0);
    auto it = swap_at_use.find(node);
    if (it != swap_at_use.end()) {
      EXPECT_GE(swaps - it->second, 2u) << "reused without a full cycle";
    }
    swap_at_use[node] = swaps;
    for (;;) {
      try {
        r.RetireNode(0);
        break;
      } catch (const ProcessCrash&) {
      }
    }
  }
}

TEST(EpochReclaimer, ConcurrentChurnAllProcesses) {
  const int n = 8;
  EpochReclaimer r(n);
  std::vector<std::thread> threads;
  std::atomic<bool> premature{false};
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      ProcessBinding bind(pid, nullptr);
      std::map<QNode*, int> last_seen;
      for (int i = 0; i < 300; ++i) {
        QNode* node = r.NewNode(pid);
        auto it = last_seen.find(node);
        if (it != last_seen.end() && i - it->second < 4 * n) {
          premature = true;
        }
        if (node->owner != pid) premature = true;
        last_seen[node] = i;
        r.RetireNode(pid);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(premature.load());
}

}  // namespace
}  // namespace rme
