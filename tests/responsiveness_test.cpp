// Theorem 4.2 (responsiveness of WR-Lock), checked exactly on the
// deterministic simulator: whenever k+1 processes occupy the CS
// simultaneously, at least k unsafe failures' consequence intervals are
// active at that moment. The simulator removes the timing races that
// make this check statistical under real threads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

TEST(Responsiveness, HeavyUnsafeStormNeverExceedsCoverage) {
  int total_overlap_runs = 0;
  for (uint64_t seed = 1; seed <= 80; ++seed) {
    auto lock = MakeLock("wr", 5);
    SimWorkloadConfig cfg;
    cfg.num_procs = 5;
    cfg.passages_per_proc = 12;
    cfg.seed = seed;
    // Unsafe failures only: every 4th filter FAS crashes its issuer.
    SpacedSiteCrash crash("tail.fas", 4, 30);
    const SimResult r = RunSimWorkload(*lock, cfg, &crash);
    ASSERT_TRUE(r.ran_to_completion) << "seed " << seed;
    EXPECT_EQ(r.me_violations, 0u) << "seed " << seed;
    EXPECT_EQ(r.responsiveness_deficits, 0u)
        << "Thm 4.2 violated at seed " << seed << " (max concurrent "
        << r.max_concurrent_cs << ", unsafe " << r.unsafe_failures << ")";
    if (r.max_concurrent_cs > 1) ++total_overlap_runs;
  }
  // The property must have been exercised, not vacuously true.
  EXPECT_GT(total_overlap_runs, 5);
}

TEST(Responsiveness, SafeCrashesNeverCauseOverlap) {
  // Crashes everywhere EXCEPT the sensitive FAS window must preserve
  // strict mutual exclusion (every instruction but the FAS is
  // non-sensitive, Def 3.3).
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    auto lock = MakeLock("wr", 4);
    SimWorkloadConfig cfg;
    cfg.num_procs = 4;
    cfg.passages_per_proc = 10;
    cfg.seed = seed;
    // "wr.op" covers every instruction of the lock except the FAS and
    // the pred-persist; reclaimer sites are also safe.
    SpacedSiteCrash crash("wr.op", 9, 25);
    const SimResult r = RunSimWorkload(*lock, cfg, &crash);
    ASSERT_TRUE(r.ran_to_completion) << "seed " << seed;
    EXPECT_GT(r.failures, 0u);
    EXPECT_EQ(r.unsafe_failures, 0u);
    EXPECT_EQ(r.max_concurrent_cs, 1)
        << "safe failure broke ME at seed " << seed;
  }
}

TEST(Responsiveness, ReclaimerCrashesAreSafe) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto lock = MakeLock("wr", 4);
    SimWorkloadConfig cfg;
    cfg.num_procs = 4;
    cfg.passages_per_proc = 10;
    cfg.seed = seed;
    SpacedSiteCrash crash("reclaim.ctr", 5, 25);
    const SimResult r = RunSimWorkload(*lock, cfg, &crash);
    ASSERT_TRUE(r.ran_to_completion) << "seed " << seed;
    EXPECT_EQ(r.unsafe_failures, 0u);
    EXPECT_EQ(r.max_concurrent_cs, 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rme
