// Self-tests for the invariant checkers: the verification machinery must
// itself be verified — a checker that can't detect violations proves
// nothing. Deliberately broken locks must trip the right alarms.
#include <gtest/gtest.h>

#include "crash/failure_log.hpp"
#include "rmr/counters.hpp"
#include "runtime/checkers.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

TEST(MeChecker, DetectsOverlapOnStrongLock) {
  FailureLog log(2);
  MeChecker checker(/*strong=*/true, &log);
  checker.EnterCS(0);
  checker.EnterCS(1);  // overlap!
  EXPECT_EQ(checker.me_violations(), 1u);
  EXPECT_EQ(checker.max_concurrent(), 2);
  checker.ExitCS(1);
  checker.ExitCS(0);
}

TEST(MeChecker, WeakLockOverlapNeedsActiveInterval) {
  FailureLog log(2);
  MeChecker checker(/*strong=*/false, &log);
  // No failure recorded: an overlap is a genuine violation.
  checker.EnterCS(0);
  checker.EnterCS(1);
  EXPECT_EQ(checker.me_violations(), 1u);
  checker.ExitCS(1);
  checker.ExitCS(0);

  // With an active unsafe failure interval, the same overlap is covered.
  log.OnRequestStart(0);
  log.RecordFailure(0, 1, "x.tail.fas", true, /*unsafe=*/true);
  checker.EnterCS(0);
  checker.EnterCS(1);
  EXPECT_EQ(checker.me_violations(), 1u) << "count must not grow";
  EXPECT_EQ(checker.responsiveness_deficits(), 0u)
      << "1 extra process in CS is covered by 1 unsafe failure";
  checker.ExitCS(1);
  checker.ExitCS(0);
}

TEST(MeChecker, ResponsivenessDeficitWhenCoverageInsufficient) {
  FailureLog log(4);
  MeChecker checker(/*strong=*/false, &log);
  // One SAFE failure active: covers Def 3.2 but not Thm 4.2 for k=2.
  log.OnRequestStart(0);
  log.RecordFailure(0, 1, "x.op", true, /*unsafe=*/false);
  checker.EnterCS(0);
  checker.EnterCS(1);
  checker.EnterCS(2);  // 3 in CS: needs >= 2 active UNSAFE failures
  EXPECT_EQ(checker.me_violations(), 0u) << "covered by an interval";
  EXPECT_GE(checker.responsiveness_deficits(), 1u);
  checker.ExitCS(2);
  checker.ExitCS(1);
  checker.ExitCS(0);
}

TEST(MeChecker, BcsrViolationWhenIntruderEntersBeforeReentry) {
  FailureLog log(2);
  MeChecker checker(/*strong=*/true, &log);
  checker.EnterCS(0);
  checker.OnCrashInCS(0);  // p0 crashed holding the CS
  checker.EnterCS(1);      // p1 barges in before p0 re-entered
  EXPECT_EQ(checker.bcsr_violations(), 1u);
  checker.ExitCS(1);
  // p0 re-enters: its pending flag clears; no further violations.
  checker.EnterCS(0);
  checker.ExitCS(0);
  checker.EnterCS(1);
  EXPECT_EQ(checker.bcsr_violations(), 1u);
  checker.ExitCS(1);
}

TEST(MeChecker, ReentryByOwnerIsClean) {
  FailureLog log(2);
  MeChecker checker(/*strong=*/true, &log);
  checker.EnterCS(0);
  checker.OnCrashInCS(0);
  checker.EnterCS(0);  // the crashed process itself re-enters: fine
  EXPECT_EQ(checker.bcsr_violations(), 0u);
  EXPECT_EQ(checker.me_violations(), 0u);
  checker.ExitCS(0);
}

// End-to-end: a lock that grants everyone entry must light up the
// harness's ME counter (validates the full plumbing, not just the
// checker object).
class BrokenLock final : public RecoverableLock {
 public:
  void Recover(int) override {}
  void Enter(int) override {}  // "sure, come in"
  void Exit(int) override {}
  std::string name() const override { return "broken"; }
};

TEST(HarnessChecking, BrokenLockIsCaught) {
  BrokenLock lock;
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 300;
  cfg.cs_shared_ops = 8;
  cfg.cs_yields = 2;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_GT(r.me_violations, 0u)
      << "a no-op lock must be detected under contention";
  EXPECT_GT(r.max_concurrent_cs, 1);
}

}  // namespace
}  // namespace rme
