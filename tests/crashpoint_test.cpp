// Exhaustive crash-point sweep, on the deterministic simulator: for
// every lock in the zoo, crash process 0 at its k-th shared-memory
// operation, for every k across several passages' worth of operations,
// and verify the run still satisfies the lock's full contract. This
// systematically exercises every recovery window in every algorithm —
// including the windows that only a crash at one specific instruction
// can reach (e.g. between a FAS and its persist, between a pool flip and
// its confirmation, between an exit's claim-clear and state-free).
#include <gtest/gtest.h>

#include <memory>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

class CrashPointSweep : public ::testing::TestWithParam<std::string> {};

std::string SweepName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

// One run with a single injected crash at p0's k-th shared op.
void RunWithCrashAt(const std::string& lock_name, uint64_t k, uint64_t seed) {
  auto lock = MakeLock(lock_name, 3);
  SimWorkloadConfig cfg;
  cfg.num_procs = 3;
  cfg.passages_per_proc = 6;
  cfg.seed = seed;
  NthOpCrash crash(0, k);
  const SimResult r = RunSimWorkload(*lock, cfg, &crash);
  ASSERT_TRUE(r.ran_to_completion)
      << lock_name << ": stuck after crash at op " << k;
  EXPECT_EQ(r.completed_passages, 3u * 6u)
      << lock_name << ": lost passages after crash at op " << k;
  EXPECT_EQ(r.me_violations, 0u)
      << lock_name << ": ME broken by crash at op " << k;
  if (lock->IsStronglyRecoverable()) {
    EXPECT_EQ(r.max_concurrent_cs, 1)
        << lock_name << ": overlap caused by crash at op " << k;
    EXPECT_EQ(r.bcsr_violations, 0u)
        << lock_name << ": BCSR broken by crash at op " << k;
  }
}

TEST_P(CrashPointSweep, EverySingleCrashPointRecovers) {
  const std::string& lock_name = GetParam();
  // Sweep the first ~3 passages' worth of p0's operations, two schedules
  // each (different seeds explore different concurrent contexts for the
  // same crash point).
  for (uint64_t k = 1; k <= 150; ++k) {
    RunWithCrashAt(lock_name, k, /*seed=*/1000 + k);
    RunWithCrashAt(lock_name, k, /*seed=*/7777 + 13 * k);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, CrashPointSweep,
                         ::testing::ValuesIn(RecoverableLockNames()),
                         SweepName);

// Double-crash sweep on the frameworks: a second crash landing during
// the recovery of the first (every 7th pair to keep runtime sane).
class DoubleCrashSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DoubleCrashSweep, CrashDuringRecoveryRecovers) {
  const std::string& lock_name = GetParam();
  for (uint64_t k = 3; k <= 90; k += 7) {
    for (uint64_t gap = 1; gap <= 20; gap += 6) {
      auto lock = MakeLock(lock_name, 3);
      SimWorkloadConfig cfg;
      cfg.num_procs = 3;
      cfg.passages_per_proc = 5;
      cfg.seed = 31 * k + gap;
      NthOpCrash first(0, k);
      NthOpCrash second(0, k + gap);  // lands mid-recovery of the first
      CompositeCrash crash({&first, &second});
      const SimResult r = RunSimWorkload(*lock, cfg, &crash);
      ASSERT_TRUE(r.ran_to_completion)
          << lock_name << ": stuck, crashes at ops " << k << "," << k + gap;
      EXPECT_EQ(r.completed_passages, 3u * 5u) << lock_name;
      EXPECT_EQ(r.me_violations, 0u)
          << lock_name << ": crashes at ops " << k << "," << k + gap;
      if (HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Frameworks, DoubleCrashSweep,
                         ::testing::Values("wr", "sa", "ba", "ba-iter", "kport-tree",
                                           "ya-tournament", "gr-adaptive",
                                           "gr-semi"),
                         SweepName);

// Crash EVERY process at the same nth op — a batch-like simultaneous
// wipeout of all private state.
TEST(CrashPointSweep, SimultaneousCrashAllProcesses) {
  for (const auto& lock_name : RecoverableLockNames()) {
    for (uint64_t k : {5u, 17u, 33u, 52u}) {
      auto lock = MakeLock(lock_name, 3);
      SimWorkloadConfig cfg;
      cfg.num_procs = 3;
      cfg.passages_per_proc = 5;
      cfg.seed = k * 17;
      NthOpCrash c0(0, k), c1(1, k), c2(2, k);
      CompositeCrash crash({&c0, &c1, &c2});
      const SimResult r = RunSimWorkload(*lock, cfg, &crash);
      ASSERT_TRUE(r.ran_to_completion) << lock_name << " k=" << k;
      EXPECT_EQ(r.completed_passages, 3u * 5u) << lock_name << " k=" << k;
      EXPECT_EQ(r.me_violations, 0u) << lock_name << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace rme
