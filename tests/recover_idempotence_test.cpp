// Recover() idempotence across the whole registry. The paper's model
// allows a process to be killed *inside* Recover itself (the fork
// harness's recovery-storm regime does exactly that), so a respawn
// re-runs Recover from the top — possibly many times in a row, with no
// intervening Enter. Every recoverable lock must treat a repeated
// Recover as a no-op: no wedging, no spurious acquisition, and clean
// passages afterwards.
#include <gtest/gtest.h>

#include <string>

#include "core/lock_registry.hpp"
#include "locks/lock.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

TEST(RecoverIdempotence, DoubleRecoverIsANoOpForEveryRegistryLock) {
  for (const std::string& name : RecoverableLockNames()) {
    SCOPED_TRACE(name);
    auto lock = MakeLock(name, 4);
    ProcessBinding bind(0, nullptr);
    // Fresh state: back-to-back Recovers before any request.
    lock->Recover(0);
    lock->Recover(0);
    // Between full passages: each attempt replays Recover twice, as a
    // respawn killed inside its first Recover would.
    for (int i = 0; i < 3; ++i) {
      lock->Recover(0);
      lock->Recover(0);
      lock->Enter(0);
      lock->Exit(0);
    }
    lock->OnProcessDone(0);
  }
}

TEST(RecoverIdempotence, FreshPidRecoverIsANoOpAndBlocksNobody) {
  for (const std::string& name : RecoverableLockNames()) {
    SCOPED_TRACE(name);
    auto lock = MakeLock(name, 4);
    // pid 3 never issued a request; its Recover must not acquire
    // anything or leave residue that blocks pid 0's passage.
    {
      ProcessBinding bind(3, nullptr);
      lock->Recover(3);
      lock->Recover(3);
    }
    {
      ProcessBinding bind(0, nullptr);
      lock->Recover(0);
      lock->Enter(0);
      lock->Exit(0);
      lock->OnProcessDone(0);
    }
    // Still a no-op after real traffic went through the lock.
    {
      ProcessBinding bind(3, nullptr);
      lock->Recover(3);
      lock->Recover(3);
      lock->OnProcessDone(3);
    }
  }
}

}  // namespace
}  // namespace rme
