// Tests for YaTournamentLock (the Golab–Ramaraju n-process O(log n)
// lock built from recoverable Yang–Anderson / arbitrator nodes).
#include <gtest/gtest.h>

#include "crash/crash.hpp"
#include "locks/ya_tournament_lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/harness.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

TEST(YaTournament, DepthIsCeilLog2) {
  EXPECT_EQ(YaTournamentLock(2).depth(), 1);
  EXPECT_EQ(YaTournamentLock(3).depth(), 2);
  EXPECT_EQ(YaTournamentLock(8).depth(), 3);
  EXPECT_EQ(YaTournamentLock(9).depth(), 4);
  EXPECT_EQ(YaTournamentLock(64).depth(), 6);
}

TEST(YaTournament, MutualExclusionUnderContention) {
  YaTournamentLock lock(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 200;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.max_concurrent_cs, 1);
  EXPECT_EQ(r.completed_passages, 8u * 200u);
}

TEST(YaTournament, CrashStormStaysExclusiveAndLive) {
  YaTournamentLock lock(8, "yas");
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 120;
  RandomCrash crash(47, 0.002, -1);
  const RunResult r = RunWorkload(lock, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_GT(r.failures, 0u);
  EXPECT_EQ(r.completed_passages, 8u * 120u);
}

TEST(YaTournament, RmrScalesWithDepthBothModels) {
  // O(log n) in both CC and DSM — the arbitrator waits locally, so the
  // DSM count per passage is also ~depth, not ~spin-iterations.
  for (int n : {4, 16, 64}) {
    YaTournamentLock lock(n);
    ProcessBinding bind(0, nullptr);
    lock.Recover(0);
    lock.Enter(0);
    lock.Exit(0);
    ProcessContext& ctx = CurrentProcess();
    const OpCounters before = ctx.counters;
    lock.Recover(0);
    lock.Enter(0);
    lock.Exit(0);
    const OpCounters d = ctx.counters - before;
    EXPECT_LE(d.cc_rmrs, 16u * static_cast<uint64_t>(lock.depth())) << n;
    EXPECT_LE(d.dsm_rmrs, 16u * static_cast<uint64_t>(lock.depth())) << n;
  }
}

TEST(YaTournament, SimSeedSweepWithUnsafePressure) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    YaTournamentLock lock(5, "yaz");
    SimWorkloadConfig cfg;
    cfg.num_procs = 5;
    cfg.passages_per_proc = 10;
    cfg.seed = seed;
    SpacedSiteCrash crash("arb.op", 15, 30);  // crashes inside the nodes
    const SimResult r = RunSimWorkload(lock, cfg, &crash);
    ASSERT_TRUE(r.ran_to_completion) << "seed " << seed;
    EXPECT_EQ(r.me_violations, 0u) << "seed " << seed;
    EXPECT_EQ(r.max_concurrent_cs, 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rme
