// White-box recovery-window tests for the GR-style baselines: epoch
// bumps on acquisition crashes, gate-win adoption, and gr-semi's divert
// persistence — the windows that define their Table-1 rows.
#include <gtest/gtest.h>

#include <memory>

#include "crash/crash.hpp"
#include "locks/gr_adaptive_lock.hpp"
#include "locks/gr_semi_lock.hpp"
#include "rmr/counters.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

TEST(GrAdaptive, CrashInEnterBumpsEpoch) {
  GrAdaptiveLock lock(2, "gra");
  const uint64_t before = lock.EpochRaw();
  // Crash p0 early in Enter (after the state->Trying store).
  SiteCrash crash(0, "gra.op", /*after_op=*/true, /*nth=*/3);  // after state->Trying
  {
    ProcessBinding bind(0, &crash);
    lock.Recover(0);
    EXPECT_THROW(lock.Enter(0), ProcessCrash);
  }
  {
    ProcessBinding bind(0, nullptr);
    lock.Recover(0);  // detects Trying without the gate: resets the lock
    EXPECT_EQ(lock.EpochRaw(), before + 1);
    lock.Enter(0);
    lock.Exit(0);
  }
}

TEST(GrAdaptive, GateWinIsAdoptedNotRetried) {
  // Crash after winning the owner gate but before recording InCS: the
  // recovery must adopt the win (state -> InCS) WITHOUT bumping the
  // epoch — re-acquiring would deadlock against itself.
  GrAdaptiveLock lock(2, "grb");
  ProcessBinding bind(0, nullptr);
  lock.Recover(0);
  lock.Enter(0);
  // Simulate the window: we hold the gate, state reads InCS; a recovery
  // pass from here must be a no-op adoption.
  const uint64_t epoch = lock.EpochRaw();
  lock.Recover(0);
  EXPECT_EQ(lock.EpochRaw(), epoch) << "no reset while holding the gate";
  lock.Exit(0);
}

TEST(GrAdaptive, CrashStormEpochsStayBounded) {
  // Each crash bumps at most one epoch: total epochs <= failures.
  auto lock = std::make_unique<GrAdaptiveLock>(4, "grc");
  SimWorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 20;
  cfg.seed = 5;
  RandomCrash crash(9, 0.004, -1);
  const SimResult r = RunSimWorkload(*lock, cfg, &crash);
  ASSERT_TRUE(r.ran_to_completion);
  EXPECT_LE(lock->EpochRaw(), r.failures);
  EXPECT_EQ(r.me_violations, 0u);
}

TEST(GrSemi, VictimsDivertAndRecover) {
  // A crash during acquisition must divert the victim to the slow path
  // for the remainder of that super-passage, and the passage must still
  // complete with strict ME across seeds.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto lock = std::make_unique<GrSemiLock>(4, "grs");
    SimWorkloadConfig cfg;
    cfg.num_procs = 4;
    cfg.passages_per_proc = 12;
    cfg.seed = seed;
    SpacedSiteCrash crash("grs.op", 40, 15);
    const SimResult r = RunSimWorkload(*lock, cfg, &crash);
    ASSERT_TRUE(r.ran_to_completion) << "seed " << seed;
    EXPECT_EQ(r.me_violations, 0u) << "seed " << seed;
    EXPECT_EQ(r.max_concurrent_cs, 1) << "seed " << seed;
    EXPECT_EQ(r.completed_passages, 48u) << "seed " << seed;
  }
}

TEST(GrSemi, DivertedPassagePaysThetaN) {
  // Deterministic: crash p0 mid-acquisition; its recovery passage must
  // include the Theta(n) reset scan (n reads of the reset slots).
  const int n = 32;
  GrSemiLock lock(n, "grd");
  SiteCrash crash(0, "grd.op", /*after_op=*/true, /*nth=*/4);  // after state->Trying
  {
    ProcessBinding bind(0, &crash);
    lock.Recover(0);
    EXPECT_THROW(lock.Enter(0), ProcessCrash);
  }
  {
    ProcessBinding bind(0, nullptr);
    ProcessContext& ctx = CurrentProcess();
    const OpCounters before = ctx.counters;
    lock.Recover(0);
    lock.Enter(0);
    const OpCounters d = ctx.counters - before;
    EXPECT_GE(d.ops, static_cast<uint64_t>(n))
        << "the abort/reset bill must include the n-slot scan";
    lock.Exit(0);
  }
}

}  // namespace
}  // namespace rme
