// Tests for IterBaLock (the §7.3 cursor optimization): behavioural
// equivalence with the nested BaLock, cursor discipline, resumed
// descents, and the recovery-cost saving the cursor buys.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "core/iter_ba_lock.hpp"
#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "rmr/counters.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

std::unique_ptr<IterBaLock> Make(int n, int m, bool cursor,
                                 const std::string& label = "iba") {
  return std::make_unique<IterBaLock>(
      n, m, std::make_unique<KPortTreeLock>(n, label + ".base"), cursor,
      label);
}

TEST(IterBa, SingleProcessPassages) {
  auto lock = Make(2, 3, true);
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 8; ++i) {
    lock->Recover(0);
    lock->Enter(0);
    EXPECT_EQ(lock->LastPathDepth(0), 1) << "failure-free => level 1";
    EXPECT_EQ(lock->CursorOf(0), 1u) << "fast at level 1 holds one filter";
    lock->Exit(0);
    EXPECT_EQ(lock->CursorOf(0), 0u) << "exit returns every filter";
  }
  lock->OnProcessDone(0);
}

TEST(IterBa, SensitiveSitesAreAllLevelFilters) {
  auto lock = Make(2, 2, true, "ibx");
  EXPECT_TRUE(lock->IsSensitiveSite("ibx.L1.filter.tail.fas", true));
  EXPECT_TRUE(lock->IsSensitiveSite("ibx.L2.filter.tail.fas", true));
  EXPECT_FALSE(lock->IsSensitiveSite("ibx.L1.arb.op", true));
  EXPECT_FALSE(lock->IsSensitiveSite("ibx.L1.split.op", true));
}

class IterBaSweep : public ::testing::TestWithParam<bool> {};

TEST_P(IterBaSweep, CrashStormInvariantsAcrossSeeds) {
  const bool cursor = GetParam();
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto lock = Make(4, 4, cursor);
    SimWorkloadConfig cfg;
    cfg.num_procs = 4;
    cfg.passages_per_proc = 10;
    cfg.seed = seed;
    RandomCrash crash(seed * 13, 0.004, -1);
    const SimResult r = RunSimWorkload(*lock, cfg, &crash);
    ASSERT_TRUE(r.ran_to_completion) << "cursor=" << cursor << " seed " << seed;
    EXPECT_EQ(r.completed_passages, 40u) << "seed " << seed;
    EXPECT_EQ(r.me_violations, 0u) << "seed " << seed;
    EXPECT_EQ(r.max_concurrent_cs, 1) << "seed " << seed;
    EXPECT_EQ(r.bcsr_violations, 0u) << "seed " << seed;
  }
}

TEST_P(IterBaSweep, UnsafeFilterStormInvariants) {
  const bool cursor = GetParam();
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto lock = Make(4, 4, cursor);
    SimWorkloadConfig cfg;
    cfg.num_procs = 4;
    cfg.passages_per_proc = 10;
    cfg.seed = seed;
    SpacedSiteCrash crash("filter.tail.fas", 6, 40);
    const SimResult r = RunSimWorkload(*lock, cfg, &crash);
    ASSERT_TRUE(r.ran_to_completion) << "cursor=" << cursor << " seed " << seed;
    EXPECT_EQ(r.me_violations, 0u) << "seed " << seed;
    EXPECT_EQ(r.max_concurrent_cs, 1) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(CursorOnOff, IterBaSweep, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("cursor")
                                             : std::string("nocursor");
                         });

TEST(IterBa, CursorResumesInsteadOfRewalking) {
  // Deterministic: p0 holds the level-1 fast path, diverting p1 to
  // level 2+. Crash p1 repeatedly while it waits on the level-1
  // arbitrator; with the cursor its recovery must NOT re-enter the
  // level-1 filter (resumed descents > 0 and recovery op counts stay
  // flat), and invariants must hold throughout.
  auto lock = Make(2, 3, true);
  std::atomic<bool> p0_in{false};
  std::atomic<int> crash_count{0};
  std::thread t0([&] {
    ProcessBinding bind(0, nullptr);
    lock->Recover(0);
    lock->Enter(0);  // fast at level 1: owns splitter L1, filter L1
    p0_in = true;
    // Hold until p1 has crashed (and resumed) three times, then let it in.
    while (crash_count.load() < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    lock->Exit(0);
    lock->OnProcessDone(0);
  });
  std::thread t1([&] {
    ProcessBinding bind(1, nullptr);
    while (!p0_in) std::this_thread::yield();
    // Crash 1: the unsafe window of the level-1 filter. p1's retry then
    // re-acquires the (reset) filter concurrently with p0, loses the
    // splitter to p0 and descends: fast at level 2, cursor = 2, waiting
    // on the level-1 arbitrator's Right side behind p0.
    // Crashes 2-3: while waiting there; recovery must RESUME (splitter
    // L2 owned), not re-walk from level 1.
    SiteCrash divert(1, "iba.L1.filter.tail.fas", /*after_op=*/true);
    NthOpCrash c2(1, 400), c3(1, 800);
    CompositeCrash crash({&divert, &c2, &c3});
    CurrentProcess().SetCrashController(&crash);
    int post_divert_crashes = 0;
    for (;;) {
      try {
        lock->Recover(1);
        lock->Enter(1);
        break;
      } catch (const ProcessCrash& cr) {
        crash_count.fetch_add(1);
        if (std::string(cr.site) != "iba.L1.filter.tail.fas") {
          ++post_divert_crashes;
          EXPECT_GE(lock->CursorOf(1), 1u)
              << "diverted process must be holding level filters";
        }
      }
    }
    EXPECT_GE(lock->LastPathDepth(1), 2) << "p1 should have escalated";
    lock->Exit(1);
    EXPECT_EQ(lock->CursorOf(1), 0u);
    CurrentProcess().SetCrashController(nullptr);
    lock->OnProcessDone(1);
    EXPECT_GE(post_divert_crashes, 2);
  });
  t0.join();
  t1.join();
  const std::string stats = lock->StatsString();
  const size_t pos = stats.find("resumed-descents=");
  ASSERT_NE(pos, std::string::npos);
  const int resumed = std::stoi(stats.substr(pos + 17));
  EXPECT_GE(resumed, 2) << "post-diversion crashes must resume, not re-walk";
  EXPECT_NE(lock->StatsString().find("resumed-descents="), std::string::npos);
}

TEST(IterBa, MatchesNestedBaOnCleanRuns) {
  // Equivalence smoke: same failure-free RMR class as the nested BaLock.
  auto iter = MakeLock("ba-iter", 8);
  auto nested = MakeLock("ba", 8);
  SimWorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 20;
  cfg.seed = 3;
  const SimResult ri = RunSimWorkload(*iter, cfg, nullptr);
  const SimResult rn = RunSimWorkload(*nested, cfg, nullptr);
  ASSERT_TRUE(ri.ran_to_completion);
  ASSERT_TRUE(rn.ran_to_completion);
  EXPECT_EQ(ri.me_violations, 0u);
  // Identical level-1 composition => means within a small factor.
  EXPECT_NEAR(ri.passage_cc.mean(), rn.passage_cc.mean(),
              0.5 * rn.passage_cc.mean());
}

}  // namespace
}  // namespace rme
