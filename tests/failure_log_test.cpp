// Unit tests for consequence-interval bookkeeping (Def 3.1).
#include <gtest/gtest.h>

#include "crash/failure_log.hpp"

namespace rme {
namespace {

TEST(FailureLog, NoFailuresNothingActive) {
  FailureLog log(4);
  EXPECT_EQ(log.TotalFailures(), 0u);
  EXPECT_EQ(log.ActiveFailures(), 0u);
  EXPECT_FALSE(log.AnyActive());
}

TEST(FailureLog, IntervalEndsWhenPendingRequestsSatisfied) {
  FailureLog log(3);
  log.OnRequestStart(0);
  log.OnRequestStart(1);
  log.RecordFailure(0, 10, "site", true, true);
  // Both requests were pending at the failure: interval active.
  EXPECT_EQ(log.ActiveFailures(), 1u);
  log.OnRequestComplete(0);
  EXPECT_EQ(log.ActiveFailures(), 1u);  // p1 still pending
  log.OnRequestComplete(1);
  EXPECT_EQ(log.ActiveFailures(), 0u);  // Def 3.1: all pre-failure
                                        // requests satisfied
}

TEST(FailureLog, RequestsAfterFailureDoNotExtendInterval) {
  FailureLog log(2);
  log.OnRequestStart(0);
  log.RecordFailure(0, 5, "s", true, false);
  log.OnRequestComplete(0);
  // A new request started after the failure is not in its snapshot.
  log.OnRequestStart(1);
  EXPECT_EQ(log.ActiveFailures(), 0u);
}

TEST(FailureLog, UnsafeOnlyFilter) {
  FailureLog log(2);
  log.OnRequestStart(0);
  log.RecordFailure(0, 1, "safe-site", true, false);
  log.RecordFailure(0, 2, "fas-site", true, true);
  EXPECT_EQ(log.ActiveFailures(), 2u);
  EXPECT_EQ(log.ActiveFailures(/*unsafe_only=*/true), 1u);
}

TEST(FailureLog, RecordsCarryMetadata) {
  FailureLog log(2);
  log.OnRequestStart(1);
  log.RecordFailure(1, 99, "wr.tail.fas", true, true);
  const auto records = log.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].pid, 1);
  EXPECT_EQ(records[0].time, 99u);
  EXPECT_EQ(records[0].site, "wr.tail.fas");
  EXPECT_TRUE(records[0].unsafe);
  EXPECT_EQ(records[0].pending_req[1], 1u);
  EXPECT_EQ(records[0].pending_req[0], 0u);
}

TEST(FailureLog, MultipleFailuresCountedIndependently) {
  FailureLog log(4);
  log.OnRequestStart(0);
  log.RecordFailure(0, 1, "s", true, true);
  log.OnRequestComplete(0);
  log.OnRequestStart(1);
  log.RecordFailure(1, 2, "s", true, true);
  EXPECT_EQ(log.TotalFailures(), 2u);
  EXPECT_EQ(log.ActiveFailures(), 1u);  // only the second is active
  log.OnRequestComplete(1);
  EXPECT_EQ(log.ActiveFailures(), 0u);
}

TEST(FailureLog, SuperPassageSpansMultipleAttempts) {
  FailureLog log(2);
  const uint64_t req = log.OnRequestStart(0);
  EXPECT_EQ(req, 1u);
  log.RecordFailure(0, 1, "s", true, false);  // attempt 1 crashes
  log.RecordFailure(0, 2, "s", true, false);  // attempt 2 crashes
  EXPECT_EQ(log.ActiveFailures(), 2u);
  log.OnRequestComplete(0);  // attempt 3 is failure-free
  EXPECT_EQ(log.ActiveFailures(), 0u);
}

}  // namespace
}  // namespace rme
