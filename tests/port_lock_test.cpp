// Tests for the k-port ring lock: ticket FIFO, crash-recoverable ticket
// claims (orphan adoption), exit idempotency, contention storms.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "crash/crash.hpp"
#include "locks/port_lock.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

TEST(PortLock, UncontendedPassages) {
  PortLock lock(4, 8);
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 20; ++i) {
    lock.Recover(0, 0);
    lock.Enter(0, 0);
    lock.Exit(0, 0);
  }
  EXPECT_EQ(lock.HeadTicket(), 20u);
  EXPECT_EQ(lock.TailTicket(), 20u);
}

TEST(PortLock, PortsShareFifoOrder) {
  PortLock lock(2, 4);
  // Port 0 takes ticket 0 and holds; port 1 takes ticket 1 and must wait.
  std::atomic<bool> p0_in{false}, p1_in{false};
  std::thread t0([&] {
    ProcessBinding bind(0, nullptr);
    lock.Recover(0, 0);
    lock.Enter(0, 0);
    p0_in = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_FALSE(p1_in.load()) << "port 1 entered while port 0 held";
    lock.Exit(0, 0);
  });
  std::thread t1([&] {
    ProcessBinding bind(1, nullptr);
    while (!p0_in) std::this_thread::yield();
    lock.Recover(1, 1);
    lock.Enter(1, 1);
    p1_in = true;
    lock.Exit(1, 1);
  });
  t0.join();
  t1.join();
  EXPECT_TRUE(p1_in.load());
}

TEST(PortLock, MutualExclusionUnderContention) {
  const int k = 8;
  PortLock lock(k, k);
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int port = 0; port < k; ++port) {
    threads.emplace_back([&, port] {
      ProcessBinding bind(port, nullptr);
      for (int i = 0; i < 1500; ++i) {
        lock.Recover(port, port);
        lock.Enter(port, port);
        if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
        in_cs.fetch_sub(1);
        lock.Exit(port, port);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(PortLock, OrphanedTicketIsAdoptedOnRecovery) {
  PortLock lock(4, 4, "pl");
  // Crash exactly after the slot CAS that claims the ticket ("pl.op" ops:
  // state load(1), claimpid store(2), pticket store(3), state store(4),
  // state load(5), pticket load(6), tail load(7), slot CAS(8)).
  SiteCrash crash(0, "pl.op", /*after_op=*/true, /*nth=*/8);
  {
    ProcessBinding bind(0, &crash);
    lock.Recover(0, 0);
    EXPECT_THROW(lock.Enter(0, 0), ProcessCrash);
  }
  {
    ProcessBinding bind(0, nullptr);
    lock.Recover(0, 0);  // must adopt the orphaned claimed slot
    lock.Enter(0, 0);
    lock.Exit(0, 0);
  }
  // Ring must be clean: another port can pass.
  {
    ProcessBinding bind(1, nullptr);
    lock.Recover(1, 1);
    lock.Enter(1, 1);
    lock.Exit(1, 1);
  }
  EXPECT_EQ(lock.HeadTicket(), lock.TailTicket());
}

TEST(PortLock, CrashStormAllPortsStaysExclusiveAndLive) {
  const int k = 6;
  PortLock lock(k, k, "pls");
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  RandomCrash crash(77, 0.002, -1);
  std::vector<std::thread> threads;
  for (int port = 0; port < k; ++port) {
    threads.emplace_back([&, port] {
      ProcessBinding bind(port, &crash);
      for (int i = 0; i < 600;) {
        try {
          lock.Recover(port, port);
          lock.Enter(port, port);
          if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
          in_cs.fetch_sub(1);
          lock.Exit(port, port);
          ++i;
        } catch (const ProcessCrash&) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0) << "PortLock is strongly recoverable";
}

TEST(PortLock, ExitIsIdempotentAfterCompletion) {
  PortLock lock(2, 2);
  ProcessBinding bind(0, nullptr);
  lock.Recover(0, 0);
  lock.Enter(0, 0);
  lock.Exit(0, 0);
  lock.Exit(0, 0);  // re-run (post-crash replay): must be a no-op
  EXPECT_EQ(lock.HeadTicket(), 1u);
  lock.Recover(0, 0);
  lock.Enter(0, 0);
  lock.Exit(0, 0);
  EXPECT_EQ(lock.HeadTicket(), 2u);
}

TEST(PortLock, UncontendedRmrIsConstant) {
  PortLock lock(16, 16);
  ProcessBinding bind(0, nullptr);
  ProcessContext& ctx = CurrentProcess();
  lock.Recover(0, 0);
  lock.Enter(0, 0);
  lock.Exit(0, 0);
  for (int i = 0; i < 10; ++i) {
    const OpCounters before = ctx.counters;
    lock.Recover(0, 0);
    lock.Enter(0, 0);
    lock.Exit(0, 0);
    const OpCounters d = ctx.counters - before;
    EXPECT_LE(d.cc_rmrs, 30u) << "independent of k";
    EXPECT_LE(d.dsm_rmrs, 30u);  // port records are memory-homed: every
                                 // touch is remote, but the count is O(1)
  }
}

}  // namespace
}  // namespace rme
