// Tests for the scenario helpers (runtime/experiment.*): labels, regime
// wiring, and the named-lock entry point.
#include <gtest/gtest.h>

#include "core/lock_registry.hpp"
#include "runtime/experiment.hpp"

namespace rme {
namespace {

TEST(Scenario, Labels) {
  EXPECT_EQ(Scenario::None().Label(), "no-failures");
  EXPECT_EQ(Scenario::Budgeted(12).Label(), "F=12");
  EXPECT_EQ(Scenario::Sustained(0.25).Label().rfind("sustained(", 0), 0u);
}

TEST(Scenario, NoFailuresInjectsNothing) {
  WorkloadConfig cfg;
  cfg.num_procs = 2;
  cfg.passages_per_proc = 30;
  const RunResult r = RunScenario("wr", cfg, Scenario::None());
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.completed_passages, 60u);
}

TEST(Scenario, BudgetedInjectsAtMostF) {
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 200;
  cfg.seed = 77;
  const RunResult r = RunScenario("wr", cfg, Scenario::Budgeted(5, 0.01));
  EXPECT_FALSE(r.aborted);
  EXPECT_LE(r.failures, 5u);
  EXPECT_GT(r.failures, 0u) << "a 1% rate over this run should hit the cap";
}

TEST(Scenario, SustainedKeepsInjecting) {
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 150;
  cfg.seed = 78;
  const RunResult r = RunScenario("wr", cfg, Scenario::Sustained(0.002));
  EXPECT_FALSE(r.aborted);
  EXPECT_GT(r.failures, 20u);
  EXPECT_EQ(r.completed_passages, 600u);
}

TEST(Scenario, WorksWithExistingInstance) {
  auto lock = MakeLock("ba", 3);
  WorkloadConfig cfg;
  cfg.num_procs = 3;
  cfg.passages_per_proc = 20;
  const RunResult r = RunScenario(*lock, cfg, Scenario::None());
  EXPECT_EQ(r.completed_passages, 60u);
  EXPECT_EQ(r.me_violations, 0u);
}

}  // namespace
}  // namespace rme
