// Tests for the non-recoverable MCS baseline: mutual exclusion under
// contention and the textbook O(1) RMR profile.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "locks/mcs_lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

TEST(McsLock, SingleProcessAcquireRelease) {
  McsLock lock(1);
  ProcessBinding bind(0, nullptr);
  lock.Enter(0);
  lock.Exit(0);
  lock.Enter(0);
  lock.Exit(0);
}

TEST(McsLock, MutualExclusionUnderContention) {
  const int n = 8;
  McsLock lock(n);
  WorkloadConfig cfg;
  cfg.num_procs = n;
  cfg.passages_per_proc = 500;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.max_concurrent_cs, 1);
  EXPECT_EQ(r.completed_passages, 8u * 500u);
}

TEST(McsLock, UncontendedRmrIsConstant) {
  McsLock lock(4);
  ProcessBinding bind(0, nullptr);
  ProcessContext& ctx = CurrentProcess();
  // Warm up.
  lock.Enter(0);
  lock.Exit(0);
  for (int i = 0; i < 10; ++i) {
    const OpCounters before = ctx.counters;
    lock.Enter(0);
    lock.Exit(0);
    const OpCounters d = ctx.counters - before;
    EXPECT_LE(d.cc_rmrs, 6u) << "uncontended MCS passage should be O(1)";
    EXPECT_LE(d.dsm_rmrs, 6u);
  }
}

TEST(McsLock, HandoffFollowsFifoOrder) {
  // p0 holds the lock; p1 then p2 queue up (serialized by sleeps long
  // enough to order their FAS). Release order must be p1 before p2.
  McsLock lock(3);
  std::atomic<int> stage{0};
  std::vector<int> order;
  std::mutex order_mu;

  std::thread t0([&] {
    ProcessBinding bind(0, nullptr);
    lock.Enter(0);
    stage = 1;
    while (stage < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    lock.Exit(0);
  });
  std::thread t1([&] {
    ProcessBinding bind(1, nullptr);
    while (stage < 1) std::this_thread::yield();
    stage = 2;
    lock.Enter(1);  // queues behind p0
    {
      std::lock_guard<std::mutex> lk(order_mu);
      order.push_back(1);
    }
    lock.Exit(1);
  });
  std::thread t2([&] {
    ProcessBinding bind(2, nullptr);
    while (stage < 2) std::this_thread::yield();
    // Give t1 time to complete its FAS before we queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stage = 3;
    lock.Enter(2);
    {
      std::lock_guard<std::mutex> lk(order_mu);
      order.push_back(2);
    }
    lock.Exit(2);
  });
  t0.join();
  t1.join();
  t2.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

}  // namespace
}  // namespace rme
