// Deterministic replay tests for every crash controller: pinpoint
// semantics (which pid, which site, which op) checked directly against
// the instrumentation, and same-(seed, config, controller) fiber-sim
// runs compared field for field. Includes the sharded-clock regression
// for BatchCrash: its trigger must follow the calling process's own
// issued ticks, not the global reservation frontier, so behaviour is
// identical at clock_block 1 and 1024.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

class ScopedClockBlock {
 public:
  explicit ScopedClockBlock(uint64_t b)
      : prev_(memory_model_config().clock_block) {
    memory_model_config().clock_block = b;
  }
  ~ScopedClockBlock() { memory_model_config().clock_block = prev_; }

 private:
  uint64_t prev_;
};

// ---------------------------------------------------------------------
// Direct pinning: drive the instrumentation by hand and check the crash
// lands on exactly the configured pid / site / op.
// ---------------------------------------------------------------------

TEST(Controllers, NeverCrashNeverFires) {
  NeverCrash crash;
  ProcessBinding bind(0, &crash);
  rmr::Atomic<uint64_t> v{0};
  for (int i = 0; i < 1000; ++i) v.FetchAdd(1, "never.op");
  EXPECT_EQ(crash.crashes(), 0u);
}

TEST(Controllers, SiteCrashPinsPidSiteAndNth) {
  SiteCrash crash(3, "pin.site", /*after_op=*/true, /*nth=*/2);
  ProcessBinding bind(3, &crash);
  rmr::Atomic<uint64_t> v{0};
  v.FetchAdd(1, "other.site");  // wrong site: no fire
  v.FetchAdd(1, "pin.site");    // first hit: nth=2 not reached
  bool fired = false;
  try {
    v.FetchAdd(1, "pin.site");  // second hit: fires
  } catch (const ProcessCrash& cr) {
    fired = true;
    EXPECT_EQ(cr.pid, 3);
    EXPECT_STREQ(cr.site, "pin.site");
    EXPECT_TRUE(cr.after_op);
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(crash.crashes(), 1u);
  v.FetchAdd(1, "pin.site");  // one-shot: spent
  EXPECT_EQ(crash.crashes(), 1u);
}

TEST(Controllers, SiteCrashIgnoresOtherPids) {
  SiteCrash crash(3, "pin.site", /*after_op=*/true);
  ProcessBinding bind(1, &crash);  // different pid
  rmr::Atomic<uint64_t> v{0};
  for (int i = 0; i < 50; ++i) v.FetchAdd(1, "pin.site");
  EXPECT_EQ(crash.crashes(), 0u);
}

TEST(Controllers, SpacedSiteCrashFiresEveryPeriodUpToBudget) {
  // Suffix match, period 3, budget 2: matching ops 3 and 6 crash, no more.
  SpacedSiteCrash crash("filter.tail.fas", /*period=*/3, /*budget=*/2);
  ProcessBinding bind(0, &crash);
  rmr::Atomic<uint64_t> v{0};
  std::vector<int> crash_ops;
  for (int i = 1; i <= 12; ++i) {
    try {
      v.FetchAdd(1, "lvl2.filter.tail.fas");
      v.FetchAdd(1, "unrelated.site");  // must not advance the match count
    } catch (const ProcessCrash& cr) {
      crash_ops.push_back(i);
      EXPECT_STREQ(cr.site, "lvl2.filter.tail.fas");
    }
  }
  ASSERT_EQ(crash_ops.size(), 2u);
  EXPECT_EQ(crash_ops[0], 3);
  EXPECT_EQ(crash_ops[1], 6);
  EXPECT_EQ(crash.crashes(), 2u);
}

TEST(Controllers, NthOpCrashFiresAtExactlyTheNthOp) {
  NthOpCrash crash(2, /*nth_op=*/5);
  ProcessBinding bind(2, &crash);
  rmr::Atomic<uint64_t> v{0};
  int survived = 0;
  bool fired = false;
  for (int i = 0; i < 10 && !fired; ++i) {
    try {
      v.FetchAdd(1, "nth.op");
      ++survived;
    } catch (const ProcessCrash& cr) {
      fired = true;
      EXPECT_EQ(cr.pid, 2);
    }
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(survived, 4);  // ops 1..4 survive, op 5 crashes
  for (int i = 0; i < 20; ++i) v.FetchAdd(1, "nth.op");  // one-shot
  EXPECT_EQ(crash.crashes(), 1u);
}

TEST(Controllers, NthOpCrashCountsOnlyThePinnedPid) {
  NthOpCrash crash(2, /*nth_op=*/5);
  ProcessBinding bind(1, &crash);  // a different process runs the ops
  rmr::Atomic<uint64_t> v{0};
  for (int i = 0; i < 50; ++i) v.FetchAdd(1, "nth.op");
  EXPECT_EQ(crash.crashes(), 0u);
}

TEST(Controllers, CompositeFiresLeavesAndCountsEachCrashOnce) {
  SiteCrash a(0, "site.a", /*after_op=*/true);
  SiteCrash b(0, "site.b", /*after_op=*/true);
  CompositeCrash crash({&a, &b});
  ProcessBinding bind(0, &crash);
  rmr::Atomic<uint64_t> v{0};
  int fired = 0;
  for (const char* site : {"site.a", "site.b"}) {
    try {
      v.FetchAdd(1, site);
    } catch (const ProcessCrash& cr) {
      ++fired;
      EXPECT_STREQ(cr.site, site);
    }
  }
  EXPECT_EQ(fired, 2);
  // Leaf-only counting: the composite reports the sum of its parts, not
  // double (the historical bug: it also counted every leaf firing).
  EXPECT_EQ(a.crashes(), 1u);
  EXPECT_EQ(b.crashes(), 1u);
  EXPECT_EQ(crash.crashes(), 2u);
}

// ---------------------------------------------------------------------
// BatchCrash sharded-clock regression. The trigger compares against the
// calling process's own issued tick, which on a single thread advances
// by exactly one per instrumented op regardless of clock_block. The
// pre-fix code compared against LogicalNow() — the global reservation
// frontier, which with clock_block = 1024 sits up to 1023 ticks ahead of
// the caller — so a batch scheduled 500 ticks out fired on the very
// first op. Ops-to-crash must not depend on the block size.
// ---------------------------------------------------------------------

struct BatchProbe {
  uint64_t ops_survived;
  uint64_t ticks_to_crash;  ///< crash timestamp minus the base tick
};

BatchProbe OpsUntilBatchCrash(uint64_t clock_block) {
  ScopedClockBlock block(clock_block);
  ProcessBinding bind(0, nullptr);
  // Drop any leftover partial block, then issue one op so LogicalTick()
  // is our own freshly issued tick.
  CurrentProcess().clock_next = CurrentProcess().clock_end;
  rmr::Atomic<uint64_t> v{0};
  v.FetchAdd(1, "batch.warm");
  const uint64_t base = LogicalTick();
  BatchCrash crash({{base + 500, 1ULL << 0}});
  CurrentProcess().SetCrashController(&crash);
  BatchProbe probe{0, 0};
  try {
    for (;;) {
      v.FetchAdd(1, "batch.op");
      ++probe.ops_survived;
    }
  } catch (const ProcessCrash& cr) {
    EXPECT_EQ(cr.pid, 0);
    probe.ticks_to_crash = cr.time - base;
  }
  CurrentProcess().SetCrashController(nullptr);
  EXPECT_EQ(crash.crashes(), 1u);
  return probe;
}

TEST(Controllers, BatchCrashTriggerIsClockBlockInvariant) {
  const BatchProbe seed_semantics = OpsUntilBatchCrash(1);
  const BatchProbe sharded = OpsUntilBatchCrash(1024);
  // Seed semantics at block 1: the batch fires at the first op whose own
  // tick passes base + 500, i.e. 499 ops survive and the crash carries
  // timestamp base + 500 exactly.
  EXPECT_EQ(seed_semantics.ops_survived, 499u);
  EXPECT_EQ(seed_semantics.ticks_to_crash, 500u);
  // The sharded clock must not change when the batch fires.
  EXPECT_EQ(sharded.ops_survived, seed_semantics.ops_survived);
  EXPECT_EQ(sharded.ticks_to_crash, seed_semantics.ticks_to_crash);
}

TEST(Controllers, BatchCrashFiresEachBatchMemberOnce) {
  ProcessBinding bind(1, nullptr);
  CurrentProcess().clock_next = CurrentProcess().clock_end;
  rmr::Atomic<uint64_t> v{0};
  v.FetchAdd(1, "batch.warm");
  const uint64_t base = LogicalTick();
  BatchCrash crash({{base + 3, (1ULL << 1) | (1ULL << 2)}});
  CurrentProcess().SetCrashController(&crash);
  bool fired = false;
  for (int i = 0; i < 20; ++i) {
    try {
      v.FetchAdd(1, "batch.op");
    } catch (const ProcessCrash&) {
      EXPECT_FALSE(fired) << "a batch member crashed twice";
      fired = true;
    }
  }
  CurrentProcess().SetCrashController(nullptr);
  EXPECT_TRUE(fired);
  EXPECT_EQ(crash.crashes(), 1u);  // pid 2 never ran, so only pid 1 fired
}

// ---------------------------------------------------------------------
// Fiber-sim replay: the same (seed, config, controller) must reproduce
// the run exactly — failures, unsafe classification, verdicts, and the
// scheduler step count. One sweep per controller kind.
// ---------------------------------------------------------------------

struct ReplayFingerprint {
  uint64_t completed = 0;
  uint64_t failures = 0;
  uint64_t unsafe_failures = 0;
  uint64_t me_violations = 0;
  uint64_t bcsr_violations = 0;
  uint64_t scheduler_steps = 0;

  bool operator==(const ReplayFingerprint&) const = default;
};

template <typename MakeController>
ReplayFingerprint RunWrOnce(MakeController make) {
  ScopedClockBlock block(1024);
  auto lock = MakeLock("wr", 3);
  SimWorkloadConfig cfg;
  cfg.num_procs = 3;
  cfg.passages_per_proc = 30;
  cfg.seed = 42;
  auto crash = make();
  const SimResult r = RunSimWorkload(*lock, cfg, crash.get());
  EXPECT_TRUE(r.ran_to_completion);
  EXPECT_EQ(r.completed_passages, 90u);
  EXPECT_EQ(crash->crashes(), r.failures)
      << "controller tally disagrees with the harness failure count";
  return {r.completed_passages, r.failures,     r.unsafe_failures,
          r.me_violations,      r.bcsr_violations, r.scheduler_steps};
}

TEST(Controllers, NeverCrashReplaysDeterministically) {
  auto make = [] { return std::make_unique<NeverCrash>(); };
  const ReplayFingerprint a = RunWrOnce(make);
  const ReplayFingerprint b = RunWrOnce(make);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.failures, 0u);
}

TEST(Controllers, RandomCrashReplaysDeterministically) {
  auto make = [] { return std::make_unique<RandomCrash>(7, 0.002, 6); };
  const ReplayFingerprint a = RunWrOnce(make);
  const ReplayFingerprint b = RunWrOnce(make);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.failures, 0u);
  EXPECT_LE(a.failures, 6u);  // budget respected
  EXPECT_EQ(a.me_violations, 0u);
  EXPECT_EQ(a.bcsr_violations, 0u);
}

TEST(Controllers, SiteCrashReplaysDeterministically) {
  // The WR lock's one sensitive instruction (Figure 1): the tail FAS.
  auto make = [] {
    return std::make_unique<SiteCrash>(1, "wr.tail.fas", /*after_op=*/true);
  };
  const ReplayFingerprint a = RunWrOnce(make);
  const ReplayFingerprint b = RunWrOnce(make);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.failures, 1u);
  EXPECT_EQ(a.unsafe_failures, 1u);  // crash after the FAS is unsafe
}

TEST(Controllers, SpacedSiteCrashReplaysDeterministically) {
  auto make = [] {
    return std::make_unique<SpacedSiteCrash>("tail.fas", /*period=*/5,
                                             /*budget=*/3);
  };
  const ReplayFingerprint a = RunWrOnce(make);
  const ReplayFingerprint b = RunWrOnce(make);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.failures, 3u);  // budget drains exactly
}

TEST(Controllers, NthOpCrashReplaysDeterministically) {
  auto make = [] { return std::make_unique<NthOpCrash>(0, 40); };
  const ReplayFingerprint a = RunWrOnce(make);
  const ReplayFingerprint b = RunWrOnce(make);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.failures, 1u);
}

TEST(Controllers, BatchCrashReplaysDeterministically) {
  // Relative trigger: each run schedules the batch a fixed distance past
  // the clock position at construction, so both runs see the same
  // relative timing even though the global clock has advanced.
  auto make = [] {
    return std::make_unique<BatchCrash>(
        std::vector<BatchCrash::Batch>{{LogicalNow() + 300, 0b111}});
  };
  const ReplayFingerprint a = RunWrOnce(make);
  const ReplayFingerprint b = RunWrOnce(make);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.failures, 3u);  // every batch member fires exactly once
  EXPECT_EQ(a.me_violations, 0u);
  EXPECT_EQ(a.bcsr_violations, 0u);
}

TEST(Controllers, CompositeReplaysDeterministicallyAndSumsParts) {
  // CompositeCrash is final; bundle it with its leaves by delegation so
  // the factory returns one owning object.
  struct Bundle final : CrashController {
    RandomCrash random{13, 0.001, 4};
    SiteCrash site{2, "wr.tail.fas", true};
    CompositeCrash composite{{&random, &site}};
    bool ShouldCrash(int pid, const char* s, bool after) override {
      return composite.ShouldCrash(pid, s, after);
    }
    uint64_t crashes() const override { return composite.crashes(); }
  };
  auto make = [] { return std::make_unique<Bundle>(); };
  const ReplayFingerprint a = RunWrOnce(make);
  const ReplayFingerprint b = RunWrOnce(make);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.failures, 0u);
}

}  // namespace
}  // namespace rme
