// Tests for SA-Lock (Algorithm 3): fast-path-only behaviour without
// failures, slow-path diversion under unsafe filter failures, strong ME,
// path persistence across crashes, and the fast path staying O(1).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "core/sa_lock.hpp"
#include "crash/crash.hpp"
#include "locks/tree_lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

std::unique_ptr<SaLock> MakeSa(int n, std::string label = "sa") {
  return std::make_unique<SaLock>(
      n, std::make_unique<TournamentLock>(n, label + ".core"), label);
}

TEST(SaLock, SingleProcessPassages) {
  auto sa = MakeSa(4);
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 8; ++i) {
    sa->Recover(0);
    sa->Enter(0);
    sa->Exit(0);
  }
  EXPECT_EQ(sa->fast_passages(), 8u);
  EXPECT_EQ(sa->slow_passages(), 0u);
}

TEST(SaLock, FailureFreeEveryoneTakesFastPath) {
  auto sa = MakeSa(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 250;
  const RunResult r = RunWorkload(*sa, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(sa->slow_passages(), 0u) << "no failures => no slow path";
  EXPECT_EQ(sa->fast_passages(), 8u * 250u);
}

TEST(SaLock, FailureFreeRmrIsConstant) {
  auto sa = MakeSa(16);
  WorkloadConfig cfg;
  cfg.num_procs = 16;
  cfg.passages_per_proc = 150;
  const RunResult r = RunWorkload(*sa, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_LE(r.passage.cc.mean(), 70.0) << "filter+splitter+arbitrator O(1)";
  EXPECT_LE(r.passage.dsm.mean(), 70.0);
}

TEST(SaLock, UnsafeFilterFailureDivertsToSlowPath) {
  // Deterministic Lemma-5.8 scenario: p0 holds the target lock (and the
  // splitter). p1 crashes after its filter FAS; on retry the filter
  // Recover aborts the orphaned attempt (resetting the filter's tail),
  // so p1 re-acquires the filter concurrently with p0 — a weak-ME
  // overlap — then loses the splitter to p0 and must take the slow
  // path: core lock, then the arbitrator's Right side.
  auto sa = std::make_unique<SaLock>(
      4, std::make_unique<TournamentLock>(4, "sad.core"), "sad");
  SiteCrash crash(1, "sad.filter.tail.fas", /*after_op=*/true);

  {
    ProcessBinding bind(0, nullptr);
    sa->Recover(0);
    sa->Enter(0);  // fast path: holds filter + splitter + arbitrator(L)
  }
  {
    ProcessBinding bind(1, &crash);
    sa->Recover(1);
    EXPECT_THROW(sa->Enter(1), ProcessCrash);
  }
  // p1 will block on the arbitrator until p0 releases, so free p0 from a
  // helper thread mid-way.
  std::thread release_p0([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ProcessBinding bind(0, nullptr);
    sa->Exit(0);
  });
  {
    ProcessBinding bind(1, nullptr);
    sa->Recover(1);
    sa->Enter(1);
    sa->Exit(1);
  }
  release_p0.join();
  EXPECT_GE(sa->slow_passages(), 1u);
  EXPECT_EQ(sa->fast_passages(), 1u);
}

TEST(SaLock, CrashStormKeepsStrongME) {
  auto sa = MakeSa(8, "sas");
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 150;
  cfg.seed = 3;
  RandomCrash crash(71, 0.0015, -1);
  const RunResult r = RunWorkload(*sa, cfg, &crash);
  EXPECT_FALSE(r.aborted) << "starvation freedom";
  EXPECT_EQ(r.me_violations, 0u) << "SA-Lock is strongly recoverable";
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_GT(r.failures, 0u);
  EXPECT_EQ(r.completed_passages, 8u * 150u);
}

TEST(SaLock, SensitiveSitesAreExactlyTheFilterFas) {
  auto sa = std::make_unique<SaLock>(
      4, std::make_unique<TournamentLock>(4, "saq.core"), "saq");
  EXPECT_TRUE(sa->IsSensitiveSite("saq.filter.tail.fas", true));
  EXPECT_FALSE(sa->IsSensitiveSite("saq.filter.tail.fas", false));
  EXPECT_FALSE(sa->IsSensitiveSite("saq.split.op", true));
  EXPECT_FALSE(sa->IsSensitiveSite("saq.arb.op", true));
  EXPECT_TRUE(sa->IsStronglyRecoverable());
}

TEST(SaLock, StatsStringMentionsPaths) {
  auto sa = MakeSa(2, "sat");
  ProcessBinding bind(0, nullptr);
  sa->Recover(0);
  sa->Enter(0);
  sa->Exit(0);
  const std::string s = sa->StatsString();
  EXPECT_NE(s.find("fast=1"), std::string::npos);
  EXPECT_NE(s.find("slow=0"), std::string::npos);
}

}  // namespace
}  // namespace rme
