// Pins the examples/kv_store ApplyPut crash window: the cell version must
// be a pure function of the writing transaction (txn, pid), never a
// read-modify-write of the cell. A crash between the version commit and
// the applied marker replays the whole apply; with the fixed scheme the
// replay converges to the same cell state, while a counter-bump version
// counts the same put twice — observable corruption of the version
// lineage that an auditor keyed on versions would misread as two writes.
#include <gtest/gtest.h>

#include <cstdint>

#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"

namespace rme {
namespace {

struct Cell {
  rmr::Atomic<uint64_t> value{0};
  rmr::Atomic<uint64_t> version{0};
};

struct Redo {
  rmr::Atomic<uint64_t> txn{0};
  rmr::Atomic<uint64_t> value{0};
  rmr::Atomic<uint64_t> applied{0};
};

// Mirrors examples/kv_store.cpp ApplyPut, with named probe sites so a
// SiteCrash can land in the exact window between the version commit and
// the applied marker ("kv.version.store", after_op=true: the version has
// hit simulated NVRAM, the marker has not).
void ApplyPutFixed(Cell& cell, Redo& r, int pid) {
  const uint64_t txn = r.txn.Load("kv.txn.load");
  if (r.applied.Load("kv.applied.load") == txn) return;
  cell.value.Store(r.value.Load("kv.value.load"), "kv.value.store");
  cell.version.Store((txn << 8) | static_cast<uint64_t>(pid),
                     "kv.version.store");
  r.applied.Store(txn, "kv.applied.store");
}

// The pre-fix variant: version as a counter bump of the cell. Kept here
// (and only here) to demonstrate the bug the fix removed.
void ApplyPutCounterBump(Cell& cell, Redo& r) {
  const uint64_t txn = r.txn.Load("kv.txn.load");
  if (r.applied.Load("kv.applied.load") == txn) return;
  cell.value.Store(r.value.Load("kv.value.load"), "kv.value.store");
  cell.version.Store(cell.version.Load("kv.version.load") + 1,
                     "kv.version.store");
  r.applied.Store(txn, "kv.applied.store");
}

TEST(KvCrashWindow, FixedVersionReplayIsIdempotent) {
  Cell cell;
  Redo r;
  SiteCrash crash(/*pid=*/0, "kv.version.store", /*after_op=*/true);
  ProcessBinding binding(0, &crash);

  r.value.Store(99, "kv.prep");
  r.txn.Store(1, "kv.prep");

  bool crashed = false;
  try {
    ApplyPutFixed(cell, r, 0);
  } catch (const ProcessCrash&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  // The crash site is after_op: value and version landed, marker lost.
  EXPECT_EQ(cell.value.RawLoad(), 99u);
  EXPECT_EQ(cell.version.RawLoad(), (uint64_t{1} << 8) | 0u);
  EXPECT_NE(r.applied.RawLoad(), 1u);

  // Replay (Recover re-runs the apply) plus a redundant re-entry: the
  // cell must be exactly what a crash-free apply produces, no matter how
  // many times the window is replayed.
  ApplyPutFixed(cell, r, 0);
  ApplyPutFixed(cell, r, 0);
  EXPECT_EQ(cell.value.RawLoad(), 99u);
  EXPECT_EQ(cell.version.RawLoad(), (uint64_t{1} << 8) | 0u);
  EXPECT_EQ(r.applied.RawLoad(), 1u);
}

TEST(KvCrashWindow, CounterBumpVersionDoubleCountsAcrossTheWindow) {
  Cell cell;
  Redo r;
  SiteCrash crash(/*pid=*/0, "kv.version.store", /*after_op=*/true);
  ProcessBinding binding(0, &crash);

  r.value.Store(55, "kv.prep");
  r.txn.Store(1, "kv.prep");

  bool crashed = false;
  try {
    ApplyPutCounterBump(cell, r);
  } catch (const ProcessCrash&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  ApplyPutCounterBump(cell, r);  // replay

  // One put, version bumped twice: the exact non-idempotence the fixed
  // scheme removes. A crash-free apply would leave version == 1.
  EXPECT_EQ(cell.value.RawLoad(), 55u);
  EXPECT_EQ(cell.version.RawLoad(), 2u);
  EXPECT_EQ(r.applied.RawLoad(), 1u);
}

TEST(KvCrashWindow, CrashBeforeVersionAlsoConverges) {
  Cell cell;
  Redo r;
  SiteCrash crash(/*pid=*/0, "kv.value.store", /*after_op=*/true);
  ProcessBinding binding(0, &crash);

  r.value.Store(77, "kv.prep");
  r.txn.Store(3, "kv.prep");

  bool crashed = false;
  try {
    ApplyPutFixed(cell, r, 2);
  } catch (const ProcessCrash&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  // Value landed, version did not: the replay must complete both.
  EXPECT_EQ(cell.value.RawLoad(), 77u);
  EXPECT_EQ(cell.version.RawLoad(), 0u);

  ApplyPutFixed(cell, r, 2);
  EXPECT_EQ(cell.value.RawLoad(), 77u);
  EXPECT_EQ(cell.version.RawLoad(), (uint64_t{3} << 8) | 2u);
  EXPECT_EQ(r.applied.RawLoad(), 3u);
}

}  // namespace
}  // namespace rme
