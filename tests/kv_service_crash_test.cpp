// Real-process crash matrix for the sharded KV service
// (runtime/kv_service.hpp): forks worker processes against a striped
// lock table and SIGKILLs them at targeted probe sites, so the binary
// must stay single-threaded in the parent (gtest runs sequentially on
// the main thread; nothing here spawns threads).
//
// The core sweep is the ISSUE-9 acceptance window: a victim dies while
// holding k in {1..4} stripe locks of an ordered-acquisition multi-key
// transaction ("kv.hold1".."kv.hold4"), and recovery must
// release-or-complete — the respawned pid heals every lock it was
// wedged in, the staged transaction either fully publishes or never
// happened, and the cross-stripe balance conservation audit still
// holds. The remaining tests pin the mid-apply windows (die between
// STAGE and PUBLISH, die mid-publish, die inside Exit) and the
// fork_harness kill regimes (independent + batch + recovery storm) on
// a weak family, plus kills against the EnterMany batched path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "runtime/kv_service.hpp"
#include "runtime/striped_table.hpp"
#include "util/prng.hpp"

namespace rme {
namespace {

// Every op is a 4-key transaction whose keys land on four DISTINCT
// stripes, so each passage climbs the full ordered-acquisition ladder
// and all four "kv.holdK" crash sites are reached every time.
KvDrawFn AllTxnDraw(uint32_t stripes, uint64_t keys) {
  return [stripes, keys](int /*pid*/, Prng& rng) {
    const uint32_t mask = stripes - 1;
    KvOp op;
    op.kind = KvOp::kTxn;
    op.nkeys = 4;
    for (int i = 0; i < 4; ++i) {
      for (;;) {
        const uint64_t k = rng.NextBounded(keys);
        const uint32_t s = StripedTable::StripeHash(k) & mask;
        bool dup = false;
        for (int j = 0; j < i && !dup; ++j) {
          dup = (StripedTable::StripeHash(op.keys[j]) & mask) == s;
        }
        if (!dup) {
          op.keys[i] = k;
          break;
        }
      }
    }
    return op;
  };
}

// Mixed single-key/txn traffic for the batched-path test: singles give
// the stripe-grouper something to batch, txns keep the multi-stripe
// recovery paths hot.
KvDrawFn MixedDraw(uint32_t stripes, uint64_t keys) {
  return [stripes, keys, txn = AllTxnDraw(stripes, keys)](int pid, Prng& rng) {
    const double u = rng.NextDouble();
    if (u < 0.10) return txn(pid, rng);
    KvOp op;
    op.kind = u < 0.60 ? KvOp::kPut : KvOp::kRead;
    op.nkeys = 1;
    op.keys[0] = rng.NextBounded(keys);
    return op;
  };
}

KvServiceConfig BaseConfig(const std::string& family) {
  KvServiceConfig cfg;
  cfg.lock_name = family;
  cfg.num_procs = 4;
  cfg.stripes = 16;
  cfg.keys = 4096;
  cfg.ops_per_proc = 150;
  cfg.batch_ops = 1;
  cfg.seed = 11;
  cfg.draw = AllTxnDraw(cfg.stripes, cfg.keys);
  return cfg;
}

// The invariants every run must satisfy regardless of where kills
// landed. Conservation/integrity are asserted only when the run says
// its audits are binding (no abandoned pid, no admissible weak-family
// overlap that could excuse a mismatch); strong families with clean
// reaps are always binding.
void ExpectClean(const KvServiceResult& r, const KvServiceConfig& cfg) {
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.phantom_crash_notes, 0u);
  EXPECT_FALSE(r.log_overflow);
  EXPECT_EQ(r.hung_abandoned, 0u);
  EXPECT_FALSE(r.watchdog_fired);
  EXPECT_EQ(r.child_errors, 0u);
  EXPECT_EQ(r.starved_pids, 0u);
  // ops_done counts key-operations (a k-key transaction is k of them),
  // and a pid's last draw may overshoot its quota by one batch of
  // full-width transactions — bounded, never short.
  const uint64_t quota =
      static_cast<uint64_t>(cfg.num_procs) * cfg.ops_per_proc;
  const uint64_t slack = static_cast<uint64_t>(cfg.num_procs) *
                         static_cast<uint64_t>(std::max(cfg.batch_ops, 1)) *
                         kKvMaxTxnKeys;
  EXPECT_GE(r.ops_done, quota);
  EXPECT_LE(r.ops_done, quota + slack);
  if (r.audits_binding) {
    EXPECT_EQ(r.conservation_delta, 0u);
    EXPECT_EQ(r.put_integrity_mismatches, 0u);
  }
}

// Victim dies holding exactly k stripe locks, for every k the redo
// record can express. Each k gets two kills (die, respawn, die again at
// the same rung) on a strongly recoverable family, so the audits are
// binding: the transaction in flight at each kill must have been
// released-or-completed with not a single unit of balance lost.
TEST(KvServiceCrash, ReleaseOrCompleteAtEveryHeldCount) {
  for (int k = 1; k <= kKvMaxTxnKeys; ++k) {
    KvServiceConfig cfg = BaseConfig("cw-ticket");
    cfg.site_kill_site = "kv.hold" + std::to_string(k);
    cfg.site_kill_pid = 1;
    cfg.site_kill_nth = 3;
    cfg.site_kill_count = 2;
    cfg.seed = 100 + static_cast<uint64_t>(k);
    const KvServiceResult r = RunKvService(cfg);
    SCOPED_TRACE("held=" + std::to_string(k));
    ExpectClean(r, cfg);
    EXPECT_TRUE(r.audits_binding);
    EXPECT_GE(r.kills, cfg.site_kill_count);
    EXPECT_GE(r.max_incarnations, 2u);
  }
}

// The apply-side windows: die after staging but before publishing
// ("kv.txn.stage" — recovery must re-stage and publish), die
// mid-publish with some balances blind-stored and some not
// ("kv.txn.pub" — recovery must finish the publish idempotently), and
// die inside the lock handoff after the CS work is logged complete
// ("kv.exit.brk" — recovery must heal the queue without replaying).
TEST(KvServiceCrash, MidApplyAndExitWindows) {
  for (const char* site : {"kv.txn.stage", "kv.txn.pub", "kv.exit.brk"}) {
    KvServiceConfig cfg = BaseConfig("cw-ticket");
    cfg.site_kill_site = site;
    cfg.site_kill_pid = 2;
    cfg.site_kill_nth = 4;
    cfg.site_kill_count = 2;
    cfg.seed = 31;
    const KvServiceResult r = RunKvService(cfg);
    SCOPED_TRACE(site);
    ExpectClean(r, cfg);
    EXPECT_TRUE(r.audits_binding);
    EXPECT_GE(r.kills, cfg.site_kill_count);
  }
}

// The fork_harness kill regimes against a weak family: independent
// kills, a system-wide batch event, a recovery storm on one victim, and
// a per-op self-kill coin. wr admits bounded enter/exit overlaps, so
// ME/BCSR verdicts must separate admissible overlaps from violations;
// the money audits apply only when the run reports them binding.
TEST(KvServiceCrash, KillRegimesOnWeakFamily) {
  KvServiceConfig cfg = BaseConfig("wr");
  cfg.ops_per_proc = 2000;  // long enough for every scheduled kill to land
  cfg.independent_kills = 8;
  cfg.batch_kill_events = 2;
  cfg.batch_size = 2;
  cfg.kill_interval_ms = 0.2;
  cfg.storm_victim = 1;
  cfg.storm_kills = 2;
  cfg.self_kill_per_op = 0.001;
  cfg.self_kill_budget = 5;
  cfg.seed = 47;
  const KvServiceResult r = RunKvService(cfg);
  ExpectClean(r, cfg);
  EXPECT_GE(r.kills, cfg.independent_kills);
}

// Kills against the EnterMany batched path: grouped single-key ops run
// as one passage, and a kill can land between the group's redo publish
// and its exit. The respawn must replay the whole group blind-store
// idempotently — put integrity catches a half-applied group.
TEST(KvServiceCrash, BatchedPassagesSurviveKills) {
  KvServiceConfig cfg = BaseConfig("cw-ticket");
  cfg.draw = MixedDraw(cfg.stripes, cfg.keys);
  cfg.batch_ops = 8;
  cfg.ops_per_proc = 3000;  // long enough for every scheduled kill to land
  cfg.independent_kills = 6;
  cfg.kill_interval_ms = 0.2;
  cfg.seed = 53;
  const KvServiceResult r = RunKvService(cfg);
  ExpectClean(r, cfg);
  EXPECT_TRUE(r.audits_binding);
  EXPECT_GT(r.batched_passages, 0u);
  EXPECT_GE(r.kills, cfg.independent_kills);
}

}  // namespace
}  // namespace rme
