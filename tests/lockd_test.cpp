// Real-process crash mode for the rme-lockd named-lock service: forks a
// daemon plus clients against a named /dev/shm segment and SIGKILLs both
// sides, so the binary must stay single-threaded in the parent (gtest
// runs tests sequentially on the main thread; nothing here spawns
// threads). Covers the ISSUE-8 acceptance matrix: client kill storms
// with lease churn, daemon SIGKILL/restart cycles against one surviving
// segment, the targeted mid-handshake / mid-insert daemon kill windows,
// named-segment stale/foreign handling, and the pid range-check
// diagnostics on the attach paths.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "runtime/lockd.hpp"
#include "runtime/lockd_driver.hpp"
#include "shm/shm_segment.hpp"

namespace rme {
namespace {

void ExpectClean(const lockd::LockdDriverResult& r) {
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.phantom_crash_notes, 0u);
  EXPECT_FALSE(r.log_overflow);
  EXPECT_EQ(r.hangs, 0u);
  EXPECT_EQ(r.hung_abandoned, 0u);
  EXPECT_FALSE(r.watchdog_fired);
  EXPECT_EQ(r.child_errors, 0u);
  EXPECT_TRUE(r.all_clients_finished);
  EXPECT_FALSE(r.segment_leaked);
  EXPECT_TRUE(r.Clean());
}

// Client SIGKILL storm with more clients than slots: every passage runs
// under a lease that churns, so a kill can land mid-lease, mid-insert,
// or mid-CS, and the respawned client must win a fresh slot and resume
// its quota against the same directory.
TEST(LockdWorkload, ClientKillStormWithLeaseChurn) {
  lockd::LockdDriverConfig cfg;
  cfg.shm_name = "rme-lockd-test-storm";
  cfg.num_clients = 6;
  cfg.num_slots = 4;
  cfg.num_names = 10;
  cfg.acquires_per_client = 250;
  cfg.lease_passages = 3;
  cfg.seed = 7;
  cfg.client_kills = 60;
  cfg.kill_interval_ms = 0.05;
  const lockd::LockdDriverResult r = lockd::RunLockdWorkload(cfg);
  ExpectClean(r);
  EXPECT_EQ(r.completed, 6u * 250u);
  EXPECT_GE(r.client_kill_deaths, 50u);
  EXPECT_GT(r.recovered_slots, 0u);
}

// The headline acceptance numbers: 100+ client SIGKILLs and 10+ daemon
// SIGKILL/restart cycles against a SINGLE named segment, with every
// directory lock recovered and the full workload completing. Daemon
// kills are rate-limited by the 1 ms respawn backoff (a dead daemon
// cannot be re-killed) and by how often the parent gets scheduled, so
// one run's delivery rate is load-dependent; like the CI smoke, the
// test accumulates across driver cycles that all reattach the same
// surviving segment until the floors are met — which also exercises the
// daemon-death/driver-death reattach path on every extra cycle.
TEST(LockdWorkload, DaemonKillRestartCycles) {
  lockd::LockdDriverConfig cfg;
  cfg.shm_name = "rme-lockd-test-daemon";
  cfg.num_clients = 8;
  cfg.num_slots = 8;
  cfg.num_names = 12;
  cfg.acquires_per_client = 1000;
  cfg.client_kills = 130;
  cfg.daemon_kills = 14;
  cfg.kill_interval_ms = 0.05;
  cfg.persist_segment = true;
  uint64_t client_deaths = 0, daemon_deaths = 0, respawns = 0, recovered = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    cfg.attach_existing = cycle > 0;
    cfg.seed = 11 + static_cast<uint64_t>(cycle);
    const lockd::LockdDriverResult r = lockd::RunLockdWorkload(cfg);
    ExpectClean(r);
    EXPECT_EQ(r.completed, 8u * 1000u);
    client_deaths += r.client_kill_deaths;
    daemon_deaths += r.daemon_kill_deaths;
    respawns += r.daemon_respawns;
    recovered += r.recovered_slots;
    if (client_deaths >= 100 && daemon_deaths >= 10 && respawns >= 10) break;
  }
  EXPECT_GE(client_deaths, 100u);
  EXPECT_GE(daemon_deaths, 10u);
  EXPECT_GE(respawns, 10u);
  EXPECT_GT(recovered, 0u);
  // The leak audit is skipped while persisting; retire the segment
  // explicitly and make sure the name really disappears.
  EXPECT_EQ(shm::Segment::ProbeNamed(cfg.shm_name), shm::ProbeResult::kValid);
  EXPECT_TRUE(shm::Segment::UnlinkNamed(cfg.shm_name));
  EXPECT_EQ(shm::Segment::ProbeNamed(cfg.shm_name), shm::ProbeResult::kAbsent);
}

// Daemon SIGKILLed the instant a client corpse sits mid-handshake
// (Handshaking slot, dead claimant): the *fresh* daemon's takeover sweep
// must absorb the husk. The site kill reliably manufactures the corpse
// (first claim of slot 2 dies inside the ld.lease.brk window, four
// times); the widened sweep keeps the husk observable.
TEST(LockdWorkload, DaemonKilledOverHandshakeHusk) {
  lockd::LockdDriverConfig cfg;
  cfg.shm_name = "rme-lockd-test-hshusk";
  cfg.num_clients = 6;
  cfg.num_slots = 6;
  cfg.num_names = 8;
  cfg.acquires_per_client = 400;
  cfg.seed = 42;
  cfg.client_kills = 20;
  // No timed daemon kills here: a daemon knocked out by the async
  // budget is down exactly when a husk window opens, and the targeted
  // budget (rightly) refuses to spend against a dead daemon.
  cfg.daemon_kills_in_handshake = 2;
  cfg.kill_interval_ms = 0.1;
  cfg.daemon_sweep_us = 2000;
  cfg.site_kill_site = "ld.lease.brk";
  cfg.site_kill_slot = 2;
  cfg.site_kill_nth = 1;
  cfg.site_kill_count = 4;
  // The budget is 2 but the second window needs the first takeover to
  // complete first (the gate that keeps the budget off dead daemons) —
  // one delivery is a pass. The window race is load-dependent (the
  // parent must get scheduled between corpse and sweep), so a miss is
  // retried under a fresh seed; zero across three attempts means the
  // window machinery is broken.
  lockd::LockdDriverResult r{};
  for (int attempt = 0; attempt < 3; ++attempt) {
    cfg.seed = 42 + static_cast<uint64_t>(attempt);
    r = lockd::RunLockdWorkload(cfg);
    ExpectClean(r);
    EXPECT_GT(r.child_site_kills, 0u);
    if (r.daemon_kills_handshake >= 1) break;
  }
  EXPECT_GE(r.daemon_kills_handshake, 1u);
}

// Daemon SIGKILLed while a directory entry sits mid-insert (Inserting,
// dead inserter): either the fresh daemon's sweep or a same-name client
// lookup must resolve the entry — roll back to Tombstone or complete —
// without ever truncating a probe chain. Many names keep fresh inserts
// flowing so slot 3 reliably dies inside the ld.insert.brk window.
TEST(LockdWorkload, DaemonKilledOverInsertHusk) {
  lockd::LockdDriverConfig cfg;
  cfg.shm_name = "rme-lockd-test-inshusk";
  cfg.num_clients = 6;
  cfg.num_slots = 6;
  cfg.num_names = 48;
  cfg.acquires_per_client = 400;
  cfg.seed = 42;
  cfg.client_kills = 20;
  cfg.daemon_kills_in_insert = 2;
  cfg.kill_interval_ms = 0.1;
  cfg.daemon_sweep_us = 2000;
  cfg.site_kill_site = "ld.insert.brk";
  cfg.site_kill_slot = 3;
  cfg.site_kill_nth = 1;
  cfg.site_kill_count = 4;
  // Same load-dependent window race as the handshake matrix: retry a
  // miss under a fresh seed, fail only if no attempt delivers.
  lockd::LockdDriverResult r{};
  for (int attempt = 0; attempt < 3; ++attempt) {
    cfg.seed = 42 + static_cast<uint64_t>(attempt);
    r = lockd::RunLockdWorkload(cfg);
    ExpectClean(r);
    EXPECT_GT(r.child_site_kills, 0u);
    if (r.daemon_kills_insert >= 1) break;
  }
  EXPECT_GE(r.daemon_kills_insert, 1u);
}

// A second driver run attaching to the segment the first run persisted:
// the daemon-death/driver-death reattach contract at workload scale.
TEST(LockdWorkload, ReattachSurvivingSegmentAcrossRuns) {
  lockd::LockdDriverConfig cfg;
  cfg.shm_name = "rme-lockd-test-reattach";
  cfg.num_clients = 4;
  cfg.num_slots = 4;
  cfg.num_names = 6;
  cfg.acquires_per_client = 150;
  cfg.seed = 3;
  cfg.client_kills = 10;
  cfg.kill_interval_ms = 0.1;
  cfg.persist_segment = true;
  const lockd::LockdDriverResult first = lockd::RunLockdWorkload(cfg);
  EXPECT_EQ(first.me_violations, 0u);
  EXPECT_EQ(first.bcsr_violations, 0u);
  EXPECT_TRUE(first.all_clients_finished);
  ASSERT_EQ(shm::Segment::ProbeNamed(cfg.shm_name),
            shm::ProbeResult::kValid);

  cfg.attach_existing = true;
  cfg.persist_segment = false;
  cfg.seed = 4;
  const lockd::LockdDriverResult second = lockd::RunLockdWorkload(cfg);
  ExpectClean(second);
  EXPECT_EQ(second.completed, 4u * 150u);
  EXPECT_EQ(shm::Segment::ProbeNamed(cfg.shm_name),
            shm::ProbeResult::kAbsent);
}

// Named-segment stale handling at the Segment layer: a kept name
// survives its creating process and reattaches with the creator's data;
// unlinking retires it.
TEST(LockdSegment, KeptNameReattachesWithData) {
  const std::string name = "rme-lockd-test-keptseg";
  shm::Segment::UnlinkNamed(name);  // stale entry from a crashed run
  {
    shm::Segment seg(1u << 20, name, /*keep_name=*/true);
    seg.set_unlink_on_destroy(false);
    auto* v = seg.New<uint64_t>(0xfeedfacecafebeefull);
    seg.SetRoot(v);
  }
  ASSERT_EQ(shm::Segment::ProbeNamed(name), shm::ProbeResult::kValid);
  {
    shm::Segment seg(1u << 20, name, /*keep_name=*/true,
                     shm::NamedMode::kAttach);
    EXPECT_TRUE(seg.attached());
    const auto* v = static_cast<const uint64_t*>(seg.root());
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 0xfeedfacecafebeefull);
    seg.set_unlink_on_destroy(false);
  }
  EXPECT_TRUE(shm::Segment::UnlinkNamed(name));
  EXPECT_EQ(shm::Segment::ProbeNamed(name), shm::ProbeResult::kAbsent);
}

// A truncated husk (creator died between shm_open and ftruncate) probes
// stale and is silently replaced by a fresh create; an entry that does
// not carry our magic probes foreign and must never be clobbered.
TEST(LockdSegment, StaleHuskReplacedForeignRefused) {
  const std::string husk = "rme-lockd-test-husk";
  ::shm_unlink(("/" + husk).c_str());
  int fd = ::shm_open(("/" + husk).c_str(), O_CREAT | O_RDWR | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  ::close(fd);  // zero-length: the mid-create corpse shape
  std::string why;
  EXPECT_EQ(shm::Segment::ProbeNamed(husk, &why), shm::ProbeResult::kStale);
  {
    shm::Segment seg(1u << 16, husk);  // kCreateFresh replaces the husk
    EXPECT_EQ(seg.header()->magic, shm::kSegmentMagic);
  }
  EXPECT_EQ(shm::Segment::ProbeNamed(husk), shm::ProbeResult::kAbsent);

  const std::string foreign = "rme-lockd-test-foreign";
  ::shm_unlink(("/" + foreign).c_str());
  fd = ::shm_open(("/" + foreign).c_str(), O_CREAT | O_RDWR | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  const char junk[] = "not an rme segment, hands off";
  ASSERT_EQ(::ftruncate(fd, 4096), 0);
  ASSERT_EQ(::pwrite(fd, junk, sizeof(junk), 0),
            static_cast<ssize_t>(sizeof(junk)));
  ::close(fd);
  why.clear();
  EXPECT_EQ(shm::Segment::ProbeNamed(foreign, &why),
            shm::ProbeResult::kForeign);
  EXPECT_FALSE(why.empty());
  ASSERT_EQ(::shm_unlink(("/" + foreign).c_str()), 0);
}

// The attach-path range checks added with the service: an out-of-range
// pid must die with a diagnostic naming the pid, not index out of
// bounds. (Death tests fork; the parent stays single-threaded.)
TEST(LockdPidRangeChecks, OutOfRangePidDiesWithDiagnostic) {
  EXPECT_DEATH(BoundContext(kMaxProcs), "out-of-range pid");
  EXPECT_DEATH(BoundContext(-1), "out-of-range pid");
  RandomCrash crash(/*seed=*/1, /*per_op_probability=*/1.0);
  EXPECT_DEATH(crash.ShouldCrash(kMaxProcs, "x", /*after_op=*/true),
               "out-of-range pid");
  EXPECT_DEATH(ProcessBinding binding(kMaxProcs, nullptr),
               "out-of-range pid");
}

}  // namespace
}  // namespace rme
