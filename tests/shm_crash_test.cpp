// Real-process crash mode: shared-segment placement and the fork-based
// SIGKILL harness. These tests genuinely fork and kill processes, so the
// binary must stay single-threaded in the parent (gtest runs tests
// sequentially on the main thread; nothing here spawns threads).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "core/lock_registry.hpp"
#include "locks/lock.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"
#include "runtime/fork_harness.hpp"
#include "shm/shm_layout.hpp"
#include "shm/shm_segment.hpp"

namespace rme {
namespace {

TEST(ShmSegment, HeaderAndAlignedBumpAllocation) {
  shm::Segment seg(1u << 20);
  ASSERT_NE(seg.base(), nullptr);
  EXPECT_EQ(seg.header()->magic, shm::kSegmentMagic);
  EXPECT_EQ(seg.header()->version, shm::kSegmentVersion);
  EXPECT_EQ(seg.header()->capacity, seg.capacity());

  void* a = seg.Allocate(10, 8);
  void* b = seg.Allocate(100, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_TRUE(seg.Contains(a));
  EXPECT_TRUE(seg.Contains(b));
  EXPECT_GT(seg.bytes_used(), sizeof(shm::SegmentHeader));

  int local = 0;
  EXPECT_FALSE(seg.Contains(&local));
  EXPECT_TRUE(shm::PointerInAnySegment(a));
  EXPECT_FALSE(shm::PointerInAnySegment(&local));
}

TEST(ShmSegment, NamedSegmentMapsAndUnlinks) {
  shm::Segment seg(1u << 16, "rme_shm_crash_test_seg");
  EXPECT_EQ(seg.header()->magic, shm::kSegmentMagic);
  auto* v = seg.New<uint64_t>(42u);
  EXPECT_EQ(*v, 42u);
  EXPECT_TRUE(seg.Contains(v));
}

TEST(ShmSegment, PlacementScopeDivertsOperatorNew) {
  shm::Segment seg(1u << 20);
  EXPECT_EQ(shm::ActivePlacementSegment(), nullptr);

  std::vector<uint64_t>* vec = nullptr;
  uint64_t* aligned_obj = nullptr;
  {
    shm::PlacementScope scope(&seg);
    EXPECT_EQ(shm::ActivePlacementSegment(), &seg);
    vec = new std::vector<uint64_t>(128, 7u);  // object AND its buffer
    aligned_obj = new uint64_t(9u);
  }
  EXPECT_EQ(shm::ActivePlacementSegment(), nullptr);
  ASSERT_NE(vec, nullptr);
  EXPECT_TRUE(seg.Contains(vec));
  EXPECT_TRUE(seg.Contains(vec->data()));
  EXPECT_EQ(vec->at(127), 7u);
  EXPECT_TRUE(seg.Contains(aligned_obj));
  // delete on arena pointers runs destructors but leaves the memory to
  // the segment; outside the scope, allocation is back on the heap.
  delete vec;
  delete aligned_obj;
  auto* heap_obj = new uint64_t(1u);
  EXPECT_FALSE(seg.Contains(heap_obj));
  delete heap_obj;
}

TEST(ShmSegment, EveryRecoverableLockIsCapturedByConstruction) {
  // SupportsSharedPlacement's contract: construction inside a scope puts
  // the lock object (and, by the constructors' allocation discipline, its
  // whole ownership tree) into the segment. rmr::Atomic is alignas(64),
  // so this also exercises aligned operator new diversion.
  for (const std::string& name : RecoverableLockNames()) {
    shm::Segment seg(64u << 20);
    std::unique_ptr<RecoverableLock> lock;
    {
      shm::PlacementScope scope(&seg);
      lock = MakeLock(name, 4);
    }
    EXPECT_TRUE(lock->SupportsSharedPlacement()) << name;
    EXPECT_TRUE(seg.Contains(lock.get())) << name;
    // Destruction must tolerate arena pointers (delete no-ops on them).
    lock.reset();
  }
  auto mcs = MakeLock("mcs", 4);
  EXPECT_FALSE(mcs->SupportsSharedPlacement());
}

TEST(ForkHarness, FailureFreeRunCompletes) {
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 200;
  cfg.seed = 3;
  const ForkCrashResult r = RunForkCrashWorkload("wr", cfg);
  EXPECT_EQ(r.completed_passages, 800u);
  EXPECT_EQ(r.total_attempts, 800u);
  EXPECT_EQ(r.kills, 0u);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.cs_overlap_events, 0u);
  EXPECT_EQ(r.child_errors, 0u);
  EXPECT_FALSE(r.watchdog_fired);
  EXPECT_FALSE(r.log_overflow);
  // 4 events per passage plus 4 kDone markers.
  EXPECT_EQ(r.log_events, 4u * 800u + 4u);
  EXPECT_GT(r.segment_bytes_used, sizeof(shm::SegmentHeader));
}

TEST(ForkHarness, ChildSideSiteKillsAreAttributedAndSurvived) {
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 300;
  cfg.seed = 17;
  cfg.self_kill_per_op = 0.003;
  cfg.self_kill_budget = 25;
  const ForkCrashResult r = RunForkCrashWorkload("wr", cfg);
  EXPECT_EQ(r.completed_passages, 1200u);
  EXPECT_GT(r.kills, 0u);
  EXPECT_EQ(r.child_kills, r.kills);  // no parent-side kills configured
  EXPECT_LE(r.child_kills, 25u);      // budget respected across respawns
  EXPECT_GE(r.total_attempts, r.completed_passages);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.child_errors, 0u);
  EXPECT_FALSE(r.watchdog_fired);
}

/// Escalates passages until the SIGKILL budgets drain before the
/// workload completes (fast machines finish small workloads before the
/// parent's wall-clock kill cadence lands all of them).
ForkCrashResult RunWithKillFloor(const std::string& lock_name,
                                 uint64_t min_kills) {
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.seed = 29;
  cfg.independent_kills = 80;
  cfg.batch_kill_events = 15;  // batch_size 0: whole-system batches of 4
  cfg.kill_interval_ms = 0.25;
  cfg.self_kill_per_op = 0.0005;
  cfg.self_kill_budget = 20;
  ForkCrashResult r;
  for (uint64_t passages = 1000; passages <= 27000; passages *= 3) {
    cfg.passages_per_proc = passages;
    r = RunForkCrashWorkload(lock_name, cfg);
    EXPECT_EQ(r.completed_passages,
              static_cast<uint64_t>(cfg.num_procs) * passages)
        << lock_name;
    if (r.kills >= min_kills) break;
  }
  return r;
}

TEST(ForkHarness, EveryRegistryLockSurvivesIndependentAndBatchKills) {
  for (const std::string& name : RecoverableLockNames()) {
    SCOPED_TRACE(name);
    const ForkCrashResult r = RunWithKillFloor(name, 100);
    EXPECT_GE(r.kills, 100u);
    EXPECT_GT(r.batch_events, 0u);
    EXPECT_GT(r.parent_kills, 0u);
    EXPECT_EQ(r.me_violations, 0u);
    EXPECT_EQ(r.bcsr_violations, 0u);
    EXPECT_EQ(r.child_errors, 0u);
    EXPECT_FALSE(r.watchdog_fired);
    EXPECT_FALSE(r.log_overflow);
    EXPECT_GE(r.total_attempts, r.completed_passages);
  }
}

/// Shared assertions for the counter-survival regimes: the segment slots
/// are live (every pid priced its work), every per-pid snapshot sequence
/// is monotone across kills and respawns, and the per-passage bins
/// account for (at least) every cleanly-priced passage.
void ExpectCountersSurvived(const ForkCrashResult& r, int num_procs) {
  EXPECT_EQ(r.counter_regressions, 0u);
  EXPECT_EQ(r.phantom_crash_notes, 0u);
  ASSERT_EQ(r.pid_counters.size(), static_cast<size_t>(num_procs));
  for (const OpCounters& c : r.pid_counters) {
    EXPECT_GT(c.ops, 0u);
    EXPECT_GT(c.cc_rmrs, 0u);
    EXPECT_GT(c.dsm_rmrs, 0u);
    // Each instrumented op contributes at most one RMR per model.
    EXPECT_GE(c.ops, c.cc_rmrs);
    EXPECT_GE(c.ops, c.dsm_rmrs);
  }
  uint64_t binned = 0;
  for (const auto& [bucket, bin] : r.rmr_by_overlap) {
    EXPECT_GE(bucket, 0);
    EXPECT_GT(bin.passages, 0u);
    EXPECT_GE(bin.cc_max * bin.passages, bin.cc_sum);
    EXPECT_GE(bin.dsm_max * bin.passages, bin.dsm_sum);
    binned += bin.passages;
  }
  // Every completed passage is priced except the (rare) ones whose
  // kReqStart commit itself was killed.
  EXPECT_GT(binned, 0u);
  EXPECT_LE(binned, r.completed_passages);
  EXPECT_GE(binned + r.kills, r.completed_passages);
}

TEST(ForkHarness, CountersSurviveIndependentKills) {
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 2000;
  cfg.seed = 41;
  cfg.independent_kills = 40;
  cfg.kill_interval_ms = 0.25;
  const ForkCrashResult r = RunForkCrashWorkload("ba", cfg);
  EXPECT_EQ(r.completed_passages, 8000u);
  EXPECT_GT(r.kills, 0u);
  ExpectCountersSurvived(r, cfg.num_procs);
}

TEST(ForkHarness, CountersSurviveWholeBatchKills) {
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 2000;
  cfg.seed = 43;
  cfg.batch_kill_events = 10;
  cfg.batch_size = 0;  // whole-system batches of all n
  cfg.kill_interval_ms = 0.25;
  const ForkCrashResult r = RunForkCrashWorkload("ba", cfg);
  EXPECT_EQ(r.completed_passages, 8000u);
  EXPECT_GT(r.kills, 0u);
  ExpectCountersSurvived(r, cfg.num_procs);
  // A killed pid's slot still prices *all* incarnations: after ~10
  // system-wide batches each slot has far more ops than one passage.
  for (const OpCounters& c : r.pid_counters) EXPECT_GT(c.ops, 100u);
}

TEST(ForkHarness, PinnedCsKillLosesAtMostTheInFlightOp) {
  // SIGKILL pid 1 exactly at its first "cs.op" after-probe: the mirror
  // flushed that op before the probe fired, so the segment slot must sit
  // exactly one op past the corpse's committed kEnter snapshot.
  ForkCrashConfig cfg;
  cfg.num_procs = 2;
  cfg.passages_per_proc = 50;
  cfg.seed = 47;
  cfg.site_kill_site = "cs.op";
  cfg.site_kill_pid = 1;
  cfg.site_kill_nth = 1;
  const ForkCrashResult r = RunForkCrashWorkload("ba", cfg);
  EXPECT_EQ(r.completed_passages, 100u);
  EXPECT_EQ(r.kills, 1u);
  EXPECT_EQ(r.child_kills, 1u);
  EXPECT_EQ(r.counter_regressions, 0u);
  EXPECT_EQ(r.max_kill_ops_gap, 1u);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.phantom_crash_notes, 0u);
}

TEST(ForkHarness, KillInsideEnterBracketWindowIsNotAPhantomCrash) {
  // Lands the SIGKILL between the enter-slot ticket store and the kEnter
  // commit — the old in_cs flag logged this death as "crashed inside the
  // CS" with no matching kEnter (a phantom the checker had to shrug off).
  // The cs_ticket forensics classify it exactly: slot uncommitted, so the
  // respawn emits nothing.
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 200;
  cfg.seed = 53;
  cfg.site_kill_site = "h.enter.brk";
  cfg.site_kill_pid = 2;
  cfg.site_kill_nth = 5;
  const ForkCrashResult r = RunForkCrashWorkload("ba", cfg);
  EXPECT_EQ(r.completed_passages, 800u);
  EXPECT_EQ(r.kills, 1u);
  EXPECT_EQ(r.phantom_crash_notes, 0u);
  EXPECT_EQ(r.counter_regressions, 0u);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
}

TEST(ForkHarness, KillInsideExitBracketWindowStillReleasesTheLoggedCs) {
  // Lands the SIGKILL between the exit-slot ticket store and the kExit
  // commit: the log still shows the corpse as a CS holder, and under the
  // old flag ordering the respawn believed it died *outside* — leaking
  // the holder bit into a false ME violation on the next entry.
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 200;
  cfg.seed = 59;
  cfg.site_kill_site = "h.exit.brk";
  cfg.site_kill_pid = 2;
  cfg.site_kill_nth = 5;
  const ForkCrashResult r = RunForkCrashWorkload("ba", cfg);
  EXPECT_EQ(r.completed_passages, 800u);
  EXPECT_EQ(r.kills, 1u);
  EXPECT_EQ(r.phantom_crash_notes, 0u);
  EXPECT_EQ(r.counter_regressions, 0u);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
}

TEST(ForkHarness, KillBetweenPackedMirrorStoresLosesAtMostOneOp) {
  // The packed flush is two stores: the cc/dsm pair, then the `ops`
  // commit word. A SIGKILL can only land between them when it arrives
  // asynchronously (parent-side kills; self-kills fire at op probes,
  // i.e. after a completed flush), so no crash controller can pin this
  // window — the child reproduces it by hand: bump the private counters
  // as the next op would, flush only the first half, die.
  constexpr uint64_t kOps = 7;
  auto* slot = static_cast<SharedOpCounters*>(
      mmap(nullptr, sizeof(SharedOpCounters), PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  ASSERT_NE(slot, MAP_FAILED);
  new (slot) SharedOpCounters();

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ProcessBinding bind(0, nullptr, slot);
    // Default home (kMemoryNode) and a never-shared variable: every
    // FetchAdd counts 1 op, 1 CC RMR, 1 DSM RMR — slot is {k, k, k}.
    rmr::Atomic<uint64_t> v;
    for (uint64_t i = 0; i < kOps; ++i) v.FetchAdd(1, "torn.op");
    ProcessContext& ctx = CurrentProcess();
    ++ctx.counters.ops;
    ++ctx.counters.cc_rmrs;
    ++ctx.counters.dsm_rmrs;
    rmr_detail::FlushMirrorRmrs(ctx.mirror, ctx.counters.cc_rmrs,
                                ctx.counters.dsm_rmrs);
    raise(SIGKILL);  // dies before FlushMirrorCommit
    _exit(1);        // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Raw slot: the pair landed one op ahead of the commit word.
  EXPECT_EQ(slot->ops.load(), kOps);
  EXPECT_EQ(slot->cc_rmrs.load(), kOps + 1);
  EXPECT_EQ(slot->dsm_rmrs.load(), kOps + 1);
  // Committed view: Snapshot clamps the pair to the commit word, so the
  // torn flush costs exactly the one in-flight op and the reader
  // invariants (ops >= cc_rmrs, ops >= dsm_rmrs) hold throughout.
  const OpCounters torn = slot->Snapshot();
  EXPECT_EQ(torn.ops, kOps);
  EXPECT_EQ(torn.cc_rmrs, kOps);
  EXPECT_EQ(torn.dsm_rmrs, kOps);

  // Respawn: the binding seeds from the committed view and keeps the
  // slot cumulative and monotone — one more op fully committed repairs
  // the torn tail.
  pid_t respawn = fork();
  ASSERT_GE(respawn, 0);
  if (respawn == 0) {
    {
      ProcessBinding bind(0, nullptr, slot);
      rmr::Atomic<uint64_t> v;
      v.FetchAdd(1, "torn.resume");
    }
    _exit(0);
  }
  ASSERT_EQ(waitpid(respawn, &status, 0), respawn);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);
  const OpCounters healed = slot->Snapshot();
  EXPECT_EQ(healed.ops, kOps + 1);
  EXPECT_EQ(healed.cc_rmrs, kOps + 1);
  EXPECT_EQ(healed.dsm_rmrs, kOps + 1);

  munmap(slot, sizeof(SharedOpCounters));
}

TEST(ForkHarness, RecoveryStormKillsLandInRecoveryAndNobodyStarves) {
  // Thm 5.17 regime: pid 0's first 5 consecutive Recover() attempts all
  // die. Every kill must classify into the recovering phase, the victim's
  // super-passage must absorb exactly storm_kills retries, and no other
  // pid may starve while the storm rages.
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 150;
  cfg.seed = 67;
  cfg.storm_victim = 0;
  cfg.storm_kills = 5;
  const ForkCrashResult r = RunForkCrashWorkload("ba", cfg);
  EXPECT_EQ(r.completed_passages, 600u);
  EXPECT_EQ(r.kills, 5u);
  EXPECT_EQ(r.storm_kills, 5u);
  EXPECT_EQ(r.child_kills, 5u);  // storm fires through SigkillCrash
  EXPECT_EQ(r.kills_by_phase[static_cast<size_t>(
                shm::PidPhase::kRecovering)],
            5u);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.counter_regressions, 0u);
  EXPECT_EQ(r.phantom_crash_notes, 0u);
  EXPECT_EQ(r.hangs, 0u);
  ASSERT_EQ(r.per_pid.size(), 4u);
  // All 5 kills land inside the victim's first super-passage (req_open
  // survives the respawns), so its worst passage took 1 + 5 attempts.
  EXPECT_EQ(r.per_pid[0].max_attempts_per_passage, 6u);
  EXPECT_EQ(r.per_pid[0].incarnations, 6u);  // first spawn + 5 respawns
  for (size_t pid = 0; pid < 4; ++pid) {
    EXPECT_EQ(r.per_pid[pid].done, 150u) << pid;  // nobody starves
    if (pid != 0) {
      EXPECT_EQ(r.per_pid[pid].incarnations, 1u) << pid;
      EXPECT_EQ(r.per_pid[pid].max_attempts_per_passage, 1u) << pid;
    }
  }
}

TEST(ForkHarness, SystemWideRecoveryStormBatchKillsMidRecovery) {
  // §7.1 batch variant: every pid is a storm victim, so kills land while
  // other pids' recoveries are themselves in flight.
  ForkCrashConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 100;
  cfg.seed = 71;
  cfg.storm_victim = -1;
  cfg.storm_kills = 3;
  const ForkCrashResult r = RunForkCrashWorkload("ba", cfg);
  EXPECT_EQ(r.completed_passages, 400u);
  EXPECT_EQ(r.kills, 12u);
  EXPECT_EQ(r.storm_kills, 12u);
  EXPECT_EQ(r.kills_by_phase[static_cast<size_t>(
                shm::PidPhase::kRecovering)],
            12u);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.bcsr_violations, 0u);
  EXPECT_EQ(r.counter_regressions, 0u);
  EXPECT_EQ(r.hangs, 0u);
  ASSERT_EQ(r.per_pid.size(), 4u);
  for (size_t pid = 0; pid < 4; ++pid) {
    EXPECT_EQ(r.per_pid[pid].done, 100u) << pid;
    EXPECT_EQ(r.per_pid[pid].max_attempts_per_passage, 4u) << pid;
    EXPECT_EQ(r.per_pid[pid].incarnations, 4u) << pid;
  }
}

TEST(ForkHarness, WatchdogDetectsLivelockedChildAndStillTerminates) {
  // The hang-sim lock livelocks (uninstrumented) in Recover() after its
  // owner dies mid-CS. The per-child watchdog must flatline-detect the
  // stuck child, dump + SIGKILL it, respawn under backoff, and give the
  // pid up after max_hang_respawns — while the other pid finishes its
  // full quota and the harness exits with a verdict instead of stalling
  // until the global backstop.
  ForkCrashConfig cfg;
  cfg.num_procs = 2;
  cfg.passages_per_proc = 60;
  cfg.seed = 73;
  cfg.site_kill_site = "cs.op";  // pid 0 dies inside its first CS...
  cfg.site_kill_pid = 0;
  cfg.site_kill_nth = 1;
  cfg.hang_seconds = 0.25;  // ...and every respawn livelocks in Recover
  cfg.max_hang_respawns = 2;
  const ForkCrashResult r = RunForkCrashWorkload("hang-sim", cfg);
  // Detect, kill, respawn, re-detect: max_hang_respawns + 1 hangs total,
  // then the pid is abandoned.
  EXPECT_EQ(r.hangs, 3u);
  EXPECT_EQ(r.watchdog_kills, 3u);
  EXPECT_EQ(r.hung_abandoned, 1u);
  EXPECT_EQ(r.kills, 4u);  // the cs.op site kill + 3 watchdog kills
  EXPECT_EQ(r.child_kills, 1u);
  EXPECT_FALSE(r.watchdog_fired);  // per-child watchdog, not the backstop
  EXPECT_EQ(r.child_errors, 0u);
  EXPECT_EQ(r.me_violations, 0u);
  ASSERT_EQ(r.per_pid.size(), 2u);
  EXPECT_EQ(r.per_pid[0].done, 0u);   // died in its first CS, never again
  EXPECT_EQ(r.per_pid[1].done, 60u);  // the healthy pid is not starved
  EXPECT_EQ(r.completed_passages, 60u);
  // Every watchdog kill froze the victim inside Recover().
  EXPECT_EQ(r.kills_by_phase[static_cast<size_t>(
                shm::PidPhase::kRecovering)],
            3u);
  EXPECT_EQ(
      r.kills_by_phase[static_cast<size_t>(shm::PidPhase::kCs)], 1u);
}

TEST(ForkHarness, MirroringOffRestoresNoRmrMode) {
  ForkCrashConfig cfg;
  cfg.num_procs = 2;
  cfg.passages_per_proc = 100;
  cfg.seed = 61;
  cfg.mirror_counters = false;
  const ForkCrashResult r = RunForkCrashWorkload("wr", cfg);
  EXPECT_EQ(r.completed_passages, 200u);
  EXPECT_TRUE(r.rmr_by_overlap.empty());
  EXPECT_TRUE(r.pid_counters.empty());
  EXPECT_EQ(r.max_kill_ops_gap, 0u);
}

}  // namespace
}  // namespace rme
