// Tests for the block-sharded logical clock: global uniqueness and
// per-thread monotonicity of issued ticks at the default granularity,
// LogicalNow() frontier semantics, and exact seed-equivalent behaviour
// (per-op global ordering, consecutive failure timestamps) at
// clock_block = 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"

namespace rme {
namespace {

/// RAII: set clock_block for one test, restore the previous value after.
class ScopedClockBlock {
 public:
  explicit ScopedClockBlock(uint64_t b)
      : prev_(memory_model_config().clock_block) {
    memory_model_config().clock_block = b;
  }
  ~ScopedClockBlock() { memory_model_config().clock_block = prev_; }

 private:
  uint64_t prev_;
};

TEST(ClockShard, TicksUniqueAcrossThreadsAndMonotonePerThread) {
  ScopedClockBlock block(1024);
  constexpr int kThreads = 8;
  constexpr int kTicks = 20000;
  std::vector<std::vector<uint64_t>> per_thread(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto& mine = per_thread[static_cast<size_t>(t)];
      mine.reserve(kTicks);
      for (int i = 0; i < kTicks; ++i) mine.push_back(AdvanceLogicalClock());
    });
  }
  for (auto& t : ts) t.join();

  std::vector<uint64_t> all;
  all.reserve(static_cast<size_t>(kThreads) * kTicks);
  for (const auto& mine : per_thread) {
    for (size_t i = 1; i < mine.size(); ++i) {
      ASSERT_LT(mine[i - 1], mine[i]) << "per-thread monotonicity";
    }
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "a tick was issued twice";
}

TEST(ClockShard, InstrumentedOpsDrawUniqueTimestamps) {
  ScopedClockBlock block(64);
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  // Each thread hammers its own variable; only the clock is shared.
  std::vector<std::vector<uint64_t>> stamps(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      ProcessBinding bind(t, nullptr);
      rmr::Atomic<uint64_t> v{0};
      auto& mine = stamps[static_cast<size_t>(t)];
      mine.reserve(kOps);
      for (int i = 0; i < kOps; ++i) {
        v.FetchAdd(1, "clock.test");
        mine.push_back(CurrentProcess().clock_next);  // last issued tick
      }
    });
  }
  for (auto& t : ts) t.join();

  std::vector<uint64_t> all;
  for (const auto& mine : stamps) {
    for (size_t i = 1; i < mine.size(); ++i) {
      ASSERT_LT(mine[i - 1], mine[i]);
    }
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(ClockShard, LogicalNowBoundsEveryIssuedTick) {
  ScopedClockBlock block(1024);
  const uint64_t t0 = LogicalNow();
  const uint64_t tick = AdvanceLogicalClock();
  EXPECT_GT(tick, t0);  // new ticks come from blocks reserved at/after t0
  EXPECT_LE(tick, LogicalNow());
}

TEST(ClockShard, BlockOneIsSeedExactPerOpOrdering) {
  ScopedClockBlock block(1);
  ProcessBinding bind(0, nullptr);
  // Drain any leftover block so we start at the global frontier.
  CurrentProcess().clock_next = CurrentProcess().clock_end;
  const uint64_t t0 = LogicalNow();
  // Seed semantics: every op advances the global clock by exactly one and
  // returns its value; LogicalNow() tracks it tick for tick.
  for (uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(AdvanceLogicalClock(), t0 + i);
    EXPECT_EQ(LogicalNow(), t0 + i);
  }
  rmr::Atomic<uint64_t> v{0};
  v.Store(1, "clock.test");  // one instrumented op == one tick
  EXPECT_EQ(LogicalNow(), t0 + 6);
}

TEST(ClockShard, BlockOneFailureTimestampsMatchSeed) {
  ScopedClockBlock block(1);
  // Seed behaviour: a crash thrown from op k (after-op probe) carries
  // time == global clock == number of ops issued so far.
  SiteCrash crash(0, "clock.boom", /*after_op=*/true);
  ProcessBinding bind(0, &crash);
  CurrentProcess().clock_next = CurrentProcess().clock_end;
  const uint64_t t0 = LogicalNow();
  rmr::Atomic<uint64_t> v{0};
  for (int i = 0; i < 4; ++i) v.Store(1, "clock.ok");
  uint64_t crash_time = 0;
  try {
    v.Store(2, "clock.boom");
  } catch (const ProcessCrash& cr) {
    crash_time = cr.time;
  }
  EXPECT_EQ(crash_time, t0 + 5);
}

TEST(ClockShard, ZeroBlockIsClampedToOne) {
  ScopedClockBlock block(0);
  ProcessBinding bind(0, nullptr);
  CurrentProcess().clock_next = CurrentProcess().clock_end;
  const uint64_t t0 = LogicalNow();
  EXPECT_EQ(AdvanceLogicalClock(), t0 + 1);
  EXPECT_EQ(LogicalNow(), t0 + 1);
}

}  // namespace
}  // namespace rme
