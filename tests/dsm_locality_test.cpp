// White-box DSM-locality checks: the paper's DSM claims hinge on every
// wait being a local spin. These tests measure the DSM RMR count of
// specific protocol steps and assert the locality decisions (home-node
// placement) actually hold.
#include <gtest/gtest.h>

#include <thread>

#include "core/lock_registry.hpp"
#include "locks/qnode.hpp"
#include "locks/wr_lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

// The contended-wait tests below use spin-iteration counts (ops per
// passage, DSM growth with CS length) as the observable; the stage-3
// futex parking removes exactly those re-loads — a parked waiter issues
// no instrumented ops — so they pin the pure spinning regime.
struct ScopedSpinOnly {
  SpinConfig saved = spin_config();
  ScopedSpinOnly() {
    spin_config().park_enabled = false;
    // No wall-clock stage-2 cap either: with the cap, long waits decay
    // into bounded naps, which also suppresses the re-load counts.
    spin_config().spin_budget_us = 1'000'000'000u;
  }
  ~ScopedSpinOnly() { spin_config() = saved; }
};

TEST(DsmLocality, QNodeFieldsAreHomedAtOwner) {
  QNode node;
  node.SetHome(5);
  EXPECT_EQ(node.owner, 5);
  EXPECT_EQ(node.next.home(), 5);
  EXPECT_EQ(node.locked.home(), 5);
}

TEST(DsmLocality, SpinningOnOwnNodeIsFree) {
  // The MCS invariant under DSM: the waiter spins on its own node.
  QNode node;
  node.SetHome(2);
  ProcessBinding bind(2, nullptr);
  node.locked.Store(1);
  const OpCounters before = CurrentProcess().counters;
  for (int i = 0; i < 1000; ++i) (void)node.locked.Load();
  EXPECT_EQ((CurrentProcess().counters - before).dsm_rmrs, 0u);
}

TEST(DsmLocality, WrLockWaitersSpinLocally) {
  // p1 waits behind p0 for a while; its DSM count during the wait must
  // stay O(1) — the defining property of a local-spin lock. We measure
  // p1's whole contended Enter.
  WrLock lock(2, "dsmt");
  std::atomic<bool> p0_in{false};
  std::atomic<uint64_t> p1_enter_dsm{0};
  std::thread t0([&] {
    ProcessBinding bind(0, nullptr);
    lock.Recover(0);
    lock.Enter(0);
    p0_in = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    lock.Exit(0);
    lock.OnProcessDone(0);
  });
  std::thread t1([&] {
    ProcessBinding bind(1, nullptr);
    while (!p0_in) std::this_thread::yield();
    lock.Recover(1);
    const OpCounters before = CurrentProcess().counters;
    lock.Enter(1);  // spends ~80ms spinning behind p0
    p1_enter_dsm = (CurrentProcess().counters - before).dsm_rmrs;
    lock.Exit(1);
    lock.OnProcessDone(1);
  });
  t0.join();
  t1.join();
  // The wait is tens of milliseconds (millions of spin iterations): a
  // remote spin would count every load. Local spin: a small constant.
  EXPECT_LE(p1_enter_dsm.load(), 20u);
}

TEST(DsmLocality, ArbitratorAndPortLockWaitLocally) {
  // End-to-end: under contention, per-passage DSM means of the SA/BA
  // stacks must stay far below the spin-iteration count (which the cc
  // model would also bound, but DSM is the one that exposes a remote
  // spin instantly).
  ScopedSpinOnly spin_only;
  for (const std::string name : {"sa", "ba", "kport-tree", "cw-ticket"}) {
    auto lock = MakeLock(name, 8);
    WorkloadConfig cfg;
    cfg.num_procs = 8;
    cfg.passages_per_proc = 150;
    cfg.cs_shared_ops = 8;
    cfg.cs_yields = 2;  // long CS: waiters spin a lot
    const RunResult r = RunWorkload(*lock, cfg, nullptr);
    ASSERT_FALSE(r.aborted) << name;
    EXPECT_LE(r.passage.dsm.mean(), 200.0) << name;
    // Ops per passage dwarf DSM RMRs when spins are local.
    EXPECT_GT(r.passage.ops.mean(), r.passage.dsm.mean() * 2) << name;
  }
}

TEST(DsmLocality, GrLocksAreKnownRemoteSpinners) {
  // Negative control, documenting the CC-only caveat: the gr baselines'
  // owner-gate spins are remote under DSM, and the counter shows it.
  // The signature (robust to how often SpinPause yields): per-passage
  // DSM grows with how long waiters wait, while CC stays flat — a
  // local-spin lock bounds both.
  ScopedSpinOnly spin_only;
  auto run = [](int cs_ops, int cs_yields) {
    auto lock = MakeLock("gr-adaptive", 8);
    WorkloadConfig cfg;
    cfg.num_procs = 8;
    cfg.passages_per_proc = 100;
    cfg.cs_shared_ops = cs_ops;
    cfg.cs_yields = cs_yields;
    const RunResult r = RunWorkload(*lock, cfg, nullptr);
    EXPECT_FALSE(r.aborted);
    return r;
  };
  const RunResult short_cs = run(8, 2);
  const RunResult long_cs = run(32, 8);
  // CC cost per passage is a lock-structure constant, independent of CS
  // length (spin re-loads hit the spinner's own cached copy).
  EXPECT_NEAR(long_cs.passage.cc.mean(), short_cs.passage.cc.mean(), 4.0);
  // DSM cost scales with the wait: every spin re-load is remote.
  EXPECT_GT(long_cs.passage.dsm.mean(), short_cs.passage.dsm.mean() * 1.5)
      << "remote spinning should scale with CS length";
  EXPECT_GT(long_cs.passage.dsm.mean(), long_cs.passage.cc.mean())
      << "remote waiting should dominate the DSM count on long waits";
}

TEST(DsmLocality, CcAndDsmAreIndependentDimensions) {
  // A variable homed at the reader: DSM-free but still CC-miss-prone.
  rmr::Atomic<uint64_t> var{0, /*home=*/1};
  {
    ProcessBinding bind(0, nullptr);
    var.Store(1);  // remote write
  }
  ProcessBinding bind(1, nullptr);
  const OpCounters before = CurrentProcess().counters;
  (void)var.Load();  // CC miss (invalidated by p0) but DSM-local
  const OpCounters d = CurrentProcess().counters - before;
  EXPECT_EQ(d.cc_rmrs, 1u);
  EXPECT_EQ(d.dsm_rmrs, 0u);
}

}  // namespace
}  // namespace rme
