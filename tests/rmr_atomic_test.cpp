// Unit tests for the RMR-accounting substrate: CC cache-mask semantics,
// DSM home-node semantics, both counted simultaneously, crash hooks.
#include <gtest/gtest.h>

#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"

namespace rme {
namespace {

OpCounters CountersNow() { return CurrentProcess().counters; }

TEST(RmrAtomic, CcReadMissThenHits) {
  ProcessBinding bind(0, nullptr);
  rmr::Atomic<uint64_t> v{5};
  const OpCounters before = CountersNow();
  EXPECT_EQ(v.Load(), 5u);  // miss: installs cached copy
  EXPECT_EQ(v.Load(), 5u);  // hit
  EXPECT_EQ(v.Load(), 5u);  // hit
  const OpCounters d = CountersNow() - before;
  EXPECT_EQ(d.ops, 3u);
  EXPECT_EQ(d.cc_rmrs, 1u);
}

TEST(RmrAtomic, CcWriteAlwaysRmrAndKeepsCopy) {
  ProcessBinding bind(0, nullptr);
  rmr::Atomic<uint64_t> v{0};
  const OpCounters before = CountersNow();
  v.Store(1);               // RMR
  EXPECT_EQ(v.Load(), 1u);  // hit: writer keeps a valid copy
  const OpCounters d = CountersNow() - before;
  EXPECT_EQ(d.cc_rmrs, 1u);
}

TEST(RmrAtomic, CcStrictModeDropsWriterCopy) {
  // The config may only change while no binding is live (it is cached
  // into fast_flags at bind time; the binding dtor asserts this).
  memory_model_config().cc_strict = true;
  {
    ProcessBinding bind(0, nullptr);
    rmr::Atomic<uint64_t> v{0};
    const OpCounters before = CountersNow();
    v.Store(1);               // RMR
    EXPECT_EQ(v.Load(), 1u);  // miss under strict invalidation
    const OpCounters d = CountersNow() - before;
    EXPECT_EQ(d.cc_rmrs, 2u);
  }
  memory_model_config().cc_strict = false;
}

TEST(RmrAtomic, WriterInvalidatesOtherReaders) {
  rmr::Atomic<uint64_t> v{0};
  {
    ProcessBinding bind(0, nullptr);
    (void)v.Load();  // p0 caches
  }
  {
    ProcessBinding bind(1, nullptr);
    v.Store(9);  // p1 invalidates p0's copy
  }
  {
    ProcessBinding bind(0, nullptr);
    const OpCounters before = CountersNow();
    EXPECT_EQ(v.Load(), 9u);
    EXPECT_EQ((CountersNow() - before).cc_rmrs, 1u);  // miss again
  }
}

TEST(RmrAtomic, DsmHomeLocalIsFree) {
  ProcessBinding bind(3, nullptr);
  rmr::Atomic<uint64_t> local{0, 3};
  rmr::Atomic<uint64_t> remote{0, 2};
  rmr::Atomic<uint64_t> memory{0};  // kMemoryNode
  const OpCounters before = CountersNow();
  (void)local.Load();
  local.Store(1);
  (void)remote.Load();
  remote.Store(1);
  (void)memory.Load();
  const OpCounters d = CountersNow() - before;
  EXPECT_EQ(d.dsm_rmrs, 3u);  // remote x2 + memory x1
  EXPECT_EQ(d.ops, 5u);
}

TEST(RmrAtomic, SpinOnOwnCachedValueIsOneRmrTotal) {
  // The canonical MCS pattern: a process stores its flag, then spins; the
  // remote writer's single store costs the spinner exactly one extra RMR.
  rmr::Atomic<uint64_t> flag{0, /*home=*/0};
  {
    ProcessBinding bind(0, nullptr);
    flag.Store(1);
    const OpCounters before = CountersNow();
    for (int i = 0; i < 100; ++i) (void)flag.Load();
    EXPECT_EQ((CountersNow() - before).cc_rmrs, 0u);
    EXPECT_EQ((CountersNow() - before).dsm_rmrs, 0u);
  }
  {
    ProcessBinding bind(1, nullptr);
    flag.Store(0);
  }
  {
    ProcessBinding bind(0, nullptr);
    const OpCounters before = CountersNow();
    for (int i = 0; i < 100; ++i) (void)flag.Load();
    EXPECT_EQ((CountersNow() - before).cc_rmrs, 1u);
  }
}

TEST(RmrAtomic, ExchangeAndCasSemantics) {
  ProcessBinding bind(0, nullptr);
  rmr::Atomic<uint64_t> v{7};
  EXPECT_EQ(v.Exchange(8), 7u);
  EXPECT_TRUE(v.CompareExchange(8, 9));
  EXPECT_FALSE(v.CompareExchange(8, 10));
  EXPECT_EQ(v.RawLoad(), 9u);
  EXPECT_EQ(v.FetchAdd(1), 9u);
  EXPECT_EQ(v.FetchOr(0xf0), 10u);
  EXPECT_EQ(v.FetchAnd(0x0f), 0xfau);
  EXPECT_EQ(v.RawLoad(), 0xau);
}

TEST(RmrAtomic, FailedCasStillCountsAsRmr) {
  ProcessBinding bind(0, nullptr);
  rmr::Atomic<uint64_t> v{1};
  const OpCounters before = CountersNow();
  EXPECT_FALSE(v.CompareExchange(2, 3));
  EXPECT_EQ((CountersNow() - before).cc_rmrs, 1u);
}

TEST(RmrAtomic, PointerSpecialization) {
  ProcessBinding bind(0, nullptr);
  int a = 0, b = 0;
  rmr::Atomic<int*> p{&a};
  EXPECT_EQ(p.Exchange(&b), &a);
  EXPECT_TRUE(p.CompareExchange(&b, nullptr));
  EXPECT_EQ(p.Load(), nullptr);
}

TEST(RmrAtomic, UnboundThreadCountsNothing) {
  rmr::Atomic<uint64_t> v{0};
  const OpCounters before = CountersNow();
  v.Store(1);
  (void)v.Load();
  const OpCounters d = CountersNow() - before;
  EXPECT_EQ(d.cc_rmrs, 0u);
  EXPECT_EQ(d.dsm_rmrs, 0u);
}

TEST(RmrAtomic, LogicalClockAdvances) {
  ProcessBinding bind(0, nullptr);
  rmr::Atomic<uint64_t> v{0};
  const uint64_t t0 = LogicalNow();
  v.Store(1);
  (void)v.Load();
  EXPECT_GE(LogicalNow(), t0 + 2);
}

TEST(RmrAtomic, CrashHookFiresAtLabelledSite) {
  SiteCrash crash(0, "test.fas", /*after_op=*/true);
  ProcessBinding bind(0, &crash);
  rmr::Atomic<uint64_t> v{0};
  // The op must take effect even though the crash fires "after" it.
  EXPECT_THROW(v.Exchange(5, "test.fas"), ProcessCrash);
  EXPECT_EQ(v.RawLoad(), 5u);
  // One-shot: the next occurrence passes.
  EXPECT_EQ(v.Exchange(6, "test.fas"), 5u);
}

TEST(RmrAtomic, BeforeCrashLeavesValueUntouched) {
  SiteCrash crash(0, "test.store", /*after_op=*/false);
  ProcessBinding bind(0, &crash);
  rmr::Atomic<uint64_t> v{1};
  EXPECT_THROW(v.Store(2, "test.store"), ProcessCrash);
  EXPECT_EQ(v.RawLoad(), 1u);
}

}  // namespace
}  // namespace rme
