// Native-mode smoke tests: the identical lock sources compiled against
// bare std::atomic (RME_NATIVE_ATOMICS) must still provide mutual
// exclusion under real threads — no instrumentation crutches.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/lock_registry.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

#ifndef RME_NATIVE_ATOMICS
#error "native_test must be compiled against rme_native"
#endif

void HammerLock(const std::string& name, int n, int iters) {
  auto lock = MakeLock(name, n);
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::atomic<uint64_t> done{0};
  std::vector<std::thread> threads;
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      ProcessBinding bind(pid, nullptr);
      for (int i = 0; i < iters; ++i) {
        lock->Recover(pid);
        lock->Enter(pid);
        if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
        std::this_thread::yield();  // widen the violation window
        in_cs.fetch_sub(1);
        lock->Exit(pid);
        done.fetch_add(1);
      }
      lock->OnProcessDone(pid);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0) << name;
  EXPECT_EQ(done.load(), static_cast<uint64_t>(n) * iters) << name;
}

TEST(Native, McsMutualExclusion) { HammerLock("mcs", 8, 2000); }
TEST(Native, WrMutualExclusion) { HammerLock("wr", 8, 1500); }
TEST(Native, BaMutualExclusion) { HammerLock("ba", 8, 800); }
TEST(Native, IterBaMutualExclusion) { HammerLock("ba-iter", 8, 800); }
TEST(Native, KPortTreeMutualExclusion) { HammerLock("kport-tree", 8, 1500); }
TEST(Native, YaTournamentMutualExclusion) {
  HammerLock("ya-tournament", 8, 1500);
}
TEST(Native, TicketMutualExclusion) { HammerLock("cw-ticket", 8, 1500); }

TEST(Native, EveryLockSingleProcess) {
  for (const auto& name : AllLockNames()) {
    auto lock = MakeLock(name, 2);
    ProcessBinding bind(0, nullptr);
    for (int i = 0; i < 20; ++i) {
      lock->Recover(0);
      lock->Enter(0);
      lock->Exit(0);
    }
    lock->OnProcessDone(0);
  }
}

}  // namespace
}  // namespace rme
