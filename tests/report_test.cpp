// Tests for the report module and the ScopedPassage guard.
#include <gtest/gtest.h>

#include "core/guard.hpp"
#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "runtime/report.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

RunResult SampleRun(bool crashy) {
  auto lock = MakeLock("ba", 4);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 40;
  std::unique_ptr<CrashController> crash;
  if (crashy) crash = std::make_unique<RandomCrash>(3, 0.003, -1);
  return RunWorkload(*lock, cfg, crash.get());
}

TEST(Report, SummaryLineContainsKeyFields) {
  const RunResult r = SampleRun(false);
  const std::string s = SummaryLine("ba", r);
  EXPECT_NE(s.find("ba: passages=160"), std::string::npos);
  EXPECT_NE(s.find("failures=0"), std::string::npos);
  EXPECT_NE(s.find("maxlvl=1"), std::string::npos);
  EXPECT_EQ(s.find("ABORTED"), std::string::npos);
}

TEST(Report, CsvRowMatchesHeaderArity) {
  const RunResult r = SampleRun(true);
  const std::string header = CsvHeader();
  const std::string row = CsvRow("ba", r);
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(header), count_commas(row));
  EXPECT_EQ(row.rfind("ba,", 0), 0u);
}

TEST(Report, BlockReportShowsOverlapBucketsWhenCrashy) {
  const RunResult r = SampleRun(true);
  const std::string block = BlockReport("ba", r);
  EXPECT_NE(block.find("== ba =="), std::string::npos);
  EXPECT_NE(block.find("segments cc"), std::string::npos);
  if (r.failures > 0) {
    EXPECT_NE(block.find("victims"), std::string::npos);
  }
}

TEST(ScopedPassage, EntersAndExits) {
  auto lock = MakeLock("wr", 2);
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 5; ++i) {
    ScopedPassage passage(*lock, 0);
    // in CS here
  }
  // If Exit were skipped, the next Enter would deadlock; reaching here
  // with a re-acquire proves release happened.
  ScopedPassage final_passage(*lock, 0);
}

TEST(ScopedPassage, SkipsExitWhenUnwoundByCrash) {
  auto lock = MakeLock("wr", 2);
  SiteCrash crash(0, "cs.body", true);
  ProcessBinding bind(0, &crash);
  rmr::Atomic<uint64_t> scratch{0};
  bool crashed = false;
  try {
    ScopedPassage passage(*lock, 0);
    scratch.Store(1, "cs.body");  // crashes inside the CS
  } catch (const ProcessCrash&) {
    crashed = true;
  }
  EXPECT_TRUE(crashed);
  // The guard must NOT have run Exit: the lock still believes p0 is in
  // its CS (state machine InCS) — exactly the crashed-in-CS situation —
  // and the next passage re-enters via BCSR, then exits cleanly.
  CurrentProcess().SetCrashController(nullptr);
  {
    ScopedPassage passage(*lock, 0);
  }
}

TEST(ScopedPassage, WorksUnderTheSimulator) {
  auto lock = MakeLock("ba", 3);
  std::atomic<int> completed{0};
  DeterministicSim::Options options;
  options.num_procs = 3;
  options.seed = 5;
  const bool ok = DeterministicSim::Run(options, [&](int pid) {
    ProcessBinding bind(pid, nullptr);
    for (int i = 0; i < 10; ++i) {
      ScopedPassage passage(*lock, pid);
      completed.fetch_add(1);
    }
    lock->OnProcessDone(pid);
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(completed.load(), 30);
}

TEST(SimTrace, RecordsSchedulingDecisions) {
  rmr::Atomic<uint64_t> v{0};
  DeterministicSim::Options options;
  options.num_procs = 2;
  options.seed = 9;
  options.trace_capacity = 64;
  DeterministicSim::Run(options, [&](int pid) {
    ProcessBinding bind(pid, nullptr);
    for (int i = 0; i < 50; ++i) v.FetchAdd(1, "trace.op");
  });
  const auto trace = DeterministicSim::LastRunTrace();
  ASSERT_EQ(trace.size(), 64u);  // ring filled and wrapped
  // Oldest-first ordering.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LT(trace[i - 1].step, trace[i].step);
  }
  const std::string text = DeterministicSim::FormatTrace(trace);
  EXPECT_NE(text.find("trace.op"), std::string::npos);
  // Both processes appear.
  EXPECT_NE(text.find("p0"), std::string::npos);
  EXPECT_NE(text.find("p1"), std::string::npos);
}

}  // namespace
}  // namespace rme
