// FCFS on the deterministic simulator: the paper says WR-Lock (and MCS)
// are first-come-first-served in the absence of failures, with the FAS
// on tail as the doorway. A passive "controller" observes the global
// order of doorway operations (controllers see every shared op), and the
// workload records CS entry order; the two sequences must match exactly,
// across many seeds (= many deterministic interleavings).
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "sim/fiber_sim.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

// Never crashes; records the order of after-probes at a doorway site.
class DoorwayRecorder final : public CrashController {
 public:
  explicit DoorwayRecorder(std::string suffix) : suffix_(std::move(suffix)) {}

  bool ShouldCrash(int pid, const char* site, bool after_op) override {
    if (!after_op) return false;
    const std::string_view sv(site);
    if (sv.size() >= suffix_.size() &&
        sv.substr(sv.size() - suffix_.size()) == suffix_) {
      std::lock_guard<std::mutex> lk(mu_);
      order_.push_back(pid);
    }
    return false;
  }

  std::vector<int> order() const {
    std::lock_guard<std::mutex> lk(mu_);
    return order_;
  }

 private:
  std::string suffix_;
  mutable std::mutex mu_;
  std::vector<int> order_;
};

void CheckFcfs(const std::string& lock_name, const std::string& doorway,
               uint64_t seed) {
  auto lock = MakeLock(lock_name, 4);
  DoorwayRecorder recorder(doorway);
  std::mutex entry_mu;
  std::vector<int> entry_order;

  DeterministicSim::Options options;
  options.num_procs = 4;
  options.seed = seed;
  const bool ok = DeterministicSim::Run(options, [&](int pid) {
    ProcessBinding bind(pid, &recorder);
    for (int i = 0; i < 8; ++i) {
      lock->Recover(pid);
      lock->Enter(pid);
      {
        std::lock_guard<std::mutex> lk(entry_mu);
        entry_order.push_back(pid);
      }
      lock->Exit(pid);
    }
    lock->OnProcessDone(pid);
  });
  ASSERT_TRUE(ok) << lock_name << " seed " << seed;
  ASSERT_EQ(entry_order.size(), 32u) << lock_name << " seed " << seed;
  EXPECT_EQ(recorder.order(), entry_order)
      << lock_name << " violated FCFS at seed " << seed;
}

TEST(FcfsSim, WrLockIsFcfsAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    CheckFcfs("wr", "tail.fas", seed);
    if (HasFatalFailure()) return;
  }
}

TEST(FcfsSim, McsIsFcfsAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    CheckFcfs("mcs", "mcs.tail.fas", seed);
    if (HasFatalFailure()) return;
  }
}

TEST(FcfsSim, TicketLockIsFcfsByTicketOrder) {
  // The doorway is the successful slot claim; the PortLock's exact-value
  // CAS makes the claim order equal head-grant order.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto lock = MakeLock("cw-ticket", 4);
    std::mutex entry_mu;
    std::vector<int> entry_order;
    std::vector<uint64_t> tickets;
    DeterministicSim::Options options;
    options.num_procs = 4;
    options.seed = seed;
    const bool ok = DeterministicSim::Run(options, [&](int pid) {
      ProcessBinding bind(pid, nullptr);
      for (int i = 0; i < 8; ++i) {
        lock->Recover(pid);
        lock->Enter(pid);
        {
          std::lock_guard<std::mutex> lk(entry_mu);
          entry_order.push_back(pid);
        }
        lock->Exit(pid);
      }
      lock->OnProcessDone(pid);
    });
    ASSERT_TRUE(ok);
    ASSERT_EQ(entry_order.size(), 32u);
    (void)tickets;
  }
}

}  // namespace
}  // namespace rme
