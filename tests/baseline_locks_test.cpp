// Tests for the Table-1 baseline locks: GrAdaptiveLock (O(F) adaptive
// unbounded), GrSemiLock (O(n) semi-adaptive bounded) and TicketRLock
// (Chan–Woelfel-style): ME, recovery, liveness, and regime behaviour.
#include <gtest/gtest.h>

#include "crash/crash.hpp"
#include "locks/gr_adaptive_lock.hpp"
#include "locks/gr_semi_lock.hpp"
#include "locks/ticket_rlock.hpp"
#include "rmr/counters.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

template <typename LockT>
class BaselineLockTest : public ::testing::Test {};

using BaselineTypes =
    ::testing::Types<GrAdaptiveLock, GrSemiLock, TicketRLock>;
TYPED_TEST_SUITE(BaselineLockTest, BaselineTypes);

TYPED_TEST(BaselineLockTest, SingleProcessPassages) {
  TypeParam lock(4);
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 10; ++i) {
    lock.Recover(0);
    lock.Enter(0);
    lock.Exit(0);
  }
}

TYPED_TEST(BaselineLockTest, MutualExclusionUnderContention) {
  TypeParam lock(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 250;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.max_concurrent_cs, 1);
  EXPECT_EQ(r.completed_passages, 8u * 250u);
}

TYPED_TEST(BaselineLockTest, CrashStormStaysExclusiveAndLive) {
  TypeParam lock(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 120;
  cfg.seed = 11;
  RandomCrash crash(53, 0.0015, -1);
  const RunResult r = RunWorkload(lock, cfg, &crash);
  EXPECT_FALSE(r.aborted) << "liveness under crash storm";
  EXPECT_EQ(r.me_violations, 0u) << "strong ME";
  EXPECT_GT(r.failures, 0u);
  EXPECT_EQ(r.completed_passages, 8u * 120u);
}

TYPED_TEST(BaselineLockTest, FailureFreeRmrIsConstant) {
  TypeParam lock(16);
  WorkloadConfig cfg;
  cfg.num_procs = 16;
  cfg.passages_per_proc = 150;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_LE(r.passage.cc.mean(), 30.0) << "O(1) failure-free";
}

TEST(GrAdaptiveLock, EpochBumpsTrackFailures) {
  GrAdaptiveLock lock(4);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 150;
  RandomCrash crash(61, 0.002, -1);
  const RunResult r = RunWorkload(lock, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_GT(lock.EpochRaw(), 0u) << "failures should reset the lock";
  // Not every crash lands in the Trying window, so bumps <= failures.
  EXPECT_LE(lock.EpochRaw(), r.failures);
}

TEST(GrSemiLock, AnyFailureCostsThetaN) {
  // Semi-adaptive signature: a passage that witnesses a failure pays an
  // O(n) bill; failure-free passages stay O(1).
  const int n = 32;
  GrSemiLock lock(n);
  WorkloadConfig cfg;
  cfg.num_procs = n;
  cfg.passages_per_proc = 60;
  RandomCrash crash(67, 0.0015, -1);
  const RunResult r = RunWorkload(lock, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  // Max passage cost should reflect the Theta(n) reset scan.
  EXPECT_GE(r.passage.cc.max(), static_cast<double>(n));
}

TEST(GrAdaptiveLock, CrashInCsReentersDirectly) {
  GrAdaptiveLock lock(2);
  ProcessBinding bind(0, nullptr);
  ProcessContext& ctx = CurrentProcess();
  lock.Recover(0);
  lock.Enter(0);
  // Simulated crash in CS: re-entry must be bounded (BCSR).
  const OpCounters before = ctx.counters;
  lock.Recover(0);
  lock.Enter(0);
  EXPECT_LE((ctx.counters - before).ops, 8u);
  lock.Exit(0);
}

TEST(TicketRLock, ExposesFifoThroughPortLock) {
  TicketRLock lock(4);
  ProcessBinding bind(2, nullptr);
  for (int i = 0; i < 5; ++i) {
    lock.Recover(2);
    lock.Enter(2);
    lock.Exit(2);
  }
}

}  // namespace
}  // namespace rme
