// Tests for the deterministic fiber simulator, plus randomized
// model-checking sweeps of the whole lock zoo: hundreds of seeds, each a
// distinct fully reproducible interleaving, with strong/weak mutual
// exclusion, BCSR and liveness verified on every one.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

TEST(FiberSim, RunsEveryFiberToCompletion) {
  std::atomic<int> ran{0};
  DeterministicSim::Options options;
  options.num_procs = 5;
  options.seed = 3;
  const bool ok = DeterministicSim::Run(options, [&](int pid) {
    EXPECT_GE(pid, 0);
    EXPECT_LT(pid, 5);
    ran.fetch_add(1);
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(ran.load(), 5);
}

TEST(FiberSim, InterleavesAtSharedOps) {
  // Two fibers alternate incrementing; with yields at every op both must
  // observe values written by the other (impossible if fibers ran to
  // completion one after the other without interleaving).
  rmr::Atomic<uint64_t> turn_log{0};
  std::atomic<int> switches{0};
  DeterministicSim::Options options;
  options.num_procs = 2;
  options.seed = 7;
  DeterministicSim::Run(options, [&](int pid) {
    ProcessBinding bind(pid, nullptr);
    uint64_t last_seen = ~0ULL;
    for (int i = 0; i < 200; ++i) {
      const uint64_t v = turn_log.Load();
      if (last_seen != ~0ULL && v != last_seen) switches.fetch_add(1);
      last_seen = v + 1;
      turn_log.Store(v + 1);
    }
  });
  EXPECT_GT(switches.load(), 10) << "fibers should interleave frequently";
}

TEST(FiberSim, DeterministicAcrossRuns) {
  auto run_once = [](uint64_t seed) {
    auto lock = MakeLock("wr", 3);
    SimWorkloadConfig cfg;
    cfg.num_procs = 3;
    cfg.passages_per_proc = 30;
    cfg.seed = seed;
    RandomCrash crash(seed + 1, 0.002, -1);
    return RunSimWorkload(*lock, cfg, &crash);
  };
  const SimResult a = run_once(11);
  const SimResult b = run_once(11);
  EXPECT_EQ(a.scheduler_steps, b.scheduler_steps);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.completed_passages, b.completed_passages);
  EXPECT_EQ(a.passage_cc.sum(), b.passage_cc.sum());

  const SimResult c = run_once(12);
  // A different seed produces a genuinely different schedule (steps can
  // coincide, but all three matching would be astronomically unlikely).
  EXPECT_TRUE(c.scheduler_steps != a.scheduler_steps ||
              c.passage_cc.sum() != a.passage_cc.sum() ||
              c.failures != a.failures);
}

TEST(FiberSim, StuckRunIsDetectedAndUnwound) {
  rmr::Atomic<uint64_t> never{0};
  DeterministicSim::Options options;
  options.num_procs = 2;
  options.seed = 1;
  options.max_steps = 20000;
  const bool ok = DeterministicSim::Run(options, [&](int pid) {
    ProcessBinding bind(pid, nullptr);
    if (pid == 0) {
      uint64_t iter = 0;
      try {
        while (never.Load() == 0) SpinPause(iter++);  // waits forever
      } catch (const RunAborted&) {
        throw;  // unwound by the scheduler
      }
    }
  });
  EXPECT_FALSE(ok) << "deadlocked run must be reported";
}

// ---- Randomized model checking: the lock zoo across many seeds. ----

struct SweepCase {
  std::string lock;
  bool crashy;
};

class SimSweep : public ::testing::TestWithParam<SweepCase> {};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = info.param.lock + (info.param.crashy ? "_crashy" : "_clean");
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

TEST_P(SimSweep, InvariantsAcrossSeeds) {
  const SweepCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    auto lock = MakeLock(c.lock, 4);
    SimWorkloadConfig cfg;
    cfg.num_procs = 4;
    cfg.passages_per_proc = 12;
    cfg.seed = seed;
    std::unique_ptr<CrashController> crash;
    if (c.crashy) {
      crash = std::make_unique<RandomCrash>(seed * 31, 0.004, -1);
    }
    const SimResult r = RunSimWorkload(*lock, cfg, crash.get());
    ASSERT_TRUE(r.ran_to_completion)
        << c.lock << " stuck at seed " << seed;
    EXPECT_EQ(r.completed_passages, 4u * 12u) << c.lock << " seed " << seed;
    EXPECT_EQ(r.me_violations, 0u) << c.lock << " seed " << seed;
    if (lock->IsStronglyRecoverable()) {
      EXPECT_EQ(r.bcsr_violations, 0u) << c.lock << " seed " << seed;
      EXPECT_EQ(r.max_concurrent_cs, 1) << c.lock << " seed " << seed;
    }
    if (!c.crashy) {
      EXPECT_EQ(r.failures, 0u);
      EXPECT_EQ(r.max_concurrent_cs, 1) << c.lock << " seed " << seed;
    }
  }
}

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> cases;
  for (const auto& lock : RecoverableLockNames()) {
    cases.push_back({lock, false});
    cases.push_back({lock, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Zoo, SimSweep, ::testing::ValuesIn(SweepCases()),
                         SweepName);

// The weak lock's admissible violation, reproduced deterministically:
// under an unsafe (after-FAS) crash schedule some seed must produce a
// multi-process CS overlap, and every overlap must be covered by an
// active consequence interval (me_violations stays 0).
TEST(SimWeakMe, UnsafeCrashesProduceCoveredOverlaps) {
  int overlaps_seen = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    auto lock = MakeLock("wr", 4);
    SimWorkloadConfig cfg;
    cfg.num_procs = 4;
    cfg.passages_per_proc = 15;
    cfg.seed = seed;
    // Every process crashes after its first FAS.
    std::vector<std::unique_ptr<CrashController>> parts;
    std::vector<CrashController*> ptrs;
    for (int pid = 0; pid < 4; ++pid) {
      parts.push_back(std::make_unique<SiteCrash>(pid, "wr.tail.fas", true,
                                                  /*nth=*/2, /*count=*/2));
      ptrs.push_back(parts.back().get());
    }
    CompositeCrash crash(ptrs);
    const SimResult r = RunSimWorkload(*lock, cfg, &crash);
    ASSERT_TRUE(r.ran_to_completion) << "seed " << seed;
    EXPECT_EQ(r.me_violations, 0u) << "uncovered overlap at seed " << seed;
    if (r.max_concurrent_cs > 1) ++overlaps_seen;
  }
  EXPECT_GT(overlaps_seen, 0)
      << "across 60 seeds, unsafe crashes should produce at least one "
         "(admissible) weak-ME overlap";
}

// Strong locks must NEVER overlap, across the same adversarial schedule.
TEST(SimStrongMe, NoOverlapUnderUnsafeSchedules) {
  for (const std::string lock_name : {"sa", "ba", "gr-adaptive"}) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      auto lock = MakeLock(lock_name, 3);
      SimWorkloadConfig cfg;
      cfg.num_procs = 3;
      cfg.passages_per_proc = 10;
      cfg.seed = seed;
      SpacedSiteCrash crash("fas", 7, 20);
      const SimResult r = RunSimWorkload(*lock, cfg, &crash);
      ASSERT_TRUE(r.ran_to_completion) << lock_name << " seed " << seed;
      EXPECT_EQ(r.max_concurrent_cs, 1) << lock_name << " seed " << seed;
      EXPECT_EQ(r.me_violations, 0u) << lock_name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rme
