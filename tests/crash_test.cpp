// Unit tests for the crash-injection controllers.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "crash/crash.hpp"
#include "rmr/counters.hpp"
#include "rmr/memory_model.hpp"

namespace rme {
namespace {

TEST(NeverCrash, NeverFires) {
  NeverCrash c;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(c.ShouldCrash(0, "x", true));
  }
  EXPECT_EQ(c.crashes(), 0u);
}

TEST(RandomCrash, RespectsBudget) {
  RandomCrash c(1, /*p=*/1.0, /*budget=*/5);
  int fired = 0;
  for (int i = 0; i < 100; ++i) fired += c.ShouldCrash(0, "x", true);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(c.crashes(), 5u);
}

TEST(RandomCrash, OnlyFiresOnAfterProbe) {
  RandomCrash c(1, 1.0, -1);
  EXPECT_FALSE(c.ShouldCrash(0, "x", false));
  EXPECT_TRUE(c.ShouldCrash(0, "x", true));
}

TEST(RandomCrash, RateRoughlyMatchesProbability) {
  RandomCrash c(99, 0.01, -1);
  int fired = 0;
  for (int i = 0; i < 100000; ++i) fired += c.ShouldCrash(3, "x", true);
  EXPECT_NEAR(fired / 100000.0, 0.01, 0.003);
}

TEST(RandomCrash, BudgetSharedAcrossProcesses) {
  RandomCrash c(1, 1.0, 10);
  std::atomic<int> fired{0};
  std::vector<std::thread> ts;
  for (int pid = 0; pid < 4; ++pid) {
    ts.emplace_back([&, pid] {
      for (int i = 0; i < 100; ++i) fired += c.ShouldCrash(pid, "x", true);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(fired.load(), 10);
}

TEST(SiteCrash, FiresOnNthOccurrence) {
  SiteCrash c(2, "fas", true, /*nth=*/3);
  EXPECT_FALSE(c.ShouldCrash(2, "fas", true));  // 1st
  EXPECT_FALSE(c.ShouldCrash(2, "fas", true));  // 2nd
  EXPECT_FALSE(c.ShouldCrash(1, "fas", true));  // wrong pid
  EXPECT_FALSE(c.ShouldCrash(2, "other", true));
  EXPECT_FALSE(c.ShouldCrash(2, "fas", false));  // wrong phase
  EXPECT_TRUE(c.ShouldCrash(2, "fas", true));    // 3rd
  EXPECT_FALSE(c.ShouldCrash(2, "fas", true));   // one-shot
}

TEST(SiteCrash, CountAllowsRepeats) {
  SiteCrash c(0, "s", true, 1, /*count=*/2);
  EXPECT_TRUE(c.ShouldCrash(0, "s", true));
  EXPECT_TRUE(c.ShouldCrash(0, "s", true));
  EXPECT_FALSE(c.ShouldCrash(0, "s", true));
}

TEST(NthOpCrash, CountsPerProcessOps) {
  NthOpCrash c(1, 3);
  EXPECT_FALSE(c.ShouldCrash(1, "a", true));
  EXPECT_FALSE(c.ShouldCrash(0, "a", true));  // other pid not counted
  EXPECT_FALSE(c.ShouldCrash(1, "b", true));
  EXPECT_TRUE(c.ShouldCrash(1, "c", true));
  EXPECT_FALSE(c.ShouldCrash(1, "d", true));
}

TEST(BatchCrash, FiresEachBatchMemberOnce) {
  // Batch at logical time 0 (already reached): pids 0 and 2.
  BatchCrash c({{0, 0b101}});
  EXPECT_TRUE(c.ShouldCrash(0, "x", true));
  EXPECT_FALSE(c.ShouldCrash(0, "x", true));  // already fired
  EXPECT_FALSE(c.ShouldCrash(1, "x", true));  // not in batch
  EXPECT_TRUE(c.ShouldCrash(2, "x", true));
  EXPECT_EQ(c.crashes(), 2u);
}

TEST(BatchCrash, WaitsForLogicalTime) {
  const uint64_t future = LogicalNow() + 5;
  BatchCrash c({{future, 0b1}});
  EXPECT_FALSE(c.ShouldCrash(0, "x", true));
  ProcessBinding bind(0, nullptr);
  rmr::Atomic<uint64_t> v{0};
  for (int i = 0; i < 6; ++i) v.Store(1);
  EXPECT_TRUE(c.ShouldCrash(0, "x", true));
}

TEST(CompositeCrash, DelegatesInOrder) {
  SiteCrash a(0, "s1", true);
  SiteCrash b(0, "s2", true);
  CompositeCrash c({&a, &b});
  EXPECT_TRUE(c.ShouldCrash(0, "s2", true));
  EXPECT_TRUE(c.ShouldCrash(0, "s1", true));
  EXPECT_FALSE(c.ShouldCrash(0, "s1", true));
  EXPECT_EQ(c.crashes(), 2u);
}

TEST(CrashThrow, UnwindsThroughInstrumentedOp) {
  SiteCrash crash(0, "boom", true);
  ProcessBinding bind(0, &crash);
  rmr::Atomic<uint64_t> v{0};
  bool caught = false;
  try {
    v.Store(1, "boom");
  } catch (const ProcessCrash& cr) {
    caught = true;
    EXPECT_EQ(cr.pid, 0);
    EXPECT_STREQ(cr.site, "boom");
    EXPECT_TRUE(cr.after_op);
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(v.RawLoad(), 1u);  // after-op crash: effect persisted
}


TEST(SpacedSiteCrash, MatchesBySuffixWithPeriodAndBudget) {
  SpacedSiteCrash c("tail.fas", /*period=*/3, /*budget=*/2);
  int fired = 0;
  for (int i = 0; i < 30; ++i) {
    fired += c.ShouldCrash(i % 4, "wr.tail.fas", true);
  }
  EXPECT_EQ(fired, 2);  // budget caps it
  EXPECT_EQ(c.crashes(), 2u);
}

TEST(SpacedSiteCrash, PeriodSpacing) {
  SpacedSiteCrash c("x", /*period=*/5, /*budget=*/100);
  std::vector<int> fire_at;
  for (int i = 1; i <= 25; ++i) {
    if (c.ShouldCrash(0, "a.x", true)) fire_at.push_back(i);
  }
  EXPECT_EQ(fire_at, (std::vector<int>{5, 10, 15, 20, 25}));
}

TEST(SpacedSiteCrash, SuffixMustMatchEnd) {
  SpacedSiteCrash c("tail.fas", 1, 100);
  EXPECT_FALSE(c.ShouldCrash(0, "tail.fas.other", true));
  EXPECT_FALSE(c.ShouldCrash(0, "fas", true));
  EXPECT_FALSE(c.ShouldCrash(0, "wr.tail.fas", false));  // wrong phase
  EXPECT_TRUE(c.ShouldCrash(0, "wr.tail.fas", true));
  EXPECT_TRUE(c.ShouldCrash(0, "tail.fas", true));  // exact match counts
}

TEST(SpacedSiteCrash, EmptySuffixMatchesEverything) {
  SpacedSiteCrash c("", 2, 100);
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += c.ShouldCrash(0, "anything", true);
  EXPECT_EQ(fired, 5);
}

TEST(BatchCrash, SiteSuffixRestrictsBatchMembers) {
  BatchCrash c({{0, 0b11}}, "tail.fas");
  EXPECT_FALSE(c.ShouldCrash(0, "other.op", true));  // wrong site
  EXPECT_TRUE(c.ShouldCrash(0, "f.tail.fas", true));
  EXPECT_FALSE(c.ShouldCrash(0, "f.tail.fas", true));  // fired already
  EXPECT_TRUE(c.ShouldCrash(1, "g.tail.fas", true));
  EXPECT_FALSE(c.ShouldCrash(2, "g.tail.fas", true));  // not in batch
}

}  // namespace
}  // namespace rme
