// Tests for the splitter: biased admission, persistence across crashes,
// concurrent race admits exactly one.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/splitter.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

TEST(Splitter, FirstProcessTakesFastPath) {
  Splitter s;
  ProcessBinding bind(3, nullptr);
  EXPECT_TRUE(s.TryFastPath(3));
  EXPECT_TRUE(s.Occupies(3));
  EXPECT_EQ(s.OwnerRaw(), 4u);
  s.Release(3);
  EXPECT_EQ(s.OwnerRaw(), 0u);
}

TEST(Splitter, SecondProcessIsDiverted) {
  Splitter s;
  {
    ProcessBinding bind(0, nullptr);
    EXPECT_TRUE(s.TryFastPath(0));
  }
  {
    ProcessBinding bind(1, nullptr);
    EXPECT_FALSE(s.TryFastPath(1));
    EXPECT_FALSE(s.Occupies(1));
  }
  {
    ProcessBinding bind(0, nullptr);
    s.Release(0);
  }
  {
    ProcessBinding bind(1, nullptr);
    EXPECT_TRUE(s.TryFastPath(1));
  }
}

TEST(Splitter, RetryAfterCrashIsIdempotentForOwner) {
  // The fast-path owner re-running TryFastPath (post-crash re-entry)
  // keeps the path: CAS fails but the follow-up read recognizes it.
  Splitter s;
  ProcessBinding bind(2, nullptr);
  EXPECT_TRUE(s.TryFastPath(2));
  EXPECT_TRUE(s.TryFastPath(2));
  s.Release(2);
}

TEST(Splitter, ConcurrentRaceAdmitsExactlyOne) {
  for (int round = 0; round < 20; ++round) {
    Splitter s;
    std::atomic<int> admitted{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int pid = 0; pid < 8; ++pid) {
      threads.emplace_back([&, pid] {
        ProcessBinding bind(pid, nullptr);
        while (!go) std::this_thread::yield();
        if (s.TryFastPath(pid)) admitted.fetch_add(1);
      });
    }
    go = true;
    for (auto& t : threads) t.join();
    EXPECT_EQ(admitted.load(), 1);
  }
}

}  // namespace
}  // namespace rme
