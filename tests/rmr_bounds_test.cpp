// Empirical complexity assertions: the growth *shapes* the paper claims
// (Table 1) verified by fitting measured RMR-per-passage curves.
#include <gtest/gtest.h>

#include <vector>

#include "core/lock_registry.hpp"
#include "locks/tree_lock.hpp"
#include "runtime/experiment.hpp"
#include "util/stats.hpp"

namespace rme {
namespace {

double MeanCcAt(const std::string& lock, int n, const Scenario& s,
                uint64_t passages = 150) {
  WorkloadConfig cfg;
  cfg.num_procs = n;
  cfg.passages_per_proc = passages;
  cfg.seed = 42;
  const RunResult r = RunScenario(lock, cfg, s);
  EXPECT_FALSE(r.aborted) << lock;
  return r.passage.cc.mean();
}

TEST(RmrBounds, FailureFreeConstantLocksDontGrowWithN) {
  for (const std::string lock : {"wr", "gr-adaptive", "cw-ticket", "sa", "ba"}) {
    std::vector<double> xs, ys;
    for (int n : {2, 4, 8, 16, 32}) {
      xs.push_back(n);
      ys.push_back(MeanCcAt(lock, n, Scenario::None(), 100));
    }
    EXPECT_EQ(ClassifyGrowth(xs, ys), "O(1)") << lock;
  }
}

TEST(RmrBounds, TournamentGrowsLogarithmically) {
  std::vector<double> depth, cost;
  for (int n : {2, 4, 8, 16, 32, 64}) {
    // log-shaped: cost is linear in depth = log2 n.
    depth.push_back(TournamentLock(n).depth());
    cost.push_back(MeanCcAt("tournament", n, Scenario::None(), 80));
  }
  // Cost vs depth should be ~linear (slope near 1 on log-log of
  // cost-vs-n would be wrong; instead check monotone + linear fit).
  const double slope = LinearSlope(depth, cost);
  EXPECT_GT(slope, 4.0) << "cost must rise with depth";
  // Linearity: residual check via endpoints.
  const double predicted = cost.front() + slope * (depth.back() - depth.front());
  EXPECT_NEAR(cost.back(), predicted, 0.5 * cost.back());
}

TEST(RmrBounds, KPortTreeCheaperThanTournamentAtScale) {
  const double kport = MeanCcAt("kport-tree", 64, Scenario::None(), 60);
  const double tourney = MeanCcAt("tournament", 64, Scenario::None(), 60);
  EXPECT_LT(kport, tourney) << "log n/log log n vs log n";
}

TEST(RmrBounds, BaLockAdaptsSublinearlyInFailures) {
  // RMR vs injected failure count F: BA-Lock must grow clearly slower
  // than the O(F)-adaptive baseline, and stay capped near its base cost.
  const int n = 16;
  const double base_cap = MeanCcAt("tournament", n, Scenario::None(), 80);
  const double ff = MeanCcAt("ba-tournament", n, Scenario::None(), 80);
  std::vector<double> xs, ys;
  for (int64_t f : {4, 16, 64, 256}) {
    WorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = 150;
    cfg.seed = 7;
    const RunResult r =
        RunScenario("ba-tournament", cfg, Scenario::Budgeted(f, 0.004));
    EXPECT_FALSE(r.aborted);
    xs.push_back(static_cast<double>(f));
    ys.push_back(r.passage.cc.mean());
  }
  // Sub-linear growth in F.
  const double slope = LogLogSlope(xs, ys);
  EXPECT_LT(slope, 0.75) << "BA-Lock must adapt sublinearly with F";
  // Bounded: even the heaviest regime stays within a constant factor of
  // the worst-case path cost (filter stack + base lock).
  EXPECT_LT(ys.back(), ff + 8.0 * base_cap) << "well-bounded";
}

TEST(RmrBounds, GrAdaptiveDegradesFasterThanBa) {
  const int n = 16;
  auto mean_at = [&](const std::string& lock, int64_t f) {
    WorkloadConfig cfg;
    cfg.num_procs = n;
    cfg.passages_per_proc = 150;
    cfg.seed = 19;
    const RunResult r = RunScenario(lock, cfg, Scenario::Budgeted(f, 0.004));
    EXPECT_FALSE(r.aborted);
    return r.passage.cc.mean();
  };
  const double gr0 = mean_at("gr-adaptive", 0);
  const double gr_heavy = mean_at("gr-adaptive", 256);
  const double ba0 = mean_at("ba", 0);
  const double ba_heavy = mean_at("ba", 256);
  // Relative degradation of gr-adaptive should exceed BA's.
  EXPECT_GT(gr_heavy / gr0, ba_heavy / ba0 * 0.8)
      << "O(F) baseline should degrade at least as fast as O(sqrt F)";
}

}  // namespace
}  // namespace rme
