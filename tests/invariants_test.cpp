// Whole-zoo property sweep: every recoverable lock x several process
// counts x several crash regimes must preserve its contract — strong ME
// (or failure-scoped weak ME), BCSR, liveness, and full completion.
// This is the paper's correctness section as a parameterized test.
#include <gtest/gtest.h>

#include <tuple>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "runtime/experiment.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

struct Case {
  std::string lock;
  int n;
  double crash_p;  // 0 = failure-free
};

class ZooInvariants : public ::testing::TestWithParam<Case> {};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.lock + "_n" + std::to_string(info.param.n) +
                     (info.param.crash_p > 0 ? "_crashy" : "_clean");
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

TEST_P(ZooInvariants, ContractHolds) {
  const Case& c = GetParam();
  auto lock = MakeLock(c.lock, c.n);
  WorkloadConfig cfg;
  cfg.num_procs = c.n;
  cfg.passages_per_proc = c.crash_p > 0 ? 80 : 150;
  cfg.seed = static_cast<uint64_t>(c.n) * 31 + 7;

  std::unique_ptr<CrashController> crash;
  if (c.crash_p > 0) {
    crash = std::make_unique<RandomCrash>(cfg.seed + 1, c.crash_p, -1);
  }
  const RunResult r = RunWorkload(*lock, cfg, crash.get());

  EXPECT_FALSE(r.aborted) << "liveness/starvation-freedom";
  EXPECT_EQ(r.completed_passages,
            static_cast<uint64_t>(c.n) * cfg.passages_per_proc)
      << "every request satisfied";
  EXPECT_EQ(r.me_violations, 0u)
      << (lock->IsStronglyRecoverable()
              ? "strong lock must never overlap in CS"
              : "weak lock may overlap only inside consequence intervals");
  if (lock->IsStronglyRecoverable()) {
    EXPECT_EQ(r.bcsr_violations, 0u) << "critical-section reentry";
    EXPECT_EQ(r.max_concurrent_cs, 1);
  }
  if (c.crash_p == 0) {
    EXPECT_EQ(r.failures, 0u);
    EXPECT_EQ(r.max_concurrent_cs, 1);
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const auto& lock : RecoverableLockNames()) {
    for (int n : {2, 7, 16}) {
      cases.push_back({lock, n, 0.0});
      cases.push_back({lock, n, 0.0015});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLocks, ZooInvariants,
                         ::testing::ValuesIn(AllCases()), CaseName);

// The responsiveness property (Thm 4.2) for the weak lock: under heavy
// unsafe-failure injection, every observed CS overlap must be covered by
// active consequence intervals (the checker verifies per overlap).
TEST(WeakResponsiveness, OverlapsOnlyInsideConsequenceIntervals) {
  auto lock = MakeLock("wr", 8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 150;
  cfg.seed = 1234;
  RandomCrash crash(11, 0.004, -1);
  const RunResult r = RunWorkload(*lock, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u)
      << "every overlap must coincide with an active failure interval";
}

// Bounded exit / bounded recovery across the zoo (failure-free): these
// segments must complete within a small constant number of steps.
TEST(BoundedSegments, RecoverAndExitAreBounded) {
  for (const auto& name : RecoverableLockNames()) {
    auto lock = MakeLock(name, 8);
    WorkloadConfig cfg;
    cfg.num_procs = 8;
    cfg.passages_per_proc = 100;
    const RunResult r = RunWorkload(*lock, cfg, nullptr);
    EXPECT_FALSE(r.aborted) << name;
    // Tree-structured locks recover per node, so allow depth headroom.
    EXPECT_LE(r.max_recover_ops, 160u) << name;
    EXPECT_LE(r.max_exit_ops, 160u) << name;
  }
}

}  // namespace
}  // namespace rme
