// Tests for the dual-port arbitrator: 2-side mutual exclusion with
// changing identities, crash recovery at every stage, O(1) RMR.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "crash/crash.hpp"
#include "locks/arbitrator_lock.hpp"
#include "rmr/counters.hpp"

namespace rme {
namespace {

TEST(Arbitrator, UncontendedBothSides) {
  ArbitratorLock arb(4);
  ProcessBinding bind(0, nullptr);
  arb.Recover(Side::kLeft, 0);
  arb.Enter(Side::kLeft, 0);
  arb.Exit(Side::kLeft, 0);
  arb.Recover(Side::kRight, 0);
  arb.Enter(Side::kRight, 0);
  arb.Exit(Side::kRight, 0);
}

TEST(Arbitrator, MutualExclusionAcrossSides) {
  ArbitratorLock arb(8);
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::atomic<uint64_t> total{0};

  auto run_side = [&](Side side, int pid, int iters) {
    ProcessBinding bind(pid, nullptr);
    for (int i = 0; i < iters; ++i) {
      arb.Recover(side, pid);
      arb.Enter(side, pid);
      if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
      total.fetch_add(1);
      in_cs.fetch_sub(1);
      arb.Exit(side, pid);
    }
  };
  std::thread tl(run_side, Side::kLeft, 0, 3000);
  std::thread tr(run_side, Side::kRight, 1, 3000);
  tl.join();
  tr.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(total.load(), 6000u);
}

TEST(Arbitrator, SideIdentityChangesBetweenPassages) {
  // Different processes alternate on the same side (the framework's
  // normal pattern): claims must hand over cleanly.
  ArbitratorLock arb(8);
  for (int pid = 0; pid < 8; ++pid) {
    ProcessBinding bind(pid, nullptr);
    arb.Recover(Side::kLeft, pid);
    arb.Enter(Side::kLeft, pid);
    EXPECT_EQ(arb.ClaimOf(Side::kLeft), static_cast<uint64_t>(pid) + 1);
    arb.Exit(Side::kLeft, pid);
    EXPECT_EQ(arb.ClaimOf(Side::kLeft), 0u);
  }
}

TEST(Arbitrator, CrashInEnterRetriesIdempotently) {
  ArbitratorLock arb(4, "arbX");
  SiteCrash crash(0, "arbX.op", /*after_op=*/true, /*nth=*/3);
  {
    ProcessBinding bind(0, &crash);
    bool crashed = false;
    try {
      arb.Recover(Side::kLeft, 0);
      arb.Enter(Side::kLeft, 0);
    } catch (const ProcessCrash&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed);
  }
  {
    ProcessBinding bind(0, nullptr);
    arb.Recover(Side::kLeft, 0);
    arb.Enter(Side::kLeft, 0);  // resumes through the state machine
    arb.Exit(Side::kLeft, 0);
  }
}

TEST(Arbitrator, CrashInExitResumesViaRecover) {
  ArbitratorLock arb(4, "arbY");
  ProcessBinding bind(0, nullptr);
  arb.Recover(Side::kRight, 0);
  arb.Enter(Side::kRight, 0);
  // Crash on the first Exit op (the Leaving store).
  SiteCrash crash(0, "arbY.op", /*after_op=*/true);
  CurrentProcess().SetCrashController(&crash);
  EXPECT_THROW(arb.Exit(Side::kRight, 0), ProcessCrash);
  CurrentProcess().SetCrashController(nullptr);
  arb.Recover(Side::kRight, 0);  // finishes the exit
  EXPECT_EQ(arb.ClaimOf(Side::kRight), 0u);
  // Side is reusable afterwards.
  arb.Recover(Side::kRight, 0);
  arb.Enter(Side::kRight, 0);
  arb.Exit(Side::kRight, 0);
}

TEST(Arbitrator, CrashStormBothSidesStaysExclusive) {
  ArbitratorLock arb(8, "arbZ");
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  RandomCrash crash(31, 0.002, -1);

  auto run_side = [&](Side side, int pid, int iters) {
    ProcessBinding bind(pid, &crash);
    for (int i = 0; i < iters;) {
      try {
        arb.Recover(side, pid);
        arb.Enter(side, pid);
        if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
        in_cs.fetch_sub(1);
        arb.Exit(side, pid);
        ++i;  // satisfied
      } catch (const ProcessCrash&) {
        // restart the passage (same pid stays on the same side, as the
        // framework guarantees)
      }
    }
  };
  std::thread tl(run_side, Side::kLeft, 2, 2000);
  std::thread tr(run_side, Side::kRight, 5, 2000);
  tl.join();
  tr.join();
  EXPECT_EQ(violations.load(), 0) << "arbitrator is strongly recoverable";
}

TEST(Arbitrator, RmrPerPassageIsConstant) {
  ArbitratorLock arb(4);
  ProcessBinding bind(0, nullptr);
  ProcessContext& ctx = CurrentProcess();
  arb.Recover(Side::kLeft, 0);
  arb.Enter(Side::kLeft, 0);
  arb.Exit(Side::kLeft, 0);
  for (int i = 0; i < 10; ++i) {
    const OpCounters before = ctx.counters;
    arb.Recover(Side::kLeft, 0);
    arb.Enter(Side::kLeft, 0);
    arb.Exit(Side::kLeft, 0);
    const OpCounters d = ctx.counters - before;
    EXPECT_LE(d.cc_rmrs, 16u);
    EXPECT_LE(d.dsm_rmrs, 16u);
  }
}

}  // namespace
}  // namespace rme
