// CohortLock-specific pins, beyond the registry sweeps it inherits
// (invariants/crashpoint/sim/shm_crash):
//  - the adaptive retained fast path (solo = one top acquisition, every
//    later passage retained);
//  - batching fairness: once another party's demand is visible, a
//    process/cohort keeps the lock for at most retain_cap/batch_cap more
//    passages;
//  - fork-mode park/unpark crash sites: SIGKILL a process about to park
//    ("h.park.brk") and a waker between its visible store and its
//    FUTEX_WAKE ("h.unpark.brk"), with the spin budget forced to 0 so
//    every wait parks — the run must drain with zero hangs.
//
// Threaded and fork tests coexist here because ctest (via
// gtest_discover_tests) runs each TEST in its own process; the fork
// tests never see a multi-threaded parent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/lock_registry.hpp"
#include "locks/cohort_lock.hpp"
#include "locks/ticket_rlock.hpp"
#include "rmr/counters.hpp"
#include "runtime/fork_harness.hpp"

namespace rme {
namespace {

std::unique_ptr<RecoverableLock> TicketTop(int cohorts) {
  return std::make_unique<TicketRLock>(cohorts, "test.top");
}

struct CohortStats {
  long long retained = -1, handoff = -1, top = -1;
};

CohortStats ParseStats(const RecoverableLock& lock) {
  CohortStats s;
  int cohorts = 0;
  std::sscanf(lock.StatsString().c_str(),
              "cohorts=%d retained=%lld handoff=%lld top=%lld", &cohorts,
              &s.retained, &s.handoff, &s.top);
  return s;
}

TEST(CohortLock, DetectsAtLeastOneNumaNode) {
  EXPECT_GE(CohortLock::DetectNumaNodes(), 1);
}

TEST(CohortLock, CohortPartitionAndClamp) {
  CohortConfig cfg;
  cfg.cohorts = 2;
  CohortLock lock(6, cfg, &TicketTop, "t");
  EXPECT_EQ(lock.num_cohorts(), 2);
  EXPECT_EQ(lock.CohortOf(0), 0);
  EXPECT_EQ(lock.CohortOf(2), 0);
  EXPECT_EQ(lock.CohortOf(3), 1);
  EXPECT_EQ(lock.CohortOf(5), 1);
  // More cohorts than processes clamps to one pid per cohort.
  cfg.cohorts = 64;
  CohortLock wide(3, cfg, &TicketTop, "t");
  EXPECT_EQ(wide.num_cohorts(), 3);
}

TEST(CohortLock, SoloAdaptivePassagesRetainTheStack) {
  CohortConfig cfg;
  cfg.cohorts = 2;
  cfg.batch_cap = 4;
  cfg.retain_cap = 2;  // tiny caps: must still never bind without demand
  CohortLock lock(2, cfg, &TicketTop, "t");
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 100; ++i) {
    lock.Recover(0);
    lock.Enter(0);
    EXPECT_EQ(lock.LastPathDepth(0), i == 0 ? 2 : 0);
    lock.Exit(0);
  }
  const CohortStats s = ParseStats(lock);
  EXPECT_EQ(s.top, 1);        // exactly one full acquisition
  EXPECT_EQ(s.retained, 99);  // every other passage took the fast path
  EXPECT_EQ(lock.QueuedRequests(), 0);
  lock.OnProcessDone(0);
  // The release in OnProcessDone makes the next passage a full one.
  lock.Recover(0);
  lock.Enter(0);
  EXPECT_EQ(lock.LastPathDepth(0), 2);
  lock.Exit(0);
  lock.OnProcessDone(0);
}

TEST(CohortLock, NonAdaptiveCapsBindWithoutDemand) {
  CohortConfig cfg;
  cfg.cohorts = 2;
  cfg.batch_cap = 8;
  cfg.retain_cap = 2;
  cfg.adaptive = false;
  CohortLock lock(2, cfg, &TicketTop, "t");
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 100; ++i) {
    lock.Recover(0);
    lock.Enter(0);
    lock.Exit(0);
  }
  lock.OnProcessDone(0);
  // Solo but non-adaptive: a release/reacquire cycle every retain_cap
  // passages — the cost the adaptive policy exists to avoid.
  EXPECT_GE(ParseStats(lock).top, 40);
}

TEST(CohortLock, RetainCapBoundsPassagesOnceTopDemandVisible) {
  // pid 0 (cohort 0) hammers passages; pid 1 (cohort 1) shows up once.
  // From the moment pid 1's request is visible in the top queue, pid 0
  // may complete at most retain_cap more passages before pid 1 gets the
  // CS (retain_cap + 2 below: the check happens between passages, and
  // the run counter may be mid-window when demand first appears).
  CohortConfig cfg;
  cfg.cohorts = 2;
  cfg.batch_cap = 64;
  cfg.retain_cap = 3;
  CohortLock lock(2, cfg, &TicketTop, "t");
  std::atomic<bool> acquired{false};
  std::atomic<bool> hammer_ready{false};

  std::thread waiter([&] {
    ProcessBinding bind(1, nullptr);
    while (!hammer_ready.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    lock.Recover(1);
    lock.Enter(1);
    acquired.store(true, std::memory_order_release);
    lock.Exit(1);
    lock.OnProcessDone(1);
  });

  int after_demand = 0;
  bool demand_seen = false;
  {
    ProcessBinding bind(0, nullptr);
    for (int i = 0; i < 2'000'000; ++i) {
      if (acquired.load(std::memory_order_acquire)) break;
      // QueuedRequests > 0 here can only be pid 1's claimed top ticket,
      // which stays queued until it acquires — monotone demand signal.
      if (!demand_seen && lock.QueuedRequests() > 0) demand_seen = true;
      lock.Recover(0);
      lock.Enter(0);
      lock.Exit(0);
      if (demand_seen) ++after_demand;
      if (i == 0) hammer_ready.store(true, std::memory_order_release);
    }
    lock.OnProcessDone(0);
  }
  waiter.join();
  // Liveness is the real pin: without the adaptive release, pid 0 would
  // retain the stack for all 2M passages and pid 1 would starve out the
  // loop. demand_seen can stay false legitimately — the handover may
  // complete inside the very passage in which the ticket appeared,
  // before this thread's next between-passage probe.
  EXPECT_TRUE(acquired.load());
  if (demand_seen) {
    EXPECT_LE(after_demand, static_cast<int>(cfg.retain_cap) + 2);
  }
}

TEST(CohortLock, BatchCapBoundsCohortRunOnceRemoteDemandVisible) {
  // Two pids of cohort 0 hand the lock off locally (retaining the top
  // lock); once cohort 1's demand is visible, the whole cohort may run
  // at most ~batch_cap more passages before the top lock crosses over.
  CohortConfig cfg;
  cfg.cohorts = 2;
  cfg.batch_cap = 8;
  cfg.retain_cap = 4;
  CohortLock lock(4, cfg, &TicketTop, "t");  // cohort 0 = {0,1}, 1 = {2,3}
  std::atomic<bool> acquired{false};
  std::atomic<bool> stop{false};
  std::atomic<long long> warmup{0};
  std::atomic<long long> after_demand{0};

  std::vector<std::thread> hammers;
  for (int pid = 0; pid < 2; ++pid) {
    hammers.emplace_back([&, pid] {
      ProcessBinding bind(pid, nullptr);
      bool demand_seen = false;  // pid 2's claimed top ticket, monotone
                                 // until it acquires (cohort 1 has no
                                 // local waiters to pollute the signal)
      while (!stop.load(std::memory_order_relaxed)) {
        if (!demand_seen && lock.TopQueuedRaw() > 0) demand_seen = true;
        lock.Recover(pid);
        lock.Enter(pid);
        lock.Exit(pid);
        warmup.fetch_add(1, std::memory_order_relaxed);
        if (demand_seen && !acquired.load(std::memory_order_acquire)) {
          after_demand.fetch_add(1, std::memory_order_relaxed);
        }
      }
      lock.OnProcessDone(pid);
    });
  }
  std::thread remote([&] {
    ProcessBinding bind(2, nullptr);
    // Let the cohort-0 handoff machinery warm up first.
    while (warmup.load(std::memory_order_relaxed) < 1000) {
      std::this_thread::yield();
    }
    lock.Recover(2);
    lock.Enter(2);
    acquired.store(true, std::memory_order_release);
    stop.store(true, std::memory_order_relaxed);
    lock.Exit(2);
    lock.OnProcessDone(2);
  });
  remote.join();
  for (auto& h : hammers) h.join();
  EXPECT_TRUE(acquired.load());
  // Counted from the moment a hammer saw pid 2's ticket in the top
  // queue. Bound: at most ~batch_cap passages drain before the batch cap
  // releases the top lock, plus one retain window and the in-flight
  // passage per hammer. The real pin is the order of magnitude: without
  // the cap, cohort 0 would keep handing off locally forever.
  EXPECT_LE(after_demand.load(),
            static_cast<long long>(cfg.batch_cap + 2 * cfg.retain_cap + 8));
  // Warmed-up same-cohort traffic must be retained/handoff passages, not
  // repeated top acquisitions.
  const CohortStats s = ParseStats(lock);
  EXPECT_GT(s.retained + s.handoff, 900);
  EXPECT_LT(s.top, 50);
}

// ---------------------------------------------------------------------
// Fork-mode park/unpark crash tests. spin_budget_us = 0 forces every
// slow-path wait to park on the segment futex lot, so the crash sites
// actually fire and the SIGKILLs land in the park/unpark windows.

class CohortForkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = cohort_lock_defaults();
    cohort_lock_defaults().cohorts = 2;
  }
  void TearDown() override { cohort_lock_defaults() = saved_; }

  static ForkCrashConfig ParkedConfig() {
    ForkCrashConfig cfg;
    cfg.num_procs = 6;
    // Large enough that the children genuinely overlap on a small-core
    // machine — a tiny quota drains each child within one scheduler
    // quantum, so nobody ever waits (or parks) and site kills in the
    // park windows never fire.
    cfg.passages_per_proc = 4000;
    cfg.seed = 11;
    cfg.spin_budget_us = 0;  // park at the first slow-path iteration
    return cfg;
  }

  static void ExpectClean(const ForkCrashResult& r,
                          const ForkCrashConfig& cfg) {
    EXPECT_EQ(r.me_violations, 0u);
    EXPECT_EQ(r.bcsr_violations, 0u);
    EXPECT_EQ(r.max_concurrent_cs, 1);
    EXPECT_EQ(r.child_errors, 0u);
    EXPECT_FALSE(r.watchdog_fired);
    EXPECT_EQ(r.hangs, 0u);
    EXPECT_EQ(r.hung_abandoned, 0u);
    EXPECT_EQ(r.completed_passages,
              cfg.passages_per_proc * static_cast<uint64_t>(cfg.num_procs));
  }

  // The park-side consults fire at ParkOn entry, but a child only
  // reaches ParkOn when it actually waits: if the target pid's quota
  // drains inside scheduler quanta where it never contends, the site is
  // never consulted and the kill misses. Like the waker test, misses
  // are correlated with the machine's load regime, so the retries
  // escalate contention — more processes, longer quotas — rather than
  // merely reseeding. Every attempt must still be clean; the retries
  // only chase the kill delivery.
  static ForkCrashResult RunParkSiteKillWithEscalation(ForkCrashConfig cfg) {
    ForkCrashResult r{};
    for (int attempt = 0; attempt < 6; ++attempt) {
      cfg.seed = 11 + static_cast<uint64_t>(attempt);
      cfg.num_procs = attempt < 2 ? 6 : 8;
      cfg.passages_per_proc = 4000u << (attempt < 4 ? attempt : 4);
      r = RunForkCrashWorkload("cohort", cfg);
      ExpectClean(r, cfg);
      if (r.kills >= 1) break;
    }
    return r;
  }

  CohortConfig saved_;
};

TEST_F(CohortForkTest, SigkillWhileAboutToPark) {
  // Kill pid 1 at its first "h.park.brk" — the window just before a
  // parked waiter publishes its waiter counts. The corpse holds no lot
  // state; the respawn re-enters and the run must drain fully.
  ForkCrashConfig cfg = ParkedConfig();
  cfg.site_kill_site = "h.park.brk";
  cfg.site_kill_pid = 1;
  const ForkCrashResult r = RunParkSiteKillWithEscalation(cfg);
  EXPECT_GE(r.kills, 1u);
}

TEST_F(CohortForkTest, SigkillParkedWaiter) {
  // Kill pid 2 at its 5th park consult: by then earlier parks have
  // published (and timed out of) waiter counts, so kills interleave with
  // a populated lot. Leaked counts must only cost spurious wake checks.
  ForkCrashConfig cfg = ParkedConfig();
  cfg.site_kill_site = "h.park.brk";
  cfg.site_kill_pid = 2;
  cfg.site_kill_nth = 5;
  const ForkCrashResult r = RunParkSiteKillWithEscalation(cfg);
  EXPECT_GE(r.kills, 1u);
}

TEST_F(CohortForkTest, SigkillWakerBeforeFutexWake) {
  // Kill pid 0 inside FutexWakeSlow ("h.unpark.brk"): its store is
  // already visible but the FUTEX_WAKE never happens — the torn-wake
  // regime. Parked waiters must recover via their growing timeouts (and
  // the respawn's WakeAllParked), not hang.
  ForkCrashConfig cfg = ParkedConfig();
  cfg.site_kill_site = "h.unpark.brk";
  cfg.site_kill_pid = 0;
  // The waker's consult is even narrower than the park-side ones: it is
  // reached only when pid 0's write finds a waiter parked in the *same*
  // lot bucket at that instant — a window a single run misses ~40% of
  // the time on a many-core host.
  const ForkCrashResult r = RunParkSiteKillWithEscalation(cfg);
  EXPECT_GE(r.kills, 1u);
}

TEST_F(CohortForkTest, KillMatrixWithForcedParking) {
  // The general kill matrix (independent + whole-batch + site-random
  // child kills) with every wait parked: no hangs, no starvation of the
  // log drain, zero ME/BCSR.
  ForkCrashConfig cfg = ParkedConfig();
  cfg.independent_kills = 30;
  cfg.batch_kill_events = 5;
  cfg.batch_size = 0;  // all n
  cfg.self_kill_per_op = 0.0005;
  cfg.self_kill_budget = 20;
  cfg.kill_interval_ms = 0.5;
  ForkCrashResult r = RunForkCrashWorkload("cohort", cfg);
  ExpectClean(r, cfg);
  EXPECT_GE(r.kills, cfg.independent_kills);
}

TEST_F(CohortForkTest, RecoveryStormWithForcedParking) {
  ForkCrashConfig cfg = ParkedConfig();
  cfg.passages_per_proc = 120;
  cfg.storm_victim = 0;
  cfg.storm_kills = 8;
  cfg.storm_nth_op = 1;
  ForkCrashResult r = RunForkCrashWorkload("cohort", cfg);
  ExpectClean(r, cfg);
  EXPECT_EQ(r.storm_kills, 8u);
}

}  // namespace
}  // namespace rme
