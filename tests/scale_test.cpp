// Edge-of-envelope tests: n = 1, n = kMaxProcs (64), multiple
// independent lock instances shared by the same processes, and nesting.
#include <gtest/gtest.h>

#include <memory>

#include "core/lock_registry.hpp"
#include "crash/crash.hpp"
#include "rmr/memory_model.hpp"
#include "sim/sim_harness.hpp"

namespace rme {
namespace {

TEST(Scale, SingleProcessEveryLock) {
  for (const auto& name : RecoverableLockNames()) {
    auto lock = MakeLock(name, 1);
    SimWorkloadConfig cfg;
    cfg.num_procs = 1;
    cfg.passages_per_proc = 20;
    const SimResult r = RunSimWorkload(*lock, cfg, nullptr);
    EXPECT_TRUE(r.ran_to_completion) << name;
    EXPECT_EQ(r.completed_passages, 20u) << name;
    EXPECT_EQ(r.me_violations, 0u) << name;
  }
}

TEST(Scale, MaxProcsEveryLock) {
  for (const auto& name : RecoverableLockNames()) {
    auto lock = MakeLock(name, kMaxProcs);
    SimWorkloadConfig cfg;
    cfg.num_procs = kMaxProcs;
    cfg.passages_per_proc = 3;
    cfg.max_steps = 80'000'000;
    const SimResult r = RunSimWorkload(*lock, cfg, nullptr);
    EXPECT_TRUE(r.ran_to_completion) << name;
    EXPECT_EQ(r.completed_passages, static_cast<uint64_t>(kMaxProcs) * 3)
        << name;
    EXPECT_EQ(r.me_violations, 0u) << name;
    EXPECT_EQ(r.max_concurrent_cs, 1) << name;
  }
}

TEST(Scale, MaxProcsWithCrashes) {
  auto lock = MakeLock("ba", kMaxProcs);
  SimWorkloadConfig cfg;
  cfg.num_procs = kMaxProcs;
  cfg.passages_per_proc = 2;
  cfg.max_steps = 120'000'000;
  RandomCrash crash(17, 0.0005, -1);
  const SimResult r = RunSimWorkload(*lock, cfg, &crash);
  EXPECT_TRUE(r.ran_to_completion);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.max_concurrent_cs, 1);
}

TEST(Scale, TwoIndependentLockInstancesDoNotInterfere) {
  // Same processes alternate between two BA-Lock instances; state and
  // site labels must stay disjoint (no cross-talk through statics).
  auto a = MakeLock("ba", 3);
  auto b = MakeLock("ba", 3);
  SimWorkloadConfig dummy;  // drive manually for interleaved use
  std::atomic<int> in_a{0}, in_b{0}, bad{0};
  DeterministicSim::Options options;
  options.num_procs = 3;
  options.seed = 77;
  const bool ok = DeterministicSim::Run(options, [&](int pid) {
    ProcessBinding bind(pid, nullptr);
    for (int i = 0; i < 15; ++i) {
      RecoverableLock& lock = (i % 2 == 0) ? *a : *b;
      std::atomic<int>& gauge = (i % 2 == 0) ? in_a : in_b;
      lock.Recover(pid);
      lock.Enter(pid);
      if (gauge.fetch_add(1) != 0) bad.fetch_add(1);
      gauge.fetch_sub(1);
      lock.Exit(pid);
    }
    a->OnProcessDone(pid);
    b->OnProcessDone(pid);
  });
  (void)dummy;
  EXPECT_TRUE(ok);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Scale, NestedLocksCompose) {
  // An outer BA-Lock protecting a region that internally uses a second
  // lock (nested acquisition, always in the same order): a common
  // application pattern; must not deadlock or violate ME.
  auto outer = MakeLock("ba", 3);
  auto inner = MakeLock("wr", 3);
  std::atomic<int> in_cs{0}, bad{0};
  DeterministicSim::Options options;
  options.num_procs = 3;
  options.seed = 41;
  const bool ok = DeterministicSim::Run(options, [&](int pid) {
    ProcessBinding bind(pid, nullptr);
    for (int i = 0; i < 10; ++i) {
      outer->Recover(pid);
      outer->Enter(pid);
      inner->Recover(pid);
      inner->Enter(pid);
      if (in_cs.fetch_add(1) != 0) bad.fetch_add(1);
      in_cs.fetch_sub(1);
      inner->Exit(pid);
      outer->Exit(pid);
    }
    outer->OnProcessDone(pid);
    inner->OnProcessDone(pid);
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Scale, RegistryKnowsEveryName) {
  for (const auto& name : AllLockNames()) {
    auto lock = MakeLock(name, 4);
    ASSERT_NE(lock, nullptr) << name;
    EXPECT_FALSE(lock->name().empty()) << name;
  }
  // Recoverable subset excludes only the plain MCS baseline.
  EXPECT_EQ(RecoverableLockNames().size(), AllLockNames().size() - 1);
}

}  // namespace
}  // namespace rme
