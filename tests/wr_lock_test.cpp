// Tests for WR-Lock (Algorithm 2): deterministic replays of the paper's
// Figure-1 sub-queue scenario, weak-ME semantics, BCSR, bounded
// recovery/exit, O(1) RMR, and crash-storm survival.
#include <gtest/gtest.h>

#include <thread>

#include "crash/crash.hpp"
#include "locks/wr_lock.hpp"
#include "rmr/counters.hpp"
#include "runtime/experiment.hpp"
#include "runtime/harness.hpp"

namespace rme {
namespace {

TEST(WrLock, SingleProcessPassages) {
  WrLock lock(2);
  ProcessBinding bind(0, nullptr);
  for (int i = 0; i < 10; ++i) {
    lock.Recover(0);
    lock.Enter(0);
    EXPECT_EQ(lock.StateOf(0), WrLock::kInCS);
    lock.Exit(0);
    EXPECT_EQ(lock.StateOf(0), WrLock::kFree);
  }
}

TEST(WrLock, SensitiveSiteIsTheFas) {
  WrLock lock(2, "wrx");
  EXPECT_TRUE(lock.IsSensitiveSite("wrx.tail.fas", true));
  EXPECT_FALSE(lock.IsSensitiveSite("wrx.tail.fas", false));
  EXPECT_TRUE(lock.IsSensitiveSite("wrx.pred.persist", false));
  EXPECT_FALSE(lock.IsSensitiveSite("wrx.pred.persist", true));
  EXPECT_FALSE(lock.IsSensitiveSite("wrx.op", true));
  EXPECT_FALSE(lock.IsStronglyRecoverable());
}

// Figure 1, deterministically: a crash exactly after the FAS leaves the
// queue split; after the crashed process aborts its attempt, a newcomer
// sees a null tail and enters CS alongside the original holder.
TEST(WrLock, CrashAfterFasSplitsQueue) {
  WrLock lock(4, "wr");
  SiteCrash crash(1, "wr.tail.fas", /*after_op=*/true);

  // p0 acquires and stays in CS.
  {
    ProcessBinding bind(0, nullptr);
    lock.Recover(0);
    lock.Enter(0);
    EXPECT_EQ(lock.StateOf(0), WrLock::kInCS);
  }
  // p1 crashes immediately after its FAS: node appended, pred lost.
  {
    ProcessBinding bind(1, &crash);
    lock.Recover(1);
    EXPECT_THROW(lock.Enter(1), ProcessCrash);
    EXPECT_EQ(lock.StateOf(1), WrLock::kTrying);
  }
  // p1 restarts: Recover detects pred == mine and aborts the attempt,
  // resetting tail to null (its node was the tail) — the queue carrying
  // p0 is now unreachable.
  {
    ProcessBinding bind(1, nullptr);
    lock.Recover(1);
    EXPECT_EQ(lock.StateOf(1), WrLock::kInitializing);
  }
  // p2 arrives, finds tail null, and enters CS: two processes in CS.
  {
    ProcessBinding bind(2, nullptr);
    lock.Recover(2);
    lock.Enter(2);
    EXPECT_EQ(lock.StateOf(2), WrLock::kInCS);
  }
  EXPECT_EQ(lock.StateOf(0), WrLock::kInCS);
  EXPECT_GE(lock.CountSubQueues(), 2);

  // Drain.
  {
    ProcessBinding bind(2, nullptr);
    lock.Exit(2);
  }
  {
    ProcessBinding bind(0, nullptr);
    lock.Exit(0);
  }
}

// Figure 1 with an already-linked successor: the aborting process's
// wait-free signal releases the successor into the CS.
TEST(WrLock, AbortSignalsLinkedSuccessor) {
  WrLock lock(4, "wr");
  SiteCrash crash(1, "wr.tail.fas", /*after_op=*/true);

  {
    ProcessBinding bind(0, nullptr);
    lock.Recover(0);
    lock.Enter(0);
  }
  {
    ProcessBinding bind(1, &crash);
    lock.Recover(1);
    EXPECT_THROW(lock.Enter(1), ProcessCrash);
  }
  // p2 queues behind p1's orphaned node and spins.
  std::thread t2([&] {
    ProcessBinding bind(2, nullptr);
    lock.Recover(2);
    lock.Enter(2);
    lock.Exit(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // p1 recovers; its abort must wake p2 (wait-free signalling).
  {
    ProcessBinding bind(1, nullptr);
    lock.Recover(1);
  }
  t2.join();
  {
    ProcessBinding bind(0, nullptr);
    lock.Exit(0);
  }
}

TEST(WrLock, CrashInsideCsReentersBoundedly) {
  WrLock lock(2, "wr");
  ProcessBinding bind(0, nullptr);
  ProcessContext& ctx = CurrentProcess();
  lock.Recover(0);
  lock.Enter(0);
  // Simulate a crash inside the CS: state stays InCS; the process
  // restarts and must get back into CS in O(1) steps (BCSR).
  const OpCounters before = ctx.counters;
  lock.Recover(0);
  lock.Enter(0);
  const OpCounters d = ctx.counters - before;
  EXPECT_EQ(lock.StateOf(0), WrLock::kInCS);
  EXPECT_LE(d.ops, 8u) << "BCSR re-entry must be a handful of steps";
  lock.Exit(0);
}

TEST(WrLock, CrashDuringExitResumesViaRecover) {
  WrLock lock(2, "wr");
  SiteCrash crash(0, "wr.op", /*after_op=*/true, /*nth=*/1, /*count=*/1);
  ProcessBinding bind(0, nullptr);
  lock.Recover(0);
  lock.Enter(0);
  // Crash on the first Exit op (the state store to Leaving).
  CurrentProcess().SetCrashController(&crash);
  EXPECT_THROW(lock.Exit(0), ProcessCrash);
  CurrentProcess().SetCrashController(nullptr);
  EXPECT_EQ(lock.StateOf(0), WrLock::kLeaving);
  lock.Recover(0);  // finishes the Exit, then re-initializes
  EXPECT_EQ(lock.StateOf(0), WrLock::kInitializing);
}

TEST(WrLock, FailureFreeContentionIsClean) {
  WrLock lock(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 300;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_EQ(r.max_concurrent_cs, 1) << "no failures => strict ME";
  EXPECT_EQ(r.completed_passages, 8u * 300u);
}

TEST(WrLock, CrashStormMaintainsWeakGuarantees) {
  WrLock lock(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 200;
  cfg.seed = 5;
  RandomCrash crash(17, 0.002, -1);
  const RunResult r = RunWorkload(lock, cfg, &crash);
  EXPECT_FALSE(r.aborted) << "starvation freedom under crash storm";
  EXPECT_EQ(r.completed_passages, 8u * 200u);
  // Weak ME: overlaps are admissible only inside consequence intervals;
  // the checker flags any overlap outside one.
  EXPECT_EQ(r.me_violations, 0u);
  EXPECT_GT(r.failures, 0u);
}

TEST(WrLock, RmrPerPassageIsConstant) {
  WrLock lock(8);
  WorkloadConfig cfg;
  cfg.num_procs = 8;
  cfg.passages_per_proc = 300;
  const RunResult r = RunWorkload(lock, cfg, nullptr);
  EXPECT_FALSE(r.aborted);
  // O(1) under both models: generous constants, independent of n.
  EXPECT_LE(r.passage.cc.mean(), 45.0);
  EXPECT_LE(r.passage.dsm.mean(), 45.0);
  EXPECT_LE(r.max_recover_ops, 64u);  // BR: bounded recovery steps
  EXPECT_LE(r.max_exit_ops, 64u);     // BE: bounded exit steps
}

TEST(WrLock, BoundedExitAndRecoveryUnderCrashes) {
  WrLock lock(4);
  WorkloadConfig cfg;
  cfg.num_procs = 4;
  cfg.passages_per_proc = 150;
  RandomCrash crash(23, 0.003, -1);
  const RunResult r = RunWorkload(lock, cfg, &crash);
  EXPECT_FALSE(r.aborted);
  EXPECT_LE(r.max_recover_ops, 64u);
  EXPECT_LE(r.max_exit_ops, 64u);
}

}  // namespace
}  // namespace rme
