# Empty compiler generated dependencies file for adaptivity_demo.
# This may be replaced when dependencies are built.
