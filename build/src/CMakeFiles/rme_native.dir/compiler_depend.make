# Empty compiler generated dependencies file for rme_native.
# This may be replaced when dependencies are built.
