
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ba_lock.cpp" "src/CMakeFiles/rme_native.dir/core/ba_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/core/ba_lock.cpp.o.d"
  "/root/repo/src/core/iter_ba_lock.cpp" "src/CMakeFiles/rme_native.dir/core/iter_ba_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/core/iter_ba_lock.cpp.o.d"
  "/root/repo/src/core/lock_registry.cpp" "src/CMakeFiles/rme_native.dir/core/lock_registry.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/core/lock_registry.cpp.o.d"
  "/root/repo/src/core/sa_lock.cpp" "src/CMakeFiles/rme_native.dir/core/sa_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/core/sa_lock.cpp.o.d"
  "/root/repo/src/crash/crash.cpp" "src/CMakeFiles/rme_native.dir/crash/crash.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/crash/crash.cpp.o.d"
  "/root/repo/src/crash/failure_log.cpp" "src/CMakeFiles/rme_native.dir/crash/failure_log.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/crash/failure_log.cpp.o.d"
  "/root/repo/src/locks/arbitrator_lock.cpp" "src/CMakeFiles/rme_native.dir/locks/arbitrator_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/arbitrator_lock.cpp.o.d"
  "/root/repo/src/locks/gr_adaptive_lock.cpp" "src/CMakeFiles/rme_native.dir/locks/gr_adaptive_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/gr_adaptive_lock.cpp.o.d"
  "/root/repo/src/locks/gr_semi_lock.cpp" "src/CMakeFiles/rme_native.dir/locks/gr_semi_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/gr_semi_lock.cpp.o.d"
  "/root/repo/src/locks/mcs_lock.cpp" "src/CMakeFiles/rme_native.dir/locks/mcs_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/mcs_lock.cpp.o.d"
  "/root/repo/src/locks/port_lock.cpp" "src/CMakeFiles/rme_native.dir/locks/port_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/port_lock.cpp.o.d"
  "/root/repo/src/locks/ticket_rlock.cpp" "src/CMakeFiles/rme_native.dir/locks/ticket_rlock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/ticket_rlock.cpp.o.d"
  "/root/repo/src/locks/tree_lock.cpp" "src/CMakeFiles/rme_native.dir/locks/tree_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/tree_lock.cpp.o.d"
  "/root/repo/src/locks/wr_lock.cpp" "src/CMakeFiles/rme_native.dir/locks/wr_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/wr_lock.cpp.o.d"
  "/root/repo/src/locks/ya_tournament_lock.cpp" "src/CMakeFiles/rme_native.dir/locks/ya_tournament_lock.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/locks/ya_tournament_lock.cpp.o.d"
  "/root/repo/src/reclaim/epoch_reclaimer.cpp" "src/CMakeFiles/rme_native.dir/reclaim/epoch_reclaimer.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/reclaim/epoch_reclaimer.cpp.o.d"
  "/root/repo/src/reclaim/node_pool.cpp" "src/CMakeFiles/rme_native.dir/reclaim/node_pool.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/reclaim/node_pool.cpp.o.d"
  "/root/repo/src/rmr/counters.cpp" "src/CMakeFiles/rme_native.dir/rmr/counters.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/rmr/counters.cpp.o.d"
  "/root/repo/src/runtime/checkers.cpp" "src/CMakeFiles/rme_native.dir/runtime/checkers.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/runtime/checkers.cpp.o.d"
  "/root/repo/src/runtime/experiment.cpp" "src/CMakeFiles/rme_native.dir/runtime/experiment.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/runtime/experiment.cpp.o.d"
  "/root/repo/src/runtime/harness.cpp" "src/CMakeFiles/rme_native.dir/runtime/harness.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/runtime/harness.cpp.o.d"
  "/root/repo/src/runtime/report.cpp" "src/CMakeFiles/rme_native.dir/runtime/report.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/runtime/report.cpp.o.d"
  "/root/repo/src/sim/fiber_sim.cpp" "src/CMakeFiles/rme_native.dir/sim/fiber_sim.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/sim/fiber_sim.cpp.o.d"
  "/root/repo/src/sim/sim_harness.cpp" "src/CMakeFiles/rme_native.dir/sim/sim_harness.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/sim/sim_harness.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/rme_native.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/CMakeFiles/rme_native.dir/util/prng.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/util/prng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rme_native.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/rme_native.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/rme_native.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
