file(REMOVE_RECURSE
  "librme_native.a"
)
