# Empty dependencies file for rme.
# This may be replaced when dependencies are built.
