file(REMOVE_RECURSE
  "librme.a"
)
