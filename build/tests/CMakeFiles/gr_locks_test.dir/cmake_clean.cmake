file(REMOVE_RECURSE
  "CMakeFiles/gr_locks_test.dir/gr_locks_test.cpp.o"
  "CMakeFiles/gr_locks_test.dir/gr_locks_test.cpp.o.d"
  "gr_locks_test"
  "gr_locks_test.pdb"
  "gr_locks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gr_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
