# Empty compiler generated dependencies file for gr_locks_test.
# This may be replaced when dependencies are built.
