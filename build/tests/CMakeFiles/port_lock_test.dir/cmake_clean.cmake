file(REMOVE_RECURSE
  "CMakeFiles/port_lock_test.dir/port_lock_test.cpp.o"
  "CMakeFiles/port_lock_test.dir/port_lock_test.cpp.o.d"
  "port_lock_test"
  "port_lock_test.pdb"
  "port_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
