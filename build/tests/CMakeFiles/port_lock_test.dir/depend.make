# Empty dependencies file for port_lock_test.
# This may be replaced when dependencies are built.
