# Empty compiler generated dependencies file for fcfs_sim_test.
# This may be replaced when dependencies are built.
