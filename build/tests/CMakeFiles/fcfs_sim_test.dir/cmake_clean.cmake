file(REMOVE_RECURSE
  "CMakeFiles/fcfs_sim_test.dir/fcfs_sim_test.cpp.o"
  "CMakeFiles/fcfs_sim_test.dir/fcfs_sim_test.cpp.o.d"
  "fcfs_sim_test"
  "fcfs_sim_test.pdb"
  "fcfs_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcfs_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
