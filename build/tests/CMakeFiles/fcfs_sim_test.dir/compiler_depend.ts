# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fcfs_sim_test.
