# Empty compiler generated dependencies file for crashpoint_test.
# This may be replaced when dependencies are built.
