file(REMOVE_RECURSE
  "CMakeFiles/crashpoint_test.dir/crashpoint_test.cpp.o"
  "CMakeFiles/crashpoint_test.dir/crashpoint_test.cpp.o.d"
  "crashpoint_test"
  "crashpoint_test.pdb"
  "crashpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crashpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
