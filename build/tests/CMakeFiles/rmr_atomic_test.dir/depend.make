# Empty dependencies file for rmr_atomic_test.
# This may be replaced when dependencies are built.
