file(REMOVE_RECURSE
  "CMakeFiles/rmr_atomic_test.dir/rmr_atomic_test.cpp.o"
  "CMakeFiles/rmr_atomic_test.dir/rmr_atomic_test.cpp.o.d"
  "rmr_atomic_test"
  "rmr_atomic_test.pdb"
  "rmr_atomic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmr_atomic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
