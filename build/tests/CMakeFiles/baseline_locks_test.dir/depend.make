# Empty dependencies file for baseline_locks_test.
# This may be replaced when dependencies are built.
