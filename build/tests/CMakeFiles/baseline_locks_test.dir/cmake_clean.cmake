file(REMOVE_RECURSE
  "CMakeFiles/baseline_locks_test.dir/baseline_locks_test.cpp.o"
  "CMakeFiles/baseline_locks_test.dir/baseline_locks_test.cpp.o.d"
  "baseline_locks_test"
  "baseline_locks_test.pdb"
  "baseline_locks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
