file(REMOVE_RECURSE
  "CMakeFiles/dsm_locality_test.dir/dsm_locality_test.cpp.o"
  "CMakeFiles/dsm_locality_test.dir/dsm_locality_test.cpp.o.d"
  "dsm_locality_test"
  "dsm_locality_test.pdb"
  "dsm_locality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_locality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
