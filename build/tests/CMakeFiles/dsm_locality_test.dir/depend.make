# Empty dependencies file for dsm_locality_test.
# This may be replaced when dependencies are built.
