file(REMOVE_RECURSE
  "CMakeFiles/ba_lock_test.dir/ba_lock_test.cpp.o"
  "CMakeFiles/ba_lock_test.dir/ba_lock_test.cpp.o.d"
  "ba_lock_test"
  "ba_lock_test.pdb"
  "ba_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
