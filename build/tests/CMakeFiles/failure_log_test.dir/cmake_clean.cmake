file(REMOVE_RECURSE
  "CMakeFiles/failure_log_test.dir/failure_log_test.cpp.o"
  "CMakeFiles/failure_log_test.dir/failure_log_test.cpp.o.d"
  "failure_log_test"
  "failure_log_test.pdb"
  "failure_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
