file(REMOVE_RECURSE
  "CMakeFiles/responsiveness_test.dir/responsiveness_test.cpp.o"
  "CMakeFiles/responsiveness_test.dir/responsiveness_test.cpp.o.d"
  "responsiveness_test"
  "responsiveness_test.pdb"
  "responsiveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/responsiveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
