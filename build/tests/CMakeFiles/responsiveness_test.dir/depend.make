# Empty dependencies file for responsiveness_test.
# This may be replaced when dependencies are built.
