# Empty compiler generated dependencies file for sa_lock_test.
# This may be replaced when dependencies are built.
