file(REMOVE_RECURSE
  "CMakeFiles/sa_lock_test.dir/sa_lock_test.cpp.o"
  "CMakeFiles/sa_lock_test.dir/sa_lock_test.cpp.o.d"
  "sa_lock_test"
  "sa_lock_test.pdb"
  "sa_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
