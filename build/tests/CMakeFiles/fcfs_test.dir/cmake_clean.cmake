file(REMOVE_RECURSE
  "CMakeFiles/fcfs_test.dir/fcfs_test.cpp.o"
  "CMakeFiles/fcfs_test.dir/fcfs_test.cpp.o.d"
  "fcfs_test"
  "fcfs_test.pdb"
  "fcfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
