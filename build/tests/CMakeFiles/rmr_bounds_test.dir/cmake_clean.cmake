file(REMOVE_RECURSE
  "CMakeFiles/rmr_bounds_test.dir/rmr_bounds_test.cpp.o"
  "CMakeFiles/rmr_bounds_test.dir/rmr_bounds_test.cpp.o.d"
  "rmr_bounds_test"
  "rmr_bounds_test.pdb"
  "rmr_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmr_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
