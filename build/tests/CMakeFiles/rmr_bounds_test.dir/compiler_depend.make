# Empty compiler generated dependencies file for rmr_bounds_test.
# This may be replaced when dependencies are built.
