# Empty compiler generated dependencies file for iter_ba_test.
# This may be replaced when dependencies are built.
