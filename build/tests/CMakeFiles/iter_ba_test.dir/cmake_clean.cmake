file(REMOVE_RECURSE
  "CMakeFiles/iter_ba_test.dir/iter_ba_test.cpp.o"
  "CMakeFiles/iter_ba_test.dir/iter_ba_test.cpp.o.d"
  "iter_ba_test"
  "iter_ba_test.pdb"
  "iter_ba_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iter_ba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
