# Empty dependencies file for wr_lock_test.
# This may be replaced when dependencies are built.
