file(REMOVE_RECURSE
  "CMakeFiles/wr_lock_test.dir/wr_lock_test.cpp.o"
  "CMakeFiles/wr_lock_test.dir/wr_lock_test.cpp.o.d"
  "wr_lock_test"
  "wr_lock_test.pdb"
  "wr_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wr_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
