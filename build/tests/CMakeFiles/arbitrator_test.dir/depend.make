# Empty dependencies file for arbitrator_test.
# This may be replaced when dependencies are built.
