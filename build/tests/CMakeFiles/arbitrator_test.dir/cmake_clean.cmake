file(REMOVE_RECURSE
  "CMakeFiles/arbitrator_test.dir/arbitrator_test.cpp.o"
  "CMakeFiles/arbitrator_test.dir/arbitrator_test.cpp.o.d"
  "arbitrator_test"
  "arbitrator_test.pdb"
  "arbitrator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
