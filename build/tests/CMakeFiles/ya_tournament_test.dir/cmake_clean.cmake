file(REMOVE_RECURSE
  "CMakeFiles/ya_tournament_test.dir/ya_tournament_test.cpp.o"
  "CMakeFiles/ya_tournament_test.dir/ya_tournament_test.cpp.o.d"
  "ya_tournament_test"
  "ya_tournament_test.pdb"
  "ya_tournament_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ya_tournament_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
