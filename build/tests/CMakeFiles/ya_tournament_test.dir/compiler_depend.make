# Empty compiler generated dependencies file for ya_tournament_test.
# This may be replaced when dependencies are built.
