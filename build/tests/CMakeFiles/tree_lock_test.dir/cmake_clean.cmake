file(REMOVE_RECURSE
  "CMakeFiles/tree_lock_test.dir/tree_lock_test.cpp.o"
  "CMakeFiles/tree_lock_test.dir/tree_lock_test.cpp.o.d"
  "tree_lock_test"
  "tree_lock_test.pdb"
  "tree_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
