# Empty dependencies file for tree_lock_test.
# This may be replaced when dependencies are built.
