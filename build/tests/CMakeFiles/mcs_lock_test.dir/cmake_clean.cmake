file(REMOVE_RECURSE
  "CMakeFiles/mcs_lock_test.dir/mcs_lock_test.cpp.o"
  "CMakeFiles/mcs_lock_test.dir/mcs_lock_test.cpp.o.d"
  "mcs_lock_test"
  "mcs_lock_test.pdb"
  "mcs_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
