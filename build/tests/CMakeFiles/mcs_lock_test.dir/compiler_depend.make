# Empty compiler generated dependencies file for mcs_lock_test.
# This may be replaced when dependencies are built.
