file(REMOVE_RECURSE
  "../bench/bench_fig1_subqueues"
  "../bench/bench_fig1_subqueues.pdb"
  "CMakeFiles/bench_fig1_subqueues.dir/bench_fig1_subqueues.cpp.o"
  "CMakeFiles/bench_fig1_subqueues.dir/bench_fig1_subqueues.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_subqueues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
