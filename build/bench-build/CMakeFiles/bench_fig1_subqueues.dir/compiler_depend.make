# Empty compiler generated dependencies file for bench_fig1_subqueues.
# This may be replaced when dependencies are built.
