file(REMOVE_RECURSE
  "../bench/bench_fig3_balock_adaptivity"
  "../bench/bench_fig3_balock_adaptivity.pdb"
  "CMakeFiles/bench_fig3_balock_adaptivity.dir/bench_fig3_balock_adaptivity.cpp.o"
  "CMakeFiles/bench_fig3_balock_adaptivity.dir/bench_fig3_balock_adaptivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_balock_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
