# Empty dependencies file for bench_fig3_balock_adaptivity.
# This may be replaced when dependencies are built.
