file(REMOVE_RECURSE
  "../bench/bench_fig2_salock_paths"
  "../bench/bench_fig2_salock_paths.pdb"
  "CMakeFiles/bench_fig2_salock_paths.dir/bench_fig2_salock_paths.cpp.o"
  "CMakeFiles/bench_fig2_salock_paths.dir/bench_fig2_salock_paths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_salock_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
