file(REMOVE_RECURSE
  "../bench/bench_batch_failures"
  "../bench/bench_batch_failures.pdb"
  "CMakeFiles/bench_batch_failures.dir/bench_batch_failures.cpp.o"
  "CMakeFiles/bench_batch_failures.dir/bench_batch_failures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
