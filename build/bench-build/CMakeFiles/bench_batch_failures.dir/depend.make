# Empty dependencies file for bench_batch_failures.
# This may be replaced when dependencies are built.
