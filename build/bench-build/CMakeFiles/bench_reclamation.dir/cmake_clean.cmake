file(REMOVE_RECURSE
  "../bench/bench_reclamation"
  "../bench/bench_reclamation.pdb"
  "CMakeFiles/bench_reclamation.dir/bench_reclamation.cpp.o"
  "CMakeFiles/bench_reclamation.dir/bench_reclamation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reclamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
